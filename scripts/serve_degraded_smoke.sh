#!/usr/bin/env bash
# Graceful-degradation smoke of the serving daemon: inject one disk-tier
# I/O error (EKTELO_FAILPOINTS, see README "Fault tolerance") into a
# daemon whose operator cache has a disk tier attached, and assert that
#   - the daemon keeps answering (memory tier) with replies bitwise
#     identical to a healthy run's, and
#   - stats report disk_degraded=1 with a nonzero disk_io_errors count.
#
# Requires a build with failpoints compiled in (the default; see
# -DEKTELO_FAILPOINTS in CMakeLists.txt).
#
#   scripts/serve_degraded_smoke.sh [BUILD_DIR]    # default: build
set -u

BUILD_DIR="${1:-build}"
SERVED="$BUILD_DIR/ektelo_served"
CLIENT="$BUILD_DIR/ektelo_client"
WORK="$(mktemp -d /tmp/ek_degraded_smoke.XXXXXX)"
SOCK="$WORK/served.sock"
FAILURES=0
SERVER_PID=""

fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

[ -x "$SERVED" ] || { echo "missing $SERVED (build it first)" >&2; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build it first)" >&2; exit 1; }

# start_server NAME [FAILPOINTS]: fresh ledger + cache dir per run so the
# two runs are independent; synchronous spills (write-behind off) so the
# injected append error fires inside the first invoke, not on a
# background thread after the stats read.
start_server() {
  local name="$1" failpoints="${2:-}"
  rm -f "$SOCK"
  EKTELO_CACHE_DIR="$WORK/cache.$name" \
  EKTELO_CACHE_WRITE_BEHIND=0 \
  EKTELO_FAILPOINTS="$failpoints" \
    "$SERVED" --socket "$SOCK" --ledger "$WORK/ledger.$name" \
    --tenant alpha:4.0:41:256:10000 \
    >> "$WORK/served.$name.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon ($name) did not come up"; return 1
}

stop_server() {
  "$CLIENT" --socket "$SOCK" shutdown > /dev/null || fail "shutdown request"
  for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "$SERVER_PID" 2>/dev/null && fail "daemon ignored shutdown"
  SERVER_PID=""
}

checksum_of() { sed 's/.*estimate_checksum=\([0-9a-f]*\).*/\1/' "$1"; }

echo "== healthy run: record the reference reply =="
start_server healthy || exit 1
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan Identity \
  --eps 0.25 --request-id 1 > "$WORK/healthy.out" \
  || fail "healthy invoke exited nonzero"
grep -q "code=OK" "$WORK/healthy.out" || fail "healthy invoke not OK"
STATS="$("$CLIENT" --socket "$SOCK" stats)"
echo "$STATS" | grep -q "disk_degraded=0" \
  || fail "healthy run unexpectedly degraded: $STATS"
stop_server

echo "== degraded run: first disk append fails with EIO =="
start_server degraded "store.data.append=error.eio@1" || exit 1
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan Identity \
  --eps 0.25 --request-id 1 > "$WORK/degraded.out" \
  || fail "invoke against degraded disk tier exited nonzero"
grep -q "code=OK" "$WORK/degraded.out" \
  || fail "invoke against degraded disk tier not OK"

if [ "$(checksum_of "$WORK/healthy.out")" != \
     "$(checksum_of "$WORK/degraded.out")" ]; then
  fail "degraded reply differs from healthy reply"
fi

echo "== degraded daemon keeps answering and reports it =="
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan Identity \
  --eps 0.25 --request-id 2 > /dev/null \
  || fail "second invoke after degradation exited nonzero"
STATS="$("$CLIENT" --socket "$SOCK" stats)"
echo "$STATS" | grep -q "disk_degraded=1" \
  || fail "stats do not report disk_degraded=1: $STATS"
echo "$STATS" | grep -Eq "disk_io_errors=[1-9]" \
  || fail "stats do not report a disk I/O error: $STATS"
stop_server

if [ "$FAILURES" -eq 0 ]; then
  echo "serve degraded smoke: PASS"
  exit 0
fi
echo "serve degraded smoke: $FAILURES failure(s)" >&2
exit 1
