#!/usr/bin/env bash
# End-to-end smoke of the observability layer through the real binaries:
# start ektelo_served with EKTELO_TRACE=1, fire a few invocations, then
# scrape `stats --prom` (validating Prometheus text exposition shape),
# `stats --json` (validating with python's json parser), and
# `trace --out` (validating the Chrome trace JSON parses and carries the
# full request lifecycle's span types).
#
#   scripts/obs_smoke.sh [BUILD_DIR]       # default: build
set -u

BUILD_DIR="${1:-build}"
SERVED="$BUILD_DIR/ektelo_served"
CLIENT="$BUILD_DIR/ektelo_client"
SOCK="/tmp/ek_obs_smoke_$$.sock"
WORK="$(mktemp -d /tmp/ek_obs_smoke.XXXXXX)"
LOG="$WORK/served.log"
FAILURES=0
SERVER_PID=""

fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK" "$SOCK"
}
trap cleanup EXIT

[ -x "$SERVED" ] || { echo "missing $SERVED (build it first)" >&2; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build it first)" >&2; exit 1; }

echo "== start daemon with EKTELO_TRACE=1 =="
EKTELO_TRACE=1 EKTELO_SERVE_SLOW_MS=0 "$SERVED" --socket "$SOCK" \
  --ledger "$WORK/ledger" --tenant alpha:0.5:41:256:10000 \
  >> "$LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { fail "daemon did not come up"; exit 1; }

echo "== invoke (H2: full lifecycle under trace) =="
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan H2 --eps 0.1 \
  --request-id 7 > "$WORK/invoke.out" || fail "H2 invoke failed"
grep -q "code=OK" "$WORK/invoke.out" || fail "H2 invoke not OK"

echo "== stats --prom is well-formed Prometheus text =="
"$CLIENT" --socket "$SOCK" stats --prom > "$WORK/metrics.prom" \
  || fail "stats --prom failed"
python3 - "$WORK/metrics.prom" <<'EOF' || fail "prometheus text malformed"
import re, sys
path = sys.argv[1]
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.+eE-]+$|'
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \+Inf$')
names = set()
ok = True
for line in open(path):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# HELP ") or line.startswith("# TYPE "):
        continue
    if not sample.match(line):
        print("bad sample line:", line)
        ok = False
    names.add(line.split("{")[0].split(" ")[0])
for want in ("ektelo_serve_requests_total",
             "ektelo_serve_stage_seconds_bucket",
             "ektelo_tenant_budget_eps",
             "ektelo_cache_requests_total"):
    if want not in names:
        print("missing metric:", want)
        ok = False
sys.exit(0 if ok else 1)
EOF

echo "== stats --json parses =="
"$CLIENT" --socket "$SOCK" stats --json > "$WORK/stats.json" \
  || fail "stats --json failed"
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); \
  assert d["executions"] >= 1, d' "$WORK/stats.json" \
  || fail "stats json malformed"

echo "== trace --out is Perfetto-loadable Chrome trace JSON =="
"$CLIENT" --socket "$SOCK" trace --out "$WORK/trace.json" \
  || fail "trace fetch failed"
python3 - "$WORK/trace.json" <<'EOF' || fail "trace json malformed"
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
spans = {e["name"] for e in events if e.get("ph") == "X"}
need = {"serve.queue_wait", "serve.charge", "serve.execute"}
missing = need - spans
if missing:
    print("missing span types:", sorted(missing))
    sys.exit(1)
if len(spans) < 6:
    print("too few distinct span types:", sorted(spans))
    sys.exit(1)
print("span types:", len(spans))
EOF

"$CLIENT" --socket "$SOCK" shutdown > /dev/null || fail "shutdown"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

if [ "$FAILURES" -eq 0 ]; then
  echo "obs smoke: PASS"
  exit 0
fi
echo "obs smoke: $FAILURES failure(s)" >&2
exit 1
