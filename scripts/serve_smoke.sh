#!/usr/bin/env bash
# End-to-end smoke of the serving daemon through its real binaries:
# start ektelo_served with two tenants, fire concurrent ektelo_client
# invocations, drive one tenant to budget exhaustion (asserting the
# documented exit code 2), restart the daemon on the same ledger and
# check the spent budget survived, then shut down cleanly.
#
#   scripts/serve_smoke.sh [BUILD_DIR]       # default: build
set -u

BUILD_DIR="${1:-build}"
SERVED="$BUILD_DIR/ektelo_served"
CLIENT="$BUILD_DIR/ektelo_client"
SOCK="/tmp/ek_smoke_$$.sock"
LEDGER="$(mktemp -d /tmp/ek_smoke_ledger.XXXXXX)"
LOG="$LEDGER/served.log"
FAILURES=0
SERVER_PID=""

fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$LEDGER" "$SOCK"
}
trap cleanup EXIT

[ -x "$SERVED" ] || { echo "missing $SERVED (build it first)" >&2; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build it first)" >&2; exit 1; }

start_server() {
  "$SERVED" --socket "$SOCK" --ledger "$LEDGER" \
    --tenant alpha:0.5:41:256:10000 --tenant beta:2.0:43:256:10000 \
    >> "$LOG" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon did not come up"; return 1
}

echo "== start daemon (two tenants, alpha budget 0.5) =="
start_server || exit 1

echo "== concurrent invocations across tenants =="
CLIENT_PIDS=""
for i in 1 2 3 4; do
  "$CLIENT" --socket "$SOCK" invoke --tenant beta --plan Identity \
    --eps 0.1 --request-id "$i" > "$LEDGER/out.$i" &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
for pid in $CLIENT_PIDS; do
  wait "$pid" || fail "concurrent client pid $pid exited nonzero"
done
for i in 1 2 3 4; do
  grep -q "code=OK" "$LEDGER/out.$i" || fail "concurrent invoke $i not OK"
done
# All four share one request structure: identical answers, bit for bit.
if [ "$(sed 's/.*estimate_checksum=\([0-9a-f]*\).*/\1/' \
        "$LEDGER"/out.[1-4] | sort -u | wc -l)" != 1 ]; then
  fail "identical requests returned different estimates"
fi

echo "== drive alpha to exhaustion =="
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan Identity --eps 0.5 \
  > /dev/null || fail "in-budget alpha invoke refused"
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan Identity --eps 0.25
rc=$?
[ "$rc" -eq 2 ] || fail "exhausted tenant: want exit 2, got $rc"

echo "== restart preserves spent budget =="
"$CLIENT" --socket "$SOCK" shutdown > /dev/null || fail "shutdown request"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "daemon ignored shutdown request"
SERVER_PID=""
grep -q "clean shutdown" "$LOG" || fail "no clean-shutdown line in log"

start_server || exit 1
STATS="$("$CLIENT" --socket "$SOCK" stats)"
echo "$STATS" | grep -q "tenant=alpha total=0.5 spent=0.5" \
  || fail "alpha spent not preserved across restart: $STATS"
"$CLIENT" --socket "$SOCK" invoke --tenant alpha --plan Identity --eps 0.1 \
  > /dev/null
rc=$?
[ "$rc" -eq 2 ] || fail "alpha still exhausted after restart: want 2, got $rc"

"$CLIENT" --socket "$SOCK" shutdown > /dev/null || fail "final shutdown"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

if [ "$FAILURES" -eq 0 ]; then
  echo "serve smoke: PASS"
  exit 0
fi
echo "serve smoke: $FAILURES failure(s)" >&2
exit 1
