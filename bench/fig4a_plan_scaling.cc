// Fig. 4a: end-to-end plan runtime vs domain size for the three matrix
// representations (dense / sparse / implicit) across the low-dimensional
// plan catalog.
//
// Domains are 2D squares of n = 4^k cells (1D for DAWA and Greedy-H, as
// in the paper).  A representation is skipped ("-") once it exceeds the
// per-run time cap or its materialization would exceed the memory guard —
// the paper likewise stops runs beyond 1000s.  The reproduced observable
// is the scalability ordering implicit >= sparse >= dense.
//
// Usage: fig4a_plan_scaling [max_exp(default 9)] [time_cap_s(default 5)]
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

struct PlanSpec {
  const char* name;
  bool two_d;
  std::function<StatusOr<Vec>(const PlanContext&, Rng*)> run;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_exp =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 9;
  const double time_cap = argc > 2 ? std::atof(argv[2]) : 5.0;
  const double eps = 0.1;

  Rng rng(8);

  std::vector<PlanSpec> plans;
  plans.push_back({"Identity", true,
                   [](const PlanContext& c, Rng*) {
                     return RunIdentityPlan(c);
                   }});
  plans.push_back({"Uniform", true,
                   [](const PlanContext& c, Rng*) {
                     return RunUniformPlan(c);
                   }});
  plans.push_back({"Privelet", true,
                   [](const PlanContext& c, Rng*) {
                     return RunPriveletPlan(c);
                   }});
  plans.push_back({"H2", true,
                   [](const PlanContext& c, Rng*) { return RunH2Plan(c); }});
  plans.push_back({"HB", true,
                   [](const PlanContext& c, Rng*) { return RunHbPlan(c); }});
  plans.push_back({"QuadTree", true,
                   [](const PlanContext& c, Rng*) {
                     return RunQuadtreePlan(c);
                   }});
  plans.push_back({"UniformGrid", true,
                   [](const PlanContext& c, Rng*) {
                     return RunUniformGridPlan(c);
                   }});
  plans.push_back({"AdaptiveGrid", true,
                   [](const PlanContext& c, Rng*) {
                     return RunAdaptiveGridPlan(c);
                   }});
  plans.push_back({"AHP", true,
                   [](const PlanContext& c, Rng*) {
                     return RunAhpPlan(c);
                   }});
  plans.push_back({"MWEM", true,
                   [](const PlanContext& c, Rng* r) {
                     auto ranges = RandomRanges(100, c.n(), 0, r);
                     return RunMwemPlan(c, ranges,
                                        {.rounds = 10,
                                         .known_total = 1e5,
                                         .mw_iterations = 20});
                   }});
  plans.push_back({"MWEM variant c", true,
                   [](const PlanContext& c, Rng* r) {
                     auto ranges = RandomRanges(100, c.n(), 0, r);
                     return RunMwemPlan(c, ranges,
                                        {.rounds = 10,
                                         .nnls_inference = true,
                                         .known_total = 1e5});
                   }});
  plans.push_back({"MWEM variant d", true,
                   [](const PlanContext& c, Rng* r) {
                     auto ranges = RandomRanges(100, c.n(), 0, r);
                     return RunMwemPlan(c, ranges,
                                        {.rounds = 10,
                                         .augment_h2 = true,
                                         .nnls_inference = true,
                                         .known_total = 1e5});
                   }});
  plans.push_back({"HDMM", true,
                   [](const PlanContext& c, Rng*) {
                     std::vector<LinOpPtr> factors;
                     for (std::size_t d : c.dims)
                       factors.push_back(MakePrefixOp(d));
                     return RunHdmmPlan(c, factors);
                   }});
  plans.push_back({"DAWA", false,
                   [](const PlanContext& c, Rng* r) {
                     auto ranges = RandomRanges(1000, c.n(), 0, r);
                     return RunDawaPlan(c, ranges);
                   }});
  plans.push_back({"Greedy-H", false,
                   [](const PlanContext& c, Rng* r) {
                     auto ranges = RandomRanges(1000, c.n(), 0, r);
                     return RunGreedyHPlan(c, ranges);
                   }});

  const MatrixMode modes[] = {MatrixMode::kDense, MatrixMode::kSparse,
                              MatrixMode::kImplicit};
  // Memory guards (cells): dense n x n costs 8 n^2 bytes.
  const std::size_t dense_cap = 1 << 12;    // 4096 -> <= 134 MB
  const std::size_t sparse_cap = 1 << 16;   // 65536

  std::printf("Fig 4a: plan runtime (s) vs domain size, by matrix mode\n");
  std::printf("(eps=%.2g; '-' = skipped by time cap %.1fs or memory "
              "guard)\n\n", eps, time_cap);
  std::printf("%-16s %-9s", "plan", "mode");
  for (std::size_t e = 4; e <= max_exp; ++e)
    std::printf(" %9s", ("4^" + std::to_string(e)).c_str());
  std::printf("\n");

  for (const auto& plan : plans) {
    for (MatrixMode mode : modes) {
      std::printf("%-16s %-9s", plan.name, MatrixModeName(mode));
      bool capped = false;
      for (std::size_t e = 4; e <= max_exp; ++e) {
        const std::size_t n = std::size_t{1} << (2 * e);
        const bool skip =
            capped || (mode == MatrixMode::kDense && n > dense_cap) ||
            (mode == MatrixMode::kSparse && n > sparse_cap);
        if (skip) {
          std::printf(" %9s", "-");
          continue;
        }
        const std::size_t side = std::size_t{1} << e;
        Vec hist = plan.two_d ? MakeHistogram2D(side, side, 1e5, &rng)
                              : MakeHistogram1D(Shape1D::kGaussianMix, n,
                                                1e5, &rng);
        std::vector<std::size_t> dims =
            plan.two_d ? std::vector<std::size_t>{side, side}
                       : std::vector<std::size_t>{n};
        HistEnv env(hist, dims, eps, 7000 + e, &rng, mode);
        WallTimer t;
        auto xhat = plan.run(env.ctx, &rng);
        const double secs = t.Elapsed();
        if (!xhat.ok()) {
          std::printf(" %9s", "err");
        } else {
          std::printf(" %9.3f", secs);
        }
        std::fflush(stdout);
        if (secs > time_cap) capped = true;
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper (Fig 4a): implicit scales to domains ~1000x larger than "
      "dense and is fastest at\nfixed size for most plans; DAWA/Greedy-H "
      "show smaller gaps (selection materializes);\nAdaptiveGrid is "
      "dominated by partition iteration.\n");
  return 0;
}
