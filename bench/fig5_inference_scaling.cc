// Fig. 5: inference runtime vs data-vector size (google-benchmark).
//
// Measurements are a binary hierarchy (H2) over the domain with Laplace
// noise; we time least-squares inference under each physical
// representation x solver combination, plus NNLS and Hay et al.'s
// tree-based specialized solver:
//
//   LS:   Dense+Direct, Dense+Iterative, Sparse+Iterative,
//         Implicit+Iterative, Tree-based
//   NNLS: Dense+Iterative, Sparse+Iterative, Implicit+Iterative
//
// Sizes are capped per representation (the paper's y-axis stops at 1000s;
// dense representations blow memory long before that on this container).
// The reproduced observable: iterative+implicit extends the feasible
// domain by ~1000x over dense+direct, and the generic implicit solver
// dominates the specialized tree solver at scale.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

struct Problem {
  Hierarchy hier;
  LinOpPtr m_implicit;
  Vec y;
};

const Problem& GetProblem(std::size_t n) {
  static std::map<std::size_t, Problem> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(1234 + n);
    Problem p;
    p.hier = BuildHierarchy(n, 2);
    p.m_implicit = HierarchyOp(p.hier);
    Vec x = MakeHistogram1D(Shape1D::kGaussianMix, n, 1e6, &rng);
    p.y = p.m_implicit->Apply(x);
    for (auto& v : p.y) v += rng.Laplace(10.0);
    it = cache.emplace(n, std::move(p)).first;
  }
  return it->second;
}

MeasurementSet MakeSet(LinOpPtr m, const Vec& y) {
  MeasurementSet mset;
  mset.Add(std::move(m), y, 10.0);
  return mset;
}

void BM_LsDenseDirect(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(MakeDense(p.m_implicit->MaterializeDense()), p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(DirectLeastSquaresInference(mset));
}

void BM_LsDenseIterative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(MakeDense(p.m_implicit->MaterializeDense()), p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(LeastSquaresInference(mset));
}

void BM_LsSparseIterative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(MakeSparse(p.m_implicit->MaterializeSparse()), p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(LeastSquaresInference(mset));
}

void BM_LsImplicitIterative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(p.m_implicit, p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(LeastSquaresInference(mset));
}

void BM_LsTreeBased(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(TreeBasedLeastSquares(p.hier, p.y));
}

void BM_NnlsDenseIterative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(MakeDense(p.m_implicit->MaterializeDense()), p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(NnlsInference(mset, std::nullopt,
                                           {.max_iters = 100}));
}

void BM_NnlsSparseIterative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(MakeSparse(p.m_implicit->MaterializeSparse()), p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(NnlsInference(mset, std::nullopt,
                                           {.max_iters = 100}));
}

void BM_NnlsImplicitIterative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Problem& p = GetProblem(n);
  auto mset = MakeSet(p.m_implicit, p.y);
  for (auto _ : state)
    benchmark::DoNotOptimize(NnlsInference(mset, std::nullopt,
                                           {.max_iters = 100}));
}

}  // namespace

// Size ladders: dense representations stop at 4096 (O(n^2) memory /
// O(n^3) direct solves); sparse at ~1M; implicit/tree continue to 4M+.
BENCHMARK(BM_LsDenseDirect)->RangeMultiplier(4)->Range(1 << 10, 1 << 12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LsDenseIterative)->RangeMultiplier(4)->Range(1 << 10, 1 << 12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LsSparseIterative)->RangeMultiplier(4)->Range(1 << 10, 1 << 20)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LsImplicitIterative)
    ->RangeMultiplier(4)->Range(1 << 10, 1 << 22)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LsTreeBased)->RangeMultiplier(4)->Range(1 << 10, 1 << 22)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_NnlsDenseIterative)->RangeMultiplier(4)->Range(1 << 10, 1 << 12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_NnlsSparseIterative)
    ->RangeMultiplier(4)->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_NnlsImplicitIterative)
    ->RangeMultiplier(4)->Range(1 << 10, 1 << 20)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
