// Shared helpers for the benchmark harnesses: kernel/environment setup
// from a histogram, error metrics, and time-capped execution.
#ifndef EKTELO_BENCH_BENCH_UTIL_H_
#define EKTELO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <optional>
#include <string>

#include "ektelo/ektelo.h"

namespace ektelo::bench {

/// A protected kernel wrapping a histogram, plus the matching PlanContext.
struct HistEnv {
  ProtectedKernel kernel;
  PlanContext ctx;

  HistEnv(const Vec& hist, std::vector<std::size_t> dims, double eps,
          uint64_t seed, Rng* client_rng,
          MatrixMode mode = MatrixMode::kImplicit)
      : kernel(TableFromHistogram(hist, "v"), eps, seed) {
    auto x = kernel.TVectorize(kernel.root());
    ctx.kernel = &kernel;
    ctx.x = x.value();
    ctx.dims = std::move(dims);
    ctx.eps = eps;
    ctx.mode = mode;
    ctx.rng = client_rng;
  }
};

/// Scaled per-query L2 error (DPBench's metric): RMSE over workload
/// answers divided by the total record count.
inline double ScaledWorkloadError(const LinOp& w, const Vec& xhat,
                                  const Vec& x_true) {
  const double scale = std::max(Sum(x_true), 1.0);
  return Rmse(w.Apply(xhat), w.Apply(x_true)) / scale;
}

/// Run fn, returning wall seconds; nullopt on Status failure.
inline std::optional<double> TimeIt(
    const std::function<ektelo::Status()>& fn) {
  WallTimer t;
  Status s = fn();
  if (!s.ok()) return std::nullopt;
  return t.Elapsed();
}

}  // namespace ektelo::bench

#endif  // EKTELO_BENCH_BENCH_UTIL_H_
