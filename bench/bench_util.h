// Shared helpers for the benchmark harnesses: kernel/environment setup
// from a histogram, error metrics, time-capped execution, and a minimal
// machine-readable JSON emitter so benchmark runs leave a BENCH_*.json
// trail for the perf trajectory.
#ifndef EKTELO_BENCH_BENCH_UTIL_H_
#define EKTELO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ektelo/ektelo.h"

namespace ektelo::bench {

/// A protected kernel wrapping a histogram, plus the matching PlanContext.
struct HistEnv {
  ProtectedKernel kernel;
  PlanContext ctx;

  HistEnv(const Vec& hist, std::vector<std::size_t> dims, double eps,
          uint64_t seed, Rng* client_rng,
          MatrixMode mode = MatrixMode::kImplicit)
      : kernel(TableFromHistogram(hist, "v"), eps, seed) {
    auto x = kernel.TVectorize(kernel.root());
    ctx.kernel = &kernel;
    ctx.x = x.value();
    ctx.dims = std::move(dims);
    ctx.eps = eps;
    ctx.mode = mode;
    ctx.rng = client_rng;
  }
};

/// Scaled per-query L2 error (DPBench's metric): RMSE over workload
/// answers divided by the total record count.
inline double ScaledWorkloadError(const LinOp& w, const Vec& xhat,
                                  const Vec& x_true) {
  const double scale = std::max(Sum(x_true), 1.0);
  return Rmse(w.Apply(xhat), w.Apply(x_true)) / scale;
}

/// Run fn, returning wall seconds; nullopt on Status failure.
inline std::optional<double> TimeIt(
    const std::function<ektelo::Status()>& fn) {
  WallTimer t;
  Status s = fn();
  if (!s.ok()) return std::nullopt;
  return t.Elapsed();
}

/// Accumulates flat records of string/number fields and writes them as a
/// JSON array of objects — just enough structure for the perf-tracking
/// scripts, with no external dependency.
class JsonRecords {
 public:
  void StartRecord() { records_.emplace_back(); }
  void Field(const std::string& key, const std::string& value) {
    records_.back().push_back("\"" + key + "\":\"" + value + "\"");
  }
  void Field(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(9);
    os << value;
    records_.back().push_back("\"" + key + "\":" + os.str());
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fputs("[\n", f);
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fputs("  {", f);
      for (std::size_t i = 0; i < records_[r].size(); ++i) {
        if (i) std::fputs(",", f);
        std::fputs(records_[r][i].c_str(), f);
      }
      std::fputs(r + 1 < records_.size() ? "},\n" : "}\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::vector<std::string>> records_;
};

}  // namespace ektelo::bench

#endif  // EKTELO_BENCH_BENCH_UTIL_H_
