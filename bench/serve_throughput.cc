// Serving-layer batching A/B: an identical-request storm against an
// in-process daemon with coalescing ON (in-flight sharing + response
// cache) versus OFF (every request executes its own plan).  Writes
// BENCH_serve.json with both throughputs and the speedup; the committed
// copy at the repo root is the acceptance record that a hot dashboard
// pattern is >= 2x faster batched.  Replies are required to be bitwise
// identical across the two modes — coalescing is a pure wall-clock
// optimization, never an answer change.
//
//   ./bench_serve_throughput           # full storm
//   ./bench_serve_throughput --quick   # CI smoke preset
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

namespace fs = std::filesystem;
using namespace ektelo;
using serve::Client;
using serve::InvokeReply;
using serve::InvokeRequest;
using serve::ReplyCode;
using serve::Server;
using serve::ServerOptions;
using serve::TenantSpec;

struct StormResult {
  double seconds = 0.0;
  std::size_t ok = 0;
  std::uint64_t executions = 0;
  std::uint64_t coalesced = 0;
  Vec first_estimate;  // for the cross-mode bitwise-equality check
};

/// `threads` clients each fire `per_thread` structurally identical
/// requests at a fresh server; returns wall time and serve stats.
StormResult RunStorm(bool coalesce, std::size_t threads,
                     std::size_t per_thread, std::size_t domain_n,
                     double eps) {
  const std::string tag = coalesce ? "co" : "nc";
  ServerOptions opts;
  opts.socket_path = "/tmp/ek_bench_serve_" + tag + ".sock";
  opts.ledger_dir =
      (fs::temp_directory_path() / ("ektelo_bench_serve_" + tag)).string();
  fs::remove(opts.socket_path);
  fs::remove_all(opts.ledger_dir);
  opts.coalesce = coalesce;
  opts.workers = 4;

  Rng trng{41};
  const Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, domain_n,
                                   /*scale=*/100000.0, &trng);
  // Budget covers the uncoalesced storm charging every single request.
  const double budget = eps * double(threads * per_thread) * 2.0 + 1.0;
  auto server = Server::Start(
      opts, {TenantSpec{"alpha", TableFromHistogram(hist, "v"), 41, budget}});
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return {};
  }

  // H2 (hierarchical select + LM + least-squares inference) is the
  // representative dashboard query: each uncoalesced execution pays a
  // real inference solve, which is exactly the work coalescing shares.
  InvokeRequest req;
  req.tenant = "alpha";
  req.plan = "H2";
  req.eps = eps;

  StormResult result;
  std::atomic<std::size_t> ok{0};
  std::mutex first_mu;
  WallTimer timer;
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t)
    clients.emplace_back([&, t] {
      auto client = Client::Connect(opts.socket_path);
      if (!client.ok()) return;
      for (std::size_t i = 0; i < per_thread; ++i) {
        InvokeRequest r = req;
        r.request_id = std::uint64_t(t * per_thread + i);
        auto reply = client->Invoke(r);
        if (reply.ok() && reply->code == ReplyCode::kOk) {
          ++ok;
          std::lock_guard<std::mutex> lock(first_mu);
          if (result.first_estimate.empty())
            result.first_estimate = reply->estimate;
        }
      }
    });
  for (auto& th : clients) th.join();
  result.seconds = timer.Elapsed();
  result.ok = ok.load();
  const auto stats = (*server)->Stats();
  result.executions = stats.executions;
  result.coalesced = stats.coalesced;
  (*server)->Stop();
  fs::remove(opts.socket_path);
  fs::remove_all(opts.ledger_dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t threads = 4;
  const std::size_t per_thread = quick ? 25 : 100;
  const std::size_t domain_n = quick ? 2048 : 16384;
  const double eps = 0.001;
  const std::size_t total = threads * per_thread;

  std::printf("Serving batched-vs-unbatched storm (quick=%d)\n", quick ? 1 : 0);
  std::printf("  %zu clients x %zu identical requests, 1D domain n=%zu\n\n",
              threads, per_thread, domain_n);

  const StormResult unbatched =
      RunStorm(/*coalesce=*/false, threads, per_thread, domain_n, eps);
  const StormResult batched =
      RunStorm(/*coalesce=*/true, threads, per_thread, domain_n, eps);
  if (batched.ok != total || unbatched.ok != total) {
    std::fprintf(stderr, "storm incomplete: batched %zu/%zu unbatched %zu/%zu\n",
                 batched.ok, total, unbatched.ok, total);
    return 1;
  }
  // Coalescing must not change a single bit of any answer.
  if (batched.first_estimate.size() != unbatched.first_estimate.size() ||
      std::memcmp(batched.first_estimate.data(),
                  unbatched.first_estimate.data(),
                  batched.first_estimate.size() * sizeof(double)) != 0) {
    std::fprintf(stderr, "batched and unbatched replies differ bitwise\n");
    return 1;
  }

  const double thr_b = double(total) / batched.seconds;
  const double thr_u = double(total) / unbatched.seconds;
  const double speedup = thr_b / thr_u;
  std::printf("  unbatched: %8.1f req/s  (%zu executions)\n", thr_u,
              std::size_t(unbatched.executions));
  std::printf("  batched:   %8.1f req/s  (%zu executions, %zu coalesced)\n",
              thr_b, std::size_t(batched.executions),
              std::size_t(batched.coalesced));
  std::printf("  speedup:   %.2fx\n", speedup);

  bench::JsonRecords json;
  for (const bool co : {false, true}) {
    const StormResult& r = co ? batched : unbatched;
    json.StartRecord();
    json.Field("bench", std::string("serve_throughput"));
    json.Field("mode", std::string(co ? "batched" : "unbatched"));
    json.Field("quick", double(quick ? 1 : 0));
    json.Field("clients", double(threads));
    json.Field("requests", double(total));
    json.Field("domain_n", double(domain_n));
    json.Field("seconds", r.seconds);
    json.Field("req_per_s", double(total) / r.seconds);
    json.Field("executions", double(r.executions));
    json.Field("coalesced", double(r.coalesced));
    json.Field("speedup_vs_unbatched",
               co ? speedup : 1.0);
  }
  if (json.WriteFile("BENCH_serve.json"))
    std::printf("wrote BENCH_serve.json\n");
  return speedup >= 2.0 ? 0 : 1;
}
