// Fig. 3: Naive-Bayes classifier AUC on credit-default-like data.
//
// For eps in {1e-3, 1e-2, 1e-1}, reports the {25, 50, 75} percentiles of
// AUC from repeated 10-fold cross validation for Identity, Workload
// (Cormode), WorkloadLS and SelectLS, against the Majority (0.5) and
// Unperturbed baselines.
//
// Usage: fig3_naive_bayes [rows] [reps]
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30000;
  const std::size_t reps =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const std::size_t folds = 10;

  Rng rng(3);
  Table data = MakeCreditLike(&rng, rows);
  std::printf(
      "Fig 3: NBC on credit-like data (%zu rows, joint domain %zu), "
      "%zu-fold CV x %zu reps\n\n",
      rows, data.schema().TotalDomainSize() / 2, folds, reps);

  NbEvalResult clean =
      EvaluateNbClassifier(std::nullopt, data, 0.0, folds, 1, &rng);
  std::printf("Unperturbed: AUC %.3f [%.3f, %.3f]\n", clean.Median(),
              clean.Percentile(25), clean.Percentile(75));
  std::printf("Majority:    AUC 0.500 (constant classifier)\n\n");

  std::printf("%-8s %-12s %8s %8s %8s\n", "eps", "plan", "p25", "median",
              "p75");
  for (double eps : {1e-3, 1e-2, 1e-1}) {
    for (NbPlanKind kind :
         {NbPlanKind::kIdentity, NbPlanKind::kWorkload,
          NbPlanKind::kWorkloadLs, NbPlanKind::kSelectLs}) {
      NbEvalResult r =
          EvaluateNbClassifier(kind, data, eps, folds, reps, &rng);
      std::printf("%-8.0e %-12s %8.3f %8.3f %8.3f\n", eps,
                  NbPlanName(kind).c_str(), r.Percentile(25), r.Median(),
                  r.Percentile(75));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "paper (Fig 3): at eps=0.1 WorkloadLS/SelectLS approach the "
      "unperturbed AUC;\nat eps=1e-3 all private classifiers fall to ~0.5 "
      "(random).\n");
  return 0;
}
