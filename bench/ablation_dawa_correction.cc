// Ablation: DAWA stage-1 noise-bias correction (DESIGN.md substitution
// note).  Without subtracting the expected |Lap| contribution from the
// bucket-deviation estimate, the DP sees phantom deviation in uniform
// regions and refuses to merge — losing DAWA's entire advantage.  This
// harness quantifies that across privacy budgets.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

int main(int argc, char** argv) {
  const std::size_t n = 2048;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1e6;
  Rng rng(31);

  std::printf(
      "Ablation: DAWA stage-1 deviation bias correction (step data, "
      "n=%zu, scale=%.0e)\n\n", n, scale);
  std::printf("%-8s %14s %10s | %14s %10s\n", "eps", "uncorrected err",
              "groups", "corrected err", "groups");

  for (double eps : {0.01, 0.05, 0.2}) {
    const double eps1 = 0.25 * eps, eps2 = eps - eps1;
    double err[2] = {0, 0};
    double groups[2] = {0, 0};
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      Vec hist = MakeHistogram1D(Shape1D::kStep, n, scale, &rng);
      auto ranges = RandomRanges(300, n, n / 16, &rng);
      auto w = RangeQueryOp(ranges, n);
      for (int corrected = 0; corrected < 2; ++corrected) {
        HistEnv env(hist, {n}, eps, 700 + t, &rng);
        // Stage 1 by hand so the correction can be toggled.
        auto noisy = env.kernel.VectorLaplace(
            env.ctx.x, *MakeIdentityOp(n), eps1);
        if (!noisy.ok()) return 1;
        Partition p = DawaIntervalPartition(
            *noisy, 1.0 / eps1, corrected ? 1.0 / eps1 : 0.0);
        groups[corrected] += double(p.num_groups());
        auto reduced = env.kernel.VReduceByPartition(env.ctx.x, p);
        auto mapped = MapRangesToIntervalPartition(ranges, p);
        auto strat = GreedyHSelect(mapped, p.num_groups());
        const double sens = strat->SensitivityL1();
        auto y = env.kernel.VectorLaplace(*reduced, *strat, eps2);
        if (!y.ok()) return 1;
        MeasurementSet mset;
        mset.Add(MakeProduct(strat, p.ReduceOp()), *y, sens / eps2);
        Vec xhat = LeastSquaresInference(mset);
        err[corrected] += ScaledWorkloadError(*w, xhat, hist);
      }
    }
    std::printf("%-8.2g %14.3e %10.0f | %14.3e %10.0f\n", eps,
                err[0] / trials, groups[0] / trials, err[1] / trials,
                groups[1] / trials);
  }
  std::printf(
      "\nexpected shape: the corrected estimator produces far coarser "
      "partitions in uniform\nregions and lower error, with the gap "
      "widest at small eps (noisier stage 1).\n");
  return 0;
}
