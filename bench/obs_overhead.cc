// Observability overhead A/B: the same single-client request sequence
// against an in-process daemon with observability fully armed (timing
// histograms + per-request tracing, EKTELO_OBS=1 EKTELO_TRACE=1) versus
// fully disarmed.  Writes BENCH_obs.json with p50/p99 request latency
// in both modes; the committed copy at the repo root is the acceptance
// record that the armed serving path stays within 3% of disarmed.
// Replies are required to be bitwise identical across the two modes —
// observability is a passive observer, never an answer change.
//
//   ./bench_obs_overhead           # full run
//   ./bench_obs_overhead --quick   # CI smoke preset
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

namespace fs = std::filesystem;
using namespace ektelo;
using serve::Client;
using serve::InvokeRequest;
using serve::ReplyCode;
using serve::Server;
using serve::ServerOptions;
using serve::TenantSpec;

struct LatencyResult {
  std::vector<double> seconds;  // per-request, timed client-side
  Vec first_estimate;           // cross-mode bitwise-equality check
  bool ok = false;

  double Percentile(double p) const {
    if (seconds.empty()) return 0.0;
    std::vector<double> s = seconds;
    std::sort(s.begin(), s.end());
    const std::size_t idx = std::min(
        s.size() - 1, std::size_t(p * double(s.size() - 1) + 0.5));
    return s[idx];
  }
};

/// One client fires `warmup + n` identical-structure requests (all
/// coalescable, so every timed request after the first replays from the
/// response cache — which makes the serve path itself, not the plan
/// solve, the thing under measurement).
LatencyResult RunSequence(bool armed, std::size_t warmup, std::size_t n,
                          std::size_t domain_n, double eps) {
  obs::SetTimingEnabled(armed);
  obs::SetTraceEnabled(armed);

  const std::string tag = armed ? "on" : "off";
  ServerOptions opts;
  opts.socket_path = "/tmp/ek_bench_obs_" + tag + ".sock";
  opts.ledger_dir =
      (fs::temp_directory_path() / ("ektelo_bench_obs_" + tag)).string();
  fs::remove(opts.socket_path);
  fs::remove_all(opts.ledger_dir);
  opts.workers = 2;

  Rng trng{41};
  const Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, domain_n,
                                   /*scale=*/100000.0, &trng);
  const double budget = eps * double(warmup + n) * 2.0 + 1.0;
  auto server = Server::Start(
      opts, {TenantSpec{"alpha", TableFromHistogram(hist, "v"), 41, budget}});
  LatencyResult result;
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return result;
  }
  auto client = Client::Connect(opts.socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return result;
  }

  InvokeRequest req;
  req.tenant = "alpha";
  req.plan = "H2";
  req.eps = eps;

  result.ok = true;
  for (std::size_t i = 0; i < warmup + n; ++i) {
    InvokeRequest r = req;
    r.request_id = std::uint64_t(i);
    WallTimer timer;
    auto reply = client->Invoke(r);
    const double elapsed = timer.Elapsed();
    if (!reply.ok() || reply->code != ReplyCode::kOk) {
      std::fprintf(stderr, "invoke %zu failed\n", i);
      result.ok = false;
      break;
    }
    if (result.first_estimate.empty()) result.first_estimate = reply->estimate;
    if (i >= warmup) result.seconds.push_back(elapsed);
  }

  (*server)->Stop();
  fs::remove(opts.socket_path);
  fs::remove_all(opts.ledger_dir);
  obs::SetTimingEnabled(true);  // restore the process defaults
  obs::SetTraceEnabled(false);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t warmup = quick ? 10 : 30;
  const std::size_t n = quick ? 150 : 600;
  const std::size_t domain_n = quick ? 1024 : 4096;
  const double eps = 0.001;

  std::printf("Observability overhead A/B (quick=%d)\n", quick ? 1 : 0);
  std::printf("  %zu timed requests (+%zu warmup), 1D domain n=%zu\n\n", n,
              warmup, domain_n);

  const LatencyResult off =
      RunSequence(/*armed=*/false, warmup, n, domain_n, eps);
  const LatencyResult on =
      RunSequence(/*armed=*/true, warmup, n, domain_n, eps);
  if (!off.ok || !on.ok) return 1;

  // Armed observability must not change a single bit of any answer.
  if (on.first_estimate.size() != off.first_estimate.size() ||
      std::memcmp(on.first_estimate.data(), off.first_estimate.data(),
                  on.first_estimate.size() * sizeof(double)) != 0) {
    std::fprintf(stderr, "armed and disarmed replies differ bitwise\n");
    return 1;
  }

  const double p50_off = off.Percentile(0.50), p99_off = off.Percentile(0.99);
  const double p50_on = on.Percentile(0.50), p99_on = on.Percentile(0.99);
  const double overhead = p50_off > 0.0 ? p50_on / p50_off - 1.0 : 0.0;
  std::printf("  disarmed: p50 %8.1f us   p99 %8.1f us\n", p50_off * 1e6,
              p99_off * 1e6);
  std::printf("  armed:    p50 %8.1f us   p99 %8.1f us\n", p50_on * 1e6,
              p99_on * 1e6);
  std::printf("  p50 overhead: %+.2f%%\n", overhead * 100.0);

  bench::JsonRecords json;
  for (const bool armed : {false, true}) {
    const LatencyResult& r = armed ? on : off;
    json.StartRecord();
    json.Field("bench", std::string("obs_overhead"));
    json.Field("mode", std::string(armed ? "armed" : "disarmed"));
    json.Field("quick", double(quick ? 1 : 0));
    json.Field("requests", double(n));
    json.Field("domain_n", double(domain_n));
    json.Field("p50_s", r.Percentile(0.50));
    json.Field("p99_s", r.Percentile(0.99));
    json.Field("p50_overhead_pct", armed ? overhead * 100.0 : 0.0);
  }
  if (json.WriteFile("BENCH_obs.json"))
    std::printf("wrote BENCH_obs.json\n");

  // Gate: armed p50 within 3% of disarmed, with a 50us absolute floor
  // so scheduler jitter on a sub-millisecond path cannot flake the gate.
  return p50_on <= p50_off * 1.03 + 50e-6 ? 0 : 1;
}
