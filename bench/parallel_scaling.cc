// Parallel scaling of the deterministic execution engine.
//
// Runs a subset of the Fig. 2 catalog (the embarrassingly parallel
// SplitParallel plans plus representative dense solves) and the blocked
// materialization fallback at 1/2/4/8 threads, reporting wall time and
// speedup over the single-worker run.  Because every parallel path is
// bitwise-identical to serial, the output vectors double as a correctness
// check here: any cross-thread-count mismatch fails the run.
//
// Writes BENCH_parallel_scaling.json: one record per (workload, threads)
// with seconds and speedup, so CI tracks the scaling trajectory per
// commit.  Note speedups are hardware-relative — on a single-core
// container every configuration degenerates to ~1x; the interesting
// numbers come from multi-core runners.
//
// A second section rooflines the SIMD kernel layer: each blocked kernel
// runs single-threaded under every compiled-in dispatch target
// (scalar/AVX2/AVX-512/NEON), reporting seconds, GFLOP/s, nominal GB/s
// and speedup over the honest scalar baseline (built with
// auto-vectorization off).  Outputs are compared bitwise across targets
// — a mismatch fails the run, making the determinism contract part of
// every benchmark invocation.
#include <cstring>

#include "bench_util.h"
#include "linalg/block.h"
#include "linalg/haar.h"
#include "linalg/simd/simd.h"
#include "util/thread_pool.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

/// Hides structured materialization so the generic blocked identity-panel
/// fallback (the parallelized path) is what gets measured.
class OpaqueOp final : public LinOp {
 public:
  explicit OpaqueOp(LinOpPtr inner)
      : LinOp(inner->rows(), inner->cols()), inner_(std::move(inner)) {}
  void ApplyRaw(const double* x, double* y) const override {
    inner_->ApplyRaw(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    inner_->ApplyTRaw(x, y);
  }
  void ApplyBlockRaw(const double* x, double* y,
                     std::size_t k) const override {
    inner_->ApplyBlockRaw(x, y, k);
  }
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override {
    inner_->ApplyTBlockRaw(x, y, k);
  }
  std::string DebugName() const override { return "Opaque"; }

 private:
  LinOpPtr inner_;
};

struct Workload {
  std::string name;
  std::function<Vec()> run;  // returns a result vector for cross-checks
};

struct KernelCase {
  std::string name;
  double flops;  // per invocation
  double bytes;  // nominal traffic per invocation (min reads + writes)
  std::function<void(std::vector<double>*)> run;  // fills the output
};

// Times fn over enough repeats for a stable wall reading; returns
// seconds per invocation.
double TimePerCall(const std::function<void()>& fn, bool quick) {
  fn();  // warm (page faults, pool wake)
  const double floor_secs = quick ? 0.02 : 0.1;
  std::size_t reps = 1;
  for (;;) {
    WallTimer t;
    for (std::size_t r = 0; r < reps; ++r) fn();
    const double secs = t.Elapsed();
    if (secs >= floor_secs || reps >= 4096) return secs / double(reps);
    reps *= 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double eps = 0.5;
  Rng rng(2);

  // Environments sized so each run takes a measurable fraction of a
  // second at one thread.
  const std::size_t n1 = quick ? 1024 : 4096;
  Vec hist1d = MakeHistogram1D(Shape1D::kGaussianMix, n1, 1e5, &rng);
  auto ranges = RandomRanges(quick ? 50 : 200, n1, 256, &rng);

  const std::size_t side = quick ? 32 : 64;
  Vec hist2d = MakeHistogram2D(side, side, 1e5, &rng);

  const std::size_t stripe = quick ? 128 : 512;
  const std::vector<std::size_t> dims3 = {stripe, 4, 4};
  Vec hist3 = MakeHistogram1D(Shape1D::kStep, stripe * 16, 1e5, &rng);

  auto run_plan = [&](const char* plan_name, const Vec& hist,
                      std::vector<std::size_t> dims,
                      std::size_t stripe_dim) -> Vec {
    const Plan& plan = PlanRegistry::Global().MustFind(plan_name);
    ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 7001);
    ProtectedTable root = ProtectedTable::Root(&kernel);
    auto x = root.Vectorize();
    EK_CHECK(x.ok());
    BudgetScope scope(eps);
    PlanInput in;
    in.dims = std::move(dims);
    in.ranges = ranges;
    in.known_total = Sum(hist);
    in.stripe_dim = stripe_dim;
    auto xhat = plan.Execute(*x, scope, in);
    EK_CHECK(xhat.ok());
    return std::move(*xhat);
  };

  std::vector<Workload> workloads;
  workloads.push_back(
      {"HB-Striped", [&] { return run_plan("HB-Striped", hist3, dims3, 0); }});
  workloads.push_back({"DAWA-Striped", [&] {
                         return run_plan("DAWA-Striped", hist3, dims3, 0);
                       }});
  workloads.push_back({"AdaptiveGrid", [&] {
                         return run_plan("AdaptiveGrid", hist2d,
                                         {side, side}, 0);
                       }});
  workloads.push_back({"Identity", [&] {
                         return run_plan("Identity", hist1d, {n1}, 0);
                       }});
  // The blocked identity-panel materialization fallback: the engine's
  // flagship data-parallel kernel (panels shard across the pool).
  workloads.push_back({"materialize_fallback", [&] {
                         auto op = std::make_shared<OpaqueOp>(
                             MakeKronecker(MakePrefixOp(quick ? 128 : 256),
                                           MakeWaveletOp(16)));
                         CsrMatrix m = op->MaterializeSparse();
                         return Vec{static_cast<double>(m.nnz())};
                       }});

  JsonRecords json;
  std::printf("Parallel scaling (speedup vs 1 thread; %zu hw threads)\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("%-22s %8s %10s %9s\n", "workload", "threads", "secs",
              "speedup");

  for (const Workload& w : workloads) {
    double base_secs = 0.0;
    Vec base_result;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool::Global().Resize(threads);
      WallTimer timer;
      Vec result = w.run();
      const double secs = timer.Elapsed();
      if (threads == 1) {
        base_secs = secs;
        base_result = result;
      } else if (result != base_result) {
        // Bitwise determinism is part of the contract being benchmarked.
        std::printf("FATAL: %s result differs at %zu threads\n",
                    w.name.c_str(), threads);
        return 1;
      }
      const double speedup = secs > 0.0 ? base_secs / secs : 0.0;
      std::printf("%-22s %8zu %10.4f %8.2fx\n", w.name.c_str(), threads,
                  secs, speedup);
      json.StartRecord();
      json.Field("workload", w.name);
      json.Field("threads", static_cast<double>(threads));
      json.Field("seconds", secs);
      json.Field("speedup", speedup);
    }
  }
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());

  // ------------------------------------------------- SIMD kernel roofline
  //
  // Single-threaded (serial pool) so the rows measure lane-level speedup,
  // not scheduling; the scaling table above already covers threads.
  {
    Rng krng(3);
    const std::size_t dm = quick ? 256 : 512;   // dense is dm x dm
    const std::size_t k = quick ? 32 : 64;      // RHS panel width
    const std::size_t sn = quick ? 2048 : 4096; // sparse is sn x sn
    const std::size_t hn = quick ? 2048 : 8192; // Haar length
    DenseMatrix d(dm, dm);
    for (auto& v : d.data()) v = krng.Normal();
    std::vector<Triplet> trip;
    for (std::size_t i = 0; i < sn; ++i)
      for (std::size_t j = 0; j < sn; ++j)
        if (krng.Uniform() < 0.01) trip.push_back({i, j, krng.Normal()});
    CsrMatrix sp = CsrMatrix::FromTriplets(sn, sn, std::move(trip));
    const double nnz = double(sp.nnz());
    Vec xd(dm * k), xs(sn * k), xh(hn * k);
    for (auto& v : xd) v = krng.Normal();
    for (auto& v : xs) v = krng.Normal();
    for (auto& v : xh) v = krng.Normal();

    std::vector<KernelCase> kernels;
    kernels.push_back(
        {"dense_matmat", 2.0 * dm * dm * k, 8.0 * (dm * dm + 2.0 * dm * k),
         [&](std::vector<double>* y) {
           y->assign(dm * k, 0.0);
           DenseMatmat(d, xd.data(), y->data(), k);
         }});
    kernels.push_back(
        {"dense_rmatmat", 2.0 * dm * dm * k, 8.0 * (dm * dm + 2.0 * dm * k),
         [&](std::vector<double>* y) {
           y->assign(dm * k, 0.0);
           DenseRmatMat(d, xd.data(), y->data(), k);
         }});
    kernels.push_back(
        {"csr_matmat", 2.0 * nnz * k, 16.0 * nnz + 16.0 * sn * k,
         [&](std::vector<double>* y) {
           y->assign(sn * k, 0.0);
           CsrMatmat(sp, xs.data(), y->data(), k);
         }});
    kernels.push_back(
        {"csr_rmatmat", 2.0 * nnz * k, 16.0 * nnz + 16.0 * sn * k,
         [&](std::vector<double>* y) {
           y->assign(sn * k, 0.0);
           CsrRmatMat(sp, xs.data(), y->data(), k);
         }});
    kernels.push_back(
        {"haar_analysis", 2.0 * (hn - 1) * k, 16.0 * hn * k,
         [&](std::vector<double>* y) {
           y->assign(hn * k, 0.0);
           HaarAnalysisBlock(xh.data(), y->data(), hn, k);
         }});
    kernels.push_back(
        {"haar_synthesis", 2.0 * (hn - 1) * k, 16.0 * hn * k,
         [&](std::vector<double>* y) {
           y->assign(hn * k, 0.0);
           HaarSynthesisBlock(xh.data(), y->data(), hn, k);
         }});

    const auto targets = simd::AvailableTargets();
    ThreadPool::Global().Resize(0);  // serial: lane speedup only
    std::printf("\nSIMD kernel roofline (single thread; speedup vs scalar)\n\n");
    std::printf("%-16s %8s %10s %9s %9s %9s\n", "kernel", "target", "secs",
                "GFLOP/s", "GB/s", "speedup");
    for (const KernelCase& kc : kernels) {
      double scalar_secs = 0.0;
      std::vector<double> ref;
      // Scalar last in AvailableTargets; time it first for the baseline.
      simd::SetActive(simd::FindTarget("scalar"));
      scalar_secs = TimePerCall([&] { kc.run(&ref); }, quick);
      kc.run(&ref);
      for (const auto* t : targets) {
        simd::SetActive(t);
        std::vector<double> out;
        const double secs =
            std::strcmp(t->name, "scalar") == 0
                ? scalar_secs
                : TimePerCall([&] { kc.run(&out); }, quick);
        kc.run(&out);
        if (std::memcmp(out.data(), ref.data(),
                        ref.size() * sizeof(double)) != 0) {
          // The determinism contract is part of what this bench certifies.
          std::printf("FATAL: %s differs between %s and scalar\n",
                      kc.name.c_str(), t->name);
          return 1;
        }
        const double gflops = secs > 0.0 ? kc.flops / secs / 1e9 : 0.0;
        const double gbs = secs > 0.0 ? kc.bytes / secs / 1e9 : 0.0;
        const double speedup = secs > 0.0 ? scalar_secs / secs : 0.0;
        std::printf("%-16s %8s %10.5f %9.2f %9.2f %8.2fx\n", kc.name.c_str(),
                    t->name, secs, gflops, gbs, speedup);
        json.StartRecord();
        json.Field("kernel", kc.name);
        json.Field("target", std::string(t->name));
        json.Field("seconds", secs);
        json.Field("gflops", gflops);
        json.Field("gbs", gbs);
        json.Field("speedup_vs_scalar", speedup);
      }
    }
    simd::ResetActive();
    ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());
  }

  if (!json.WriteFile("BENCH_parallel_scaling.json")) {
    std::printf("failed to write BENCH_parallel_scaling.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_parallel_scaling.json\n");
  return 0;
}
