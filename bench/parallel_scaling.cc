// Parallel scaling of the deterministic execution engine.
//
// Runs a subset of the Fig. 2 catalog (the embarrassingly parallel
// SplitParallel plans plus representative dense solves) and the blocked
// materialization fallback at 1/2/4/8 threads, reporting wall time and
// speedup over the single-worker run.  Because every parallel path is
// bitwise-identical to serial, the output vectors double as a correctness
// check here: any cross-thread-count mismatch fails the run.
//
// Writes BENCH_parallel_scaling.json: one record per (workload, threads)
// with seconds and speedup, so CI tracks the scaling trajectory per
// commit.  Note speedups are hardware-relative — on a single-core
// container every configuration degenerates to ~1x; the interesting
// numbers come from multi-core runners.
#include <cstring>

#include "bench_util.h"
#include "util/thread_pool.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

/// Hides structured materialization so the generic blocked identity-panel
/// fallback (the parallelized path) is what gets measured.
class OpaqueOp final : public LinOp {
 public:
  explicit OpaqueOp(LinOpPtr inner)
      : LinOp(inner->rows(), inner->cols()), inner_(std::move(inner)) {}
  void ApplyRaw(const double* x, double* y) const override {
    inner_->ApplyRaw(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    inner_->ApplyTRaw(x, y);
  }
  void ApplyBlockRaw(const double* x, double* y,
                     std::size_t k) const override {
    inner_->ApplyBlockRaw(x, y, k);
  }
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override {
    inner_->ApplyTBlockRaw(x, y, k);
  }
  std::string DebugName() const override { return "Opaque"; }

 private:
  LinOpPtr inner_;
};

struct Workload {
  std::string name;
  std::function<Vec()> run;  // returns a result vector for cross-checks
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double eps = 0.5;
  Rng rng(2);

  // Environments sized so each run takes a measurable fraction of a
  // second at one thread.
  const std::size_t n1 = quick ? 1024 : 4096;
  Vec hist1d = MakeHistogram1D(Shape1D::kGaussianMix, n1, 1e5, &rng);
  auto ranges = RandomRanges(quick ? 50 : 200, n1, 256, &rng);

  const std::size_t side = quick ? 32 : 64;
  Vec hist2d = MakeHistogram2D(side, side, 1e5, &rng);

  const std::size_t stripe = quick ? 128 : 512;
  const std::vector<std::size_t> dims3 = {stripe, 4, 4};
  Vec hist3 = MakeHistogram1D(Shape1D::kStep, stripe * 16, 1e5, &rng);

  auto run_plan = [&](const char* plan_name, const Vec& hist,
                      std::vector<std::size_t> dims,
                      std::size_t stripe_dim) -> Vec {
    const Plan& plan = PlanRegistry::Global().MustFind(plan_name);
    ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 7001);
    ProtectedTable root = ProtectedTable::Root(&kernel);
    auto x = root.Vectorize();
    EK_CHECK(x.ok());
    BudgetScope scope(eps);
    PlanInput in;
    in.dims = std::move(dims);
    in.ranges = ranges;
    in.known_total = Sum(hist);
    in.stripe_dim = stripe_dim;
    auto xhat = plan.Execute(*x, scope, in);
    EK_CHECK(xhat.ok());
    return std::move(*xhat);
  };

  std::vector<Workload> workloads;
  workloads.push_back(
      {"HB-Striped", [&] { return run_plan("HB-Striped", hist3, dims3, 0); }});
  workloads.push_back({"DAWA-Striped", [&] {
                         return run_plan("DAWA-Striped", hist3, dims3, 0);
                       }});
  workloads.push_back({"AdaptiveGrid", [&] {
                         return run_plan("AdaptiveGrid", hist2d,
                                         {side, side}, 0);
                       }});
  workloads.push_back({"Identity", [&] {
                         return run_plan("Identity", hist1d, {n1}, 0);
                       }});
  // The blocked identity-panel materialization fallback: the engine's
  // flagship data-parallel kernel (panels shard across the pool).
  workloads.push_back({"materialize_fallback", [&] {
                         auto op = std::make_shared<OpaqueOp>(
                             MakeKronecker(MakePrefixOp(quick ? 128 : 256),
                                           MakeWaveletOp(16)));
                         CsrMatrix m = op->MaterializeSparse();
                         return Vec{static_cast<double>(m.nnz())};
                       }});

  JsonRecords json;
  std::printf("Parallel scaling (speedup vs 1 thread; %zu hw threads)\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("%-22s %8s %10s %9s\n", "workload", "threads", "secs",
              "speedup");

  for (const Workload& w : workloads) {
    double base_secs = 0.0;
    Vec base_result;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool::Global().Resize(threads);
      WallTimer timer;
      Vec result = w.run();
      const double secs = timer.Elapsed();
      if (threads == 1) {
        base_secs = secs;
        base_result = result;
      } else if (result != base_result) {
        // Bitwise determinism is part of the contract being benchmarked.
        std::printf("FATAL: %s result differs at %zu threads\n",
                    w.name.c_str(), threads);
        return 1;
      }
      const double speedup = secs > 0.0 ? base_secs / secs : 0.0;
      std::printf("%-22s %8zu %10.4f %8.2fx\n", w.name.c_str(), threads,
                  secs, speedup);
      json.StartRecord();
      json.Field("workload", w.name);
      json.Field("threads", static_cast<double>(threads));
      json.Field("seconds", secs);
      json.Field("speedup", speedup);
    }
  }
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());

  if (!json.WriteFile("BENCH_parallel_scaling.json")) {
    std::printf("failed to write BENCH_parallel_scaling.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_parallel_scaling.json\n");
  return 0;
}
