// Ablation: inference-operator accuracy and runtime on identical
// measurements (DESIGN.md's design-choice ablation).
//
// Fixes the measurement set (H2 hierarchy at eps) and swaps only the
// inference operator: LSMR least squares, CGNR least squares, NNLS,
// multiplicative weights, the specialized tree solver, and raw leaf
// counts (no inference).  This isolates the claim of Sec. 5.5 / Thm. 5.3:
// consistent global inference improves every strategy, and the generic
// iterative solvers match the specialized one on its home turf.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2048;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;
  Rng rng(21);

  std::printf(
      "Ablation: inference operators on identical H2 measurements "
      "(n=%zu, eps=%.2g; mean scaled error over datasets)\n\n", n, eps);
  std::printf("%-24s %12s %12s\n", "inference", "err(ranges)", "time(s)");

  Hierarchy hier = BuildHierarchy(n, 2);
  auto strategy = HierarchyOp(hier);
  const double sens = strategy->SensitivityL1();

  struct Acc {
    double err = 0.0;
    double secs = 0.0;
  };
  Acc acc[6];
  const char* names[6] = {"raw leaves (none)", "tree-based LS",
                          "LS (LSMR)",         "LS (CGNR)",
                          "NNLS",              "mult-weights"};

  auto shapes = AllShapes1D();
  for (std::size_t d = 0; d < shapes.size(); ++d) {
    Vec hist = MakeHistogram1D(shapes[d], n, 1e5, &rng);
    auto w = RangeQueryOp(RandomRanges(500, n, n / 8, &rng), n);
    HistEnv env(hist, {n}, eps, 600 + d, &rng);
    auto y = env.kernel.VectorLaplace(env.ctx.x, *strategy, eps);
    if (!y.ok()) return 1;
    MeasurementSet mset;
    mset.Add(strategy, *y, sens / eps);
    const double total = Sum(hist);

    for (int v = 0; v < 6; ++v) {
      WallTimer t;
      Vec xhat;
      switch (v) {
        case 0: {
          // Leaf rows are the last n entries of the hierarchy answers.
          xhat.assign(y->end() - n, y->end());
          break;
        }
        case 1:
          xhat = TreeBasedLeastSquares(hier, *y);
          break;
        case 2:
          xhat = LeastSquaresInference(mset);
          break;
        case 3:
          xhat = CgLeastSquaresInference(mset);
          break;
        case 4:
          xhat = NnlsInference(mset);
          break;
        case 5:
          xhat = MultWeightsInference(mset, total, {.iterations = 80});
          break;
      }
      acc[v].secs += t.Elapsed();
      acc[v].err += ScaledWorkloadError(*w, xhat, hist);
    }
  }
  for (int v = 0; v < 6; ++v) {
    std::printf("%-24s %12.3e %12.3f\n", names[v],
                acc[v].err / double(shapes.size()), acc[v].secs);
  }
  std::printf(
      "\nexpected shape: every inference beats raw leaves (Thm 5.3); "
      "LSMR == CGNR == tree-based\n(same LS solution); NNLS at or below "
      "LS (adds the x >= 0 constraint).\n");
  return 0;
}
