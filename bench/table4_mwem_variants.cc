// Table 4: MWEM variants — error-improvement factors and runtime.
//
// Setup matches the paper: 1D, n = 4096, W = RandomRange(1000), eps = 0.1,
// T = 10 rounds, over 10 (synthetic stand-ins for the DPBench) datasets.
// For variants (b) worst-approx + H2 selection, (c) NNLS known-total
// inference, and (d) both, we report the min/mean/max over datasets of
// error(MWEM) / error(variant) — the paper's "error improvement" — and the
// mean runtime normalized to plain MWEM.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

int main(int argc, char** argv) {
  const std::size_t n = 4096;
  const double eps = 0.1;
  const std::size_t n_queries = 1000;
  const std::size_t rounds = 10;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1e5;

  Rng rng(4);
  auto shapes = AllShapes1D();

  struct Variant {
    const char* selection;
    const char* inference;
    bool augment;
    bool nnls;
  };
  const Variant variants[] = {
      {"worst-approx", "MW", false, false},
      {"worst-approx + H2", "MW", true, false},
      {"worst-approx", "NNLS, known total", false, true},
      {"worst-approx + H2", "NNLS, known total", true, true},
  };

  double err[4][10];
  double time_s[4][10];

  for (std::size_t d = 0; d < shapes.size(); ++d) {
    Vec hist = MakeHistogram1D(shapes[d], n, scale, &rng);
    const double total = Sum(hist);
    auto ranges = RandomRanges(n_queries, n, 0, &rng);
    auto w_op = RangeQueryOp(ranges, n);
    for (int v = 0; v < 4; ++v) {
      HistEnv env(hist, {n}, eps, 1000 + 17 * d + v, &rng);
      WallTimer t;
      auto xhat = RunMwemPlan(env.ctx, ranges,
                              {.rounds = rounds,
                               .augment_h2 = variants[v].augment,
                               .nnls_inference = variants[v].nnls,
                               .known_total = total});
      time_s[v][d] = t.Elapsed();
      if (!xhat.ok()) {
        std::fprintf(stderr, "variant %d failed on dataset %zu: %s\n", v, d,
                     xhat.status().ToString().c_str());
        err[v][d] = -1.0;
        continue;
      }
      err[v][d] = ScaledWorkloadError(*w_op, *xhat, hist);
    }
  }

  std::printf(
      "Table 4: MWEM variants (1D, n=4096, W=RandomRange(1000), eps=0.1)\n");
  std::printf("error improvement factor vs (a), over %zu datasets\n\n",
              shapes.size());
  std::printf("%-4s %-20s %-20s %8s %8s %8s %10s\n", "", "Query Selection",
              "Inference", "min", "mean", "max", "runtime");
  const char* tags[] = {"(a)", "(b)", "(c)", "(d)"};
  double base_time = 0.0;
  for (std::size_t d = 0; d < shapes.size(); ++d) base_time += time_s[0][d];
  for (int v = 0; v < 4; ++v) {
    double mn = 1e300, mx = 0.0, mean = 0.0, tsum = 0.0;
    for (std::size_t d = 0; d < shapes.size(); ++d) {
      const double f = err[0][d] / err[v][d];
      mn = std::min(mn, f);
      mx = std::max(mx, f);
      mean += f;
      tsum += time_s[v][d];
    }
    mean /= double(shapes.size());
    std::printf("%-4s %-20s %-20s %8.2f %8.2f %8.2f %10.1f\n", tags[v],
                variants[v].selection, variants[v].inference, mn, mean, mx,
                tsum / base_time);
  }
  std::printf(
      "\npaper (Table 4): (b) 1.03/2.80/7.93 @354.9x, (c) 0.78/1.08/1.54 "
      "@1.0x, (d) 0.89/2.64/8.13 @9.0x\n");
  return 0;
}
