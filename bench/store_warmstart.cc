// Persistent-store warm-start A/B: the catalog plans (MWEM family,
// striped plans, workload reduction) plus two cache-heavy inference
// ablations run end-to-end twice against the same on-disk artifact
// store — a COLD pass (fresh store, empty memory cache; pays full
// materialization/Gram/sensitivity cost and writes behind) and a WARM
// pass simulating a fresh serving process (store reopened from disk,
// memory cache cleared before every plan; artifacts are promoted off
// disk instead of recomputed).  Outputs must be bitwise identical
// between the passes — the exit status enforces it — and the run emits
// BENCH_store.json with per-row cold/warm wall times and speedups.
//
//   ./bench_store_warmstart           # committed-preset domains
//   ./bench_store_warmstart --quick   # CI smoke preset (small domains)
#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "matrix/implicit_ops.h"
#include "matrix/nnls.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "ops/hierarchy.h"
#include "store/artifact_store.h"
#include "workload/reduction.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

namespace fs = std::filesystem;

constexpr const char* kStoreDir = "ektelo_store_bench.tmp";

void AttachFreshlyOpenedTier() {
  store::DiskStoreOptions opts;
  opts.hash_version = kHashVersion;
  auto tier = store::DiskArtifactStore::Open(kStoreDir, opts);
  EK_CHECK(tier != nullptr);
  OperatorCache::Global().SetDiskTier(std::move(tier));
}

Vec MustExecute(const Plan& plan, const Vec& hist,
                const std::vector<std::size_t>& dims, double eps,
                uint64_t seed, Rng* client_rng, const PlanInput& base_in) {
  Rng rng = *client_rng;  // same client randomness on both passes
  HistEnv env(hist, dims, eps, seed, &rng);
  ProtectedVector x(&env.kernel, env.ctx.x);
  BudgetScope scope(eps);
  PlanInput in = base_in;
  in.dims = dims;
  in.rng = &rng;
  StatusOr<Vec> xhat = plan.Execute(x, scope, in);
  EK_CHECK(xhat.ok());
  return std::move(*xhat);
}

struct Row {
  std::string name;
  bool cache_heavy = false;  // dominated by cacheable artifact work
  std::function<Vec()> fn;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  const std::size_t n1 = quick ? 256 : 2048;        // MWEM 1D domain
  const std::size_t mwem_rounds = quick ? 8 : 40;   // MWEM measurement rounds
  const std::size_t mw_iters = quick ? 30 : 80;     // MW steps per round
  const std::size_t stripe_n = quick ? 64 : 512;    // striped stripe length
  const std::size_t wr_n = quick ? 512 : 4096;      // workload-reduction domain
  const int heavy_reps = quick ? 4 : 8;             // ablation solve repeats

  const double eps = 0.5;
  Rng rng(42);
  std::vector<Row> rows;

  // ---- MWEM family (per-round unions re-derived each execution).
  {
    Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, n1, 1e5, &rng);
    auto ranges = RandomRanges(200, n1, n1 / 8, &rng);
    const double total = Sum(hist);
    struct V {
      const char* label;
      MwemOptions opts;
    };
    const V variants[] = {
        {"MWEM", {mwem_rounds, false, false, 0.0, mw_iters}},
        {"MWEM variant b", {mwem_rounds, true, false, 0.0, mw_iters}},
        {"MWEM variant c", {mwem_rounds, false, true, 0.0, mw_iters}},
        {"MWEM variant d", {mwem_rounds, true, true, 0.0, mw_iters}},
    };
    for (const V& v : variants) {
      auto plan = std::shared_ptr<Plan>(MakeMwemPlan(v.opts));
      PlanInput in;
      in.ranges = ranges;
      in.known_total = total;
      rows.push_back({v.label, false, [=] {
                        Rng client(7);
                        return MustExecute(*plan, hist, {n1}, eps, 9001,
                                           &client, in);
                      }});
    }
  }

  // ---- Striped multi-dimensional plans.
  {
    const std::vector<std::size_t> dims = {stripe_n, 4, 4};
    const std::size_t n = stripe_n * 16;
    Vec hist = MakeHistogram1D(Shape1D::kStep, n, 1e5, &rng);
    PlanInput in;
    in.stripe_dim = 0;
    for (const char* name : {"HB-Striped", "DAWA-Striped", "HB-Striped_kron"}) {
      const Plan& plan = PlanRegistry::Global().MustFind(name);
      rows.push_back({name, false, [&plan, hist, dims, eps, in] {
                        Rng client(11);
                        return MustExecute(plan, hist, dims, eps, 9100,
                                           &client, in);
                      }});
    }
  }

  // ---- Workload-based domain reduction + MWEM.
  {
    Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, wr_n, 1e6, &rng);
    auto ranges =
        RandomRanges(512, wr_n, std::max<std::size_t>(wr_n / 64, 2), &rng);
    auto w_op = RangeQueryOp(ranges, wr_n);
    Partition p = WorkloadBasedPartition(*w_op, &rng);
    auto reduced_ranges = MapRangesToIntervalPartition(ranges, p);
    Vec reduced(p.num_groups(), 0.0);
    for (std::size_t c = 0; c < hist.size(); ++c)
      reduced[p.group_of(c)] += hist[c];
    auto plan = std::shared_ptr<Plan>(
        MakeMwemPlan({mwem_rounds, false, false, 0.0, mw_iters}));
    PlanInput in;
    in.ranges = reduced_ranges;
    in.known_total = Sum(reduced);
    const std::size_t ng = reduced.size();
    rows.push_back({"WorkloadReduce+MWEM", false, [=] {
                      Rng client(13);
                      return MustExecute(*plan, reduced, {ng}, eps, 9200,
                                         &client, in);
                    }});
  }

  // ---- Cache-heavy ablations: inference loops dominated by artifact
  // ---- derivation — exactly what the disk tier exists to amortize
  // ---- across processes.
  {
    const std::size_t ng = quick ? 128 : 256;
    const std::size_t k_meas = quick ? 16 : 64;
    Rng mrng(17);
    auto mset = std::make_shared<MeasurementSet>();
    for (std::size_t i = 0; i < k_meas; ++i) {
      std::vector<Interval> iv;
      for (int q = 0; q < 64; ++q) {
        std::size_t lo = std::size_t(mrng.UniformInt(0, int64_t(ng) - 1));
        std::size_t hi =
            lo + std::size_t(mrng.UniformInt(0, int64_t(ng - lo) - 1));
        iv.push_back({lo, hi});
      }
      LinOpPtr m = MakeRangeSetOp(std::move(iv), ng);
      Vec y(m->rows());
      for (auto& v : y) v = mrng.Normal();
      mset->Add(std::move(m), std::move(y), 1.0);
    }
    rows.push_back({"re-derived union, direct gram", true, [=] {
                      Vec xhat;
                      for (int rep = 0; rep < heavy_reps; ++rep) {
                        MeasurementSet fresh;
                        for (const auto& item : mset->items())
                          fresh.Add(item.m, item.y, item.noise_scale);
                        xhat = DirectLeastSquaresInference(fresh);
                      }
                      return xhat;
                    }});
    // The Lipschitz estimate (spectral-norm power iteration) dominates a
    // short NNLS solve; warm processes read it off disk.
    const std::size_t power_iters = quick ? 60 : 200;
    rows.push_back({"re-derived union, NNLS lipschitz", true, [=] {
                      Vec xhat;
                      NnlsOptions opts;
                      opts.max_iters = 40;
                      opts.power_iters = power_iters;
                      for (int rep = 0; rep < 2; ++rep) {
                        MeasurementSet fresh;
                        for (const auto& item : mset->items())
                          fresh.Add(item.m, item.y, item.noise_scale);
                        LinOpPtr a = fresh.WeightedOp();
                        xhat = Nnls(*a, fresh.WeightedY(), opts).x;
                      }
                      return xhat;
                    }});
  }

  // ---- Strategy re-materialization: the serving cold-start cost the
  // ---- disk tier was built for.  A fresh process needs the sparse form
  // ---- and sensitivities of its (large, implicit) strategy operators;
  // ---- warm processes read the artifacts instead of re-running the
  // ---- blocked materialization sweeps.
  {
    const std::size_t n = quick ? 4096 : 32768;
    Rng wrng(29);
    std::vector<LinOpPtr> strategies;
    strategies.push_back(HierarchyOp(BuildHierarchy(n, HbBranchingFactor(n))));
    strategies.push_back(MakeWaveletOp(n));
    strategies.push_back(
        RandomRangeWorkload(quick ? 256 : 1024, n, n / 4, &wrng));
    rows.push_back(
        {"strategy re-materialization", true, [strategies] {
           Vec probe;
           for (const LinOpPtr& s : strategies) {
             LinOpPtr leaf = OperatorCache::Global().SparseWrapped(s);
             probe.push_back(leaf->SensitivityL1() + leaf->SensitivityL2());
           }
           return probe;
         }});
  }

  // ---- Protocol: one store directory for the whole catalog.  The cold
  // ---- pass populates it (store open #1); the warm pass reopens it in
  // ---- a simulated fresh process (store open #2).  The memory cache is
  // ---- cleared before every plan in both passes, so each row measures
  // ---- a genuine process-cold execution with and without the disk tier
  // ---- primed.
  fs::remove_all(kStoreDir);
  SetRewriteEnabled(1);

  std::printf("Persistent-store warm-start A/B (quick=%d)\n\n", quick ? 1 : 0);
  std::printf("%-34s %10s %10s %8s %9s\n", "plan", "cold(s)", "warm(s)",
              "speedup", "bitwise");

  AttachFreshlyOpenedTier();
  std::vector<Vec> cold_out(rows.size());
  std::vector<double> cold_s(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    OperatorCache::Global().Clear();
    WallTimer t;
    cold_out[i] = rows[i].fn();
    cold_s[i] = t.Elapsed();
  }
  // Close cycle 1 (flush + release), then reopen: a new process's view.
  OperatorCache::Global().SetDiskTier(nullptr);
  AttachFreshlyOpenedTier();

  JsonRecords json;
  double log_sum = 0.0, log_sum_heavy = 0.0;
  std::size_t heavy_rows = 0;
  bool all_bitwise = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    OperatorCache::Global().Clear();
    WallTimer t;
    Vec warm = rows[i].fn();
    const double warm_s = t.Elapsed();
    bool bitwise = warm.size() == cold_out[i].size();
    if (bitwise)
      for (std::size_t j = 0; j < warm.size(); ++j)
        if (!BitwiseEq(warm[j], cold_out[i][j])) {
          bitwise = false;
          break;
        }
    all_bitwise = all_bitwise && bitwise;
    const double speedup = cold_s[i] / warm_s;
    log_sum += std::log(speedup);
    if (rows[i].cache_heavy) {
      log_sum_heavy += std::log(speedup);
      ++heavy_rows;
    }
    std::printf("%-34s %10.4f %10.4f %7.2fx %9s\n", rows[i].name.c_str(),
                cold_s[i], warm_s, speedup, bitwise ? "yes" : "NO");
    std::fflush(stdout);
    json.StartRecord();
    json.Field("kind", rows[i].cache_heavy ? "ablation" : "plan");
    json.Field("plan", rows[i].name);
    json.Field("cache_heavy", rows[i].cache_heavy ? 1.0 : 0.0);
    json.Field("seconds_cold", cold_s[i]);
    json.Field("seconds_warm", warm_s);
    json.Field("speedup_warm", speedup);
    json.Field("bitwise_equal", bitwise ? 1.0 : 0.0);
  }

  OperatorCache::Global().FlushDiskTier();  // land write-behind spills
  const auto cache_stats = OperatorCache::Global().stats();
  const auto disk_stats = OperatorCache::Global().disk_tier()->stats();
  const double geomean = std::exp(log_sum / double(rows.size()));
  const double geomean_heavy =
      heavy_rows ? std::exp(log_sum_heavy / double(heavy_rows)) : 1.0;
  std::printf("\ngeomean warm speedup: %.2fx over %zu rows (%.2fx over %zu "
              "cache-heavy rows); disk hits %zu, store %zu entries / %.1f MiB\n",
              geomean, rows.size(), geomean_heavy, heavy_rows,
              cache_stats.disk_hits, disk_stats.entries,
              double(disk_stats.live_bytes) / (1024.0 * 1024.0));
  json.StartRecord();
  json.Field("kind", "summary");
  json.Field("preset", quick ? "quick" : "default");
  json.Field("rows", double(rows.size()));
  json.Field("geomean_warm_speedup", geomean);
  json.Field("geomean_warm_speedup_cache_heavy", geomean_heavy);
  json.Field("disk_hits", double(cache_stats.disk_hits));
  json.Field("disk_writes", double(cache_stats.disk_writes));
  json.Field("store_entries", double(disk_stats.entries));
  json.Field("store_live_bytes", double(disk_stats.live_bytes));
  json.Field("all_bitwise_equal", all_bitwise ? 1.0 : 0.0);

  if (json.WriteFile("BENCH_store.json"))
    std::printf("wrote BENCH_store.json\n");

  OperatorCache::Global().SetDiskTier(nullptr);
  OperatorCache::Global().Clear();
  fs::remove_all(kStoreDir);
  // Bitwise equivalence is the contract; speed is tracked, not gated
  // (CI machines are noisy).
  return all_bitwise ? 0 : 1;
}
