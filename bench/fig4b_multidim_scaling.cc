// Fig. 4b: multi-dimensional plan runtime vs domain size for DAWA-Striped,
// PrivBayesLS, HB-Striped and HB-Striped_kron, across matrix modes, plus
// the "Basic sparse" ablation (flattening the Kronecker product into one
// full-domain sparse matrix instead of keeping per-factor structure).
//
// Usage: fig4b_multidim_scaling [max_level(default 3)] [time_cap_s]
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

Table RandomTable(const std::vector<std::size_t>& dims, std::size_t rows,
                  Rng* rng) {
  std::vector<Attribute> attrs;
  for (std::size_t d = 0; d < dims.size(); ++d)
    attrs.push_back({"a" + std::to_string(d), dims[d]});
  Table t{Schema(attrs)};
  std::vector<uint32_t> row(dims.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      // Mild skew so data-dependent plans have structure to find.
      double u = rng->Uniform();
      row[d] = static_cast<uint32_t>(u * u * double(dims[d]));
      if (row[d] >= dims[d]) row[d] = dims[d] - 1;
    }
    t.AppendRow(row);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_level =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const double time_cap = argc > 2 ? std::atof(argv[2]) : 20.0;
  const double eps = 0.1;

  // Domain ladder: ~1e4, 1e5, 1e6, 1e7 cells (stripe dim first).
  const std::vector<std::vector<std::size_t>> ladders = {
      {100, 10, 10}, {500, 20, 10}, {1000, 50, 20}, {5000, 50, 40}};

  Rng rng(17);
  std::printf(
      "Fig 4b: multi-dimensional plan runtime (s) vs domain size\n"
      "(eps=%.2g; '-' = skipped by time cap %.0fs / memory guard)\n\n",
      eps, time_cap);
  std::printf("%-16s %-13s", "plan", "mode");
  for (std::size_t l = 0; l <= max_level && l < ladders.size(); ++l) {
    std::size_t n = 1;
    for (std::size_t d : ladders[l]) n *= d;
    std::printf(" %10zu", n);
  }
  std::printf("\n");

  struct Row {
    const char* plan;
    const char* mode_name;
    MatrixMode mode;
    bool basic_sparse;  // only for HB-Striped_kron
    int which;          // 0=DAWA-Striped 1=PrivBayesLS 2=HB-Striped 3=Kron
  };
  std::vector<Row> rows;
  for (int which : {0, 1, 2, 3}) {
    const char* names[] = {"DAWA-Striped", "PrivBayesLS", "HB-Striped",
                           "HB-Striped_kron"};
    for (MatrixMode mode :
         {MatrixMode::kDense, MatrixMode::kSparse, MatrixMode::kImplicit}) {
      rows.push_back({names[which], MatrixModeName(mode), mode, false,
                      which});
    }
    if (which == 3)
      rows.push_back({names[which], "basic-sparse", MatrixMode::kSparse,
                      true, which});
  }

  for (const auto& row : rows) {
    std::printf("%-16s %-13s", row.plan, row.mode_name);
    bool capped = false;
    for (std::size_t l = 0; l <= max_level && l < ladders.size(); ++l) {
      const auto& dims = ladders[l];
      std::size_t n = 1;
      for (std::size_t d : dims) n *= d;
      // Dense factor guard: HB(stripe) dense is ~2 n_s^2 cells.
      const bool dense_too_big =
          row.mode == MatrixMode::kDense && dims[0] > 1024;
      const bool basic_too_big = row.basic_sparse && n > 2'000'000;
      if (capped || dense_too_big || basic_too_big) {
        std::printf(" %10s", "-");
        continue;
      }
      Table table = RandomTable(dims, 50000, &rng);
      double secs = 0.0;
      bool ok = true;
      if (row.which == 1) {
        ProtectedKernel kernel(table, eps, 900 + l);
        WallTimer t;
        auto xhat = RunPrivBayesLsPlan(&kernel, table.schema(), eps, &rng);
        secs = t.Elapsed();
        ok = xhat.ok();
      } else {
        ProtectedKernel kernel(table, eps, 900 + l);
        auto x = kernel.TVectorize(kernel.root());
        PlanContext ctx{.kernel = &kernel, .x = *x, .dims = dims,
                        .eps = eps, .mode = row.mode, .rng = &rng};
        WallTimer t;
        StatusOr<Vec> xhat = Status::Internal("unset");
        switch (row.which) {
          case 0:
            xhat = RunDawaStripedPlan(ctx, 0);
            break;
          case 2:
            xhat = RunHbStripedPlan(ctx, 0);
            break;
          case 3:
            xhat = RunHbStripedKronPlan(ctx, 0, row.basic_sparse);
            break;
        }
        secs = t.Elapsed();
        ok = xhat.ok();
      }
      if (ok) {
        std::printf(" %10.2f", secs);
      } else {
        std::printf(" %10s", "err");
      }
      std::fflush(stdout);
      if (secs > time_cap) capped = true;
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper (Fig 4b): sparse and implicit reach domains >= 10x larger "
      "than dense; the\nKronecker form scales ~10x beyond the partitioned "
      "form, and 'basic sparse'\n(flattened) is the first to fall over.\n");
  return 0;
}
