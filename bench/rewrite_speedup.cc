// Rewrite-engine A/B: the inference-heavy catalog plans (the MWEM
// family, the HB/DAWA striped plans, and workload-reduction
// configurations) run end-to-end with the rewrite engine + OperatorCache
// OFF and then ON — identical seeds, identical inputs — and the run
// emits BENCH_rewrite.json with per-plan wall times, on/off speedups,
// the max on-vs-off output deviation (must stay within 1e-9 relative),
// and the geometric-mean speedup across all rows.
//
//   ./bench_rewrite_speedup           # committed-preset domains
//   ./bench_rewrite_speedup --quick   # CI smoke preset (small domains)
#include <cmath>
#include <cstring>
#include <memory>

#include "bench_util.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "workload/reduction.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

struct RowResult {
  double off_s = 0.0;
  double on_s = 0.0;
  double max_rel_diff = 0.0;
  bool ok = true;
};

/// Runs `fn` (which returns an estimate vector) with the toggle off then
/// on, and reports times + the worst relative output deviation.
RowResult TimeAb(const std::function<Vec()>& fn) {
  RowResult r;
  SetRewriteEnabled(0);
  OperatorCache::Global().Clear();
  WallTimer t0;
  Vec off = fn();
  r.off_s = t0.Elapsed();
  SetRewriteEnabled(1);
  OperatorCache::Global().Clear();
  WallTimer t1;
  Vec on = fn();
  r.on_s = t1.Elapsed();
  SetRewriteEnabled(-1);
  if (on.size() != off.size()) {
    r.ok = false;
    return r;
  }
  for (std::size_t i = 0; i < off.size(); ++i)
    r.max_rel_diff =
        std::max(r.max_rel_diff,
                 std::abs(on[i] - off[i]) / std::max(1.0, std::abs(off[i])));
  return r;
}

Vec MustExecute(const Plan& plan, const Vec& hist,
                const std::vector<std::size_t>& dims, double eps,
                uint64_t seed, Rng* client_rng, const PlanInput& base_in) {
  Rng rng = *client_rng;  // same client randomness for both A/B runs
  HistEnv env(hist, dims, eps, seed, &rng);
  ProtectedVector x(&env.kernel, env.ctx.x);
  BudgetScope scope(eps);
  PlanInput in = base_in;
  in.dims = dims;
  in.rng = &rng;
  StatusOr<Vec> xhat = plan.Execute(x, scope, in);
  EK_CHECK(xhat.ok());
  return std::move(*xhat);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // Preset: --quick keeps CI wall time low; the default preset is what
  // the committed BENCH_rewrite.json tracks.
  const std::size_t n1 = quick ? 256 : 2048;        // MWEM 1D domain
  const std::size_t mwem_rounds = quick ? 8 : 40;   // MWEM measurement rounds
  const std::size_t mw_iters = quick ? 30 : 80;     // MW steps per round
  const std::size_t stripe_n = quick ? 64 : 512;    // striped stripe length
  const std::size_t wr_n = quick ? 512 : 4096;      // workload-reduction domain
  const int direct_reps = quick ? 4 : 8;            // re-derived-union solves

  const double eps = 0.5;
  Rng rng(42);
  JsonRecords json;
  double log_sum = 0.0, log_sum_catalog = 0.0;
  std::size_t rows = 0, rows_catalog = 0;
  double worst_diff = 0.0;

  std::printf("Rewrite engine A/B (quick=%d)\n\n", quick ? 1 : 0);
  std::printf("%-34s %10s %10s %8s %12s\n", "plan", "off(s)", "on(s)",
              "speedup", "max_rel_diff");

  // `catalog` rows are end-to-end registered/parameterized plans; the
  // acceptance geomean is computed over those alone.  Non-catalog rows
  // (inference ablations) are reported but tracked separately so a
  // synthetic cache-hit loop cannot carry the bar.
  auto emit = [&](const std::string& name, const RowResult& r,
                  bool catalog = true) {
    if (!r.ok) {
      std::fprintf(stderr, "%s: A/B output shapes diverged\n", name.c_str());
      std::exit(1);
    }
    const double speedup = r.off_s / r.on_s;
    log_sum += std::log(speedup);
    ++rows;
    if (catalog) {
      log_sum_catalog += std::log(speedup);
      ++rows_catalog;
    }
    worst_diff = std::max(worst_diff, r.max_rel_diff);
    std::printf("%-34s %10.4f %10.4f %7.2fx %12.3e\n", name.c_str(), r.off_s,
                r.on_s, speedup, r.max_rel_diff);
    std::fflush(stdout);
    json.StartRecord();
    json.Field("kind", catalog ? "plan" : "ablation");
    json.Field("plan", name);
    json.Field("seconds_off", r.off_s);
    json.Field("seconds_on", r.on_s);
    json.Field("speedup", speedup);
    json.Field("max_rel_diff", r.max_rel_diff);
  };

  // ---- MWEM family: per-round measurement unions are the rewrite
  // ---- engine's canonical client (variants a/b merge via the rewriter;
  // ---- c/d share the plan-level merged union on both paths).
  {
    Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, n1, 1e5, &rng);
    auto ranges = RandomRanges(200, n1, n1 / 8, &rng);
    const double total = Sum(hist);
    Rng client(7);
    struct V {
      const char* label;
      MwemOptions opts;
    };
    const V variants[] = {
        {"MWEM", {mwem_rounds, false, false, 0.0, mw_iters}},
        {"MWEM variant b", {mwem_rounds, true, false, 0.0, mw_iters}},
        {"MWEM variant c", {mwem_rounds, false, true, 0.0, mw_iters}},
        {"MWEM variant d", {mwem_rounds, true, true, 0.0, mw_iters}},
    };
    for (const V& v : variants) {
      auto plan = MakeMwemPlan(v.opts);
      PlanInput in;
      in.ranges = ranges;
      in.known_total = total;
      emit(v.label, TimeAb([&] {
             return MustExecute(*plan, hist, {n1}, eps, 9001, &client, in);
           }));
    }
  }

  // ---- Striped multi-dimensional plans.
  {
    const std::vector<std::size_t> dims = {stripe_n, 4, 4};
    const std::size_t n = stripe_n * 16;
    Vec hist = MakeHistogram1D(Shape1D::kStep, n, 1e5, &rng);
    Rng client(11);
    PlanInput in;
    in.stripe_dim = 0;
    for (const char* name : {"HB-Striped", "DAWA-Striped", "HB-Striped_kron"}) {
      const Plan& plan = PlanRegistry::Global().MustFind(name);
      emit(name, TimeAb([&] {
             return MustExecute(plan, hist, dims, eps, 9100, &client, in);
           }));
    }
  }

  // ---- Workload-based domain reduction (Sec. 8): MWEM on the reduced
  // ---- domain — the table6-style configuration whose inference loop the
  // ---- rewriter accelerates end to end.
  {
    Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, wr_n, 1e6, &rng);
    auto ranges =
        RandomRanges(512, wr_n, std::max<std::size_t>(wr_n / 64, 2), &rng);
    auto w_op = RangeQueryOp(ranges, wr_n);
    Partition p = WorkloadBasedPartition(*w_op, &rng);
    auto reduced_ranges = MapRangesToIntervalPartition(ranges, p);
    Vec reduced(p.num_groups(), 0.0);
    for (std::size_t c = 0; c < hist.size(); ++c)
      reduced[p.group_of(c)] += hist[c];
    Rng client(13);
    auto plan = MakeMwemPlan({mwem_rounds, false, false, 0.0, mw_iters});
    PlanInput in;
    in.ranges = reduced_ranges;
    in.known_total = Sum(reduced);
    emit("WorkloadReduce+MWEM",
         TimeAb([&] {
           return MustExecute(*plan, reduced, {reduced.size()}, eps, 9200,
                              &client, in);
         }));
  }

  // ---- The cache's headline scenario: an inference loop that re-derives
  // ---- the same measurement union each call (direct normal-equations
  // ---- backend).  OFF re-assembles the dense Gram every call; ON memoizes
  // ---- it under the stack's structural hash.
  {
    const std::size_t ng = quick ? 128 : 256;
    const std::size_t k_meas = quick ? 16 : 64;
    Rng mrng(17);
    MeasurementSet mset;
    for (std::size_t i = 0; i < k_meas; ++i) {
      std::vector<Interval> iv;
      for (int q = 0; q < 64; ++q) {
        std::size_t lo = std::size_t(mrng.UniformInt(0, int64_t(ng) - 1));
        std::size_t hi = lo + std::size_t(mrng.UniformInt(
                                  0, int64_t(ng - lo) - 1));
        iv.push_back({lo, hi});
      }
      LinOpPtr m = MakeRangeSetOp(std::move(iv), ng);
      Vec y(m->rows());
      for (auto& v : y) v = mrng.Normal();
      mset.Add(std::move(m), std::move(y), 1.0);
    }
    emit("re-derived union, direct gram (ablation)",
         TimeAb([&] {
           Vec xhat;
           for (int rep = 0; rep < direct_reps; ++rep) {
             // Rebuild the stack each call, as an iterative plan would.
             MeasurementSet fresh;
             for (const auto& item : mset.items())
               fresh.Add(item.m, item.y, item.noise_scale);
             xhat = DirectLeastSquaresInference(fresh);
           }
           return xhat;
         }),
         /*catalog=*/false);
  }

  const double geomean = std::exp(log_sum / double(rows));
  const double geomean_catalog =
      std::exp(log_sum_catalog / double(rows_catalog));
  std::printf("\ngeometric-mean speedup: %.2fx over %zu catalog plans"
              " (%.2fx over all %zu rows; worst on/off deviation %.3e)\n",
              geomean_catalog, rows_catalog, geomean, rows, worst_diff);
  json.StartRecord();
  json.Field("kind", "summary");
  json.Field("preset", quick ? "quick" : "default");
  json.Field("rows", double(rows));
  json.Field("catalog_rows", double(rows_catalog));
  json.Field("geomean_speedup_catalog_plans", geomean_catalog);
  json.Field("geomean_speedup_all_rows", geomean);
  json.Field("worst_rel_diff", worst_diff);

  if (json.WriteFile("BENCH_rewrite.json"))
    std::printf("wrote BENCH_rewrite.json\n");
  return worst_diff <= 1e-9 ? 0 : 1;
}
