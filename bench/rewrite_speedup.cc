// Rewrite-engine A/B/C: the inference-heavy catalog plans (the MWEM
// family, the HB/DAWA striped plans, and workload-reduction
// configurations) run end-to-end with the rewrite engine + OperatorCache
// OFF, in `rules` mode, and in `search` mode — identical seeds,
// identical inputs.  The run emits two files:
//
//   BENCH_rewrite.json         the historical off-vs-rules rows (shape
//                              unchanged: per-plan wall times, speedups,
//                              max relative deviation, geomean)
//   BENCH_rewrite_search.json  search-vs-rules rows, the composed-vs-
//                              materialize decision row, and cold-vs-
//                              warm canonicalization timings against a
//                              throwaway disk tier
//
// Any mode disagreement beyond 1e-9 relative exits nonzero.
//
//   ./bench_rewrite_speedup           # committed-preset domains
//   ./bench_rewrite_speedup --quick   # CI smoke preset (small domains)
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>

#include "bench_util.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "matrix/search.h"
#include "store/artifact_store.h"
#include "workload/reduction.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

struct RowResult {
  double off_s = 0.0;
  double on_s = 0.0;       // rules mode
  double search_s = 0.0;   // search mode
  double max_rel_diff = 0.0;
  double search_rel_diff = 0.0;  // search vs rules output deviation
  bool ok = true;
};

double MaxRelDiff(const Vec& a, const Vec& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst,
                     std::abs(b[i] - a[i]) / std::max(1.0, std::abs(a[i])));
  return worst;
}

/// Best-of-N timing reps per mode.  The striped catalog rows finish in
/// a few milliseconds; a single sample at that scale is dominated by
/// scheduler noise, and the acceptance geomean is computed over these
/// rows.  The cache is cleared before *every* rep, so each sample pays
/// the full cold canonicalization/search cost — reps remove OS jitter,
/// not the work under measurement (the cold->warm row measures caching).
int g_time_reps = 3;

/// Runs `fn` (which returns an estimate vector) with the toggle off,
/// then in `rules` mode, then in `search` mode, and reports times + the
/// worst relative output deviations between modes.
RowResult TimeAb(const std::function<Vec()>& fn) {
  RowResult r;
  Vec off, on, searched;
  Vec* const outs[3] = {&off, &on, &searched};
  double best[3] = {0.0, 0.0, 0.0};
  // Reps are interleaved across modes (off, rules, search, off, ...)
  // rather than run as three sequential blocks: clock-speed drift over
  // the row then hits every mode equally instead of always landing on
  // whichever mode runs last.
  for (int rep = 0; rep < g_time_reps; ++rep) {
    for (int mode = 0; mode < 3; ++mode) {
      SetRewriteMode(mode);
      OperatorCache::Global().Clear();
      WallTimer t;
      *outs[mode] = fn();
      const double s = t.Elapsed();
      if (rep == 0 || s < best[mode]) best[mode] = s;
    }
  }
  r.off_s = best[0];
  r.on_s = best[1];
  r.search_s = best[2];
  SetRewriteMode(-1);
  if (on.size() != off.size() || searched.size() != off.size()) {
    r.ok = false;
    return r;
  }
  r.max_rel_diff = MaxRelDiff(off, on);
  r.search_rel_diff = MaxRelDiff(on, searched);
  return r;
}

Vec MustExecute(const Plan& plan, const Vec& hist,
                const std::vector<std::size_t>& dims, double eps,
                uint64_t seed, Rng* client_rng, const PlanInput& base_in) {
  Rng rng = *client_rng;  // same client randomness for both A/B runs
  HistEnv env(hist, dims, eps, seed, &rng);
  ProtectedVector x(&env.kernel, env.ctx.x);
  BudgetScope scope(eps);
  PlanInput in = base_in;
  in.dims = dims;
  in.rng = &rng;
  StatusOr<Vec> xhat = plan.Execute(x, scope, in);
  EK_CHECK(xhat.ok());
  return std::move(*xhat);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // Preset: --quick keeps CI wall time low; the default preset is what
  // the committed BENCH_rewrite.json tracks.
  const std::size_t n1 = quick ? 256 : 2048;        // MWEM 1D domain
  const std::size_t mwem_rounds = quick ? 8 : 40;   // MWEM measurement rounds
  const std::size_t mw_iters = quick ? 30 : 80;     // MW steps per round
  const std::size_t stripe_n = quick ? 64 : 512;    // striped stripe length
  const std::size_t wr_n = quick ? 512 : 4096;      // workload-reduction domain
  const int direct_reps = quick ? 4 : 8;            // re-derived-union solves
  g_time_reps = quick ? 2 : 7;                      // best-of-N per mode

  const double eps = 0.5;
  Rng rng(42);
  JsonRecords json;
  JsonRecords json_search;
  double log_sum = 0.0, log_sum_catalog = 0.0;
  double log_sum_search_catalog = 0.0;
  std::size_t rows = 0, rows_catalog = 0;
  double worst_diff = 0.0, worst_search_diff = 0.0;

  std::printf("Rewrite engine A/B/C (quick=%d)\n\n", quick ? 1 : 0);
  std::printf("%-34s %10s %10s %10s %8s %12s\n", "plan", "off(s)", "rules(s)",
              "search(s)", "speedup", "max_rel_diff");

  // `catalog` rows are end-to-end registered/parameterized plans; the
  // acceptance geomean is computed over those alone.  Non-catalog rows
  // (inference ablations) are reported but tracked separately so a
  // synthetic cache-hit loop cannot carry the bar.
  auto emit = [&](const std::string& name, const RowResult& r,
                  bool catalog = true) {
    if (!r.ok) {
      std::fprintf(stderr, "%s: A/B output shapes diverged\n", name.c_str());
      std::exit(1);
    }
    const double speedup = r.off_s / r.on_s;
    const double search_speedup = r.on_s / r.search_s;
    log_sum += std::log(speedup);
    ++rows;
    if (catalog) {
      log_sum_catalog += std::log(speedup);
      log_sum_search_catalog += std::log(search_speedup);
      ++rows_catalog;
    }
    worst_diff = std::max(worst_diff, r.max_rel_diff);
    worst_search_diff = std::max(worst_search_diff, r.search_rel_diff);
    std::printf("%-34s %10.4f %10.4f %10.4f %7.2fx %12.3e\n", name.c_str(),
                r.off_s, r.on_s, r.search_s, speedup,
                std::max(r.max_rel_diff, r.search_rel_diff));
    std::fflush(stdout);
    json.StartRecord();
    json.Field("kind", catalog ? "plan" : "ablation");
    json.Field("plan", name);
    json.Field("seconds_off", r.off_s);
    json.Field("seconds_on", r.on_s);
    json.Field("speedup", speedup);
    json.Field("max_rel_diff", r.max_rel_diff);
    json_search.StartRecord();
    json_search.Field("kind", catalog ? "plan" : "ablation");
    json_search.Field("plan", name);
    json_search.Field("rules_seconds", r.on_s);
    json_search.Field("search_seconds", r.search_s);
    json_search.Field("speedup", search_speedup);
    json_search.Field("rel_diff", r.search_rel_diff);
  };

  // ---- MWEM family: per-round measurement unions are the rewrite
  // ---- engine's canonical client (variants a/b merge via the rewriter;
  // ---- c/d share the plan-level merged union on both paths).
  {
    Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, n1, 1e5, &rng);
    auto ranges = RandomRanges(200, n1, n1 / 8, &rng);
    const double total = Sum(hist);
    Rng client(7);
    struct V {
      const char* label;
      MwemOptions opts;
    };
    const V variants[] = {
        {"MWEM", {mwem_rounds, false, false, 0.0, mw_iters}},
        {"MWEM variant b", {mwem_rounds, true, false, 0.0, mw_iters}},
        {"MWEM variant c", {mwem_rounds, false, true, 0.0, mw_iters}},
        {"MWEM variant d", {mwem_rounds, true, true, 0.0, mw_iters}},
    };
    for (const V& v : variants) {
      auto plan = MakeMwemPlan(v.opts);
      PlanInput in;
      in.ranges = ranges;
      in.known_total = total;
      emit(v.label, TimeAb([&] {
             return MustExecute(*plan, hist, {n1}, eps, 9001, &client, in);
           }));
    }
  }

  // ---- Striped multi-dimensional plans.
  {
    const std::vector<std::size_t> dims = {stripe_n, 4, 4};
    const std::size_t n = stripe_n * 16;
    Vec hist = MakeHistogram1D(Shape1D::kStep, n, 1e5, &rng);
    Rng client(11);
    PlanInput in;
    in.stripe_dim = 0;
    for (const char* name : {"HB-Striped", "DAWA-Striped", "HB-Striped_kron"}) {
      const Plan& plan = PlanRegistry::Global().MustFind(name);
      emit(name, TimeAb([&] {
             return MustExecute(plan, hist, dims, eps, 9100, &client, in);
           }));
    }
  }

  // ---- Workload-based domain reduction (Sec. 8): MWEM on the reduced
  // ---- domain — the table6-style configuration whose inference loop the
  // ---- rewriter accelerates end to end.
  {
    Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, wr_n, 1e6, &rng);
    auto ranges =
        RandomRanges(512, wr_n, std::max<std::size_t>(wr_n / 64, 2), &rng);
    auto w_op = RangeQueryOp(ranges, wr_n);
    Partition p = WorkloadBasedPartition(*w_op, &rng);
    auto reduced_ranges = MapRangesToIntervalPartition(ranges, p);
    Vec reduced(p.num_groups(), 0.0);
    for (std::size_t c = 0; c < hist.size(); ++c)
      reduced[p.group_of(c)] += hist[c];
    Rng client(13);
    auto plan = MakeMwemPlan({mwem_rounds, false, false, 0.0, mw_iters});
    PlanInput in;
    in.ranges = reduced_ranges;
    in.known_total = Sum(reduced);
    emit("WorkloadReduce+MWEM",
         TimeAb([&] {
           return MustExecute(*plan, reduced, {reduced.size()}, eps, 9200,
                              &client, in);
         }));
  }

  // ---- The cache's headline scenario: an inference loop that re-derives
  // ---- the same measurement union each call (direct normal-equations
  // ---- backend).  OFF re-assembles the dense Gram every call; ON memoizes
  // ---- it under the stack's structural hash.
  {
    const std::size_t ng = quick ? 128 : 256;
    const std::size_t k_meas = quick ? 16 : 64;
    Rng mrng(17);
    MeasurementSet mset;
    for (std::size_t i = 0; i < k_meas; ++i) {
      std::vector<Interval> iv;
      for (int q = 0; q < 64; ++q) {
        std::size_t lo = std::size_t(mrng.UniformInt(0, int64_t(ng) - 1));
        std::size_t hi = lo + std::size_t(mrng.UniformInt(
                                  0, int64_t(ng - lo) - 1));
        iv.push_back({lo, hi});
      }
      LinOpPtr m = MakeRangeSetOp(std::move(iv), ng);
      Vec y(m->rows());
      for (auto& v : y) v = mrng.Normal();
      mset.Add(std::move(m), std::move(y), 1.0);
    }
    emit("re-derived union, direct gram (ablation)",
         TimeAb([&] {
           Vec xhat;
           for (int rep = 0; rep < direct_reps; ++rep) {
             // Rebuild the stack each call, as an iterative plan would.
             MeasurementSet fresh;
             for (const auto& item : mset.items())
               fresh.Add(item.m, item.y, item.noise_scale);
             xhat = DirectLeastSquaresInference(fresh);
           }
           return xhat;
         }),
         /*catalog=*/false);
  }

  // ---- Composed-vs-materialize decision row: a range workload composed
  // ---- with a column-grouping expansion matrix, applied many times.
  // ---- `rules` keeps the product composed (sparse-fuse needs two
  // ---- SparseOp factors); `search` materializes the small fused CSR,
  // ---- trading one bounded matmul for much cheaper repeated applies.
  double decision_rules_s = 0.0, decision_search_s = 0.0;
  {
    const std::size_t dn = quick ? 2048 : 8192;  // fine domain
    const std::size_t dm = quick ? 48 : 96;      // workload ranges
    const std::size_t dg = dn / 16;              // column groups
    const int dreps = quick ? 2000 : 4000;       // applies per pass
    std::vector<Interval> ranges;
    for (const auto& q : RandomRanges(dm, dn, dn / 4, &rng))
      ranges.push_back({q.lo, q.hi});
    std::vector<Triplet> trips;
    trips.reserve(dn);
    for (std::size_t c = 0; c < dn; ++c)
      trips.push_back({c, c / 16, 1.0});
    CsrMatrix s_csr = CsrMatrix::FromTriplets(dn, dg, std::move(trips));
    Rng drng(23);
    Vec x(dg);
    for (auto& v : x) v = drng.Normal();
    auto decision_fn = [&]() -> Vec {
      // Rebuild fresh operator instances each pass so per-instance
      // caches never leak across modes.
      LinOpPtr w = MakeRangeSetOp(ranges, dn);
      LinOpPtr prod = MaybeRewrite(MakeProduct(std::move(w), MakeSparse(s_csr)));
      Vec acc(prod->rows(), 0.0);
      for (int rep = 0; rep < dreps; ++rep) {
        Vec y = prod->Apply(x);
        for (std::size_t i = 0; i < y.size(); ++i) acc[i] += y[i];
      }
      return acc;
    };
    RowResult r = TimeAb(decision_fn);
    decision_rules_s = r.on_s;
    decision_search_s = r.search_s;
    worst_diff = std::max(worst_diff, r.max_rel_diff);
    worst_search_diff = std::max(worst_search_diff, r.search_rel_diff);
    std::printf("%-34s %10.4f %10.4f %10.4f %7.2fx %12.3e\n",
                "composed-vs-materialize (decision)", r.off_s, r.on_s,
                r.search_s, r.on_s / r.search_s,
                std::max(r.max_rel_diff, r.search_rel_diff));
    json_search.StartRecord();
    json_search.Field("kind", "decision");
    json_search.Field("plan", "composed-vs-materialize");
    json_search.Field("rules_seconds", r.on_s);
    json_search.Field("search_seconds", r.search_s);
    json_search.Field("speedup", r.on_s / r.search_s);
    json_search.Field("rel_diff", r.search_rel_diff);
  }

  // ---- Cold-vs-warm canonicalization against a throwaway disk tier: a
  // ---- cold process pays the full beam search per tree; a warm process
  // ---- loads the persisted canonical tree by structural hash instead.
  {
    namespace fs = std::filesystem;
    const std::string dir = "ektelo_rewrite_bench.tmp";
    std::error_code ec;
    fs::remove_all(dir, ec);
    const int k_trees = quick ? 8 : 24;
    const std::size_t cn = quick ? 512 : 2048;
    auto build_trees = [&] {
      // Composed range workloads over a grouping matrix — trees whose
      // canonicalization does real work: the search's materialize
      // decision multiplies the factors into a fused CSR cold, while a
      // warm process decodes the persisted fused leaf by structural
      // hash and skips the matmul (and the search) entirely.
      std::vector<LinOpPtr> trees;
      Rng trng(99);
      for (int t = 0; t < k_trees; ++t) {
        std::vector<Interval> iv;
        for (const auto& q : RandomRanges(96, cn, cn / 4, &trng))
          iv.push_back({q.lo, q.hi});
        std::vector<Triplet> trips;
        for (std::size_t c = 0; c < cn; ++c)
          trips.push_back({c, c / 16, 1.0});
        trees.push_back(MakeProduct(
            MakeRangeSetOp(std::move(iv), cn),
            MakeSparse(
                CsrMatrix::FromTriplets(cn, cn / 16, std::move(trips)))));
      }
      return trees;
    };
    auto attach_tier = [&] {
      store::DiskStoreOptions opts;
      opts.hash_version = kHashVersion;
      auto tier = store::DiskArtifactStore::Open(dir, opts);
      EK_CHECK(tier != nullptr);
      OperatorCache::Global().SetDiskTier(std::move(tier));
    };
    SetRewriteMode(2);
    OperatorCache::Global().Clear();
    attach_tier();
    std::vector<LinOpPtr> cold_trees = build_trees();
    WallTimer tc;
    for (const LinOpPtr& t : cold_trees) (void)MaybeRewrite(t);
    const double cold_s = tc.Elapsed();
    // Simulate a fresh process: flush + detach the tier, drop the memory
    // cache, reopen the same directory, rebuild identical trees.
    OperatorCache::Global().FlushDiskTier();
    OperatorCache::Global().SetDiskTier(nullptr);
    OperatorCache::Global().Clear();
    attach_tier();
    const std::size_t tree_disk_before =
        OperatorCache::Global().stats().tree_disk_hits;
    std::vector<LinOpPtr> warm_trees = build_trees();
    WallTimer tw;
    for (const LinOpPtr& t : warm_trees) (void)MaybeRewrite(t);
    const double warm_s = tw.Elapsed();
    const std::size_t tree_disk_hits =
        OperatorCache::Global().stats().tree_disk_hits - tree_disk_before;
    OperatorCache::Global().SetDiskTier(nullptr);
    OperatorCache::Global().Clear();
    SetRewriteMode(-1);
    fs::remove_all(dir, ec);
    std::printf("%-34s %10s %10.4f %10.4f %7.2fx  (disk tree hits %zu/%d)\n",
                "canonicalization cold->warm", "-", cold_s, warm_s,
                cold_s / warm_s, tree_disk_hits, k_trees);
    json_search.StartRecord();
    json_search.Field("kind", "canonicalization");
    json_search.Field("plan", "cold-vs-warm");
    json_search.Field("trees", double(k_trees));
    json_search.Field("cold_seconds", cold_s);
    json_search.Field("warm_seconds", warm_s);
    json_search.Field("warm_speedup", cold_s / warm_s);
    json_search.Field("tree_disk_hits", double(tree_disk_hits));
  }

  const double geomean = std::exp(log_sum / double(rows));
  const double geomean_catalog =
      std::exp(log_sum_catalog / double(rows_catalog));
  const double geomean_search =
      std::exp(log_sum_search_catalog / double(rows_catalog));
  std::printf("\ngeometric-mean rules-vs-off speedup: %.2fx over %zu catalog"
              " plans (%.2fx over all %zu rows; worst off/rules deviation"
              " %.3e)\n",
              geomean_catalog, rows_catalog, geomean, rows, worst_diff);
  std::printf("geometric-mean search-vs-rules speedup: %.2fx over %zu catalog"
              " plans (worst search/rules deviation %.3e)\n",
              geomean_search, rows_catalog, worst_search_diff);
  json.StartRecord();
  json.Field("kind", "summary");
  json.Field("preset", quick ? "quick" : "default");
  json.Field("rows", double(rows));
  json.Field("catalog_rows", double(rows_catalog));
  json.Field("geomean_speedup_catalog_plans", geomean_catalog);
  json.Field("geomean_speedup_all_rows", geomean);
  json.Field("worst_rel_diff", worst_diff);
  json_search.StartRecord();
  json_search.Field("kind", "summary");
  json_search.Field("preset", quick ? "quick" : "default");
  json_search.Field("catalog_rows", double(rows_catalog));
  json_search.Field("geomean_search_vs_rules_catalog", geomean_search);
  json_search.Field("decision_rules_seconds", decision_rules_s);
  json_search.Field("decision_search_seconds", decision_search_s);
  json_search.Field("worst_rel_diff", worst_search_diff);

  if (json.WriteFile("BENCH_rewrite.json"))
    std::printf("wrote BENCH_rewrite.json\n");
  if (json_search.WriteFile("BENCH_rewrite_search.json"))
    std::printf("wrote BENCH_rewrite_search.json\n");
  return worst_diff <= 1e-9 && worst_search_diff <= 1e-9 ? 0 : 1;
}
