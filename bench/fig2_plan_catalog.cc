// Fig. 2: the plan catalog.  Runs every plan signature end-to-end on a
// suitable small domain and prints its signature, scaled workload error
// and budget spent — the "all plans are expressible and run" claim of
// Sec. 6, in executable form.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

int main() {
  Rng rng(2);
  const double eps = 0.5;

  std::printf("Fig 2: executable plan catalog (eps=%.2g)\n\n", eps);
  std::printf("%-4s %-18s %-34s %12s %8s\n", "#", "plan", "signature",
              "err(ranges)", "budget");

  // Shared 1D environment pieces.
  const std::size_t n = 1024;
  Vec hist1d = MakeHistogram1D(Shape1D::kGaussianMix, n, 1e5, &rng);
  auto ranges = RandomRanges(200, n, 128, &rng);
  auto w_1d = RangeQueryOp(ranges, n);
  const double total = Sum(hist1d);

  // Shared 2D environment pieces.
  const std::size_t side = 32;
  Vec hist2d = MakeHistogram2D(side, side, 1e5, &rng);
  Rng rng2 = rng.Fork();
  auto rects = RandomRectangleWorkload(200, side, side, 16, &rng2);

  int id = 0;
  auto row = [&](const char* name, const char* sig, bool two_d,
                 auto&& run) {
    ++id;
    Vec& hist = two_d ? hist2d : hist1d;
    std::vector<std::size_t> dims =
        two_d ? std::vector<std::size_t>{side, side}
              : std::vector<std::size_t>{n};
    HistEnv env(hist, dims, eps, 4000 + id, &rng);
    StatusOr<Vec> xhat = run(env.ctx);
    if (!xhat.ok()) {
      std::printf("%-4d %-18s %-34s %12s\n", id, name, sig, "FAILED");
      return;
    }
    const LinOp& w = two_d ? *rects : *w_1d;
    std::printf("%-4d %-18s %-34s %12.3e %8.3f\n", id, name, sig,
                ScaledWorkloadError(w, *xhat, hist),
                env.kernel.BudgetConsumed());
  };

  row("Identity", "SI LM", false,
      [](const PlanContext& c) { return RunIdentityPlan(c); });
  row("Privelet", "SP LM LS", false,
      [](const PlanContext& c) { return RunPriveletPlan(c); });
  row("H2", "SH2 LM LS", false,
      [](const PlanContext& c) { return RunH2Plan(c); });
  row("HB", "SHB LM LS", false,
      [](const PlanContext& c) { return RunHbPlan(c); });
  row("Greedy-H", "SG LM LS", false, [&](const PlanContext& c) {
    return RunGreedyHPlan(c, ranges);
  });
  row("Uniform", "ST LM LS", false,
      [](const PlanContext& c) { return RunUniformPlan(c); });
  row("MWEM", "I:( SW LM MW )", false, [&](const PlanContext& c) {
    return RunMwemPlan(c, ranges, {.rounds = 8, .known_total = total});
  });
  row("AHP", "PA TR SI LM LS", false,
      [](const PlanContext& c) { return RunAhpPlan(c); });
  row("DAWA", "PD TR SG LM LS", false, [&](const PlanContext& c) {
    return RunDawaPlan(c, ranges);
  });
  row("QuadTree", "SQ LM LS", true,
      [](const PlanContext& c) { return RunQuadtreePlan(c); });
  row("UniformGrid", "SU LM LS", true,
      [](const PlanContext& c) { return RunUniformGridPlan(c); });
  row("AdaptiveGrid", "SU LM LS PU TP[ SA LM ]", true,
      [](const PlanContext& c) { return RunAdaptiveGridPlan(c); });
  row("HDMM", "SHD LM LS", false, [&](const PlanContext& c) {
    return RunHdmmPlan(c, {RangeQueryOp(ranges, n)});
  });

  // Striped plans on a 3D domain.
  {
    const std::vector<std::size_t> dims3 = {64, 4, 4};
    Vec hist3 = MakeHistogram1D(Shape1D::kStep, 64 * 16, 1e5, &rng);
    auto ranges3 = RandomRanges(200, 64 * 16, 64, &rng);
    auto w_3 = RangeQueryOp(ranges3, 64 * 16);
    auto striped = [&](const char* name, const char* sig, auto&& run) {
      ++id;
      HistEnv env(hist3, dims3, eps, 4000 + id, &rng);
      auto xhat = run(env.ctx);
      if (!xhat.ok()) {
        std::printf("%-4d %-18s %-34s %12s\n", id, name, sig, "FAILED");
        return;
      }
      std::printf("%-4d %-18s %-34s %12.3e %8.3f\n", id, name, sig,
                  ScaledWorkloadError(*w_3, *xhat, hist3),
                  env.kernel.BudgetConsumed());
    };
    striped("DAWA-Striped", "PS TP[ PD TR SG LM ] LS",
            [](const PlanContext& c) { return RunDawaStripedPlan(c, 0); });
    striped("HB-Striped", "PS TP[ SHB LM ] LS",
            [](const PlanContext& c) { return RunHbStripedPlan(c, 0); });
    striped("HB-Striped_kron", "SS LM LS", [](const PlanContext& c) {
      return RunHbStripedKronPlan(c, 0);
    });
  }

  // PrivBayes plans on a small multi-attribute table.
  {
    Rng drng(9);
    Table t = MakeCreditLike(&drng, 8000);
    auto w = AllKWayMarginals(t.schema(), 2);
    Vec x_true = t.Vectorize();
    auto pb = [&](const char* name, const char* sig, auto&& run) {
      ++id;
      ProtectedKernel kernel(t, eps, 4000 + id);
      auto xhat = run(&kernel);
      if (!xhat.ok()) {
        std::printf("%-4d %-18s %-34s %12s\n", id, name, sig, "FAILED");
        return;
      }
      std::printf("%-4d %-18s %-34s %12.3e %8.3f\n", id, name, sig,
                  ScaledWorkloadError(*w, *xhat, x_true),
                  kernel.BudgetConsumed());
    };
    pb("PrivBayesLS", "SPB LM LS", [&](ProtectedKernel* k) {
      return RunPrivBayesLsPlan(k, t.schema(), eps, &rng);
    });
  }

  // MWEM variants.
  row("MWEM variant b", "I:( SW SH2 LM MW )", false,
      [&](const PlanContext& c) {
        return RunMwemPlan(c, ranges,
                           {.rounds = 8, .augment_h2 = true,
                            .known_total = total});
      });
  row("MWEM variant c", "I:( SW LM NLS )", false,
      [&](const PlanContext& c) {
        return RunMwemPlan(c, ranges,
                           {.rounds = 8, .nnls_inference = true,
                            .known_total = total});
      });
  row("MWEM variant d", "I:( SW SH2 LM NLS )", false,
      [&](const PlanContext& c) {
        return RunMwemPlan(c, ranges,
                           {.rounds = 8, .augment_h2 = true,
                            .nnls_inference = true, .known_total = total});
      });

  std::printf(
      "\nAll rows spend exactly eps: every signature of Fig. 2 executes "
      "under the kernel's proof.\n");
  return 0;
}
