// Fig. 2: the plan catalog.  Runs every plan signature end-to-end on a
// suitable small domain and prints its signature, scaled workload error
// and budget spent — the "all plans are expressible and run" claim of
// Sec. 6, in executable form.
//
// Besides the human-readable table, the run writes BENCH_plan_catalog.json
// with per-plan wall times (implicit mode plus a dense/sparse mode sweep
// over the representation-sensitive plans) and two operator-core
// micro-baselines that compare the blocked engine against the
// pre-refactor per-column evaluation strategy, so the perf trajectory of
// the materialization/Gram hot paths is recorded per commit.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

/// Exposes only the apply interface of an operator (single and blocked),
/// hiding its structured materialization/Gram overrides.  This models the
/// class the generic fallback serves: operators that can be applied
/// efficiently but have no direct construction (composed Grams,
/// measurement stacks after vector transformations, ...).
class OpaqueOp final : public LinOp {
 public:
  explicit OpaqueOp(LinOpPtr inner)
      : LinOp(inner->rows(), inner->cols()), inner_(std::move(inner)) {}
  void ApplyRaw(const double* x, double* y) const override {
    inner_->ApplyRaw(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    inner_->ApplyTRaw(x, y);
  }
  void ApplyBlockRaw(const double* x, double* y,
                     std::size_t k) const override {
    inner_->ApplyBlockRaw(x, y, k);
  }
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override {
    inner_->ApplyTBlockRaw(x, y, k);
  }
  std::string DebugName() const override { return "Opaque"; }

 private:
  LinOpPtr inner_;
};

/// The pre-refactor MaterializeSparse fallback: one basis vector and one
/// scalar mat-vec per column.  Kept here as the measured baseline.
CsrMatrix PercolumnMaterialize(const LinOp& op) {
  std::vector<Triplet> t;
  Vec e(op.cols(), 0.0), col(op.rows());
  for (std::size_t j = 0; j < op.cols(); ++j) {
    e[j] = 1.0;
    op.ApplyRaw(e.data(), col.data());
    e[j] = 0.0;
    for (std::size_t i = 0; i < op.rows(); ++i)
      if (col[i] != 0.0) t.push_back({i, j, col[i]});
  }
  return CsrMatrix::FromTriplets(op.rows(), op.cols(), std::move(t));
}

/// The pre-refactor GramSparse: materialize M, then S^T S by sparse
/// matmul.  Baseline for the structured Gram() path.
CsrMatrix PercolumnGramSparse(const LinOp& op) {
  CsrMatrix s = PercolumnMaterialize(op);
  return s.Transpose().Matmul(s);
}

}  // namespace

int main() {
  Rng rng(2);
  const double eps = 0.5;
  JsonRecords json;

  std::printf("Fig 2: executable plan catalog (eps=%.2g)\n\n", eps);
  std::printf("%-4s %-18s %-34s %-9s %12s %8s %9s\n", "#", "plan",
              "signature", "mode", "err(ranges)", "budget", "secs");

  // Shared 1D environment pieces.
  const std::size_t n = 1024;
  Vec hist1d = MakeHistogram1D(Shape1D::kGaussianMix, n, 1e5, &rng);
  auto ranges = RandomRanges(200, n, 128, &rng);
  auto w_1d = RangeQueryOp(ranges, n);
  const double total = Sum(hist1d);

  // Shared 2D environment pieces.
  const std::size_t side = 32;
  Vec hist2d = MakeHistogram2D(side, side, 1e5, &rng);
  Rng rng2 = rng.Fork();
  auto rects = RandomRectangleWorkload(200, side, side, 16, &rng2);

  int id = 0;
  auto row_mode = [&](const char* name, const char* sig, bool two_d,
                      MatrixMode mode, auto&& run) {
    ++id;
    Vec& hist = two_d ? hist2d : hist1d;
    std::vector<std::size_t> dims =
        two_d ? std::vector<std::size_t>{side, side}
              : std::vector<std::size_t>{n};
    HistEnv env(hist, dims, eps, 4000 + id, &rng, mode);
    WallTimer timer;
    StatusOr<Vec> xhat = run(env.ctx);
    const double secs = timer.Elapsed();
    if (!xhat.ok()) {
      std::printf("%-4d %-18s %-34s %-9s %12s\n", id, name, sig,
                  MatrixModeName(mode), "FAILED");
      return;
    }
    const LinOp& w = two_d ? *rects : *w_1d;
    const double err = ScaledWorkloadError(w, *xhat, hist);
    std::printf("%-4d %-18s %-34s %-9s %12.3e %8.3f %9.4f\n", id, name, sig,
                MatrixModeName(mode), err, env.kernel.BudgetConsumed(),
                secs);
    json.StartRecord();
    json.Field("kind", "plan");
    json.Field("plan", name);
    json.Field("signature", sig);
    json.Field("mode", MatrixModeName(mode));
    json.Field("seconds", secs);
    json.Field("scaled_error", err);
    json.Field("budget", env.kernel.BudgetConsumed());
  };
  auto row = [&](const char* name, const char* sig, bool two_d,
                 auto&& run) {
    row_mode(name, sig, two_d, MatrixMode::kImplicit, run);
  };

  row("Identity", "SI LM", false,
      [](const PlanContext& c) { return RunIdentityPlan(c); });
  row("Privelet", "SP LM LS", false,
      [](const PlanContext& c) { return RunPriveletPlan(c); });
  row("H2", "SH2 LM LS", false,
      [](const PlanContext& c) { return RunH2Plan(c); });
  row("HB", "SHB LM LS", false,
      [](const PlanContext& c) { return RunHbPlan(c); });
  row("Greedy-H", "SG LM LS", false, [&](const PlanContext& c) {
    return RunGreedyHPlan(c, ranges);
  });
  row("Uniform", "ST LM LS", false,
      [](const PlanContext& c) { return RunUniformPlan(c); });
  row("MWEM", "I:( SW LM MW )", false, [&](const PlanContext& c) {
    return RunMwemPlan(c, ranges, {.rounds = 8, .known_total = total});
  });
  row("AHP", "PA TR SI LM LS", false,
      [](const PlanContext& c) { return RunAhpPlan(c); });
  row("DAWA", "PD TR SG LM LS", false, [&](const PlanContext& c) {
    return RunDawaPlan(c, ranges);
  });
  row("QuadTree", "SQ LM LS", true,
      [](const PlanContext& c) { return RunQuadtreePlan(c); });
  row("UniformGrid", "SU LM LS", true,
      [](const PlanContext& c) { return RunUniformGridPlan(c); });
  row("AdaptiveGrid", "SU LM LS PU TP[ SA LM ]", true,
      [](const PlanContext& c) { return RunAdaptiveGridPlan(c); });
  row("HDMM", "SHD LM LS", false, [&](const PlanContext& c) {
    return RunHdmmPlan(c, {RangeQueryOp(ranges, n)});
  });

  // Representation sweep (Sec. 10.2): the same plan logic under dense and
  // sparse physical matrices — the MaterializeSparse/MaterializeDense-heavy
  // paths the blocked core accelerates.
  for (MatrixMode mode : {MatrixMode::kDense, MatrixMode::kSparse}) {
    row_mode("Identity", "SI LM", false, mode,
             [](const PlanContext& c) { return RunIdentityPlan(c); });
    row_mode("Privelet", "SP LM LS", false, mode,
             [](const PlanContext& c) { return RunPriveletPlan(c); });
    row_mode("H2", "SH2 LM LS", false, mode,
             [](const PlanContext& c) { return RunH2Plan(c); });
    row_mode("HB", "SHB LM LS", false, mode,
             [](const PlanContext& c) { return RunHbPlan(c); });
    row_mode("Uniform", "ST LM LS", false, mode,
             [](const PlanContext& c) { return RunUniformPlan(c); });
    row_mode("Greedy-H", "SG LM LS", false, mode,
             [&](const PlanContext& c) { return RunGreedyHPlan(c, ranges); });
  }

  // Striped plans on a 3D domain.
  {
    const std::vector<std::size_t> dims3 = {64, 4, 4};
    Vec hist3 = MakeHistogram1D(Shape1D::kStep, 64 * 16, 1e5, &rng);
    auto ranges3 = RandomRanges(200, 64 * 16, 64, &rng);
    auto w_3 = RangeQueryOp(ranges3, 64 * 16);
    auto striped = [&](const char* name, const char* sig, auto&& run) {
      ++id;
      HistEnv env(hist3, dims3, eps, 4000 + id, &rng);
      WallTimer timer;
      auto xhat = run(env.ctx);
      const double secs = timer.Elapsed();
      if (!xhat.ok()) {
        std::printf("%-4d %-18s %-34s %-9s %12s\n", id, name, sig,
                    "implicit", "FAILED");
        return;
      }
      const double err = ScaledWorkloadError(*w_3, *xhat, hist3);
      std::printf("%-4d %-18s %-34s %-9s %12.3e %8.3f %9.4f\n", id, name,
                  sig, "implicit", err, env.kernel.BudgetConsumed(), secs);
      json.StartRecord();
      json.Field("kind", "plan");
      json.Field("plan", name);
      json.Field("signature", sig);
      json.Field("mode", "implicit");
      json.Field("seconds", secs);
      json.Field("scaled_error", err);
      json.Field("budget", env.kernel.BudgetConsumed());
    };
    striped("DAWA-Striped", "PS TP[ PD TR SG LM ] LS",
            [](const PlanContext& c) { return RunDawaStripedPlan(c, 0); });
    striped("HB-Striped", "PS TP[ SHB LM ] LS",
            [](const PlanContext& c) { return RunHbStripedPlan(c, 0); });
    striped("HB-Striped_kron", "SS LM LS", [](const PlanContext& c) {
      return RunHbStripedKronPlan(c, 0);
    });
  }

  // PrivBayes plans on a small multi-attribute table.
  {
    Rng drng(9);
    Table t = MakeCreditLike(&drng, 8000);
    auto w = AllKWayMarginals(t.schema(), 2);
    Vec x_true = t.Vectorize();
    auto pb = [&](const char* name, const char* sig, auto&& run) {
      ++id;
      ProtectedKernel kernel(t, eps, 4000 + id);
      WallTimer timer;
      auto xhat = run(&kernel);
      const double secs = timer.Elapsed();
      if (!xhat.ok()) {
        std::printf("%-4d %-18s %-34s %-9s %12s\n", id, name, sig,
                    "implicit", "FAILED");
        return;
      }
      const double err = ScaledWorkloadError(*w, *xhat, x_true);
      std::printf("%-4d %-18s %-34s %-9s %12.3e %8.3f %9.4f\n", id, name,
                  sig, "implicit", err, kernel.BudgetConsumed(), secs);
      json.StartRecord();
      json.Field("kind", "plan");
      json.Field("plan", name);
      json.Field("signature", sig);
      json.Field("mode", "implicit");
      json.Field("seconds", secs);
      json.Field("scaled_error", err);
      json.Field("budget", kernel.BudgetConsumed());
    };
    pb("PrivBayesLS", "SPB LM LS", [&](ProtectedKernel* k) {
      return RunPrivBayesLsPlan(k, t.schema(), eps, &rng);
    });
  }

  // MWEM variants.
  row("MWEM variant b", "I:( SW SH2 LM MW )", false,
      [&](const PlanContext& c) {
        return RunMwemPlan(c, ranges,
                           {.rounds = 8, .augment_h2 = true,
                            .known_total = total});
      });
  row("MWEM variant c", "I:( SW LM NLS )", false,
      [&](const PlanContext& c) {
        return RunMwemPlan(c, ranges,
                           {.rounds = 8, .nnls_inference = true,
                            .known_total = total});
      });
  row("MWEM variant d", "I:( SW SH2 LM NLS )", false,
      [&](const PlanContext& c) {
        return RunMwemPlan(c, ranges,
                           {.rounds = 8, .augment_h2 = true,
                            .nnls_inference = true, .known_total = total});
      });

  // Operator-core micro-baselines: blocked engine vs the pre-refactor
  // per-column strategy, on a structure-free (opaque) operator so the
  // generic fallback is what is measured.
  {
    auto kron = MakeKronecker(MakePrefixOp(256), MakeWaveletOp(8));
    auto kron_opaque = std::make_shared<OpaqueOp>(kron);

    // The fallback's real clients are composed operators with no direct
    // construction — a lazy Gram is the canonical one.  Old fallback: one
    // basis vector and one composed apply per column; new: identity
    // panels through the blocked pipeline + counting-sort CSR assembly.
    LinOpPtr lazy_gram = kron_opaque->Gram();
    WallTimer t1;
    CsrMatrix base = PercolumnMaterialize(*lazy_gram);
    const double percol_s = t1.Elapsed();
    WallTimer t2;
    CsrMatrix blocked = lazy_gram->MaterializeSparse();
    const double blocked_s = t2.Elapsed();
    std::printf(
        "\nmaterialize fallback (lazy Gram of Kron(Prefix(256),Wavelet(8))): "
        "per-column %.4fs -> blocked %.4fs (%.2fx), nnz %zu/%zu\n",
        percol_s, blocked_s, percol_s / blocked_s, base.nnz(),
        blocked.nnz());
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "materialize_sparse_fallback");
    json.Field("operator", "Gram(Kron(Prefix(256),Wavelet(8)))");
    json.Field("baseline_percolumn_seconds", percol_s);
    json.Field("blocked_seconds", blocked_s);
    json.Field("speedup", percol_s / blocked_s);
    WallTimer t5;
    CsrMatrix kg_base = PercolumnGramSparse(*kron_opaque);
    const double kron_percol_s = t5.Elapsed();
    WallTimer t6;
    CsrMatrix kg_new = GramSparse(*kron);
    const double kron_new_s = t6.Elapsed();
    std::printf(
        "gram (Kron(Prefix(256),Wavelet(8))): per-column %.4fs -> "
        "structured Gram() %.4fs (%.2fx), nnz %zu/%zu\n",
        kron_percol_s, kron_new_s, kron_percol_s / kron_new_s,
        kg_base.nnz(), kg_new.nnz());
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "gram_sparse_kron");
    json.Field("operator", "Kron(Prefix(256),Wavelet(8))");
    json.Field("baseline_percolumn_seconds", kron_percol_s);
    json.Field("blocked_seconds", kron_new_s);
    json.Field("speedup", kron_percol_s / kron_new_s);

    // Solver level: the same CG-on-normal-equations run, through the
    // pre-refactor composed A^T(Ax) (what the opaque wrapper's default
    // Gram() degenerates to) versus the structured Gram() operator.
    Rng srng(77);
    Vec bvec(kron->rows());
    for (double& v : bvec) v = srng.Normal();
    CgOptions cg_opts;
    cg_opts.max_iters = 200;
    WallTimer t7;
    CgResult cg_base = CgLeastSquares(*kron_opaque, bvec, cg_opts);
    const double cg_base_s = t7.Elapsed();
    WallTimer t8;
    CgResult cg_new = CgLeastSquares(*kron, bvec, cg_opts);
    const double cg_new_s = t8.Elapsed();
    std::printf(
        "cg normal equations (same system, %zu iters): composed %.4fs -> "
        "structured Gram() %.4fs (%.2fx)\n",
        cg_new.iterations, cg_base_s, cg_new_s, cg_base_s / cg_new_s);
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "cg_gram_normal_equations");
    json.Field("operator", "Kron(Prefix(256),Wavelet(8))");
    json.Field("baseline_percolumn_seconds", cg_base_s);
    json.Field("blocked_seconds", cg_new_s);
    json.Field("speedup", cg_base_s / cg_new_s);
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "cg_iterations_match");
    json.Field("baseline", double(cg_base.iterations));
    json.Field("blocked", double(cg_new.iterations));
  }

  if (json.WriteFile("BENCH_plan_catalog.json"))
    std::printf("\nwrote BENCH_plan_catalog.json\n");

  std::printf(
      "\nAll rows spend exactly eps: every signature of Fig. 2 executes "
      "under the kernel's proof.\n");
  return 0;
}
