// Fig. 2: the plan catalog.  Enumerates PlanRegistry::Global() — so a
// newly registered plan is benchmarked automatically, no hand-maintained
// list — runs every plan end-to-end on a domain matching its DomainKind,
// and prints its signature, scaled workload error and budget spent: the
// "all plans are expressible and run" claim of Sec. 6, in executable
// form.  (PrivBayesLS starts from the protected *table*, outside the
// vector-plan registry, and keeps a hand-written row.)
//
// Besides the human-readable table, the run writes BENCH_plan_catalog.json
// with per-plan wall times (implicit mode plus a dense/sparse mode sweep
// over the representation-sensitive plans) and two operator-core
// micro-baselines that compare the blocked engine against the
// pre-refactor per-column evaluation strategy, so the perf trajectory of
// the materialization/Gram hot paths is recorded per commit.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

/// Exposes only the apply interface of an operator (single and blocked),
/// hiding its structured materialization/Gram overrides.  This models the
/// class the generic fallback serves: operators that can be applied
/// efficiently but have no direct construction (composed Grams,
/// measurement stacks after vector transformations, ...).
class OpaqueOp final : public LinOp {
 public:
  explicit OpaqueOp(LinOpPtr inner)
      : LinOp(inner->rows(), inner->cols()), inner_(std::move(inner)) {}
  void ApplyRaw(const double* x, double* y) const override {
    inner_->ApplyRaw(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    inner_->ApplyTRaw(x, y);
  }
  void ApplyBlockRaw(const double* x, double* y,
                     std::size_t k) const override {
    inner_->ApplyBlockRaw(x, y, k);
  }
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override {
    inner_->ApplyTBlockRaw(x, y, k);
  }
  std::string DebugName() const override { return "Opaque"; }

 private:
  LinOpPtr inner_;
};

/// The pre-refactor MaterializeSparse fallback: one basis vector and one
/// scalar mat-vec per column.  Kept here as the measured baseline.
CsrMatrix PercolumnMaterialize(const LinOp& op) {
  std::vector<Triplet> t;
  Vec e(op.cols(), 0.0), col(op.rows());
  for (std::size_t j = 0; j < op.cols(); ++j) {
    e[j] = 1.0;
    op.ApplyRaw(e.data(), col.data());
    e[j] = 0.0;
    for (std::size_t i = 0; i < op.rows(); ++i)
      if (col[i] != 0.0) t.push_back({i, j, col[i]});
  }
  return CsrMatrix::FromTriplets(op.rows(), op.cols(), std::move(t));
}

/// The pre-refactor GramSparse: materialize M, then S^T S by sparse
/// matmul.  Baseline for the structured Gram() path.
CsrMatrix PercolumnGramSparse(const LinOp& op) {
  CsrMatrix s = PercolumnMaterialize(op);
  return s.Transpose().Matmul(s);
}

}  // namespace

int main() {
  Rng rng(2);
  const double eps = 0.5;
  JsonRecords json;

  std::printf("Fig 2: executable plan catalog (eps=%.2g)\n\n", eps);
  std::printf("%-4s %-18s %-34s %-9s %12s %8s %9s\n", "#", "plan",
              "signature", "mode", "err(ranges)", "budget", "secs");

  // Shared 1D environment pieces.
  const std::size_t n = 1024;
  Vec hist1d = MakeHistogram1D(Shape1D::kGaussianMix, n, 1e5, &rng);
  auto ranges = RandomRanges(200, n, 128, &rng);
  auto w_1d = RangeQueryOp(ranges, n);
  const double total = Sum(hist1d);

  // Shared 2D environment pieces.
  const std::size_t side = 32;
  Vec hist2d = MakeHistogram2D(side, side, 1e5, &rng);
  Rng rng2 = rng.Fork();
  auto rects = RandomRectangleWorkload(200, side, side, 16, &rng2);

  // Shared multi-dim (striped) environment pieces.
  const std::vector<std::size_t> dims3 = {64, 4, 4};
  Vec hist3 = MakeHistogram1D(Shape1D::kStep, 64 * 16, 1e5, &rng);
  auto ranges3 = RandomRanges(200, 64 * 16, 64, &rng);
  auto w_3 = RangeQueryOp(ranges3, 64 * 16);

  int id = 0;
  // One registry-driven row: environment, workload and error metric are
  // picked from the plan's DomainKind; inputs the plan does not need are
  // simply ignored by it.
  auto row = [&](const Plan& plan, MatrixMode mode) {
    ++id;
    const Vec* hist = &hist1d;
    std::vector<std::size_t> dims = {n};
    const LinOp* err_w = w_1d.get();
    switch (plan.domain()) {
      case DomainKind::k1D:
        break;
      case DomainKind::k2D:
        hist = &hist2d;
        dims = {side, side};
        err_w = rects.get();
        break;
      case DomainKind::kMultiDim:
        hist = &hist3;
        dims = dims3;
        err_w = w_3.get();
        break;
    }
    HistEnv env(*hist, dims, eps, 4000 + id, &rng, mode);
    ProtectedVector x(&env.kernel, env.ctx.x);
    BudgetScope scope(eps);
    PlanInput in;
    in.dims = dims;
    in.mode = mode;
    in.rng = &rng;
    in.ranges = ranges;
    in.workload = w_1d;
    in.workload_factors = {w_1d};
    in.known_total = total;
    in.stripe_dim = 0;
    WallTimer timer;
    StatusOr<Vec> xhat = plan.Execute(x, scope, in);
    const double secs = timer.Elapsed();
    if (!xhat.ok()) {
      std::printf("%-4d %-18s %-34s %-9s %12s\n", id, plan.name().c_str(),
                  plan.signature().c_str(), MatrixModeName(mode), "FAILED");
      return;
    }
    const double err = ScaledWorkloadError(*err_w, *xhat, *hist);
    std::printf("%-4d %-18s %-34s %-9s %12.3e %8.3f %9.4f\n", id,
                plan.name().c_str(), plan.signature().c_str(),
                MatrixModeName(mode), err, env.kernel.BudgetConsumed(),
                secs);
    json.StartRecord();
    json.Field("kind", "plan");
    json.Field("plan", plan.name());
    json.Field("signature", plan.signature());
    json.Field("mode", MatrixModeName(mode));
    json.Field("seconds", secs);
    json.Field("scaled_error", err);
    json.Field("budget", env.kernel.BudgetConsumed());
  };

  const std::vector<const Plan*> catalog = PlanRegistry::Global().Catalog();
  for (const Plan* plan : catalog) row(*plan, MatrixMode::kImplicit);

  // Representation sweep (Sec. 10.2): the same plan logic under dense and
  // sparse physical matrices — the MaterializeSparse/MaterializeDense-heavy
  // paths the blocked core accelerates.  Plans opt in via mode_sweep.
  for (MatrixMode mode : {MatrixMode::kDense, MatrixMode::kSparse})
    for (const Plan* plan : catalog)
      if (plan->mode_sweep()) row(*plan, mode);

  // PrivBayes plans on a small multi-attribute table.
  {
    Rng drng(9);
    Table t = MakeCreditLike(&drng, 8000);
    auto w = AllKWayMarginals(t.schema(), 2);
    Vec x_true = t.Vectorize();
    auto pb = [&](const char* name, const char* sig, auto&& run) {
      ++id;
      ProtectedKernel kernel(t, eps, 4000 + id);
      WallTimer timer;
      auto xhat = run(&kernel);
      const double secs = timer.Elapsed();
      if (!xhat.ok()) {
        std::printf("%-4d %-18s %-34s %-9s %12s\n", id, name, sig,
                    "implicit", "FAILED");
        return;
      }
      const double err = ScaledWorkloadError(*w, *xhat, x_true);
      std::printf("%-4d %-18s %-34s %-9s %12.3e %8.3f %9.4f\n", id, name,
                  sig, "implicit", err, kernel.BudgetConsumed(), secs);
      json.StartRecord();
      json.Field("kind", "plan");
      json.Field("plan", name);
      json.Field("signature", sig);
      json.Field("mode", "implicit");
      json.Field("seconds", secs);
      json.Field("scaled_error", err);
      json.Field("budget", kernel.BudgetConsumed());
    };
    pb("PrivBayesLS", "SPB LM LS", [&](ProtectedKernel* k) {
      return RunPrivBayesLsPlan(k, t.schema(), eps, &rng);
    });
  }

  // Operator-core micro-baselines: blocked engine vs the pre-refactor
  // per-column strategy, on a structure-free (opaque) operator so the
  // generic fallback is what is measured.
  {
    auto kron = MakeKronecker(MakePrefixOp(256), MakeWaveletOp(8));
    auto kron_opaque = std::make_shared<OpaqueOp>(kron);

    // The fallback's real clients are composed operators with no direct
    // construction — a lazy Gram is the canonical one.  Old fallback: one
    // basis vector and one composed apply per column; new: identity
    // panels through the blocked pipeline + counting-sort CSR assembly.
    LinOpPtr lazy_gram = kron_opaque->Gram();
    WallTimer t1;
    CsrMatrix base = PercolumnMaterialize(*lazy_gram);
    const double percol_s = t1.Elapsed();
    WallTimer t2;
    CsrMatrix blocked = lazy_gram->MaterializeSparse();
    const double blocked_s = t2.Elapsed();
    std::printf(
        "\nmaterialize fallback (lazy Gram of Kron(Prefix(256),Wavelet(8))): "
        "per-column %.4fs -> blocked %.4fs (%.2fx), nnz %zu/%zu\n",
        percol_s, blocked_s, percol_s / blocked_s, base.nnz(),
        blocked.nnz());
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "materialize_sparse_fallback");
    json.Field("operator", "Gram(Kron(Prefix(256),Wavelet(8)))");
    json.Field("baseline_percolumn_seconds", percol_s);
    json.Field("blocked_seconds", blocked_s);
    json.Field("speedup", percol_s / blocked_s);
    WallTimer t5;
    CsrMatrix kg_base = PercolumnGramSparse(*kron_opaque);
    const double kron_percol_s = t5.Elapsed();
    WallTimer t6;
    CsrMatrix kg_new = GramSparse(*kron);
    const double kron_new_s = t6.Elapsed();
    std::printf(
        "gram (Kron(Prefix(256),Wavelet(8))): per-column %.4fs -> "
        "structured Gram() %.4fs (%.2fx), nnz %zu/%zu\n",
        kron_percol_s, kron_new_s, kron_percol_s / kron_new_s,
        kg_base.nnz(), kg_new.nnz());
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "gram_sparse_kron");
    json.Field("operator", "Kron(Prefix(256),Wavelet(8))");
    json.Field("baseline_percolumn_seconds", kron_percol_s);
    json.Field("blocked_seconds", kron_new_s);
    json.Field("speedup", kron_percol_s / kron_new_s);

    // Solver level: the same CG-on-normal-equations run, through the
    // pre-refactor composed A^T(Ax) (what the opaque wrapper's default
    // Gram() degenerates to) versus the structured Gram() operator.
    Rng srng(77);
    Vec bvec(kron->rows());
    for (double& v : bvec) v = srng.Normal();
    CgOptions cg_opts;
    cg_opts.max_iters = 200;
    WallTimer t7;
    CgResult cg_base = CgLeastSquares(*kron_opaque, bvec, cg_opts);
    const double cg_base_s = t7.Elapsed();
    WallTimer t8;
    CgResult cg_new = CgLeastSquares(*kron, bvec, cg_opts);
    const double cg_new_s = t8.Elapsed();
    std::printf(
        "cg normal equations (same system, %zu iters): composed %.4fs -> "
        "structured Gram() %.4fs (%.2fx)\n",
        cg_new.iterations, cg_base_s, cg_new_s, cg_base_s / cg_new_s);
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "cg_gram_normal_equations");
    json.Field("operator", "Kron(Prefix(256),Wavelet(8))");
    json.Field("baseline_percolumn_seconds", cg_base_s);
    json.Field("blocked_seconds", cg_new_s);
    json.Field("speedup", cg_base_s / cg_new_s);
    json.StartRecord();
    json.Field("kind", "core");
    json.Field("bench", "cg_iterations_match");
    json.Field("baseline", double(cg_base.iterations));
    json.Field("blocked", double(cg_new.iterations));
  }

  if (json.WriteFile("BENCH_plan_catalog.json"))
    std::printf("\nwrote BENCH_plan_catalog.json\n");

  std::printf(
      "\nAll rows spend exactly eps: every signature of Fig. 2 executes "
      "under the kernel's proof.\n");
  return 0;
}
