// Table 6: error and runtime improvements from workload-based domain
// reduction (Sec. 8), for AHP (128x128), DAWA (4096), Identity (256x256)
// and HB (4096) with W = RandomRange, small ranges.
//
// "Original" runs the plan on the full domain; "Reduced" first computes
// the workload-based partition (Algorithm 4, client-side and free), runs
// the plan on the reduced vector, and expands via P+.  Reported factors
// are original/reduced for both scaled workload error and runtime.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

namespace {

struct Case {
  const char* name;
  std::vector<std::size_t> dims;  // full-domain shape for the plan
  bool two_d;
  std::function<StatusOr<Vec>(const PlanContext&,
                              const std::vector<RangeQuery>&)> run;
};

}  // namespace

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.1;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;
  Rng rng(6);

  // Group volumes of the active workload partition; empty when running on
  // the original domain.  DAWA's partition selection normalizes by these
  // so pre-merged groups still expose uniform-region structure.
  Vec active_volumes;

  std::vector<Case> cases;
  cases.push_back({"AHP", {128, 128}, true,
                   [](const PlanContext& c, const std::vector<RangeQuery>&) {
                     return RunAhpPlan(c);
                   }});
  cases.push_back({"DAWA", {4096}, false,
                   [&active_volumes](const PlanContext& c,
                                     const std::vector<RangeQuery>& w) {
                     DawaPlanOptions opts;
                     opts.dawa.cell_volumes = active_volumes;
                     return RunDawaPlan(c, w, opts);
                   }});
  cases.push_back({"Identity", {256, 256}, true,
                   [](const PlanContext& c, const std::vector<RangeQuery>&) {
                     return RunIdentityPlan(c);
                   }});
  cases.push_back({"HB", {4096}, false,
                   [](const PlanContext& c, const std::vector<RangeQuery>&) {
                     return RunHbPlan(c);
                   }});

  std::printf(
      "Table 6: workload-based domain reduction (W=RandomRange, small "
      "ranges; eps=%.2g; mean of %d trials)\n\n", eps, trials);
  std::printf("%-10s %11s %11s | %11s %11s | %8s %8s\n", "plan",
              "orig err", "orig t(s)", "red err", "red t(s)", "err x",
              "time x");

  for (const auto& c : cases) {
    std::size_t n = 1;
    for (std::size_t d : c.dims) n *= d;
    // Smooth multi-modal data, as in DPBench's common cases: exact step
    // functions make the original DAWA unrealistically perfect, which
    // would overstate the reduction's cost for that row.
    Vec hist = c.two_d
                   ? MakeHistogram2D(c.dims[0], c.dims[1], 1e6, &rng)
                   : MakeHistogram1D(Shape1D::kGaussianMix, n, 1e6, &rng);
    // Small ranges over the flattened domain.
    auto ranges = RandomRanges(512, n, std::max<std::size_t>(n / 64, 2),
                               &rng);
    auto w_op = RangeQueryOp(ranges, n);
    // Workload-based partition (public, Algorithm 4).
    Partition p = WorkloadBasedPartition(*w_op, &rng);
    auto w_reduced = ReduceWorkload(w_op, p);
    // Reduced workload as ranges over groups (groups of a 1D range
    // workload are intervals), for plans that need a range workload.
    auto reduced_ranges = MapRangesToIntervalPartition(ranges, p);

    double err_orig = 0.0, err_red = 0.0, t_orig = 0.0, t_red = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      {
        active_volumes.clear();
        HistEnv env(hist, c.dims, eps, 100 + trial, &rng);
        WallTimer t;
        auto xhat = c.run(env.ctx, ranges);
        t_orig += t.Elapsed();
        if (xhat.ok())
          err_orig += ScaledWorkloadError(*w_op, *xhat, hist);
      }
      {
        // Reduce first: the plan then runs on the reduced vector.
        auto sizes = p.GroupSizes();
        active_volumes.assign(sizes.begin(), sizes.end());
        ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps,
                               200 + trial);
        auto x = kernel.TVectorize(kernel.root());
        WallTimer t;
        auto xr = kernel.VReduceByPartition(*x, p);
        PlanContext ctx{.kernel = &kernel, .x = *xr,
                        .dims = {p.num_groups()}, .eps = eps, .rng = &rng};
        auto xhat_red = c.run(ctx, reduced_ranges);
        t_red += t.Elapsed();
        if (xhat_red.ok()) {
          Vec expanded = ExpandEstimate(p, *xhat_red);
          err_red += ScaledWorkloadError(*w_op, expanded, hist);
        }
      }
    }
    err_orig /= trials;
    err_red /= trials;
    std::printf("%-10s %11.3e %11.3f | %11.3e %11.3f | %8.2f %8.2f\n",
                c.name, err_orig, t_orig / trials, err_red, t_red / trials,
                err_orig / err_red, t_orig / t_red);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper (Table 6): error factors 1.29 (AHP), 0.99 (DAWA), 2.89 "
      "(Identity), 1.34 (HB);\nruntime factors 5.36 / 0.92 / 0.73 / "
      "0.62.\n");
  return 0;
}
