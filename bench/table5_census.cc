// Table 5: Census case study — scaled per-query L2 error of five plans on
// three Census-style workloads over the CPS-like table (domain 1.4M cells
// at the default 5000 income bins).
//
// Usage: table5_census [income_bins] [eps]
// The default reproduces the paper's domain geometry; pass a smaller bin
// count (e.g. 500) for a quick run.
#include "bench_util.h"

using namespace ektelo;
using namespace ektelo::bench;

int main(int argc, char** argv) {
  const std::size_t income_bins =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;

  Rng rng(42);
  WallTimer setup;
  Table table = MakeCensusLike(&rng, 49436, income_bins);
  const Schema& schema = table.schema();
  const std::size_t n = schema.TotalDomainSize();
  Vec x_true = table.Vectorize();
  std::vector<std::size_t> dims;
  for (const auto& a : schema.attrs()) dims.push_back(a.domain_size);

  std::printf(
      "Table 5: Census workloads; domain size %zu; eps=%.3g "
      "(setup %.1fs)\n\n",
      n, eps, setup.Elapsed());

  auto w_identity = IdentityWorkload(n);
  auto w_marginals = AllKWayMarginals(schema, 2);
  auto w_census = CensusPrefixIncomeWorkload(schema);

  std::printf("%-14s %14s %14s %16s %10s\n", "plan", "Identity",
              "2-way Marg.", "Prefix(Income)", "time(s)");

  auto report = [&](const char* name, const StatusOr<Vec>& xhat,
                    double seconds) {
    if (!xhat.ok()) {
      std::printf("%-14s failed: %s\n", name,
                  xhat.status().ToString().c_str());
      return;
    }
    std::printf("%-14s %14.3e %14.3e %16.3e %10.1f\n", name,
                ScaledWorkloadError(*w_identity, *xhat, x_true),
                ScaledWorkloadError(*w_marginals, *xhat, x_true),
                ScaledWorkloadError(*w_census, *xhat, x_true), seconds);
    std::fflush(stdout);
  };

  {
    ProtectedKernel kernel(table, eps, 1);
    auto x = kernel.TVectorize(kernel.root());
    PlanContext ctx{.kernel = &kernel, .x = *x, .dims = dims, .eps = eps,
                    .rng = &rng};
    WallTimer t;
    auto xhat = RunIdentityPlan(ctx);
    report("Identity", xhat, t.Elapsed());
  }
  {
    ProtectedKernel kernel(table, eps, 2);
    WallTimer t;
    auto xhat = RunPrivBayesPlan(&kernel, schema, eps, &rng);
    report("PrivBayes", xhat, t.Elapsed());
  }
  {
    ProtectedKernel kernel(table, eps, 3);
    WallTimer t;
    auto xhat = RunPrivBayesLsPlan(&kernel, schema, eps, &rng);
    report("PrivBayesLS", xhat, t.Elapsed());
  }
  {
    ProtectedKernel kernel(table, eps, 4);
    auto x = kernel.TVectorize(kernel.root());
    PlanContext ctx{.kernel = &kernel, .x = *x, .dims = dims, .eps = eps,
                    .rng = &rng};
    WallTimer t;
    auto xhat = RunHbStripedPlan(ctx, /*stripe_dim=*/0);
    report("HB-Striped", xhat, t.Elapsed());
  }
  {
    ProtectedKernel kernel(table, eps, 5);
    auto x = kernel.TVectorize(kernel.root());
    PlanContext ctx{.kernel = &kernel, .x = *x, .dims = dims, .eps = eps,
                    .rng = &rng};
    WallTimer t;
    auto xhat = RunDawaStripedPlan(ctx, /*stripe_dim=*/0);
    report("DAWA-Striped", xhat, t.Elapsed());
  }

  std::printf(
      "\npaper (Table 5, x1e-7): Identity 241.8/120.4/189.7, PrivBayes "
      "769.3/653.1/287.0,\n  PrivBayesLS 58.6/132.9/368.1, HB-Striped "
      "703.1/219.1/41.3, DAWA-Striped 34.3/19.6/25.0\n");
  return 0;
}
