// Naive-Bayes classification case study (paper Sec. 9.3, Fig. 3).
//
// Trains DP Naive-Bayes classifiers on a credit-default-like dataset with
// four plans (Identity, Workload, WorkloadLS, SelectLS) across privacy
// budgets, and prints median AUC with quartiles from cross validation,
// next to the Majority and Unperturbed baselines.
//
//   $ ./examples/naive_bayes [rows] [reps]
#include <cstdio>
#include <cstdlib>

#include "ektelo/ektelo.h"

using namespace ektelo;

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10000;
  const std::size_t reps =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  Rng rng(99);
  Table data = MakeCreditLike(&rng, rows);
  std::printf("credit-like data: %zu rows, joint predictor domain %zu\n\n",
              data.NumRows(), data.schema().TotalDomainSize() / 2);

  NbEvalResult clean =
      EvaluateNbClassifier(std::nullopt, data, 0.0, 10, 1, &rng);
  std::printf("Unperturbed AUC: %.3f   Majority AUC: 0.500\n\n",
              clean.Median());

  std::printf("%-12s", "eps");
  for (NbPlanKind k : {NbPlanKind::kIdentity, NbPlanKind::kWorkload,
                       NbPlanKind::kWorkloadLs, NbPlanKind::kSelectLs})
    std::printf(" %21s", NbPlanName(k).c_str());
  std::printf("\n");

  for (double eps : {1e-3, 1e-2, 1e-1}) {
    std::printf("%-12.0e", eps);
    for (NbPlanKind k : {NbPlanKind::kIdentity, NbPlanKind::kWorkload,
                         NbPlanKind::kWorkloadLs, NbPlanKind::kSelectLs}) {
      NbEvalResult r = EvaluateNbClassifier(k, data, eps, 10, reps, &rng);
      std::printf("   %.3f [%.3f,%.3f]", r.Median(), r.Percentile(25),
                  r.Percentile(75));
    }
    std::printf("\n");
  }
  return 0;
}
