// Census tabulations case study (paper Sec. 9.2), scaled for a demo run.
//
// Builds a CPS-like table (income x age x marital x race x gender),
// answers three Census-style workloads with several plans, and prints the
// scaled per-query L2 error of each — the qualitative Table 5 comparison.
//
//   $ ./examples/census_tabulations [eps] [income_bins]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ektelo/ektelo.h"

using namespace ektelo;

namespace {

double ScaledL2(const LinOp& w, const Vec& xhat, const Vec& x_true,
                double scale) {
  return Rmse(w.Apply(xhat), w.Apply(x_true)) / scale;
}

}  // namespace

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.1;
  const std::size_t income_bins =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;

  Rng rng(11);
  Table table = MakeCensusLike(&rng, 49436, income_bins);
  const Schema& schema = table.schema();
  const std::size_t n = schema.TotalDomainSize();
  Vec x_true = table.Vectorize();
  const double scale = Sum(x_true);
  std::vector<std::size_t> dims;
  for (const auto& a : schema.attrs()) dims.push_back(a.domain_size);

  std::printf("census-like domain: %zu cells, %zu records, eps=%.3g\n\n", n,
              table.NumRows(), eps);

  auto w_identity = IdentityWorkload(n);
  auto w_marginals = AllKWayMarginals(schema, 2);
  auto w_census = CensusPrefixIncomeWorkload(schema);

  struct Row {
    std::string name;
    Vec xhat;
  };
  std::vector<Row> rows;

  auto run_vector_plan = [&](const std::string& name, auto&& fn) {
    ProtectedKernel kernel(table, eps, 100 + rows.size());
    auto x = kernel.TVectorize(kernel.root());
    PlanContext ctx{.kernel = &kernel, .x = *x, .dims = dims, .eps = eps,
                    .rng = &rng};
    auto xhat = fn(ctx);
    if (xhat.ok()) rows.push_back({name, std::move(*xhat)});
  };

  run_vector_plan("Identity",
                  [](const PlanContext& c) { return RunIdentityPlan(c); });
  run_vector_plan("HB-Striped", [](const PlanContext& c) {
    return RunHbStripedPlan(c, /*stripe_dim=*/0);
  });
  run_vector_plan("DAWA-Striped", [](const PlanContext& c) {
    return RunDawaStripedPlan(c, /*stripe_dim=*/0);
  });
  {
    ProtectedKernel kernel(table, eps, 500);
    auto xhat = RunPrivBayesPlan(&kernel, schema, eps, &rng);
    if (xhat.ok()) rows.push_back({"PrivBayes", std::move(*xhat)});
  }
  {
    ProtectedKernel kernel(table, eps, 501);
    auto xhat = RunPrivBayesLsPlan(&kernel, schema, eps, &rng);
    if (xhat.ok()) rows.push_back({"PrivBayesLS", std::move(*xhat)});
  }

  std::printf("%-14s %14s %14s %16s\n", "plan", "Identity", "2-way Marg.",
              "Prefix(Income)");
  for (const auto& r : rows) {
    std::printf("%-14s %14.3e %14.3e %16.3e\n", r.name.c_str(),
                ScaledL2(*w_identity, r.xhat, x_true, scale),
                ScaledL2(*w_marginals, r.xhat, x_true, scale),
                ScaledL2(*w_census, r.xhat, x_true, scale));
  }
  return 0;
}
