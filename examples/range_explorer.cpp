// 2D spatial exploration: compare UniformGrid, AdaptiveGrid and Quadtree
// on a synthetic spatial dataset (Gaussian blobs over a sparse background)
// and visualize the AdaptiveGrid estimate as an ASCII heat map.
//
//   $ ./examples/range_explorer [side] [eps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "ektelo/ektelo.h"

using namespace ektelo;

namespace {

void PrintHeatmap(const char* title, const Vec& x, std::size_t nx,
                  std::size_t ny) {
  static const char* shades = " .:-=+*#%@";
  double max_v = 1e-9;
  for (double v : x) max_v = std::max(max_v, v);
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < nx; i += 2) {  // 2 rows per char line
    for (std::size_t j = 0; j < ny; ++j) {
      double v = std::max(x[i * ny + j], 0.0);
      if (i + 1 < nx) v = 0.5 * (v + std::max(x[(i + 1) * ny + j], 0.0));
      int shade = static_cast<int>(9.0 * v / max_v);
      std::putchar(shades[std::clamp(shade, 0, 9)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t side =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;

  Rng rng(5);
  Vec hist = MakeHistogram2D(side, side, 200000.0, &rng);
  Table table = TableFromHistogram(hist, "cell");
  // Evaluate on random rectangle queries.
  auto w = RandomRectangleWorkload(400, side, side, side / 4, &rng);
  const double scale = Sum(hist);

  std::printf("2D spatial data %zux%zu, %0.f records, eps=%.3g\n\n", side,
              side, scale, eps);
  std::printf("%-14s %18s\n", "plan", "rect-query error");
  Vec agrid_estimate;
  struct P {
    const char* name;
    StatusOr<Vec> (*run)(const PlanContext&);
  };
  auto quadtree = [](const PlanContext& c) { return RunQuadtreePlan(c); };
  auto ugrid = [](const PlanContext& c) {
    return RunUniformGridPlan(c, {});
  };
  auto agrid = [](const PlanContext& c) {
    return RunAdaptiveGridPlan(c, {});
  };
  StatusOr<Vec> (*plans[])(const PlanContext&) = {quadtree, ugrid, agrid};
  const char* names[] = {"Quadtree", "UniformGrid", "AdaptiveGrid"};
  for (int k = 0; k < 3; ++k) {
    ProtectedKernel kernel(table, eps, 40 + k);
    auto x = kernel.TVectorize(kernel.root());
    PlanContext ctx{.kernel = &kernel, .x = *x, .dims = {side, side},
                    .eps = eps, .rng = &rng};
    auto xhat = plans[k](ctx);
    if (!xhat.ok()) {
      std::printf("%-14s failed: %s\n", names[k],
                  xhat.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s %18.4e\n", names[k],
                Rmse(w->Apply(*xhat), w->Apply(hist)) / scale);
    if (k == 2) agrid_estimate = std::move(*xhat);
  }

  std::printf("\n");
  PrintHeatmap("true density:", hist, side, side);
  std::printf("\n");
  if (!agrid_estimate.empty())
    PrintHeatmap("AdaptiveGrid DP estimate:", agrid_estimate, side, side);
  return 0;
}
