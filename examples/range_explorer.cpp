// 2D spatial exploration: compare UniformGrid, AdaptiveGrid and Quadtree
// on a synthetic spatial dataset (Gaussian blobs over a sparse background)
// and visualize the AdaptiveGrid estimate as an ASCII heat map.
//
//   $ ./examples/range_explorer [side] [eps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "ektelo/ektelo.h"

using namespace ektelo;

namespace {

void PrintHeatmap(const char* title, const Vec& x, std::size_t nx,
                  std::size_t ny) {
  static const char* shades = " .:-=+*#%@";
  double max_v = 1e-9;
  for (double v : x) max_v = std::max(max_v, v);
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < nx; i += 2) {  // 2 rows per char line
    for (std::size_t j = 0; j < ny; ++j) {
      double v = std::max(x[i * ny + j], 0.0);
      if (i + 1 < nx) v = 0.5 * (v + std::max(x[(i + 1) * ny + j], 0.0));
      int shade = static_cast<int>(9.0 * v / max_v);
      std::putchar(shades[std::clamp(shade, 0, 9)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t side =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;

  Rng rng(5);
  Vec hist = MakeHistogram2D(side, side, 200000.0, &rng);
  Table table = TableFromHistogram(hist, "cell");
  // Evaluate on random rectangle queries.
  auto w = RandomRectangleWorkload(400, side, side, side / 4, &rng);
  const double scale = Sum(hist);

  std::printf("2D spatial data %zux%zu, %0.f records, eps=%.3g\n\n", side,
              side, scale, eps);
  std::printf("%-14s %18s\n", "plan", "rect-query error");
  Vec agrid_estimate;
  // Every registered 2D plan, straight from the catalog: a newly
  // registered spatial plan shows up here with no code change.
  int k = 0;
  for (const Plan* plan : PlanRegistry::Global().Catalog()) {
    if (plan->domain() != DomainKind::k2D) continue;
    ProtectedKernel kernel(table, eps, 40 + k++);
    ProtectedTable root = ProtectedTable::Root(&kernel);
    StatusOr<ProtectedVector> x = root.Vectorize();
    BudgetScope scope(kernel.BudgetRemaining());
    PlanInput input;
    input.dims = {side, side};
    input.rng = &rng;
    auto xhat = plan->Execute(*x, scope, input);
    if (!xhat.ok()) {
      std::printf("%-14s failed: %s\n", plan->name().c_str(),
                  xhat.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s %18.4e\n", plan->name().c_str(),
                Rmse(w->Apply(*xhat), w->Apply(hist)) / scale);
    if (plan->name() == "AdaptiveGrid") agrid_estimate = std::move(*xhat);
  }

  std::printf("\n");
  PrintHeatmap("true density:", hist, side, side);
  std::printf("\n");
  if (!agrid_estimate.empty())
    PrintHeatmap("AdaptiveGrid DP estimate:", agrid_estimate, side, side);
  return 0;
}
