// Quickstart: the paper's running example (Algorithm 1).
//
// Estimates the empirical CDF of salary for males in their 30s under
// eps-differential privacy.  Demonstrates the core EKTELO workflow:
// protected kernel init -> table transformations -> partition selection ->
// reduce -> measure -> inference -> workload answers.
//
//   $ ./examples/quickstart [eps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "ektelo/ektelo.h"

using namespace ektelo;

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 1.0;

  // ---- Synthetic Census-style table: [age, sex, salary] -----------------
  // salary is discretized into 50 bins of $15k (0 .. $750k).
  Rng rng(2024);
  Table table(Schema({{"age", 100}, {"sex", 2}, {"salary", 50}}));
  for (int i = 0; i < 20000; ++i) {
    auto age = static_cast<uint32_t>(rng.UniformInt(18, 90));
    auto sex = static_cast<uint32_t>(rng.UniformInt(0, 1));
    double s = std::exp(rng.Normal(10.6 + (age >= 30 && age <= 39 ? 0.25 : 0.0), 0.7));
    auto salary = static_cast<uint32_t>(
        std::clamp(s / 15000.0, 0.0, 49.0));
    table.AppendRow({age, sex, salary});
  }
  const Predicate males_30s = Predicate::True()
                                  .And("sex", CmpOp::kEq, 1)
                                  .And("age", CmpOp::kGe, 30)
                                  .And("age", CmpOp::kLe, 39);
  Vec true_cdf = MakePrefixOp(50)->Apply(
      table.Where(males_30s).Select({"salary"}).Vectorize());

  // ---- Run Algorithm 1 through the protected kernel ---------------------
  ProtectedKernel kernel(table, /*eps_total=*/eps, /*seed=*/7);
  CdfPlanOptions opts;
  opts.filter = males_30s;
  opts.value_attr = "salary";
  opts.eps = eps;
  StatusOr<Vec> cdf = RunCdfEstimatorPlan(&kernel, opts);
  if (!cdf.ok()) {
    std::printf("plan failed: %s\n", cdf.status().ToString().c_str());
    return 1;
  }

  std::printf("DP CDF estimate of salary (males in their 30s), eps=%.3g\n",
              eps);
  std::printf("%-12s %12s %12s\n", "salary<=", "true CDF", "DP estimate");
  for (std::size_t b = 4; b < 50; b += 5) {
    std::printf("$%-11zu %12.0f %12.1f\n", (b + 1) * 15000, true_cdf[b],
                (*cdf)[b]);
  }
  std::printf("\nbudget spent: %.4f of %.4f\n", kernel.BudgetConsumed(),
              kernel.eps_total());
  std::printf("scaled L2 error: %.4f\n",
              Rmse(*cdf, true_cdf) / std::max(true_cdf.back(), 1.0));
  return 0;
}
