// Quickstart: the paper's running example (Algorithm 1), written against
// the typed client API.
//
// Estimates the empirical CDF of salary for males in their 30s under
// eps-differential privacy.  Demonstrates the core EKTELO workflow:
//
//   * ProtectedTable / ProtectedVector — typed handles over protected
//     sources: table ops on tables, vector ops on vectors, enforced at
//     compile time.
//   * BudgetScope — explicit eps allocation: the plan's allowance is
//     split once, and each stage spends exactly its share.
//   * PlanRegistry — the Fig. 2 catalog by name: the same protected
//     histogram feeds a registered plan with zero extra plumbing.
//
//   $ ./examples/quickstart [eps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "ektelo/ektelo.h"

using namespace ektelo;

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 1.0;

  // ---- Synthetic Census-style table: [age, sex, salary] -----------------
  // salary is discretized into 50 bins of $15k (0 .. $750k).
  Rng rng(2024);
  Table table(Schema({{"age", 100}, {"sex", 2}, {"salary", 50}}));
  for (int i = 0; i < 20000; ++i) {
    auto age = static_cast<uint32_t>(rng.UniformInt(18, 90));
    auto sex = static_cast<uint32_t>(rng.UniformInt(0, 1));
    double s = std::exp(rng.Normal(10.6 + (age >= 30 && age <= 39 ? 0.25 : 0.0), 0.7));
    auto salary = static_cast<uint32_t>(
        std::clamp(s / 15000.0, 0.0, 49.0));
    table.AppendRow({age, sex, salary});
  }
  const Predicate males_30s = Predicate::True()
                                  .And("sex", CmpOp::kEq, 1)
                                  .And("age", CmpOp::kGe, 30)
                                  .And("age", CmpOp::kLe, 39);
  Vec true_hist = table.Where(males_30s).Select({"salary"}).Vectorize();
  Vec true_cdf = MakePrefixOp(50)->Apply(true_hist);

  // ---- Algorithm 1 through typed handles and budget scopes --------------
  ProtectedKernel kernel(table, /*eps_total=*/eps, /*seed=*/7);
  ProtectedTable root = ProtectedTable::Root(&kernel);

  // Transformations (lines 2-4): each handle derives the next; a vector
  // op on a table handle would not compile.
  StatusOr<ProtectedTable> filtered = root.Where(males_30s);
  if (!filtered.ok()) {
    std::printf("Where failed: %s\n",
                filtered.status().ToString().c_str());
    return 1;
  }
  StatusOr<ProtectedTable> selected = filtered->Select({"salary"});
  if (!selected.ok()) {
    std::printf("Select failed: %s\n",
                selected.status().ToString().c_str());
    return 1;
  }
  StatusOr<ProtectedVector> x = selected->Vectorize();
  if (!x.ok()) {
    std::printf("Vectorize failed: %s\n", x.status().ToString().c_str());
    return 1;
  }

  // The plan's allowance, split half for partition selection, half for
  // measurement — no hand-rolled eps arithmetic.  Literal in-range
  // fractions cannot fail to split.
  BudgetScope scope(kernel.BudgetRemaining());
  std::vector<BudgetScope> stages = scope.Split({0.5, 0.5}).value();
  BudgetScope& s_select = stages[0];
  BudgetScope& s_measure = stages[1];

  // AHPpartition (line 5) + reduce (line 6) + Identity Laplace (7-8).
  StatusOr<Partition> part =
      AhpPartitionSelect(*x, s_select.remaining(), s_select);
  if (!part.ok()) {
    std::printf("AHPpartition failed: %s\n",
                part.status().ToString().c_str());
    return 1;
  }
  StatusOr<ProtectedVector> reduced = x->ReduceByPartition(*part);
  if (!reduced.ok()) {
    std::printf("reduce failed: %s\n",
                reduced.status().ToString().c_str());
    return 1;
  }
  StatusOr<Vec> y = reduced->Laplace(*MakeIdentityOp(part->num_groups()),
                                     s_measure.remaining(), s_measure);
  if (!y.ok()) {
    std::printf("measurement failed: %s\n", y.status().ToString().c_str());
    return 1;
  }

  // NNLS inference + prefix workload (lines 9-11): public post-processing.
  MeasurementSet mset;
  mset.Add(part->ReduceOp(), std::move(*y), 2.0 / eps);
  Vec cdf = MakePrefixOp(x->size())->Apply(NnlsInference(mset));

  std::printf("DP CDF estimate of salary (males in their 30s), eps=%.3g\n",
              eps);
  std::printf("%-12s %12s %12s\n", "salary<=", "true CDF", "DP estimate");
  for (std::size_t b = 4; b < 50; b += 5) {
    std::printf("$%-11zu %12.0f %12.1f\n", (b + 1) * 15000, true_cdf[b],
                cdf[b]);
  }
  std::printf("\nbudget spent: %.4f of %.4f\n", kernel.BudgetConsumed(),
              kernel.eps_total());
  std::printf("scaled L2 error: %.4f\n",
              Rmse(cdf, true_cdf) / std::max(true_cdf.back(), 1.0));

  // ---- The same protected data through a registered catalog plan --------
  // A second kernel (fresh budget) over the filtered salary histogram,
  // answering through "HB" looked up by name.
  ProtectedKernel kernel2(TableFromHistogram(true_hist, "salary"), eps, 8);
  ProtectedTable root2 = ProtectedTable::Root(&kernel2);
  StatusOr<ProtectedVector> x2 = root2.Vectorize();
  const Plan* hb = PlanRegistry::Global().Find("HB");
  if (!x2.ok() || hb == nullptr) return 1;
  BudgetScope scope2(kernel2.BudgetRemaining());
  PlanInput input;
  input.dims = {x2->size()};
  StatusOr<Vec> xhat = hb->Execute(*x2, scope2, input);
  if (xhat.ok()) {
    Vec hb_cdf = MakePrefixOp(50)->Apply(*xhat);
    std::printf(
        "\nregistry plan \"%s\" (%s) on the same histogram: scaled L2 "
        "error %.4f (%zu plans in catalog)\n",
        hb->name().c_str(), hb->signature().c_str(),
        Rmse(hb_cdf, true_cdf) / std::max(true_cdf.back(), 1.0),
        PlanRegistry::Global().size());
  }
  return 0;
}
