#include "util/net.h"

#ifndef _WIN32

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace ektelo::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

/// Fills a sockaddr_un; false when the path does not fit (sun_path is a
/// fixed ~108-byte array and silent truncation would bind the wrong file).
bool FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

StatusOr<UnixListener> UnixListener::Bind(const std::string& path,
                                          int backlog) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr))
    return Status::InvalidArgument("socket path empty or too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // A stale socket file from a dead daemon would make bind fail with
  // EADDRINUSE forever; remove it.  A *live* daemon is still protected:
  // the ledger's single-writer lock refuses the second server instance
  // before it ever binds.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  }
  return UnixListener(fd, path);
}

UnixListener::UnixListener(UnixListener&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)) {
  o.fd_ = -1;
}

UnixListener& UnixListener::operator=(UnixListener&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    o.fd_ = -1;
  }
  return *this;
}

UnixListener::~UnixListener() { Close(); }

void UnixListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

StatusOr<int> UnixListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  pollfd p{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) return Status::Unavailable("accept timeout");
  int cfd;
  do {
    cfd = ::accept(fd_, nullptr, nullptr);
  } while (cfd < 0 && errno == EINTR);
  if (cfd < 0) return Errno("accept");
  return cfd;
}

StatusOr<int> ConnectUnix(const std::string& path, int timeout_ms) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr))
    return Status::InvalidArgument("socket path empty or too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  int saved_flags = 0;
  if (timeout_ms > 0) {
    saved_flags = ::fcntl(fd, F_GETFL, 0);
    if (saved_flags < 0 || ::fcntl(fd, F_SETFL, saved_flags | O_NONBLOCK) < 0) {
      Status s = Errno("fcntl");
      ::close(fd);
      return s;
    }
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && timeout_ms > 0 && errno == EINPROGRESS) {
    // Bounded wait for the three-way completion, then read the verdict.
    pollfd p{fd, POLLOUT, 0};
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect timeout: " + path);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (err != 0) errno = err;
      Status s = Errno("connect");
      ::close(fd);
      return s;
    }
    rc = 0;
  }
  if (rc != 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  if (timeout_ms > 0 && ::fcntl(fd, F_SETFL, saved_flags) < 0) {
    Status s = Errno("fcntl");
    ::close(fd);
    return s;
  }
  return fd;
}

namespace {

Status SetSockTimeout(int fd, int optname, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0)
    return Errno("setsockopt");
  return Status::Ok();
}

}  // namespace

Status SetRecvTimeout(int fd, int timeout_ms) {
  return SetSockTimeout(fd, SO_RCVTIMEO, timeout_ms);
}

Status SetSendTimeout(int fd, int timeout_ms) {
  return SetSockTimeout(fd, SO_SNDTIMEO, timeout_ms);
}

Status SendAll(int fd, const uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::DeadlineExceeded("send timeout");
      return Errno("send");
    }
    sent += std::size_t(rc);
  }
  return Status::Ok();
}

Status RecvAll(int fd, uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::DeadlineExceeded("read timeout");
      return Errno("recv");
    }
    if (rc == 0) {
      // Clean hang-up between frames is the normal end of a connection;
      // EOF inside a frame is a torn message.
      return got == 0 ? Status::Unavailable("connection closed")
                      : Status::Internal("connection closed mid-frame");
    }
    got += std::size_t(rc);
  }
  return Status::Ok();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace ektelo::net

#else  // _WIN32

namespace ektelo::net {

namespace {
Status Unsupported() {
  return Status::Unimplemented("AF_UNIX sockets are not available");
}
}  // namespace

StatusOr<UnixListener> UnixListener::Bind(const std::string&, int) {
  return Unsupported();
}
UnixListener::UnixListener(UnixListener&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)) {
  o.fd_ = -1;
}
UnixListener& UnixListener::operator=(UnixListener&& o) noexcept {
  fd_ = o.fd_;
  path_ = std::move(o.path_);
  o.fd_ = -1;
  return *this;
}
UnixListener::~UnixListener() = default;
void UnixListener::Close() {}
StatusOr<int> UnixListener::Accept(int) { return Unsupported(); }
StatusOr<int> ConnectUnix(const std::string&, int) { return Unsupported(); }
Status SetRecvTimeout(int, int) { return Unsupported(); }
Status SetSendTimeout(int, int) { return Unsupported(); }
Status SendAll(int, const uint8_t*, std::size_t) { return Unsupported(); }
Status RecvAll(int, uint8_t*, std::size_t) { return Unsupported(); }
void CloseFd(int) {}
void IgnoreSigpipe() {}

}  // namespace ektelo::net

#endif  // _WIN32
