// Minimal local-socket plumbing for the serving daemon.
//
// The EKTELO serving protocol runs over an AF_UNIX stream socket: the
// daemon and its clients share a machine (the kernel/client split of
// paper Sec. 3 reified as a process boundary), so there is no TLS, no
// address resolution, and filesystem permissions on the socket path are
// the connection ACL.  This header wraps exactly the syscalls the server
// and client need — bind/listen/accept with a poll-based timeout (so the
// accept loop can observe a stop flag), connect, and EINTR-safe
// whole-buffer send/recv — behind Status-returning calls.  Frame layout
// on top of the byte stream lives in serve/protocol.h.
//
// POSIX-only: on platforms without AF_UNIX sockets every entry point
// returns kUnimplemented and the serving subsystem is unavailable; the
// rest of the library is unaffected.
#ifndef EKTELO_UTIL_NET_H_
#define EKTELO_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace ektelo::net {

/// A listening AF_UNIX stream socket.  Move-only; closes on destruction
/// and removes the socket file it bound.
class UnixListener {
 public:
  /// Binds and listens on `path` (an existing socket file at the path is
  /// removed first — a previous daemon's leftover).  Path length is
  /// limited by sockaddr_un (~100 bytes).
  static StatusOr<UnixListener> Bind(const std::string& path,
                                     int backlog = 64);

  UnixListener(UnixListener&& o) noexcept;
  UnixListener& operator=(UnixListener&& o) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  /// Waits up to timeout_ms for a connection.  Returns the connected fd,
  /// kUnavailable on timeout, or an error status (including after
  /// Close()).  The caller owns the returned fd.
  StatusOr<int> Accept(int timeout_ms);

  /// Closes the listening socket; a concurrent Accept fails promptly.
  void Close();

  const std::string& path() const { return path_; }

 private:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening unix socket; the caller owns the returned fd.
/// With timeout_ms > 0 the connect itself is bounded (non-blocking
/// connect + poll) and kDeadlineExceeded reports expiry; 0 blocks.
StatusOr<int> ConnectUnix(const std::string& path, int timeout_ms = 0);

/// Bounds every subsequent Recv/Send on `fd` (SO_RCVTIMEO/SO_SNDTIMEO);
/// an expired I/O surfaces as kDeadlineExceeded from RecvAll/SendAll.
/// 0 restores fully blocking I/O.
Status SetRecvTimeout(int fd, int timeout_ms);
Status SetSendTimeout(int fd, int timeout_ms);

/// Writes all n bytes (EINTR-safe, SIGPIPE suppressed).
/// kDeadlineExceeded when a send timeout armed on the fd expires.
Status SendAll(int fd, const uint8_t* data, std::size_t n);

/// Reads exactly n bytes.  kUnavailable on clean EOF at a frame boundary
/// (n bytes requested, zero read), kInternal on mid-buffer EOF or error,
/// kDeadlineExceeded when a receive timeout armed on the fd expires.
Status RecvAll(int fd, uint8_t* data, std::size_t n);

/// Close an fd obtained from Accept/ConnectUnix (EINTR-safe).
void CloseFd(int fd);

/// Process-wide SIGPIPE opt-out (idempotent).  Both the daemon and the
/// client call it at startup: a peer that hangs up mid-write must yield
/// EPIPE through a Status, never kill the process.  MSG_NOSIGNAL
/// already covers send(); this also covers any stray write() path.
void IgnoreSigpipe();

}  // namespace ektelo::net

#endif  // EKTELO_UTIL_NET_H_
