// EK_CHECK macros: fail-fast invariant checks for internal (non-kernel)
// code paths.  These abort the process; they are for programmer errors,
// never for conditions an adversarial plan could trigger (those must return
// Status from kernel entry points instead).
#ifndef EKTELO_UTIL_CHECK_H_
#define EKTELO_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ektelo::internal {
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "EK_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace ektelo::internal

#define EK_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond))                                                   \
      ::ektelo::internal::CheckFail(__FILE__, __LINE__, #cond);    \
  } while (0)

#define EK_CHECK_EQ(a, b) EK_CHECK((a) == (b))
#define EK_CHECK_NE(a, b) EK_CHECK((a) != (b))
#define EK_CHECK_LT(a, b) EK_CHECK((a) < (b))
#define EK_CHECK_LE(a, b) EK_CHECK((a) <= (b))
#define EK_CHECK_GT(a, b) EK_CHECK((a) > (b))
#define EK_CHECK_GE(a, b) EK_CHECK((a) >= (b))

#endif  // EKTELO_UTIL_CHECK_H_
