// A bounded multi-producer / multi-consumer FIFO with non-blocking
// admission.
//
// Producers call TryPush, which refuses immediately when the queue is at
// capacity — that refusal IS the backpressure signal: the serving daemon
// turns it into an UNAVAILABLE response instead of queueing unbounded
// work, and the artifact store's write-behind drops a cache write rather
// than stall a request thread.  Consumers block in Pop until an item or
// Close() arrives; after Close the remaining items are still drained in
// order, then Pop returns nullopt forever.  All operations are
// thread-safe.
#ifndef EKTELO_UTIL_BOUNDED_QUEUE_H_
#define EKTELO_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ektelo {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue without blocking; false when the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes every blocked Pop; already queued
  /// items are still delivered.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ektelo

#endif  // EKTELO_UTIL_BOUNDED_QUEUE_H_
