#include "util/status.h"

namespace ektelo {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kBudgetExhausted:
      return "BUDGET_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace ektelo
