// 64-byte-aligned buffer support for the vectorized kernel layer.
//
// The SIMD block kernels (linalg/simd/) issue unaligned vector loads, so
// alignment is never a correctness requirement — but cacheline-aligned
// bases keep vector loads from straddling lines and make the padded-tail
// reasoning local: an AlignedVec's base is always 64-byte aligned, and
// its allocation is always padded to a whole number of cachelines, so a
// full 8-lane store at the last partial group can never touch memory the
// allocator does not own.  (Kernels still never *read* past size(): tails
// are handled with explicit scalar lanes to keep results defined.)
//
// Block, DenseMatrix and CsrMatrix values all allocate through this
// allocator, as do the packed row-major panels the CSR/Haar kernels
// build internally.
#ifndef EKTELO_UTIL_ALIGNED_H_
#define EKTELO_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "util/check.h"

namespace ektelo {

inline constexpr std::size_t kCachelineBytes = 64;

inline bool IsAligned64(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) % kCachelineBytes) == 0;
}

/// std::allocator drop-in returning 64-byte-aligned storage whose total
/// extent is rounded up to a whole number of cachelines.
template <class T>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(alignof(T) <= kCachelineBytes, "over-aligned element type");

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes =
        (n * sizeof(T) + kCachelineBytes - 1) / kCachelineBytes *
        kCachelineBytes;
    void* p = ::operator new(bytes, std::align_val_t{kCachelineBytes});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCachelineBytes});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// The double buffer type of every kernel-facing allocation.
using AlignedVec = std::vector<double, AlignedAllocator<double>>;

}  // namespace ektelo

// Debug-mode alignment assert for buffers that are *supposed* to come from
// the aligned allocator (Block/DenseMatrix/CsrMatrix storage and packed
// kernel panels).  Compiled out in release builds; kernels remain correct
// on unaligned interior pointers either way.
#ifndef NDEBUG
#define EK_DCHECK_ALIGNED64(p) \
  EK_CHECK((p) == nullptr || ::ektelo::IsAligned64(p))
#else
#define EK_DCHECK_ALIGNED64(p) \
  do {                         \
  } while (0)
#endif

#endif  // EKTELO_UTIL_ALIGNED_H_
