// Deterministic fault injection: named failpoint sites threaded under
// every durable-I/O call (store/io.h), armed from the environment or
// programmatically, compiled to zero-cost no-ops when disabled.
//
// A *site* is a stable string naming one fallible operation, e.g.
// "store.data.append" or "ledger.ckpt.rename".  Instrumented code asks
// `failpoint::Check(site)` what to do at each hit; the registry answers
// with an Action according to the armed rules:
//
//   EKTELO_FAILPOINTS="site=spec[,site=spec...]"
//
//   spec := action[@N | %N]
//   action := off            disarm
//           | crash          std::_Exit(kCrashExitCode) at the hit
//           | error[.code]   fail the operation (default code eio)
//           | short[.code]   short write: half the bytes land, then fail
//   @N  trigger on the Nth hit of this site only (1-based)
//   %N  trigger on every Nth hit
//   code := eio | enospc | eintr | epipe | eagain
//
// The site "*" matches every site and its hit counter is the *global*
// hit counter, which is what lets a crash-consistency harness enumerate
// every I/O operation a workload performs without hand-listing sites:
// trace one clean run, then re-run with "*=crash@k" for k = 1..N.
//
// Determinism: rules trigger on exact hit counts of a deterministic
// workload, so an injected fault is perfectly reproducible.  The
// registry is process-global and thread-safe; `Reset()` returns it to
// the pristine (disarmed, zero-count, no-trace) state — forked harness
// children call it before arming their own schedule.
//
// When the build disables injection (CMake -DEKTELO_FAILPOINTS=OFF,
// i.e. EKTELO_FAILPOINTS_ENABLED=0), Check() is an inline no-op and no
// registry code is linked into the call sites.
#ifndef EKTELO_UTIL_FAILPOINT_H_
#define EKTELO_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#ifndef EKTELO_FAILPOINTS_ENABLED
#define EKTELO_FAILPOINTS_ENABLED 1
#endif

namespace ektelo::failpoint {

/// Exit code of a `crash` action: distinguishes a simulated kill from
/// real aborts (ASan, EK_CHECK) in harness parents.
inline constexpr int kCrashExitCode = 86;

enum class ActionKind : uint8_t {
  kNone = 0,
  kError = 1,       // fail the operation with `err`
  kShortWrite = 2,  // write half the bytes, then fail with `err`
  // kCrash never reaches the caller: Check() exits the process.
};

struct Action {
  ActionKind kind = ActionKind::kNone;
  int err = 0;  // errno to report for kError / kShortWrite
};

#if EKTELO_FAILPOINTS_ENABLED

class Registry {
 public:
  /// Process-wide instance.  First use arms rules from the
  /// EKTELO_FAILPOINTS environment variable (unparsable specs warn on
  /// stderr and are skipped).
  static Registry& Global();

  /// Arms `site` (or "*") with a spec like "crash@3", "error.enospc",
  /// "short%2", "off".  Replaces any existing rule for the site.
  /// False (nothing armed) on an unparsable spec.
  bool Arm(const std::string& site, const std::string& spec);

  /// Arms a full comma-separated "site=spec,..." list; false if any
  /// element is malformed (valid ones before it stay armed).
  bool ArmList(const std::string& list);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// Back to pristine: disarm everything, zero every counter, stop and
  /// clear tracing.  Does NOT re-read the environment.
  void Reset();

  /// Record the site name of every subsequent hit, in order.
  void StartTrace();
  /// Stops tracing and returns the recorded hit sequence.
  std::vector<std::string> StopTrace();

  /// Every site hit since the last Reset, in first-hit order (only
  /// tracked while tracing or while any rule is armed).
  std::vector<std::string> Sites() const;
  uint64_t GlobalHits() const;

  /// The instrumentation entry point: counts the hit, records the
  /// trace, and applies the armed rule (a crash rule exits here).
  Action Hit(const char* site);

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

/// What instrumented code calls.  Compiles away when disabled.
inline Action Check(const char* site) { return Registry::Global().Hit(site); }

#else  // !EKTELO_FAILPOINTS_ENABLED

inline Action Check(const char*) { return {}; }

#endif  // EKTELO_FAILPOINTS_ENABLED

}  // namespace ektelo::failpoint

#endif  // EKTELO_UTIL_FAILPOINT_H_
