// Wall-clock timing for the benchmark harnesses.
#ifndef EKTELO_UTIL_TIMER_H_
#define EKTELO_UTIL_TIMER_H_

#include <chrono>

namespace ektelo {

/// Simple wall timer; Elapsed() returns seconds since construction/Reset.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ektelo

#endif  // EKTELO_UTIL_TIMER_H_
