#include "util/failpoint.h"

#if EKTELO_FAILPOINTS_ENABLED

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace ektelo::failpoint {

namespace {

enum class Trigger : uint8_t {
  kEvery,    // every hit
  kNth,      // the Nth hit only
  kEveryNth  // every Nth hit
};

struct Rule {
  bool crash = false;
  Action action;
  Trigger trigger = Trigger::kEvery;
  uint64_t n = 0;
};

bool ParseErrCode(const std::string& name, int* err) {
  if (name == "eio") *err = EIO;
  else if (name == "enospc") *err = ENOSPC;
  else if (name == "eintr") *err = EINTR;
  else if (name == "epipe") *err = EPIPE;
  else if (name == "eagain") *err = EAGAIN;
  else return false;
  return true;
}

/// "crash@3", "error.enospc", "short%2", "off" -> Rule.  False + untouched
/// output on malformed input.  `*disarm` reports the "off" action.
bool ParseSpec(const std::string& spec, Rule* out, bool* disarm) {
  *disarm = false;
  std::string body = spec;
  Rule rule;
  if (const std::size_t at = body.find_first_of("@%"); at != std::string::npos) {
    rule.trigger = body[at] == '@' ? Trigger::kNth : Trigger::kEveryNth;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(body.c_str() + at + 1, &end, 10);
    if (end == body.c_str() + at + 1 || *end != '\0' || n == 0) return false;
    rule.n = n;
    body.resize(at);
  }
  std::string code = "eio";
  if (const std::size_t dot = body.find('.'); dot != std::string::npos) {
    code = body.substr(dot + 1);
    body.resize(dot);
  }
  if (body == "off") {
    *disarm = true;
    return true;
  }
  if (body == "crash") {
    rule.crash = true;
  } else if (body == "error") {
    rule.action.kind = ActionKind::kError;
    if (!ParseErrCode(code, &rule.action.err)) return false;
  } else if (body == "short") {
    rule.action.kind = ActionKind::kShortWrite;
    if (!ParseErrCode(code, &rule.action.err)) return false;
  } else {
    return false;
  }
  *out = rule;
  return true;
}

}  // namespace

struct Registry::Impl {
  // Fast path: a relaxed load decides whether Hit does any work at all,
  // so the disarmed production daemon pays one atomic read per I/O call.
  std::atomic<bool> active{false};

  mutable std::mutex mu;
  std::unordered_map<std::string, Rule> rules;
  std::unordered_map<std::string, uint64_t> site_hits;
  std::vector<std::string> site_order;  // first-hit order
  uint64_t global_hits = 0;
  bool tracing = false;
  std::vector<std::string> trace;

  void RecomputeActive() {
    active.store(!rules.empty() || tracing, std::memory_order_release);
  }
};

Registry::Registry() : impl_(new Impl) {
  if (const char* env = std::getenv("EKTELO_FAILPOINTS"))
    if (*env != '\0') ArmList(env);
}

Registry& Registry::Global() {
  static Registry* g = new Registry;  // leaked: usable during exit paths
  return *g;
}

bool Registry::Arm(const std::string& site, const std::string& spec) {
  Rule rule;
  bool disarm = false;
  if (site.empty() || !ParseSpec(spec, &rule, &disarm)) {
    std::fprintf(stderr, "ektelo: bad failpoint spec \"%s=%s\"\n",
                 site.c_str(), spec.c_str());
    return false;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (disarm)
    impl_->rules.erase(site);
  else
    impl_->rules[site] = rule;
  impl_->RecomputeActive();
  return true;
}

bool Registry::ArmList(const std::string& list) {
  bool all_ok = true;
  std::size_t start = 0;
  while (start < list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "ektelo: bad failpoint entry \"%s\"\n",
                   item.c_str());
      all_ok = false;
      continue;
    }
    all_ok &= Arm(item.substr(0, eq), item.substr(eq + 1));
  }
  return all_ok;
}

void Registry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rules.erase(site);
  impl_->RecomputeActive();
}

void Registry::DisarmAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rules.clear();
  impl_->RecomputeActive();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rules.clear();
  impl_->site_hits.clear();
  impl_->site_order.clear();
  impl_->global_hits = 0;
  impl_->tracing = false;
  impl_->trace.clear();
  impl_->RecomputeActive();
}

void Registry::StartTrace() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->tracing = true;
  impl_->trace.clear();
  impl_->RecomputeActive();
}

std::vector<std::string> Registry::StopTrace() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->tracing = false;
  impl_->RecomputeActive();
  return std::move(impl_->trace);
}

std::vector<std::string> Registry::Sites() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->site_order;
}

uint64_t Registry::GlobalHits() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->global_hits;
}

Action Registry::Hit(const char* site) {
  if (!impl_->active.load(std::memory_order_acquire)) return {};
  bool crash = false;
  Action out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->global_hits;
    uint64_t& count = impl_->site_hits[site];
    if (++count == 1) impl_->site_order.emplace_back(site);
    if (impl_->tracing) impl_->trace.emplace_back(site);

    const Rule* rule = nullptr;
    uint64_t hit = 0;
    if (auto it = impl_->rules.find(site); it != impl_->rules.end()) {
      rule = &it->second;
      hit = count;
    } else if (auto w = impl_->rules.find("*"); w != impl_->rules.end()) {
      // The wildcard schedules against the GLOBAL hit counter: "@k"
      // means "the k-th I/O operation of the process", which is what a
      // crash matrix iterates over.
      rule = &w->second;
      hit = impl_->global_hits;
    }
    if (rule != nullptr) {
      const bool fire = rule->trigger == Trigger::kEvery ||
                        (rule->trigger == Trigger::kNth && hit == rule->n) ||
                        (rule->trigger == Trigger::kEveryNth &&
                         hit % rule->n == 0);
      if (fire) {
        crash = rule->crash;
        out = rule->action;
      }
    }
  }
  // _Exit outside the lock: no destructors, no flushing — the process
  // dies with whatever the kernel already has, which is exactly the
  // durability model a real kill tests.
  if (crash) std::_Exit(kCrashExitCode);
  return out;
}

}  // namespace ektelo::failpoint

#endif  // EKTELO_FAILPOINTS_ENABLED
