#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace ektelo {

namespace {
// Set while a pool worker is running a task: ParallelFor/ParallelBranches
// issued from inside a worker execute inline, so nested parallel sections
// can never deadlock on a saturated queue or oversubscribe the machine.
thread_local bool t_in_pool_worker = false;

obs::Counter& ForChunks() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_parallel_for_chunks", "ParallelFor chunks executed");
  return c;
}
obs::Histogram& ForShardSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_parallel_for_shard_seconds",
      "Wall time of one thread's share of a ParallelFor");
  return h;
}
obs::Histogram& ForSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_parallel_for_seconds",
      "Wall time of one parallel ParallelFor call, caller-side");
  return h;
}
}  // namespace

// Shared state of one ParallelFor call.  Helpers (and the caller) pull
// chunk indices from `next`; the caller waits until `done` reaches
// `chunks`.  Completion is published under `mu`, which also gives the
// caller a happens-before edge over every chunk's writes.
struct ThreadPool::ForState {
  std::size_t n = 0;
  std::size_t chunk_size = 0;
  std::size_t chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;
  std::mutex mu;
  std::condition_variable cv;

  // Run chunks until none are left; returns how many this thread ran.
  std::size_t Drain() {
    std::size_t ran = 0;
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      (*fn)(begin, end);
      ++ran;
    }
    return ran;
  }

  void Finish(std::size_t ran) {
    if (ran == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    done += ran;
    if (done == chunks) cv.notify_all();
  }
};

ThreadPool::ThreadPool(std::size_t threads) { StartWorkers(threads); }

ThreadPool::~ThreadPool() { StopWorkers(); }

std::size_t ThreadPool::threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::Resize(std::size_t threads) {
  StopWorkers();
  StartWorkers(threads);
}

void ThreadPool::StartWorkers(std::size_t threads) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t workers = threads();
  if (workers == 0 || t_in_pool_worker || n < 2 * grain) {
    fn(0, n);
    return;
  }
  // Chunk so every participant (workers + caller) has work, but never
  // below the grain; chunk geometry only affects scheduling, never
  // results, because shards own disjoint output ranges.
  const std::size_t participants = workers + 1;
  const std::size_t per = (n + participants - 1) / participants;
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->chunk_size = std::max(grain, per);
  state->chunks = (n + state->chunk_size - 1) / state->chunk_size;
  state->fn = &fn;
  const std::size_t helpers = std::min(workers, state->chunks - 1);
  // Helpers inherit the caller's request-trace context so shard spans
  // land in the same per-request ring the caller records into; the
  // pointer stays valid because the caller blocks below until every
  // chunk is drained.  With tracing disarmed `trace` is null and the
  // helpers install nothing.
  obs::RequestTrace* trace =
      obs::TraceEnabled() ? obs::CurrentTrace() : nullptr;
  obs::Span span("parallel_for", "pool", &ForSeconds());
  span.Attr("n", static_cast<double>(n));
  span.Attr("chunks", static_cast<double>(state->chunks));
  // One thread's share: drain, then record its shard span.  Recording
  // happens strictly before Finish publishes the chunks — the caller
  // cannot wake (and release the trace) while any executed chunk is
  // still unpublished, so a helper that drained zero chunks (woke after
  // the loop emptied, possibly after the caller returned) records
  // nothing and only touches its own shared state copy.
  auto run_share = [state, trace] {
    const uint32_t flags = obs::ArmedFlags();
    const uint64_t t0 = flags != 0 ? obs::NowNs() : 0;
    obs::ScopedTraceContext ctx(trace);
    const std::size_t ran = state->Drain();
    if (ran > 0) {
      ForChunks().Inc(ran);
      if (flags != 0) {
        const uint64_t t1 = obs::NowNs();
        if ((flags & obs::kTimingArmed) != 0) {
          ForShardSeconds().Observe(static_cast<double>(t1 - t0) * 1e-9);
        }
        if ((flags & obs::kTraceArmed) != 0 && trace != nullptr) {
          obs::TraceEvent ev;
          ev.name = "parallel_for.shard";
          ev.cat = "pool";
          ev.start_ns = t0;
          ev.dur_ns = t1 - t0;
          ev.tid = obs::ThreadId();
          ev.n_attrs = 1;
          ev.attrs[0] = obs::TraceAttr{"chunks", nullptr,
                                       static_cast<double>(ran)};
          trace->Record(ev);
        }
      }
    }
    state->Finish(ran);
  };
  for (std::size_t i = 0; i < helpers; ++i) Enqueue(run_share);
  run_share();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->chunks; });
  // Helpers captured `state` by shared_ptr, so a helper that wakes after
  // all chunks are drained touches only its own copy of the state and the
  // caller's `fn` reference is never used again.
}

Status ThreadPool::ParallelBranches(
    std::size_t k, const std::function<Status(std::size_t)>& fn) {
  if (k == 0) return Status::Ok();
  std::vector<Status> statuses(k, Status::Ok());
  ParallelFor(k, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) statuses[b] = fn(b);
  });
  // First failure in branch order: the same error serial execution
  // (branch 0, 1, ...) would have returned.
  for (std::size_t b = 0; b < k; ++b)
    if (!statuses[b].ok()) return statuses[b];
  return Status::Ok();
}

std::size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("EKTELO_THREADS")) {
    // strtoul silently wraps a leading '-' to a huge value; reject signed
    // input and cap the count so a typo cannot request 2^64 workers.
    constexpr std::size_t kMaxThreads = 1024;
    if (env[0] != '\0' && env[0] != '-' && env[0] != '+') {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (*end == '\0' && v <= kMaxThreads)
        return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 0 : hw;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

void ParallelFor(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::Global().ParallelFor(n, grain, fn);
}

Status ParallelBranches(std::size_t k,
                        const std::function<Status(std::size_t)>& fn) {
  return ThreadPool::Global().ParallelBranches(k, fn);
}

}  // namespace ektelo
