// Deterministic parallel execution engine.
//
// EKTELO's parallelism contract is unusual: every parallel code path must
// produce *bitwise-identical* results to its serial counterpart at any
// thread count, so that seeded experiments (and the pinned golden plan
// outputs) are reproducible on a laptop and a 64-core server alike.  Two
// rules make that possible:
//
//   1. Work is sharded by *output element*: a shard owns a contiguous
//      range of outputs and computes each of them with exactly the same
//      floating-point operation sequence the serial loop would use.  No
//      shard ever combines partial sums with another shard, so FP
//      non-associativity never enters the picture.
//   2. Randomness never flows through the pool.  Noise is drawn from
//      per-source deterministic streams owned by the kernel (see
//      kernel/kernel.h), so the schedule cannot reorder draws.
//
// The pool itself is deliberately simple: a fixed set of workers, a FIFO
// of helper tasks, no work stealing.  ParallelFor enqueues helpers that
// pull chunk indices from a shared atomic counter; the calling thread
// participates, so a busy (or empty) pool degrades to the serial loop
// instead of deadlocking.  Calls from inside a worker run inline for the
// same reason (no nested fan-out, no oversubscription).
//
// Thread count resolution: ThreadPool::Global() is sized once from the
// EKTELO_THREADS environment variable (0 = serial, exactly today's
// single-threaded execution; unset = std::thread::hardware_concurrency).
// Tests and benchmarks may call Resize() between runs; resizing while
// parallel work is in flight is the caller's race to lose.
#ifndef EKTELO_UTIL_THREAD_POOL_H_
#define EKTELO_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ektelo {

class ThreadPool {
 public:
  /// A pool with `threads` workers; 0 means every operation runs serially
  /// on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const;
  /// Join all workers and restart with a new count.  Must not be called
  /// concurrently with in-flight parallel work.
  void Resize(std::size_t threads);

  /// The process-wide pool, sized from EKTELO_THREADS on first use.
  static ThreadPool& Global();
  /// EKTELO_THREADS if set (0 = serial), else hardware_concurrency.
  static std::size_t DefaultThreadCount();

  /// Execute fn(begin, end) over a disjoint cover of [0, n) in contiguous
  /// chunks of at least `grain` indices.  Chunks run concurrently on the
  /// workers and the calling thread; the call returns after every chunk
  /// has finished.  fn must only write state owned by its index range.
  /// Runs serially (one chunk, [0, n)) when the pool has no workers, the
  /// range is smaller than 2 * grain, or the caller is itself a worker.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Execute k independent branches fn(0) .. fn(k-1), each exactly once,
  /// and wait for all of them.  Branches must touch disjoint state (the
  /// SplitParallel discipline: disjoint partition children, disjoint
  /// budget sub-scopes, disjoint output slots).  Returns Ok iff every
  /// branch did; otherwise the error of the lowest-indexed failing branch,
  /// which is also what serial in-order execution would surface first.
  Status ParallelBranches(std::size_t k,
                          const std::function<Status(std::size_t)>& fn);

 private:
  struct ForState;

  void StartWorkers(std::size_t threads);
  void StopWorkers();
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// ParallelFor on the global pool.
void ParallelFor(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

/// ParallelBranches on the global pool.
Status ParallelBranches(std::size_t k,
                        const std::function<Status(std::size_t)>& fn);

}  // namespace ektelo

#endif  // EKTELO_UTIL_THREAD_POOL_H_
