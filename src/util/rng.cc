#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(gen_);
}

double Rng::Laplace(double scale) {
  EK_CHECK_GT(scale, 0.0);
  // Inverse CDF: u ~ U(-1/2, 1/2); x = -scale * sgn(u) * ln(1 - 2|u|).
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  double u = d(gen_);
  double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

std::vector<double> Rng::LaplaceVector(std::size_t n, double scale) {
  std::vector<double> v(n);
  for (auto& x : v) x = Laplace(scale);
  return v;
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(gen_);
}

double Rng::Gumbel() {
  std::uniform_real_distribution<double> d(0.0, 1.0);
  double u = d(gen_);
  // Guard against log(0): u in (0,1) almost surely, but clamp anyway.
  u = std::max(u, 1e-300);
  return -std::log(-std::log(u));
}

std::size_t Rng::ExponentialMechanism(const std::vector<double>& scores,
                                      double eps) {
  EK_CHECK(!scores.empty());
  EK_CHECK_GT(eps, 0.0);
  std::size_t best = 0;
  double best_val = -1e300;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    double val = 0.5 * eps * scores[i] + Gumbel();
    if (val > best_val) {
      best_val = val;
      best = i;
    }
  }
  return best;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  EK_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    EK_CHECK_GE(w, 0.0);
    total += w;
  }
  EK_CHECK_GT(total, 0.0);
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(gen_()); }

Rng Rng::Fork(uint64_t key) {
  return Rng(SplitMix64(gen_() ^ SplitMix64(key)));
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace ektelo
