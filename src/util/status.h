// Status and StatusOr: lightweight error propagation for kernel boundaries.
//
// EKTELO's protected kernel must refuse requests (e.g. when the privacy
// budget is exhausted) without throwing away the program or leaking private
// state through the failure path.  Following the RocksDB idiom, fallible
// kernel entry points return Status (or StatusOr<T> when they yield a
// value).  Pure-math internal code uses EK_CHECK macros instead.
#ifndef EKTELO_UTIL_STATUS_H_
#define EKTELO_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace ektelo {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  // The privacy budget cannot cover the request.  Construction of this
  // status never inspects private data (paper Sec. 4.3): the decision is a
  // deterministic function of the budget tracker, which is public state.
  kBudgetExhausted,
  kUnimplemented,
  kInternal,
  // The service cannot take the request right now (bounded queue full,
  // server shutting down).  Retryable: unlike kBudgetExhausted nothing
  // was consumed, the caller may simply try again later.
  kUnavailable,
  // A per-attempt or per-request deadline elapsed before the operation
  // completed (client read/connect timeout, server-side request
  // deadline).  The operation MAY still have happened on the other
  // side; only idempotent work should be retried.
  kDeadlineExceeded,
};

/// Result of a fallible kernel operation: a code plus a human-readable
/// message.  Cheap to copy; ok() is the common fast path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status BudgetExhausted(std::string m) {
    return Status(StatusCode::kBudgetExhausted, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message"; for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status.  value() aborts on error
/// (use after checking ok(), or in tests / examples where errors are bugs).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : v_(std::move(status)) {
    EK_CHECK(!std::get<Status>(v_).ok());
  }
  StatusOr(T value) : v_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(v_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

  const T& value() const& {
    EK_CHECK(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    EK_CHECK(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    EK_CHECK(ok());
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> v_;
};

/// Propagate a non-OK status to the caller.
#define EK_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::ektelo::Status _ek_st = (expr);            \
    if (!_ek_st.ok()) return _ek_st;             \
  } while (0)

#define EK_CONCAT_INNER(a, b) a##b
#define EK_CONCAT(a, b) EK_CONCAT_INNER(a, b)

/// Assign from a StatusOr or propagate its error.
#define EK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define EK_ASSIGN_OR_RETURN(lhs, expr) \
  EK_ASSIGN_OR_RETURN_IMPL(EK_CONCAT(_ek_sor_, __LINE__), lhs, expr)

}  // namespace ektelo

#endif  // EKTELO_UTIL_STATUS_H_
