// Seedable random number generation for all EKTELO randomness.
//
// Every source of randomness in the system (Laplace noise, exponential
// mechanism sampling, synthetic data generation, Algorithm 4's random
// projection) draws from an explicitly seeded Rng so that experiments are
// reproducible.  The protected kernel owns its own Rng; client-side
// utilities take one by reference.
#ifndef EKTELO_UTIL_RNG_H_
#define EKTELO_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace ektelo {

/// Wrapper around mt19937_64 with the distributions EKTELO needs.
///
/// NOTE on floating point: Mironov (CCS 2012) showed that naive
/// double-precision Laplace samplers leak through the floating-point grid.
/// A production deployment would use the snapping mechanism or discrete
/// noise; we implement the standard inverse-CDF sampler (as the original
/// EKTELO does) and note the caveat here, since the paper treats
/// side-channel hardening as out of scope (Sec. 4.3).
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Laplace(0, scale) via inverse CDF.
  double Laplace(double scale);

  /// Vector of n iid Laplace(0, scale) draws.
  std::vector<double> LaplaceVector(std::size_t n, double scale);

  /// Standard normal.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Standard Gumbel(0,1); argmax(score_i + Gumbel/eps') samples the
  /// exponential mechanism.
  double Gumbel();

  /// Sample index i with probability proportional to exp(eps * score_i / 2)
  /// using the Gumbel-max trick (numerically stable exponential mechanism
  /// for unit-sensitivity scores).
  std::size_t ExponentialMechanism(const std::vector<double>& scores,
                                   double eps);

  /// Sample from an unnormalized non-negative weight vector.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fresh child generator (for deterministic fan-out).
  Rng Fork();

  /// Keyed fork: a child generator whose seed is a SplitMix64 mix of a
  /// draw from this stream and `key`.  Unlike Fork(), two forks with
  /// distinct keys from the *same* parent state yield unrelated streams,
  /// which is what the kernel's per-source noise streams need: a source's
  /// stream depends only on its lineage (root seed + path of child
  /// indices), never on how many draws other sources made.
  Rng Fork(uint64_t key);

  std::mt19937_64& raw() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// SplitMix64 finalizer (Steele et al., "Fast Splittable Pseudorandom
/// Number Generators"): a cheap, high-quality bijective mix used to derive
/// statistically independent child seeds from (parent seed, child index)
/// pairs.  Deterministic seed derivation is what keeps parallel noise
/// bitwise-reproducible: the stream a source draws from is a pure function
/// of its lineage, not of thread scheduling.
uint64_t SplitMix64(uint64_t x);

}  // namespace ektelo

#endif  // EKTELO_UTIL_RNG_H_
