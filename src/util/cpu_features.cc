#include "util/cpu_features.h"

namespace ektelo {

#if defined(__x86_64__) || defined(_M_X64)

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
bool CpuHasAvx512f() { return __builtin_cpu_supports("avx512f") != 0; }
bool CpuHasNeon() { return false; }

#elif defined(__aarch64__)

bool CpuHasAvx2() { return false; }
bool CpuHasAvx512f() { return false; }
bool CpuHasNeon() { return true; }

#else

bool CpuHasAvx2() { return false; }
bool CpuHasAvx512f() { return false; }
bool CpuHasNeon() { return false; }

#endif

}  // namespace ektelo
