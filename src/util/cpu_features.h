// Runtime CPU feature detection for the SIMD kernel dispatch
// (linalg/simd/).  One binary carries every kernel target compiled for
// its architecture; these predicates decide, once at startup, which
// target the hardware can actually execute.
//
// x86-64 uses the compiler's CPUID shim (__builtin_cpu_supports);
// aarch64 reports NEON unconditionally (Advanced SIMD is baseline in
// AArch64).  Everything else supports only the scalar target.
#ifndef EKTELO_UTIL_CPU_FEATURES_H_
#define EKTELO_UTIL_CPU_FEATURES_H_

namespace ektelo {

/// True when the running CPU executes AVX2 instructions.
bool CpuHasAvx2();

/// True when the running CPU executes AVX-512 Foundation instructions.
bool CpuHasAvx512f();

/// True when the running CPU executes NEON (AArch64 Advanced SIMD).
bool CpuHasNeon();

}  // namespace ektelo

#endif  // EKTELO_UTIL_CPU_FEATURES_H_
