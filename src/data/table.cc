#include "data/table.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace ektelo {

bool Condition::Eval(uint32_t code) const {
  switch (op) {
    case CmpOp::kEq:
      return code == value;
    case CmpOp::kNe:
      return code != value;
    case CmpOp::kLt:
      return code < value;
    case CmpOp::kLe:
      return code <= value;
    case CmpOp::kGt:
      return code > value;
    case CmpOp::kGe:
      return code >= value;
  }
  return false;
}

Predicate&& Predicate::And(std::string attr, CmpOp op, uint32_t value) && {
  conjuncts.push_back({std::move(attr), op, value});
  return std::move(*this);
}

Table::Table(Schema schema)
    : schema_(std::move(schema)), columns_(schema_.num_attrs()) {}

void Table::AppendRow(const std::vector<uint32_t>& codes) {
  EK_CHECK_EQ(codes.size(), schema_.num_attrs());
  for (std::size_t a = 0; a < codes.size(); ++a) {
    EK_CHECK_LT(codes[a], schema_.attr(a).domain_size);
    columns_[a].push_back(codes[a]);
  }
  ++num_rows_;
}

Table Table::Where(const Predicate& p) const {
  // Resolve attribute indices once.
  std::vector<std::size_t> attr_idx;
  attr_idx.reserve(p.conjuncts.size());
  for (const auto& c : p.conjuncts)
    attr_idx.push_back(schema_.AttrIndex(c.attr));

  Table out(schema_);
  std::vector<uint32_t> row(schema_.num_attrs());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    bool keep = true;
    for (std::size_t k = 0; k < p.conjuncts.size(); ++k) {
      if (!p.conjuncts[k].Eval(columns_[attr_idx[k]][r])) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    for (std::size_t a = 0; a < row.size(); ++a) row[a] = columns_[a][r];
    out.AppendRow(row);
  }
  return out;
}

Table Table::Select(const std::vector<std::string>& attrs) const {
  Schema sub = schema_.Project(attrs);
  std::vector<std::size_t> idx;
  idx.reserve(attrs.size());
  for (const auto& a : attrs) idx.push_back(schema_.AttrIndex(a));

  Table out(sub);
  std::vector<uint32_t> row(attrs.size());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (std::size_t k = 0; k < idx.size(); ++k) row[k] = columns_[idx[k]][r];
    out.AppendRow(row);
  }
  return out;
}

Table Table::GroupBy(const std::vector<std::string>& attrs) const {
  std::vector<std::size_t> idx;
  for (const auto& a : attrs) idx.push_back(schema_.AttrIndex(a));
  std::map<std::vector<uint32_t>, std::size_t> first_row;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    std::vector<uint32_t> key(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) key[k] = columns_[idx[k]][r];
    first_row.emplace(std::move(key), r);
  }
  Table out(schema_);
  std::vector<uint32_t> row(schema_.num_attrs());
  for (const auto& [key, r] : first_row) {
    for (std::size_t a = 0; a < row.size(); ++a) row[a] = columns_[a][r];
    out.AppendRow(row);
  }
  return out;
}

std::vector<Table> Table::SplitByPartition(const std::string& attr) const {
  const std::size_t ai = schema_.AttrIndex(attr);
  const std::size_t groups = schema_.attr(ai).domain_size;
  std::vector<Table> out(groups, Table(schema_));
  std::vector<uint32_t> row(schema_.num_attrs());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (std::size_t a = 0; a < row.size(); ++a) row[a] = columns_[a][r];
    out[columns_[ai][r]].AppendRow(row);
  }
  return out;
}

Vec Table::Vectorize() const {
  Vec x(schema_.TotalDomainSize(), 0.0);
  std::vector<uint32_t> row(schema_.num_attrs());
  for (std::size_t r = 0; r < num_rows_; ++r) {
    for (std::size_t a = 0; a < row.size(); ++a) row[a] = columns_[a][r];
    x[schema_.FlattenIndex(row)] += 1.0;
  }
  return x;
}

std::size_t Table::CountWhere(const Predicate& p) const {
  std::vector<std::size_t> attr_idx;
  for (const auto& c : p.conjuncts)
    attr_idx.push_back(schema_.AttrIndex(c.attr));
  std::size_t count = 0;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    bool keep = true;
    for (std::size_t k = 0; k < p.conjuncts.size(); ++k) {
      if (!p.conjuncts[k].Eval(columns_[attr_idx[k]][r])) {
        keep = false;
        break;
      }
    }
    if (keep) ++count;
  }
  return count;
}

}  // namespace ektelo
