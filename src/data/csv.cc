#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ektelo {

namespace {

/// RFC 4180 field splitting: fields are comma-separated; a field that
/// starts with a double quote runs to the matching closing quote and may
/// contain literal commas, with "" inside quotes encoding one quote
/// character.  Malformed quoting (unterminated field, trailing garbage
/// after a closing quote) is an error rather than a silent guess.
StatusOr<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  std::size_t i = 0;
  const std::size_t n = line.size();
  for (;;) {
    cur.clear();
    if (i < n && line[i] == '"') {
      // Quoted field: consume up to the closing quote.
      ++i;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {  // escaped quote
            cur.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        cur.push_back(line[i]);
        ++i;
      }
      if (!closed)
        return Status::InvalidArgument("unterminated quoted CSV field");
      while (i < n && line[i] == '\r') ++i;
      if (i < n && line[i] != ',')
        return Status::InvalidArgument(
            "unexpected character after closing quote in CSV field");
    } else {
      while (i < n && line[i] != ',') {
        if (line[i] != '\r') cur.push_back(line[i]);
        ++i;
      }
    }
    fields.push_back(cur);
    if (i >= n) break;
    ++i;  // skip the comma
  }
  return fields;
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Quote a header cell when it needs it (embedded comma, quote or CR/LF).
/// Surrounding whitespace is NOT protected: the reader trims every header
/// cell after unquoting, so names with leading/trailing spaces cannot
/// round-trip regardless.
std::string CsvQuote(const std::string& s) {
  const bool needs = s.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

}  // namespace

StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const Schema& schema) {
  std::istringstream in(csv_text);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV input");

  // Header: map each column position to an attribute index.
  EK_ASSIGN_OR_RETURN(std::vector<std::string> header, SplitCsvLine(line));
  std::vector<std::size_t> attr_of_col;
  std::vector<bool> seen(schema.num_attrs(), false);
  for (const auto& raw : header) {
    const std::string name = Trim(raw);
    if (!schema.HasAttr(name))
      return Status::InvalidArgument("unknown CSV column: " + name);
    const std::size_t a = schema.AttrIndex(name);
    if (seen[a])
      return Status::InvalidArgument("duplicate CSV column: " + name);
    seen[a] = true;
    attr_of_col.push_back(a);
  }
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    if (!seen[a])
      return Status::InvalidArgument("missing CSV column: " +
                                     schema.attr(a).name);
  }

  Table table(schema);
  std::vector<uint32_t> row(schema.num_attrs());
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    StatusOr<std::vector<std::string>> split = SplitCsvLine(line);
    if (!split.ok())
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + split.status().message());
    const std::vector<std::string>& fields = *split;
    if (fields.size() != attr_of_col.size())
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": wrong field count");
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const std::string f = Trim(fields[c]);
      // strtoul happily parses a leading sign ("-1" wraps to ULONG_MAX and
      // surfaces as a baffling out-of-domain error — or sneaks through on
      // a huge domain), so reject signed input explicitly.
      if (f.empty() || f[0] == '-' || f[0] == '+')
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad code '" + f +
                                       "' (codes are unsigned integers)");
      char* end = nullptr;
      const unsigned long code = std::strtoul(f.c_str(), &end, 10);
      if (end == nullptr || *end != '\0')
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad code '" + f + "'");
      const std::size_t a = attr_of_col[c];
      if (code >= schema.attr(a).domain_size)
        return Status::OutOfRange("line " + std::to_string(line_no) +
                                  ": code " + f + " outside domain of " +
                                  schema.attr(a).name);
      row[a] = static_cast<uint32_t>(code);
    }
    table.AppendRow(row);
  }
  return table;
}

StatusOr<Table> LoadTableCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TableFromCsv(buf.str(), schema);
}

std::string TableToCsv(const Table& table) {
  std::ostringstream out;
  const Schema& schema = table.schema();
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    if (a) out << ',';
    out << CsvQuote(schema.attr(a).name);
  }
  out << '\n';
  for (std::size_t r = 0; r < table.NumRows(); ++r) {
    for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
      if (a) out << ',';
      out << table.At(r, a);
    }
    out << '\n';
  }
  return out.str();
}

Status SaveTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path);
  out << TableToCsv(table);
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

}  // namespace ektelo
