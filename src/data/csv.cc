#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ektelo {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  fields.push_back(cur);
  return fields;
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const Schema& schema) {
  std::istringstream in(csv_text);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV input");

  // Header: map each column position to an attribute index.
  std::vector<std::string> header = SplitCsvLine(line);
  std::vector<std::size_t> attr_of_col;
  std::vector<bool> seen(schema.num_attrs(), false);
  for (const auto& raw : header) {
    const std::string name = Trim(raw);
    if (!schema.HasAttr(name))
      return Status::InvalidArgument("unknown CSV column: " + name);
    const std::size_t a = schema.AttrIndex(name);
    if (seen[a])
      return Status::InvalidArgument("duplicate CSV column: " + name);
    seen[a] = true;
    attr_of_col.push_back(a);
  }
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    if (!seen[a])
      return Status::InvalidArgument("missing CSV column: " +
                                     schema.attr(a).name);
  }

  Table table(schema);
  std::vector<uint32_t> row(schema.num_attrs());
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != attr_of_col.size())
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": wrong field count");
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const std::string f = Trim(fields[c]);
      char* end = nullptr;
      const unsigned long code = std::strtoul(f.c_str(), &end, 10);
      if (f.empty() || end == nullptr || *end != '\0')
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad code '" + f + "'");
      const std::size_t a = attr_of_col[c];
      if (code >= schema.attr(a).domain_size)
        return Status::OutOfRange("line " + std::to_string(line_no) +
                                  ": code " + f + " outside domain of " +
                                  schema.attr(a).name);
      row[a] = static_cast<uint32_t>(code);
    }
    table.AppendRow(row);
  }
  return table;
}

StatusOr<Table> LoadTableCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TableFromCsv(buf.str(), schema);
}

std::string TableToCsv(const Table& table) {
  std::ostringstream out;
  const Schema& schema = table.schema();
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    if (a) out << ',';
    out << schema.attr(a).name;
  }
  out << '\n';
  for (std::size_t r = 0; r < table.NumRows(); ++r) {
    for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
      if (a) out << ',';
      out << table.At(r, a);
    }
    out << '\n';
  }
  return out.str();
}

Status SaveTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path);
  out << TableToCsv(table);
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

}  // namespace ektelo
