// Columnar in-memory table with the PINQ-style transformations EKTELO's
// protected kernel applies (Sec. 5.1): Where, Select, GroupBy,
// SplitByPartition, and T-Vectorize.
//
// The table itself is a *private* object; plans never touch it directly.
// These methods implement the transformation semantics; the kernel wraps
// them with stability bookkeeping.
#ifndef EKTELO_DATA_TABLE_H_
#define EKTELO_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "linalg/vec.h"

namespace ektelo {

/// Comparison operator for declarative filter conditions.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A single condition "attr OP value" on coded attribute values.
struct Condition {
  std::string attr;
  CmpOp op;
  uint32_t value;

  bool Eval(uint32_t code) const;
};

/// Conjunction of conditions (the condition formulas phi of Sec. 3,
/// restricted to conjunctive range/equality predicates, which is what every
/// plan in the paper uses).
struct Predicate {
  std::vector<Condition> conjuncts;

  static Predicate True() { return Predicate{}; }
  Predicate&& And(std::string attr, CmpOp op, uint32_t value) &&;
};

class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t NumRows() const { return num_rows_; }

  void AppendRow(const std::vector<uint32_t>& codes);
  uint32_t At(std::size_t row, std::size_t attr) const {
    return columns_[attr][row];
  }

  /// Rows satisfying the predicate (1-stable transformation).
  Table Where(const Predicate& p) const;

  /// Projection onto the named attributes (1-stable).
  Table Select(const std::vector<std::string>& attrs) const;

  /// One representative row per distinct key over `attrs` (2-stable, as in
  /// PINQ: adding one input row can change at most two groups' contents).
  Table GroupBy(const std::vector<std::string>& attrs) const;

  /// Split rows by the value of `attr` (each row lands in exactly one
  /// output; 1-stable per child under parallel composition).
  std::vector<Table> SplitByPartition(const std::string& attr) const;

  /// T-Vectorize (Sec. 5.1): count vector over the full domain product,
  /// row-major with attribute 0 major.  1-stable.
  Vec Vectorize() const;

  /// Number of rows satisfying phi — the condition count phi(T) of Sec. 3.
  std::size_t CountWhere(const Predicate& p) const;

 private:
  Schema schema_;
  std::size_t num_rows_ = 0;
  std::vector<std::vector<uint32_t>> columns_;  // [attr][row]
};

}  // namespace ektelo

#endif  // EKTELO_DATA_TABLE_H_
