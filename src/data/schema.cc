#include "data/schema.h"

#include "util/check.h"

namespace ektelo {

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  for (const auto& a : attrs_) EK_CHECK_GT(a.domain_size, 0u);
}

std::size_t Schema::AttrIndex(const std::string& name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i)
    if (attrs_[i].name == name) return i;
  EK_CHECK(false && "unknown attribute");
  return 0;
}

bool Schema::HasAttr(const std::string& name) const {
  for (const auto& a : attrs_)
    if (a.name == name) return true;
  return false;
}

std::size_t Schema::TotalDomainSize() const {
  std::size_t total = 1;
  for (const auto& a : attrs_) {
    EK_CHECK_LE(total, std::size_t{1} << 40);  // guard against overflow
    total *= a.domain_size;
  }
  return total;
}

std::size_t Schema::FlattenIndex(const std::vector<uint32_t>& codes) const {
  EK_CHECK_EQ(codes.size(), attrs_.size());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    EK_CHECK_LT(codes[i], attrs_[i].domain_size);
    idx = idx * attrs_[i].domain_size + codes[i];
  }
  return idx;
}

std::vector<uint32_t> Schema::UnflattenIndex(std::size_t cell) const {
  std::vector<uint32_t> codes(attrs_.size());
  for (std::size_t i = attrs_.size(); i-- > 0;) {
    codes[i] = static_cast<uint32_t>(cell % attrs_[i].domain_size);
    cell /= attrs_[i].domain_size;
  }
  EK_CHECK_EQ(cell, 0u);
  return codes;
}

Schema Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(attrs_[AttrIndex(n)]);
  return Schema(std::move(out));
}

}  // namespace ektelo
