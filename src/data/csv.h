// CSV import/export for coded tables.
//
// Format: a header row with attribute names, then one row of non-negative
// integer codes per record.  Loading requires a Schema (domain sizes are
// metadata a data owner supplies; they are public, the rows are private).
#ifndef EKTELO_DATA_CSV_H_
#define EKTELO_DATA_CSV_H_

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace ektelo {

/// Parse CSV text into a table under `schema`.  Columns are matched to
/// attributes by header name (order-insensitive); unknown columns are an
/// error, as are codes outside an attribute's domain.
StatusOr<Table> TableFromCsv(const std::string& csv_text,
                             const Schema& schema);

/// Read a CSV file from disk.
StatusOr<Table> LoadTableCsv(const std::string& path, const Schema& schema);

/// Serialize a table back to CSV text (header + coded rows).
std::string TableToCsv(const Table& table);

/// Write a table to disk; returns an error status on I/O failure.
Status SaveTableCsv(const Table& table, const std::string& path);

}  // namespace ektelo

#endif  // EKTELO_DATA_CSV_H_
