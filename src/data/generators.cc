#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

std::vector<Shape1D> AllShapes1D() {
  return {Shape1D::kUniform,        Shape1D::kZipf,
          Shape1D::kGaussianMix,    Shape1D::kSparseSpikes,
          Shape1D::kStep,           Shape1D::kBimodal,
          Shape1D::kExponentialDecay, Shape1D::kPowerLawTail,
          Shape1D::kClustered,      Shape1D::kRoughUniform};
}

std::string ShapeName(Shape1D s) {
  switch (s) {
    case Shape1D::kUniform:
      return "uniform";
    case Shape1D::kZipf:
      return "zipf";
    case Shape1D::kGaussianMix:
      return "gauss-mix";
    case Shape1D::kSparseSpikes:
      return "sparse-spikes";
    case Shape1D::kStep:
      return "step";
    case Shape1D::kBimodal:
      return "bimodal";
    case Shape1D::kExponentialDecay:
      return "exp-decay";
    case Shape1D::kPowerLawTail:
      return "power-law";
    case Shape1D::kClustered:
      return "clustered";
    case Shape1D::kRoughUniform:
      return "rough-uniform";
  }
  return "?";
}

namespace {

/// Turn a non-negative density into an integer histogram of total ~scale by
/// multinomial-style rounding.
Vec DensityToCounts(Vec density, double scale, Rng* rng) {
  double total = Sum(density);
  EK_CHECK_GT(total, 0.0);
  Vec out(density.size());
  for (std::size_t i = 0; i < density.size(); ++i) {
    double expect = density[i] / total * scale;
    // Randomized rounding keeps totals near scale without bias.
    double base = std::floor(expect);
    out[i] = base + ((rng->Uniform() < expect - base) ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace

Vec MakeHistogram1D(Shape1D shape, std::size_t n, double scale, Rng* rng) {
  EK_CHECK_GT(n, 0u);
  Vec d(n, 0.0);
  switch (shape) {
    case Shape1D::kUniform:
      std::fill(d.begin(), d.end(), 1.0);
      break;
    case Shape1D::kZipf:
      for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 / double(i + 1);
      break;
    case Shape1D::kGaussianMix: {
      const int modes = 4;
      for (int m = 0; m < modes; ++m) {
        double mu = rng->Uniform(0.1, 0.9) * double(n);
        double sigma = rng->Uniform(0.01, 0.06) * double(n);
        double w = rng->Uniform(0.5, 2.0);
        for (std::size_t i = 0; i < n; ++i) {
          double z = (double(i) - mu) / sigma;
          d[i] += w * std::exp(-0.5 * z * z);
        }
      }
      break;
    }
    case Shape1D::kSparseSpikes: {
      const std::size_t spikes = std::max<std::size_t>(4, n / 256);
      for (std::size_t s = 0; s < spikes; ++s) {
        std::size_t pos = std::size_t(rng->UniformInt(0, int64_t(n) - 1));
        d[pos] += rng->Uniform(5.0, 50.0);
      }
      for (auto& v : d) v += 1e-4;  // faint background
      break;
    }
    case Shape1D::kStep: {
      const std::size_t steps = 8;
      std::size_t start = 0;
      for (std::size_t s = 0; s < steps; ++s) {
        std::size_t end = (s + 1 == steps) ? n : (n * (s + 1)) / steps;
        double level = rng->Uniform(0.0, 4.0);
        for (std::size_t i = start; i < end; ++i) d[i] = level + 0.01;
        start = end;
      }
      break;
    }
    case Shape1D::kBimodal:
      for (std::size_t i = 0; i < n; ++i) {
        double z1 = (double(i) - 0.25 * n) / (0.08 * n);
        double z2 = (double(i) - 0.75 * n) / (0.12 * n);
        d[i] = std::exp(-0.5 * z1 * z1) + 0.7 * std::exp(-0.5 * z2 * z2);
      }
      break;
    case Shape1D::kExponentialDecay:
      for (std::size_t i = 0; i < n; ++i)
        d[i] = std::exp(-5.0 * double(i) / double(n));
      break;
    case Shape1D::kPowerLawTail:
      for (std::size_t i = 0; i < n; ++i)
        d[i] = std::pow(double(i + 2), -1.5);
      break;
    case Shape1D::kClustered: {
      const int clusters = 6;
      for (auto& v : d) v = 1e-4;
      for (int c = 0; c < clusters; ++c) {
        std::size_t center = std::size_t(rng->UniformInt(0, int64_t(n) - 1));
        std::size_t width = std::max<std::size_t>(1, n / 64);
        double level = rng->Uniform(1.0, 10.0);
        for (std::size_t i = center; i < std::min(n, center + width); ++i)
          d[i] += level;
      }
      break;
    }
    case Shape1D::kRoughUniform:
      for (auto& v : d) v = rng->Uniform(0.5, 1.5);
      break;
  }
  return DensityToCounts(std::move(d), scale, rng);
}

Vec MakeHistogram2D(std::size_t nx, std::size_t ny, double scale, Rng* rng) {
  Vec d(nx * ny, 1e-4);
  const int blobs = 5;
  for (int b = 0; b < blobs; ++b) {
    double cx = rng->Uniform(0.1, 0.9) * double(nx);
    double cy = rng->Uniform(0.1, 0.9) * double(ny);
    double sx = rng->Uniform(0.02, 0.10) * double(nx);
    double sy = rng->Uniform(0.02, 0.10) * double(ny);
    double w = rng->Uniform(0.5, 2.0);
    for (std::size_t i = 0; i < nx; ++i) {
      double zx = (double(i) - cx) / sx;
      if (std::abs(zx) > 4.0) continue;
      for (std::size_t j = 0; j < ny; ++j) {
        double zy = (double(j) - cy) / sy;
        if (std::abs(zy) > 4.0) continue;
        d[i * ny + j] += w * std::exp(-0.5 * (zx * zx + zy * zy));
      }
    }
  }
  return DensityToCounts(std::move(d), scale, rng);
}

Table TableFromHistogram(const Vec& hist, const std::string& attr_name) {
  Schema schema({{attr_name, hist.size()}});
  Table t(schema);
  for (std::size_t i = 0; i < hist.size(); ++i) {
    const auto count = static_cast<std::size_t>(std::llround(hist[i]));
    for (std::size_t c = 0; c < count; ++c)
      t.AppendRow({static_cast<uint32_t>(i)});
  }
  return t;
}

Table MakeCensusLike(Rng* rng, std::size_t rows, std::size_t income_bins) {
  Schema schema({{"income", income_bins},
                 {"age", 5},
                 {"marital", 7},
                 {"race", 4},
                 {"gender", 2}});
  Table t(schema);
  // Race skew roughly mirroring CPS frequencies.
  const std::vector<double> race_w = {0.78, 0.11, 0.06, 0.05};
  for (std::size_t r = 0; r < rows; ++r) {
    uint32_t age = static_cast<uint32_t>(rng->Categorical(
        {0.18, 0.28, 0.26, 0.18, 0.10}));
    // Log-normal income with age-dependent location: older cohorts earn
    // more on average (peaking mid-career), clipped to the binned range.
    double mu = 10.2 + 0.25 * std::min<uint32_t>(age, 3);
    double income = std::exp(rng->Normal(mu, 0.8));
    double frac = std::min(income / 750000.0, 0.999999);
    uint32_t inc_bin = static_cast<uint32_t>(frac * double(income_bins));
    // Marital status correlated with age (young -> never married).
    std::vector<double> marital_w(7, 0.05);
    if (age == 0) {
      marital_w = {0.70, 0.15, 0.03, 0.02, 0.02, 0.05, 0.03};
    } else if (age <= 2) {
      marital_w = {0.20, 0.55, 0.10, 0.05, 0.03, 0.04, 0.03};
    } else {
      marital_w = {0.08, 0.55, 0.12, 0.10, 0.08, 0.04, 0.03};
    }
    uint32_t marital = static_cast<uint32_t>(rng->Categorical(marital_w));
    uint32_t race = static_cast<uint32_t>(rng->Categorical(race_w));
    uint32_t gender = rng->Uniform() < 0.52 ? 0u : 1u;
    t.AppendRow({inc_bin, age, marital, race, gender});
  }
  return t;
}

Table MakeCreditLike(Rng* rng, std::size_t rows) {
  // Joint predictor domain 28 * 11 * 8 * 7 = 17,248 (paper Sec. 9.3).
  Schema schema({{"default", 2},
                 {"x3", 28},
                 {"x4", 11},
                 {"x5", 8},
                 {"x6", 7}});
  Table t(schema);
  for (std::size_t r = 0; r < rows; ++r) {
    uint32_t label = rng->Uniform() < 0.22 ? 1u : 0u;  // ~22% default rate
    // Each predictor's distribution shifts with the label; shifts are mild
    // so the Bayes-optimal AUC is realistic (~0.75, not 1.0).
    auto draw = [&](std::size_t dom, double shift) -> uint32_t {
      double center = (label ? 0.62 + shift : 0.42 - shift) * double(dom);
      double v = rng->Normal(center, 0.28 * double(dom));
      int64_t code = static_cast<int64_t>(std::llround(v));
      code = std::clamp<int64_t>(code, 0, int64_t(dom) - 1);
      return static_cast<uint32_t>(code);
    };
    t.AppendRow({label, draw(28, 0.05), draw(11, 0.02), draw(8, 0.04),
                 draw(7, 0.0)});
  }
  return t;
}

}  // namespace ektelo
