// Synthetic dataset generators.
//
// The paper evaluates on DPBench's curated datasets (HEPTH, PATENT, SEARCH,
// ADULT, ...), a March-2000 CPS Census extract, and the UCI Credit-Default
// dataset — none of which ship with this repository.  Per DESIGN.md, each
// is replaced by a generator that reproduces the *shape* properties the
// data-dependent algorithms react to: scale (total count), sparsity,
// uniform regions, spikes and heavy tails for the 1D/2D shapes; domain
// geometry, skew and attribute correlation for the census- and credit-like
// tables.
#ifndef EKTELO_DATA_GENERATORS_H_
#define EKTELO_DATA_GENERATORS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/table.h"
#include "linalg/vec.h"
#include "util/rng.h"

namespace ektelo {

/// The 1D histogram shape families spanned by the DPBench datasets.
enum class Shape1D {
  kUniform,        // flat (best case for Uniform)
  kZipf,           // heavy power-law head (PATENT-like)
  kGaussianMix,    // smooth multi-modal bumps (ADULT-like)
  kSparseSpikes,   // mostly empty with tall spikes (SEARCH-like)
  kStep,           // piecewise-constant regions (DAWA's sweet spot)
  kBimodal,        // two broad modes
  kExponentialDecay,
  kPowerLawTail,   // HEPTH-like
  kClustered,      // dense clusters over empty background
  kRoughUniform,   // uniform with multiplicative noise (hard for partitions)
};

/// All ten shapes, for dataset sweeps (Table 4 uses 10 datasets).
std::vector<Shape1D> AllShapes1D();
std::string ShapeName(Shape1D s);

/// A non-negative integer histogram of length n whose counts sum to ~scale.
Vec MakeHistogram1D(Shape1D shape, std::size_t n, double scale, Rng* rng);

/// 2D histogram (nx * ny, row-major) from a mixture of Gaussian blobs over
/// a sparse background — the spatial data regime of UGrid/AGrid/QuadTree.
Vec MakeHistogram2D(std::size_t nx, std::size_t ny, double scale, Rng* rng);

/// Wrap a histogram as a single-attribute table (so kernel plans that start
/// from a protected table can run on benchmark histograms).
Table TableFromHistogram(const Vec& hist, const std::string& attr_name);

/// CPS-census-like table (Sec. 9.2): 49,436 heads-of-household with
/// schema {income:5000, age:5, marital:7, race:4, gender:2} (1.4M cells).
/// Income is log-normal clipped to the 5000-bin range and correlated with
/// age; marital status is correlated with age.
Table MakeCensusLike(Rng* rng, std::size_t rows = 49436,
                     std::size_t income_bins = 5000);

/// Credit-default-like table (Sec. 9.3): `rows` records with a binary
/// label "default" plus four predictors with domains {28, 11, 8, 7}
/// (joint size 17,248 as in the paper).  Predictors carry label signal so
/// a Naive-Bayes classifier reaches AUC well above chance.
Table MakeCreditLike(Rng* rng, std::size_t rows = 30000);

}  // namespace ektelo

#endif  // EKTELO_DATA_GENERATORS_H_
