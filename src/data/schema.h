// Discrete relational schema (paper Sec. 3): a single relation
// T(A_1, ..., A_l) whose attributes are discrete (or discretized).  The
// data vector x has one cell per element of the cross product of attribute
// domains, laid out row-major with attribute 0 as the major axis — the same
// convention the Kronecker operators use, so per-attribute query matrices
// compose with MakeKronecker directly.
#ifndef EKTELO_DATA_SCHEMA_H_
#define EKTELO_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ektelo {

struct Attribute {
  std::string name;
  /// Number of distinct values; codes are 0 .. domain_size-1.
  std::size_t domain_size;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);

  std::size_t num_attrs() const { return attrs_.size(); }
  const Attribute& attr(std::size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Index of the attribute named `name`; aborts if absent.
  std::size_t AttrIndex(const std::string& name) const;
  bool HasAttr(const std::string& name) const;

  /// Product of all attribute domain sizes (the size of the data vector).
  std::size_t TotalDomainSize() const;

  /// Row-major flattening of per-attribute codes into a cell index.
  std::size_t FlattenIndex(const std::vector<uint32_t>& codes) const;
  /// Inverse of FlattenIndex.
  std::vector<uint32_t> UnflattenIndex(std::size_t cell) const;

  /// Sub-schema on the named attributes (in the given order).
  Schema Project(const std::vector<std::string>& names) const;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace ektelo

#endif  // EKTELO_DATA_SCHEMA_H_
