// Inference operators (paper Sec. 5.5, 7.6): derive a consistent estimate
// xhat of the data vector from all noisy measurements taken by a plan.
// All of these are Public operators — they never touch private data.
//
//  * LeastSquaresInference       — LS via LSMR on the precision-weighted
//                                  implicit stack (the paper's workhorse).
//  * NnlsInference               — LS with x >= 0 (Definition 5.2).
//  * MultWeightsInference        — the multiplicative-weights update used
//                                  by MWEM (maximum-entropy flavored).
//  * DirectLeastSquaresInference — dense normal equations (the
//                                  "Dense+Direct" baseline of Fig. 5).
#ifndef EKTELO_OPS_INFERENCE_H_
#define EKTELO_OPS_INFERENCE_H_

#include <cstddef>
#include <optional>

#include "matrix/lsmr.h"
#include "matrix/nnls.h"
#include "ops/measurement.h"

namespace ektelo {

/// Ordinary least squares over all measurements (Definition 5.1),
/// precision-weighted so unequal noise scales are handled correctly.
Vec LeastSquaresInference(const MeasurementSet& mset,
                          const LsmrOptions& opts = {});

/// Non-negative least squares (Definition 5.2).  If known_total is given,
/// it is added as an (effectively exact) Total measurement — the
/// known-total side information used by MWEM variants (c)/(d).
Vec NnlsInference(const MeasurementSet& mset,
                  std::optional<double> known_total = std::nullopt,
                  const NnlsOptions& opts = {});

struct MwOptions {
  std::size_t iterations = 60;
  /// Update damping (the 1/(2 total) factor uses this multiplier).
  double learning_rate = 1.0;
};

/// Multiplicative-weights inference: maintains a non-negative xhat with
/// sum == total and repeatedly reweights by exp of the query residuals.
/// `total` is the (public or separately estimated) record count.
Vec MultWeightsInference(const MeasurementSet& mset, double total,
                         const MwOptions& opts = {});

/// One multiplicative-weights step from a given starting estimate (MWEM's
/// incremental use).
Vec MultWeightsStep(const MeasurementSet& mset, Vec xhat,
                    const MwOptions& opts = {});

/// Dense direct LS baseline (normal equations + Cholesky), O(n^3).
Vec DirectLeastSquaresInference(const MeasurementSet& mset);

/// LS via conjugate gradient on the normal equations — the alternative
/// iterative backend (see bench/ablation_inference for the comparison).
Vec CgLeastSquaresInference(const MeasurementSet& mset);

/// HR (Fig. 1): thresholding post-processor — zero out estimates whose
/// magnitude is below `threshold` (noise-floor suppression for sparse
/// data; a Public operator, free under post-processing).
Vec ThresholdingInference(Vec xhat, double threshold);

}  // namespace ektelo

#endif  // EKTELO_OPS_INFERENCE_H_
