#include "ops/hdmm.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense.h"
#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "ops/selection.h"
#include "util/check.h"

namespace ektelo {

double MatrixMechanismTse(const LinOp& workload, const LinOp& strategy) {
  EK_CHECK_EQ(workload.cols(), strategy.cols());
  DenseMatrix w = workload.MaterializeDense();
  DenseMatrix a = strategy.MaterializeDense();
  DenseMatrix gram = a.Gram();
  DenseMatrix gram_pinv = PseudoInverse(gram, 1e-9);
  // trace(W G+ W^T) = sum_i w_i G+ w_i^T.
  double tr = 0.0;
  Vec tmp(w.cols());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    gram_pinv.Matvec(w.RowPtr(i), tmp.data());
    double s = 0.0;
    for (std::size_t j = 0; j < w.cols(); ++j) s += w.At(i, j) * tmp[j];
    tr += s;
  }
  const double sens = a.MaxColNormL1();
  return sens * sens * tr;
}

namespace {

/// Group the columns of an op down to <= cap cells (uniform grouping) so
/// dense scoring stays cheap; strategy quality transfers across scale.
LinOpPtr Downsample(const LinOp& op, std::size_t n, std::size_t cap) {
  if (n <= cap) return MakeSparse(op.MaterializeSparse());
  // Build the n -> cap grouping matrix G (cap x n) and return op * G^T
  // ... for workload scoring we need W' over the reduced domain: treat a
  // group as one cell, i.e. W' = W * E where E (n x cap) is the 0/1
  // expansion assigning each original cell to its group.  Using E (not
  // E^T) keeps query semantics: a range over cells becomes a range over
  // groups.
  std::vector<Triplet> t;
  t.reserve(n);
  for (std::size_t j = 0; j < n; ++j)
    t.push_back({j, j * cap / n, 1.0});
  auto e = MakeSparse(CsrMatrix::FromTriplets(n, cap, std::move(t)));
  return MakeProduct(MakeSparse(op.MaterializeSparse()), e);
}

struct Candidate {
  LinOpPtr full;    // strategy on the true domain
  LinOpPtr scored;  // strategy on the scoring domain
  std::string name;
};

LinOpPtr WeightedHierarchy(std::size_t n, double leaf_weight) {
  // H2 with leaves re-weighted: interpolates Identity-ish and tree-ish.
  Hierarchy h = BuildHierarchy(n, 2);
  Vec w;
  w.reserve(h.TotalNodes());
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const bool leaf_level = (l + 1 == h.levels.size());
    w.insert(w.end(), h.levels[l].size(), leaf_level ? leaf_weight : 1.0);
  }
  return MakeRowWeight(HierarchyOp(h), std::move(w));
}

}  // namespace

HdmmChoice HdmmSelect1D(const LinOp& workload_factor, std::size_t n,
                        std::size_t score_cap) {
  EK_CHECK_EQ(workload_factor.cols(), n);
  const std::size_t ns = std::min(n, score_cap);
  LinOpPtr w_scored = Downsample(workload_factor, n, score_cap);

  std::vector<Candidate> candidates;
  auto add = [&](LinOpPtr full, LinOpPtr scored, std::string name) {
    candidates.push_back({std::move(full), std::move(scored),
                          std::move(name)});
  };
  add(MakeIdentityOp(n), MakeIdentityOp(ns), "Identity");
  add(MakeVStack({MakeTotalOp(n), MakeIdentityOp(n)}),
      MakeVStack({MakeTotalOp(ns), MakeIdentityOp(ns)}), "Total+Identity");
  add(H2Select(n), H2Select(ns), "H2");
  add(HbSelect(n), HbSelect(ns), "HB");
  for (double lw : {0.5, 2.0}) {
    add(WeightedHierarchy(n, lw), WeightedHierarchy(ns, lw),
        "H2(leaf=" + std::to_string(lw) + ")");
  }
  if (IsPowerOfTwo(n) && IsPowerOfTwo(ns))
    add(MakeWaveletOp(n), MakeWaveletOp(ns), "Wavelet");

  HdmmChoice best;
  best.scored_tse = 1e300;
  for (auto& c : candidates) {
    const double tse = MatrixMechanismTse(*w_scored, *c.scored);
    if (tse < best.scored_tse) {
      best.scored_tse = tse;
      best.strategy = c.full;
      best.name = c.name;
    }
  }
  EK_CHECK(best.strategy != nullptr);
  return best;
}

LinOpPtr HdmmSelect(const std::vector<LinOpPtr>& workload_factors,
                    const std::vector<std::size_t>& dims,
                    std::size_t score_cap) {
  EK_CHECK_EQ(workload_factors.size(), dims.size());
  EK_CHECK(!dims.empty());
  std::vector<LinOpPtr> strategy_factors;
  strategy_factors.reserve(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    strategy_factors.push_back(
        HdmmSelect1D(*workload_factors[d], dims[d], score_cap).strategy);
  }
  return MakeKronecker(std::move(strategy_factors));
}

}  // namespace ektelo
