// Partition-selection operators (paper Sec. 5.4).
//
// Data-adaptive selectors (AHP, DAWA) are Private->Public: they spend
// budget through the kernel (internally a VectorLaplace measurement of the
// histogram followed by public clustering / dynamic programming).  The
// structural selectors (grid, stripe, marginal) are Public.
#ifndef EKTELO_OPS_PARTITION_SELECT_H_
#define EKTELO_OPS_PARTITION_SELECT_H_

#include <cstddef>
#include <vector>

#include "kernel/budget.h"
#include "kernel/handles.h"
#include "kernel/kernel.h"
#include "matrix/partition.h"
#include "util/status.h"

namespace ektelo {

// ------------------------------------------------- public (structural)

/// Cells of an nx x ny grid mapped to a gx x gy block grid.
Partition GridPartition2D(std::size_t nx, std::size_t ny, std::size_t gx,
                          std::size_t gy);

/// Stripe(attr) (Sec. 9.2): one group per combination of the non-stripe
/// attributes; within each group, cells are ordered by the stripe
/// coordinate, so each split child is a 1D histogram along `stripe_dim`.
Partition StripePartition(const std::vector<std::size_t>& dims,
                          std::size_t stripe_dim);

/// Marginal(attrs): groups cells by the values of the kept dimensions
/// (given in ascending dimension order); reducing by this partition yields
/// exactly the marginal vector whose layout matches MarginalWorkload.
Partition MarginalPartition(const std::vector<std::size_t>& dims,
                            const std::vector<std::size_t>& keep_dims);

// ---------------------------------------------- pure clustering kernels

/// AHP's cluster step (Zhang et al., SDM 2014): zero out noisy counts
/// below `threshold`, then greedily group cells with similar magnitude
/// (cells are sorted by noisy value; a new group starts when the value
/// gap to the group's anchor exceeds `gap`).
Partition AhpClusterPartition(const Vec& noisy, double threshold, double gap);

/// DAWA stage 1 (Li et al., PVLDB 2014): least-cost interval partition of
/// a noisy histogram via dynamic programming over aligned dyadic
/// intervals (O(n log n)).  cost(bucket) = deviation + penalty, where the
/// deviation estimate is bias-corrected for the measurement noise: the
/// raw Sum|x~_i - mean| of a truly uniform bucket is ~= len *
/// E|Lap(noise_scale)|, so that amount is subtracted (clamped at 0) —
/// without the correction the DP refuses to merge uniform regions, which
/// is DAWA's entire advantage.
Partition DawaIntervalPartition(const Vec& noisy, double penalty,
                                double noise_scale = 0.0);

/// Heteroscedastic variant: per-cell noise scales (used when cells are
/// themselves groups of different volumes, e.g. after a workload-based
/// reduction: densities x_i / vol_i carry noise (1/eps) / vol_i).
Partition DawaIntervalPartition(const Vec& noisy, double penalty,
                                const Vec& noise_scales);

// -------------------------------------------- Private->Public (kernel)

struct AhpOptions {
  /// Threshold factor: counts below eta * log(n) / eps are zeroed.
  double eta = 0.35;
  /// Cluster gap as a multiple of the noise scale.
  double gap_factor = 2.0;
};

/// PA: AHP partition selection; spends `eps` on a noisy histogram.
StatusOr<Partition> AhpPartitionSelect(ProtectedKernel* kernel, SourceId src,
                                       double eps,
                                       const AhpOptions& opts = {});

/// Typed-handle overload: meters `eps` through `scope` before the kernel.
StatusOr<Partition> AhpPartitionSelect(const ProtectedVector& x, double eps,
                                       BudgetScope& scope,
                                       const AhpOptions& opts = {});

struct DawaOptions {
  /// Bucket penalty as a multiple of 1/eps (the stage-2 noise the
  /// partition trades against).
  double penalty_factor = 1.0;
  /// Public per-cell volumes.  When non-empty, partition selection runs
  /// on densities (noisy count / volume) instead of raw counts, so cells
  /// that are pre-merged groups of unequal size (workload-based
  /// reduction, Sec. 8) still expose their uniform-region structure.
  Vec cell_volumes;
};

/// PD: DAWA stage-1 partition selection; spends `eps`.
StatusOr<Partition> DawaPartitionSelect(ProtectedKernel* kernel, SourceId src,
                                        double eps,
                                        const DawaOptions& opts = {});

/// Typed-handle overload: meters `eps` through `scope` before the kernel.
StatusOr<Partition> DawaPartitionSelect(const ProtectedVector& x, double eps,
                                        BudgetScope& scope,
                                        const DawaOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_OPS_PARTITION_SELECT_H_
