// Query-selection operators (paper Sec. 5.3): each returns a measurement
// strategy as an implicit LinOp.  All of these are Public — they depend
// only on public information (domain sizes, the workload); the
// data-dependent selection operators (Worst-approx, PrivBayes select) live
// with the kernel / in privbayes.h.
#ifndef EKTELO_OPS_SELECTION_H_
#define EKTELO_OPS_SELECTION_H_

#include <cstddef>
#include <vector>

#include "matrix/linop.h"
#include "ops/hierarchy.h"
#include "workload/workloads.h"

namespace ektelo {

/// SI: all unit counts.
LinOpPtr IdentitySelect(std::size_t n);
/// ST: the single total query.
LinOpPtr TotalSelect(std::size_t n);
/// SH2: complete binary hierarchy (Hay et al.).
LinOpPtr H2Select(std::size_t n);
/// SHB: hierarchy with HB's optimized branching factor (Qardaji et al.).
LinOpPtr HbSelect(std::size_t n);
/// SP: Haar wavelet (Privelet, Xiao et al.); n must be a power of two.
LinOpPtr PriveletSelect(std::size_t n);

/// SG: Greedy-H (DAWA stage 2, Li et al.): a binary hierarchy whose levels
/// are re-weighted by how heavily the workload uses them (usage^(1/3),
/// renormalized to keep the sensitivity of plain H2).  Nodes are counted
/// via the canonical decomposition of each workload range.
LinOpPtr GreedyHSelect(const std::vector<RangeQuery>& workload,
                       std::size_t n);

/// Decompose [q.lo, q.hi] into canonical hierarchy nodes; returns
/// (level, index) pairs.  Exposed for tests.
std::vector<std::pair<std::size_t, std::size_t>> CanonicalCover(
    const Hierarchy& h, const RangeQuery& q);

/// SQ: 2D quadtree over an nx x ny grid (Cormode et al.): all node
/// rectangles from the root down to unit cells.
LinOpPtr QuadtreeSelect(std::size_t nx, std::size_t ny);

/// Rectangle-indicator queries of a gx x gy uniform grid over nx x ny
/// (the measurement set of UniformGrid).
LinOpPtr GridCellsSelect(std::size_t nx, std::size_t ny, std::size_t gx,
                         std::size_t gy);

/// UGrid's data-size-adaptive grid side: m = sqrt(N eps / c), clamped to
/// [1, n_side] (Qardaji et al. use c ~= 10).
std::size_t UniformGridSide(double n_records, double eps, std::size_t n_side,
                            double c = 10.0);

/// SS: Stripe(attr) selection for HB-Striped_kron (Sec. 9.2): the
/// Kronecker product with an HB hierarchy on `stripe_dim` and Identity on
/// every other dimension.
LinOpPtr StripeKronSelect(const std::vector<std::size_t>& dims,
                          std::size_t stripe_dim);

}  // namespace ektelo

#endif  // EKTELO_OPS_SELECTION_H_
