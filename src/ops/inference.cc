#include "matrix/cg.h"
#include "ops/inference.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense.h"
#include "matrix/implicit_ops.h"
#include "matrix/rewrite.h"
#include "util/check.h"

namespace ektelo {

Vec LeastSquaresInference(const MeasurementSet& mset,
                          const LsmrOptions& opts) {
  EK_CHECK(!mset.empty());
  // Canonicalize the weighted stack before the iterative solve: merged
  // measurement unions and hoisted weights cut the per-iteration apply
  // cost without changing the represented matrix.
  LinOpPtr a = MaybeRewrite(mset.WeightedOp());
  Vec b = mset.WeightedY();
  return Lsmr(*a, b, opts).x;
}

Vec NnlsInference(const MeasurementSet& mset,
                  std::optional<double> known_total,
                  const NnlsOptions& opts) {
  EK_CHECK(!mset.empty());
  MeasurementSet augmented = mset;
  if (known_total.has_value()) {
    augmented.Add(MakeTotalOp(mset.Domain()), Vec{*known_total},
                  /*noise_scale=*/0.0);
  }
  // Deliberately NOT rewritten: when the system is underdetermined (early
  // MWEM rounds) the projected-gradient solver lands on a representation-
  // dependent point of the minimizer set, so an algebraically equivalent
  // but re-associated stack can move the answer by far more than
  // roundoff.  Callers that want the merged-union fast path build it
  // themselves (MwemLoopPlan), identically under both A/B toggles.
  LinOpPtr a = augmented.WeightedOp();
  Vec b = augmented.WeightedY();
  return Nnls(*a, b, opts).x;
}

Vec MultWeightsStep(const MeasurementSet& mset, Vec xhat,
                    const MwOptions& opts) {
  EK_CHECK(!mset.empty());
  const std::size_t n = mset.Domain();
  EK_CHECK_EQ(xhat.size(), n);
  double total = Sum(xhat);
  if (total <= 0.0) return xhat;
  LinOpPtr m = MaybeRewrite(mset.StackedOp());
  Vec y = mset.StackedY();
  for (std::size_t it = 0; it < opts.iterations; ++it) {
    // g = 0.5 M^T (y - M xhat): increase cells under-counted by xhat.
    Vec res = m->Apply(xhat);
    for (std::size_t i = 0; i < res.size(); ++i) res[i] = y[i] - res[i];
    Vec g = m->ApplyT(res);
    double new_total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // Clamp the exponent for numerical robustness on extreme residuals.
      double e = opts.learning_rate * 0.5 * g[j] / total;
      e = std::clamp(e, -30.0, 30.0);
      xhat[j] *= std::exp(e);
      new_total += xhat[j];
    }
    if (new_total <= 0.0) break;
    const double rescale = total / new_total;
    for (double& v : xhat) v *= rescale;
  }
  return xhat;
}

Vec MultWeightsInference(const MeasurementSet& mset, double total,
                         const MwOptions& opts) {
  EK_CHECK(!mset.empty());
  const std::size_t n = mset.Domain();
  EK_CHECK_GT(total, 0.0);
  Vec xhat(n, total / static_cast<double>(n));  // uniform start
  return MultWeightsStep(mset, std::move(xhat), opts);
}

Vec DirectLeastSquaresInference(const MeasurementSet& mset) {
  EK_CHECK(!mset.empty());
  // Assemble the n x n normal equations from the structured Gram operator
  // instead of densifying the (queries x n) measurement stack: the stack
  // is usually much taller than the domain, and Gram() materializes via
  // blocked identity panels when no closed form applies.
  LinOpPtr a = MaybeRewrite(mset.WeightedOp());
  // The n x n Gram of a given measurement union is a prime memo-cache
  // target: iterative plans and repeated executions re-derive structurally
  // identical stacks, and assembly dominates the solve.
  DenseMatrix gram = RewriteEnabled()
                         ? *OperatorCache::Global().GramDense(a)
                         : a->Gram()->MaterializeDense();
  Vec atb = a->ApplyT(mset.WeightedY());
  return SolveNormalEquations(std::move(gram), atb);
}

Vec CgLeastSquaresInference(const MeasurementSet& mset) {
  EK_CHECK(!mset.empty());
  LinOpPtr a = MaybeRewrite(mset.WeightedOp());
  Vec b = mset.WeightedY();
  return CgLeastSquares(*a, b).x;
}

Vec ThresholdingInference(Vec xhat, double threshold) {
  EK_CHECK_GE(threshold, 0.0);
  for (double& v : xhat)
    if (std::abs(v) < threshold) v = 0.0;
  return xhat;
}

}  // namespace ektelo
