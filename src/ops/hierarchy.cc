#include "ops/hierarchy.h"

#include <algorithm>
#include <cmath>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "util/check.h"

namespace ektelo {

std::size_t Hierarchy::TotalNodes() const {
  std::size_t total = 0;
  for (const auto& lvl : levels) total += lvl.size();
  return total;
}

std::size_t Hierarchy::RowOf(std::size_t level, std::size_t i) const {
  std::size_t row = 0;
  for (std::size_t l = 0; l < level; ++l) row += levels[l].size();
  return row + i;
}

Hierarchy BuildHierarchy(std::size_t n, std::size_t branch) {
  EK_CHECK_GT(n, 0u);
  EK_CHECK_GE(branch, 2u);
  Hierarchy h;
  h.n = n;
  h.branch = branch;
  h.levels.push_back({{0, n}});
  while (true) {
    const auto& cur = h.levels.back();
    std::vector<HierNode> next;
    std::vector<std::size_t> starts(cur.size() + 1, 0);
    bool any_split = false;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      starts[i] = next.size();
      const std::size_t len = cur[i].hi - cur[i].lo;
      if (len > 1) {
        any_split = true;
        // Split into up to `branch` near-equal parts.
        const std::size_t parts = std::min(branch, len);
        std::size_t pos = cur[i].lo;
        for (std::size_t p = 0; p < parts; ++p) {
          std::size_t sz = len / parts + (p < len % parts ? 1 : 0);
          next.push_back({pos, pos + sz});
          pos += sz;
        }
        EK_CHECK_EQ(pos, cur[i].hi);
      }
    }
    starts[cur.size()] = next.size();
    h.child_start.push_back(std::move(starts));
    if (!any_split) {
      h.child_start.pop_back();  // last level has no children
      break;
    }
    h.levels.push_back(std::move(next));
  }
  return h;
}

LinOpPtr HierarchyOp(const Hierarchy& h) {
  std::vector<Interval> ranges;
  ranges.reserve(h.TotalNodes());
  for (const auto& lvl : h.levels)
    for (const auto& node : lvl) ranges.push_back({node.lo, node.hi - 1});
  return MakeRangeSetOp(std::move(ranges), h.n);
}

std::size_t HbBranchingFactor(std::size_t n) {
  // Qardaji et al.: choose b minimizing (b-1) * h^3 with h = ceil(log_b n).
  std::size_t best_b = 2;
  double best_cost = 1e300;
  for (std::size_t b = 2; b <= 16; ++b) {
    double h = std::ceil(std::log(double(std::max<std::size_t>(n, 2))) /
                         std::log(double(b)));
    h = std::max(h, 1.0);
    double cost = double(b - 1) * h * h * h;
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

namespace {

/// Bottom-up pass: z[l][i] is the variance-optimal combination of node
/// (l,i)'s own measurement with the sum of its children's estimates;
/// var[l][i] is its variance (in units of the per-query noise variance).
struct ZState {
  std::vector<std::vector<double>> z;
  std::vector<std::vector<double>> var;
};

void BottomUp(const Hierarchy& h, const Vec& y, std::size_t level,
              std::size_t i, ZState* st) {
  const bool has_children =
      level + 1 < h.levels.size() &&
      h.child_start[level][i + 1] > h.child_start[level][i];
  const double y_v = y[h.RowOf(level, i)];
  if (!has_children) {
    st->z[level][i] = y_v;
    st->var[level][i] = 1.0;
    return;
  }
  double sum_z = 0.0, sum_var = 0.0;
  for (std::size_t c = h.child_start[level][i];
       c < h.child_start[level][i + 1]; ++c) {
    BottomUp(h, y, level + 1, c, st);
    sum_z += st->z[level + 1][c];
    sum_var += st->var[level + 1][c];
  }
  // Combine two independent estimates of the node total: own measurement
  // (variance 1) and the children sum (variance sum_var).
  const double w_own = sum_var / (1.0 + sum_var);
  st->z[level][i] = w_own * y_v + (1.0 - w_own) * sum_z;
  st->var[level][i] = sum_var / (1.0 + sum_var);
}

void TopDown(const Hierarchy& h, std::size_t level, std::size_t i,
             double value, const ZState& st, Vec* x) {
  const bool has_children =
      level + 1 < h.levels.size() &&
      h.child_start[level][i + 1] > h.child_start[level][i];
  if (!has_children) {
    const auto& node = h.levels[level][i];
    EK_CHECK_EQ(node.hi - node.lo, 1u);
    (*x)[node.lo] = value;
    return;
  }
  double sum_z = 0.0, sum_var = 0.0;
  for (std::size_t c = h.child_start[level][i];
       c < h.child_start[level][i + 1]; ++c) {
    sum_z += st.z[level + 1][c];
    sum_var += st.var[level + 1][c];
  }
  const double surplus = value - sum_z;
  for (std::size_t c = h.child_start[level][i];
       c < h.child_start[level][i + 1]; ++c) {
    // Distribute the consistency surplus proportionally to variance — the
    // exact least-squares adjustment for tree-structured measurements.
    const double share = st.var[level + 1][c] / sum_var;
    TopDown(h, level + 1, c, st.z[level + 1][c] + surplus * share, st, x);
  }
}

}  // namespace

Vec TreeBasedLeastSquares(const Hierarchy& h, const Vec& y) {
  EK_CHECK_EQ(y.size(), h.TotalNodes());
  ZState st;
  st.z.resize(h.levels.size());
  st.var.resize(h.levels.size());
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    st.z[l].assign(h.levels[l].size(), 0.0);
    st.var[l].assign(h.levels[l].size(), 0.0);
  }
  BottomUp(h, y, 0, 0, &st);
  Vec x(h.n, 0.0);
  TopDown(h, 0, 0, st.z[0][0], st, &x);
  return x;
}

}  // namespace ektelo
