#include "ops/measurement.h"

#include <algorithm>

#include "matrix/combinators.h"
#include "util/check.h"

namespace ektelo {

void MeasurementSet::Add(LinOpPtr m, Vec y, double noise_scale) {
  Add(Measurement{std::move(m), std::move(y), noise_scale});
}

void MeasurementSet::Add(Measurement meas) {
  EK_CHECK_EQ(meas.m->rows(), meas.y.size());
  EK_CHECK_GE(meas.noise_scale, 0.0);
  if (!items_.empty()) EK_CHECK_EQ(meas.m->cols(), Domain());
  items_.push_back(std::move(meas));
}

std::size_t MeasurementSet::TotalQueries() const {
  std::size_t total = 0;
  for (const auto& it : items_) total += it.m->rows();
  return total;
}

std::size_t MeasurementSet::Domain() const {
  EK_CHECK(!items_.empty());
  return items_[0].m->cols();
}

LinOpPtr MeasurementSet::StackedOp() const {
  EK_CHECK(!items_.empty());
  std::vector<LinOpPtr> parts;
  parts.reserve(items_.size());
  for (const auto& it : items_) parts.push_back(it.m);
  return MakeVStack(std::move(parts));
}

Vec MeasurementSet::StackedY() const {
  Vec y;
  y.reserve(TotalQueries());
  for (const auto& it : items_) y.insert(y.end(), it.y.begin(), it.y.end());
  return y;
}

double MeasurementSet::WeightFor(double noise_scale) const {
  if (noise_scale > 0.0) return 1.0 / noise_scale;
  // Exact side information ("negligible noise scale", Sec. 5.5): dominate
  // the most precise real measurement by a moderate factor.  The factor
  // trades constraint tightness against conditioning — first-order
  // solvers (NNLS) stall when one row's curvature exceeds the rest by
  // many orders of magnitude.
  double min_scale = 1e300;
  for (const auto& it : items_)
    if (it.noise_scale > 0.0) min_scale = std::min(min_scale, it.noise_scale);
  if (min_scale == 1e300) return 1.0;  // all exact: weights don't matter
  return 4.0 / min_scale;
}

LinOpPtr MeasurementSet::WeightedOp() const {
  EK_CHECK(!items_.empty());
  std::vector<LinOpPtr> parts;
  parts.reserve(items_.size());
  for (const auto& it : items_) {
    const double w = WeightFor(it.noise_scale);
    parts.push_back(w == 1.0 ? it.m : MakeScaled(it.m, w));
  }
  return MakeVStack(std::move(parts));
}

Vec MeasurementSet::WeightedY() const {
  Vec y;
  y.reserve(TotalQueries());
  for (const auto& it : items_) {
    const double w = WeightFor(it.noise_scale);
    for (double v : it.y) y.push_back(w * v);
  }
  return y;
}

}  // namespace ektelo
