// MeasurementSet: the client-side record of noisy measurements taken
// during a plan, all mapped back onto the *original* data-vector domain
// (paper Sec. 5.5, "Defining inference under vector transformations").
//
// Because vector transformations and query operators are both linear, a
// measurement M' taken on a transformed vector x' = T x is recorded as the
// composed query M'T on x.  Inference then runs once, globally, on the
// stacked system — the consistent-use-of-inference discipline the paper
// shows is never worse (Thm. 5.3).
#ifndef EKTELO_OPS_MEASUREMENT_H_
#define EKTELO_OPS_MEASUREMENT_H_

#include <vector>

#include "matrix/linop.h"

namespace ektelo {

/// One batch of noisy answers: y ~ M x + Lap(noise_scale)^rows.
struct Measurement {
  LinOpPtr m;          // queries, expressed on the original domain
  Vec y;               // noisy answers, |y| == m->rows()
  double noise_scale;  // Laplace scale (0 for exact side information)
};

class MeasurementSet {
 public:
  void Add(LinOpPtr m, Vec y, double noise_scale);
  void Add(Measurement meas);

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const std::vector<Measurement>& items() const { return items_; }

  /// Total number of scalar queries across all measurements.
  std::size_t TotalQueries() const;
  /// Original-domain size (cols of every member).
  std::size_t Domain() const;

  /// All queries stacked (unweighted), and the matching answer vector.
  LinOpPtr StackedOp() const;
  Vec StackedY() const;

  /// Precision-weighted stack: rows scaled by 1/noise_scale so that every
  /// row of the weighted system has unit noise variance (the "scaled query
  /// matrix" of Definition 5.2).  Exact rows (scale 0) get a large finite
  /// weight relative to the noisiest measurement.
  LinOpPtr WeightedOp() const;
  Vec WeightedY() const;

 private:
  double WeightFor(double noise_scale) const;
  std::vector<Measurement> items_;
};

}  // namespace ektelo

#endif  // EKTELO_OPS_MEASUREMENT_H_
