// SPB: PrivBayes (Zhang et al., TODS 2017) as EKTELO operators.
//
// Structure: a Bayesian network over the attributes is selected greedily —
// attribute order is random; each new attribute picks its parent set
// (<= max_parents already-selected attributes) with the exponential
// mechanism over empirical mutual information, executed inside the
// protected kernel (Private->Public).  Measurement: one noisy marginal
// per clique {attr} ∪ parents (Laplace).  Inference: either the original
// product-of-conditionals estimate (plan "PrivBayes") or generic least
// squares on the same marginal measurements (plan #17, "PrivBayesLS").
#ifndef EKTELO_OPS_PRIVBAYES_H_
#define EKTELO_OPS_PRIVBAYES_H_

#include <cstddef>
#include <vector>

#include "data/schema.h"
#include "kernel/kernel.h"
#include "ops/measurement.h"
#include "util/rng.h"
#include "util/status.h"

namespace ektelo {

struct PrivBayesOptions {
  std::size_t max_parents = 2;
  /// Fraction of eps spent on structure selection (split across picks);
  /// a small slice estimates N for the MI sensitivity; the rest measures
  /// the clique marginals.
  double structure_frac = 0.3;
  double count_frac = 0.05;
};

struct PrivBayesClique {
  /// Attribute indices, ascending; the *last listed in `order`* is the
  /// child, the rest are its parents.
  std::size_t child;
  std::vector<std::size_t> parents;
};

struct PrivBayesResult {
  std::vector<PrivBayesClique> cliques;  // in selection (topological) order
  /// Noisy marginal vector per clique over sorted({child} ∪ parents),
  /// laid out attr-major like MarginalWorkload.
  std::vector<Vec> noisy_marginals;
  double noise_scale = 0.0;   // Laplace scale of the marginal measurements
  double noisy_total = 0.0;   // DP estimate of |D|
  /// Measurements mapped onto the full domain (for LS inference).
  MeasurementSet measurements;
};

/// Select the network and measure the clique marginals, spending `eps`.
/// `src` must be the root table source of `kernel` with schema `schema`.
StatusOr<PrivBayesResult> PrivBayesSelectAndMeasure(
    ProtectedKernel* kernel, SourceId src, const Schema& schema, double eps,
    Rng* rng, const PrivBayesOptions& opts = {});

/// Expected product-form estimate: normalize the noisy marginals into
/// conditional distributions and return noisy_total * prod P(a | parents)
/// over the full domain.  (The smooth, variance-free summary of the net.)
Vec PrivBayesProductEstimate(const Schema& schema,
                             const PrivBayesResult& result);

/// Faithful PrivBayes inference (Zhang et al.): ancestral-sample
/// round(noisy_total) synthetic records from the same conditionals and
/// return their histogram.  This is what the original system releases;
/// the sampling variance it carries is part of the baseline's error
/// profile in Table 5.
Vec PrivBayesSampleEstimate(const Schema& schema,
                            const PrivBayesResult& result, Rng* rng);

/// Empirical mutual information I(A; B) of attribute sets in a table
/// (natural log).  Exposed for tests.
double EmpiricalMutualInformation(const Table& t,
                                  const std::vector<std::size_t>& a_attrs,
                                  const std::vector<std::size_t>& b_attrs);

}  // namespace ektelo

#endif  // EKTELO_OPS_PRIVBAYES_H_
