#include "ops/privbayes.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "matrix/implicit_ops.h"
#include "workload/workloads.h"
#include "util/check.h"

namespace ektelo {

double EmpiricalMutualInformation(const Table& t,
                                  const std::vector<std::size_t>& a_attrs,
                                  const std::vector<std::size_t>& b_attrs) {
  const double n = static_cast<double>(t.NumRows());
  if (n == 0.0) return 0.0;
  std::map<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>, double>
      joint;
  std::map<std::vector<uint32_t>, double> pa, pb;
  std::vector<uint32_t> ka(a_attrs.size()), kb(b_attrs.size());
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    for (std::size_t i = 0; i < a_attrs.size(); ++i)
      ka[i] = t.At(r, a_attrs[i]);
    for (std::size_t i = 0; i < b_attrs.size(); ++i)
      kb[i] = t.At(r, b_attrs[i]);
    joint[{ka, kb}] += 1.0;
    pa[ka] += 1.0;
    pb[kb] += 1.0;
  }
  double mi = 0.0;
  for (const auto& [key, c] : joint) {
    const double pab = c / n;
    const double p_a = pa[key.first] / n;
    const double p_b = pb[key.second] / n;
    mi += pab * std::log(pab / (p_a * p_b));
  }
  return std::max(mi, 0.0);
}

namespace {

/// All subsets of `pool` with size in [0, max_size].
std::vector<std::vector<std::size_t>> Subsets(
    const std::vector<std::size_t>& pool, std::size_t max_size) {
  std::vector<std::vector<std::size_t>> out = {{}};
  for (std::size_t bit = 1; bit < (std::size_t{1} << pool.size()); ++bit) {
    std::vector<std::size_t> s;
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (bit & (std::size_t{1} << i)) s.push_back(pool[i]);
    if (s.size() <= max_size) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

StatusOr<PrivBayesResult> PrivBayesSelectAndMeasure(
    ProtectedKernel* kernel, SourceId src, const Schema& schema, double eps,
    Rng* rng, const PrivBayesOptions& opts) {
  const std::size_t na = schema.num_attrs();
  if (na == 0) return Status::InvalidArgument("empty schema");
  PrivBayesResult result;

  // DP estimate of |D| (drives MI sensitivity and the product estimate).
  const double eps_count = eps * opts.count_frac;
  EK_ASSIGN_OR_RETURN(double noisy_total, kernel->NoisyCount(src, eps_count));
  noisy_total = std::max(noisy_total, 1.0);
  result.noisy_total = noisy_total;

  // Random attribute order (client-side randomness; selection of parents
  // is the only data-dependent choice and goes through the kernel).
  std::vector<std::size_t> order(na);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = na; i > 1; --i)
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng->UniformInt(0, i - 1))]);

  // MI sensitivity bound ~ (2/N) log2(N) (Zhang et al.).
  const double mi_sens =
      2.0 / noisy_total * std::log2(std::max(noisy_total, 2.0)) + 1e-12;
  const double eps_structure =
      na > 1 ? eps * opts.structure_frac / double(na - 1) : 0.0;

  std::vector<std::size_t> chosen;
  for (std::size_t k = 0; k < na; ++k) {
    const std::size_t attr = order[k];
    PrivBayesClique clique;
    clique.child = attr;
    if (k > 0) {
      auto candidates = Subsets(chosen, opts.max_parents);
      std::vector<std::function<double(const Table&)>> scorers;
      scorers.reserve(candidates.size());
      for (const auto& parents : candidates) {
        scorers.push_back([attr, parents](const Table& t) {
          if (parents.empty()) return 0.0;
          return EmpiricalMutualInformation(t, {attr}, parents);
        });
      }
      EK_ASSIGN_OR_RETURN(
          std::size_t pick,
          kernel->ChooseByTableScores(src, scorers, eps_structure, mi_sens));
      clique.parents = candidates[pick];
    }
    chosen.push_back(attr);
    result.cliques.push_back(std::move(clique));
  }

  // Measure one marginal per clique.
  const double eps_measure =
      eps * (1.0 - opts.structure_frac - opts.count_frac) / double(na);
  for (const auto& clique : result.cliques) {
    std::vector<std::size_t> attrs = clique.parents;
    attrs.push_back(clique.child);
    std::sort(attrs.begin(), attrs.end());
    std::vector<std::string> names;
    names.reserve(attrs.size());
    for (std::size_t a : attrs) names.push_back(schema.attr(a).name);

    EK_ASSIGN_OR_RETURN(SourceId sel, kernel->TSelect(src, names));
    EK_ASSIGN_OR_RETURN(SourceId vec, kernel->TVectorize(sel));
    const std::size_t d = kernel->VectorSize(vec);
    EK_ASSIGN_OR_RETURN(
        Vec y, kernel->VectorLaplace(vec, *MakeIdentityOp(d), eps_measure));
    result.noisy_marginals.push_back(y);
    result.measurements.Add(MarginalWorkload(schema, names), std::move(y),
                            1.0 / eps_measure);
  }
  result.noise_scale = 1.0 / eps_measure;
  // The noisy total joins the measurement set as side information.
  result.measurements.Add(MakeTotalOp(schema.TotalDomainSize()),
                          Vec{noisy_total}, 1.0 / eps_count);
  return result;
}

namespace {

/// Conditional distribution P(child | parents) over the clique's
/// sorted-attr marginal layout, from the clamped noisy marginal.
struct CliqueTable {
  std::vector<std::size_t> attrs;  // sorted
  std::vector<std::size_t> dims;
  std::size_t child_pos;
  Vec cond;  // P(child | parents), clique-marginal layout
};

std::vector<CliqueTable> BuildCliqueTables(const Schema& schema,
                                           const PrivBayesResult& result);

}  // namespace

Vec PrivBayesProductEstimate(const Schema& schema,
                             const PrivBayesResult& result) {
  const std::size_t n = schema.TotalDomainSize();
  const std::size_t na = schema.num_attrs();
  std::vector<CliqueTable> tables = BuildCliqueTables(schema, result);

  // Product-form estimate over the full domain.
  Vec xhat(n);
  std::vector<uint32_t> codes(na);
  for (std::size_t cell = 0; cell < n; ++cell) {
    std::size_t rem = cell;
    for (std::size_t a = na; a-- > 0;) {
      codes[a] = static_cast<uint32_t>(rem % schema.attr(a).domain_size);
      rem /= schema.attr(a).domain_size;
    }
    double p = 1.0;
    for (const auto& ct : tables) {
      std::size_t idx = 0;
      for (std::size_t i = 0; i < ct.attrs.size(); ++i)
        idx = idx * ct.dims[i] + codes[ct.attrs[i]];
      p *= ct.cond[idx];
    }
    xhat[cell] = result.noisy_total * p;
  }
  return xhat;
}

Vec PrivBayesSampleEstimate(const Schema& schema,
                            const PrivBayesResult& result, Rng* rng) {
  const std::size_t n = schema.TotalDomainSize();
  const std::size_t na = schema.num_attrs();
  std::vector<CliqueTable> tables = BuildCliqueTables(schema, result);

  const auto rows = static_cast<std::size_t>(
      std::llround(std::max(result.noisy_total, 0.0)));
  Vec hist(n, 0.0);
  std::vector<uint32_t> codes(na, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    // Ancestral sampling in selection order: every clique's parents were
    // sampled by an earlier clique.
    for (std::size_t c = 0; c < result.cliques.size(); ++c) {
      const auto& ct = tables[c];
      const std::size_t child = result.cliques[c].child;
      const std::size_t child_dim = schema.attr(child).domain_size;
      // Base index with child code 0; child stride within the layout.
      std::size_t base = 0, stride = 1;
      for (std::size_t i = 0; i < ct.attrs.size(); ++i)
        base = base * ct.dims[i] +
               (ct.attrs[i] == child ? 0 : codes[ct.attrs[i]]);
      for (std::size_t i = ct.child_pos + 1; i < ct.dims.size(); ++i)
        stride *= ct.dims[i];
      double u = rng->Uniform();
      uint32_t pick = static_cast<uint32_t>(child_dim - 1);
      double acc = 0.0;
      for (std::size_t v = 0; v < child_dim; ++v) {
        acc += ct.cond[base + v * stride];
        if (u < acc) {
          pick = static_cast<uint32_t>(v);
          break;
        }
      }
      codes[child] = pick;
    }
    std::size_t cell = 0;
    for (std::size_t a = 0; a < na; ++a)
      cell = cell * schema.attr(a).domain_size + codes[a];
    hist[cell] += 1.0;
  }
  return hist;
}

namespace {

std::vector<CliqueTable> BuildCliqueTables(const Schema& schema,
                                           const PrivBayesResult& result) {
  std::vector<CliqueTable> tables;
  tables.reserve(result.cliques.size());
  for (std::size_t c = 0; c < result.cliques.size(); ++c) {
    const auto& clique = result.cliques[c];
    CliqueTable ct;
    ct.attrs = clique.parents;
    ct.attrs.push_back(clique.child);
    std::sort(ct.attrs.begin(), ct.attrs.end());
    ct.child_pos = static_cast<std::size_t>(
        std::find(ct.attrs.begin(), ct.attrs.end(), clique.child) -
        ct.attrs.begin());
    std::size_t size = 1;
    for (std::size_t a : ct.attrs) {
      ct.dims.push_back(schema.attr(a).domain_size);
      size *= schema.attr(a).domain_size;
    }
    EK_CHECK_EQ(result.noisy_marginals[c].size(), size);
    Vec clamped = result.noisy_marginals[c];
    for (double& v : clamped) v = std::max(v, 0.0);

    // Normalize over the child axis per parent combination.
    ct.cond.assign(size, 0.0);
    const std::size_t child_dim = ct.dims[ct.child_pos];
    std::size_t inner = 1;  // stride of the child axis
    for (std::size_t p = ct.child_pos + 1; p < ct.dims.size(); ++p)
      inner *= ct.dims[p];
    const std::size_t outer = size / (child_dim * inner);
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        double denom = 0.0;
        for (std::size_t cv = 0; cv < child_dim; ++cv)
          denom += clamped[(o * child_dim + cv) * inner + i];
        for (std::size_t cv = 0; cv < child_dim; ++cv) {
          const std::size_t idx = (o * child_dim + cv) * inner + i;
          ct.cond[idx] = denom > 0.0 ? clamped[idx] / denom
                                     : 1.0 / double(child_dim);
        }
      }
    }
    tables.push_back(std::move(ct));
  }
  return tables;
}

}  // namespace

}  // namespace ektelo
