// SHD: HDMM-style workload-adaptive strategy selection (McKenna et al.,
// PVLDB 2018), the paper's plan #13.
//
// Full HDMM solves a continuous optimization (OPT_+ over parameterized
// p-Identity strategies).  Per DESIGN.md we implement the two ideas this
// paper actually relies on — workload adaptivity and Kronecker structure —
// with a per-dimension search: each dimension's strategy is chosen from a
// family of candidates (Identity, Total+Identity mixes, weighted
// hierarchies, Wavelet) by exact matrix-mechanism expected error, scored
// on a (possibly down-sampled) copy of the per-dimension workload; the
// global strategy is the Kronecker product of the winners.
#ifndef EKTELO_OPS_HDMM_H_
#define EKTELO_OPS_HDMM_H_

#include <string>
#include <vector>

#include "matrix/linop.h"

namespace ektelo {

/// Expected total squared error of answering workload W via strategy A
/// under the matrix mechanism (unit eps): ||A||_1^2 * trace(W G+ W^T)
/// with G = A^T A.  Dense computation — callers down-sample large domains.
double MatrixMechanismTse(const LinOp& workload, const LinOp& strategy);

struct HdmmChoice {
  LinOpPtr strategy;
  std::string name;
  double scored_tse;  // on the scoring (possibly down-sampled) domain
};

/// Choose a strategy for a single dimension of size n given that
/// dimension's workload factor.  score_cap bounds the dense scoring size;
/// larger dimensions are scored on a grouped copy.
HdmmChoice HdmmSelect1D(const LinOp& workload_factor, std::size_t n,
                        std::size_t score_cap = 256);

/// Kronecker-compose per-dimension selections.
LinOpPtr HdmmSelect(const std::vector<LinOpPtr>& workload_factors,
                    const std::vector<std::size_t>& dims,
                    std::size_t score_cap = 256);

}  // namespace ektelo

#endif  // EKTELO_OPS_HDMM_H_
