#include "ops/selection.h"

#include <algorithm>
#include <cmath>

#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "util/check.h"

namespace ektelo {

LinOpPtr IdentitySelect(std::size_t n) { return MakeIdentityOp(n); }
LinOpPtr TotalSelect(std::size_t n) { return MakeTotalOp(n); }

LinOpPtr H2Select(std::size_t n) {
  return HierarchyOp(BuildHierarchy(n, 2));
}

LinOpPtr HbSelect(std::size_t n) {
  return HierarchyOp(BuildHierarchy(n, HbBranchingFactor(n)));
}

LinOpPtr PriveletSelect(std::size_t n) {
  EK_CHECK(IsPowerOfTwo(n));
  return MakeWaveletOp(n);
}

std::vector<std::pair<std::size_t, std::size_t>> CanonicalCover(
    const Hierarchy& h, const RangeQuery& q) {
  std::vector<std::pair<std::size_t, std::size_t>> cover;
  // Iterative DFS from the root; take a node when fully contained.
  std::vector<std::pair<std::size_t, std::size_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [level, i] = stack.back();
    stack.pop_back();
    const HierNode& node = h.levels[level][i];
    if (node.hi <= q.lo || node.lo > q.hi) continue;  // disjoint
    if (q.lo <= node.lo && node.hi - 1 <= q.hi) {     // contained
      cover.push_back({level, i});
      continue;
    }
    const bool has_children =
        level + 1 < h.levels.size() &&
        h.child_start[level][i + 1] > h.child_start[level][i];
    EK_CHECK(has_children);  // a unit node is always contained or disjoint
    for (std::size_t c = h.child_start[level][i];
         c < h.child_start[level][i + 1]; ++c)
      stack.push_back({level + 1, c});
  }
  return cover;
}

LinOpPtr GreedyHSelect(const std::vector<RangeQuery>& workload,
                       std::size_t n) {
  Hierarchy h = BuildHierarchy(n, 2);
  // Count how many workload queries use each node.
  std::vector<std::vector<double>> usage(h.levels.size());
  for (std::size_t l = 0; l < h.levels.size(); ++l)
    usage[l].assign(h.levels[l].size(), 0.0);
  for (const auto& q : workload)
    for (auto [l, i] : CanonicalCover(h, q)) usage[l][i] += 1.0;

  // Per-level weights ~ (1 + mean usage)^(1/3), renormalized so the total
  // over levels (= the L1 column norm of the weighted hierarchy) equals
  // the number of levels, matching plain H2's sensitivity.
  const std::size_t num_levels = h.levels.size();
  Vec lambda(num_levels);
  double lambda_sum = 0.0;
  for (std::size_t l = 0; l < num_levels; ++l) {
    double mean = 0.0;
    for (double u : usage[l]) mean += u;
    mean /= static_cast<double>(usage[l].size());
    lambda[l] = std::cbrt(1.0 + mean);
    lambda_sum += lambda[l];
  }
  const double norm = static_cast<double>(num_levels) / lambda_sum;
  Vec row_weights;
  row_weights.reserve(h.TotalNodes());
  for (std::size_t l = 0; l < num_levels; ++l)
    row_weights.insert(row_weights.end(), h.levels[l].size(),
                       lambda[l] * norm);
  return MakeRowWeight(HierarchyOp(h), std::move(row_weights));
}

LinOpPtr QuadtreeSelect(std::size_t nx, std::size_t ny) {
  using Rect = Rectangle;
  std::vector<Rect> rects;
  // BFS subdivision into quadrants down to unit cells.
  std::vector<Rect> frontier = {{0, nx - 1, 0, ny - 1}};
  while (!frontier.empty()) {
    std::vector<Rect> next;
    for (const Rect& r : frontier) {
      rects.push_back(r);
      const std::size_t w = r.x_hi - r.x_lo + 1;
      const std::size_t h = r.y_hi - r.y_lo + 1;
      if (w == 1 && h == 1) continue;
      const std::size_t xm = r.x_lo + (w - 1) / 2;  // split points
      const std::size_t ym = r.y_lo + (h - 1) / 2;
      if (w > 1 && h > 1) {
        next.push_back({r.x_lo, xm, r.y_lo, ym});
        next.push_back({xm + 1, r.x_hi, r.y_lo, ym});
        next.push_back({r.x_lo, xm, ym + 1, r.y_hi});
        next.push_back({xm + 1, r.x_hi, ym + 1, r.y_hi});
      } else if (w > 1) {
        next.push_back({r.x_lo, xm, r.y_lo, r.y_hi});
        next.push_back({xm + 1, r.x_hi, r.y_lo, r.y_hi});
      } else {
        next.push_back({r.x_lo, r.x_hi, r.y_lo, ym});
        next.push_back({r.x_lo, r.x_hi, ym + 1, r.y_hi});
      }
    }
    frontier = std::move(next);
  }
  return MakeRectangleSetOp(std::move(rects), nx, ny);
}

LinOpPtr GridCellsSelect(std::size_t nx, std::size_t ny, std::size_t gx,
                         std::size_t gy) {
  EK_CHECK_GE(gx, 1u);
  EK_CHECK_GE(gy, 1u);
  gx = std::min(gx, nx);
  gy = std::min(gy, ny);
  std::vector<Rectangle> rects;
  rects.reserve(gx * gy);
  for (std::size_t a = 0; a < gx; ++a) {
    const std::size_t x_lo = a * nx / gx;
    const std::size_t x_hi = (a + 1) * nx / gx - 1;
    for (std::size_t b = 0; b < gy; ++b) {
      const std::size_t y_lo = b * ny / gy;
      const std::size_t y_hi = (b + 1) * ny / gy - 1;
      rects.push_back({x_lo, x_hi, y_lo, y_hi});
    }
  }
  return MakeRectangleSetOp(std::move(rects), nx, ny);
}

std::size_t UniformGridSide(double n_records, double eps, std::size_t n_side,
                            double c) {
  double m = std::sqrt(std::max(n_records, 0.0) * eps / c);
  std::size_t side = static_cast<std::size_t>(std::llround(m));
  side = std::max<std::size_t>(side, 1);
  side = std::min(side, n_side);
  return side;
}

LinOpPtr StripeKronSelect(const std::vector<std::size_t>& dims,
                          std::size_t stripe_dim) {
  EK_CHECK_LT(stripe_dim, dims.size());
  std::vector<LinOpPtr> factors;
  factors.reserve(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    factors.push_back(d == stripe_dim ? HbSelect(dims[d])
                                      : MakeIdentityOp(dims[d]));
  }
  return MakeKronecker(std::move(factors));
}

}  // namespace ektelo
