// Hierarchical query strategies (H2, HB) and the specialized tree-based
// least-squares inference of Hay et al. (PVLDB 2010), which Fig. 5 compares
// against the general-purpose iterative inference.
//
// A hierarchy over n cells is a complete b-ary tree of interval-sum
// queries: the root covers [0, n), each node's children split its interval
// into b parts, down to unit intervals.  The strategy matrix is encoded
// implicitly as Product(Sparse, Prefix) — two nonzeros per node — giving
// O(#nodes) storage and O(n + #nodes) mat-vecs.
#ifndef EKTELO_OPS_HIERARCHY_H_
#define EKTELO_OPS_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "matrix/linop.h"

namespace ektelo {

/// One node of the hierarchy: the half-open interval [lo, hi).
struct HierNode {
  std::size_t lo;
  std::size_t hi;
};

/// Tree structure: levels[0] is the root; children of levels[l][i] are
/// contiguous in levels[l+1] (child_start[l][i] .. child_start[l][i+1]).
struct Hierarchy {
  std::size_t n = 0;
  std::size_t branch = 2;
  std::vector<std::vector<HierNode>> levels;
  /// children index ranges per level (into the next level).
  std::vector<std::vector<std::size_t>> child_start;

  std::size_t TotalNodes() const;
  /// Row index of node (level, i) in the stacked strategy matrix, which
  /// lists levels top-down, nodes left-to-right.
  std::size_t RowOf(std::size_t level, std::size_t i) const;
};

/// Build the complete b-ary hierarchy over n cells (intervals of uneven
/// size when b does not divide evenly; recursion stops at singletons).
Hierarchy BuildHierarchy(std::size_t n, std::size_t branch);

/// The strategy matrix of a hierarchy (all nodes, all levels).
LinOpPtr HierarchyOp(const Hierarchy& h);

/// HB's optimized branching factor: argmin_b (b - 1) * height(b)^3, the
/// variance proxy from Qardaji et al. (PVLDB 2013).
std::size_t HbBranchingFactor(std::size_t n);

/// Hay et al.'s two-pass (bottom-up weighted average, top-down consistency)
/// least-squares solver, exact for complete hierarchies with uniform noise.
/// y is the noisy answer vector in HierarchyOp row order; returns the leaf
/// estimate (length n).
Vec TreeBasedLeastSquares(const Hierarchy& h, const Vec& y);

}  // namespace ektelo

#endif  // EKTELO_OPS_HIERARCHY_H_
