#include "ops/partition_select.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "matrix/implicit_ops.h"
#include "util/check.h"

namespace ektelo {

Partition GridPartition2D(std::size_t nx, std::size_t ny, std::size_t gx,
                          std::size_t gy) {
  gx = std::min(std::max<std::size_t>(gx, 1), nx);
  gy = std::min(std::max<std::size_t>(gy, 1), ny);
  std::vector<uint32_t> group(nx * ny);
  for (std::size_t i = 0; i < nx; ++i) {
    const std::size_t a = i * gx / nx;
    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t b = j * gy / ny;
      group[i * ny + j] = static_cast<uint32_t>(a * gy + b);
    }
  }
  return Partition(std::move(group), gx * gy);
}

Partition StripePartition(const std::vector<std::size_t>& dims,
                          std::size_t stripe_dim) {
  EK_CHECK_LT(stripe_dim, dims.size());
  std::size_t n = 1;
  for (std::size_t d : dims) n *= d;
  std::size_t rest = n / dims[stripe_dim];
  std::vector<uint32_t> group(n);
  // Decompose each cell index into per-dim codes; the group index is the
  // flattened code over the non-stripe dims (in dim order).
  std::vector<std::size_t> codes(dims.size());
  for (std::size_t cell = 0; cell < n; ++cell) {
    std::size_t rem = cell;
    for (std::size_t d = dims.size(); d-- > 0;) {
      codes[d] = rem % dims[d];
      rem /= dims[d];
    }
    std::size_t g = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (d == stripe_dim) continue;
      g = g * dims[d] + codes[d];
    }
    group[cell] = static_cast<uint32_t>(g);
  }
  return Partition(std::move(group), rest);
}

Partition MarginalPartition(const std::vector<std::size_t>& dims,
                            const std::vector<std::size_t>& keep_dims) {
  EK_CHECK(std::is_sorted(keep_dims.begin(), keep_dims.end()));
  std::size_t n = 1;
  for (std::size_t d : dims) n *= d;
  std::size_t groups = 1;
  for (std::size_t d : keep_dims) groups *= dims[d];
  std::vector<uint32_t> group(n);
  std::vector<std::size_t> codes(dims.size());
  for (std::size_t cell = 0; cell < n; ++cell) {
    std::size_t rem = cell;
    for (std::size_t d = dims.size(); d-- > 0;) {
      codes[d] = rem % dims[d];
      rem /= dims[d];
    }
    std::size_t g = 0;
    for (std::size_t d : keep_dims) g = g * dims[d] + codes[d];
    group[cell] = static_cast<uint32_t>(g);
  }
  return Partition(std::move(group), groups);
}

Partition AhpClusterPartition(const Vec& noisy, double threshold,
                              double gap) {
  const std::size_t n = noisy.size();
  EK_CHECK_GT(n, 0u);
  Vec v = noisy;
  for (double& x : v)
    if (x < threshold) x = 0.0;

  // Sort cells by (thresholded) noisy value; grow a group while the value
  // stays within `gap` of the group's anchor.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });

  std::vector<uint32_t> group(n, 0);
  uint32_t g = 0;
  double anchor = v[order[0]];
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t cell = order[k];
    if (v[cell] - anchor > gap) {
      ++g;
      anchor = v[cell];
    }
    group[cell] = g;
  }
  return Partition(std::move(group), g + 1);
}

Partition DawaIntervalPartition(const Vec& noisy, double penalty,
                                double noise_scale) {
  return DawaIntervalPartition(noisy, penalty,
                               Vec(noisy.size(), noise_scale));
}

Partition DawaIntervalPartition(const Vec& noisy, double penalty,
                                const Vec& noise_scales) {
  const std::size_t n = noisy.size();
  EK_CHECK_GT(n, 0u);
  EK_CHECK_EQ(noise_scales.size(), n);
  // Prefix sums for interval means and per-cell noise corrections.
  Vec prefix(n + 1, 0.0), bsum(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + noisy[i];
    bsum[i + 1] = bsum[i] + noise_scales[i];
  }

  auto interval_cost = [&](std::size_t lo, std::size_t hi) {
    // Bias-corrected sum_{i in [lo, hi)} |x_i - mean| + penalty: a truly
    // uniform bucket still shows ~E|Lap| of apparent deviation per cell.
    const std::size_t len = hi - lo;
    const double mean = (prefix[hi] - prefix[lo]) / double(len);
    double dev = 0.0;
    for (std::size_t i = lo; i < hi; ++i) dev += std::abs(noisy[i] - mean);
    if (len > 1) dev = std::max(0.0, dev - (bsum[hi] - bsum[lo]));
    return dev + penalty;
  };

  // DP over aligned dyadic intervals: interval [i - L, i) is a candidate
  // when L = 2^j and i is a multiple of L.  This is DAWA's dyadic
  // restriction (DESIGN.md); unit intervals keep every cut reachable.
  std::vector<double> best(n + 1, 1e300);
  std::vector<std::size_t> take(n + 1, 0);  // chosen interval length at i
  best[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t len = 1; len <= i; len <<= 1) {
      if (i % len != 0) continue;
      const double cand = best[i - len] + interval_cost(i - len, i);
      if (cand < best[i]) {
        best[i] = cand;
        take[i] = len;
      }
    }
  }
  // Backtrack the cut points.
  std::vector<std::size_t> cuts;
  std::size_t pos = n;
  while (pos > 0) {
    cuts.push_back(pos - take[pos]);
    pos -= take[pos];
  }
  std::reverse(cuts.begin(), cuts.end());
  return Partition::FromIntervals(cuts, n);
}

StatusOr<Partition> AhpPartitionSelect(ProtectedKernel* kernel, SourceId src,
                                       double eps, const AhpOptions& opts) {
  const std::size_t n = kernel->VectorSize(src);
  EK_ASSIGN_OR_RETURN(Vec noisy,
                      kernel->VectorLaplace(src, *MakeIdentityOp(n), eps));
  const double noise_scale = 1.0 / eps;
  const double threshold =
      opts.eta * std::log(std::max<double>(double(n), 2.0)) / eps;
  return AhpClusterPartition(noisy, threshold,
                             opts.gap_factor * noise_scale);
}

StatusOr<Partition> DawaPartitionSelect(ProtectedKernel* kernel, SourceId src,
                                        double eps,
                                        const DawaOptions& opts) {
  const std::size_t n = kernel->VectorSize(src);
  EK_ASSIGN_OR_RETURN(Vec noisy,
                      kernel->VectorLaplace(src, *MakeIdentityOp(n), eps));
  if (!opts.cell_volumes.empty()) {
    EK_CHECK_EQ(opts.cell_volumes.size(), n);
    Vec density(n), scales(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double vol = std::max(opts.cell_volumes[i], 1.0);
      density[i] = noisy[i] / vol;
      scales[i] = (1.0 / eps) / vol;
    }
    return DawaIntervalPartition(density, opts.penalty_factor / eps,
                                 scales);
  }
  return DawaIntervalPartition(noisy, opts.penalty_factor / eps,
                               /*noise_scale=*/1.0 / eps);
}

StatusOr<Partition> AhpPartitionSelect(const ProtectedVector& x, double eps,
                                       BudgetScope& scope,
                                       const AhpOptions& opts) {
  return ScopeMetered(scope, eps, [&] {
    return AhpPartitionSelect(x.kernel(), x.id(), eps, opts);
  });
}

StatusOr<Partition> DawaPartitionSelect(const ProtectedVector& x, double eps,
                                        BudgetScope& scope,
                                        const DawaOptions& opts) {
  return ScopeMetered(scope, eps, [&] {
    return DawaPartitionSelect(x.kernel(), x.id(), eps, opts);
  });
}

}  // namespace ektelo
