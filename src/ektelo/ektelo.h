// Umbrella header: the public API of ektelo-cpp.
//
// The typed client API in three moves — protected handles, budget
// scopes, registered plans:
//
//   #include "ektelo/ektelo.h"
//   using namespace ektelo;
//
//   Rng rng(7);
//   Table t = MakeCensusLike(&rng);
//   ProtectedKernel kernel(t, /*eps_total=*/1.0, /*seed=*/42);
//
//   // 1. Typed handles: table ops on tables, vector ops on vectors —
//   //    misuse is a compile error, not a runtime kernel refusal.
//   ProtectedTable root = ProtectedTable::Root(&kernel);
//   StatusOr<ProtectedVector> x = root.Vectorize();
//
//   // 2. Budget scopes: explicit, checkable eps allocation.  Nested
//   //    splits compose sequentially; SplitParallel mirrors parallel
//   //    composition across partition children.
//   BudgetScope scope(kernel.BudgetRemaining());
//
//   // 3. Plans by name from the registry (the whole Fig. 2 catalog).
//   const Plan* plan = PlanRegistry::Global().Find("HB");
//   PlanInput input;
//   input.dims = {t.schema().TotalDomainSize()};
//   StatusOr<Vec> xhat = plan->Execute(*x, scope, input);
//
// Custom algorithms compose the same pieces: pipelines from stages
// (plans/pipeline.h) for select-measure-infer shapes, or a Plan subclass
// over the typed handles for iterative/parallel control flow.  The old
// Run*Plan free functions still compile but are deprecated shims over the
// registry.
//
// See examples/ for complete programs.
#ifndef EKTELO_EKTELO_H_
#define EKTELO_EKTELO_H_

#include "classify/evaluation.h"
#include "classify/naive_bayes.h"
#include "classify/nb_plans.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/schema.h"
#include "data/table.h"
#include "kernel/budget.h"
#include "kernel/handles.h"
#include "kernel/kernel.h"
#include "linalg/block.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/haar.h"
#include "linalg/vec.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/cg.h"
#include "matrix/lsmr.h"
#include "matrix/nnls.h"
#include "matrix/partition.h"
#include "ops/hdmm.h"
#include "ops/hierarchy.h"
#include "ops/inference.h"
#include "ops/measurement.h"
#include "ops/partition_select.h"
#include "ops/privbayes.h"
#include "ops/selection.h"
#include "plans/case_studies.h"
#include "plans/grid_plans.h"
#include "plans/pipeline.h"
#include "plans/plan.h"
#include "plans/plans.h"
#include "plans/reduction_wrapper.h"
#include "plans/registry.h"
#include "plans/striped_plans.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"
#include "workload/reduction.h"
#include "workload/workloads.h"

#endif  // EKTELO_EKTELO_H_
