// Umbrella header: the public API of ektelo-cpp.
//
// A minimal client program:
//
//   #include "ektelo/ektelo.h"
//   using namespace ektelo;
//
//   Rng rng(7);
//   Table t = MakeCensusLike(&rng);
//   ProtectedKernel kernel(t, /*eps_total=*/1.0, /*seed=*/42);
//   auto x = kernel.TVectorize(kernel.root());
//   PlanContext ctx{.kernel = &kernel, .x = *x,
//                   .dims = {t.schema().TotalDomainSize()},
//                   .eps = 1.0, .rng = &rng};
//   StatusOr<Vec> xhat = RunIdentityPlan(ctx);
//
// See examples/ for complete programs.
#ifndef EKTELO_EKTELO_H_
#define EKTELO_EKTELO_H_

#include "classify/evaluation.h"
#include "classify/naive_bayes.h"
#include "classify/nb_plans.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/schema.h"
#include "data/table.h"
#include "kernel/kernel.h"
#include "linalg/block.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/haar.h"
#include "linalg/vec.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/cg.h"
#include "matrix/lsmr.h"
#include "matrix/nnls.h"
#include "matrix/partition.h"
#include "ops/hdmm.h"
#include "ops/hierarchy.h"
#include "ops/inference.h"
#include "ops/measurement.h"
#include "ops/partition_select.h"
#include "ops/privbayes.h"
#include "ops/selection.h"
#include "plans/case_studies.h"
#include "plans/grid_plans.h"
#include "plans/plan.h"
#include "plans/plans.h"
#include "plans/reduction_wrapper.h"
#include "plans/striped_plans.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"
#include "workload/reduction.h"
#include "workload/workloads.h"

#endif  // EKTELO_EKTELO_H_
