// Workload-based partition selection (paper Sec. 8): losslessly reduce the
// data-vector representation to exactly the resolution the workload can
// distinguish.
//
// Cells i, j of x are merged when the workload treats them identically,
// i.e. columns w_i = w_j of W.  Algorithm 4 finds the column groups with a
// single random projection h = W^T v — identical columns give identical h
// values, distinct columns collide with probability ~1e-16 per pair —
// so the reduction runs on implicit workloads without materialization.
//
// Properties (proved in the paper, verified in tests):
//   * W x = W' x' with W' = W P+ and x' = P x  (Prop. 8.3, lossless);
//   * least-squares error never increases after reduction (Thm. 8.4).
#ifndef EKTELO_WORKLOAD_REDUCTION_H_
#define EKTELO_WORKLOAD_REDUCTION_H_

#include "matrix/linop.h"
#include "matrix/partition.h"
#include "util/rng.h"

namespace ektelo {

/// Algorithm 4: partition grouping identical workload columns.  `repeats`
/// independent projections drive the per-pair failure probability to
/// ~1e-16k (the paper's optional k-repetition).
Partition WorkloadBasedPartition(const LinOp& workload, Rng* rng,
                                 std::size_t repeats = 2);

/// The reduced workload W' = W P+ on the reduced domain.
LinOpPtr ReduceWorkload(LinOpPtr workload, const Partition& p);

/// Expand a reduced-domain estimate back to the original domain via
/// x = P+ x' (uniform expansion within groups).
Vec ExpandEstimate(const Partition& p, const Vec& reduced);

}  // namespace ektelo

#endif  // EKTELO_WORKLOAD_REDUCTION_H_
