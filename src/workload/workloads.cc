#include "workload/workloads.h"

#include <algorithm>
#include <functional>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "util/check.h"

namespace ektelo {

LinOpPtr RangeQueryOp(const std::vector<RangeQuery>& queries, std::size_t n) {
  EK_CHECK(!queries.empty());
  std::vector<Interval> ranges;
  ranges.reserve(queries.size());
  for (const auto& q : queries) {
    EK_CHECK_LE(q.lo, q.hi);
    EK_CHECK_LT(q.hi, n);
    ranges.push_back({q.lo, q.hi});
  }
  return MakeRangeSetOp(std::move(ranges), n);
}

std::vector<RangeQuery> RandomRanges(std::size_t m, std::size_t n,
                                     std::size_t max_width, Rng* rng) {
  std::vector<RangeQuery> qs;
  qs.reserve(m);
  const std::size_t cap = (max_width == 0 || max_width > n) ? n : max_width;
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t w = static_cast<std::size_t>(rng->UniformInt(1, cap));
    std::size_t lo = static_cast<std::size_t>(
        rng->UniformInt(0, static_cast<int64_t>(n - w)));
    qs.push_back({lo, lo + w - 1});
  }
  return qs;
}

LinOpPtr RandomRangeWorkload(std::size_t m, std::size_t n,
                             std::size_t max_width, Rng* rng) {
  return RangeQueryOp(RandomRanges(m, n, max_width, rng), n);
}

LinOpPtr AllRangeWorkload(std::size_t n) {
  std::vector<RangeQuery> qs;
  qs.reserve(n * (n + 1) / 2);
  for (std::size_t lo = 0; lo < n; ++lo)
    for (std::size_t hi = lo; hi < n; ++hi) qs.push_back({lo, hi});
  return RangeQueryOp(qs, n);
}

LinOpPtr PrefixWorkload(std::size_t n) { return MakePrefixOp(n); }
LinOpPtr IdentityWorkload(std::size_t n) { return MakeIdentityOp(n); }
LinOpPtr TotalWorkload(std::size_t n) { return MakeTotalOp(n); }

LinOpPtr RandomRectangleWorkload(std::size_t m, std::size_t nx,
                                 std::size_t ny, std::size_t max_width,
                                 Rng* rng) {
  auto ranges_x = RandomRanges(m, nx, max_width, rng);
  auto ranges_y = RandomRanges(m, ny, max_width, rng);
  std::vector<Rectangle> rects;
  rects.reserve(m);
  for (std::size_t q = 0; q < m; ++q)
    rects.push_back({ranges_x[q].lo, ranges_x[q].hi, ranges_y[q].lo,
                     ranges_y[q].hi});
  return MakeRectangleSetOp(std::move(rects), nx, ny);
}

LinOpPtr MarginalWorkload(const Schema& schema,
                          const std::vector<std::string>& keep) {
  std::vector<LinOpPtr> factors;
  factors.reserve(schema.num_attrs());
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    const bool kept = std::find(keep.begin(), keep.end(),
                                schema.attr(a).name) != keep.end();
    const std::size_t d = schema.attr(a).domain_size;
    factors.push_back(kept ? MakeIdentityOp(d) : MakeTotalOp(d));
  }
  return MakeKronecker(std::move(factors));
}

LinOpPtr AllKWayMarginals(const Schema& schema, std::size_t k) {
  EK_CHECK_GE(schema.num_attrs(), k);
  std::vector<LinOpPtr> parts;
  // Enumerate attribute subsets of size k via bitmask (attr counts are
  // small in every workload we target).
  const std::size_t na = schema.num_attrs();
  std::vector<std::size_t> idx(k);
  // Simple recursive combination enumeration.
  std::vector<std::string> names;
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t start,
                                                          std::size_t depth) {
    if (depth == k) {
      parts.push_back(MarginalWorkload(schema, names));
      return;
    }
    for (std::size_t a = start; a + (k - depth) <= na; ++a) {
      names.push_back(schema.attr(a).name);
      rec(a + 1, depth + 1);
      names.pop_back();
    }
  };
  rec(0, 0);
  return MakeVStack(std::move(parts));
}

LinOpPtr CensusPrefixIncomeWorkload(const Schema& schema) {
  EK_CHECK_GE(schema.num_attrs(), 1u);
  std::vector<LinOpPtr> factors;
  factors.push_back(MakePrefixOp(schema.attr(0).domain_size));
  for (std::size_t a = 1; a < schema.num_attrs(); ++a) {
    const std::size_t d = schema.attr(a).domain_size;
    // "<any>" (Total) plus each specific value (Identity).
    factors.push_back(MakeVStack({MakeTotalOp(d), MakeIdentityOp(d)}));
  }
  return MakeKronecker(std::move(factors));
}

}  // namespace ektelo
