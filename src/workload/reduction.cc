#include "workload/reduction.h"

#include <cstring>
#include <map>
#include <vector>

#include "matrix/combinators.h"
#include "matrix/rewrite.h"
#include "util/check.h"

namespace ektelo {

Partition WorkloadBasedPartition(const LinOp& workload, Rng* rng,
                                 std::size_t repeats) {
  EK_CHECK_GE(repeats, 1u);
  const std::size_t m = workload.rows();
  const std::size_t n = workload.cols();

  // h_k = W^T v_k for `repeats` random v.  Group cells by the exact bit
  // patterns of their (h_1[j], ..., h_r[j]) signatures: identical columns
  // produce bitwise-identical dot products because the summation order in
  // ApplyT is column-independent... strictly, exact equality holds when
  // the arithmetic per column is identical, which is true for every LinOp
  // here since columns are processed independently in ApplyT accumulation.
  std::vector<Vec> sigs(repeats);
  for (std::size_t k = 0; k < repeats; ++k) {
    Vec v(m);
    for (auto& x : v) x = rng->Uniform();
    sigs[k] = workload.ApplyT(v);
  }

  std::map<std::vector<uint64_t>, uint32_t> group_of_sig;
  std::vector<uint32_t> group_of(n);
  std::vector<uint64_t> key(repeats);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < repeats; ++k) {
      uint64_t bits;
      std::memcpy(&bits, &sigs[k][j], sizeof(bits));
      key[k] = bits;
    }
    auto [it, inserted] = group_of_sig.emplace(
        key, static_cast<uint32_t>(group_of_sig.size()));
    group_of[j] = it->second;
  }
  return Partition(std::move(group_of), group_of_sig.size());
}

LinOpPtr ReduceWorkload(LinOpPtr workload, const Partition& p) {
  EK_CHECK_EQ(workload->cols(), p.num_cells());
  // The rewrite pass fuses W (when it is a CSR leaf) with the sparse
  // pseudo-inverse and folds the per-group scaling, so reduced workloads
  // enter plans in canonical form.
  return MaybeRewrite(
      MakeProduct(std::move(workload), p.PseudoInverseOp()));
}

Vec ExpandEstimate(const Partition& p, const Vec& reduced) {
  EK_CHECK_EQ(reduced.size(), p.num_groups());
  auto sizes = p.GroupSizes();
  Vec x(p.num_cells());
  for (std::size_t j = 0; j < p.num_cells(); ++j) {
    const uint32_t g = p.group_of(j);
    x[j] = reduced[g] / static_cast<double>(sizes[g]);
  }
  return x;
}

}  // namespace ektelo
