// Workload constructors: the target query sets of the paper's evaluation.
//
// All workloads are LinOps, so large workloads (e.g. the Census
// Prefix(Income) workload with ~1.8M queries over a 1.4M-cell domain) stay
// implicit and are never materialized.
#ifndef EKTELO_WORKLOAD_WORKLOADS_H_
#define EKTELO_WORKLOAD_WORKLOADS_H_

#include <cstddef>
#include <vector>

#include "data/schema.h"
#include "matrix/linop.h"
#include "matrix/range_ops.h"
#include "util/rng.h"

namespace ektelo {

/// A 1D range query [lo, hi] (inclusive, 0-based cell indices).
struct RangeQuery {
  std::size_t lo;
  std::size_t hi;
};

/// Range queries encoded as Product(Sparse, Prefix) (Example 7.4):
/// each row is prefix(hi) - prefix(lo-1).  Mat-vec cost O(n + m).
LinOpPtr RangeQueryOp(const std::vector<RangeQuery>& queries, std::size_t n);

/// m random range queries.  max_width = 0 means unrestricted; Table 6 uses
/// "small ranges" (width capped well below n).
std::vector<RangeQuery> RandomRanges(std::size_t m, std::size_t n,
                                     std::size_t max_width, Rng* rng);
LinOpPtr RandomRangeWorkload(std::size_t m, std::size_t n,
                             std::size_t max_width, Rng* rng);

/// All n(n+1)/2 ranges over a (small) 1D domain.
LinOpPtr AllRangeWorkload(std::size_t n);

/// Prefix workload (empirical CDF), Identity, Total.
LinOpPtr PrefixWorkload(std::size_t n);
LinOpPtr IdentityWorkload(std::size_t n);
LinOpPtr TotalWorkload(std::size_t n);

/// 2D random rectangular ranges over an nx x ny grid, encoded as a
/// Kronecker-structured Product(Sparse, Prefix ⊗ Prefix).
LinOpPtr RandomRectangleWorkload(std::size_t m, std::size_t nx,
                                 std::size_t ny, std::size_t max_width,
                                 Rng* rng);

/// The marginal over the given attribute subset (Example 7.5): the
/// Kronecker product with Identity on attrs in `keep` and Total elsewhere.
LinOpPtr MarginalWorkload(const Schema& schema,
                          const std::vector<std::string>& keep);

/// Union of all k-way marginals (Table 5 uses k = 2).
LinOpPtr AllKWayMarginals(const Schema& schema, std::size_t k);

/// Census Prefix(Income) workload (Sec. 9.2): Prefix on the first (income)
/// attribute crossed with, per other attribute, both Total ("<any>") and
/// Identity (each specific value).
LinOpPtr CensusPrefixIncomeWorkload(const Schema& schema);

}  // namespace ektelo

#endif  // EKTELO_WORKLOAD_WORKLOADS_H_
