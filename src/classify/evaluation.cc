#include "classify/evaluation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace ektelo {

std::vector<std::vector<std::size_t>> KFoldIndices(std::size_t rows,
                                                   std::size_t folds,
                                                   Rng* rng) {
  EK_CHECK_GE(folds, 2u);
  std::vector<std::size_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = rows; i > 1; --i)
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng->UniformInt(0, i - 1))]);
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < rows; ++i) out[i % folds].push_back(order[i]);
  return out;
}

Table Subset(const Table& t, const std::vector<std::size_t>& rows) {
  Table out(t.schema());
  std::vector<uint32_t> row(t.schema().num_attrs());
  for (std::size_t r : rows) {
    for (std::size_t a = 0; a < row.size(); ++a) row[a] = t.At(r, a);
    out.AppendRow(row);
  }
  return out;
}

double NbEvalResult::Percentile(double p) const {
  EK_CHECK(!fold_aucs.empty());
  std::vector<double> sorted = fold_aucs;
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * double(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - double(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

NbEvalResult EvaluateNbClassifier(std::optional<NbPlanKind> plan,
                                  const Table& data, double eps,
                                  std::size_t folds, std::size_t reps,
                                  Rng* rng) {
  NbEvalResult result;
  const std::size_t na = data.schema().num_attrs();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto fold_idx = KFoldIndices(data.NumRows(), folds, rng);
    for (std::size_t f = 0; f < folds; ++f) {
      std::vector<std::size_t> train_rows;
      for (std::size_t g = 0; g < folds; ++g)
        if (g != f)
          train_rows.insert(train_rows.end(), fold_idx[g].begin(),
                            fold_idx[g].end());
      Table train = Subset(data, train_rows);

      NbHistograms hists;
      if (plan.has_value()) {
        auto est = EstimateNbHistograms(*plan, train, eps,
                                        /*kernel_seed=*/rng->raw()(), rng);
        EK_CHECK(est.ok());
        hists = std::move(est).value();
      } else {
        hists = ExactNbHistograms(train);
      }
      NaiveBayesModel model = NaiveBayesModel::Fit(hists);

      std::vector<double> scores;
      std::vector<int> labels;
      std::vector<uint32_t> preds(na - 1);
      for (std::size_t r : fold_idx[f]) {
        for (std::size_t a = 1; a < na; ++a) preds[a - 1] = data.At(r, a);
        scores.push_back(model.Score(preds));
        labels.push_back(static_cast<int>(data.At(r, 0)));
      }
      result.fold_aucs.push_back(AreaUnderRoc(scores, labels));
    }
  }
  return result;
}

}  // namespace ektelo
