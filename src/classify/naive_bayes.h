// Multinomial Naive-Bayes classifier fit from (possibly noisy) histograms
// (paper Sec. 9.3): predicting a binary label Y from discrete predictors
// X_1..X_k requires 2k+1 1D histograms — Y's histogram plus each X_i's
// histogram conditioned on each label value, i.e. the (Y, X_i) joint
// marginals.  The DP plans estimate these histograms; this class turns
// them into a classifier and scores rows by log-odds.
#ifndef EKTELO_CLASSIFY_NAIVE_BAYES_H_
#define EKTELO_CLASSIFY_NAIVE_BAYES_H_

#include <cstdint>
#include <vector>

#include "linalg/vec.h"

namespace ektelo {

/// The sufficient statistics: label_hist has one count per label value;
/// joint_hists[i] is the (label x X_i) joint marginal, label-major
/// (index = y * domain_i + x).
struct NbHistograms {
  Vec label_hist;
  std::vector<Vec> joint_hists;
  std::vector<std::size_t> predictor_domains;
};

class NaiveBayesModel {
 public:
  /// Fit with Laplace smoothing; negative noisy counts are clamped to 0.
  static NaiveBayesModel Fit(const NbHistograms& h, double smoothing = 1.0);

  /// Log-odds log P(y=1 | x) - log P(y=0 | x); higher = more likely 1.
  double Score(const std::vector<uint32_t>& predictors) const;

 private:
  double log_prior_odds_ = 0.0;
  /// log P(x_i = v | y=1) - log P(x_i = v | y=0), per predictor & value.
  std::vector<Vec> log_likelihood_odds_;
};

/// Area under the ROC curve of `scores` against binary `labels`
/// (probability a random positive outranks a random negative; ties 0.5).
double AreaUnderRoc(const std::vector<double>& scores,
                    const std::vector<int>& labels);

}  // namespace ektelo

#endif  // EKTELO_CLASSIFY_NAIVE_BAYES_H_
