// Cross-validated evaluation harness for the Naive-Bayes case study
// (Fig. 3): k-fold splits, per-fold private training, AUC on held-out
// rows, and percentile summaries over repetitions.
#ifndef EKTELO_CLASSIFY_EVALUATION_H_
#define EKTELO_CLASSIFY_EVALUATION_H_

#include <optional>
#include <vector>

#include "classify/nb_plans.h"

namespace ektelo {

/// Row-index folds (shuffled, near-equal sizes).
std::vector<std::vector<std::size_t>> KFoldIndices(std::size_t rows,
                                                   std::size_t folds,
                                                   Rng* rng);

/// Build a table from a subset of rows.
Table Subset(const Table& t, const std::vector<std::size_t>& rows);

struct NbEvalResult {
  std::vector<double> fold_aucs;  // one per (repetition x fold)
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
};

/// Run `reps` rounds of `folds`-fold cross validation.  `plan` empty means
/// the non-private Unperturbed classifier; the Majority baseline is the
/// constant 0.5 AUC and needs no harness.
NbEvalResult EvaluateNbClassifier(std::optional<NbPlanKind> plan,
                                  const Table& data, double eps,
                                  std::size_t folds, std::size_t reps,
                                  Rng* rng);

}  // namespace ektelo

#endif  // EKTELO_CLASSIFY_EVALUATION_H_
