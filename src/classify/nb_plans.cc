#include "classify/nb_plans.h"

#include <algorithm>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "ops/inference.h"
#include "ops/measurement.h"
#include "ops/partition_select.h"
#include "workload/workloads.h"
#include "util/check.h"

namespace ektelo {

std::string NbPlanName(NbPlanKind kind) {
  switch (kind) {
    case NbPlanKind::kIdentity:
      return "Identity";
    case NbPlanKind::kWorkload:
      return "Workload";
    case NbPlanKind::kWorkloadLs:
      return "WorkloadLS";
    case NbPlanKind::kSelectLs:
      return "SelectLS";
  }
  return "?";
}

namespace {

struct NbSetup {
  Schema schema;
  std::vector<std::size_t> dims;
  std::vector<std::size_t> predictor_domains;
  /// Histogram ops on the full domain: [label marginal, joints...].
  std::vector<LinOpPtr> hist_ops;
  /// Dimension index sets for each histogram.
  std::vector<std::vector<std::size_t>> hist_dims;
};

NbSetup MakeSetup(const Schema& schema) {
  NbSetup s;
  s.schema = schema;
  EK_CHECK_GE(schema.num_attrs(), 2u);
  EK_CHECK_EQ(schema.attr(0).domain_size, 2u);  // binary label first
  for (std::size_t a = 0; a < schema.num_attrs(); ++a)
    s.dims.push_back(schema.attr(a).domain_size);
  for (std::size_t a = 1; a < schema.num_attrs(); ++a)
    s.predictor_domains.push_back(schema.attr(a).domain_size);

  s.hist_ops.push_back(MarginalWorkload(schema, {schema.attr(0).name}));
  s.hist_dims.push_back({0});
  for (std::size_t a = 1; a < schema.num_attrs(); ++a) {
    s.hist_ops.push_back(MarginalWorkload(
        schema, {schema.attr(0).name, schema.attr(a).name}));
    s.hist_dims.push_back({0, a});
  }
  return s;
}

NbHistograms HistogramsFromEstimate(const NbSetup& s, const Vec& xhat) {
  NbHistograms h;
  h.predictor_domains = s.predictor_domains;
  h.label_hist = s.hist_ops[0]->Apply(xhat);
  for (std::size_t i = 1; i < s.hist_ops.size(); ++i)
    h.joint_hists.push_back(s.hist_ops[i]->Apply(xhat));
  return h;
}

}  // namespace

NbHistograms ExactNbHistograms(const Table& train) {
  NbSetup s = MakeSetup(train.schema());
  return HistogramsFromEstimate(s, train.Vectorize());
}

StatusOr<NbHistograms> EstimateNbHistograms(NbPlanKind kind,
                                            const Table& train, double eps,
                                            uint64_t kernel_seed, Rng* rng,
                                            const NbPlanOptions& opts) {
  NbSetup s = MakeSetup(train.schema());
  ProtectedKernel kernel(train, eps, kernel_seed);
  EK_ASSIGN_OR_RETURN(SourceId x, kernel.TVectorize(kernel.root()));
  const std::size_t n = kernel.VectorSize(x);

  switch (kind) {
    case NbPlanKind::kIdentity: {
      EK_ASSIGN_OR_RETURN(Vec xhat,
                          kernel.VectorLaplace(x, *MakeIdentityOp(n), eps));
      return HistogramsFromEstimate(s, xhat);
    }
    case NbPlanKind::kWorkload: {
      // Measure the histogram workload directly; read answers slice-wise.
      LinOpPtr w = MakeVStack(s.hist_ops);
      const double sens = w->SensitivityL1();
      EK_ASSIGN_OR_RETURN(Vec y, kernel.VectorLaplace(x, *w, eps));
      (void)sens;
      NbHistograms h;
      h.predictor_domains = s.predictor_domains;
      std::size_t off = 0;
      h.label_hist.assign(y.begin(), y.begin() + 2);
      off += 2;
      for (std::size_t i = 1; i < s.hist_ops.size(); ++i) {
        const std::size_t rows = s.hist_ops[i]->rows();
        h.joint_hists.emplace_back(y.begin() + off, y.begin() + off + rows);
        off += rows;
      }
      return h;
    }
    case NbPlanKind::kWorkloadLs: {
      LinOpPtr w = MakeVStack(s.hist_ops);
      const double sens = w->SensitivityL1();
      EK_ASSIGN_OR_RETURN(Vec y, kernel.VectorLaplace(x, *w, eps));
      MeasurementSet mset;
      mset.Add(w, std::move(y), sens / eps);
      return HistogramsFromEstimate(s, LeastSquaresInference(mset));
    }
    case NbPlanKind::kSelectLs: {
      // Algorithm 8: per histogram, reduce to its marginal vector and pick
      // a subplan by domain size; global LS joins everything.
      const std::size_t k = s.hist_ops.size();
      const double eps_h = eps / double(k);
      MeasurementSet mset;
      for (std::size_t i = 0; i < k; ++i) {
        Partition marg = MarginalPartition(s.dims, s.hist_dims[i]);
        EK_ASSIGN_OR_RETURN(SourceId xm, kernel.VReduceByPartition(x, marg));
        const std::size_t d = kernel.VectorSize(xm);
        // The marginal op equals the reduce matrix on the full domain.
        LinOpPtr marg_op = s.hist_ops[i];
        if (d <= opts.identity_cutoff) {
          EK_ASSIGN_OR_RETURN(
              Vec y, kernel.VectorLaplace(xm, *MakeIdentityOp(d), eps_h));
          mset.Add(marg_op, std::move(y), 1.0 / eps_h);
        } else {
          const double eps1 = eps_h * opts.partition_frac;
          const double eps2 = eps_h - eps1;
          EK_ASSIGN_OR_RETURN(Partition p,
                              DawaPartitionSelect(&kernel, xm, eps1));
          EK_ASSIGN_OR_RETURN(SourceId xr, kernel.VReduceByPartition(xm, p));
          EK_ASSIGN_OR_RETURN(
              Vec y, kernel.VectorLaplace(
                         xr, *MakeIdentityOp(p.num_groups()), eps2));
          mset.Add(MakeProduct(p.ReduceOp(), marg_op), std::move(y),
                   1.0 / eps2);
        }
      }
      return HistogramsFromEstimate(s, LeastSquaresInference(mset));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace ektelo
