#include "classify/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace ektelo {

NaiveBayesModel NaiveBayesModel::Fit(const NbHistograms& h,
                                     double smoothing) {
  EK_CHECK_EQ(h.label_hist.size(), 2u);
  EK_CHECK_EQ(h.joint_hists.size(), h.predictor_domains.size());
  NaiveBayesModel model;
  const double n0 = std::max(h.label_hist[0], 0.0) + smoothing;
  const double n1 = std::max(h.label_hist[1], 0.0) + smoothing;
  model.log_prior_odds_ = std::log(n1) - std::log(n0);

  model.log_likelihood_odds_.reserve(h.joint_hists.size());
  for (std::size_t i = 0; i < h.joint_hists.size(); ++i) {
    const std::size_t d = h.predictor_domains[i];
    EK_CHECK_EQ(h.joint_hists[i].size(), 2 * d);
    // Per-label totals for normalization.
    double t0 = 0.0, t1 = 0.0;
    for (std::size_t v = 0; v < d; ++v) {
      t0 += std::max(h.joint_hists[i][v], 0.0);
      t1 += std::max(h.joint_hists[i][d + v], 0.0);
    }
    Vec odds(d);
    for (std::size_t v = 0; v < d; ++v) {
      const double c0 = std::max(h.joint_hists[i][v], 0.0) + smoothing;
      const double c1 = std::max(h.joint_hists[i][d + v], 0.0) + smoothing;
      const double p0 = c0 / (t0 + smoothing * double(d));
      const double p1 = c1 / (t1 + smoothing * double(d));
      odds[v] = std::log(p1) - std::log(p0);
    }
    model.log_likelihood_odds_.push_back(std::move(odds));
  }
  return model;
}

double NaiveBayesModel::Score(const std::vector<uint32_t>& predictors) const {
  EK_CHECK_EQ(predictors.size(), log_likelihood_odds_.size());
  double s = log_prior_odds_;
  for (std::size_t i = 0; i < predictors.size(); ++i) {
    EK_CHECK_LT(predictors[i], log_likelihood_odds_[i].size());
    s += log_likelihood_odds_[i][predictors[i]];
  }
  return s;
}

double AreaUnderRoc(const std::vector<double>& scores,
                    const std::vector<int>& labels) {
  EK_CHECK_EQ(scores.size(), labels.size());
  // Rank-sum (Mann-Whitney) formulation with midrank tie handling.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::size_t n_pos = 0, n_neg = 0;
  for (int l : labels) (l ? n_pos : n_neg)++;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]])
      ++j;
    const double midrank = 0.5 * (double(i + 1) + double(j + 1));
    for (std::size_t k = i; k <= j; ++k)
      if (labels[order[k]]) rank_sum_pos += midrank;
    i = j + 1;
  }
  const double u =
      rank_sum_pos - double(n_pos) * double(n_pos + 1) / 2.0;
  return u / (double(n_pos) * double(n_neg));
}

}  // namespace ektelo
