// DP plans for estimating the Naive-Bayes sufficient statistics
// (Sec. 9.3).  The training table's first attribute must be the binary
// label; the remaining attributes are the predictors.
//
//   kIdentity    — plan #1: noisy full contingency vector, marginalized.
//   kWorkload    — Cormode's baseline: measure the 2k+1 histogram
//                  workload directly with Vector Laplace.
//   kWorkloadLs  — NEW: Workload + global least squares (consistency).
//   kSelectLs    — NEW (Algorithm 8): per-histogram subplan selection
//                  (Identity below 80 cells, DAWA partition + measure
//                  above), then global least squares.
#ifndef EKTELO_CLASSIFY_NB_PLANS_H_
#define EKTELO_CLASSIFY_NB_PLANS_H_

#include <string>

#include "classify/naive_bayes.h"
#include "data/table.h"
#include "kernel/kernel.h"
#include "util/rng.h"
#include "util/status.h"

namespace ektelo {

enum class NbPlanKind { kIdentity, kWorkload, kWorkloadLs, kSelectLs };

std::string NbPlanName(NbPlanKind kind);

struct NbPlanOptions {
  /// SelectLS: domains strictly larger than this use the DAWA subplan.
  std::size_t identity_cutoff = 80;
  /// SelectLS: eps share of each histogram's budget spent on partition
  /// selection in the DAWA branch.
  double partition_frac = 0.3;
};

/// Estimate the NB histograms with the chosen plan, spending eps on the
/// protected training table.
StatusOr<NbHistograms> EstimateNbHistograms(NbPlanKind kind,
                                            const Table& train, double eps,
                                            uint64_t kernel_seed, Rng* rng,
                                            const NbPlanOptions& opts = {});

/// Exact (non-private) histograms — the "Unperturbed" upper bound.
NbHistograms ExactNbHistograms(const Table& train);

}  // namespace ektelo

#endif  // EKTELO_CLASSIFY_NB_PLANS_H_
