// Compressed-sparse-row matrix.
//
// EKTELO's "sparse" representation (Sec. 7.2): partition matrices, range
// query strategies and measurement unions are naturally sparse; this class
// provides the primitive methods (mat-vec, transposed mat-vec, transpose,
// mat-mat, abs/sqr, sensitivity) on CSR storage.
#ifndef EKTELO_LINALG_CSR_H_
#define EKTELO_LINALG_CSR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/dense.h"
#include "linalg/vec.h"
#include "util/aligned.h"

namespace ektelo {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0), indptr_{0} {}
  CsrMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), indptr_(rows + 1, 0) {}

  /// Build from (row, col, value) triplets; duplicates are summed.
  static CsrMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> triplets);

  /// Build from entries grouped by ascending column with ascending rows
  /// within each column — the natural output order of blocked column-panel
  /// evaluation.  Assembles in O(nnz) by counting sort on the row index
  /// (no comparison sort); entries must be unique (no duplicate summing).
  static CsrMatrix FromColumnStream(std::size_t rows, std::size_t cols,
                                    const std::vector<Triplet>& entries);

  static CsrMatrix Identity(std::size_t n);
  static CsrMatrix FromDense(const DenseMatrix& d, double drop_tol = 0.0);

  /// Adopt pre-built CSR arrays verbatim (no sorting, no duplicate
  /// merging): the persistent-store deserializer uses this to reconstruct
  /// a matrix field-for-field identical to the one serialized.  CHECKs
  /// the structural invariants (indptr spans [0, nnz] monotonically,
  /// indices in range); untrusted inputs must be validated first.
  static CsrMatrix FromRaw(std::size_t rows, std::size_t cols,
                           std::vector<std::size_t> indptr,
                           std::vector<std::size_t> indices,
                           AlignedVec values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& indptr() const { return indptr_; }
  const std::vector<std::size_t>& indices() const { return indices_; }
  // Values are 64-byte-aligned/cacheline-padded (util/aligned.h), like
  // every buffer the vectorized kernel layer touches.
  const AlignedVec& values() const { return values_; }
  AlignedVec& values() { return values_; }

  Vec Matvec(const Vec& x) const;
  void Matvec(const double* x, double* y) const;
  Vec RmatVec(const Vec& x) const;
  void RmatVec(const double* x, double* y) const;

  CsrMatrix Transpose() const;
  CsrMatrix Matmul(const CsrMatrix& other) const;

  /// Exact update (flop) count of Matmul(other): the sum over this
  /// matrix's entries of the matching other-row length.  An upper bound
  /// on the product's nnz; Matmul uses it to reserve, and the rewrite
  /// engine to budget eager sparse fusion.
  std::size_t MatmulUpdateBound(const CsrMatrix& other) const;

  /// Kronecker product (this ⊗ other); nnz = nnz(this) * nnz(other).
  CsrMatrix Kronecker(const CsrMatrix& other) const;

  /// Stack other below this (column counts must match).
  CsrMatrix VStack(const CsrMatrix& other) const;

  /// Multi-way vertical concatenation in one pass: precomputes the total
  /// nnz and row pointers, then copies each part's arrays exactly once —
  /// O(total nnz), versus the quadratic re-copying of folding VStack
  /// pairwise.  All parts must share a column count; `parts` must be
  /// non-empty.
  static CsrMatrix VStackMany(const std::vector<CsrMatrix>& parts);

  /// Multi-way horizontal concatenation [A | B | ...] in one pass: row i
  /// of the result is row i of every part, column-shifted; nnz and row
  /// pointers are precomputed so each entry is written exactly once.  All
  /// parts must share a row count; `parts` must be non-empty.
  static CsrMatrix HStackMany(const std::vector<CsrMatrix>& parts);

  CsrMatrix Abs() const;
  CsrMatrix Sqr() const;

  /// Scale row i by w[i].
  CsrMatrix ScaleRows(const Vec& w) const;

  double MaxColNormL1() const;
  double MaxColNormL2() const;

  DenseMatrix ToDense() const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> indptr_;
  std::vector<std::size_t> indices_;
  AlignedVec values_;
};

}  // namespace ektelo

#endif  // EKTELO_LINALG_CSR_H_
