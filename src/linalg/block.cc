#include "linalg/block.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

namespace {

// Pick a ParallelFor grain so each chunk performs at least ~64K inner
// multiply-adds: below that the enqueue/wakeup overhead beats the win.
// The grain only shapes the schedule — shards own disjoint outputs, so
// results are bitwise-identical at every thread count.
std::size_t GrainFor(std::size_t work_per_index) {
  constexpr std::size_t kMinChunkWork = 1 << 16;
  return std::max<std::size_t>(1,
                               kMinChunkWork / std::max<std::size_t>(
                                                   work_per_index, 1));
}

}  // namespace

Block Block::IdentityPanel(std::size_t n, std::size_t first, std::size_t k) {
  EK_CHECK_LE(first + k, n);
  Block p(n, k);
  for (std::size_t c = 0; c < k; ++c) p.At(first + c, c) = 1.0;
  return p;
}

Block Block::FromColumn(const Vec& v, std::size_t k) {
  Block p(v.size(), k);
  for (std::size_t c = 0; c < k; ++c)
    std::copy(v.begin(), v.end(), p.ColPtr(c));
  return p;
}

Vec Block::Col(std::size_t c) const {
  EK_CHECK_LT(c, cols_);
  return Vec(ColPtr(c), ColPtr(c) + rows_);
}

void Block::SetCol(std::size_t c, const Vec& v) {
  EK_CHECK_LT(c, cols_);
  EK_CHECK_EQ(v.size(), rows_);
  std::copy(v.begin(), v.end(), ColPtr(c));
}

void DenseMatmat(const DenseMatrix& a, const double* x, double* y,
                 std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  // Each dense row is read once and dotted against all k RHS columns,
  // four columns at a time: the four accumulators are independent, so the
  // dot products pipeline instead of serializing on FMA latency (a plain
  // per-column mat-vec is latency-bound on its single running sum), and
  // each row element loads once per four columns.  Rows shard across the
  // pool: every output y[i, c] lives entirely in one shard, with the same
  // accumulation order as the serial sweep.
  ParallelFor(m, GrainFor(n * k), [&](std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* row = a.RowPtr(i);
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      const double* x0 = x + c * n;
      const double* x1 = x + (c + 1) * n;
      const double* x2 = x + (c + 2) * n;
      const double* x3 = x + (c + 3) * n;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double r = row[j];
        s0 += r * x0[j];
        s1 += r * x1[j];
        s2 += r * x2[j];
        s3 += r * x3[j];
      }
      y[c * m + i] = s0;
      y[(c + 1) * m + i] = s1;
      y[(c + 2) * m + i] = s2;
      y[(c + 3) * m + i] = s3;
    }
    for (; c < k; ++c) {
      const double* xc = x + c * n;
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * xc[j];
      y[c * m + i] = s;
    }
  }
  });
}

void DenseRmatMat(const DenseMatrix& a, const double* x, double* y,
                  std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  // A^T X accumulates over the rows of A, so row-sharding would need a
  // cross-shard reduction (and a different FP summation order).  Shard
  // over output *rows* j instead: each shard sweeps all of A but owns
  // y[c, j0..j1), accumulating every output element over i in exactly the
  // serial order.
  ParallelFor(n, GrainFor(m * k), [&](std::size_t j0, std::size_t j1) {
    for (std::size_t c = 0; c < k; ++c)
      std::fill(y + c * n + j0, y + c * n + j1, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = a.RowPtr(i);
      for (std::size_t c = 0; c < k; ++c) {
        const double xi = x[c * m + i];
        if (xi == 0.0) continue;
        double* yc = y + c * n;
        for (std::size_t j = j0; j < j1; ++j) yc[j] += xi * row[j];
      }
    }
  });
}

namespace {

// Repack an n x k column-major panel as row-major (k contiguous values per
// row) so the sparse sweeps below touch unit-stride memory per nonzero.
// The O(nk) pack is negligible against the O(nnz * k) sweep it serves.
std::vector<double> PackRowMajor(const double* x, std::size_t n,
                                 std::size_t k) {
  // Row-outer order keeps the writes contiguous; the k column reads are
  // sequential streams that stay resident across consecutive rows.
  std::vector<double> xr(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = &xr[i * k];
    for (std::size_t c = 0; c < k; ++c) row[c] = x[c * n + i];
  }
  return xr;
}

void UnpackRowMajor(const std::vector<double>& yr, double* y, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = &yr[i * k];
    for (std::size_t c = 0; c < k; ++c) y[c * n + i] = row[c];
  }
}

}  // namespace

void CsrMatmat(const CsrMatrix& a, const double* x, double* y,
               std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  const auto& indptr = a.indptr();
  const auto& indices = a.indices();
  const auto& values = a.values();
  // One sweep over the nonzeros; each (i, j, v) is loaded once and applied
  // to all k columns, with both panels row-major so the k-loop is a
  // unit-stride fused multiply-add.
  std::vector<double> xr = PackRowMajor(x, n, k);
  std::vector<double> yr(m * k, 0.0);
  // Output rows shard across the pool: row i's nonzeros are a contiguous
  // indptr slice, and yr[i * k ..] belongs to exactly one shard.
  const std::size_t nnz_per_row = a.nnz() / std::max<std::size_t>(m, 1);
  ParallelFor(m, GrainFor((nnz_per_row + 1) * k),
              [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double* yrow = &yr[i * k];
      for (std::size_t p = indptr[i]; p < indptr[i + 1]; ++p) {
        const double* xrow = &xr[indices[p] * k];
        const double v = values[p];
        for (std::size_t c = 0; c < k; ++c) yrow[c] += v * xrow[c];
      }
    }
  });
  UnpackRowMajor(yr, y, m, k);
}

void CsrRmatMat(const CsrMatrix& a, const double* x, double* y,
                std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  const auto& indptr = a.indptr();
  const auto& indices = a.indices();
  const auto& values = a.values();
  std::vector<double> xr = PackRowMajor(x, m, k);
  std::vector<double> yr(n * k, 0.0);
  // The transposed sweep scatters into yr rows, so output-row sharding is
  // not contiguous in the CSR structure.  Shard over the k RHS columns
  // instead: each shard replays the full nonzero sweep but only updates
  // its own packed column range, preserving the serial accumulation order
  // per element.  (k == 1 runs serially — single-vector CSR transposed
  // applies stay on the calling thread.)
  ParallelFor(k, GrainFor(a.nnz()), [&](std::size_t c0, std::size_t c1) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* xrow = &xr[i * k];
      for (std::size_t p = indptr[i]; p < indptr[i + 1]; ++p) {
        double* yrow = &yr[indices[p] * k];
        const double v = values[p];
        for (std::size_t c = c0; c < c1; ++c) yrow[c] += v * xrow[c];
      }
    }
  });
  UnpackRowMajor(yr, y, n, k);
}

}  // namespace ektelo
