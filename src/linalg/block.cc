#include "linalg/block.h"

#include <algorithm>

#include "linalg/simd/simd.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

namespace {

// Pick a ParallelFor grain so each chunk performs at least ~64K inner
// multiply-adds: below that the enqueue/wakeup overhead beats the win.
// The grain only shapes the schedule — shards own disjoint outputs, so
// results are bitwise-identical at every thread count.
std::size_t GrainFor(std::size_t work_per_index) {
  constexpr std::size_t kMinChunkWork = 1 << 16;
  return std::max<std::size_t>(1,
                               kMinChunkWork / std::max<std::size_t>(
                                                   work_per_index, 1));
}

}  // namespace

Block Block::IdentityPanel(std::size_t n, std::size_t first, std::size_t k) {
  EK_CHECK_LE(first + k, n);
  Block p(n, k);
  for (std::size_t c = 0; c < k; ++c) p.At(first + c, c) = 1.0;
  return p;
}

Block Block::FromColumn(const Vec& v, std::size_t k) {
  Block p(v.size(), k);
  EK_DCHECK_ALIGNED64(p.data());
  for (std::size_t c = 0; c < k; ++c)
    std::copy(v.begin(), v.end(), p.ColPtr(c));
  return p;
}

Vec Block::Col(std::size_t c) const {
  EK_CHECK_LT(c, cols_);
  return Vec(ColPtr(c), ColPtr(c) + rows_);
}

void Block::SetCol(std::size_t c, const Vec& v) {
  EK_CHECK_LT(c, cols_);
  EK_CHECK_EQ(v.size(), rows_);
  std::copy(v.begin(), v.end(), ColPtr(c));
}

void DenseMatmat(const DenseMatrix& a, const double* x, double* y,
                 std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  if (m == 0) return;
  // Rows shard across the pool: every output y[i, c] lives entirely in
  // one shard and is computed by the active table's canonical 8-lane
  // reduction-tree dot product — the same lane sequence at any thread
  // count and on any dispatch target.
  const simd::KernelTable& kt = simd::Active();
  const double* ap = a.RowPtr(0);
  ParallelFor(m, GrainFor(n * k), [&](std::size_t i0, std::size_t i1) {
    kt.dense_matmat_rows(ap, m, n, x, y, k, i0, i1);
  });
}

void DenseRmatMat(const DenseMatrix& a, const double* x, double* y,
                  std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  if (n == 0) return;
  // A^T X accumulates over the rows of A, so row-sharding would need a
  // cross-shard reduction (and a different FP summation order).  Shard
  // over output *rows* j instead: each shard sweeps all of A but owns
  // y[c, j0..j1), accumulating every output element over i in exactly the
  // serial order (vector lanes cover independent outputs only).
  const simd::KernelTable& kt = simd::Active();
  const double* ap = m > 0 ? a.RowPtr(0) : nullptr;
  ParallelFor(n, GrainFor(m * k), [&](std::size_t j0, std::size_t j1) {
    kt.dense_rmatmat_cols(ap, m, n, x, y, k, j0, j1);
  });
}

namespace {

// Repack an n x k column-major panel as row-major (k contiguous values per
// row) so the sparse sweeps below touch unit-stride memory per nonzero.
// The O(nk) pack is negligible against the O(nnz * k) sweep it serves.
AlignedVec PackRowMajor(const double* x, std::size_t n, std::size_t k) {
  // Row-outer order keeps the writes contiguous; the k column reads are
  // sequential streams that stay resident across consecutive rows.
  AlignedVec xr(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = &xr[i * k];
    for (std::size_t c = 0; c < k; ++c) row[c] = x[c * n + i];
  }
  return xr;
}

void UnpackRowMajor(const AlignedVec& yr, double* y, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = &yr[i * k];
    for (std::size_t c = 0; c < k; ++c) y[c * n + i] = row[c];
  }
}

}  // namespace

void CsrMatmat(const CsrMatrix& a, const double* x, double* y,
               std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  // One sweep over the nonzeros; each (i, j, v) is loaded once and applied
  // to all k columns, with both panels row-major so the k-loop is a
  // unit-stride vector multiply-add.
  AlignedVec xr = PackRowMajor(x, n, k);
  AlignedVec yr(m * k, 0.0);
  // Output rows shard across the pool: row i's nonzeros are a contiguous
  // indptr slice, and yr[i * k ..] belongs to exactly one shard.
  const simd::KernelTable& kt = simd::Active();
  const std::size_t nnz_per_row = a.nnz() / std::max<std::size_t>(m, 1);
  ParallelFor(m, GrainFor((nnz_per_row + 1) * k),
              [&](std::size_t i0, std::size_t i1) {
                kt.csr_matmat_rows(a.indptr().data(), a.indices().data(),
                                   a.values().data(), xr.data(), yr.data(),
                                   k, i0, i1);
              });
  UnpackRowMajor(yr, y, m, k);
}

void CsrRmatMat(const CsrMatrix& a, const double* x, double* y,
                std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  AlignedVec xr = PackRowMajor(x, m, k);
  AlignedVec yr(n * k, 0.0);
  // The transposed sweep scatters into yr rows, so output-row sharding is
  // not contiguous in the CSR structure.  Shard over the k RHS columns
  // instead: each shard replays the full nonzero sweep but only updates
  // its own packed column range, preserving the serial accumulation order
  // per element.  (k == 1 runs serially — single-vector CSR transposed
  // applies stay on the calling thread.)
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(k, GrainFor(a.nnz()), [&](std::size_t c0, std::size_t c1) {
    kt.csr_rmatmat_cols(a.indptr().data(), a.indices().data(),
                        a.values().data(), m, xr.data(), yr.data(), k, c0,
                        c1);
  });
  UnpackRowMajor(yr, y, n, k);
}

}  // namespace ektelo
