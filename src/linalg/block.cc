#include "linalg/block.h"

#include <algorithm>

#include "util/check.h"

namespace ektelo {

Block Block::IdentityPanel(std::size_t n, std::size_t first, std::size_t k) {
  EK_CHECK_LE(first + k, n);
  Block p(n, k);
  for (std::size_t c = 0; c < k; ++c) p.At(first + c, c) = 1.0;
  return p;
}

Block Block::FromColumn(const Vec& v, std::size_t k) {
  Block p(v.size(), k);
  for (std::size_t c = 0; c < k; ++c)
    std::copy(v.begin(), v.end(), p.ColPtr(c));
  return p;
}

Vec Block::Col(std::size_t c) const {
  EK_CHECK_LT(c, cols_);
  return Vec(ColPtr(c), ColPtr(c) + rows_);
}

void Block::SetCol(std::size_t c, const Vec& v) {
  EK_CHECK_LT(c, cols_);
  EK_CHECK_EQ(v.size(), rows_);
  std::copy(v.begin(), v.end(), ColPtr(c));
}

void DenseMatmat(const DenseMatrix& a, const double* x, double* y,
                 std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  // Each dense row is read once and dotted against all k RHS columns,
  // four columns at a time: the four accumulators are independent, so the
  // dot products pipeline instead of serializing on FMA latency (a plain
  // per-column mat-vec is latency-bound on its single running sum), and
  // each row element loads once per four columns.
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = a.RowPtr(i);
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      const double* x0 = x + c * n;
      const double* x1 = x + (c + 1) * n;
      const double* x2 = x + (c + 2) * n;
      const double* x3 = x + (c + 3) * n;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double r = row[j];
        s0 += r * x0[j];
        s1 += r * x1[j];
        s2 += r * x2[j];
        s3 += r * x3[j];
      }
      y[c * m + i] = s0;
      y[(c + 1) * m + i] = s1;
      y[(c + 2) * m + i] = s2;
      y[(c + 3) * m + i] = s3;
    }
    for (; c < k; ++c) {
      const double* xc = x + c * n;
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * xc[j];
      y[c * m + i] = s;
    }
  }
}

void DenseRmatMat(const DenseMatrix& a, const double* x, double* y,
                  std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  std::fill(y, y + n * k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = a.RowPtr(i);
    for (std::size_t c = 0; c < k; ++c) {
      const double xi = x[c * m + i];
      if (xi == 0.0) continue;
      double* yc = y + c * n;
      for (std::size_t j = 0; j < n; ++j) yc[j] += xi * row[j];
    }
  }
}

namespace {

// Repack an n x k column-major panel as row-major (k contiguous values per
// row) so the sparse sweeps below touch unit-stride memory per nonzero.
// The O(nk) pack is negligible against the O(nnz * k) sweep it serves.
std::vector<double> PackRowMajor(const double* x, std::size_t n,
                                 std::size_t k) {
  // Row-outer order keeps the writes contiguous; the k column reads are
  // sequential streams that stay resident across consecutive rows.
  std::vector<double> xr(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = &xr[i * k];
    for (std::size_t c = 0; c < k; ++c) row[c] = x[c * n + i];
  }
  return xr;
}

void UnpackRowMajor(const std::vector<double>& yr, double* y, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = &yr[i * k];
    for (std::size_t c = 0; c < k; ++c) y[c * n + i] = row[c];
  }
}

}  // namespace

void CsrMatmat(const CsrMatrix& a, const double* x, double* y,
               std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  const auto& indptr = a.indptr();
  const auto& indices = a.indices();
  const auto& values = a.values();
  // One sweep over the nonzeros; each (i, j, v) is loaded once and applied
  // to all k columns, with both panels row-major so the k-loop is a
  // unit-stride fused multiply-add.
  std::vector<double> xr = PackRowMajor(x, n, k);
  std::vector<double> yr(m * k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double* yrow = &yr[i * k];
    for (std::size_t p = indptr[i]; p < indptr[i + 1]; ++p) {
      const double* xrow = &xr[indices[p] * k];
      const double v = values[p];
      for (std::size_t c = 0; c < k; ++c) yrow[c] += v * xrow[c];
    }
  }
  UnpackRowMajor(yr, y, m, k);
}

void CsrRmatMat(const CsrMatrix& a, const double* x, double* y,
                std::size_t k) {
  const std::size_t m = a.rows(), n = a.cols();
  const auto& indptr = a.indptr();
  const auto& indices = a.indices();
  const auto& values = a.values();
  std::vector<double> xr = PackRowMajor(x, m, k);
  std::vector<double> yr(n * k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* xrow = &xr[i * k];
    for (std::size_t p = indptr[i]; p < indptr[i + 1]; ++p) {
      double* yrow = &yr[indices[p] * k];
      const double v = values[p];
      for (std::size_t c = 0; c < k; ++c) yrow[c] += v * xrow[c];
    }
  }
  UnpackRowMajor(yr, y, n, k);
}

}  // namespace ektelo
