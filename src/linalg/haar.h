// Haar wavelet analysis/synthesis used by the Privelet plan (Xiao et al.,
// ICDE 2010) and by the implicit Wavelet core matrix (paper Table 2).
//
// For n = 2^k, the (unnormalized) Haar analysis matrix H has
//   row 0:                 all ones (the total),
//   level j = 0..k-1:      2^j rows; row (2^j + b) is +1 over the left half
//                          and -1 over the right half of block b of size
//                          n / 2^j.
// Every column contains the total row plus exactly one ±1 per level, so the
// L1 column norm (Laplace sensitivity) is 1 + log2(n) — the logarithmic
// sensitivity that makes Privelet work.  Both H x and H^T x are computed in
// O(n log n) without materializing H.
#ifndef EKTELO_LINALG_HAAR_H_
#define EKTELO_LINALG_HAAR_H_

#include <cstddef>

#include "linalg/csr.h"
#include "linalg/vec.h"

namespace ektelo {

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Round n up to the next power of two.
std::size_t NextPowerOfTwo(std::size_t n);

/// y = H x (analysis).  x has length n = 2^k; y has length n.
void HaarAnalysis(const double* x, double* y, std::size_t n);

/// y = H^T x (synthesis / transposed analysis).
void HaarSynthesis(const double* x, double* y, std::size_t n);

/// Blocked analysis over k column-major RHS: Y = H X, one level sweep
/// shared by all columns (the per-level block structure is walked once).
void HaarAnalysisBlock(const double* x, double* y, std::size_t n,
                       std::size_t k);
/// Blocked synthesis: Y = H^T X over k column-major RHS.
void HaarSynthesisBlock(const double* x, double* y, std::size_t n,
                        std::size_t k);

/// Materialized Haar matrix in CSR form (O(n log n) nonzeros).
CsrMatrix HaarMatrixSparse(std::size_t n);

}  // namespace ektelo

#endif  // EKTELO_LINALG_HAAR_H_
