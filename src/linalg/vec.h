// Small dense-vector kernels used across the library.
//
// EKTELO data vectors are plain std::vector<double>; these free functions
// keep call sites readable and centralize the few numerical loops.
#ifndef EKTELO_LINALG_VEC_H_
#define EKTELO_LINALG_VEC_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace ektelo {

using Vec = std::vector<double>;

inline double Dot(const Vec& a, const Vec& b) {
  EK_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

inline double Norm1(const Vec& a) {
  double s = 0.0;
  for (double v : a) s += std::abs(v);
  return s;
}

inline double Sum(const Vec& a) {
  double s = 0.0;
  for (double v : a) s += v;
  return s;
}

inline double MaxAbs(const Vec& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

/// y += alpha * x
inline void Axpy(double alpha, const Vec& x, Vec* y) {
  EK_CHECK_EQ(x.size(), y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

inline void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

inline Vec Sub(const Vec& a, const Vec& b) {
  EK_CHECK_EQ(a.size(), b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

inline Vec Add(const Vec& a, const Vec& b) {
  EK_CHECK_EQ(a.size(), b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

inline Vec Ones(std::size_t n) { return Vec(n, 1.0); }
inline Vec Zeros(std::size_t n) { return Vec(n, 0.0); }

/// Root-mean-square difference, the per-entry L2 discrepancy used by the
/// evaluation's "scaled per-query L2 error" metric.
inline double Rmse(const Vec& a, const Vec& b) {
  EK_CHECK_EQ(a.size(), b.size());
  EK_CHECK(!a.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace ektelo

#endif  // EKTELO_LINALG_VEC_H_
