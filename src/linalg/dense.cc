#include "linalg/dense.h"

#include <algorithm>
#include <cmath>

namespace ektelo {

DenseMatrix DenseMatrix::Identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Vec DenseMatrix::Matvec(const Vec& x) const {
  EK_CHECK_EQ(x.size(), cols_);
  Vec y(rows_);
  Matvec(x.data(), y.data());
  return y;
}

void DenseMatrix::Matvec(const double* x, double* y) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

Vec DenseMatrix::RmatVec(const Vec& x) const {
  EK_CHECK_EQ(x.size(), rows_);
  Vec y(cols_);
  RmatVec(x.data(), y.data());
  return y;
}

void DenseMatrix::RmatVec(const double* x, double* y) const {
  std::fill(y, y + cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) y[j] += xi * row[j];
  }
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t.At(j, i) = At(i, j);
  return t;
}

DenseMatrix DenseMatrix::Matmul(const DenseMatrix& other) const {
  EK_CHECK_EQ(cols_, other.rows());
  DenseMatrix r(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* rrow = r.RowPtr(i);
      for (std::size_t j = 0; j < other.cols(); ++j) rrow[j] += aik * brow[j];
    }
  }
  return r;
}

DenseMatrix DenseMatrix::Gram() const {
  DenseMatrix g(cols_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    for (std::size_t a = 0; a < cols_; ++a) {
      const double ra = row[a];
      if (ra == 0.0) continue;
      double* grow = g.RowPtr(a);
      for (std::size_t b = 0; b < cols_; ++b) grow[b] += ra * row[b];
    }
  }
  return g;
}

DenseMatrix DenseMatrix::Abs() const {
  DenseMatrix r = *this;
  for (double& v : r.data()) v = std::abs(v);
  return r;
}

DenseMatrix DenseMatrix::Sqr() const {
  DenseMatrix r = *this;
  for (double& v : r.data()) v = v * v;
  return r;
}

double DenseMatrix::MaxColNormL1() const {
  Vec col(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) col[j] += std::abs(At(i, j));
  return col.empty() ? 0.0 : *std::max_element(col.begin(), col.end());
}

double DenseMatrix::MaxColNormL2() const {
  Vec col(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) col[j] += At(i, j) * At(i, j);
  double m = col.empty() ? 0.0 : *std::max_element(col.begin(), col.end());
  return std::sqrt(m);
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& other, double tol) const {
  if (rows_ != other.rows() || cols_ != other.cols()) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - other.data()[i]) > tol) return false;
  return true;
}

bool CholeskyFactor(DenseMatrix* a) {
  EK_CHECK_EQ(a->rows(), a->cols());
  const std::size_t n = a->rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a->At(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a->At(j, k) * a->At(j, k);
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a->At(j, j) = d;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a->At(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a->At(i, k) * a->At(j, k);
      a->At(i, j) = s / d;
    }
  }
  // Zero the strict upper triangle so the factor is unambiguous.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a->At(i, j) = 0.0;
  return true;
}

Vec CholeskySolve(const DenseMatrix& chol, const Vec& b) {
  const std::size_t n = chol.rows();
  EK_CHECK_EQ(b.size(), n);
  Vec y(n);
  // Forward: L y = b
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol.At(i, k) * y[k];
    y[i] = s / chol.At(i, i);
  }
  // Backward: L^T x = y
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= chol.At(k, ii) * x[k];
    x[ii] = s / chol.At(ii, ii);
  }
  return x;
}

Vec DirectLeastSquares(const DenseMatrix& a, const Vec& b, double ridge) {
  EK_CHECK_EQ(b.size(), a.rows());
  return SolveNormalEquations(a.Gram(), a.RmatVec(b), ridge);
}

Vec SolveNormalEquations(DenseMatrix gram, const Vec& atb, double ridge) {
  EK_CHECK_EQ(gram.rows(), gram.cols());
  EK_CHECK_EQ(atb.size(), gram.rows());
  // Scale-aware jitter keeps the factorization stable for rank-deficient
  // measurement sets without visibly biasing well-posed solves.
  double diag_max = 0.0;
  for (std::size_t i = 0; i < gram.rows(); ++i)
    diag_max = std::max(diag_max, gram.At(i, i));
  const double jitter = ridge * std::max(diag_max, 1.0);
  DenseMatrix chol = gram;
  for (std::size_t i = 0; i < chol.rows(); ++i) chol.At(i, i) += jitter;
  if (!CholeskyFactor(&chol)) {
    // Retry with a stronger ridge; the system is badly conditioned.
    chol = std::move(gram);
    for (std::size_t i = 0; i < chol.rows(); ++i)
      chol.At(i, i) += 1e-6 * std::max(diag_max, 1.0);
    EK_CHECK(CholeskyFactor(&chol));
  }
  return CholeskySolve(chol, atb);
}

DenseMatrix PseudoInverse(const DenseMatrix& a, double ridge) {
  // A+ = (A^T A + rI)^{-1} A^T, adequate for the small, full-column-rank
  // matrices used in per-dimension strategy scoring.
  DenseMatrix gram = a.Gram();
  double diag_max = 0.0;
  for (std::size_t i = 0; i < gram.rows(); ++i)
    diag_max = std::max(diag_max, gram.At(i, i));
  for (std::size_t i = 0; i < gram.rows(); ++i)
    gram.At(i, i) += ridge * std::max(diag_max, 1.0);
  DenseMatrix chol = gram;
  EK_CHECK(CholeskyFactor(&chol));
  DenseMatrix at = a.Transpose();
  DenseMatrix result(a.cols(), a.rows());
  Vec col(a.cols());
  for (std::size_t j = 0; j < a.rows(); ++j) {
    for (std::size_t i = 0; i < a.cols(); ++i) col[i] = at.At(i, j);
    Vec x = CholeskySolve(chol, col);
    for (std::size_t i = 0; i < a.cols(); ++i) result.At(i, j) = x[i];
  }
  return result;
}

}  // namespace ektelo
