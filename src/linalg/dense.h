// Row-major dense matrix with the operations EKTELO's direct (non-implicit)
// code paths need: mat-vec, transposed mat-vec, mat-mat, Cholesky solve for
// direct least squares, and pseudo-inverse via normal equations.
#ifndef EKTELO_LINALG_DENSE_H_
#define EKTELO_LINALG_DENSE_H_

#include <cstddef>
#include <vector>

#include "linalg/vec.h"
#include "util/aligned.h"

namespace ektelo {

class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static DenseMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double At(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  const double* RowPtr(std::size_t i) const { return &data_[i * cols_]; }
  double* RowPtr(std::size_t i) { return &data_[i * cols_]; }

  // Backing storage is 64-byte aligned and cacheline-padded
  // (util/aligned.h) so the vectorized block kernels see aligned rows
  // whenever cols is a multiple of the lane group.
  const AlignedVec& data() const { return data_; }
  AlignedVec& data() { return data_; }

  /// y = A x
  Vec Matvec(const Vec& x) const;
  void Matvec(const double* x, double* y) const;

  /// y = A^T x
  Vec RmatVec(const Vec& x) const;
  void RmatVec(const double* x, double* y) const;

  DenseMatrix Transpose() const;
  DenseMatrix Matmul(const DenseMatrix& other) const;

  /// A^T A (symmetric positive semi-definite).
  DenseMatrix Gram() const;

  /// Elementwise |a_ij| and a_ij^2.
  DenseMatrix Abs() const;
  DenseMatrix Sqr() const;

  /// Max L1 / L2 column norms (matrix-mechanism sensitivity).
  double MaxColNormL1() const;
  double MaxColNormL2() const;

  bool ApproxEquals(const DenseMatrix& other, double tol = 1e-9) const;

 private:
  std::size_t rows_, cols_;
  AlignedVec data_;
};

/// In-place Cholesky factorization of an SPD matrix (lower triangle).
/// Returns false if the matrix is not positive definite (within jitter).
bool CholeskyFactor(DenseMatrix* a);

/// Solve L L^T x = b given the factor from CholeskyFactor.
Vec CholeskySolve(const DenseMatrix& chol, const Vec& b);

/// Direct ordinary least squares: argmin ||Ax - b||_2 via normal equations
/// with a small ridge for rank-deficient systems.  O(n^3); used only as the
/// "Dense+Direct" baseline of Fig. 5 and for small subproblems.
Vec DirectLeastSquares(const DenseMatrix& a, const Vec& b,
                       double ridge = 1e-10);

/// Solve (gram + jitter I) x = atb by Cholesky, with scale-aware jitter and
/// a stronger-ridge retry for badly conditioned systems.  `gram` is
/// consumed (factored in place).  This is the normal-equations back end
/// shared by DirectLeastSquares and the Gram-driven inference path, which
/// assembles gram = M^T M from the operator's structured Gram() without
/// ever materializing M.
Vec SolveNormalEquations(DenseMatrix gram, const Vec& atb,
                         double ridge = 1e-10);

/// Moore-Penrose pseudo-inverse via ridge-regularized normal equations.
/// Suitable for the small per-dimension matrices in strategy optimization.
DenseMatrix PseudoInverse(const DenseMatrix& a, double ridge = 1e-10);

}  // namespace ektelo

#endif  // EKTELO_LINALG_DENSE_H_
