// Target-generic kernel bodies, instantiated once per dispatch target.
//
// Each kernels_<target>.cc defines a V8 type — 8 double lanes with
// Zero/Load/Broadcast/Add/Sub/Mul/Store — and instantiates MakeTable<V8>.
// Because every V8 performs the same lane-wise IEEE-754 operations in the
// same order (all TUs are compiled with -ffp-contract=off, so no target
// fuses a*b+c), the instantiations are bitwise-interchangeable: the lane
// semantics below are THE definition of every kernel's result, and the
// scalar V8 executes it literally.
//
// Tail policy: loops advance 8 lanes at a time while a full group fits,
// then finish element-wise — a trailing group of t < 8 elements lands in
// lanes 0..t-1 and the remaining lanes receive no addition (not a +0.0,
// which could flip a -0.0 accumulator).  No kernel ever reads or writes
// past the logical extent of a buffer, so callers may pass interior
// pointers at any alignment.
#ifndef EKTELO_LINALG_SIMD_KERNELS_IMPL_H_
#define EKTELO_LINALG_SIMD_KERNELS_IMPL_H_

#include <algorithm>
#include <cstddef>

#include "linalg/simd/simd.h"
#include "util/aligned.h"

namespace ektelo::simd {

inline constexpr std::size_t kLanes = 8;

/// The canonical 8-lane reduction tree over a spilled accumulator group.
inline double ReduceTree(const double* l) {
  const double s01 = l[0] + l[1], s23 = l[2] + l[3];
  const double s45 = l[4] + l[5], s67 = l[6] + l[7];
  return (s01 + s23) + (s45 + s67);
}

/// dot(r, x) over n elements with 8-lane accumulation + the canonical
/// reduction tree.  This is the ONLY kernel whose result differs from a
/// strictly serial left-to-right sum; every dispatch target (scalar
/// included) executes exactly this lane order.
template <class V8>
inline double Dot8(const double* r, const double* x, std::size_t n) {
  V8 acc = V8::Zero();
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    acc = V8::Add(acc, V8::Mul(V8::Load(r + j), V8::Load(x + j)));
  alignas(kCachelineBytes) double lanes[kLanes];
  V8::Store(acc, lanes);
  for (std::size_t l = 0; j < n; ++j, ++l) lanes[l] += r[j] * x[j];
  return ReduceTree(lanes);
}

template <class V8>
void DenseMatmatRowsImpl(const double* a, std::size_t m, std::size_t n,
                         const double* x, double* y, std::size_t k,
                         std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* row = a + i * n;
    std::size_t c = 0;
    // Four columns at a time so each row vector is loaded once per four
    // dot products; the four accumulator groups are independent, so each
    // column's result is bit-for-bit the Dot8 of that column.
    for (; c + 4 <= k; c += 4) {
      const double* x0 = x + c * n;
      const double* x1 = x + (c + 1) * n;
      const double* x2 = x + (c + 2) * n;
      const double* x3 = x + (c + 3) * n;
      V8 a0 = V8::Zero(), a1 = V8::Zero(), a2 = V8::Zero(), a3 = V8::Zero();
      std::size_t j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        const V8 r = V8::Load(row + j);
        a0 = V8::Add(a0, V8::Mul(r, V8::Load(x0 + j)));
        a1 = V8::Add(a1, V8::Mul(r, V8::Load(x1 + j)));
        a2 = V8::Add(a2, V8::Mul(r, V8::Load(x2 + j)));
        a3 = V8::Add(a3, V8::Mul(r, V8::Load(x3 + j)));
      }
      alignas(kCachelineBytes) double l0[kLanes], l1[kLanes], l2[kLanes],
          l3[kLanes];
      V8::Store(a0, l0);
      V8::Store(a1, l1);
      V8::Store(a2, l2);
      V8::Store(a3, l3);
      for (std::size_t l = 0; j < n; ++j, ++l) {
        const double r = row[j];
        l0[l] += r * x0[j];
        l1[l] += r * x1[j];
        l2[l] += r * x2[j];
        l3[l] += r * x3[j];
      }
      y[c * m + i] = ReduceTree(l0);
      y[(c + 1) * m + i] = ReduceTree(l1);
      y[(c + 2) * m + i] = ReduceTree(l2);
      y[(c + 3) * m + i] = ReduceTree(l3);
    }
    for (; c < k; ++c) y[c * m + i] = Dot8<V8>(row, x + c * n, n);
  }
}

template <class V8>
void DenseRmatMatColsImpl(const double* a, std::size_t m, std::size_t n,
                          const double* x, double* y, std::size_t k,
                          std::size_t j0, std::size_t j1) {
  for (std::size_t c = 0; c < k; ++c)
    std::fill(y + c * n + j0, y + c * n + j1, 0.0);
  // Accumulates y[c, j] += x[c, i] * a[i, j] over i in serial order; the
  // j loop touches independent outputs, so vectorizing it cannot change
  // any element's FP sequence.
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = a + i * n;
    for (std::size_t c = 0; c < k; ++c) {
      const double xi = x[c * m + i];
      if (xi == 0.0) continue;
      double* yc = y + c * n;
      const V8 bx = V8::Broadcast(xi);
      std::size_t j = j0;
      for (; j + kLanes <= j1; j += kLanes)
        V8::Store(V8::Add(V8::Load(yc + j), V8::Mul(bx, V8::Load(row + j))),
                  yc + j);
      for (; j < j1; ++j) yc[j] += xi * row[j];
    }
  }
}

template <class V8>
void CsrMatmatRowsImpl(const std::size_t* indptr, const std::size_t* indices,
                       const double* values, const double* xr, double* yr,
                       std::size_t k, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    double* yrow = yr + i * k;
    for (std::size_t p = indptr[i]; p < indptr[i + 1]; ++p) {
      const double* xrow = xr + indices[p] * k;
      const V8 bv = V8::Broadcast(values[p]);
      std::size_t c = 0;
      for (; c + kLanes <= k; c += kLanes)
        V8::Store(
            V8::Add(V8::Load(yrow + c), V8::Mul(bv, V8::Load(xrow + c))),
            yrow + c);
      for (; c < k; ++c) yrow[c] += values[p] * xrow[c];
    }
  }
}

template <class V8>
void CsrRmatMatColsImpl(const std::size_t* indptr, const std::size_t* indices,
                        const double* values, std::size_t m, const double* xr,
                        double* yr, std::size_t k, std::size_t c0,
                        std::size_t c1) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* xrow = xr + i * k;
    for (std::size_t p = indptr[i]; p < indptr[i + 1]; ++p) {
      double* yrow = yr + indices[p] * k;
      const double v = values[p];
      const V8 bv = V8::Broadcast(v);
      std::size_t c = c0;
      for (; c + kLanes <= c1; c += kLanes)
        V8::Store(
            V8::Add(V8::Load(yrow + c), V8::Mul(bv, V8::Load(xrow + c))),
            yrow + c);
      for (; c < c1; ++c) yrow[c] += v * xrow[c];
    }
  }
}

namespace impl_detail {

inline std::size_t Log2(std::size_t n) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}

/// Elementwise z[c] = a[c] + b[c], w[c] = a[c] - b[c] over k contiguous
/// values: the Haar butterfly, vectorized over columns.
template <class V8>
inline void AddSub(const double* a, const double* b, double* z, double* w,
                   std::size_t k) {
  std::size_t c = 0;
  for (; c + kLanes <= k; c += kLanes) {
    const V8 va = V8::Load(a + c);
    const V8 vb = V8::Load(b + c);
    V8::Store(V8::Add(va, vb), z + c);
    V8::Store(V8::Sub(va, vb), w + c);
  }
  for (; c < k; ++c) {
    z[c] = a[c] + b[c];
    w[c] = a[c] - b[c];
  }
}

}  // namespace impl_detail

template <class V8>
void HaarAnalysisColsImpl(const double* x, double* y, std::size_t n,
                          std::size_t k) {
  if (n == 1) {
    for (std::size_t c = 0; c < k; ++c) y[c] = x[c];
    return;
  }
  const std::size_t levels = impl_detail::Log2(n);
  // Work in row-major packing (k contiguous values per block) so every
  // butterfly is a unit-stride sweep; results land packed in yr and are
  // unpacked once.  The arithmetic per element is identical to the
  // column-at-a-time fold — only data movement changes.
  AlignedVec cur(n * k), nxt, yr(n * k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) cur[i * k + c] = x[c * n + i];
  for (std::size_t j = levels; j-- > 0;) {
    const std::size_t blocks = std::size_t{1} << j;
    nxt.assign(blocks * k, 0.0);
    for (std::size_t b = 0; b < blocks; ++b)
      impl_detail::AddSub<V8>(&cur[(2 * b) * k], &cur[(2 * b + 1) * k],
                              &nxt[b * k], &yr[(blocks + b) * k], k);
    cur.swap(nxt);
  }
  std::copy(cur.begin(), cur.begin() + k, yr.begin());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) y[c * n + i] = yr[i * k + c];
}

template <class V8>
void HaarSynthesisColsImpl(const double* x, double* y, std::size_t n,
                           std::size_t k) {
  if (n == 1) {
    for (std::size_t c = 0; c < k; ++c) y[c] = x[c];
    return;
  }
  const std::size_t levels = impl_detail::Log2(n);
  // Pack the coefficient panel row-major so each level's per-block
  // coefficients are contiguous across columns.
  AlignedVec xr(n * k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) xr[i * k + c] = x[c * n + i];
  AlignedVec cur(xr.begin(), xr.begin() + k), nxt;
  for (std::size_t j = 0; j < levels; ++j) {
    const std::size_t blocks = std::size_t{1} << j;
    nxt.assign(blocks * 2 * k, 0.0);
    for (std::size_t b = 0; b < blocks; ++b)
      impl_detail::AddSub<V8>(&cur[b * k], &xr[(blocks + b) * k],
                              &nxt[(2 * b) * k], &nxt[(2 * b + 1) * k], k);
    cur.swap(nxt);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) y[c * n + i] = cur[i * k + c];
}

template <class V8>
KernelTable MakeTable(const char* name) {
  return KernelTable{name,
                     &DenseMatmatRowsImpl<V8>,
                     &DenseRmatMatColsImpl<V8>,
                     &CsrMatmatRowsImpl<V8>,
                     &CsrRmatMatColsImpl<V8>,
                     &HaarAnalysisColsImpl<V8>,
                     &HaarSynthesisColsImpl<V8>};
}

}  // namespace ektelo::simd

#endif  // EKTELO_LINALG_SIMD_KERNELS_IMPL_H_
