#include "linalg/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/cpu_features.h"

namespace ektelo::simd {

namespace {

bool CpuRuns(const KernelTable* t) {
  if (t == nullptr) return false;
  const std::string name = t->name;
  if (name == "scalar") return true;
  if (name == "avx2") return CpuHasAvx2();
  if (name == "avx512") return CpuHasAvx512f();
  if (name == "neon") return CpuHasNeon();
  return false;
}

/// Startup selection: EKTELO_SIMD if it names a runnable target, else the
/// widest runnable one.  An unrunnable/unknown request warns once on
/// stderr — silently honoring it would trap on the first kernel, and
/// silently ignoring it would hide a typo in a determinism experiment.
const KernelTable* Select() {
  const KernelTable* best = AvailableTargets().front();  // best-first
  const char* env = std::getenv("EKTELO_SIMD");
  if (env == nullptr || *env == '\0') return best;
  if (const KernelTable* t = FindTarget(env)) return t;
  std::fprintf(stderr,
               "ektelo: EKTELO_SIMD=%s is not available on this "
               "build/CPU; using %s\n",
               env, best->name);
  return best;
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const KernelTable& Active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign first-call race: Select() is deterministic, so concurrent
    // initializers store the same pointer.
    t = Select();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

void SetActive(const KernelTable* table) {
  g_active.store(table, std::memory_order_release);
}

void ResetActive() { g_active.store(Select(), std::memory_order_release); }

std::vector<const KernelTable*> AvailableTargets() {
  std::vector<const KernelTable*> out;
  // Widest first: the front is the startup default.
  for (const KernelTable* t :
       {GetAvx512Table(), GetAvx2Table(), GetNeonTable(), GetScalarTable()})
    if (CpuRuns(t)) out.push_back(t);
  return out;
}

const KernelTable* FindTarget(const std::string& name) {
  for (const KernelTable* t : AvailableTargets())
    if (name == t->name) return t;
  return nullptr;
}

}  // namespace ektelo::simd
