// NEON (AArch64 Advanced SIMD) dispatch target: the 8 virtual lanes live
// in four 128-bit registers.  vaddq/vsubq/vmulq are IEEE-754 lane ops,
// and the TU is built with -ffp-contract=off so no vfma contraction
// sneaks in — each lane matches the scalar table bit for bit.
//
// NEON is baseline on AArch64, so no extra -m flags are needed; on other
// architectures this TU degrades to a stub returning nullptr.
#include "linalg/simd/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "linalg/simd/kernels_impl.h"

namespace ektelo::simd {

namespace {

struct V8Neon {
  float64x2_t q0, q1, q2, q3;

  static V8Neon Zero() {
    const float64x2_t z = vdupq_n_f64(0.0);
    return {z, z, z, z};
  }
  static V8Neon Load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2), vld1q_f64(p + 4),
            vld1q_f64(p + 6)};
  }
  static V8Neon Broadcast(double s) {
    const float64x2_t b = vdupq_n_f64(s);
    return {b, b, b, b};
  }
  static V8Neon Add(const V8Neon& a, const V8Neon& b) {
    return {vaddq_f64(a.q0, b.q0), vaddq_f64(a.q1, b.q1),
            vaddq_f64(a.q2, b.q2), vaddq_f64(a.q3, b.q3)};
  }
  static V8Neon Sub(const V8Neon& a, const V8Neon& b) {
    return {vsubq_f64(a.q0, b.q0), vsubq_f64(a.q1, b.q1),
            vsubq_f64(a.q2, b.q2), vsubq_f64(a.q3, b.q3)};
  }
  static V8Neon Mul(const V8Neon& a, const V8Neon& b) {
    return {vmulq_f64(a.q0, b.q0), vmulq_f64(a.q1, b.q1),
            vmulq_f64(a.q2, b.q2), vmulq_f64(a.q3, b.q3)};
  }
  static void Store(const V8Neon& a, double* p) {
    vst1q_f64(p, a.q0);
    vst1q_f64(p + 2, a.q1);
    vst1q_f64(p + 4, a.q2);
    vst1q_f64(p + 6, a.q3);
  }
};

const KernelTable kTable = MakeTable<V8Neon>("neon");

}  // namespace

const KernelTable* GetNeonTable() { return &kTable; }

}  // namespace ektelo::simd

#else  // !defined(__aarch64__)

namespace ektelo::simd {
const KernelTable* GetNeonTable() { return nullptr; }
}  // namespace ektelo::simd

#endif
