// Runtime-dispatched SIMD kernel table for the blocked hot kernels.
//
// One binary carries every kernel target its architecture can express —
// scalar always, AVX2/AVX-512 on x86-64, NEON on AArch64 — and selects
// one KernelTable at startup from CPUID/HWCAP, overridable with the
// EKTELO_SIMD environment variable (scalar|avx2|avx512|neon).  The
// per-target translation units are the only code compiled with
// -mavx2/-mavx512f, so the selected entry points are the only paths that
// can execute target instructions; everything else in the binary stays
// baseline-ISA.
//
// Determinism contract: every table computes BITWISE-IDENTICAL results,
// on every input, to the scalar table.  Two rules make that possible:
//
//   1. Reductions run over fixed-width lanes with a defined reduction
//      tree.  A dot product accumulates into 8 virtual lanes
//      (acc[l] += a[8t+l] * b[8t+l], tail elements into lanes
//      j mod 8), then folds ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
//      AVX-512 holds the 8 lanes in one register, AVX2 in two, NEON in
//      four, scalar in eight doubles — same additions, same order.
//   2. Everything else vectorizes over *independent outputs* (RHS
//      columns, dense output rows), where lane width cannot change any
//      per-element floating-point sequence.
//
// All kernel TUs are compiled with -ffp-contract=off, so a*b+c is
// mul-then-add everywhere (no FMA contraction differences between
// targets), and the scalar TU additionally disables auto-vectorization
// so "scalar" means one lane per instruction — the honest roofline
// baseline the bench compares against.
//
// The table functions are serial range kernels: the blocked entry points
// in linalg/block.h and linalg/haar.h keep owning the ParallelFor
// sharding and call the active table per shard, so thread-count
// invariance and target invariance compose.
#ifndef EKTELO_LINALG_SIMD_SIMD_H_
#define EKTELO_LINALG_SIMD_SIMD_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ektelo::simd {

/// One dispatch target: serial range kernels over raw buffers.  All
/// pointers may be unaligned; x/y panels never alias.
struct KernelTable {
  const char* name;

  /// y[i, c] = dot(row i of a, column c of x) for rows [i0, i1), with the
  /// canonical 8-lane reduction tree.  a is row-major (m x n, stride n);
  /// x is column-major (n x k); y is column-major (m x k).
  void (*dense_matmat_rows)(const double* a, std::size_t m, std::size_t n,
                            const double* x, double* y, std::size_t k,
                            std::size_t i0, std::size_t i1);

  /// Transposed dense apply, output rows [j0, j1) of the (n x k)
  /// column-major y: zero-initializes its slice then accumulates over the
  /// rows of a in serial order (no reduction reorder).
  void (*dense_rmatmat_cols)(const double* a, std::size_t m, std::size_t n,
                             const double* x, double* y, std::size_t k,
                             std::size_t j0, std::size_t j1);

  /// CSR forward sweep over packed row-major panels: xr is (n x k)
  /// row-major, yr is (m x k) row-major and pre-zeroed; processes output
  /// rows [i0, i1).  Each nonzero updates its k lanes in serial p-order.
  void (*csr_matmat_rows)(const std::size_t* indptr,
                          const std::size_t* indices, const double* values,
                          const double* xr, double* yr, std::size_t k,
                          std::size_t i0, std::size_t i1);

  /// CSR transposed sweep, packed columns [c0, c1) of the row-major yr
  /// (n x k, pre-zeroed): replays the full nonzero sweep of the (m x n)
  /// matrix, updating only its own column range in serial order.
  void (*csr_rmatmat_cols)(const std::size_t* indptr,
                           const std::size_t* indices, const double* values,
                           std::size_t m, const double* xr, double* yr,
                           std::size_t k, std::size_t c0, std::size_t c1);

  /// Haar analysis / synthesis over a k-column column-major panel
  /// (n = power of two, stride n): the level folds are elementwise adds
  /// and subtracts, vectorized over columns.
  void (*haar_analysis_cols)(const double* x, double* y, std::size_t n,
                             std::size_t k);
  void (*haar_synthesis_cols)(const double* x, double* y, std::size_t n,
                              std::size_t k);
};

/// The selected table.  First call resolves EKTELO_SIMD (unset or empty =
/// best available; an unavailable request warns on stderr and falls back
/// to the best available target); later calls return the cached choice.
const KernelTable& Active();

/// Override the active table (tests and the cross-target bench sweeps).
/// Must not be called while block kernels are in flight.
void SetActive(const KernelTable* table);

/// Reset to the startup selection (re-reads EKTELO_SIMD).
void ResetActive();

/// Targets compiled into this binary AND executable on this CPU, best
/// first.  Always contains at least the scalar table.
std::vector<const KernelTable*> AvailableTargets();

/// Find an available target by name ("scalar", "avx2", "avx512", "neon");
/// nullptr if it is not compiled in or the CPU cannot run it.
const KernelTable* FindTarget(const std::string& name);

// Per-target tables, nullptr when not compiled for this architecture
// (the CPU check is AvailableTargets'/FindTarget's job).
const KernelTable* GetScalarTable();  // never nullptr
const KernelTable* GetAvx2Table();
const KernelTable* GetAvx512Table();
const KernelTable* GetNeonTable();

}  // namespace ektelo::simd

#endif  // EKTELO_LINALG_SIMD_SIMD_H_
