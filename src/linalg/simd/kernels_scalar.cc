// Scalar dispatch target: the reference semantics of every kernel.
//
// V8 here is eight plain doubles, so the lane operations the templates
// express become eight scalar IEEE operations in lane order.  This TU is
// compiled with -ffp-contract=off AND with auto-vectorization disabled
// (see CMakeLists.txt): "scalar" genuinely executes one lane per
// instruction, making it both the portable fallback on any CPU and the
// honest baseline for the roofline rows in bench/parallel_scaling.
#include "linalg/simd/kernels_impl.h"

namespace ektelo::simd {

namespace {

struct V8Scalar {
  double v[8];

  static V8Scalar Zero() {
    V8Scalar r;
    for (int l = 0; l < 8; ++l) r.v[l] = 0.0;
    return r;
  }
  static V8Scalar Load(const double* p) {
    V8Scalar r;
    for (int l = 0; l < 8; ++l) r.v[l] = p[l];
    return r;
  }
  static V8Scalar Broadcast(double s) {
    V8Scalar r;
    for (int l = 0; l < 8; ++l) r.v[l] = s;
    return r;
  }
  static V8Scalar Add(const V8Scalar& a, const V8Scalar& b) {
    V8Scalar r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static V8Scalar Sub(const V8Scalar& a, const V8Scalar& b) {
    V8Scalar r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  static V8Scalar Mul(const V8Scalar& a, const V8Scalar& b) {
    V8Scalar r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static void Store(const V8Scalar& a, double* p) {
    for (int l = 0; l < 8; ++l) p[l] = a.v[l];
  }
};

const KernelTable kTable = MakeTable<V8Scalar>("scalar");

}  // namespace

const KernelTable* GetScalarTable() { return &kTable; }

}  // namespace ektelo::simd
