// AVX2 dispatch target: the 8 virtual lanes live in two 256-bit
// registers (lanes 0-3 and 4-7).  Loads are unaligned (vmovupd); adds
// and multiplies are plain IEEE vector ops, never FMA (the TU is built
// with -ffp-contract=off), so each lane computes bit-for-bit what the
// scalar table computes.
//
// This file is compiled with -mavx2 on x86-64 only; elsewhere it
// degrades to a stub returning nullptr so the dispatcher skips it.
#include "linalg/simd/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "linalg/simd/kernels_impl.h"

namespace ektelo::simd {

namespace {

struct V8Avx2 {
  __m256d lo, hi;

  static V8Avx2 Zero() {
    return {_mm256_setzero_pd(), _mm256_setzero_pd()};
  }
  static V8Avx2 Load(const double* p) {
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
  }
  static V8Avx2 Broadcast(double s) {
    return {_mm256_set1_pd(s), _mm256_set1_pd(s)};
  }
  static V8Avx2 Add(const V8Avx2& a, const V8Avx2& b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static V8Avx2 Sub(const V8Avx2& a, const V8Avx2& b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  static V8Avx2 Mul(const V8Avx2& a, const V8Avx2& b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  static void Store(const V8Avx2& a, double* p) {
    _mm256_storeu_pd(p, a.lo);
    _mm256_storeu_pd(p + 4, a.hi);
  }
};

const KernelTable kTable = MakeTable<V8Avx2>("avx2");

}  // namespace

const KernelTable* GetAvx2Table() { return &kTable; }

}  // namespace ektelo::simd

#else  // !defined(__AVX2__)

namespace ektelo::simd {
const KernelTable* GetAvx2Table() { return nullptr; }
}  // namespace ektelo::simd

#endif
