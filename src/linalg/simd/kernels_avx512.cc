// AVX-512 dispatch target: the 8 virtual lanes are exactly one 512-bit
// register, so the virtual lane model is native width here.  Unaligned
// loads, no FMA (built with -ffp-contract=off), no masked tail tricks —
// tails run scalar in the shared templates, keeping every lane's FP
// sequence identical to the scalar table.
//
// Compiled with -mavx512f on x86-64 only; stubbed to nullptr elsewhere.
#include "linalg/simd/simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "linalg/simd/kernels_impl.h"

namespace ektelo::simd {

namespace {

struct V8Avx512 {
  __m512d z;

  static V8Avx512 Zero() { return {_mm512_setzero_pd()}; }
  static V8Avx512 Load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static V8Avx512 Broadcast(double s) { return {_mm512_set1_pd(s)}; }
  static V8Avx512 Add(const V8Avx512& a, const V8Avx512& b) {
    return {_mm512_add_pd(a.z, b.z)};
  }
  static V8Avx512 Sub(const V8Avx512& a, const V8Avx512& b) {
    return {_mm512_sub_pd(a.z, b.z)};
  }
  static V8Avx512 Mul(const V8Avx512& a, const V8Avx512& b) {
    return {_mm512_mul_pd(a.z, b.z)};
  }
  static void Store(const V8Avx512& a, double* p) {
    _mm512_storeu_pd(p, a.z);
  }
};

const KernelTable kTable = MakeTable<V8Avx512>("avx512");

}  // namespace

const KernelTable* GetAvx512Table() { return &kTable; }

}  // namespace ektelo::simd

#else  // !defined(__AVX512F__)

namespace ektelo::simd {
const KernelTable* GetAvx512Table() { return nullptr; }
}  // namespace ektelo::simd

#endif
