#include "linalg/csr.h"

#include <algorithm>
#include <cmath>

namespace ektelo {

CsrMatrix CsrMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> triplets) {
  CsrMatrix m(rows, cols);
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t k = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (k < triplets.size() && triplets[k].row == r) {
      EK_CHECK_LT(triplets[k].col, cols);
      // Merge duplicates within the row (sorted by col).
      double v = triplets[k].value;
      std::size_t c = triplets[k].col;
      ++k;
      while (k < triplets.size() && triplets[k].row == r &&
             triplets[k].col == c) {
        v += triplets[k].value;
        ++k;
      }
      if (v != 0.0) {
        m.indices_.push_back(c);
        m.values_.push_back(v);
      }
    }
    m.indptr_[r + 1] = m.indices_.size();
  }
  EK_CHECK_EQ(k, triplets.size());
  return m;
}

CsrMatrix CsrMatrix::FromColumnStream(std::size_t rows, std::size_t cols,
                                      const std::vector<Triplet>& entries) {
  CsrMatrix m(rows, cols);
  for (const Triplet& t : entries) {
    EK_CHECK_LT(t.row, rows);
    ++m.indptr_[t.row + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) m.indptr_[r + 1] += m.indptr_[r];
  m.indices_.resize(entries.size());
  m.values_.resize(entries.size());
  std::vector<std::size_t> next(m.indptr_.begin(), m.indptr_.end() - 1);
  // Stable scatter: within a row, entries arrive in ascending column order
  // because the stream is column-grouped.
  for (const Triplet& t : entries) {
    EK_CHECK_LT(t.col, cols);
    const std::size_t pos = next[t.row]++;
    m.indices_[pos] = t.col;
    m.values_[pos] = t.value;
  }
  EK_DCHECK_ALIGNED64(m.values_.data());
  return m;
}

CsrMatrix CsrMatrix::FromRaw(std::size_t rows, std::size_t cols,
                             std::vector<std::size_t> indptr,
                             std::vector<std::size_t> indices,
                             AlignedVec values) {
  EK_CHECK_EQ(indptr.size(), rows + 1);
  EK_CHECK_EQ(indptr.front(), std::size_t{0});
  EK_CHECK_EQ(indptr.back(), indices.size());
  EK_CHECK_EQ(indices.size(), values.size());
  for (std::size_t i = 0; i < rows; ++i) EK_CHECK_LE(indptr[i], indptr[i + 1]);
  for (std::size_t c : indices) EK_CHECK_LT(c, cols);
  CsrMatrix m(rows, cols);
  m.indptr_ = std::move(indptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::Identity(std::size_t n) {
  CsrMatrix m(n, n);
  m.indices_.resize(n);
  m.values_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.indices_[i] = i;
    m.indptr_[i + 1] = i + 1;
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& d, double drop_tol) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < d.cols(); ++j)
      if (std::abs(d.At(i, j)) > drop_tol) t.push_back({i, j, d.At(i, j)});
  return FromTriplets(d.rows(), d.cols(), std::move(t));
}

Vec CsrMatrix::Matvec(const Vec& x) const {
  EK_CHECK_EQ(x.size(), cols_);
  Vec y(rows_);
  Matvec(x.data(), y.data());
  return y;
}

void CsrMatrix::Matvec(const double* x, double* y) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k)
      s += values_[k] * x[indices_[k]];
    y[i] = s;
  }
}

Vec CsrMatrix::RmatVec(const Vec& x) const {
  EK_CHECK_EQ(x.size(), rows_);
  Vec y(cols_);
  RmatVec(x.data(), y.data());
  return y;
}

void CsrMatrix::RmatVec(const double* x, double* y) const {
  std::fill(y, y + cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k)
      y[indices_[k]] += xi * values_[k];
  }
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t(cols_, rows_);
  // Counting sort by column.
  std::vector<std::size_t> count(cols_ + 1, 0);
  for (std::size_t k = 0; k < nnz(); ++k) ++count[indices_[k] + 1];
  for (std::size_t j = 0; j < cols_; ++j) count[j + 1] += count[j];
  t.indptr_ = count;
  t.indices_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::size_t> next = count;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k) {
      std::size_t pos = next[indices_[k]]++;
      t.indices_[pos] = i;
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

std::size_t CsrMatrix::MatmulUpdateBound(const CsrMatrix& other) const {
  EK_CHECK_EQ(cols_, other.rows());
  std::size_t updates = 0;
  for (std::size_t k = 0; k < nnz(); ++k)
    updates += other.indptr_[indices_[k] + 1] - other.indptr_[indices_[k]];
  return updates;
}

CsrMatrix CsrMatrix::Matmul(const CsrMatrix& other) const {
  EK_CHECK_EQ(cols_, other.rows());
  CsrMatrix r(rows_, other.cols());
  // Reserve an nnz estimate up front: the update bound caps the result
  // nnz, and reserving it avoids the repeated reallocation that
  // dominates hierarchy-product workloads.  Capped by the dense size and
  // a multiple of the input nnz so a pessimistic bound (dense-ish
  // overlap with a tiny true product) cannot eagerly allocate runaway
  // memory — beyond the cap, amortized growth takes over.
  {
    const std::size_t cap = std::min<std::size_t>(
        {MatmulUpdateBound(other), rows_ * other.cols(),
         std::max<std::size_t>(std::size_t{1} << 20,
                               8 * (nnz() + other.nnz()))});
    r.indices_.reserve(cap);
    r.values_.reserve(cap);
  }
  // Row-wise sparse accumulator.
  std::vector<double> acc(other.cols(), 0.0);
  std::vector<std::size_t> touched;
  for (std::size_t i = 0; i < rows_; ++i) {
    touched.clear();
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k) {
      const std::size_t a_col = indices_[k];
      const double a_val = values_[k];
      for (std::size_t k2 = other.indptr_[a_col]; k2 < other.indptr_[a_col + 1];
           ++k2) {
        const std::size_t j = other.indices_[k2];
        if (acc[j] == 0.0) touched.push_back(j);
        acc[j] += a_val * other.values_[k2];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (std::size_t j : touched) {
      if (acc[j] != 0.0) {
        r.indices_.push_back(j);
        r.values_.push_back(acc[j]);
      }
      acc[j] = 0.0;
    }
    r.indptr_[i + 1] = r.indices_.size();
  }
  return r;
}

CsrMatrix CsrMatrix::Kronecker(const CsrMatrix& other) const {
  CsrMatrix r(rows_ * other.rows(), cols_ * other.cols());
  r.indices_.reserve(nnz() * other.nnz());
  r.values_.reserve(nnz() * other.nnz());
  for (std::size_t ia = 0; ia < rows_; ++ia) {
    for (std::size_t ib = 0; ib < other.rows(); ++ib) {
      const std::size_t row = ia * other.rows() + ib;
      for (std::size_t ka = indptr_[ia]; ka < indptr_[ia + 1]; ++ka) {
        for (std::size_t kb = other.indptr_[ib]; kb < other.indptr_[ib + 1];
             ++kb) {
          r.indices_.push_back(indices_[ka] * other.cols() +
                               other.indices_[kb]);
          r.values_.push_back(values_[ka] * other.values_[kb]);
        }
      }
      r.indptr_[row + 1] = r.indices_.size();
    }
  }
  return r;
}

CsrMatrix CsrMatrix::VStack(const CsrMatrix& other) const {
  EK_CHECK_EQ(cols_, other.cols());
  CsrMatrix r(rows_ + other.rows(), cols_);
  r.indices_ = indices_;
  r.indices_.insert(r.indices_.end(), other.indices_.begin(),
                    other.indices_.end());
  r.values_ = values_;
  r.values_.insert(r.values_.end(), other.values_.begin(),
                   other.values_.end());
  for (std::size_t i = 0; i < rows_; ++i) r.indptr_[i + 1] = indptr_[i + 1];
  for (std::size_t i = 0; i < other.rows(); ++i)
    r.indptr_[rows_ + i + 1] = nnz() + other.indptr_[i + 1];
  return r;
}

CsrMatrix CsrMatrix::VStackMany(const std::vector<CsrMatrix>& parts) {
  EK_CHECK(!parts.empty());
  const std::size_t cols = parts[0].cols();
  std::size_t rows = 0, nnz = 0;
  for (const auto& p : parts) {
    EK_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
    nnz += p.nnz();
  }
  CsrMatrix r(rows, cols);
  r.indices_.reserve(nnz);
  r.values_.reserve(nnz);
  std::size_t row0 = 0;
  for (const auto& p : parts) {
    const std::size_t base = r.indices_.size();
    r.indices_.insert(r.indices_.end(), p.indices_.begin(), p.indices_.end());
    r.values_.insert(r.values_.end(), p.values_.begin(), p.values_.end());
    for (std::size_t i = 0; i < p.rows(); ++i)
      r.indptr_[row0 + i + 1] = base + p.indptr_[i + 1];
    row0 += p.rows();
  }
  return r;
}

CsrMatrix CsrMatrix::HStackMany(const std::vector<CsrMatrix>& parts) {
  EK_CHECK(!parts.empty());
  const std::size_t rows = parts[0].rows();
  std::size_t cols = 0, nnz = 0;
  for (const auto& p : parts) {
    EK_CHECK_EQ(p.rows(), rows);
    cols += p.cols();
    nnz += p.nnz();
  }
  CsrMatrix r(rows, cols);
  r.indices_.resize(nnz);
  r.values_.resize(nnz);
  // Row pointers: row i holds row i of every part, in part order (which
  // also keeps column indices ascending, since offsets increase).
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t len = 0;
    for (const auto& p : parts) len += p.indptr_[i + 1] - p.indptr_[i];
    r.indptr_[i + 1] = r.indptr_[i] + len;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t pos = r.indptr_[i], off = 0;
    for (const auto& p : parts) {
      for (std::size_t k = p.indptr_[i]; k < p.indptr_[i + 1]; ++k, ++pos) {
        r.indices_[pos] = off + p.indices_[k];
        r.values_[pos] = p.values_[k];
      }
      off += p.cols();
    }
  }
  return r;
}

CsrMatrix CsrMatrix::Abs() const {
  CsrMatrix r = *this;
  for (double& v : r.values_) v = std::abs(v);
  return r;
}

CsrMatrix CsrMatrix::Sqr() const {
  CsrMatrix r = *this;
  for (double& v : r.values_) v = v * v;
  return r;
}

CsrMatrix CsrMatrix::ScaleRows(const Vec& w) const {
  EK_CHECK_EQ(w.size(), rows_);
  CsrMatrix r = *this;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k)
      r.values_[k] *= w[i];
  return r;
}

double CsrMatrix::MaxColNormL1() const {
  Vec col(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k)
      col[indices_[k]] += std::abs(values_[k]);
  return col.empty() ? 0.0 : *std::max_element(col.begin(), col.end());
}

double CsrMatrix::MaxColNormL2() const {
  Vec col(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k)
      col[indices_[k]] += values_[k] * values_[k];
  double m = col.empty() ? 0.0 : *std::max_element(col.begin(), col.end());
  return std::sqrt(m);
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = indptr_[i]; k < indptr_[i + 1]; ++k)
      d.At(i, indices_[k]) += values_[k];
  return d;
}

}  // namespace ektelo
