#include "linalg/haar.h"

#include <algorithm>

#include "linalg/simd/simd.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {
std::size_t Log2(std::size_t n) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}
}  // namespace

void HaarAnalysis(const double* x, double* y, std::size_t n) {
  EK_CHECK(IsPowerOfTwo(n));
  const std::size_t k = Log2(n);
  // sums holds block sums for the current level, refined top-down.
  std::vector<double> sums(x, x + n);
  // Collapse to block sums level by level, recording differences.
  // Level j has 2^j blocks of size n/2^j; we build from the finest level up.
  // sums_at_level[j][b] = sum of block b at level j.  We compute the finest
  // level (j = k: singleton blocks) and fold upward.
  std::vector<double> cur(sums);  // level k (size n)
  std::vector<double> nxt;
  for (std::size_t j = k; j-- > 0;) {
    const std::size_t blocks = std::size_t{1} << j;
    nxt.assign(blocks, 0.0);
    for (std::size_t b = 0; b < blocks; ++b) {
      const double left = cur[2 * b];
      const double right = cur[2 * b + 1];
      nxt[b] = left + right;
      y[blocks + b] = left - right;  // row index 2^j + b
    }
    cur.swap(nxt);
  }
  y[0] = cur[0];  // total
  if (n == 1) y[0] = x[0];
}

void HaarSynthesis(const double* x, double* y, std::size_t n) {
  EK_CHECK(IsPowerOfTwo(n));
  const std::size_t k = Log2(n);
  // Start from the root contribution and push signs down level by level.
  // value[b] at level j accumulates the contribution of all rows covering
  // block b.
  std::vector<double> cur(1, x[0]);
  std::vector<double> nxt;
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t blocks = std::size_t{1} << j;
    nxt.assign(blocks * 2, 0.0);
    for (std::size_t b = 0; b < blocks; ++b) {
      const double c = x[blocks + b];
      nxt[2 * b] = cur[b] + c;
      nxt[2 * b + 1] = cur[b] - c;
    }
    cur.swap(nxt);
  }
  std::copy(cur.begin(), cur.end(), y);
}

namespace {

// Each transformed column is independent of the others, so the blocked
// wavelet kernels shard the panel over contiguous column ranges: a shard
// runs the dispatched fold on its own sub-panel (columns are contiguous in
// column-major storage), which keeps every column's FP sequence identical
// to the serial call at any thread count.  The per-level butterflies
// (sum/difference over the columns of a block) vectorize across columns
// through the active kernel table — elementwise adds and subtracts, so
// results are bitwise-identical on every dispatch target.
std::size_t HaarGrain(std::size_t n) {
  return std::max<std::size_t>(1, std::size_t{32768} / std::max<std::size_t>(
                                                           n, 1));
}

}  // namespace

void HaarAnalysisBlock(const double* x, double* y, std::size_t n,
                       std::size_t k) {
  EK_CHECK(IsPowerOfTwo(n));
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(k, HaarGrain(n), [&](std::size_t c0, std::size_t c1) {
    kt.haar_analysis_cols(x + c0 * n, y + c0 * n, n, c1 - c0);
  });
}

void HaarSynthesisBlock(const double* x, double* y, std::size_t n,
                        std::size_t k) {
  EK_CHECK(IsPowerOfTwo(n));
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(k, HaarGrain(n), [&](std::size_t c0, std::size_t c1) {
    kt.haar_synthesis_cols(x + c0 * n, y + c0 * n, n, c1 - c0);
  });
}

CsrMatrix HaarMatrixSparse(std::size_t n) {
  EK_CHECK(IsPowerOfTwo(n));
  const std::size_t k = Log2(n);
  std::vector<Triplet> t;
  t.reserve(n * (k + 1));
  for (std::size_t j = 0; j < n; ++j) t.push_back({0, j, 1.0});
  for (std::size_t lev = 0; lev < k; ++lev) {
    const std::size_t blocks = std::size_t{1} << lev;
    const std::size_t block_size = n / blocks;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t row = blocks + b;
      const std::size_t start = b * block_size;
      for (std::size_t j = 0; j < block_size / 2; ++j)
        t.push_back({row, start + j, 1.0});
      for (std::size_t j = block_size / 2; j < block_size; ++j)
        t.push_back({row, start + j, -1.0});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t));
}

}  // namespace ektelo
