// Block: a column-major n x k multi-vector (a panel of k right-hand
// sides), the unit of work of the blocked operator core.
//
// Every column is contiguous, so a Block is interchangeable with k dense
// vectors: ColPtr(c) can be handed to any single-vector kernel.  The
// blocked BLAS-style helpers below (dense and CSR A*B / A^T*B over k RHS
// in one sweep of A) amortize the cost of touching A — row pointers,
// column indices, dense rows — over all k columns, which is where the
// dense/sparse representation advantage of Sec. 10.2 comes from.
//
// Storage is 64-byte aligned and padded to whole cachelines
// (util/aligned.h), and the kernels themselves are vectorized behind the
// runtime-dispatched kernel table in linalg/simd/ — bitwise-identical
// across dispatch targets (scalar/AVX2/AVX-512/NEON) and across thread
// counts (each ParallelFor shard owns disjoint outputs and runs the same
// lane sequence the serial sweep would).
#ifndef EKTELO_LINALG_BLOCK_H_
#define EKTELO_LINALG_BLOCK_H_

#include <algorithm>
#include <cstddef>

#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/vec.h"
#include "util/aligned.h"

namespace ektelo {

class Block {
 public:
  Block() : rows_(0), cols_(0) {}
  Block(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// The n x k panel [e_{first}, ..., e_{first+k-1}] of the n x n identity.
  static Block IdentityPanel(std::size_t n, std::size_t first,
                             std::size_t k);
  /// Column c = v for all c (broadcast).
  static Block FromColumn(const Vec& v, std::size_t k);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t i, std::size_t c) { return data_[c * rows_ + i]; }
  double At(std::size_t i, std::size_t c) const {
    return data_[c * rows_ + i];
  }

  const double* ColPtr(std::size_t c) const { return &data_[c * rows_]; }
  double* ColPtr(std::size_t c) { return &data_[c * rows_]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  Vec Col(std::size_t c) const;
  void SetCol(std::size_t c, const Vec& v);

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t rows_, cols_;
  AlignedVec data_;
};

// Blocked kernels over raw column-major storage.  X is (A.cols x k),
// Y is (A.rows x k) for the forward direction; the *T* variants take
// X (A.rows x k) and produce Y (A.cols x k).  X and Y must not alias.
// All four shard across the thread pool and dispatch their inner loops
// through simd::Active(); buffers may be unaligned (aligned buffers are
// a perf nicety, never a correctness requirement).

/// Y = A X for dense A: one sweep over A's rows, all k columns at once,
/// each entry an 8-lane reduction-tree dot product (linalg/simd/simd.h).
void DenseMatmat(const DenseMatrix& a, const double* x, double* y,
                 std::size_t k);
/// Y = A^T X for dense A.
void DenseRmatMat(const DenseMatrix& a, const double* x, double* y,
                  std::size_t k);

/// Y = A X for CSR A: one sweep over the nonzeros, each (i, j, v) updating
/// all k columns, so index loads are amortized k-fold.
void CsrMatmat(const CsrMatrix& a, const double* x, double* y,
               std::size_t k);
/// Y = A^T X for CSR A, same single-sweep structure.
void CsrRmatMat(const CsrMatrix& a, const double* x, double* y,
                std::size_t k);

}  // namespace ektelo

#endif  // EKTELO_LINALG_BLOCK_H_
