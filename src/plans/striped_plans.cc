#include "plans/striped_plans.h"

#include <algorithm>
#include <utility>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/lsmr.h"
#include "ops/inference.h"
#include "ops/selection.h"
#include "plans/plans.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

namespace {

Status CheckStripe(const std::vector<std::size_t>& dims,
                   std::size_t stripe_dim) {
  if (stripe_dim >= dims.size())
    return Status::InvalidArgument("stripe_dim out of range");
  return Status::Ok();
}

class HbStripedPlan final : public Plan {
 public:
  HbStripedPlan()
      : Plan("HB-Striped",
             PlanTraits{"PS TP[ SHB LM ] LS", DomainKind::kMultiDim,
                        false}) {}

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override {
    EK_ASSIGN_OR_RETURN(std::vector<std::size_t> dims, ResolveDims(x, in));
    EK_RETURN_IF_ERROR(CheckStripe(dims, in.stripe_dim));
    const std::size_t ns = dims[in.stripe_dim];
    const double eps = scope.remaining();
    Partition stripes = StripePartition(dims, in.stripe_dim);
    EK_ASSIGN_OR_RETURN(std::vector<ProtectedVector> children,
                        x.SplitByPartition(stripes));
    EK_ASSIGN_OR_RETURN(std::vector<BudgetScope> child_scopes,
                        scope.SplitParallel(children.size()));
    auto groups = stripes.Groups();

    // HB selection is data-independent: one strategy shared by all
    // stripes.
    LinOpPtr hb = ApplyMode(HbSelect(ns), in.mode);
    const double sens = hb->SensitivityL1();

    // Stripes are partition children under a SplitParallel scope:
    // disjoint sources, disjoint sub-scopes, disjoint output cells.  They
    // run concurrently through the pool; per-stripe noise comes from each
    // child's own lineage-seeded stream, so the result is
    // bitwise-identical to the serial stripe loop at any thread count.
    Vec xhat(x.size(), 0.0);
    EK_RETURN_IF_ERROR(ParallelBranches(
        children.size(), [&](std::size_t s) -> Status {
          // Full eps per stripe: parallel composition makes the kernel
          // (and scope) charge the max across stripes, not the sum.
          EK_ASSIGN_OR_RETURN(
              Vec y, children[s].Laplace(*hb, eps, child_scopes[s]));
          // Per-stripe LS (equivalent to the global solve: measurements
          // do not cross stripes).
          MeasurementSet mset;
          mset.Add(hb, std::move(y), sens / eps);
          Vec local = LeastSquaresInference(mset);
          const auto& cells = groups[s];
          EK_CHECK_EQ(local.size(), cells.size());
          for (std::size_t k = 0; k < cells.size(); ++k)
            xhat[cells[k]] = local[k];
          return Status::Ok();
        }));
    return xhat;
  }
};

class HbStripedKronPlan final : public Plan {
 public:
  explicit HbStripedKronPlan(bool materialize_full)
      : Plan(materialize_full ? "HB-Striped_kron_flat" : "HB-Striped_kron",
             PlanTraits{"SS LM LS", DomainKind::kMultiDim, false}),
        materialize_full_(materialize_full) {}

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override {
    EK_ASSIGN_OR_RETURN(std::vector<std::size_t> dims, ResolveDims(x, in));
    EK_RETURN_IF_ERROR(CheckStripe(dims, in.stripe_dim));
    // Convert the factors per mode but keep the Kronecker structure; the
    // "basic sparse" ablation flattens the whole product instead.
    std::vector<LinOpPtr> factors;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      LinOpPtr f = (d == in.stripe_dim) ? HbSelect(dims[d])
                                        : MakeIdentityOp(dims[d]);
      factors.push_back(ApplyMode(std::move(f), in.mode));
    }
    LinOpPtr m = MakeKronecker(std::move(factors));
    if (materialize_full_) m = MakeSparse(m->MaterializeSparse());
    const double sens = m->SensitivityL1();
    const double eps = scope.remaining();
    EK_ASSIGN_OR_RETURN(Vec y, x.Laplace(*m, eps, scope));
    MeasurementSet mset;
    mset.Add(m, std::move(y), sens / eps);
    return LeastSquaresInference(mset);
  }

 private:
  bool materialize_full_;
};

class DawaStripedPlan final : public Plan {
 public:
  explicit DawaStripedPlan(const DawaStripedOptions& opts)
      : Plan("DAWA-Striped",
             PlanTraits{"PS TP[ PD TR SG LM ] LS", DomainKind::kMultiDim,
                        false}),
        opts_(opts) {}

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override {
    EK_ASSIGN_OR_RETURN(std::vector<std::size_t> dims, ResolveDims(x, in));
    EK_RETURN_IF_ERROR(CheckStripe(dims, in.stripe_dim));
    const std::size_t ns = dims[in.stripe_dim];
    Partition stripes = StripePartition(dims, in.stripe_dim);
    EK_ASSIGN_OR_RETURN(std::vector<ProtectedVector> children,
                        x.SplitByPartition(stripes));
    EK_ASSIGN_OR_RETURN(std::vector<BudgetScope> child_scopes,
                        scope.SplitParallel(children.size()));
    auto groups = stripes.Groups();

    // The subplan workload: all prefix ranges along the stripe (the
    // income ranges the census workload asks for).
    std::vector<RangeQuery> stripe_workload;
    stripe_workload.reserve(ns);
    for (std::size_t i = 0; i < ns; ++i) stripe_workload.push_back({0, i});

    // Each stripe runs the whole data-adaptive DAWA pipeline — partition
    // selection, reduction, GreedyH, measurement, local LS — as an
    // independent branch: every kernel interaction stays inside the
    // stripe's own subtree (its partition child and sources derived from
    // it), so branches never share a noise stream and the concurrent run
    // reproduces the serial one bitwise.
    Vec xhat(x.size(), 0.0);
    EK_RETURN_IF_ERROR(ParallelBranches(
        children.size(), [&](std::size_t s) -> Status {
          // Parallel sub-scope: partition share, then measurement share.
          EK_ASSIGN_OR_RETURN(
              std::vector<BudgetScope> stages,
              child_scopes[s].Split(
                  {opts_.partition_frac, 1.0 - opts_.partition_frac}));
          const double eps1 = stages[0].remaining();
          const double eps2 = stages[1].remaining();
          // PD: data-adaptive partition of this stripe.
          EK_ASSIGN_OR_RETURN(
              Partition p,
              DawaPartitionSelect(children[s], eps1, stages[0], opts_.dawa));
          EK_ASSIGN_OR_RETURN(ProtectedVector reduced,
                              children[s].ReduceByPartition(p));
          auto reduced_workload =
              MapRangesToIntervalPartition(stripe_workload, p);
          LinOpPtr strategy = ApplyMode(
              GreedyHSelect(reduced_workload, p.num_groups()), in.mode);
          const double sens = strategy->SensitivityL1();
          EK_ASSIGN_OR_RETURN(Vec y,
                              reduced.Laplace(*strategy, eps2, stages[1]));
          MeasurementSet mset;
          mset.Add(MakeProduct(strategy, p.ReduceOp()), std::move(y),
                   sens / eps2);
          Vec local = LeastSquaresInference(mset);
          const auto& cells = groups[s];
          EK_CHECK_EQ(local.size(), cells.size());
          for (std::size_t k = 0; k < cells.size(); ++k)
            xhat[cells[k]] = local[k];
          return Status::Ok();
        }));
    return xhat;
  }

 private:
  DawaStripedOptions opts_;
};

}  // namespace

std::unique_ptr<Plan> MakeHbStripedPlan() {
  return std::make_unique<HbStripedPlan>();
}

std::unique_ptr<Plan> MakeHbStripedKronPlan(bool materialize_full) {
  return std::make_unique<HbStripedKronPlan>(materialize_full);
}

std::unique_ptr<Plan> MakeDawaStripedPlan(const DawaStripedOptions& opts) {
  return std::make_unique<DawaStripedPlan>(opts);
}

namespace plan_registration {

void RegisterStripedPlans(PlanRegistry& registry) {
  registry.MustRegister(MakeDawaStripedPlan({}));
  registry.MustRegister(MakeHbStripedPlan());
  registry.MustRegister(MakeHbStripedKronPlan(/*materialize_full=*/false));
}

}  // namespace plan_registration

// ------------------------------------------------- deprecated Run* shims

namespace {

PlanInput StripeInput(std::size_t stripe_dim) {
  PlanInput in;
  in.stripe_dim = stripe_dim;
  return in;
}

}  // namespace

StatusOr<Vec> RunHbStripedPlan(const PlanContext& ctx,
                               std::size_t stripe_dim) {
  return ExecuteWithContext(PlanRegistry::Global().MustFind("HB-Striped"),
                            ctx, StripeInput(stripe_dim));
}

StatusOr<Vec> RunHbStripedKronPlan(const PlanContext& ctx,
                                   std::size_t stripe_dim,
                                   bool materialize_full) {
  return ExecuteWithContext(*MakeHbStripedKronPlan(materialize_full), ctx,
                            StripeInput(stripe_dim));
}

StatusOr<Vec> RunDawaStripedPlan(const PlanContext& ctx,
                                 std::size_t stripe_dim,
                                 const DawaStripedOptions& opts) {
  return ExecuteWithContext(*MakeDawaStripedPlan(opts), ctx,
                            StripeInput(stripe_dim));
}

}  // namespace ektelo
