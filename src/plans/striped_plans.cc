#include "plans/striped_plans.h"

#include <algorithm>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/lsmr.h"
#include "ops/inference.h"
#include "ops/selection.h"
#include "plans/plans.h"
#include "util/check.h"

namespace ektelo {

namespace {

Status CheckStripe(const PlanContext& ctx, std::size_t stripe_dim) {
  if (ctx.dims.size() < 2)
    return Status::InvalidArgument("striped plans need >= 2 dimensions");
  if (stripe_dim >= ctx.dims.size())
    return Status::InvalidArgument("stripe_dim out of range");
  return Status::Ok();
}

}  // namespace

StatusOr<Vec> RunHbStripedPlan(const PlanContext& ctx,
                               std::size_t stripe_dim) {
  EK_RETURN_IF_ERROR(CheckStripe(ctx, stripe_dim));
  const std::size_t ns = ctx.dims[stripe_dim];
  Partition stripes = StripePartition(ctx.dims, stripe_dim);
  EK_ASSIGN_OR_RETURN(std::vector<SourceId> children,
                      ctx.kernel->VSplitByPartition(ctx.x, stripes));
  auto groups = stripes.Groups();

  // HB selection is data-independent: one strategy shared by all stripes.
  LinOpPtr hb = ApplyMode(HbSelect(ns), ctx.mode);
  const double sens = hb->SensitivityL1();

  Vec xhat(ctx.n(), 0.0);
  for (std::size_t s = 0; s < children.size(); ++s) {
    EK_ASSIGN_OR_RETURN(Vec y,
                        ctx.kernel->VectorLaplace(children[s], *hb, ctx.eps));
    // Per-stripe LS (equivalent to the global solve: measurements do not
    // cross stripes).
    MeasurementSet mset;
    mset.Add(hb, std::move(y), sens / ctx.eps);
    Vec local = LeastSquaresInference(mset);
    const auto& cells = groups[s];
    EK_CHECK_EQ(local.size(), cells.size());
    for (std::size_t k = 0; k < cells.size(); ++k) xhat[cells[k]] = local[k];
  }
  return xhat;
}

StatusOr<Vec> RunHbStripedKronPlan(const PlanContext& ctx,
                                   std::size_t stripe_dim,
                                   bool materialize_full) {
  EK_RETURN_IF_ERROR(CheckStripe(ctx, stripe_dim));
  // Convert the factors per mode but keep the Kronecker structure; the
  // "basic sparse" ablation flattens the whole product instead.
  std::vector<LinOpPtr> factors;
  for (std::size_t d = 0; d < ctx.dims.size(); ++d) {
    LinOpPtr f = (d == stripe_dim) ? HbSelect(ctx.dims[d])
                                   : MakeIdentityOp(ctx.dims[d]);
    factors.push_back(ApplyMode(std::move(f), ctx.mode));
  }
  LinOpPtr m = MakeKronecker(std::move(factors));
  if (materialize_full) m = MakeSparse(m->MaterializeSparse());
  const double sens = m->SensitivityL1();
  EK_ASSIGN_OR_RETURN(Vec y, ctx.kernel->VectorLaplace(ctx.x, *m, ctx.eps));
  MeasurementSet mset;
  mset.Add(m, std::move(y), sens / ctx.eps);
  return LeastSquaresInference(mset);
}

StatusOr<Vec> RunDawaStripedPlan(const PlanContext& ctx,
                                 std::size_t stripe_dim,
                                 const DawaStripedOptions& opts) {
  EK_RETURN_IF_ERROR(CheckStripe(ctx, stripe_dim));
  const std::size_t ns = ctx.dims[stripe_dim];
  Partition stripes = StripePartition(ctx.dims, stripe_dim);
  EK_ASSIGN_OR_RETURN(std::vector<SourceId> children,
                      ctx.kernel->VSplitByPartition(ctx.x, stripes));
  auto groups = stripes.Groups();

  // The subplan workload: all prefix ranges along the stripe (the income
  // ranges the census workload asks for).
  std::vector<RangeQuery> stripe_workload;
  stripe_workload.reserve(ns);
  for (std::size_t i = 0; i < ns; ++i) stripe_workload.push_back({0, i});

  const double eps1 = ctx.eps * opts.partition_frac;
  const double eps2 = ctx.eps - eps1;

  Vec xhat(ctx.n(), 0.0);
  for (std::size_t s = 0; s < children.size(); ++s) {
    // PD: data-adaptive partition of this stripe.
    EK_ASSIGN_OR_RETURN(
        Partition p,
        DawaPartitionSelect(ctx.kernel, children[s], eps1, opts.dawa));
    EK_ASSIGN_OR_RETURN(SourceId reduced,
                        ctx.kernel->VReduceByPartition(children[s], p));
    auto reduced_workload =
        MapRangesToIntervalPartition(stripe_workload, p);
    LinOpPtr strategy =
        ApplyMode(GreedyHSelect(reduced_workload, p.num_groups()), ctx.mode);
    const double sens = strategy->SensitivityL1();
    EK_ASSIGN_OR_RETURN(Vec y,
                        ctx.kernel->VectorLaplace(reduced, *strategy, eps2));
    MeasurementSet mset;
    mset.Add(MakeProduct(strategy, p.ReduceOp()), std::move(y), sens / eps2);
    Vec local = LeastSquaresInference(mset);
    const auto& cells = groups[s];
    EK_CHECK_EQ(local.size(), cells.size());
    for (std::size_t k = 0; k < cells.size(); ++k) xhat[cells[k]] = local[k];
  }
  return xhat;
}

}  // namespace ektelo
