#include "plans/registry.h"

#include <utility>

#include "util/check.h"

namespace ektelo {

StatusOr<std::vector<std::size_t>> Plan::ResolveDims(
    const ProtectedVector& x, const PlanInput& in) const {
  std::vector<std::size_t> dims = in.dims;
  if (dims.empty()) dims = {x.size()};
  std::size_t total = 1;
  for (std::size_t d : dims) total *= d;
  if (total != x.size())
    return Status::InvalidArgument(
        "dims product " + std::to_string(total) +
        " does not match vector size " + std::to_string(x.size()));
  switch (domain()) {
    case DomainKind::k1D:
      break;  // hint only: these plans flatten arbitrary shapes
    case DomainKind::k2D:
      if (dims.size() != 2)
        return Status::InvalidArgument(name() + " needs a 2D domain");
      break;
    case DomainKind::kMultiDim:
      if (dims.size() < 2)
        return Status::InvalidArgument(name() +
                                       " needs >= 2 dimensions");
      break;
  }
  return dims;
}

PlanRegistry& PlanRegistry::Global() {
  static PlanRegistry* registry = [] {
    auto* r = new PlanRegistry();
    plan_registration::RegisterCatalogPlans(*r);
    plan_registration::RegisterGridPlans(*r);
    plan_registration::RegisterStripedPlans(*r);
    return r;
  }();
  return *registry;
}

Status PlanRegistry::Register(std::unique_ptr<Plan> plan) {
  EK_CHECK(plan != nullptr);
  if (Find(plan->name()) != nullptr)
    return Status::InvalidArgument("duplicate plan name: " + plan->name());
  plans_.push_back(std::move(plan));
  return Status::Ok();
}

void PlanRegistry::MustRegister(std::unique_ptr<Plan> plan) {
  Status st = Register(std::move(plan));
  EK_CHECK(st.ok());
}

const Plan* PlanRegistry::Find(std::string_view name) const {
  for (const auto& p : plans_)
    if (p->name() == name) return p.get();
  return nullptr;
}

const Plan& PlanRegistry::MustFind(std::string_view name) const {
  const Plan* plan = Find(name);
  EK_CHECK(plan != nullptr);
  return *plan;
}

std::vector<const Plan*> PlanRegistry::Catalog() const {
  std::vector<const Plan*> out;
  out.reserve(plans_.size());
  for (const auto& p : plans_) out.push_back(p.get());
  return out;
}

StatusOr<Vec> ExecuteWithContext(const Plan& plan, const PlanContext& ctx,
                                 PlanInput in) {
  EK_ASSIGN_OR_RETURN(ProtectedVector x,
                      ProtectedVector::Wrap(ctx.kernel, ctx.x));
  in.dims = ctx.dims;
  in.mode = ctx.mode;
  in.rng = ctx.rng;
  BudgetScope scope(ctx.eps);
  return plan.Execute(x, scope, in);
}

PlanRegistrar::PlanRegistrar(std::unique_ptr<Plan> plan) {
  Status st = PlanRegistry::Global().Register(std::move(plan));
  EK_CHECK(st.ok());
}

}  // namespace ektelo
