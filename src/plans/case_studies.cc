#include "plans/case_studies.h"

#include <algorithm>

#include "matrix/implicit_ops.h"
#include "ops/inference.h"
#include "util/check.h"

namespace ektelo {

StatusOr<Vec> RunCdfEstimatorPlan(ProtectedKernel* kernel,
                                  const CdfPlanOptions& opts) {
  // Lines 2-4: transformations.
  EK_ASSIGN_OR_RETURN(SourceId filtered,
                      kernel->TWhere(kernel->root(), opts.filter));
  EK_ASSIGN_OR_RETURN(SourceId selected,
                      kernel->TSelect(filtered, {opts.value_attr}));
  EK_ASSIGN_OR_RETURN(SourceId x, kernel->TVectorize(selected));
  const std::size_t n = kernel->VectorSize(x);

  // Line 5: AHPpartition with eps/2.
  EK_ASSIGN_OR_RETURN(Partition p, AhpPartitionSelect(kernel, x,
                                                      opts.eps / 2.0,
                                                      opts.ahp));
  // Line 6: reduce.
  EK_ASSIGN_OR_RETURN(SourceId reduced, kernel->VReduceByPartition(x, p));
  // Lines 7-8: Identity selection + Vector Laplace with eps/2.
  EK_ASSIGN_OR_RETURN(
      Vec y, kernel->VectorLaplace(reduced, *MakeIdentityOp(p.num_groups()),
                                   opts.eps / 2.0));
  // Line 9: NNLS(P, y) on the original salary domain.
  MeasurementSet mset;
  mset.Add(p.ReduceOp(), std::move(y), 2.0 / opts.eps);
  Vec xhat = NnlsInference(mset);
  EK_CHECK_EQ(xhat.size(), n);

  // Lines 10-11: W_pre * xhat.
  return MakePrefixOp(n)->Apply(xhat);
}

StatusOr<Vec> RunPrivBayesPlan(ProtectedKernel* kernel, const Schema& schema,
                               double eps, Rng* rng,
                               const PrivBayesOptions& opts) {
  EK_ASSIGN_OR_RETURN(
      PrivBayesResult result,
      PrivBayesSelectAndMeasure(kernel, kernel->root(), schema, eps, rng,
                                opts));
  // The original system releases sampled synthetic data; its sampling
  // variance is part of the baseline's error profile.
  return PrivBayesSampleEstimate(schema, result, rng);
}

StatusOr<Vec> RunPrivBayesLsPlan(ProtectedKernel* kernel,
                                 const Schema& schema, double eps, Rng* rng,
                                 const PrivBayesOptions& opts) {
  EK_ASSIGN_OR_RETURN(
      PrivBayesResult result,
      PrivBayesSelectAndMeasure(kernel, kernel->root(), schema, eps, rng,
                                opts));
  return LeastSquaresInference(result.measurements);
}

}  // namespace ektelo
