#include "plans/case_studies.h"

#include <algorithm>

#include "matrix/implicit_ops.h"
#include "ops/inference.h"
#include "util/check.h"

namespace ektelo {

StatusOr<Vec> RunCdfEstimatorPlan(ProtectedKernel* kernel,
                                  const CdfPlanOptions& opts) {
  // Lines 2-4: transformations, through the typed table handles — a
  // vector op on a table source is now a compile error, not a kernel
  // refusal.
  ProtectedTable root = ProtectedTable::Root(kernel);
  EK_ASSIGN_OR_RETURN(ProtectedTable filtered, root.Where(opts.filter));
  EK_ASSIGN_OR_RETURN(ProtectedTable selected,
                      filtered.Select({opts.value_attr}));
  EK_ASSIGN_OR_RETURN(ProtectedVector x, selected.Vectorize());
  const std::size_t n = x.size();

  // The plan's allowance, split half for partition selection, half for
  // measurement (Algorithm 1's eps/2 + eps/2).
  BudgetScope scope(opts.eps);
  EK_ASSIGN_OR_RETURN(std::vector<BudgetScope> stages,
                      scope.Split({0.5, 0.5}));

  // Line 5: AHPpartition with the selection share.
  EK_ASSIGN_OR_RETURN(
      Partition p,
      AhpPartitionSelect(x, stages[0].remaining(), stages[0], opts.ahp));
  // Line 6: reduce.
  EK_ASSIGN_OR_RETURN(ProtectedVector reduced, x.ReduceByPartition(p));
  // Lines 7-8: Identity selection + Vector Laplace with the measurement
  // share.
  EK_ASSIGN_OR_RETURN(
      Vec y, reduced.Laplace(*MakeIdentityOp(p.num_groups()),
                             stages[1].remaining(), stages[1]));
  // Line 9: NNLS(P, y) on the original salary domain.
  MeasurementSet mset;
  mset.Add(p.ReduceOp(), std::move(y), 2.0 / opts.eps);
  Vec xhat = NnlsInference(mset);
  EK_CHECK_EQ(xhat.size(), n);

  // Lines 10-11: W_pre * xhat.
  return MakePrefixOp(n)->Apply(xhat);
}

StatusOr<Vec> RunPrivBayesPlan(ProtectedKernel* kernel, const Schema& schema,
                               double eps, Rng* rng,
                               const PrivBayesOptions& opts) {
  EK_ASSIGN_OR_RETURN(
      PrivBayesResult result,
      PrivBayesSelectAndMeasure(kernel, kernel->root(), schema, eps, rng,
                                opts));
  // The original system releases sampled synthetic data; its sampling
  // variance is part of the baseline's error profile.
  return PrivBayesSampleEstimate(schema, result, rng);
}

StatusOr<Vec> RunPrivBayesLsPlan(ProtectedKernel* kernel,
                                 const Schema& schema, double eps, Rng* rng,
                                 const PrivBayesOptions& opts) {
  EK_ASSIGN_OR_RETURN(
      PrivBayesResult result,
      PrivBayesSelectAndMeasure(kernel, kernel->root(), schema, eps, rng,
                                opts));
  return LeastSquaresInference(result.measurements);
}

}  // namespace ektelo
