// Plan execution context shared by every plan in the Fig. 2 catalog.
//
// A plan is a client-space function: it receives a handle to a protected
// vector source plus public metadata (domain shape, budget, matrix mode)
// and returns a differentially-private estimate xhat of the full data
// vector.  All private interaction goes through the ProtectedKernel; the
// privacy guarantee (Theorem 4.1) therefore holds for arbitrary plan code.
//
// MatrixMode selects the physical representation of measurement matrices
// (Sec. 10.2's dense/sparse/implicit comparison): plans build implicit
// operators and convert them per mode, so the same plan logic exercises
// all three implementations.
#ifndef EKTELO_PLANS_PLAN_H_
#define EKTELO_PLANS_PLAN_H_

#include <cstddef>
#include <vector>

#include "kernel/kernel.h"
#include "matrix/linop.h"
#include "util/rng.h"
#include "util/status.h"

namespace ektelo {

enum class MatrixMode { kDense, kSparse, kImplicit };

const char* MatrixModeName(MatrixMode mode);

/// Convert an implicit operator to the requested physical representation
/// (kImplicit is the identity conversion; the others materialize).
LinOpPtr ApplyMode(LinOpPtr op, MatrixMode mode);

/// DEPRECATED legacy execution context, kept for the Run*Plan shims: new
/// code passes a typed ProtectedVector handle, a BudgetScope and a
/// PlanInput to Plan::Execute instead (see plans/registry.h).
struct PlanContext {
  ProtectedKernel* kernel = nullptr;
  SourceId x = 0;                  // protected vector source
  std::vector<std::size_t> dims;   // public domain shape
  double eps = 0.1;
  MatrixMode mode = MatrixMode::kImplicit;
  Rng* rng = nullptr;              // client-side randomness

  std::size_t n() const {
    std::size_t total = 1;
    for (std::size_t d : dims) total *= d;
    return total;
  }
};

}  // namespace ektelo

#endif  // EKTELO_PLANS_PLAN_H_
