#include "plans/grid_plans.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "matrix/implicit_ops.h"
#include "ops/inference.h"
#include "ops/partition_select.h"
#include "ops/selection.h"
#include "plans/pipeline.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

std::unique_ptr<Plan> MakeQuadtreePlan() {
  return std::make_unique<PipelinePlan>(
      "QuadTree", PlanTraits{"SQ LM LS", DomainKind::k2D, false},
      std::vector<Stage>{
          Select([](const StageContext& sc) -> StatusOr<LinOpPtr> {
            return QuadtreeSelect(sc.dims[0], sc.dims[1]);
          }),
          Measure(), Infer(InferKind::kLeastSquares)});
}

namespace {

class UniformGridPlan final : public Plan {
 public:
  explicit UniformGridPlan(const UGridOptions& opts)
      : Plan("UniformGrid", PlanTraits{"SU LM LS", DomainKind::k2D, false}),
        opts_(opts) {}

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override {
    EK_ASSIGN_OR_RETURN(std::vector<std::size_t> dims, ResolveDims(x, in));
    const std::size_t nx = dims[0], ny = dims[1];
    EK_ASSIGN_OR_RETURN(
        std::vector<BudgetScope> parts,
        scope.Split({opts_.total_frac, 1.0 - opts_.total_frac}));
    BudgetScope& s_total = parts[0];
    BudgetScope& s_cells = parts[1];
    const double eps_total = s_total.remaining();
    const double eps_cells = s_cells.remaining();

    EK_ASSIGN_OR_RETURN(
        Vec total, x.Laplace(*MakeTotalOp(nx * ny), eps_total, s_total));
    const std::size_t gx =
        UniformGridSide(std::max(total[0], 0.0), eps_cells, nx, opts_.c);
    const std::size_t gy =
        UniformGridSide(std::max(total[0], 0.0), eps_cells, ny, opts_.c);
    LinOpPtr cells = ApplyMode(GridCellsSelect(nx, ny, gx, gy), in.mode);
    EK_ASSIGN_OR_RETURN(Vec y, x.Laplace(*cells, eps_cells, s_cells));
    MeasurementSet mset;
    mset.Add(cells, std::move(y), 1.0 / eps_cells);
    mset.Add(MakeTotalOp(nx * ny), std::move(total), 1.0 / eps_total);
    return LeastSquaresInference(mset);
  }

 private:
  UGridOptions opts_;
};

class AdaptiveGridPlan final : public Plan {
 public:
  explicit AdaptiveGridPlan(const AGridOptions& opts)
      : Plan("AdaptiveGrid",
             PlanTraits{"SU LM LS PU TP[ SA LM ]", DomainKind::k2D, false}),
        opts_(opts) {}

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override {
    EK_ASSIGN_OR_RETURN(std::vector<std::size_t> dims, ResolveDims(x, in));
    const std::size_t nx = dims[0], ny = dims[1];
    EK_ASSIGN_OR_RETURN(
        std::vector<BudgetScope> outer,
        scope.Split({opts_.total_frac, 1.0 - opts_.total_frac}));
    BudgetScope& s_total = outer[0];
    EK_ASSIGN_OR_RETURN(
        std::vector<BudgetScope> rest,
        outer[1].Split({opts_.level1_frac, 1.0 - opts_.level1_frac}));
    BudgetScope& s_level1 = rest[0];
    BudgetScope& s_level2 = rest[1];
    const double eps_total = s_total.remaining();
    const double eps1 = s_level1.remaining();
    const double eps2 = s_level2.remaining();

    EK_ASSIGN_OR_RETURN(
        Vec total, x.Laplace(*MakeTotalOp(nx * ny), eps_total, s_total));
    const double n_est = std::max(total[0], 0.0);
    const std::size_t g1x = UniformGridSide(n_est, eps1, nx, opts_.c1);
    const std::size_t g1y = UniformGridSide(n_est, eps1, ny, opts_.c1);

    // Level 1: coarse grid counts.
    LinOpPtr level1 = ApplyMode(GridCellsSelect(nx, ny, g1x, g1y), in.mode);
    EK_ASSIGN_OR_RETURN(Vec y1, x.Laplace(*level1, eps1, s_level1));

    MeasurementSet mset;
    mset.Add(level1, y1, 1.0 / eps1);
    mset.Add(MakeTotalOp(nx * ny), std::move(total), 1.0 / eps_total);

    // Split by the level-1 grid; refine each block in parallel.  Every
    // block gets the full level-2 allowance: the kernel charges only the
    // max across partition children (Sec. 4.4), which the parallel
    // sub-scopes mirror on the client side.
    Partition grid_part = GridPartition2D(nx, ny, g1x, g1y);
    EK_ASSIGN_OR_RETURN(std::vector<ProtectedVector> children,
                        x.SplitByPartition(grid_part));
    EK_ASSIGN_OR_RETURN(std::vector<BudgetScope> child_scopes,
                        s_level2.SplitParallel(children.size()));
    auto groups = grid_part.Groups();
    EK_CHECK_EQ(children.size(), groups.size());
    EK_CHECK_EQ(children.size(), y1.size());

    // Level 2: every grid block refines independently — its own protected
    // child, its own parallel sub-scope, its own noise stream — so the
    // branches run concurrently through the pool.  Each branch stages its
    // measurement rows locally; the serial-order assembly below
    // renumbers them, so the stacked level-2 measurement (and therefore
    // the inference input) is bitwise-identical at any thread count.
    struct Level2Branch {
      std::vector<Triplet> triplets;  // {branch-local row, global cell, 1}
      std::size_t rows = 0;
      Vec y;
    };
    std::vector<Level2Branch> branches(children.size());
    Status branch_st = ParallelBranches(
        children.size(), [&](std::size_t b) -> Status {
      const auto& cells = groups[b];
      // Second-level side from this block's noisy count (public: y1 is
      // DP).
      const double block_count = std::max(y1[b], 0.0);
      // Block bounding box: cells are row-major within a rectangle, so
      // the first/last cells give the corners.
      const std::size_t i_lo = cells.front() / ny, j_lo = cells.front() % ny;
      const std::size_t i_hi = cells.back() / ny, j_hi = cells.back() % ny;
      const std::size_t height = i_hi - i_lo + 1;
      const std::size_t width = j_hi - j_lo + 1;
      std::size_t g2 = UniformGridSide(block_count, eps2,
                                       std::max(height, width), opts_.c2);
      if (g2 <= 1)
        return Status::Ok();  // sparse block: level-1 count suffices

      // Partition the block's cells into (at most) g2 x g2 sub-blocks.
      std::map<std::size_t, std::vector<std::size_t>> sub;  // id -> cells
      for (std::size_t k = 0; k < cells.size(); ++k) {
        const std::size_t li = cells[k] / ny - i_lo;
        const std::size_t lj = cells[k] % ny - j_lo;
        const std::size_t si = std::min(li * g2 / height, g2 - 1);
        const std::size_t sj = std::min(lj * g2 / width, g2 - 1);
        sub[si * g2 + sj].push_back(k);
      }
      // Local measurement: one indicator row per sub-block.
      Level2Branch& out = branches[b];
      std::vector<Triplet> local;
      std::size_t lrow = 0;
      for (const auto& [sid, ks] : sub) {
        for (std::size_t k : ks) {
          local.push_back({lrow, k, 1.0});
          out.triplets.push_back({lrow, cells[k], 1.0});
        }
        ++lrow;
      }
      out.rows = lrow;
      auto local_m = ApplyMode(
          MakeSparse(CsrMatrix::FromTriplets(lrow, cells.size(),
                                             std::move(local))),
          in.mode);
      EK_ASSIGN_OR_RETURN(
          out.y, children[b].Laplace(*local_m, eps2, child_scopes[b]));
      return Status::Ok();
    });
    EK_RETURN_IF_ERROR(branch_st);

    std::vector<Triplet> level2_triplets;
    Vec level2_y;
    std::size_t row = 0;
    for (const Level2Branch& br : branches) {
      for (const Triplet& t : br.triplets)
        level2_triplets.push_back({row + t.row, t.col, t.value});
      level2_y.insert(level2_y.end(), br.y.begin(), br.y.end());
      row += br.rows;
    }
    if (row > 0) {
      auto global2 = MakeSparse(
          CsrMatrix::FromTriplets(row, nx * ny, std::move(level2_triplets)));
      mset.Add(ApplyMode(global2, in.mode), std::move(level2_y), 1.0 / eps2);
    }
    return LeastSquaresInference(mset);
  }

 private:
  AGridOptions opts_;
};

}  // namespace

std::unique_ptr<Plan> MakeUniformGridPlan(const UGridOptions& opts) {
  return std::make_unique<UniformGridPlan>(opts);
}

std::unique_ptr<Plan> MakeAdaptiveGridPlan(const AGridOptions& opts) {
  return std::make_unique<AdaptiveGridPlan>(opts);
}

namespace plan_registration {

void RegisterGridPlans(PlanRegistry& registry) {
  registry.MustRegister(MakeQuadtreePlan());
  registry.MustRegister(MakeUniformGridPlan({}));
  registry.MustRegister(MakeAdaptiveGridPlan({}));
}

}  // namespace plan_registration

// ------------------------------------------------- deprecated Run* shims

StatusOr<Vec> RunQuadtreePlan(const PlanContext& ctx) {
  return ExecuteWithContext(PlanRegistry::Global().MustFind("QuadTree"),
                            ctx);
}

StatusOr<Vec> RunUniformGridPlan(const PlanContext& ctx,
                                 const UGridOptions& opts) {
  return ExecuteWithContext(*MakeUniformGridPlan(opts), ctx);
}

StatusOr<Vec> RunAdaptiveGridPlan(const PlanContext& ctx,
                                  const AGridOptions& opts) {
  return ExecuteWithContext(*MakeAdaptiveGridPlan(opts), ctx);
}

}  // namespace ektelo
