#include "plans/grid_plans.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "matrix/implicit_ops.h"
#include "ops/inference.h"
#include "ops/partition_select.h"
#include "ops/selection.h"
#include "util/check.h"

namespace ektelo {

namespace {

Status Check2D(const PlanContext& ctx) {
  if (ctx.dims.size() != 2)
    return Status::InvalidArgument("grid plans need a 2D domain");
  return Status::Ok();
}

}  // namespace

StatusOr<Vec> RunQuadtreePlan(const PlanContext& ctx) {
  EK_RETURN_IF_ERROR(Check2D(ctx));
  LinOpPtr m = ApplyMode(QuadtreeSelect(ctx.dims[0], ctx.dims[1]), ctx.mode);
  const double sens = m->SensitivityL1();
  EK_ASSIGN_OR_RETURN(Vec y, ctx.kernel->VectorLaplace(ctx.x, *m, ctx.eps));
  MeasurementSet mset;
  mset.Add(m, std::move(y), sens / ctx.eps);
  return LeastSquaresInference(mset);
}

StatusOr<Vec> RunUniformGridPlan(const PlanContext& ctx,
                                 const UGridOptions& opts) {
  EK_RETURN_IF_ERROR(Check2D(ctx));
  const std::size_t nx = ctx.dims[0], ny = ctx.dims[1];
  const double eps_total = ctx.eps * opts.total_frac;
  const double eps_cells = ctx.eps - eps_total;
  EK_ASSIGN_OR_RETURN(
      Vec total, ctx.kernel->VectorLaplace(ctx.x, *MakeTotalOp(nx * ny),
                                           eps_total));
  const std::size_t gx =
      UniformGridSide(std::max(total[0], 0.0), eps_cells, nx, opts.c);
  const std::size_t gy =
      UniformGridSide(std::max(total[0], 0.0), eps_cells, ny, opts.c);
  LinOpPtr cells = ApplyMode(GridCellsSelect(nx, ny, gx, gy), ctx.mode);
  EK_ASSIGN_OR_RETURN(Vec y,
                      ctx.kernel->VectorLaplace(ctx.x, *cells, eps_cells));
  MeasurementSet mset;
  mset.Add(cells, std::move(y), 1.0 / eps_cells);
  mset.Add(MakeTotalOp(nx * ny), std::move(total), 1.0 / eps_total);
  return LeastSquaresInference(mset);
}

StatusOr<Vec> RunAdaptiveGridPlan(const PlanContext& ctx,
                                  const AGridOptions& opts) {
  EK_RETURN_IF_ERROR(Check2D(ctx));
  const std::size_t nx = ctx.dims[0], ny = ctx.dims[1];
  const double eps_total = ctx.eps * opts.total_frac;
  const double eps_rest = ctx.eps - eps_total;
  const double eps1 = eps_rest * opts.level1_frac;
  const double eps2 = eps_rest - eps1;

  EK_ASSIGN_OR_RETURN(
      Vec total, ctx.kernel->VectorLaplace(ctx.x, *MakeTotalOp(nx * ny),
                                           eps_total));
  const double n_est = std::max(total[0], 0.0);
  const std::size_t g1x = UniformGridSide(n_est, eps1, nx, opts.c1);
  const std::size_t g1y = UniformGridSide(n_est, eps1, ny, opts.c1);

  // Level 1: coarse grid counts.
  LinOpPtr level1 = ApplyMode(GridCellsSelect(nx, ny, g1x, g1y), ctx.mode);
  EK_ASSIGN_OR_RETURN(Vec y1, ctx.kernel->VectorLaplace(ctx.x, *level1,
                                                        eps1));

  MeasurementSet mset;
  mset.Add(level1, y1, 1.0 / eps1);
  mset.Add(MakeTotalOp(nx * ny), std::move(total), 1.0 / eps_total);

  // Split by the level-1 grid; refine each block in parallel.
  Partition grid_part = GridPartition2D(nx, ny, g1x, g1y);
  EK_ASSIGN_OR_RETURN(std::vector<SourceId> children,
                      ctx.kernel->VSplitByPartition(ctx.x, grid_part));
  auto groups = grid_part.Groups();
  EK_CHECK_EQ(children.size(), groups.size());
  EK_CHECK_EQ(children.size(), y1.size());

  std::vector<Triplet> level2_triplets;
  Vec level2_y;
  std::size_t row = 0;
  for (std::size_t b = 0; b < children.size(); ++b) {
    const auto& cells = groups[b];
    // Second-level side from this block's noisy count (public: y1 is DP).
    const double block_count = std::max(y1[b], 0.0);
    // Block bounding box: cells are row-major within a rectangle, so the
    // first/last cells give the corners.
    const std::size_t i_lo = cells.front() / ny, j_lo = cells.front() % ny;
    const std::size_t i_hi = cells.back() / ny, j_hi = cells.back() % ny;
    const std::size_t height = i_hi - i_lo + 1;
    const std::size_t width = j_hi - j_lo + 1;
    std::size_t g2 = UniformGridSide(block_count, eps2,
                                     std::max(height, width), opts.c2);
    if (g2 <= 1) continue;  // sparse block: level-1 count suffices

    // Partition the block's cells into (at most) g2 x g2 sub-blocks.
    std::map<std::size_t, std::vector<std::size_t>> sub;  // sub-id -> cells
    for (std::size_t k = 0; k < cells.size(); ++k) {
      const std::size_t li = cells[k] / ny - i_lo;
      const std::size_t lj = cells[k] % ny - j_lo;
      const std::size_t si = std::min(li * g2 / height, g2 - 1);
      const std::size_t sj = std::min(lj * g2 / width, g2 - 1);
      sub[si * g2 + sj].push_back(k);
    }
    // Local measurement: one indicator row per sub-block.
    std::vector<Triplet> local;
    std::size_t lrow = 0;
    for (const auto& [sid, ks] : sub) {
      for (std::size_t k : ks) {
        local.push_back({lrow, k, 1.0});
        level2_triplets.push_back({row, cells[k], 1.0});
      }
      ++lrow;
      ++row;
    }
    auto local_m = ApplyMode(
        MakeSparse(CsrMatrix::FromTriplets(lrow, cells.size(),
                                           std::move(local))),
        ctx.mode);
    EK_ASSIGN_OR_RETURN(
        Vec y2, ctx.kernel->VectorLaplace(children[b], *local_m, eps2));
    level2_y.insert(level2_y.end(), y2.begin(), y2.end());
  }
  if (row > 0) {
    auto global2 = MakeSparse(
        CsrMatrix::FromTriplets(row, nx * ny, std::move(level2_triplets)));
    mset.Add(ApplyMode(global2, ctx.mode), std::move(level2_y), 1.0 / eps2);
  }
  return LeastSquaresInference(mset);
}

}  // namespace ektelo
