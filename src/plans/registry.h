// The Plan abstraction and the plan registry.
//
// A Plan is a named, reusable differentially-private algorithm over a
// protected vector: it receives a typed ProtectedVector handle, a
// BudgetScope allowance, and public metadata (PlanInput), and returns an
// estimate of the full data vector.  The privacy guarantee (Thm. 4.1)
// holds for arbitrary Execute bodies because all private interaction goes
// through the kernel via the typed handles.
//
// PlanRegistry is the enumerable catalog of Fig. 2: plans register under
// their catalog name, and benchmarks / examples / equivalence tests drive
// the registry instead of hand-maintained lists — a newly registered plan
// is benchmarked and covered automatically.
//
//   const Plan* dawa = PlanRegistry::Global().Find("DAWA");
//   BudgetScope scope(kernel.BudgetRemaining());
//   StatusOr<Vec> xhat = dawa->Execute(x, scope, {.dims = {n},
//                                                 .ranges = workload});
#ifndef EKTELO_PLANS_REGISTRY_H_
#define EKTELO_PLANS_REGISTRY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/budget.h"
#include "kernel/handles.h"
#include "plans/plan.h"
#include "workload/workloads.h"

namespace ektelo {

/// Public, data-independent inputs to a plan execution.  Every field is
/// safe to choose in untrusted client space; plans read the ones they
/// need and ignore the rest.
struct PlanInput {
  /// Domain shape; empty means the flat 1D domain {x.size()}.
  std::vector<std::size_t> dims;
  /// Physical representation of measurement matrices (Sec. 10.2).
  MatrixMode mode = MatrixMode::kImplicit;
  /// Client-side randomness for plans that need it (e.g. PrivBayes).
  Rng* rng = nullptr;
  /// 1D range workload for workload-adaptive plans (Greedy-H, MWEM, DAWA).
  std::vector<RangeQuery> ranges;
  /// General workload operator (the Workload/WorkloadLS baselines); when
  /// unset, plans fall back to RangeQueryOp(ranges, n).
  LinOpPtr workload;
  /// Per-dimension workload factors (HDMM).
  std::vector<LinOpPtr> workload_factors;
  /// The record total MWEM assumes known.
  double known_total = 0.0;
  /// Stripe dimension for the high-dimensional striped plans.
  std::size_t stripe_dim = 0;

  std::size_t n() const {
    std::size_t total = 1;
    for (std::size_t d : dims) total *= d;
    return total;
  }
};

/// What domain shape a plan targets.  k2D and kMultiDim are structural
/// requirements (checked at Execute); k1D is a harness hint — those plans
/// flatten or Kronecker-compose arbitrary shapes, and registry-driven
/// benchmarks exercise them on a 1D histogram.
enum class DomainKind {
  k1D,       // flattened / per-dimension plans; benchmarked on 1D
  k2D,       // dims.size() == 2 required (spatial plans)
  kMultiDim  // dims.size() >= 2 required (striped plans)
};

/// Static plan metadata.
struct PlanTraits {
  /// Fig. 2 operator signature, e.g. "PD TR SG LM LS".
  std::string signature;
  DomainKind domain = DomainKind::k1D;
  /// Whether the plan's cost is representation-sensitive — registry-driven
  /// benchmarks sweep dense/sparse modes over these plans.
  bool mode_sweep = false;
};

class Plan {
 public:
  Plan(std::string name, PlanTraits traits)
      : name_(std::move(name)), traits_(std::move(traits)) {}
  virtual ~Plan() = default;

  const std::string& name() const { return name_; }
  const std::string& signature() const { return traits_.signature; }
  DomainKind domain() const { return traits_.domain; }
  bool mode_sweep() const { return traits_.mode_sweep; }

  /// Run the plan against `x`, spending from `scope`.  `in.dims` must
  /// multiply out to x.size() (empty dims defaults to {x.size()}).
  virtual StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                                const PlanInput& in) const = 0;

 protected:
  /// Shape validation shared by implementations: resolves empty dims to
  /// {x.size()} and checks the product.
  StatusOr<std::vector<std::size_t>> ResolveDims(const ProtectedVector& x,
                                                 const PlanInput& in) const;

 private:
  std::string name_;
  PlanTraits traits_;
};

class PlanRegistry {
 public:
  /// The process-wide catalog.  First use registers the built-in Fig. 2
  /// plans (deterministically — no reliance on static-initializer pull-in
  /// from a static library).
  static PlanRegistry& Global();

  /// Registers a plan under its name(); InvalidArgument on duplicates.
  Status Register(std::unique_ptr<Plan> plan);
  /// Register, CHECK-aborting on failure (built-in/static registration,
  /// where a duplicate is a programming error).
  void MustRegister(std::unique_ptr<Plan> plan);

  /// Lookup by exact catalog name; nullptr when absent.
  const Plan* Find(std::string_view name) const;
  /// Lookup that CHECK-aborts when absent (for call sites, like the
  /// Run*Plan shims, whose name is a compile-time constant).
  const Plan& MustFind(std::string_view name) const;

  /// All plans in registration (catalog) order.
  std::vector<const Plan*> Catalog() const;

  std::size_t size() const { return plans_.size(); }

 private:
  std::vector<std::unique_ptr<Plan>> plans_;
};

/// Bridge used by the deprecated Run*Plan shims: wraps ctx's source into
/// a typed ProtectedVector, builds a BudgetScope of ctx.eps, copies the
/// context's public metadata (dims/mode/rng) into `in` on top of any
/// plan-specific fields the caller pre-filled, and executes the plan.
StatusOr<Vec> ExecuteWithContext(const Plan& plan, const PlanContext& ctx,
                                 PlanInput in = {});

/// Static-registration helper for user plan libraries:
///   static PlanRegistrar reg(std::make_unique<MyPlan>());
class PlanRegistrar {
 public:
  explicit PlanRegistrar(std::unique_ptr<Plan> plan);
};

namespace plan_registration {
// Built-in registration hooks, one per plan translation unit.  Called from
// PlanRegistry::Global(); referencing them here forces the linker to pull
// the plan objects out of the static library.
void RegisterCatalogPlans(PlanRegistry& registry);   // plans.cc
void RegisterGridPlans(PlanRegistry& registry);      // grid_plans.cc
void RegisterStripedPlans(PlanRegistry& registry);   // striped_plans.cc
}  // namespace plan_registration

}  // namespace ektelo

#endif  // EKTELO_PLANS_REGISTRY_H_
