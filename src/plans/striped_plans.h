// High-dimensional "striped" plans (Sec. 9.2, Fig. 2 #14-#16).
//
// The domain is partitioned into 1D stripes along PlanInput::stripe_dim
// (one stripe per combination of the remaining attributes); a 1D subplan
// runs on every stripe under parallel composition (each stripe's
// measurements ride a SplitParallel sub-scope, mirroring the kernel's
// max-across-children charge); inference is global least squares.
// Because no measurement crosses stripes, the global LS decomposes into
// per-stripe solves, which these implementations exploit (the result is
// identical to solving the stacked system).
//
// HB-Striped_kron expresses the same HB-per-stripe measurements as a
// single Kronecker product Identity ⊗ ... ⊗ HB ⊗ ... ⊗ Identity and
// measures it in one Vector Laplace call — the non-iterative alternative
// whose scalability Fig. 4b compares.
//
// Registered as "HB-Striped", "HB-Striped_kron" and "DAWA-Striped"; the
// Run* functions are deprecated shims over the registered plans.
#ifndef EKTELO_PLANS_STRIPED_PLANS_H_
#define EKTELO_PLANS_STRIPED_PLANS_H_

#include <memory>

#include "ops/partition_select.h"
#include "plans/plan.h"
#include "plans/registry.h"

namespace ektelo {

/// #15 HB-Striped: PS TP[ SHB LM ] LS.
std::unique_ptr<Plan> MakeHbStripedPlan();

/// #16 HB-Striped_kron: SS LM LS.  PlanInput::mode selects the
/// representation of the Kronecker *factors* (the Kronecker structure
/// itself is kept); materialize_full instead expands the whole product
/// into one flat sparse matrix — the "Basic sparse" ablation of Fig. 4b.
std::unique_ptr<Plan> MakeHbStripedKronPlan(bool materialize_full = false);

struct DawaStripedOptions {
  double partition_frac = 0.25;  // rho, as in the paper (0.25)
  DawaOptions dawa;
};

/// #14 DAWA-Striped: PS TP[ PD TR SG LM ] LS.
std::unique_ptr<Plan> MakeDawaStripedPlan(
    const DawaStripedOptions& opts = {});

// Deprecated shims (see plans.h).
StatusOr<Vec> RunHbStripedPlan(const PlanContext& ctx,
                               std::size_t stripe_dim);
StatusOr<Vec> RunHbStripedKronPlan(const PlanContext& ctx,
                                   std::size_t stripe_dim,
                                   bool materialize_full = false);
StatusOr<Vec> RunDawaStripedPlan(const PlanContext& ctx,
                                 std::size_t stripe_dim,
                                 const DawaStripedOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_PLANS_STRIPED_PLANS_H_
