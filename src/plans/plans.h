// The Fig. 2 plan catalog (1D / flattened-domain plans).
//
// Plan signatures (operators color-coded in the paper):
//   #1  Identity        SI LM
//   #2  Privelet        SP LM LS
//   #3  H2              SH2 LM LS
//   #4  HB              SHB LM LS
//   #5  Greedy-H        SG LM LS
//   #6  Uniform         ST LM LS
//   #7  MWEM            I:( SW LM MW )
//   #8  AHP             PA TR SI LM LS
//   #9  DAWA            PD TR SG LM LS
//   #13 HDMM            SHD LM LS
//   #18 MWEM variant b  I:( SW SH2 LM MW )
//   #19 MWEM variant c  I:( SW LM NLS )
//   #20 MWEM variant d  I:( SW SH2 LM NLS )
// plus the Workload / WorkloadLS baselines of the Naive-Bayes case study.
//
// Every plan implicitly starts with T-Vectorize (the PlanContext already
// points at a vector source) and returns an estimate of the full data
// vector.
#ifndef EKTELO_PLANS_PLANS_H_
#define EKTELO_PLANS_PLANS_H_

#include <vector>

#include "ops/partition_select.h"
#include "plans/plan.h"
#include "workload/workloads.h"

namespace ektelo {

StatusOr<Vec> RunIdentityPlan(const PlanContext& ctx);
StatusOr<Vec> RunUniformPlan(const PlanContext& ctx);
StatusOr<Vec> RunPriveletPlan(const PlanContext& ctx);
StatusOr<Vec> RunH2Plan(const PlanContext& ctx);
StatusOr<Vec> RunHbPlan(const PlanContext& ctx);
StatusOr<Vec> RunGreedyHPlan(const PlanContext& ctx,
                             const std::vector<RangeQuery>& workload);

struct MwemOptions {
  std::size_t rounds = 10;
  /// Variant b/d: augment each round's selected query with a growing set
  /// of disjoint hierarchical queries (free under parallel composition).
  bool augment_h2 = false;
  /// Variant c/d: replace multiplicative-weights inference with NNLS plus
  /// the (assumed known) total.
  bool nnls_inference = false;
  /// The record total MWEM assumes known.
  double known_total = 0.0;
  std::size_t mw_iterations = 40;
};

StatusOr<Vec> RunMwemPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const MwemOptions& opts);

struct AhpPlanOptions {
  double partition_frac = 0.5;  // eps share for AHPpartition
  AhpOptions ahp;
};
StatusOr<Vec> RunAhpPlan(const PlanContext& ctx,
                         const AhpPlanOptions& opts = {});

struct DawaPlanOptions {
  double partition_frac = 0.25;  // DAWA's rho
  DawaOptions dawa;
};
StatusOr<Vec> RunDawaPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const DawaPlanOptions& opts = {});

/// HDMM: workload given per-dimension (Kronecker factors).
StatusOr<Vec> RunHdmmPlan(const PlanContext& ctx,
                          const std::vector<LinOpPtr>& workload_factors);

/// Measure the workload directly with Vector Laplace; if ls_inference,
/// follow with least squares (WorkloadLS), else return the minimum-norm
/// reconstruction of the raw noisy answers.
StatusOr<Vec> RunWorkloadPlan(const PlanContext& ctx, LinOpPtr workload,
                              bool ls_inference);

/// Map 1D ranges through an interval partition (groups must be contiguous
/// intervals, as produced by DawaIntervalPartition): used by DAWA's
/// stage 2 to express the workload on the reduced domain.
std::vector<RangeQuery> MapRangesToIntervalPartition(
    const std::vector<RangeQuery>& ranges, const Partition& p);

}  // namespace ektelo

#endif  // EKTELO_PLANS_PLANS_H_
