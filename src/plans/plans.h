// The Fig. 2 plan catalog (1D / flattened-domain plans).
//
// Plan signatures (operators color-coded in the paper):
//   #1  Identity        SI LM
//   #2  Privelet        SP LM LS
//   #3  H2              SH2 LM LS
//   #4  HB              SHB LM LS
//   #5  Greedy-H        SG LM LS
//   #6  Uniform         ST LM LS
//   #7  MWEM            I:( SW LM MW )
//   #8  AHP             PA TR SI LM LS
//   #9  DAWA            PD TR SG LM LS
//   #13 HDMM            SHD LM LS
//   #18 MWEM variant b  I:( SW SH2 LM MW )
//   #19 MWEM variant c  I:( SW LM NLS )
//   #20 MWEM variant d  I:( SW SH2 LM NLS )
// plus the Workload / WorkloadLS baselines of the Naive-Bayes case study.
//
// Every plan is a registered `Plan` (see plans/registry.h): the single-shot
// plans are declarative pipelines (PartitionBy / Select / Measure / Infer,
// see plans/pipeline.h) and the four MWEM variants are one parameterized
// loop plan.  `Make*Plan` builds an instance with explicit options; the
// default-option instances live in PlanRegistry::Global() under their
// catalog names ("Identity", "DAWA", "MWEM variant b", ...).
//
// The `Run*Plan` free functions below are DEPRECATED shims kept for source
// compatibility: each is a one-liner that wraps the PlanContext into a
// typed ProtectedVector handle plus a BudgetScope and delegates to the
// corresponding registered plan.  New code should use
// `PlanRegistry::Global().Find(name)->Execute(x, scope, input)` or a
// `Make*Plan` factory directly.
#ifndef EKTELO_PLANS_PLANS_H_
#define EKTELO_PLANS_PLANS_H_

#include <memory>
#include <vector>

#include "ops/partition_select.h"
#include "plans/plan.h"
#include "plans/registry.h"
#include "workload/workloads.h"

namespace ektelo {

// ------------------------------------------------------- plan factories

std::unique_ptr<Plan> MakeIdentityPlan();
std::unique_ptr<Plan> MakeUniformPlan();
std::unique_ptr<Plan> MakePriveletPlan();
std::unique_ptr<Plan> MakeH2Plan();
std::unique_ptr<Plan> MakeHbPlan();
/// Workload comes from PlanInput::ranges.
std::unique_ptr<Plan> MakeGreedyHPlan();
/// Workload factors come from PlanInput::workload_factors.
std::unique_ptr<Plan> MakeHdmmPlan();
/// Measures PlanInput::workload (or RangeQueryOp of PlanInput::ranges)
/// directly with Vector Laplace + least squares.
std::unique_ptr<Plan> MakeWorkloadPlan(bool ls_inference);

struct MwemOptions {
  std::size_t rounds = 10;
  /// Variant b/d: augment each round's selected query with a growing set
  /// of disjoint hierarchical queries (free under parallel composition).
  bool augment_h2 = false;
  /// Variant c/d: replace multiplicative-weights inference with NNLS plus
  /// the (assumed known) total.
  bool nnls_inference = false;
  /// The record total MWEM assumes known (PlanInput::known_total wins
  /// when positive).
  double known_total = 0.0;
  std::size_t mw_iterations = 40;
};

/// The four MWEM variants are this one loop plan: flags pick the
/// selection augmentation and the inference operator, per the paper's
/// claim that variants differ only in which operators are swapped.
std::unique_ptr<Plan> MakeMwemPlan(const MwemOptions& opts = {});

struct AhpPlanOptions {
  double partition_frac = 0.5;  // eps share for AHPpartition
  AhpOptions ahp;
};
std::unique_ptr<Plan> MakeAhpPlan(const AhpPlanOptions& opts = {});

struct DawaPlanOptions {
  double partition_frac = 0.25;  // DAWA's rho
  DawaOptions dawa;
};
std::unique_ptr<Plan> MakeDawaPlan(const DawaPlanOptions& opts = {});

// ------------------------------------------------- deprecated Run* shims
//
// One-line wrappers over the registered plans; kept so pre-registry call
// sites compile unchanged.  Prefer Plan::Execute with typed handles.

StatusOr<Vec> RunIdentityPlan(const PlanContext& ctx);
StatusOr<Vec> RunUniformPlan(const PlanContext& ctx);
StatusOr<Vec> RunPriveletPlan(const PlanContext& ctx);
StatusOr<Vec> RunH2Plan(const PlanContext& ctx);
StatusOr<Vec> RunHbPlan(const PlanContext& ctx);
StatusOr<Vec> RunGreedyHPlan(const PlanContext& ctx,
                             const std::vector<RangeQuery>& workload);
StatusOr<Vec> RunMwemPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const MwemOptions& opts);
StatusOr<Vec> RunAhpPlan(const PlanContext& ctx,
                         const AhpPlanOptions& opts = {});
StatusOr<Vec> RunDawaPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const DawaPlanOptions& opts = {});
/// HDMM: workload given per-dimension (Kronecker factors).
StatusOr<Vec> RunHdmmPlan(const PlanContext& ctx,
                          const std::vector<LinOpPtr>& workload_factors);
/// Measure the workload directly with Vector Laplace; if ls_inference,
/// follow with least squares (WorkloadLS), else return the minimum-norm
/// reconstruction of the raw noisy answers.
StatusOr<Vec> RunWorkloadPlan(const PlanContext& ctx, LinOpPtr workload,
                              bool ls_inference);

/// Map 1D ranges through an interval partition (groups must be contiguous
/// intervals, as produced by DawaIntervalPartition): used by DAWA's
/// stage 2 to express the workload on the reduced domain.
std::vector<RangeQuery> MapRangesToIntervalPartition(
    const std::vector<RangeQuery>& ranges, const Partition& p);

}  // namespace ektelo

#endif  // EKTELO_PLANS_PLANS_H_
