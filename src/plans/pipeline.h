// Stage-level plan composition mirroring the paper's operator color
// classes (Fig. 2): a PipelinePlan is a declarative sequence of
//
//   PartitionBy  — data-adaptive partition selection + reduce (PA/PD TR)
//   Select       — choose the measurement strategy matrix (S*)
//   Measure      — Vector Laplace of the strategy (LM)
//   Infer        — global inference over all measurements (LS / clamps)
//
// threaded through a shared StageContext.  The context tracks the current
// protected handle (partition stages repoint it at the reduced source),
// the current BudgetScope (partition stages split it), the workload as
// remapped onto the reduced domain, and the composition operator back to
// the original domain — so inference always runs globally, per the
// consistent-inference discipline of Thm. 5.3.
//
// The Fig. 2 single-shot plans are one-liners on top of this:
//
//   Pipeline "DAWA" = { PartitionBy(Dawa, 0.25, remap), Select(GreedyH),
//                       Measure(), Infer(kLeastSquares) }
//
// Iterative plans (MWEM) and parallel-composition plans (grids, stripes)
// implement Plan directly over the typed handles instead.
#ifndef EKTELO_PLANS_PIPELINE_H_
#define EKTELO_PLANS_PIPELINE_H_

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "matrix/partition.h"
#include "ops/measurement.h"
#include "plans/registry.h"

namespace ektelo {

/// Mutable execution state shared by the stages of one pipeline run.
struct StageContext {
  const PlanInput* in = nullptr;
  MatrixMode mode = MatrixMode::kImplicit;

  /// Current protected data: starts at the plan's input vector; partition
  /// stages repoint it at the reduced source they derive.
  const ProtectedVector* data = nullptr;
  std::vector<std::size_t> dims;  // current domain shape
  std::size_t n() const {
    std::size_t total = 1;
    for (std::size_t d : dims) total *= d;
    return total;
  }

  /// Current budget allowance; partition stages replace it with the
  /// post-selection sub-scope.
  BudgetScope* scope = nullptr;

  /// Current range workload (interval partition stages remap it).
  std::vector<RangeQuery> ranges;

  /// Set by partition stages: the reduction P (mode-converted) whose
  /// composition maps current-domain measurements back onto the original
  /// domain, the partition itself, and optional public per-cell volumes
  /// for density-aware expansion (DAWA after workload reduction).
  LinOpPtr reduce_op;
  std::optional<Partition> partition;
  Vec cell_volumes;

  LinOpPtr strategy;    // set by Select (already mode-converted)
  MeasurementSet mset;  // measurements, expressed on their measure-time
                        // domain
  /// Parallel to mset.items(): the reduce_op in force when each
  /// measurement was taken (null = original domain), so Infer composes
  /// every measurement with exactly the reductions applied before it —
  /// not with later ones.
  std::vector<LinOpPtr> mset_reduce;
  Vec estimate;         // set by Infer

  // Keep-alive storage for handles/scopes derived mid-pipeline.
  std::deque<ProtectedVector> derived;
  std::deque<BudgetScope> scopes;
};

using Stage = std::function<Status(StageContext&)>;

/// Strategy selector: builds the (implicit) measurement matrix from the
/// current context; Select applies the matrix mode.
using SelectFn = std::function<StatusOr<LinOpPtr>(const StageContext&)>;

/// Data-adaptive partition selector; spends `eps` through `scope`.
using PartitionFn = std::function<StatusOr<Partition>(
    StageContext&, double eps, BudgetScope& scope)>;

enum class InferKind {
  kNone,                 // estimate = raw answers of the last Measure
  kLeastSquares,         // precision-weighted global LS
  kClampedLeastSquares,  // LS followed by max(., 0) (AHP's post-process)
};

/// S*: sc.strategy = ApplyMode(fn(sc), sc.mode).
Stage Select(SelectFn fn);

/// LM: measure the selected strategy with the scope's entire remaining
/// allowance and append to the measurement set.
Stage Measure();

/// PA/PD + TR: split the scope {frac, 1-frac}, run `fn` on the selection
/// share, reduce the data by the resulting partition, and leave the
/// measurement share as the context's scope.  remap_ranges maps the range
/// workload through the partition (valid for interval partitions).
Stage PartitionBy(PartitionFn fn, double frac, bool remap_ranges);

/// LS / post-processing: produce the original-domain estimate from all
/// measurements (composing with the reduction, or volume-expanding when
/// public cell volumes are present).
Stage Infer(InferKind kind);

/// A Plan that runs a fixed stage sequence.
class PipelinePlan final : public Plan {
 public:
  PipelinePlan(std::string name, PlanTraits traits,
               std::vector<Stage> stages);

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override;

 private:
  std::vector<Stage> stages_;
};

}  // namespace ektelo

#endif  // EKTELO_PLANS_PIPELINE_H_
