// Case-study plans that start from the protected *table* (not a
// pre-vectorized source): the CDF estimator of Algorithm 1 and the
// PrivBayes / PrivBayesLS census plans (Sec. 9.2, Algorithm 7).
#ifndef EKTELO_PLANS_CASE_STUDIES_H_
#define EKTELO_PLANS_CASE_STUDIES_H_

#include <string>

#include "data/table.h"
#include "ops/partition_select.h"
#include "ops/privbayes.h"
#include "plans/plan.h"

namespace ektelo {

struct CdfPlanOptions {
  Predicate filter;        // e.g. sex == M AND age in [30, 39]
  std::string value_attr;  // e.g. "salary"
  double eps = 1.0;
  AhpOptions ahp;
};

/// Algorithm 1: Where -> Select -> Vectorize -> AHPpartition(eps/2) ->
/// ReduceByPartition -> Identity + VecLaplace(eps/2) -> NNLS -> Prefix.
/// Returns the estimated empirical CDF counts (prefix sums) over the
/// value attribute's domain.
StatusOr<Vec> RunCdfEstimatorPlan(ProtectedKernel* kernel,
                                  const CdfPlanOptions& opts);

/// PrivBayes baseline: select + measure + product-of-conditionals
/// inference; returns the full-domain estimate.
StatusOr<Vec> RunPrivBayesPlan(ProtectedKernel* kernel, const Schema& schema,
                               double eps, Rng* rng,
                               const PrivBayesOptions& opts = {});

/// #17 PrivBayesLS (Algorithm 7): same selection/measurement, least
/// squares inference.
StatusOr<Vec> RunPrivBayesLsPlan(ProtectedKernel* kernel,
                                 const Schema& schema, double eps, Rng* rng,
                                 const PrivBayesOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_PLANS_CASE_STUDIES_H_
