#include "plans/plans.h"

#include <algorithm>
#include <cmath>

#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "ops/hdmm.h"
#include "ops/inference.h"
#include "ops/selection.h"
#include "util/check.h"

namespace ektelo {

namespace {

/// Select-measure-infer: the shared backbone of plans #1-#6, #13 and the
/// workload baselines.  Measures `strategy` at full eps, runs weighted LS.
StatusOr<Vec> SelectMeasureLs(const PlanContext& ctx, LinOpPtr strategy) {
  LinOpPtr m = ApplyMode(std::move(strategy), ctx.mode);
  const double sens = m->SensitivityL1();
  EK_ASSIGN_OR_RETURN(Vec y, ctx.kernel->VectorLaplace(ctx.x, *m, ctx.eps));
  MeasurementSet mset;
  mset.Add(m, std::move(y), sens / ctx.eps);
  return LeastSquaresInference(mset);
}

}  // namespace

StatusOr<Vec> RunIdentityPlan(const PlanContext& ctx) {
  // Identity needs no inference: the noisy counts are the estimate.
  LinOpPtr m = ApplyMode(IdentitySelect(ctx.n()), ctx.mode);
  return ctx.kernel->VectorLaplace(ctx.x, *m, ctx.eps);
}

StatusOr<Vec> RunUniformPlan(const PlanContext& ctx) {
  // ST LM LS: measure the total; min-norm LS spreads it uniformly.
  return SelectMeasureLs(ctx, TotalSelect(ctx.n()));
}

StatusOr<Vec> RunPriveletPlan(const PlanContext& ctx) {
  // SP LM LS: per-dimension Haar wavelets composed by Kronecker.
  std::vector<LinOpPtr> factors;
  for (std::size_t d : ctx.dims) {
    if (!IsPowerOfTwo(d))
      return Status::InvalidArgument(
          "Privelet requires power-of-two dimensions");
    factors.push_back(MakeWaveletOp(d));
  }
  return SelectMeasureLs(ctx, MakeKronecker(std::move(factors)));
}

StatusOr<Vec> RunH2Plan(const PlanContext& ctx) {
  return SelectMeasureLs(ctx, H2Select(ctx.n()));
}

StatusOr<Vec> RunHbPlan(const PlanContext& ctx) {
  return SelectMeasureLs(ctx, HbSelect(ctx.n()));
}

StatusOr<Vec> RunGreedyHPlan(const PlanContext& ctx,
                             const std::vector<RangeQuery>& workload) {
  return SelectMeasureLs(ctx, GreedyHSelect(workload, ctx.n()));
}

StatusOr<Vec> RunWorkloadPlan(const PlanContext& ctx, LinOpPtr workload,
                              bool ls_inference) {
  if (!ls_inference) {
    // Raw noisy answers, reconstructed at minimum norm so callers get an
    // xhat; the Naive-Bayes "Workload" baseline reads marginals off it.
    return SelectMeasureLs(ctx, std::move(workload));
  }
  return SelectMeasureLs(ctx, std::move(workload));
}

StatusOr<Vec> RunHdmmPlan(const PlanContext& ctx,
                          const std::vector<LinOpPtr>& workload_factors) {
  if (workload_factors.size() != ctx.dims.size())
    return Status::InvalidArgument("one workload factor per dimension");
  LinOpPtr strategy = HdmmSelect(workload_factors, ctx.dims);
  return SelectMeasureLs(ctx, std::move(strategy));
}

// ------------------------------------------------------------------ MWEM

namespace {

/// Variant b/d query-selection augmentation: tile the domain outside the
/// selected range with disjoint intervals of length 2^(round-1) — free to
/// measure alongside q under parallel composition (sensitivity stays 1).
std::vector<RangeQuery> AugmentDisjoint(const RangeQuery& q, std::size_t n,
                                        std::size_t round) {
  std::vector<RangeQuery> extra;
  const std::size_t len = std::min<std::size_t>(
      std::size_t{1} << std::min<std::size_t>(round - 1, 30), n);
  auto tile = [&](std::size_t lo, std::size_t hi_excl) {
    for (std::size_t p = lo; p < hi_excl; p += len)
      extra.push_back({p, std::min(p + len, hi_excl) - 1});
  };
  if (q.lo > 0) tile(0, q.lo);
  if (q.hi + 1 < n) tile(q.hi + 1, n);
  return extra;
}

}  // namespace

StatusOr<Vec> RunMwemPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const MwemOptions& opts) {
  const std::size_t n = ctx.n();
  if (opts.rounds == 0) return Status::InvalidArgument("rounds must be > 0");
  if (opts.known_total <= 0.0)
    return Status::InvalidArgument("MWEM requires a positive known total");
  LinOpPtr w_op = ApplyMode(RangeQueryOp(workload, n), ctx.mode);

  const double eps_round = ctx.eps / double(opts.rounds);
  const double eps_select = eps_round / 2.0;
  const double eps_measure = eps_round / 2.0;

  Vec xhat(n, opts.known_total / double(n));
  MeasurementSet mset;
  for (std::size_t round = 1; round <= opts.rounds; ++round) {
    EK_ASSIGN_OR_RETURN(std::size_t pick,
                        ctx.kernel->WorstApprox(ctx.x, *w_op, xhat,
                                                eps_select));
    std::vector<RangeQuery> to_measure = {workload[pick]};
    if (opts.augment_h2) {
      auto extra = AugmentDisjoint(workload[pick], n, round);
      to_measure.insert(to_measure.end(), extra.begin(), extra.end());
    }
    LinOpPtr m = ApplyMode(RangeQueryOp(to_measure, n), ctx.mode);
    // Disjoint ranges: sensitivity 1 whether or not we augmented.
    EK_ASSIGN_OR_RETURN(Vec y,
                        ctx.kernel->VectorLaplace(ctx.x, *m, eps_measure));
    mset.Add(m, std::move(y), 1.0 / eps_measure);

    if (opts.nnls_inference) {
      // Warm-start from the previous round's estimate: faster and keeps
      // the uniform prior in yet-unmeasured directions, like MW.
      xhat = NnlsInference(mset, opts.known_total,
                           {.max_iters = 300, .x0 = xhat});
    } else {
      xhat = MultWeightsStep(mset, std::move(xhat),
                             {.iterations = opts.mw_iterations});
    }
  }
  return xhat;
}

// ------------------------------------------------------------------- AHP

StatusOr<Vec> RunAhpPlan(const PlanContext& ctx, const AhpPlanOptions& opts) {
  const double eps_part = ctx.eps * opts.partition_frac;
  const double eps_meas = ctx.eps - eps_part;
  EK_ASSIGN_OR_RETURN(
      Partition p, AhpPartitionSelect(ctx.kernel, ctx.x, eps_part, opts.ahp));
  EK_ASSIGN_OR_RETURN(SourceId reduced,
                      ctx.kernel->VReduceByPartition(ctx.x, p));
  LinOpPtr reduce_op = ApplyMode(p.ReduceOp(), ctx.mode);
  LinOpPtr ident = ApplyMode(IdentitySelect(p.num_groups()), ctx.mode);
  EK_ASSIGN_OR_RETURN(Vec y,
                      ctx.kernel->VectorLaplace(reduced, *ident, eps_meas));
  MeasurementSet mset;
  // Identity on the reduced domain == the partition matrix on the
  // original domain; LS min-norm expands uniformly within groups.
  mset.Add(reduce_op, std::move(y), 1.0 / eps_meas);
  Vec xhat = LeastSquaresInference(mset);
  for (double& v : xhat) v = std::max(v, 0.0);
  return xhat;
}

// ------------------------------------------------------------------ DAWA

std::vector<RangeQuery> MapRangesToIntervalPartition(
    const std::vector<RangeQuery>& ranges, const Partition& p) {
  std::vector<RangeQuery> out;
  out.reserve(ranges.size());
  for (const auto& r : ranges) {
    const std::size_t glo = p.group_of(r.lo);
    const std::size_t ghi = p.group_of(r.hi);
    EK_CHECK_LE(glo, ghi);
    out.push_back({glo, ghi});
  }
  return out;
}

StatusOr<Vec> RunDawaPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const DawaPlanOptions& opts) {
  const double eps_part = ctx.eps * opts.partition_frac;
  const double eps_meas = ctx.eps - eps_part;
  EK_ASSIGN_OR_RETURN(
      Partition p,
      DawaPartitionSelect(ctx.kernel, ctx.x, eps_part, opts.dawa));
  EK_ASSIGN_OR_RETURN(SourceId reduced,
                      ctx.kernel->VReduceByPartition(ctx.x, p));
  auto reduced_workload = MapRangesToIntervalPartition(workload, p);
  LinOpPtr strategy =
      ApplyMode(GreedyHSelect(reduced_workload, p.num_groups()), ctx.mode);
  const double sens = strategy->SensitivityL1();
  EK_ASSIGN_OR_RETURN(
      Vec y, ctx.kernel->VectorLaplace(reduced, *strategy, eps_meas));
  if (!opts.dawa.cell_volumes.empty()) {
    // Cells are pre-merged groups with public volumes: solve on the
    // reduced domain and expand each group's total proportionally to
    // volume (uniform *density* within a group, not uniform count).
    MeasurementSet mset;
    mset.Add(strategy, std::move(y), sens / eps_meas);
    Vec z = LeastSquaresInference(mset);
    const std::size_t n = ctx.n();
    Vec group_vol(p.num_groups(), 0.0);
    for (std::size_t c = 0; c < n; ++c)
      group_vol[p.group_of(c)] += std::max(opts.dawa.cell_volumes[c], 1.0);
    Vec xhat(n);
    for (std::size_t c = 0; c < n; ++c) {
      const uint32_t g = p.group_of(c);
      xhat[c] = z[g] * std::max(opts.dawa.cell_volumes[c], 1.0) /
                group_vol[g];
    }
    return xhat;
  }
  MeasurementSet mset;
  mset.Add(MakeProduct(strategy, ApplyMode(p.ReduceOp(), ctx.mode)),
           std::move(y), sens / eps_meas);
  return LeastSquaresInference(mset);
}

}  // namespace ektelo
