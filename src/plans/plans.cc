#include "plans/plans.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "ops/hdmm.h"
#include "ops/inference.h"
#include "ops/selection.h"
#include "plans/pipeline.h"
#include "util/check.h"

namespace ektelo {

namespace {

/// Select-measure-infer: the shared backbone of plans #1-#6, #13 and the
/// workload baselines, as a three-stage pipeline.
std::unique_ptr<Plan> SelectMeasureLsPlan(std::string name,
                                          std::string signature,
                                          bool mode_sweep, SelectFn select) {
  PlanTraits traits{std::move(signature), DomainKind::k1D, mode_sweep};
  return std::make_unique<PipelinePlan>(
      std::move(name), std::move(traits),
      std::vector<Stage>{Select(std::move(select)), Measure(),
                         Infer(InferKind::kLeastSquares)});
}

}  // namespace

std::unique_ptr<Plan> MakeIdentityPlan() {
  // Identity needs no inference: the noisy counts are the estimate.
  return std::make_unique<PipelinePlan>(
      "Identity", PlanTraits{"SI LM", DomainKind::k1D, true},
      std::vector<Stage>{
          Select([](const StageContext& sc) -> StatusOr<LinOpPtr> {
            return IdentitySelect(sc.n());
          }),
          Measure(), Infer(InferKind::kNone)});
}

std::unique_ptr<Plan> MakeUniformPlan() {
  // ST LM LS: measure the total; min-norm LS spreads it uniformly.
  return SelectMeasureLsPlan(
      "Uniform", "ST LM LS", true,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        return TotalSelect(sc.n());
      });
}

std::unique_ptr<Plan> MakePriveletPlan() {
  // SP LM LS: per-dimension Haar wavelets composed by Kronecker.
  return SelectMeasureLsPlan(
      "Privelet", "SP LM LS", true,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        std::vector<LinOpPtr> factors;
        for (std::size_t d : sc.dims) {
          if (!IsPowerOfTwo(d))
            return Status::InvalidArgument(
                "Privelet requires power-of-two dimensions");
          factors.push_back(MakeWaveletOp(d));
        }
        return MakeKronecker(std::move(factors));
      });
}

std::unique_ptr<Plan> MakeH2Plan() {
  return SelectMeasureLsPlan(
      "H2", "SH2 LM LS", true,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        return H2Select(sc.n());
      });
}

std::unique_ptr<Plan> MakeHbPlan() {
  return SelectMeasureLsPlan(
      "HB", "SHB LM LS", true,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        return HbSelect(sc.n());
      });
}

std::unique_ptr<Plan> MakeGreedyHPlan() {
  return SelectMeasureLsPlan(
      "Greedy-H", "SG LM LS", true,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        return GreedyHSelect(sc.ranges, sc.n());
      });
}

std::unique_ptr<Plan> MakeHdmmPlan() {
  return SelectMeasureLsPlan(
      "HDMM", "SHD LM LS", false,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        if (sc.in->workload_factors.size() != sc.dims.size())
          return Status::InvalidArgument(
              "one workload factor per dimension");
        return HdmmSelect(sc.in->workload_factors, sc.dims);
      });
}

std::unique_ptr<Plan> MakeWorkloadPlan(bool ls_inference) {
  // The two baselines share one pipeline; the raw-answer variant also
  // reports the minimum-norm LS reconstruction so callers get an xhat
  // (the Naive-Bayes "Workload" baseline reads marginals off it).
  return SelectMeasureLsPlan(
      ls_inference ? "WorkloadLS" : "Workload",
      ls_inference ? "SW LM LS" : "SW LM", false,
      [](const StageContext& sc) -> StatusOr<LinOpPtr> {
        if (sc.in->workload) return sc.in->workload;
        if (!sc.ranges.empty()) return RangeQueryOp(sc.ranges, sc.n());
        return Status::InvalidArgument("Workload plan needs a workload");
      });
}

// ------------------------------------------------------------------- AHP

std::unique_ptr<Plan> MakeAhpPlan(const AhpPlanOptions& opts) {
  // PA TR SI LM LS: AHP partition, reduce, identity on the groups, LS
  // min-norm expansion (uniform within groups), clamped at zero.
  return std::make_unique<PipelinePlan>(
      "AHP", PlanTraits{"PA TR SI LM LS", DomainKind::k1D, false},
      std::vector<Stage>{
          PartitionBy(
              [ahp = opts.ahp](StageContext& sc, double eps,
                               BudgetScope& scope) {
                return AhpPartitionSelect(*sc.data, eps, scope, ahp);
              },
              opts.partition_frac, /*remap_ranges=*/false),
          Select([](const StageContext& sc) -> StatusOr<LinOpPtr> {
            return IdentitySelect(sc.n());
          }),
          Measure(), Infer(InferKind::kClampedLeastSquares)});
}

// ------------------------------------------------------------------ DAWA

std::vector<RangeQuery> MapRangesToIntervalPartition(
    const std::vector<RangeQuery>& ranges, const Partition& p) {
  std::vector<RangeQuery> out;
  out.reserve(ranges.size());
  for (const auto& r : ranges) {
    const std::size_t glo = p.group_of(r.lo);
    const std::size_t ghi = p.group_of(r.hi);
    EK_CHECK_LE(glo, ghi);
    out.push_back({glo, ghi});
  }
  return out;
}

std::unique_ptr<Plan> MakeDawaPlan(const DawaPlanOptions& opts) {
  // PD TR SG LM LS: DAWA stage-1 partition, reduce, Greedy-H on the
  // remapped workload, LS (volume-aware when public cell volumes exist).
  return std::make_unique<PipelinePlan>(
      "DAWA", PlanTraits{"PD TR SG LM LS", DomainKind::k1D, false},
      std::vector<Stage>{
          PartitionBy(
              [dawa = opts.dawa](StageContext& sc, double eps,
                                 BudgetScope& scope) {
                if (!dawa.cell_volumes.empty())
                  sc.cell_volumes = dawa.cell_volumes;
                return DawaPartitionSelect(*sc.data, eps, scope, dawa);
              },
              opts.partition_frac, /*remap_ranges=*/true),
          Select([](const StageContext& sc) -> StatusOr<LinOpPtr> {
            return GreedyHSelect(sc.ranges, sc.n());
          }),
          Measure(), Infer(InferKind::kLeastSquares)});
}

// ------------------------------------------------------------------ MWEM

namespace {

/// Variant b/d query-selection augmentation: tile the domain outside the
/// selected range with disjoint intervals of length 2^(round-1) — free to
/// measure alongside q under parallel composition (sensitivity stays 1).
std::vector<RangeQuery> AugmentDisjoint(const RangeQuery& q, std::size_t n,
                                        std::size_t round) {
  std::vector<RangeQuery> extra;
  const std::size_t len = std::min<std::size_t>(
      std::size_t{1} << std::min<std::size_t>(round - 1, 30), n);
  auto tile = [&](std::size_t lo, std::size_t hi_excl) {
    for (std::size_t p = lo; p < hi_excl; p += len)
      extra.push_back({p, std::min(p + len, hi_excl) - 1});
  };
  if (q.lo > 0) tile(0, q.lo);
  if (q.hi + 1 < n) tile(q.hi + 1, n);
  return extra;
}

/// The four MWEM variants as one parameterized loop plan (#7, #18-#20):
/// round = exponential-mechanism selection, Laplace measurement
/// (optionally augmented with disjoint hierarchical queries), then either
/// multiplicative weights or warm-started NNLS inference.
class MwemLoopPlan final : public Plan {
 public:
  explicit MwemLoopPlan(const MwemOptions& opts)
      : Plan(NameFor(opts),
             PlanTraits{SignatureFor(opts), DomainKind::k1D, false}),
        opts_(opts) {}

  StatusOr<Vec> Execute(const ProtectedVector& x, BudgetScope& scope,
                        const PlanInput& in) const override {
    EK_RETURN_IF_ERROR(ResolveDims(x, in).status());
    const std::size_t n = x.size();
    if (opts_.rounds == 0)
      return Status::InvalidArgument("rounds must be > 0");
    const double total =
        in.known_total > 0.0 ? in.known_total : opts_.known_total;
    if (total <= 0.0)
      return Status::InvalidArgument(
          "MWEM requires a positive known total");
    if (in.ranges.empty())
      return Status::InvalidArgument("MWEM needs a range workload");
    LinOpPtr w_op = ApplyMode(RangeQueryOp(in.ranges, n), in.mode);

    const double eps = scope.remaining();
    const double eps_round = eps / double(opts_.rounds);
    const double eps_select = eps_round / 2.0;
    const double eps_measure = eps_round / 2.0;

    Vec xhat(n, total / double(n));
    MeasurementSet mset;
    // Variant c/d inference state: the measurement union maintained as
    // ONE RangeSetOp (all rounds share a noise scale, so the merged
    // operator is exactly the stacked system).  NNLS gram applies then
    // cost one prefix-sum pass instead of one per round — the same
    // canonical form the rewrite engine derives for the MW variants, but
    // applied at plan level so EKTELO_REWRITE=0 shares it: projected-
    // gradient inference selects among non-unique minimizers in a
    // representation-sensitive way, so both A/B paths must hand the
    // solver bitwise-identical operators (see NnlsInference).
    std::vector<Interval> measured;
    Vec measured_y;
    for (std::size_t round = 1; round <= opts_.rounds; ++round) {
      EK_ASSIGN_OR_RETURN(
          std::size_t pick, x.WorstApprox(*w_op, xhat, eps_select, scope));
      std::vector<RangeQuery> to_measure = {in.ranges[pick]};
      if (opts_.augment_h2) {
        auto extra = AugmentDisjoint(in.ranges[pick], n, round);
        to_measure.insert(to_measure.end(), extra.begin(), extra.end());
      }
      LinOpPtr m = ApplyMode(RangeQueryOp(to_measure, n), in.mode);
      // Disjoint ranges: sensitivity 1 whether or not we augmented.
      EK_ASSIGN_OR_RETURN(Vec y, x.Laplace(*m, eps_measure, scope));

      if (opts_.nnls_inference) {
        for (const auto& q : to_measure) measured.push_back({q.lo, q.hi});
        measured_y.insert(measured_y.end(), y.begin(), y.end());
        MeasurementSet merged;
        merged.Add(ApplyMode(MakeRangeSetOp(measured, n), in.mode),
                   measured_y, 1.0 / eps_measure);
        // Warm-start from the previous round's estimate: faster and keeps
        // the uniform prior in yet-unmeasured directions, like MW.
        xhat = NnlsInference(merged, total, {.max_iters = 300, .x0 = xhat});
      } else {
        mset.Add(m, std::move(y), 1.0 / eps_measure);
        xhat = MultWeightsStep(mset, std::move(xhat),
                               {.iterations = opts_.mw_iterations});
      }
    }
    return xhat;
  }

 private:
  static std::string NameFor(const MwemOptions& o) {
    if (o.augment_h2 && o.nnls_inference) return "MWEM variant d";
    if (o.augment_h2) return "MWEM variant b";
    if (o.nnls_inference) return "MWEM variant c";
    return "MWEM";
  }
  static std::string SignatureFor(const MwemOptions& o) {
    if (o.augment_h2 && o.nnls_inference) return "I:( SW SH2 LM NLS )";
    if (o.augment_h2) return "I:( SW SH2 LM MW )";
    if (o.nnls_inference) return "I:( SW LM NLS )";
    return "I:( SW LM MW )";
  }

  MwemOptions opts_;
};

}  // namespace

std::unique_ptr<Plan> MakeMwemPlan(const MwemOptions& opts) {
  return std::make_unique<MwemLoopPlan>(opts);
}

// ------------------------------------------------------ registration

namespace plan_registration {

void RegisterCatalogPlans(PlanRegistry& registry) {
  registry.MustRegister(MakeIdentityPlan());
  registry.MustRegister(MakePriveletPlan());
  registry.MustRegister(MakeH2Plan());
  registry.MustRegister(MakeHbPlan());
  registry.MustRegister(MakeGreedyHPlan());
  registry.MustRegister(MakeUniformPlan());
  registry.MustRegister(MakeMwemPlan({}));
  registry.MustRegister(MakeAhpPlan({}));
  registry.MustRegister(MakeDawaPlan({}));
  registry.MustRegister(MakeHdmmPlan());
  registry.MustRegister(MakeMwemPlan({.augment_h2 = true}));
  registry.MustRegister(MakeMwemPlan({.nnls_inference = true}));
  registry.MustRegister(
      MakeMwemPlan({.augment_h2 = true, .nnls_inference = true}));
  registry.MustRegister(MakeWorkloadPlan(/*ls_inference=*/false));
  registry.MustRegister(MakeWorkloadPlan(/*ls_inference=*/true));
}

}  // namespace plan_registration

// ------------------------------------------------- deprecated Run* shims

namespace {

const Plan& RegisteredPlan(const char* name) {
  return PlanRegistry::Global().MustFind(name);
}

}  // namespace

StatusOr<Vec> RunIdentityPlan(const PlanContext& ctx) {
  return ExecuteWithContext(RegisteredPlan("Identity"), ctx);
}

StatusOr<Vec> RunUniformPlan(const PlanContext& ctx) {
  return ExecuteWithContext(RegisteredPlan("Uniform"), ctx);
}

StatusOr<Vec> RunPriveletPlan(const PlanContext& ctx) {
  return ExecuteWithContext(RegisteredPlan("Privelet"), ctx);
}

StatusOr<Vec> RunH2Plan(const PlanContext& ctx) {
  return ExecuteWithContext(RegisteredPlan("H2"), ctx);
}

StatusOr<Vec> RunHbPlan(const PlanContext& ctx) {
  return ExecuteWithContext(RegisteredPlan("HB"), ctx);
}

StatusOr<Vec> RunGreedyHPlan(const PlanContext& ctx,
                             const std::vector<RangeQuery>& workload) {
  PlanInput in;
  in.ranges = workload;
  return ExecuteWithContext(RegisteredPlan("Greedy-H"), ctx, std::move(in));
}

StatusOr<Vec> RunMwemPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const MwemOptions& opts) {
  PlanInput in;
  in.ranges = workload;
  in.known_total = opts.known_total;
  return ExecuteWithContext(*MakeMwemPlan(opts), ctx, std::move(in));
}

StatusOr<Vec> RunAhpPlan(const PlanContext& ctx, const AhpPlanOptions& opts) {
  return ExecuteWithContext(*MakeAhpPlan(opts), ctx);
}

StatusOr<Vec> RunDawaPlan(const PlanContext& ctx,
                          const std::vector<RangeQuery>& workload,
                          const DawaPlanOptions& opts) {
  PlanInput in;
  in.ranges = workload;
  return ExecuteWithContext(*MakeDawaPlan(opts), ctx, std::move(in));
}

StatusOr<Vec> RunHdmmPlan(const PlanContext& ctx,
                          const std::vector<LinOpPtr>& workload_factors) {
  PlanInput in;
  in.workload_factors = workload_factors;
  return ExecuteWithContext(RegisteredPlan("HDMM"), ctx, std::move(in));
}

StatusOr<Vec> RunWorkloadPlan(const PlanContext& ctx, LinOpPtr workload,
                              bool ls_inference) {
  PlanInput in;
  in.workload = std::move(workload);
  return ExecuteWithContext(
      RegisteredPlan(ls_inference ? "WorkloadLS" : "Workload"), ctx,
      std::move(in));
}

}  // namespace ektelo
