// Workload-driven plan wrapper (Sec. 8 as a first-class operator): given
// any vector plan, run it on the workload-reduced domain and expand the
// estimate back.  By Prop. 8.3 workload answers are preserved and by
// Thm. 8.4 least-squares error can only improve; Table 6 measures the
// practical gains.
#ifndef EKTELO_PLANS_REDUCTION_WRAPPER_H_
#define EKTELO_PLANS_REDUCTION_WRAPPER_H_

#include <functional>

#include "plans/plan.h"
#include "workload/reduction.h"

namespace ektelo {

/// A plan body to run on the (reduced) domain.  Receives the adjusted
/// context plus the reduction partition (so range workloads can be
/// remapped via MapRangesToIntervalPartition and data-dependent selectors
/// can normalize by group volume).
using ReducedPlanFn =
    std::function<StatusOr<Vec>(const PlanContext&, const Partition&)>;

/// Compute the workload-based partition of `workload` (Algorithm 4,
/// public), reduce the protected vector, run `body` on the reduced
/// context, and expand the estimate uniformly within groups (P+).
StatusOr<Vec> RunWithWorkloadReduction(const PlanContext& ctx,
                                       const LinOp& workload,
                                       const ReducedPlanFn& body);

}  // namespace ektelo

#endif  // EKTELO_PLANS_REDUCTION_WRAPPER_H_
