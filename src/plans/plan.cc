#include "plans/plan.h"

namespace ektelo {

const char* MatrixModeName(MatrixMode mode) {
  switch (mode) {
    case MatrixMode::kDense:
      return "dense";
    case MatrixMode::kSparse:
      return "sparse";
    case MatrixMode::kImplicit:
      return "implicit";
  }
  return "?";
}

LinOpPtr ApplyMode(LinOpPtr op, MatrixMode mode) {
  switch (mode) {
    case MatrixMode::kImplicit:
      return op;
    case MatrixMode::kSparse:
      return MakeSparse(op->MaterializeSparse());
    case MatrixMode::kDense:
      return MakeDense(op->MaterializeDense());
  }
  return op;
}

}  // namespace ektelo
