#include "plans/plan.h"

#include "matrix/rewrite.h"

namespace ektelo {

const char* MatrixModeName(MatrixMode mode) {
  switch (mode) {
    case MatrixMode::kDense:
      return "dense";
    case MatrixMode::kSparse:
      return "sparse";
    case MatrixMode::kImplicit:
      return "implicit";
  }
  return "?";
}

LinOpPtr ApplyMode(LinOpPtr op, MatrixMode mode) {
  // Conversions run on the blocked core: structured operators materialize
  // directly, everything else streams identity panels through
  // ApplyBlockRaw (LinOp's fallback).  Operators already in the requested
  // representation pass through untouched.
  switch (mode) {
    case MatrixMode::kImplicit:
      return op;
    case MatrixMode::kSparse:
      if (std::dynamic_pointer_cast<const SparseOp>(op)) return op;
      // Conversions memoize through the OperatorCache: plans rebuild
      // structurally identical strategies every execution (and per
      // grid/stripe branch), and materialization is the expensive step
      // of the dense/sparse representation sweep.  A hit returns the
      // shared leaf instance — no matrix copy, and its per-instance
      // sensitivity caches come along.
      if (RewriteEnabled())
        return OperatorCache::Global().SparseWrapped(op);
      return MakeSparse(op->MaterializeSparse());
    case MatrixMode::kDense:
      if (std::dynamic_pointer_cast<const DenseOp>(op)) return op;
      if (RewriteEnabled())
        return OperatorCache::Global().DenseWrapped(op);
      return MakeDense(op->MaterializeDense());
  }
  return op;
}

}  // namespace ektelo
