// 2D spatial plans (Fig. 2 #10-#12): Quadtree, UniformGrid, AdaptiveGrid.
// All expect dims = {nx, ny}.
//
// Registered in PlanRegistry as "QuadTree", "UniformGrid" and
// "AdaptiveGrid"; the Run* functions are deprecated shims over the
// registered plans.  AdaptiveGrid exercises the parallel-composition side
// of the BudgetScope API: its level-2 refinement measures every block of a
// VSplitByPartition under SplitParallel sub-scopes.
#ifndef EKTELO_PLANS_GRID_PLANS_H_
#define EKTELO_PLANS_GRID_PLANS_H_

#include <memory>

#include "plans/plan.h"
#include "plans/registry.h"

namespace ektelo {

/// #10 Quadtree: SQ LM LS.
std::unique_ptr<Plan> MakeQuadtreePlan();

struct UGridOptions {
  /// Share of eps used to estimate N for the grid-size rule.
  double total_frac = 0.05;
  double c = 10.0;  // Qardaji et al.'s constant
};
/// #11 UniformGrid: SU LM LS.
std::unique_ptr<Plan> MakeUniformGridPlan(const UGridOptions& opts = {});

struct AGridOptions {
  double total_frac = 0.05;
  double level1_frac = 0.30;  // of the remainder
  double c1 = 40.0;           // coarse first-level constant
  double c2 = 5.0;            // second-level constant
};
/// #12 AdaptiveGrid: SU LM LS PU TP[ SA LM ] — coarse grid, then a
/// per-cell second-level grid sized by the first level's noisy counts,
/// measured in parallel across the partition, then global LS.
std::unique_ptr<Plan> MakeAdaptiveGridPlan(const AGridOptions& opts = {});

// Deprecated shims (see plans.h).
StatusOr<Vec> RunQuadtreePlan(const PlanContext& ctx);
StatusOr<Vec> RunUniformGridPlan(const PlanContext& ctx,
                                 const UGridOptions& opts = {});
StatusOr<Vec> RunAdaptiveGridPlan(const PlanContext& ctx,
                                  const AGridOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_PLANS_GRID_PLANS_H_
