// 2D spatial plans (Fig. 2 #10-#12): Quadtree, UniformGrid, AdaptiveGrid.
// All expect ctx.dims = {nx, ny}.
#ifndef EKTELO_PLANS_GRID_PLANS_H_
#define EKTELO_PLANS_GRID_PLANS_H_

#include "plans/plan.h"

namespace ektelo {

/// #10 Quadtree: SQ LM LS.
StatusOr<Vec> RunQuadtreePlan(const PlanContext& ctx);

struct UGridOptions {
  /// Share of eps used to estimate N for the grid-size rule.
  double total_frac = 0.05;
  double c = 10.0;  // Qardaji et al.'s constant
};
/// #11 UniformGrid: SU LM LS.
StatusOr<Vec> RunUniformGridPlan(const PlanContext& ctx,
                                 const UGridOptions& opts = {});

struct AGridOptions {
  double total_frac = 0.05;
  double level1_frac = 0.30;  // of the remainder
  double c1 = 40.0;           // coarse first-level constant
  double c2 = 5.0;            // second-level constant
};
/// #12 AdaptiveGrid: SU LM LS PU TP[ SA LM ] — coarse grid, then a
/// per-cell second-level grid sized by the first level's noisy counts,
/// measured in parallel across the partition, then global LS.
StatusOr<Vec> RunAdaptiveGridPlan(const PlanContext& ctx,
                                  const AGridOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_PLANS_GRID_PLANS_H_
