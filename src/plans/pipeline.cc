#include "plans/pipeline.h"

#include <algorithm>
#include <utility>

#include "matrix/combinators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/inference.h"
#include "plans/plans.h"
#include "util/check.h"

namespace ektelo {

namespace {
// One latency series per stage kind; the stage name doubles as the
// span type ("plan.select", "plan.measure", ...).
obs::Histogram& StageSeconds(const char* stage_label) {
  obs::Registry& r = obs::Registry::Global();
  static obs::Histogram& select = r.GetHistogram(
      "ektelo_plan_stage_seconds", "Wall time of one plan pipeline stage",
      "stage=\"select\"");
  static obs::Histogram& measure = r.GetHistogram(
      "ektelo_plan_stage_seconds", "Wall time of one plan pipeline stage",
      "stage=\"measure\"");
  static obs::Histogram& partition = r.GetHistogram(
      "ektelo_plan_stage_seconds", "Wall time of one plan pipeline stage",
      "stage=\"partition\"");
  static obs::Histogram& infer = r.GetHistogram(
      "ektelo_plan_stage_seconds", "Wall time of one plan pipeline stage",
      "stage=\"infer\"");
  switch (stage_label[0]) {
    case 's':
      return select;
    case 'm':
      return measure;
    case 'p':
      return partition;
    default:
      return infer;
  }
}
}  // namespace

Stage Select(SelectFn fn) {
  return [fn = std::move(fn)](StageContext& sc) -> Status {
    obs::Span span("plan.select", "plan", &StageSeconds("select"));
    EK_ASSIGN_OR_RETURN(LinOpPtr op, fn(sc));
    span.Attr("rows", static_cast<double>(op->rows()));
    span.Attr("cols", static_cast<double>(op->cols()));
    sc.strategy = ApplyMode(std::move(op), sc.mode);
    return Status::Ok();
  };
}

Stage Measure() {
  return [](StageContext& sc) -> Status {
    if (!sc.strategy)
      return Status::FailedPrecondition("Measure before Select");
    obs::Span span("plan.measure", "plan", &StageSeconds("measure"));
    span.Attr("rows", static_cast<double>(sc.strategy->rows()));
    const double eps = sc.scope->remaining();
    span.Attr("epsilon", eps);
    // SensitivityL1 consults the process-wide OperatorCache (keyed by
    // structural hash) when rewriting is enabled, so the grid/striped
    // plans that select structurally identical strategies per branch —
    // and repeated executions of the same plan — compute it once.
    const double sens = sc.strategy->SensitivityL1();
    EK_ASSIGN_OR_RETURN(Vec y,
                        sc.data->Laplace(*sc.strategy, eps, *sc.scope));
    sc.mset.Add(sc.strategy, std::move(y), sens / eps);
    sc.mset_reduce.push_back(sc.reduce_op);
    return Status::Ok();
  };
}

Stage PartitionBy(PartitionFn fn, double frac, bool remap_ranges) {
  return [fn = std::move(fn), frac, remap_ranges](StageContext& sc)
             -> Status {
    obs::Span span("plan.partition", "plan", &StageSeconds("partition"));
    EK_ASSIGN_OR_RETURN(std::vector<BudgetScope> parts,
                        sc.scope->Split({frac, 1.0 - frac}));
    sc.scopes.push_back(std::move(parts[0]));
    BudgetScope& selection = sc.scopes.back();
    sc.scopes.push_back(std::move(parts[1]));
    BudgetScope& rest = sc.scopes.back();

    EK_ASSIGN_OR_RETURN(Partition p,
                        fn(sc, selection.remaining(), selection));
    EK_ASSIGN_OR_RETURN(ProtectedVector reduced,
                        sc.data->ReduceByPartition(p));
    sc.derived.push_back(std::move(reduced));
    sc.data = &sc.derived.back();

    LinOpPtr rop = ApplyMode(p.ReduceOp(), sc.mode);
    sc.reduce_op =
        sc.reduce_op ? MakeProduct(std::move(rop), sc.reduce_op) : rop;
    if (remap_ranges)
      sc.ranges = MapRangesToIntervalPartition(sc.ranges, p);
    sc.dims = {p.num_groups()};
    sc.partition = std::move(p);
    sc.scope = &rest;
    return Status::Ok();
  };
}

namespace {

/// Legacy DAWA volume-aware expansion: solve on the reduced domain, then
/// spread each group's total proportionally to public cell volume
/// (uniform *density* within a group, not uniform count).
Vec VolumeExpand(const MeasurementSet& mset, const Partition& p,
                 const Vec& volumes) {
  Vec z = LeastSquaresInference(mset);
  const std::size_t n = volumes.size();
  Vec group_vol(p.num_groups(), 0.0);
  for (std::size_t c = 0; c < n; ++c)
    group_vol[p.group_of(c)] += std::max(volumes[c], 1.0);
  Vec xhat(n);
  for (std::size_t c = 0; c < n; ++c) {
    const uint32_t g = p.group_of(c);
    xhat[c] = z[g] * std::max(volumes[c], 1.0) / group_vol[g];
  }
  return xhat;
}

}  // namespace

Stage Infer(InferKind kind) {
  return [kind](StageContext& sc) -> Status {
    if (sc.mset.empty())
      return Status::FailedPrecondition("Infer with no measurements");
    obs::Span span("plan.infer", "plan", &StageSeconds("infer"));
    span.Attr("measurements", static_cast<double>(sc.mset.size()));
    if (kind == InferKind::kNone) {
      sc.estimate = sc.mset.items().back().y;
      return Status::Ok();
    }
    EK_CHECK_EQ(sc.mset.size(), sc.mset_reduce.size());
    if (sc.reduce_op && !sc.cell_volumes.empty()) {
      // Volume-aware expansion solves on the final reduced domain, which
      // only makes sense if every measurement was taken there.
      for (const LinOpPtr& r : sc.mset_reduce)
        if (r != sc.reduce_op)
          return Status::FailedPrecondition(
              "volume-aware inference needs all measurements on the "
              "final reduced domain");
      EK_CHECK(sc.partition.has_value());
      sc.estimate = VolumeExpand(sc.mset, *sc.partition, sc.cell_volumes);
    } else if (sc.reduce_op) {
      // Compose each measurement with the reductions in force when it
      // was taken (later reductions do not apply to it), so inference
      // runs once, globally, on the original domain.
      MeasurementSet global;
      const auto& items = sc.mset.items();
      for (std::size_t i = 0; i < items.size(); ++i) {
        const LinOpPtr& reduce = sc.mset_reduce[i];
        // The composed reduce chains are canonicalized (sparse P fused
        // into sparse strategies, identity reductions dropped) by the
        // whole-stack rewrite inside LeastSquaresInference — one pass
        // over the final tree instead of one per measurement here.
        global.Add(reduce ? MakeProduct(items[i].m, reduce) : items[i].m,
                   items[i].y, items[i].noise_scale);
      }
      sc.estimate = LeastSquaresInference(global);
    } else {
      sc.estimate = LeastSquaresInference(sc.mset);
    }
    if (kind == InferKind::kClampedLeastSquares)
      for (double& v : sc.estimate) v = std::max(v, 0.0);
    return Status::Ok();
  };
}

PipelinePlan::PipelinePlan(std::string name, PlanTraits traits,
                           std::vector<Stage> stages)
    : Plan(std::move(name), std::move(traits)), stages_(std::move(stages)) {}

StatusOr<Vec> PipelinePlan::Execute(const ProtectedVector& x,
                                    BudgetScope& scope,
                                    const PlanInput& in) const {
  obs::Span span("plan.execute", "plan");
  span.Attr("stages", static_cast<double>(stages_.size()));
  StageContext sc;
  EK_ASSIGN_OR_RETURN(sc.dims, ResolveDims(x, in));
  sc.in = &in;
  sc.mode = in.mode;
  sc.data = &x;
  sc.scope = &scope;
  sc.ranges = in.ranges;
  for (const Stage& stage : stages_) EK_RETURN_IF_ERROR(stage(sc));
  return std::move(sc.estimate);
}

}  // namespace ektelo
