#include "plans/reduction_wrapper.h"

#include "util/check.h"

namespace ektelo {

StatusOr<Vec> RunWithWorkloadReduction(const PlanContext& ctx,
                                       const LinOp& workload,
                                       const ReducedPlanFn& body) {
  if (workload.cols() != ctx.n())
    return Status::InvalidArgument("workload does not match domain");
  // Algorithm 4 runs entirely in client space: the workload is public.
  Partition p = WorkloadBasedPartition(workload, ctx.rng);
  EK_ASSIGN_OR_RETURN(SourceId reduced,
                      ctx.kernel->VReduceByPartition(ctx.x, p));
  PlanContext inner = ctx;
  inner.x = reduced;
  inner.dims = {p.num_groups()};
  EK_ASSIGN_OR_RETURN(Vec xr, body(inner, p));
  if (xr.size() != p.num_groups())
    return Status::Internal("reduced plan returned wrong size");
  return ExpandEstimate(p, xr);
}

}  // namespace ektelo
