// Analytic cost model for LinOp expression trees: the single queryable
// policy behind the rewrite engine's decisions (matrix/rules.h proposes
// candidates, matrix/search.h picks among them by these estimates).
//
// Every operator kind gets closed-form estimates of the work one
// Apply/ApplyT performs — floating-point operations and bytes touched —
// plus the bytes of materialized state the tree pins while alive.  A
// scalar score converts {flops, bytes} to roofline seconds using rates
// measured on this codebase's own kernels (the single-thread scalar rows
// of BENCH_parallel_scaling.json), so "cheaper" means cheaper on the
// machine model the SIMD benchmarks validated, not an abstract flop
// count.
//
// The hard guards that used to live as magic numbers inside the rewrite
// pass (the sparse-fuse flop budget, the no-denser-than-factors rule)
// are named constants here so both the fixed-order rules pass and the
// beam search apply exactly the same policy.
#ifndef EKTELO_MATRIX_COST_H_
#define EKTELO_MATRIX_COST_H_

#include <cstddef>
#include <cstdint>

#include "matrix/linop.h"

namespace ektelo {

// ------------------------------------------------------------- guards
// (formerly inline literals in rewrite.cc's Producted)

/// Budget for eagerly multiplying two CSR leaves during rewriting: the
/// update count of the row-wise product (CsrMatrix::MatmulUpdateBound)
/// must stay within this, so canonicalization never stalls a solver
/// thread on an enormous sparse matmul.
inline constexpr std::size_t kSparseFuseMaxUpdates = std::size_t{1} << 24;

/// No-denser-than-factors rule: a fused product leaf is kept only when
/// nnz(AB) <= ratio * (nnz(A) + nnz(B)).  At 1.0 the per-apply cost can
/// only improve — e.g. P P^T of a partition collapses to a diagonal.
inline constexpr double kSparseFuseMaxDensityRatio = 1.0;

/// The update-count budget of the sparse-fuse rule.
inline bool SparseFuseWithinBudget(std::size_t update_bound) {
  return update_bound <= kSparseFuseMaxUpdates;
}

/// The no-denser-than-factors guard of the sparse-fuse rule.
inline bool SparseFuseKeepsDensity(std::size_t fused_nnz, std::size_t nnz_a,
                                   std::size_t nnz_b) {
  return double(fused_nnz) <=
         kSparseFuseMaxDensityRatio * double(nnz_a + nnz_b);
}

// ------------------------------------------------------- search knobs

/// Beam width of the rewrite search: candidates kept per node.
inline constexpr std::size_t kSearchBeamWidth = 4;

/// Update-count budget for materializations the *search* proposes (a
/// composed-vs-materialize decision multiplies real matrices while
/// searching, so it is bounded tighter than the rules-mode fuse).
inline constexpr std::size_t kSearchMaterializeMaxUpdates =
    std::size_t{1} << 22;

/// A candidate pinning more materialized bytes than this is discarded
/// regardless of its per-apply score.
inline constexpr double kSearchMaxFootprintBytes = 64.0 * double(1 << 20);

/// Monotone-cost pruning: per-apply cost is monotone under composition
/// (a node costs at least the children it evaluates), so a candidate
/// subtree scoring worse than this multiple of the beam's best cannot
/// be rescued by any enclosing context that evaluates it — it is pruned.
inline constexpr double kSearchPruneRatio = 8.0;

/// The search replaces the fixed-order rules tree only when a candidate
/// is predicted at least this much cheaper (score < ratio * rules
/// score).  Everything within the margin keeps the rules tree, so
/// `search` mode degrades to `rules` — never to a model-noise coin flip.
inline constexpr double kSearchImprovementRatio = 0.9;

/// Byte budget for the beam searcher's cross-call memo (beams plus the
/// canonicalizer memo behind them).  Iterative plans mint one strictly
/// larger measurement union per round; memoizing the whole sequence
/// pins every round's merged tree, so each new round's merge allocates
/// cold pages instead of recycling the rounds the plan abandoned —
/// measured as a ~4x slowdown of the merge itself.  When the tracked
/// bytes exceed this budget the memo is dropped wholesale (between
/// searches, so no in-flight beam reference dangles); what it held is
/// either trivially recomputed (leaf beams) or dead (old unions).
inline constexpr std::size_t kSearchMemoMaxBytes = std::size_t{4} << 20;

/// Trees predicted to apply in under this many roofline seconds are not
/// searched at all — SearchRewrite falls straight through to the rules
/// pass.  The search can save at most the tree's own per-apply cost, so
/// below this floor the best possible win is smaller than the hashing,
/// caching and scoring the search itself costs (striped plans' per-
/// stripe operators are the motivating case).  Trees at or above the
/// floor — composed-vs-materialize decisions, measurement-union stacks —
/// go through the full beam search and the canonical-tree cache.
inline constexpr double kSearchMinApplySeconds = 1.2e-5;

// -------------------------------------------------- roofline calibration
//
// Single-thread scalar rates measured by bench_parallel_scaling on this
// repo's own kernels (committed BENCH_parallel_scaling.json):
//
//   dense_matmat / scalar:   5.25 GFLOP/s   (compute-bound row)
//   haar_analysis / scalar:  1.90 GB/s      (memory-bound row; the CSR
//                            rows sit at 0.8-1.7 GB/s of *unique* bytes)
//
// Estimated seconds for one apply = max(flops / rate, bytes / rate):
// the classic roofline.  Only ratios between candidate trees matter to
// the search, so the scalar baseline is the right calibration point —
// SIMD and threading scale both sides of a comparison similarly.

inline constexpr double kRooflineFlopsPerSec = 5.25e9;
inline constexpr double kRooflineBytesPerSec = 1.90e9;

// ------------------------------------------------------------ estimates

/// Analytic cost of one operator (tree) evaluation.
struct OpCost {
  double apply_flops = 0.0;      ///< flops of one Apply (mat-vec)
  double apply_bytes = 0.0;      ///< bytes touched by one Apply
  double footprint_bytes = 0.0;  ///< materialized state the tree pins
};

/// Recursive closed-form estimate for any built-in operator kind.
/// Unknown LinOp subclasses are scored as if dense (the conservative
/// upper bound), so the search never prefers a tree because it failed to
/// model it.  Deterministic: a pure function of the tree's structure.
OpCost EstimateOpCost(const LinOp& op);

/// Roofline seconds for one Apply of a tree with cost `c`.
double ApplySeconds(const OpCost& c);

/// The search objective: ApplySeconds(EstimateOpCost(op)).  Lower is
/// better; ties are broken toward the fixed-order rules tree.
double TreeScore(const LinOp& op);

/// The score a `rows x cols` CSR leaf with `nnz` stored entries *would*
/// get from EstimateOpCost — same formula, no matrix required.  Lets a
/// materialize rule reject a proposal analytically instead of paying
/// O(nnz) to construct a candidate the beam would immediately discard
/// (exact for Kronecker flattening, where fused nnz = nnz(A) * nnz(B)).
double SparseLeafApplySeconds(std::size_t rows, std::size_t cols, double nnz);

/// Approximate bytes a tree pins while someone holds it alive: leaf
/// payloads (dense data, CSR arrays, interval/rectangle lists) plus a
/// fixed per-node overhead.  Shared subtrees are counted once per
/// reference — over-, never under-counting against a byte bound.  Used
/// by OperatorCache and the beam searcher to budget what their caches
/// keep resident.
std::size_t ApproxRetainedBytes(const LinOp& op);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_COST_H_
