#include "matrix/search.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "matrix/combinators.h"
#include "matrix/cost.h"
#include "matrix/rules.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace ektelo {

namespace {

// Registry-backed counters are the source of truth (exported as
// ektelo_rewrite_* by the serve Prometheus endpoint).  They stay
// monotone; ResetSearchStats rebases the snapshot the legacy
// SearchStats struct reports instead of zeroing them.
obs::Counter& SearchesCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_rewrite_searches", "Beam-search canonicalizations run");
  return c;
}
obs::Counter& ExpansionsCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_rewrite_beam_expansions",
      "Beam candidates generated across all searches");
  return c;
}
obs::Counter& PrunedCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_rewrite_beam_pruned",
      "Beam candidates dropped by cost/footprint pruning");
  return c;
}
obs::Histogram& SearchSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_rewrite_search_seconds",
      "Wall time of one beam-search canonicalization");
  return h;
}

std::atomic<uint64_t> g_searches_base{0};
std::atomic<uint64_t> g_expansions_base{0};
std::atomic<uint64_t> g_pruned_base{0};

using rules::OpAs;

struct Candidate {
  LinOpPtr op;
  double score = 0.0;
  double footprint = 0.0;  ///< materialized bytes (cached from scoring)
  uint64_t hash = 0;
  bool from_rules = false;  ///< produced by the fixed-order rules pass
};

/// The searcher persists across SearchCanonicalize calls (behind one
/// process-wide mutex): per-node beams are memoized by node *identity*,
/// and iterative plans (MWEM) rebuild each round's measurement stack
/// over the previous rounds' subtree pointers — so round k's search only
/// expands the handful of genuinely new nodes instead of re-searching
/// the whole stack.  The memo pins its keys alive (same discipline as
/// rules::Canonicalizer), which also makes pointer-keyed reuse safe:
/// an address can never be recycled while its entry is live.  Determinism
/// is unaffected — a beam is a pure function of its subtree, so a memo
/// hit returns exactly what recomputing would.
class BeamSearcher {
 public:
  /// Chooses the canonical tree for `op`: the beam's best candidate if
  /// it beats the rules tree by the improvement margin, else the rules
  /// tree itself (which is the original pointer when nothing fired).
  /// Caller holds mu().
  LinOpPtr Root(const LinOpPtr& op, bool* improved) {
    // Bound the cross-call memo — by entry count and by pinned bytes
    // (kSearchMemoMaxBytes; iterative plans would otherwise pin every
    // round's merged union and turn later merges page-fault-bound).
    // Trimming only between searches keeps in-flight beam references
    // valid.
    if (memo_.size() > kMemoCap || memo_bytes_ > kSearchMemoMaxBytes) {
      memo_.clear();
      canon_ = rules::Canonicalizer();
      memo_bytes_ = 0;
    }
    const std::vector<Candidate>& beam = Beam(op);
    const Candidate* rules_c = nullptr;
    for (const Candidate& c : beam)
      if (c.from_rules) {
        rules_c = &c;
        break;
      }
    EK_CHECK(rules_c != nullptr);
    const Candidate& best = beam.front();
    if (!best.from_rules &&
        best.score < kSearchImprovementRatio * rules_c->score) {
      if (improved != nullptr) *improved = true;
      return best.op;
    }
    if (improved != nullptr) *improved = false;
    return rules_c->op;
  }

  std::mutex& mu() { return mu_; }

  static BeamSearcher& Global() {
    static BeamSearcher* s = new BeamSearcher;  // never destroyed
    return *s;
  }

 private:
  static constexpr std::size_t kMemoCap = std::size_t{1} << 14;
  /// The ranked candidate beam for one node, memoized by node identity
  /// (the memo holds the key alive, same discipline as Canonicalizer).
  const std::vector<Candidate>& Beam(const LinOpPtr& op) {
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return it->second.second;
    std::vector<Candidate> beam = Expand(op);
    // Account what this entry pins: the key tree plus every candidate
    // tree (the canonicalizer memo behind canon_ retains roughly the
    // same nodes, so this is the right order of magnitude, and over-
    // counting shared subtrees only trims sooner).
    memo_bytes_ += ApproxRetainedBytes(*op);
    for (const Candidate& c : beam)
      if (c.op != op) memo_bytes_ += ApproxRetainedBytes(*c.op);
    auto ins = memo_.emplace(op.get(), std::make_pair(op, std::move(beam)));
    return ins.first->second.second;
  }

  std::vector<Candidate> Expand(const LinOpPtr& op) {
    std::vector<Candidate> cands;
    uint64_t expanded = 0;
    const auto add = [&](LinOpPtr c, bool from_rules) {
      if (!c) return;
      ++expanded;
      Candidate cd;
      cd.op = std::move(c);
      cd.from_rules = from_rules;
      cands.push_back(std::move(cd));
    };

    // The fixed-order rules result: always first, never pruned.
    LinOpPtr rules_tree = canon_.Run(op);
    add(rules_tree, true);

    // The canonical reconstruction over the best child candidates — the
    // step that lets a locally-suboptimal child choice win globally —
    // kept only when it differs from both the input and the rules tree.
    LinOpPtr plain = RebuildOverBest(op);
    const bool have_plain =
        plain != nullptr && plain != op && plain != rules_tree &&
        !(plain->StructuralHash() == rules_tree->StructuralHash() &&
          plain->StructuralEq(*rules_tree));
    if (have_plain) add(plain, false);

    // Rule proposals are generated from the *canonical* trees, not the
    // raw input: every committed transform (merges, fusions) has already
    // run there, so rules that would re-derive it propose nothing
    // instead of re-doing O(tree) work per search, and proposals fire on
    // nodes whose children are themselves canonical.
    for (const rules::Rule* rule : rules::AllRules()) {
      for (LinOpPtr& c : rule->Apply(rules_tree)) add(std::move(c), false);
      if (have_plain)
        for (LinOpPtr& c : rule->Apply(plain)) add(std::move(c), false);
    }
    ExpansionsCounter().Inc(expanded);

    // A beam of one is the rules tree alone: nothing to dedup, rank or
    // prune against, so skip hashing and scoring it entirely.  This is
    // the hot path for iterative plans — a measurement union freshly
    // merged into one leaf can hold tens of thousands of intervals, and
    // its structural hash is O(intervals) (the hash is instance-cached,
    // but each round mints a *new* merged instance).
    if (cands.size() == 1) return cands;

    // Hash (dedup identity) and score (rank) each candidate; the rules
    // candidate sits at index 0 and wins every tie.
    for (Candidate& c : cands) {
      c.hash = c.op->StructuralHash();
      const OpCost oc = EstimateOpCost(*c.op);
      c.score = ApplySeconds(oc);
      c.footprint = oc.footprint_bytes;
    }
    std::vector<Candidate> unique;
    unique.reserve(cands.size());
    for (Candidate& c : cands) {
      bool dup = false;
      for (const Candidate& u : unique)
        if (u.hash == c.hash && u.op->StructuralEq(*c.op)) {
          dup = true;
          break;
        }
      if (!dup) unique.push_back(std::move(c));
    }

    // Footprint cap and monotone-cost pruning (never the rules entry).
    double best = unique.front().score;
    for (const Candidate& c : unique) best = std::min(best, c.score);
    std::vector<Candidate> kept;
    kept.reserve(unique.size());
    uint64_t pruned = 0;
    for (Candidate& c : unique) {
      const bool over_footprint = c.footprint > kSearchMaxFootprintBytes;
      const bool over_cost = c.score > kSearchPruneRatio * best;
      if (!c.from_rules && (over_footprint || over_cost)) {
        ++pruned;
        continue;
      }
      kept.push_back(std::move(c));
    }

    // Deterministic rank: score, then rules-first, then structural hash.
    std::sort(kept.begin(), kept.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.score != b.score) return a.score < b.score;
                if (a.from_rules != b.from_rules) return a.from_rules;
                return a.hash < b.hash;
              });
    if (kept.size() > kSearchBeamWidth) {
      // Truncate, but the rules candidate always survives.
      bool rules_kept = false;
      for (std::size_t i = 0; i < kSearchBeamWidth; ++i)
        rules_kept = rules_kept || kept[i].from_rules;
      if (!rules_kept)
        for (std::size_t i = kSearchBeamWidth; i < kept.size(); ++i)
          if (kept[i].from_rules) {
            kept[kSearchBeamWidth - 1] = std::move(kept[i]);
            break;
          }
      pruned += kept.size() - kSearchBeamWidth;
      kept.resize(kSearchBeamWidth);
    }
    PrunedCounter().Inc(pruned);
    return kept;
  }

  /// Best candidate for one child.
  const LinOpPtr& BestOf(const LinOpPtr& child) {
    return Beam(child).front().op;
  }

  /// Rebuilds `op` over each child's best candidate via the canonical
  /// constructors — nullptr for leaves, Grams and unknown kinds (their
  /// beam is the rules candidate alone).  Also nullptr when every
  /// child's best is the child itself: the rebuild would then run the
  /// exact canonical-constructor path `canon_.Run(op)` already ran, so
  /// constructing it again (an O(tree) merge for stacks) only produces
  /// a duplicate for the dedup pass to throw away.
  LinOpPtr RebuildOverBest(const LinOpPtr& op) {
    if (auto s = OpAs<ScaleOp>(op)) {
      const LinOpPtr& b = BestOf(s->child());
      if (b == s->child()) return nullptr;
      return canon_.Scaled(b, s->scale());
    }
    if (auto rw = OpAs<RowWeightOp>(op)) {
      const LinOpPtr& b = BestOf(rw->child());
      if (b == rw->child()) return nullptr;
      return canon_.RowWeighted(b, rw->weights());
    }
    if (auto t = OpAs<TransposeOp>(op)) {
      const LinOpPtr& b = BestOf(t->child());
      if (b == t->child()) return nullptr;
      return canon_.Transposed(b);
    }
    if (auto p = OpAs<ProductOp>(op)) {
      const LinOpPtr& ba = BestOf(p->a());
      const LinOpPtr& bb = BestOf(p->b());
      if (ba == p->a() && bb == p->b()) return nullptr;
      return canon_.Producted(ba, bb, p->is_nonneg_binary());
    }
    if (auto k = OpAs<KroneckerOp>(op)) {
      const LinOpPtr& ba = BestOf(k->a());
      const LinOpPtr& bb = BestOf(k->b());
      if (ba == k->a() && bb == k->b()) return nullptr;
      return canon_.Kroned(ba, bb);
    }
    if (auto v = OpAs<VStackOp>(op)) {
      auto bests = BestsOf(v);
      if (!bests) return nullptr;
      return canon_.VStacked(std::move(*bests));
    }
    if (auto h = OpAs<HStackOp>(op)) {
      auto bests = BestsOf(h);
      if (!bests) return nullptr;
      return canon_.HStacked(std::move(*bests));
    }
    if (auto sm = OpAs<SumOp>(op)) {
      auto bests = BestsOf(sm);
      if (!bests) return nullptr;
      return canon_.Summed(std::move(*bests));
    }
    return nullptr;
  }

  /// Child bests for an n-ary node, or nullopt when none differ from
  /// the originals (the caller then skips the redundant rebuild).
  template <typename NaryOp>
  std::optional<std::vector<LinOpPtr>> BestsOf(
      const std::shared_ptr<const NaryOp>& op) {
    std::vector<LinOpPtr> out;
    out.reserve(op->children().size());
    bool changed = false;
    for (const LinOpPtr& c : op->children()) {
      out.push_back(BestOf(c));
      changed = changed || out.back() != c;
    }
    if (!changed) return std::nullopt;
    return out;
  }

  rules::Canonicalizer canon_;
  std::size_t memo_bytes_ = 0;
  std::unordered_map<const LinOp*,
                     std::pair<LinOpPtr, std::vector<Candidate>>>
      memo_;
  std::mutex mu_;
};

}  // namespace

bool SearchCanImprove(const LinOp& op) {
  if (dynamic_cast<const ProductOp*>(&op) != nullptr ||
      dynamic_cast<const KroneckerOp*>(&op) != nullptr)
    return true;
  if (auto* s = dynamic_cast<const ScaleOp*>(&op))
    return SearchCanImprove(*s->child());
  if (auto* rw = dynamic_cast<const RowWeightOp*>(&op))
    return SearchCanImprove(*rw->child());
  if (auto* t = dynamic_cast<const TransposeOp*>(&op))
    return SearchCanImprove(*t->child());
  if (auto* g = dynamic_cast<const GramOp*>(&op))
    return SearchCanImprove(*g->child());
  const std::vector<LinOpPtr>* children = nullptr;
  if (auto* v = dynamic_cast<const VStackOp*>(&op)) children = &v->children();
  if (auto* h = dynamic_cast<const HStackOp*>(&op)) children = &h->children();
  if (auto* sm = dynamic_cast<const SumOp*>(&op)) children = &sm->children();
  if (children)
    for (const auto& c : *children)
      if (SearchCanImprove(*c)) return true;
  return false;
}

SearchStats GetSearchStats() {
  // Registry counters minus the last Reset's snapshot: legacy callers
  // keep since-reset semantics while the registry stays monotone.
  SearchStats s;
  s.searches = SearchesCounter().Value() -
               g_searches_base.load(std::memory_order_relaxed);
  s.expansions = ExpansionsCounter().Value() -
                 g_expansions_base.load(std::memory_order_relaxed);
  s.pruned =
      PrunedCounter().Value() - g_pruned_base.load(std::memory_order_relaxed);
  return s;
}

void ResetSearchStats() {
  g_searches_base.store(SearchesCounter().Value(), std::memory_order_relaxed);
  g_expansions_base.store(ExpansionsCounter().Value(),
                          std::memory_order_relaxed);
  g_pruned_base.store(PrunedCounter().Value(), std::memory_order_relaxed);
}

LinOpPtr SearchCanonicalize(const LinOpPtr& op, bool* improved) {
  if (!op) return op;
  SearchesCounter().Inc();
  obs::Span span("rewrite.search", "rewrite", &SearchSeconds());
  span.Attr("rows", static_cast<double>(op->rows()));
  span.Attr("cols", static_cast<double>(op->cols()));
  BeamSearcher& s = BeamSearcher::Global();
  std::lock_guard<std::mutex> lock(s.mu());
  LinOpPtr out = s.Root(op, improved);
  EK_CHECK_EQ(out->rows(), op->rows());
  EK_CHECK_EQ(out->cols(), op->cols());
  return out;
}

}  // namespace ektelo
