// Non-negative least squares via accelerated projected gradient (FISTA
// with restart).  EKTELO's NNLS inference operator (Definition 5.2) uses
// this solver: it only needs mat-vec and transposed mat-vec, so like LSMR
// it runs on implicit operators in O(k * Time(M)).
//
// The paper uses L-BFGS-B; both are first-order iterative solvers for the
// same convex program with the same per-iteration complexity — this
// substitution is recorded in DESIGN.md.
#ifndef EKTELO_MATRIX_NNLS_H_
#define EKTELO_MATRIX_NNLS_H_

#include <cstddef>

#include "matrix/linop.h"

namespace ektelo {

struct NnlsOptions {
  std::size_t max_iters = 500;
  /// Relative change in x below which we declare convergence.
  double tol = 1e-8;
  /// Power-iteration steps for the Lipschitz-constant estimate.
  std::size_t power_iters = 30;
  /// Optional warm start (projected to >= 0); empty means start at zero.
  /// Iterative plans (MWEM variants c/d) re-solve once per round and
  /// warm-start from the previous round's estimate.
  Vec x0;
};

struct NnlsResult {
  Vec x;
  /// Loop passes actually executed (each costs one Gram apply), counting
  /// monotone-restart passes exactly once — restarts used to
  /// double-increment the counter, over-reporting iterations and
  /// silently shrinking the max_iters budget on restart-heavy problems.
  std::size_t iterations = 0;
  /// Monotone restarts taken (momentum dropped because the objective
  /// increased).
  std::size_t restarts = 0;
  double residual_norm = 0.0;
};

/// argmin_{x >= 0} ||A x - b||_2.
NnlsResult Nnls(const LinOp& a, const Vec& b, const NnlsOptions& opts = {});

/// Largest squared singular value of A (spectral norm of A^T A), estimated
/// by power iteration; exposed for tests.
double EstimateSpectralNormSq(const LinOp& a, std::size_t iters = 30);

/// Same estimate driven by an already-built Gram operator (A^T A), so
/// callers that hold one (e.g. Nnls) don't construct it twice.
double EstimateSpectralNormSqGram(const LinOp& gram, std::size_t iters = 30);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_NNLS_H_
