// Core implicit matrices (paper Sec. 7.4, Table 2): Identity, Ones, Total,
// Prefix, Suffix, Wavelet.  Each stores O(1) state and supports mat-vec in
// O(n) (O(n log n) for Wavelet), versus O(n^2) for dense/sparse Prefix.
// Block applies run all k right-hand sides through one structural sweep;
// Gram() has closed forms where they exist (Identity is idempotent,
// Ones(m,n)^T Ones(m,n) = m * Ones(n,n)).
#ifndef EKTELO_MATRIX_IMPLICIT_OPS_H_
#define EKTELO_MATRIX_IMPLICIT_OPS_H_

#include "matrix/linop.h"

namespace ektelo {

/// n x n identity; Iv = v.
class IdentityOp final : public LinOp {
 public:
  explicit IdentityOp(std::size_t n);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Gram() const override;  // I^T I = I
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }

 protected:
  double ComputeSensitivityL1() const override { return 1.0; }
  double ComputeSensitivityL2() const override { return 1.0; }
  uint64_t ComputeStructuralHash() const override;
};

/// m x n all-ones matrix; (Ones x)_i = sum(x).
class OnesOp final : public LinOp {
 public:
  OnesOp(std::size_t m, std::size_t n);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Gram() const override;  // m * Ones(n, n)
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;
};

/// n x n lower-triangular all-ones: y_k = x_1 + ... + x_k (empirical CDF).
class PrefixOp final : public LinOp {
 public:
  explicit PrefixOp(std::size_t n);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;
};

/// n x n upper-triangular all-ones: y_k = x_k + ... + x_n.
class SuffixOp final : public LinOp {
 public:
  explicit SuffixOp(std::size_t n);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;
};

/// n x n Haar wavelet analysis matrix (n must be a power of two).
/// Sensitivity is computed directly (1 + log2 n) without abs/sqr, per
/// Sec. 7.4; Abs()/Sqr() fall back to sparse materialization.
class WaveletOp final : public LinOp {
 public:
  explicit WaveletOp(std::size_t n);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;
};

LinOpPtr MakeIdentityOp(std::size_t n);
LinOpPtr MakeOnesOp(std::size_t m, std::size_t n);
/// Total is the special case Ones(1, n) (paper Sec. 7.4).
LinOpPtr MakeTotalOp(std::size_t n);
LinOpPtr MakePrefixOp(std::size_t n);
LinOpPtr MakeSuffixOp(std::size_t n);
LinOpPtr MakeWaveletOp(std::size_t n);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_IMPLICIT_OPS_H_
