// Combining operations over implicit matrices (paper Sec. 7.4):
// Union (vertical stack), Product, Kronecker product, plus transpose views
// and row scaling (used for weighted strategies and noise-aware inference).
// Composed operators delegate the primitive methods to their children and
// inherit their complexity (Table 3).
#ifndef EKTELO_MATRIX_COMBINATORS_H_
#define EKTELO_MATRIX_COMBINATORS_H_

#include <vector>

#include "matrix/linop.h"

namespace ektelo {

/// Lazy transpose view: Apply/ApplyT swapped.
class TransposeOp final : public LinOp {
 public:
  explicit TransposeOp(LinOpPtr child);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;

 private:
  LinOpPtr child_;
};

/// Union of query sets: children stacked vertically (same column count).
class VStackOp final : public LinOp {
 public:
  explicit VStackOp(std::vector<LinOpPtr> children);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  const std::vector<LinOpPtr>& children() const { return children_; }

 private:
  std::vector<LinOpPtr> children_;
};

/// Matrix product A * B as an operator (Apply = A(B(x))).
/// Abs()/Sqr() are not distributive over products, so unless the product is
/// known binary they materialize (paper Sec. 7.5 notes the binary shortcut).
class ProductOp final : public LinOp {
 public:
  ProductOp(LinOpPtr a, LinOpPtr b, bool binary_hint = false);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;

 private:
  LinOpPtr a_, b_;
};

/// Kronecker product A ⊗ B.  Mat-vec costs nB*Time(A) + nA*Time(B)
/// (Table 3) using the vec-trick: (A ⊗ B)x = vec(A X B^T) with X = mat(x).
class KroneckerOp final : public LinOp {
 public:
  KroneckerOp(LinOpPtr a, LinOpPtr b);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  double SensitivityL1() const override;
  double SensitivityL2() const override;
  std::string DebugName() const override;
  const LinOpPtr& a() const { return a_; }
  const LinOpPtr& b() const { return b_; }

 private:
  LinOpPtr a_, b_;
};

/// diag(w) * A: per-row weights (weighted hierarchies, noise-aware LS).
class RowWeightOp final : public LinOp {
 public:
  RowWeightOp(LinOpPtr child, Vec weights);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;

 private:
  LinOpPtr child_;
  Vec w_;
};

LinOpPtr MakeTranspose(LinOpPtr a);
LinOpPtr MakeVStack(std::vector<LinOpPtr> children);
LinOpPtr MakeProduct(LinOpPtr a, LinOpPtr b, bool binary_hint = false);
LinOpPtr MakeKronecker(LinOpPtr a, LinOpPtr b);
/// Right fold: Kron(f[0], Kron(f[1], ...)).  Requires >= 1 factor.
LinOpPtr MakeKronecker(std::vector<LinOpPtr> factors);
LinOpPtr MakeRowWeight(LinOpPtr child, Vec weights);
/// c * A (uniform scaling).
LinOpPtr MakeScaled(LinOpPtr child, double c);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_COMBINATORS_H_
