// Combining operations over implicit matrices (paper Sec. 7.4):
// Union (vertical stack), horizontal stack, Product, Kronecker product,
// sum, plus transpose views and row/uniform scaling (used for weighted
// strategies and noise-aware inference).  Composed operators delegate the
// primitive methods to their children and inherit their complexity
// (Table 3); block applies delegate to the children's blocked kernels so
// a panel of k RHS traverses each child once.
//
// Gram() distributes structurally where a closed form exists:
//   Gram(A ⊗ B)        = Gram(A) ⊗ Gram(B)
//   Gram([A; B; ...])  = Gram(A) + Gram(B) + ...   (vertical stack)
//   Gram(c A)          = c^2 Gram(A)
//   Gram(A B)          = B^T Gram(A) B
#ifndef EKTELO_MATRIX_COMBINATORS_H_
#define EKTELO_MATRIX_COMBINATORS_H_

#include <vector>

#include "matrix/linop.h"

namespace ektelo {

/// Lazy transpose view: Apply/ApplyT swapped.
class TransposeOp final : public LinOp {
 public:
  explicit TransposeOp(LinOpPtr child);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    return child_->HashProcessStable();
  }
  const LinOpPtr& child() const { return child_; }

 protected:
  uint64_t ComputeStructuralHash() const override;

 private:
  LinOpPtr child_;
};

/// Union of query sets: children stacked vertically (same column count).
class VStackOp final : public LinOp {
 public:
  explicit VStackOp(std::vector<LinOpPtr> children);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  LinOpPtr Gram() const override;  // sum of the children's Grams
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    for (const LinOpPtr& c : children_)
      if (!c->HashProcessStable()) return false;
    return true;
  }
  const std::vector<LinOpPtr>& children() const { return children_; }

 protected:
  uint64_t ComputeStructuralHash() const override;

 private:
  std::vector<LinOpPtr> children_;
};

/// Horizontal stack [A | B | ...]: children side by side (same row count);
/// Apply slices x per child and sums nothing, ApplyT concatenates.
class HStackOp final : public LinOp {
 public:
  explicit HStackOp(std::vector<LinOpPtr> children);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    for (const LinOpPtr& c : children_)
      if (!c->HashProcessStable()) return false;
    return true;
  }
  const std::vector<LinOpPtr>& children() const { return children_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  std::vector<LinOpPtr> children_;
  std::vector<std::size_t> col_offsets_;
};

/// Elementwise sum A + B + ... of same-shape operators.
class SumOp final : public LinOp {
 public:
  explicit SumOp(std::vector<LinOpPtr> children);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    for (const LinOpPtr& c : children_)
      if (!c->HashProcessStable()) return false;
    return true;
  }
  const std::vector<LinOpPtr>& children() const { return children_; }

 protected:
  uint64_t ComputeStructuralHash() const override;

 private:
  std::vector<LinOpPtr> children_;
};

/// Matrix product A * B as an operator (Apply = A(B(x))).
/// Abs()/Sqr() are not distributive over products, so unless the product is
/// known binary they materialize (paper Sec. 7.5 notes the binary shortcut).
class ProductOp final : public LinOp {
 public:
  ProductOp(LinOpPtr a, LinOpPtr b, bool binary_hint = false);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Gram() const override;  // B^T Gram(A) B
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    return a_->HashProcessStable() && b_->HashProcessStable();
  }
  const LinOpPtr& a() const { return a_; }
  const LinOpPtr& b() const { return b_; }

 protected:
  uint64_t ComputeStructuralHash() const override;

 private:
  LinOpPtr a_, b_;
};

/// Kronecker product A ⊗ B.  Mat-vec costs nB*Time(A) + nA*Time(B)
/// (Table 3) using the vec-trick: (A ⊗ B)x = vec(A X B^T) with X = mat(x).
/// The blocked apply batches both stages: one blocked B-apply over na*k
/// columns, one blocked A-apply over mb*k columns.
class KroneckerOp final : public LinOp {
 public:
  KroneckerOp(LinOpPtr a, LinOpPtr b);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  LinOpPtr Gram() const override;  // Gram(A) ⊗ Gram(B)
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    return a_->HashProcessStable() && b_->HashProcessStable();
  }
  const LinOpPtr& a() const { return a_; }
  const LinOpPtr& b() const { return b_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  LinOpPtr a_, b_;
};

/// diag(w) * A: per-row weights (weighted hierarchies, noise-aware LS).
class RowWeightOp final : public LinOp {
 public:
  RowWeightOp(LinOpPtr child, Vec weights);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    return child_->HashProcessStable();
  }
  const LinOpPtr& child() const { return child_; }
  const Vec& weights() const { return w_; }

 protected:
  uint64_t ComputeStructuralHash() const override;

 private:
  LinOpPtr child_;
  Vec w_;
};

/// c * A (uniform scaling), with the scalar kept symbolic so Gram and
/// sensitivity stay closed-form: Gram(cA) = c^2 Gram(A).
class ScaleOp final : public LinOp {
 public:
  ScaleOp(LinOpPtr child, double c);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  LinOpPtr Gram() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    return child_->HashProcessStable();
  }
  double scale() const { return c_; }
  const LinOpPtr& child() const { return child_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  LinOpPtr child_;
  double c_;
};

LinOpPtr MakeTranspose(LinOpPtr a);
LinOpPtr MakeVStack(std::vector<LinOpPtr> children);
LinOpPtr MakeHStack(std::vector<LinOpPtr> children);
LinOpPtr MakeSum(std::vector<LinOpPtr> children);
LinOpPtr MakeProduct(LinOpPtr a, LinOpPtr b, bool binary_hint = false);
LinOpPtr MakeKronecker(LinOpPtr a, LinOpPtr b);
/// Right fold: Kron(f[0], Kron(f[1], ...)).  Requires >= 1 factor.
LinOpPtr MakeKronecker(std::vector<LinOpPtr> factors);
LinOpPtr MakeRowWeight(LinOpPtr child, Vec weights);
/// c * A (uniform scaling).
LinOpPtr MakeScaled(LinOpPtr child, double c);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_COMBINATORS_H_
