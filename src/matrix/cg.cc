#include "matrix/cg.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

CgResult CgLeastSquares(const LinOp& a, const Vec& b, const CgOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  EK_CHECK_EQ(b.size(), m);
  const std::size_t max_iters =
      opts.max_iters > 0 ? opts.max_iters
                         : std::max<std::size_t>(4 * std::min(m, n), 100);

  CgResult result;
  result.x.assign(n, 0.0);

  // r = A^T b - A^T A x = A^T b at x = 0.
  Vec r = a.ApplyT(b);
  Vec p = r;
  double rs = Dot(r, r);
  const double rs0 = rs;
  if (rs0 == 0.0) return result;

  Vec ap(n);
  for (std::size_t it = 0; it < max_iters; ++it) {
    // ap = A^T A p
    Vec tmp = a.Apply(p);
    ap = a.ApplyT(tmp);
    const double p_ap = Dot(p, ap);
    if (p_ap <= 0.0) break;  // numerical breakdown / null-space direction
    const double alpha = rs / p_ap;
    Axpy(alpha, p, &result.x);
    Axpy(-alpha, ap, &r);
    const double rs_new = Dot(r, r);
    result.iterations = it + 1;
    if (std::sqrt(rs_new) <= opts.tol * std::sqrt(rs0)) {
      rs = rs_new;
      break;
    }
    const double beta = rs_new / rs;
    for (std::size_t j = 0; j < n; ++j) p[j] = r[j] + beta * p[j];
    rs = rs_new;
  }
  result.normal_residual_norm = std::sqrt(rs);
  return result;
}

}  // namespace ektelo
