#include "matrix/cg.h"

#include <algorithm>
#include <cmath>

#include "matrix/rewrite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

namespace {
obs::Counter& CgIterations() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_solver_iterations", "Solver inner iterations run",
      "solver=\"cg\"");
  return c;
}
obs::Histogram& CgSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_solver_seconds", "Wall time of one solver call",
      "solver=\"cg\"");
  return h;
}
}  // namespace

CgResult CgSpd(const LinOp& g, const Vec& b, const CgOptions& opts) {
  const std::size_t n = g.cols();
  EK_CHECK_EQ(g.rows(), n);
  EK_CHECK_EQ(b.size(), n);
  const std::size_t max_iters =
      opts.max_iters > 0 ? opts.max_iters : std::max<std::size_t>(4 * n, 100);
  obs::Span span("solver.cg", "solver", &CgSeconds());
  span.Attr("n", static_cast<double>(n));

  CgResult result;
  result.x.assign(n, 0.0);

  // r = b - G x = b at x = 0.
  Vec r = b;
  Vec p = r;
  double rs = Dot(r, r);
  const double rs0 = rs;
  if (rs0 == 0.0) return result;

  Vec gp(n);
  for (std::size_t it = 0; it < max_iters; ++it) {
    g.ApplyRaw(p.data(), gp.data());
    const double p_gp = Dot(p, gp);
    if (p_gp <= 0.0) break;  // numerical breakdown / null-space direction
    const double alpha = rs / p_gp;
    Axpy(alpha, p, &result.x);
    Axpy(-alpha, gp, &r);
    const double rs_new = Dot(r, r);
    result.iterations = it + 1;
    if (std::sqrt(rs_new) <= opts.tol * std::sqrt(rs0)) {
      rs = rs_new;
      break;
    }
    const double beta = rs_new / rs;
    for (std::size_t j = 0; j < n; ++j) p[j] = r[j] + beta * p[j];
    rs = rs_new;
  }
  result.normal_residual_norm = std::sqrt(rs);
  CgIterations().Inc(result.iterations);
  span.Attr("iterations", static_cast<double>(result.iterations));
  return result;
}

std::vector<CgResult> CgSpdMulti(const LinOp& g, const Block& rhs,
                                 const CgOptions& opts) {
  EK_CHECK_EQ(rhs.rows(), g.cols());
  std::vector<CgResult> results(rhs.cols());
  ParallelFor(rhs.cols(), 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c)
      results[c] = CgSpd(g, rhs.Col(c), opts);
  });
  return results;
}

CgResult CgLeastSquares(const LinOp& a, const Vec& b, const CgOptions& opts) {
  EK_CHECK_EQ(b.size(), a.rows());
  CgOptions spd_opts = opts;
  if (spd_opts.max_iters == 0)
    spd_opts.max_iters =
        std::max<std::size_t>(4 * std::min(a.rows(), a.cols()), 100);
  // A^T A x = A^T b through the structured Gram operator.  Gram
  // derivation is memoized under a's structural hash (repeated solves
  // against structurally identical stacks skip the sparse A^T A
  // re-materialization); derivation is deterministic, so a hit is
  // bitwise-equivalent to the uncached path.
  LinOpPtr g = OperatorCache::CachedGramOrNull(a);
  if (!g) g = a.Gram();
  return CgSpd(*g, a.ApplyT(b), spd_opts);
}

}  // namespace ektelo
