#include "matrix/rewrite.h"

#include <typeinfo>
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "matrix/combinators.h"
#include "matrix/cost.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "matrix/rules.h"
#include "matrix/search.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/artifact_store.h"
#include "store/serialize.h"
#include "store/tree_codec.h"
#include "store/write_behind.h"
#include "util/check.h"

namespace ektelo {

// ------------------------------------------------------------------ toggle

namespace {

std::atomic<int> g_force{-1};

RewriteMode EnvMode() {
  static const RewriteMode mode = [] {
    const char* v = std::getenv("EKTELO_REWRITE");
    if (v != nullptr && (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0))
      return RewriteMode::kOff;
    if (v != nullptr && std::strcmp(v, "search") == 0)
      return RewriteMode::kSearch;
    // Unset, "1", "rules", and historically any non-"0" value: rules.
    return RewriteMode::kRules;
  }();
  return mode;
}

}  // namespace

RewriteMode GetRewriteMode() {
  const int f = g_force.load(std::memory_order_relaxed);
  if (f == 0) return RewriteMode::kOff;
  if (f == 1) return RewriteMode::kRules;
  if (f == 2) return RewriteMode::kSearch;
  return EnvMode();
}

void SetRewriteMode(int force) {
  g_force.store(force < 0 || force > 2 ? -1 : force,
                std::memory_order_relaxed);
}

bool RewriteEnabled() { return GetRewriteMode() != RewriteMode::kOff; }

void SetRewriteEnabled(int force) { SetRewriteMode(force); }

LinOpPtr Rewrite(LinOpPtr op) { return rules::Canonicalize(op); }

LinOpPtr SearchRewrite(LinOpPtr op) {
  if (!op) return op;
  // A tree this cheap per apply cannot repay a search: the most it could
  // ever save is its own score, which is already below what the hashing
  // and cache traffic cost.  Fall straight through to the rules pass.
  if (TreeScore(*op) < kSearchMinApplySeconds) return rules::Canonicalize(op);
  // No Product/Kron anywhere means the beam provably returns the rules
  // tree (see SearchCanImprove) — skip the search and cache entirely.
  if (!SearchCanImprove(*op)) return rules::Canonicalize(op);
  LinOpPtr canon;
  if (auto cached = OperatorCache::Global().CanonicalTreeLookup(op)) {
    canon = std::move(*cached);
  } else {
    bool improved = false;
    canon = SearchCanonicalize(op, &improved);
    // Only a genuine improvement is worth remembering: a winner the
    // fixed-order rules pass would rebuild anyway (every iterative
    // plan's one-shot measurement union) is pure cache traffic — the
    // entry pins the tree, the disk tier encodes it, and nothing ever
    // looks either up again.
    if (improved) OperatorCache::Global().CanonicalTreeStore(op, canon);
  }
  if (canon == op) return op;
  // A cached winner structurally identical to the input (kind first —
  // different concrete types are never StructuralEq, and hashing a big
  // freshly-built winner is O(tree); then hash — both sides memoize
  // theirs) yields the input itself, preserving its per-instance
  // sensitivity/hash caches exactly like a no-op rules pass.
  if (typeid(*canon) == typeid(*op) &&
      canon->StructuralHash() == op->StructuralHash() &&
      canon->StructuralEq(*op))
    return op;
  return canon;
}

LinOpPtr MaybeRewrite(LinOpPtr op) {
  switch (GetRewriteMode()) {
    case RewriteMode::kOff:
      return op;
    case RewriteMode::kSearch:
      return SearchRewrite(std::move(op));
    case RewriteMode::kRules:
      break;
  }
  return Rewrite(std::move(op));
}

// ------------------------------------------------- hash persistability

bool StructuralHashPersistable(const LinOp& op) {
  // The operator hierarchy answers this itself now: leaves with
  // deterministic hashes override HashProcessStable() to return true,
  // combinators forward the conjunction over their children, and the
  // LinOp default is false — so an unknown subclass (hashed per instance
  // by typeid + address) fails closed without this function having to
  // enumerate every kind with a dynamic_cast chain.
  return op.HashProcessStable();
}

// ---------------------------------------------------------- OperatorCache

namespace {
enum CacheKind : int {
  kKindSparse = 0,
  kKindDense = 1,
  kKindGramDense = 2,
  kKindSensL1 = 3,
  kKindSensL2 = 4,
  kKindSparseWrap = 5,
  kKindDenseWrap = 6,
  kKindGramOp = 7,
  kKindNormSq = 8,
  kKindCanonTree = 9,
};

// ---- disk-tier payload envelope: every persisted artifact embeds the
// ---- key operator's shape and a payload sub-kind ahead of the typed
// ---- bytes.  Together with the store framing ({format version,
// ---- kHashVersion, structural hash, artifact kind} + checksum) this is
// ---- the StructuralEq-compatible guard for cross-process reuse: the
// ---- hash function version must match exactly, and a (vanishingly
// ---- unlikely) same-hash collision between different-shaped operators
// ---- is rejected outright.

constexpr uint8_t kSubCsr = 0;
constexpr uint8_t kSubDense = 1;
constexpr uint8_t kSubScalar = 2;
constexpr uint8_t kSubTree = 3;  // tag+payload operator tree (tree_codec)

void EncodeEnvelope(const LinOp& key, uint8_t sub, store::ByteWriter* w) {
  w->U64(key.rows());
  w->U64(key.cols());
  w->U8(sub);
}

bool DecodeEnvelope(const LinOp& key, store::ByteReader* r, uint8_t* sub) {
  uint64_t rows, cols;
  if (!r->U64(&rows) || !r->U64(&cols) || !r->U8(sub)) return false;
  return rows == key.rows() && cols == key.cols();
}

bool DecodeEnvelopeExpect(const LinOp& key, uint8_t want,
                          store::ByteReader* r) {
  uint8_t sub;
  return DecodeEnvelope(key, r, &sub) && sub == want;
}

obs::Histogram& ProbeSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_cache_probe_seconds",
      "Wall time of one operator-cache lookup across both tiers");
  return h;
}

std::size_t CsrBytes(const CsrMatrix& m) {
  return (m.indptr().size() + m.indices().size()) * sizeof(std::size_t) +
         m.values().size() * sizeof(double);
}
std::size_t DenseBytes(const DenseMatrix& m) {
  return m.data().size() * sizeof(double);
}
}  // namespace

struct OperatorCache::Impl {
  struct Entry {
    uint64_t hash = 0;
    int kind = 0;
    LinOpPtr key_op;  // keeps the key alive for StructuralEq verification
    std::shared_ptr<const CsrMatrix> sparse;
    std::shared_ptr<const DenseMatrix> dense;
    LinOpPtr wrapped;  // SparseWrapped / DenseWrapped leaf
    double value = 0.0;
    std::size_t bytes = 0;
  };

  static bool IsSensitivityKind(int kind) {
    return kind == kKindSensL1 || kind == kKindSensL2;
  }

  mutable std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_multimap<uint64_t, std::list<Entry>::iterator> index;
  std::size_t max_entries = 1024;
  std::size_t max_bytes = std::size_t{256} << 20;
  std::size_t bytes = 0;
  std::size_t sens_entries = 0;
  std::size_t tree_bytes = 0;  // bytes pinned by kKindCanonTree entries

  // Traffic counters live in obs::Counter objects so the process-wide
  // instance binds them straight into the metrics registry (the single
  // source of truth behind serve Stats and the Prometheus endpoint —
  // see BindGlobalMetrics), while locally constructed caches keep
  // private per-instance counters with the same since-construction
  // semantics.  Sharded counters are thread-safe on their own; the
  // increments below just happen to also sit under mu.
  std::unique_ptr<obs::Counter[]> owned_counters{new obs::Counter[8]};
  obs::Counter* hits = &owned_counters[0];
  obs::Counter* misses = &owned_counters[1];
  obs::Counter* evictions = &owned_counters[2];
  // Canonical-tree subset counters (tree_hits <= hits, likewise disk).
  obs::Counter* tree_hits = &owned_counters[3];
  obs::Counter* tree_disk_hits = &owned_counters[4];

  void BindGlobalMetrics();
  // Persistent second tier (EKTELO_CACHE_DIR / SetDiskTier).  Held by
  // shared_ptr so accessors can snapshot it under mu and keep using it
  // safely across a concurrent SetDiskTier swap; the store flushes its
  // index checkpoint when the last holder releases it.
  std::shared_ptr<store::DiskArtifactStore> disk;
  // Write-behind consumer for disk spills (null = synchronous writes).
  // Swapped together with `disk`; jobs capture their own shared_ptr to
  // the store, so a queue outliving a tier swap stays safe.
  std::shared_ptr<store::WriteBehindQueue> wb;
  obs::Counter* disk_hits = &owned_counters[5];
  obs::Counter* disk_misses = &owned_counters[6];
  obs::Counter* disk_writes = &owned_counters[7];
  // Drops accumulated from queues already retired by SetDiskTier; the
  // live queue's drop count is added on top in stats().
  std::size_t disk_write_drops_base = 0;

  std::shared_ptr<store::DiskArtifactStore> DiskSnapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return disk;
  }

  std::shared_ptr<store::WriteBehindQueue> WbSnapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return wb;
  }

  static uint64_t IndexKey(uint64_t hash, int kind) {
    return hash ^ (uint64_t(kind) * 0x9e3779b97f4a7c15ull);
  }

  /// Must hold mu.  Returns lru.end() on miss.
  std::list<Entry>::iterator Find(uint64_t hash, int kind, const LinOp& op) {
    auto range = index.equal_range(IndexKey(hash, kind));
    for (auto it = range.first; it != range.second; ++it) {
      Entry& e = *it->second;
      if (e.kind == kind && e.hash == hash && e.key_op->StructuralEq(op)) {
        lru.splice(lru.begin(), lru, it->second);
        return lru.begin();
      }
    }
    return lru.end();
  }

  /// Must hold mu.
  void Evict(std::list<Entry>::iterator victim) {
    auto range = index.equal_range(IndexKey(victim->hash, victim->kind));
    for (auto it = range.first; it != range.second; ++it)
      if (it->second == victim) {
        index.erase(it);
        break;
      }
    bytes -= victim->bytes;
    if (IsSensitivityKind(victim->kind)) --sens_entries;
    if (victim->kind == kKindCanonTree) tree_bytes -= victim->bytes;
    lru.erase(victim);
    evictions->Inc();
  }

  /// Byte budget for canonical-tree entries, proportional to the cache
  /// bound (4 MiB at the 256 MiB default).  Iterative plans (MWEM's
  /// growing measurement unions) insert one strictly larger one-shot
  /// tree per round; pinning the whole sequence makes every later
  /// round's merge allocate cold pages instead of recycling the rounds
  /// the plan just abandoned — measured as a ~4x slowdown of the merge
  /// itself.  Evicting from memory loses nothing durable: winners are
  /// still spilled to the disk tier, which is what warm restarts read.
  std::size_t MaxTreeBytes() const {
    return std::max<std::size_t>(max_bytes >> 6, std::size_t{1} << 20);
  }

  /// Must hold mu.
  void EvictUntilBounded() {
    while (!lru.empty() && (lru.size() > max_entries || bytes > max_bytes))
      Evict(std::prev(lru.end()));
  }

  /// Must hold mu.
  void Insert(Entry e) {
    if (e.bytes > max_bytes) return;  // larger than the whole cache
    // A tree bigger than the whole tree budget would evict every other
    // tree and be evicted itself by the next insert; skip memory and
    // let the disk tier serve it.
    if (e.kind == kKindCanonTree && e.bytes > MaxTreeBytes()) return;
    const bool sens = IsSensitivityKind(e.kind);
    if (sens) {
      // Sensitivity entries are cheap, high-volume (every shared node of
      // every tree inserts one) and often one-shot (MWEM's growing
      // unions).  Cap them at half the cache so a flood cannot crowd out
      // the expensive Gram/materialization artifacts the cache exists
      // for; the cap evicts the least-recently-used sensitivity entry.
      const std::size_t cap = std::max<std::size_t>(1, max_entries / 2);
      if (sens_entries >= cap)
        for (auto it = std::prev(lru.end());; --it) {
          if (IsSensitivityKind(it->kind)) {
            Evict(it);
            break;
          }
          if (it == lru.begin()) break;
        }
      ++sens_entries;
    }
    bytes += e.bytes;
    if (e.kind == kKindCanonTree) tree_bytes += e.bytes;
    lru.push_front(std::move(e));
    index.emplace(IndexKey(lru.front().hash, lru.front().kind), lru.begin());
    // Keep canonical trees within their sub-budget: evict the
    // least-recently-used tree entry (never the one just inserted).
    while (tree_bytes > MaxTreeBytes()) {
      auto victim = lru.end();
      for (auto it = std::prev(lru.end()); it != lru.begin(); --it)
        if (it->kind == kKindCanonTree) {
          victim = it;
          break;
        }
      if (victim == lru.end()) break;
      Evict(victim);
    }
    EvictUntilBounded();
  }

  /// Must hold mu.  Builds and inserts an entry for `value`.
  template <typename V, typename FillF>
  void InsertValue(const LinOpPtr& key, uint64_t hash, int kind, FillF fill,
                   const V& value) {
    Entry e;
    e.hash = hash;
    e.kind = kind;
    e.key_op = key;
    fill(e, value);
    e.bytes += ApproxRetainedBytes(*key);
    Insert(std::move(e));
  }

  /// Double-checked lookup/compute/insert shared by every accessor: the
  /// compute runs OUTSIDE the lock (it may recurse into the cache), and a
  /// racing thread's earlier insert wins.  `get` reads the typed field
  /// off a hit; `fill` stores the computed value and its artifact bytes
  /// (the key tree's retained bytes are added here, uniformly).
  ///
  /// With a disk tier attached, a memory miss on a process-stable key
  /// probes the store before computing; a verified disk hit is promoted
  /// into memory (`decode` rebuilds the typed value; a reject falls
  /// through to compute).  A computed value is written behind to the
  /// store when `encode` can represent it.  All disk work runs outside
  /// mu; the tier is snapshotted so a concurrent SetDiskTier is safe.
  template <typename V, typename GetF, typename MakeF, typename FillF,
            typename EncodeF, typename DecodeF>
  V Cached(const LinOpPtr& key, uint64_t hash, int kind, GetF get,
           MakeF make, FillF fill, EncodeF encode, DecodeF decode) {
    // The probe span covers lookup across both tiers but never the
    // compute: a miss closes it before make() runs.
    obs::Span probe("cache.probe", "cache", &ProbeSeconds());
    probe.Attr("kind", static_cast<double>(kind));
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = Find(hash, kind, *key);
      if (it != lru.end()) {
        hits->Inc();
        if (kind == kKindCanonTree) tree_hits->Inc();
        probe.Attr("tier", "mem");
        return get(*it);
      }
      misses->Inc();
    }
    std::shared_ptr<store::DiskArtifactStore> d = DiskSnapshot();
    const bool persistable = d != nullptr && StructuralHashPersistable(*key);
    if (persistable) {
      std::vector<uint8_t> payload;
      std::optional<V> decoded;
      const bool got = d->Get({hash, uint32_t(kind)}, &payload);
      if (got) decoded = decode(*key, payload);
      // A checksum-valid record the typed decoder rejects (shape-guard
      // collision, stale encoding) is dropped so the recompute below can
      // re-store a good one — otherwise Put would no-op on the live key
      // and every future process would pay read + recompute forever.
      if (got && !decoded) d->Drop({hash, uint32_t(kind)});
      std::lock_guard<std::mutex> lock(mu);
      if (decoded) {
        disk_hits->Inc();
        if (kind == kKindCanonTree) tree_disk_hits->Inc();
        probe.Attr("tier", "disk");
        auto it = Find(hash, kind, *key);
        if (it != lru.end()) return get(*it);
        InsertValue(key, hash, kind, fill, *decoded);
        return *decoded;
      }
      disk_misses->Inc();
    }
    probe.Attr("tier", "none");
    probe.Close();
    V value = make();
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = Find(hash, kind, *key);
      if (it != lru.end()) return get(*it);
      InsertValue(key, hash, kind, fill, value);
    }
    if (persistable) {
      // The spill captures shared ownership of the store and the value,
      // so it is safe to run on the write-behind consumer after an
      // arbitrary tier swap; with no queue attached it runs inline.
      auto spill = [this, d, key, value, hash, kind, encode] {
        store::ByteWriter w;
        if (encode(*key, value, &w) &&
            d->Put({hash, uint32_t(kind)}, w.bytes())) {
          std::lock_guard<std::mutex> lock(mu);
          disk_writes->Inc();
        }
      };
      auto q = WbSnapshot();
      if (q) {
        (void)q->Enqueue(std::move(spill));  // full queue = counted drop
      } else {
        spill();
      }
    }
    return value;
  }
};

namespace {

// ---- shared encode/decode lambable helpers for the disk tier ----

bool EncodeCsrArtifact(const LinOp& key, const CsrMatrix& m,
                       store::ByteWriter* w) {
  EncodeEnvelope(key, kSubCsr, w);
  store::SerializeCsr(m, w);
  return true;
}

std::optional<CsrMatrix> DecodeCsrArtifact(const LinOp& key,
                                           const std::vector<uint8_t>& bytes,
                                           std::size_t rows,
                                           std::size_t cols) {
  store::ByteReader r(bytes);
  CsrMatrix m;
  if (!DecodeEnvelopeExpect(key, kSubCsr, &r) ||
      !store::DeserializeCsr(&r, &m) || r.remaining() != 0 ||
      m.rows() != rows || m.cols() != cols)
    return std::nullopt;
  return m;
}

bool EncodeDenseArtifact(const LinOp& key, const DenseMatrix& m,
                         store::ByteWriter* w) {
  EncodeEnvelope(key, kSubDense, w);
  store::SerializeDense(m, w);
  return true;
}

std::optional<DenseMatrix> DecodeDenseArtifact(
    const LinOp& key, const std::vector<uint8_t>& bytes, std::size_t rows,
    std::size_t cols) {
  store::ByteReader r(bytes);
  DenseMatrix m;
  if (!DecodeEnvelopeExpect(key, kSubDense, &r) ||
      !store::DeserializeDense(&r, &m) || r.remaining() != 0 ||
      m.rows() != rows || m.cols() != cols)
    return std::nullopt;
  return m;
}

bool EncodeScalarArtifact(const LinOp& key, double v, store::ByteWriter* w) {
  EncodeEnvelope(key, kSubScalar, w);
  store::SerializeScalar(v, w);
  return true;
}

std::optional<double> DecodeScalarArtifact(
    const LinOp& key, const std::vector<uint8_t>& bytes) {
  store::ByteReader r(bytes);
  double v;
  if (!DecodeEnvelopeExpect(key, kSubScalar, &r) ||
      !store::DeserializeScalar(&r, &v) || r.remaining() != 0)
    return std::nullopt;
  return v;
}

/// Strict non-negative integer parse (same contract as the
/// EKTELO_CACHE_DISK_BYTES handling): the whole token must be digits.
bool ParseUll(const char* begin, const char* end_limit,
              unsigned long long* out) {
  if (begin == end_limit || *begin < '0' || *begin > '9') return false;
  char* end = nullptr;
  *out = std::strtoull(begin, &end, 10);
  return end == end_limit;
}

/// EKTELO_CACHE_KIND_QUOTAS is "kind:bytes[,kind:bytes...]" (both sides
/// strictly numeric; kind values are the CacheKind enum).  Unparsable
/// tokens are reported and skipped rather than silently mis-read.
void ParseKindQuotas(const char* spec,
                     std::vector<std::pair<uint32_t, std::size_t>>* out) {
  const char* p = spec;
  while (*p != '\0') {
    const char* comma = std::strchr(p, ',');
    const char* tok_end = comma != nullptr ? comma : p + std::strlen(p);
    const char* colon =
        static_cast<const char*>(std::memchr(p, ':', std::size_t(tok_end - p)));
    unsigned long long kind = 0, bytes = 0;
    if (colon != nullptr && ParseUll(p, colon, &kind) &&
        ParseUll(colon + 1, tok_end, &bytes) && kind <= 0xffffffffull) {
      out->emplace_back(uint32_t(kind), std::size_t(bytes));
    } else {
      std::fprintf(stderr,
                   "ektelo: ignoring unparsable EKTELO_CACHE_KIND_QUOTAS "
                   "token \"%.*s\" (want kind:bytes)\n",
                   int(tok_end - p), p);
    }
    p = comma != nullptr ? comma + 1 : tok_end;
  }
}

/// Builds the write-behind queue for a freshly attached disk tier.
/// EKTELO_CACHE_WRITE_BEHIND: unset/empty = on with the default
/// capacity; "0" = disabled (synchronous spills); a positive integer =
/// on with that queue capacity.  Anything else warns and uses the
/// default.
std::shared_ptr<store::WriteBehindQueue> MakeWriteBehindFromEnv() {
  const char* v = std::getenv("EKTELO_CACHE_WRITE_BEHIND");
  if (v == nullptr || *v == '\0')
    return std::make_shared<store::WriteBehindQueue>();
  unsigned long long cap = 0;
  if (ParseUll(v, v + std::strlen(v), &cap)) {
    if (cap == 0) return nullptr;
    return std::make_shared<store::WriteBehindQueue>(std::size_t(cap));
  }
  std::fprintf(stderr,
               "ektelo: ignoring unparsable EKTELO_CACHE_WRITE_BEHIND=%s "
               "(keeping the default write-behind queue)\n",
               v);
  return std::make_shared<store::WriteBehindQueue>();
}

}  // namespace

// Repoints the traffic counters at registry-registered series, making
// the registry the single source of truth for the process-wide cache
// (serve Stats and the Prometheus endpoint read the same counters this
// code increments).  Called once, before the global instance sees any
// traffic; locally constructed caches keep their private counters.
void OperatorCache::Impl::BindGlobalMetrics() {
  obs::Registry& r = obs::Registry::Global();
  const char* name = "ektelo_cache_requests";
  const char* help = "Operator-cache lookups by tier and event";
  hits = &r.GetCounter(name, help, "tier=\"mem\",event=\"hit\"");
  misses = &r.GetCounter(name, help, "tier=\"mem\",event=\"miss\"");
  disk_hits = &r.GetCounter(name, help, "tier=\"disk\",event=\"hit\"");
  disk_misses = &r.GetCounter(name, help, "tier=\"disk\",event=\"miss\"");
  disk_writes = &r.GetCounter(name, help, "tier=\"disk\",event=\"write\"");
  evictions = &r.GetCounter("ektelo_cache_evictions",
                            "In-memory operator-cache LRU evictions");
  const char* tree_help =
      "Canonical-tree cache hits (each one is a beam search skipped)";
  tree_hits = &r.GetCounter("ektelo_cache_tree_hits", tree_help,
                            "tier=\"mem\"");
  tree_disk_hits =
      &r.GetCounter("ektelo_cache_tree_hits", tree_help, "tier=\"disk\"");
}

OperatorCache::OperatorCache() : impl_(new Impl) {}
OperatorCache::~OperatorCache() = default;

OperatorCache& OperatorCache::Global() {
  static OperatorCache* cache = [] {
    auto* c = new OperatorCache;
    c->impl_->BindGlobalMetrics();
    // The disk tier is opt-in via the environment, and attaches only to
    // the process-wide instance (a second writer on the same directory
    // is unsupported, so locally constructed caches stay memory-only).
    // Unset means nothing ever touches the filesystem and the cache
    // behaves exactly as the memory-only tier.
    const char* dir = std::getenv("EKTELO_CACHE_DIR");
    if (dir != nullptr && *dir != '\0') {
      store::DiskStoreOptions opts;
      opts.hash_version = kHashVersion;
      if (const char* b = std::getenv("EKTELO_CACHE_DISK_BYTES")) {
        // Accept only a fully-numeric, non-negative value ("0" =
        // unbounded); a typo like "1G" or "-1000" must not silently
        // become no budget at all (strtoull would wrap a leading '-').
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(b, &end, 10);
        if (b[0] >= '0' && b[0] <= '9' && end != b && end != nullptr &&
            *end == '\0') {
          opts.max_bytes = std::size_t(parsed);
        } else {
          std::fprintf(stderr,
                       "ektelo: ignoring unparsable EKTELO_CACHE_DISK_BYTES"
                       "=%s (keeping the %zu-byte default)\n",
                       b, opts.max_bytes);
        }
      }
      if (const char* kq = std::getenv("EKTELO_CACHE_KIND_QUOTAS"))
        ParseKindQuotas(kq, &opts.kind_quotas);
      auto tier = store::DiskArtifactStore::Open(dir, opts);
      if (!tier) {
        std::fprintf(stderr,
                     "ektelo: EKTELO_CACHE_DIR=%s could not be opened; "
                     "running with the in-memory cache only\n",
                     dir);
      } else {
        c->impl_->disk = std::move(tier);
        c->impl_->wb = MakeWriteBehindFromEnv();
        // The instance is intentionally leaked, so the store destructor
        // never runs for the env-attached tier; checkpoint the index at
        // exit.  (Missing it is safe — reopen recovers by scanning the
        // log tail — just slower for big stores.)
        std::atexit([] { OperatorCache::Global().FlushDiskTier(); });
      }
    }
    return c;
  }();
  return *cache;
}

std::shared_ptr<const CsrMatrix> OperatorCache::MaterializeSparse(
    const LinOpPtr& op) {
  using V = std::shared_ptr<const CsrMatrix>;
  return impl_->Cached<V>(
      op, op->StructuralHash(), kKindSparse,
      [](const Impl::Entry& e) { return e.sparse; },
      [&] { return std::make_shared<const CsrMatrix>(op->MaterializeSparse()); },
      [](Impl::Entry& e, const V& v) {
        e.sparse = v;
        e.bytes = CsrBytes(*v);
      },
      [](const LinOp& key, const V& v, store::ByteWriter* w) {
        return EncodeCsrArtifact(key, *v, w);
      },
      [](const LinOp& key, const std::vector<uint8_t>& b) -> std::optional<V> {
        auto m = DecodeCsrArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        return std::make_shared<const CsrMatrix>(std::move(*m));
      });
}

std::shared_ptr<const DenseMatrix> OperatorCache::MaterializeDense(
    const LinOpPtr& op) {
  using V = std::shared_ptr<const DenseMatrix>;
  return impl_->Cached<V>(
      op, op->StructuralHash(), kKindDense,
      [](const Impl::Entry& e) { return e.dense; },
      [&] {
        return std::make_shared<const DenseMatrix>(op->MaterializeDense());
      },
      [](Impl::Entry& e, const V& v) {
        e.dense = v;
        e.bytes = DenseBytes(*v);
      },
      [](const LinOp& key, const V& v, store::ByteWriter* w) {
        return EncodeDenseArtifact(key, *v, w);
      },
      [](const LinOp& key, const std::vector<uint8_t>& b) -> std::optional<V> {
        auto m = DecodeDenseArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        return std::make_shared<const DenseMatrix>(std::move(*m));
      });
}

std::shared_ptr<const DenseMatrix> OperatorCache::GramDense(
    const LinOpPtr& op) {
  using V = std::shared_ptr<const DenseMatrix>;
  return impl_->Cached<V>(
      op, op->StructuralHash(), kKindGramDense,
      [](const Impl::Entry& e) { return e.dense; },
      [&] {
        return std::make_shared<const DenseMatrix>(
            op->Gram()->MaterializeDense());
      },
      [](Impl::Entry& e, const V& v) {
        e.dense = v;
        e.bytes = DenseBytes(*v);
      },
      [](const LinOp& key, const V& v, store::ByteWriter* w) {
        return EncodeDenseArtifact(key, *v, w);
      },
      [](const LinOp& key, const std::vector<uint8_t>& b) -> std::optional<V> {
        // A Gram artifact is cols x cols regardless of the key's height.
        auto m = DecodeDenseArtifact(key, b, key.cols(), key.cols());
        if (!m) return std::nullopt;
        return std::make_shared<const DenseMatrix>(std::move(*m));
      });
}

LinOpPtr OperatorCache::SparseWrapped(const LinOpPtr& op) {
  return impl_->Cached<LinOpPtr>(
      op, op->StructuralHash(), kKindSparseWrap,
      [](const Impl::Entry& e) { return e.wrapped; },
      [&] { return MakeSparse(op->MaterializeSparse()); },
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      [](const LinOp& key, const LinOpPtr& v, store::ByteWriter* w) {
        auto* sp = dynamic_cast<const SparseOp*>(v.get());
        return sp != nullptr && EncodeCsrArtifact(key, sp->csr(), w);
      },
      [](const LinOp& key,
         const std::vector<uint8_t>& b) -> std::optional<LinOpPtr> {
        auto m = DecodeCsrArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        // MakeSparse re-derives the binary flag from the (bit-identical)
        // values, so the promoted leaf matches the computed one exactly.
        return MakeSparse(std::move(*m));
      });
}

LinOpPtr OperatorCache::DenseWrapped(const LinOpPtr& op) {
  return impl_->Cached<LinOpPtr>(
      op, op->StructuralHash(), kKindDenseWrap,
      [](const Impl::Entry& e) { return e.wrapped; },
      [&] { return MakeDense(op->MaterializeDense()); },
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      [](const LinOp& key, const LinOpPtr& v, store::ByteWriter* w) {
        auto* d = dynamic_cast<const DenseOp*>(v.get());
        return d != nullptr && EncodeDenseArtifact(key, d->dense(), w);
      },
      [](const LinOp& key,
         const std::vector<uint8_t>& b) -> std::optional<LinOpPtr> {
        auto m = DecodeDenseArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        return MakeDense(std::move(*m));
      });
}

std::optional<LinOpPtr> OperatorCache::CanonicalTreeLookup(
    const LinOpPtr& op) {
  const uint64_t hash = op->StructuralHash();
  obs::Span probe("cache.probe", "cache", &ProbeSeconds());
  probe.Attr("kind", static_cast<double>(kKindCanonTree));
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->Find(hash, kKindCanonTree, *op);
    if (it != impl_->lru.end()) {
      impl_->hits->Inc();
      impl_->tree_hits->Inc();
      return it->wrapped;
    }
    impl_->misses->Inc();
  }
  auto d = impl_->DiskSnapshot();
  if (d == nullptr || !StructuralHashPersistable(*op)) return std::nullopt;
  std::vector<uint8_t> payload;
  std::optional<LinOpPtr> decoded;
  const bool got = d->Get({hash, uint32_t(kKindCanonTree)}, &payload);
  if (got) {
    store::ByteReader r(payload);
    LinOpPtr tree;
    if (DecodeEnvelopeExpect(*op, kSubTree, &r))
      tree = store::DecodeLinOpTree(&r);
    if (tree && r.remaining() == 0 && tree->rows() == op->rows() &&
        tree->cols() == op->cols())
      decoded = std::move(tree);
  }
  // A checksum-valid record the decoder rejects (shape-guard collision,
  // stale encoding) is dropped so a recompute can re-store a good one.
  if (got && !decoded) d->Drop({hash, uint32_t(kKindCanonTree)});
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!decoded) {
    impl_->disk_misses->Inc();
    return std::nullopt;
  }
  impl_->disk_hits->Inc();
  impl_->tree_disk_hits->Inc();
  auto it = impl_->Find(hash, kKindCanonTree, *op);
  if (it != impl_->lru.end()) return it->wrapped;
  impl_->InsertValue(
      op, hash, kKindCanonTree,
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      *decoded);
  return decoded;
}

void OperatorCache::CanonicalTreeStore(const LinOpPtr& op,
                                       const LinOpPtr& tree) {
  const uint64_t hash = op->StructuralHash();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->Find(hash, kKindCanonTree, *op);
    if (it == impl_->lru.end())
      impl_->InsertValue(
          op, hash, kKindCanonTree,
          [](Impl::Entry& e, const LinOpPtr& v) {
            e.wrapped = v;
            e.bytes = ApproxRetainedBytes(*v);
          },
          tree);
  }
  auto d = impl_->DiskSnapshot();
  if (d == nullptr || !StructuralHashPersistable(*op)) return;
  Impl* impl = impl_.get();
  auto spill = [impl, d, op, tree, hash] {
    // The codec fails closed on any node it cannot round-trip (unknown
    // subclass, unstable hash, depth bound), in which case the winning
    // tree stays memory-cached only.
    store::ByteWriter w;
    EncodeEnvelope(*op, kSubTree, &w);
    if (store::EncodeLinOpTree(*tree, &w) &&
        d->Put({hash, uint32_t(kKindCanonTree)}, w.bytes())) {
      std::lock_guard<std::mutex> lock(impl->mu);
      impl->disk_writes->Inc();
    }
  };
  auto q = impl_->WbSnapshot();
  if (q) {
    (void)q->Enqueue(std::move(spill));  // full queue = counted drop
  } else {
    spill();
  }
}

double OperatorCache::Sensitivity(const LinOp& op, int which,
                                  const std::function<double()>& compute) {
  const int kind = which == 1 ? kKindSensL1 : kKindSensL2;
  // A safe cache key needs shared ownership; stack-allocated operators
  // just compute.
  LinOpPtr key = op.weak_from_this().lock();
  if (!key) return compute();
  return impl_->Cached<double>(
      key, op.StructuralHash(), kind,
      [](const Impl::Entry& e) { return e.value; }, compute,
      [](Impl::Entry& e, double v) {
        e.value = v;
        e.bytes = sizeof(Impl::Entry);
      },
      [](const LinOp& k, double v, store::ByteWriter* w) {
        return EncodeScalarArtifact(k, v, w);
      },
      [](const LinOp& k, const std::vector<uint8_t>& b) {
        return DecodeScalarArtifact(k, b);
      });
}

LinOpPtr OperatorCache::GramOperator(const LinOpPtr& op) {
  return impl_->Cached<LinOpPtr>(
      op, op->StructuralHash(), kKindGramOp,
      [](const Impl::Entry& e) { return e.wrapped; },
      [&] { return op->Gram(); },
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      [](const LinOp& key, const LinOpPtr& v, store::ByteWriter* w) {
        // Materialized Grams persist as typed leaves; a structured Gram
        // (Kronecker of child Grams, scaled Gram, ...) persists as an
        // encoded tree.  Only the plain lazy GramOp wrapper stays
        // memory-only — it is free to re-derive from the key.
        if (auto* sp = dynamic_cast<const SparseOp*>(v.get()))
          return EncodeCsrArtifact(key, sp->csr(), w);
        if (auto* d = dynamic_cast<const DenseOp*>(v.get()))
          return EncodeDenseArtifact(key, d->dense(), w);
        if (dynamic_cast<const GramOp*>(v.get()) == nullptr &&
            v->HashProcessStable()) {
          EncodeEnvelope(key, kSubTree, w);
          return store::EncodeLinOpTree(*v, w);
        }
        return false;
      },
      [](const LinOp& key,
         const std::vector<uint8_t>& b) -> std::optional<LinOpPtr> {
        store::ByteReader r(b);
        uint8_t sub;
        if (!DecodeEnvelope(key, &r, &sub)) return std::nullopt;
        const std::size_t n = key.cols();  // Gram of (m x n) is n x n
        if (sub == kSubCsr) {
          CsrMatrix m;
          if (!store::DeserializeCsr(&r, &m) || r.remaining() != 0 ||
              m.rows() != n || m.cols() != n)
            return std::nullopt;
          return MakeSparse(std::move(m));
        }
        if (sub == kSubDense) {
          DenseMatrix m;
          if (!store::DeserializeDense(&r, &m) || r.remaining() != 0 ||
              m.rows() != n || m.cols() != n)
            return std::nullopt;
          return MakeDense(std::move(m));
        }
        if (sub == kSubTree) {
          LinOpPtr tree = store::DecodeLinOpTree(&r);
          if (!tree || r.remaining() != 0 || tree->rows() != n ||
              tree->cols() != n)
            return std::nullopt;
          return tree;
        }
        return std::nullopt;
      });
}

double OperatorCache::GramNormSq(const LinOp& gram, std::size_t iters,
                                 const std::function<double()>& compute) {
  LinOpPtr key = gram.weak_from_this().lock();
  if (!key) return compute();
  // The estimate depends on the power-iteration count, so it joins the
  // structural hash in the lookup key.
  StructHash h;
  h.Mix(gram.StructuralHash()).Mix(uint64_t(iters));
  return impl_->Cached<double>(
      key, h.Finish(), kKindNormSq,
      [](const Impl::Entry& e) { return e.value; }, compute,
      [](Impl::Entry& e, double v) {
        e.value = v;
        e.bytes = sizeof(Impl::Entry);
      },
      [](const LinOp& k, double v, store::ByteWriter* w) {
        return EncodeScalarArtifact(k, v, w);
      },
      [](const LinOp& k, const std::vector<uint8_t>& b) {
        return DecodeScalarArtifact(k, b);
      });
}

LinOpPtr OperatorCache::CachedGramOrNull(const LinOp& a) {
  if (!RewriteEnabled()) return nullptr;
  LinOpPtr self = a.weak_from_this().lock();
  if (!self) return nullptr;
  return Global().GramOperator(self);
}

void OperatorCache::SetDiskTier(
    std::unique_ptr<store::DiskArtifactStore> tier) {
  std::shared_ptr<store::DiskArtifactStore> old;
  std::shared_ptr<store::WriteBehindQueue> old_wb;
  std::shared_ptr<store::WriteBehindQueue> next_wb =
      tier != nullptr ? MakeWriteBehindFromEnv() : nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    old = std::move(impl_->disk);
    old_wb = std::move(impl_->wb);
    impl_->disk = std::move(tier);
    impl_->wb = std::move(next_wb);
  }
  if (old_wb != nullptr) {
    // Land every spill already queued for the old tier before it closes
    // (spills hold their own store reference, so stragglers enqueued by
    // threads still using a pre-swap snapshot stay safe too — they just
    // land whenever the old queue's last holder releases it).
    old_wb->Drain();
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->disk_write_drops_base += old_wb->stats().dropped;
  }
  // `old` flushes and closes here (or when its last in-flight user
  // releases the snapshot).
}

store::DiskArtifactStore* OperatorCache::disk_tier() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->disk.get();
}

void OperatorCache::FlushDiskTier() {
  if (auto q = impl_->WbSnapshot()) q->Drain();
  if (auto d = impl_->DiskSnapshot()) d->Flush();
}

void OperatorCache::SetCapacity(std::size_t max_entries,
                                std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->max_entries = max_entries;
  impl_->max_bytes = max_bytes;
  impl_->EvictUntilBounded();
}

OperatorCache::Stats OperatorCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Stats s;
  s.hits = impl_->hits->Value();
  s.misses = impl_->misses->Value();
  s.evictions = impl_->evictions->Value();
  s.tree_hits = impl_->tree_hits->Value();
  s.tree_disk_hits = impl_->tree_disk_hits->Value();
  s.entries = impl_->lru.size();
  s.bytes = impl_->bytes;
  s.disk_hits = impl_->disk_hits->Value();
  s.disk_misses = impl_->disk_misses->Value();
  s.disk_writes = impl_->disk_writes->Value();
  s.disk_write_drops = impl_->disk_write_drops_base;
  if (impl_->wb != nullptr) s.disk_write_drops += impl_->wb->stats().dropped;
  if (impl_->disk != nullptr) {
    const store::DiskArtifactStore::Stats ds = impl_->disk->stats();
    s.disk_degraded = ds.degraded;
    s.disk_io_errors = ds.io_errors;
  }
  return s;
}

void OperatorCache::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->lru.clear();
  impl_->index.clear();
  impl_->bytes = 0;
  impl_->sens_entries = 0;
  impl_->tree_bytes = 0;
}

}  // namespace ektelo
