#include "matrix/rewrite.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "store/artifact_store.h"
#include "store/serialize.h"
#include "store/write_behind.h"
#include "util/check.h"

namespace ektelo {

// ------------------------------------------------------------------ toggle

namespace {

std::atomic<int> g_force{-1};

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("EKTELO_REWRITE");
    return !(v != nullptr && std::strcmp(v, "0") == 0);
  }();
  return enabled;
}

}  // namespace

bool RewriteEnabled() {
  const int f = g_force.load(std::memory_order_relaxed);
  if (f >= 0) return f != 0;
  return EnvEnabled();
}

void SetRewriteEnabled(int force) {
  g_force.store(force < 0 ? -1 : (force != 0 ? 1 : 0),
                std::memory_order_relaxed);
}

// ----------------------------------------------------------- rewrite pass

namespace {

template <typename T>
std::shared_ptr<const T> As(const LinOpPtr& p) {
  return std::dynamic_pointer_cast<const T>(p);
}

bool AllOnes(const Vec& w) {
  for (double v : w)
    if (!BitwiseEq(v, 1.0)) return false;
  return true;
}

/// What a VStack/HStack/Sum child can merge into.
enum class MergeKind { kNone, kRange, kSparse, kDense };

MergeKind MergeKindOf(const LinOpPtr& op) {
  if (As<RangeSetOp>(op)) return MergeKind::kRange;
  // Every row of Ones(m, n) is the full interval [0, n-1]: the prefix-sum
  // evaluation of the merged RangeSet reproduces the direct row sums
  // bitwise (both are the same left-to-right accumulation of x).
  if (As<OnesOp>(op) && op->cols() > 0) return MergeKind::kRange;
  if (As<SparseOp>(op)) return MergeKind::kSparse;
  if (As<DenseOp>(op)) return MergeKind::kDense;
  return MergeKind::kNone;
}

void AppendRanges(const LinOpPtr& op, std::vector<Interval>* out) {
  if (auto rs = As<RangeSetOp>(op)) {
    out->insert(out->end(), rs->ranges().begin(), rs->ranges().end());
    return;
  }
  auto ones = As<OnesOp>(op);
  EK_CHECK(ones != nullptr);
  for (std::size_t i = 0; i < ones->rows(); ++i)
    out->push_back({0, ones->cols() - 1});
}

DenseMatrix VConcatDense(const std::vector<LinOpPtr>& run) {
  std::size_t rows = 0;
  const std::size_t cols = run[0]->cols();
  for (const auto& c : run) rows += c->rows();
  DenseMatrix m(rows, cols);
  std::size_t r0 = 0;
  for (const auto& c : run) {
    const DenseMatrix& d = As<DenseOp>(c)->dense();
    std::copy(d.data().begin(), d.data().end(), m.RowPtr(r0));
    r0 += d.rows();
  }
  return m;
}

// Budget for eagerly multiplying two CSR leaves during rewriting: the
// update count of the row-wise product must stay modest, and the fused
// result is kept only when it is no denser than its factors (so per-apply
// cost can only improve — e.g. P P^T of a partition collapses to a
// diagonal).
constexpr std::size_t kSparseFuseMaxUpdates = std::size_t{1} << 24;

class Rewriter {
 public:
  LinOpPtr Run(const LinOpPtr& op) {
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return it->second.second;
    LinOpPtr out = Dispatch(op);
    // The map holds the KEY operator alive too: Gram re-derivation feeds
    // freshly built temporary trees through Run, and without the
    // keep-alive a freed node's address could be reused by a later
    // allocation in the same pass and hit a stale entry.
    memo_.emplace(op.get(), std::make_pair(op, out));
    return out;
  }

 private:
  // ---- small constructors that re-apply local rules on already-rewritten
  // ---- children (each returns a canonical node, never recursing into
  // ---- Run, so termination is by structural descent only).

  LinOpPtr Scaled(LinOpPtr child, double c) {
    while (auto s = As<ScaleOp>(child)) {
      c *= s->scale();
      child = s->child();
    }
    if (auto rw = As<RowWeightOp>(child)) {
      Vec w = rw->weights();
      for (double& v : w) v *= c;
      return RowWeighted(rw->child(), std::move(w));
    }
    if (c == 1.0) return child;
    if (auto sp = As<SparseOp>(child)) {
      CsrMatrix m = sp->csr();
      for (double& v : m.values()) v *= c;
      return MakeSparse(std::move(m));
    }
    if (auto d = As<DenseOp>(child)) {
      DenseMatrix m = d->dense();
      for (double& v : m.data()) v *= c;
      return MakeDense(std::move(m));
    }
    return MakeScaled(std::move(child), c);
  }

  LinOpPtr RowWeighted(LinOpPtr child, Vec w) {
    for (;;) {
      if (auto s = As<ScaleOp>(child)) {
        for (double& v : w) v *= s->scale();
        child = s->child();
        continue;
      }
      if (auto rw = As<RowWeightOp>(child)) {
        for (std::size_t i = 0; i < w.size(); ++i) w[i] *= rw->weights()[i];
        child = rw->child();
        continue;
      }
      break;
    }
    if (AllOnes(w)) return child;
    if (auto sp = As<SparseOp>(child)) return MakeSparse(sp->csr().ScaleRows(w));
    if (auto d = As<DenseOp>(child)) {
      DenseMatrix m = d->dense();
      for (std::size_t i = 0; i < m.rows(); ++i) {
        double* row = m.RowPtr(i);
        for (std::size_t j = 0; j < m.cols(); ++j) row[j] *= w[i];
      }
      return MakeDense(std::move(m));
    }
    return MakeRowWeight(std::move(child), std::move(w));
  }

  LinOpPtr Transposed(const LinOpPtr& child) {
    if (auto t = As<TransposeOp>(child)) return t->child();
    if (auto s = As<ScaleOp>(child))
      return Scaled(Transposed(s->child()), s->scale());
    if (auto p = As<ProductOp>(child))
      return Producted(Transposed(p->b()), Transposed(p->a()), false);
    if (auto k = As<KroneckerOp>(child))
      return Kroned(Transposed(k->a()), Transposed(k->b()));
    if (auto v = As<VStackOp>(child)) {
      std::vector<LinOpPtr> ts;
      ts.reserve(v->children().size());
      for (const auto& c : v->children()) ts.push_back(Transposed(c));
      return HStacked(std::move(ts));
    }
    if (auto hs = As<HStackOp>(child)) {
      std::vector<LinOpPtr> ts;
      ts.reserve(hs->children().size());
      for (const auto& c : hs->children()) ts.push_back(Transposed(c));
      return VStacked(std::move(ts));
    }
    if (auto sm = As<SumOp>(child)) {
      std::vector<LinOpPtr> ts;
      ts.reserve(sm->children().size());
      for (const auto& c : sm->children()) ts.push_back(Transposed(c));
      return Summed(std::move(ts));
    }
    if (As<GramOp>(child)) return child;  // symmetric
    if (As<IdentityOp>(child)) return child;
    if (auto sp = As<SparseOp>(child)) return MakeSparse(sp->csr().Transpose());
    if (auto d = As<DenseOp>(child)) return MakeDense(d->dense().Transpose());
    return MakeTranspose(child);
  }

  LinOpPtr Producted(LinOpPtr a, LinOpPtr b, bool binary_hint) {
    // Identity factors vanish (Product(I, A) evaluates A then copies).
    if (As<IdentityOp>(a)) return b;
    if (As<IdentityOp>(b)) return a;
    // Hoist scalars so the structural factors can fuse below.
    {
      double c = 1.0;
      bool hoisted = false;
      while (auto sa = As<ScaleOp>(a)) {
        c *= sa->scale();
        a = sa->child();
        hoisted = true;
      }
      while (auto sb = As<ScaleOp>(b)) {
        c *= sb->scale();
        b = sb->child();
        hoisted = true;
      }
      if (hoisted)
        return Scaled(Producted(std::move(a), std::move(b), binary_hint), c);
    }
    // Kronecker mixed-product identity: (A (x) B)(C (x) D) = AC (x) BD
    // when the factor shapes conform.
    {
      auto ka = As<KroneckerOp>(a);
      auto kb = As<KroneckerOp>(b);
      if (ka && kb && ka->a()->cols() == kb->a()->rows() &&
          ka->b()->cols() == kb->b()->rows())
        return Kroned(Producted(ka->a(), kb->a(), false),
                      Producted(ka->b(), kb->b(), false));
    }
    // Two CSR leaves: multiply now when affordable, keep only when the
    // product is no denser than its factors (P P^T of a partition or
    // selection collapses to a diagonal here, short-circuiting its Gram).
    {
      auto sa = As<SparseOp>(a);
      auto sb = As<SparseOp>(b);
      if (sa && sb) {
        const CsrMatrix& ma = sa->csr();
        const CsrMatrix& mb = sb->csr();
        if (ma.MatmulUpdateBound(mb) <= kSparseFuseMaxUpdates) {
          CsrMatrix fused = ma.Matmul(mb);
          if (fused.nnz() <= ma.nnz() + mb.nnz())
            return MakeSparse(std::move(fused));
        }
      }
    }
    return MakeProduct(std::move(a), std::move(b), binary_hint);
  }

  LinOpPtr Kroned(LinOpPtr a, LinOpPtr b) {
    {
      double c = 1.0;
      bool hoisted = false;
      while (auto sa = As<ScaleOp>(a)) {
        c *= sa->scale();
        a = sa->child();
        hoisted = true;
      }
      while (auto sb = As<ScaleOp>(b)) {
        c *= sb->scale();
        b = sb->child();
        hoisted = true;
      }
      if (hoisted) return Scaled(Kroned(std::move(a), std::move(b)), c);
    }
    auto ia = As<IdentityOp>(a);
    auto ib = As<IdentityOp>(b);
    if (ia && ib) return MakeIdentityOp(a->rows() * b->rows());
    if (ia && a->rows() == 1) return b;  // I_1 (x) B = B
    if (ib && b->rows() == 1) return a;
    return MakeKronecker(std::move(a), std::move(b));
  }

  LinOpPtr VStacked(std::vector<LinOpPtr> children) {
    // Flatten nested stacks.
    std::vector<LinOpPtr> flat;
    flat.reserve(children.size());
    for (auto& c : children) {
      if (auto v = As<VStackOp>(c))
        flat.insert(flat.end(), v->children().begin(), v->children().end());
      else
        flat.push_back(std::move(c));
    }
    // Hoist per-child Scale/RowWeight wrappers into one row-weight vector
    // when doing so exposes an adjacent mergeable pair underneath (the
    // weighted measurement stacks of NNLS/LSMR inference).
    bool any_wrapped = false;
    std::vector<LinOpPtr> stripped;
    stripped.reserve(flat.size());
    for (const auto& c : flat) {
      if (auto s = As<ScaleOp>(c)) {
        stripped.push_back(s->child());
        any_wrapped = true;
      } else if (auto rw = As<RowWeightOp>(c)) {
        stripped.push_back(rw->child());
        any_wrapped = true;
      } else {
        stripped.push_back(c);
      }
    }
    bool mergeable_pair = false;
    for (std::size_t i = 0; i + 1 < stripped.size() && !mergeable_pair; ++i) {
      const MergeKind k = MergeKindOf(stripped[i]);
      mergeable_pair = k != MergeKind::kNone && k == MergeKindOf(stripped[i + 1]);
    }
    if (any_wrapped && mergeable_pair) {
      Vec w;
      for (const auto& c : flat) {
        if (auto s = As<ScaleOp>(c)) {
          w.insert(w.end(), c->rows(), s->scale());
        } else if (auto rw = As<RowWeightOp>(c)) {
          w.insert(w.end(), rw->weights().begin(), rw->weights().end());
        } else {
          w.insert(w.end(), c->rows(), 1.0);
        }
      }
      return RowWeighted(VStacked(std::move(stripped)), std::move(w));
    }
    // Merge adjacent mergeable runs: RangeSet/Total rows concatenate into
    // one RangeSetOp (one prefix-sum pass per apply — the MWEM
    // measurement-union fast path); CSR and dense leaves concatenate by
    // rows.
    std::vector<LinOpPtr> merged;
    merged.reserve(flat.size());
    for (std::size_t i = 0; i < flat.size();) {
      const MergeKind kind = MergeKindOf(flat[i]);
      std::size_t j = i + 1;
      if (kind != MergeKind::kNone)
        while (j < flat.size() && MergeKindOf(flat[j]) == kind) ++j;
      if (kind == MergeKind::kNone || j == i + 1) {
        merged.push_back(flat[i]);
        i = j > i + 1 ? j : i + 1;
        continue;
      }
      std::vector<LinOpPtr> run(flat.begin() + i, flat.begin() + j);
      switch (kind) {
        case MergeKind::kRange: {
          std::vector<Interval> ranges;
          for (const auto& c : run) AppendRanges(c, &ranges);
          merged.push_back(
              MakeRangeSetOp(std::move(ranges), run[0]->cols()));
          break;
        }
        case MergeKind::kSparse: {
          std::vector<CsrMatrix> parts;
          parts.reserve(run.size());
          for (const auto& c : run) parts.push_back(As<SparseOp>(c)->csr());
          merged.push_back(MakeSparse(CsrMatrix::VStackMany(parts)));
          break;
        }
        case MergeKind::kDense:
          merged.push_back(MakeDense(VConcatDense(run)));
          break;
        case MergeKind::kNone:
          break;
      }
      i = j;
    }
    return MakeVStack(std::move(merged));
  }

  LinOpPtr HStacked(std::vector<LinOpPtr> children) {
    std::vector<LinOpPtr> flat;
    flat.reserve(children.size());
    for (auto& c : children) {
      if (auto h = As<HStackOp>(c))
        flat.insert(flat.end(), h->children().begin(), h->children().end());
      else
        flat.push_back(std::move(c));
    }
    // Merge adjacent CSR leaves (column offsets of adjacent children are
    // contiguous, so HStackMany over the run is exact).
    std::vector<LinOpPtr> merged;
    merged.reserve(flat.size());
    for (std::size_t i = 0; i < flat.size();) {
      std::size_t j = i + 1;
      if (As<SparseOp>(flat[i]))
        while (j < flat.size() && As<SparseOp>(flat[j])) ++j;
      if (j == i + 1) {
        merged.push_back(flat[i]);
        i = j;
        continue;
      }
      std::vector<CsrMatrix> parts;
      parts.reserve(j - i);
      for (std::size_t k = i; k < j; ++k)
        parts.push_back(As<SparseOp>(flat[k])->csr());
      merged.push_back(MakeSparse(CsrMatrix::HStackMany(parts)));
      i = j;
    }
    return MakeHStack(std::move(merged));
  }

  LinOpPtr Summed(std::vector<LinOpPtr> children) {
    std::vector<LinOpPtr> flat;
    flat.reserve(children.size());
    for (auto& c : children) {
      if (auto s = As<SumOp>(c))
        flat.insert(flat.end(), s->children().begin(), s->children().end());
      else
        flat.push_back(std::move(c));
    }
    // Fold all CSR leaves into one (addition is order-insensitive up to
    // roundoff; the merged leaf takes the first leaf's position), then all
    // dense leaves likewise.
    const auto replace_matching = [](std::vector<LinOpPtr> in,
                                     const LinOpPtr& fused,
                                     const auto& matches) {
      std::vector<LinOpPtr> kept;
      kept.reserve(in.size());
      bool placed = false;
      for (auto& c : in) {
        if (matches(c)) {
          if (!placed) kept.push_back(fused);
          placed = true;
        } else {
          kept.push_back(std::move(c));
        }
      }
      return kept;
    };
    std::vector<const CsrMatrix*> sparse;
    std::vector<const DenseMatrix*> dense;
    for (const auto& c : flat) {
      if (auto sp = As<SparseOp>(c)) sparse.push_back(&sp->csr());
      if (auto d = As<DenseOp>(c)) dense.push_back(&d->dense());
    }
    if (sparse.size() >= 2) {
      std::vector<Triplet> t;
      for (const CsrMatrix* m : sparse)
        for (std::size_t r = 0; r < m->rows(); ++r)
          for (std::size_t p = m->indptr()[r]; p < m->indptr()[r + 1]; ++p)
            t.push_back({r, m->indices()[p], m->values()[p]});
      LinOpPtr fused = MakeSparse(CsrMatrix::FromTriplets(
          flat[0]->rows(), flat[0]->cols(), std::move(t)));
      flat = replace_matching(std::move(flat), fused, [](const LinOpPtr& c) {
        return As<SparseOp>(c) != nullptr;
      });
    }
    if (dense.size() >= 2) {
      DenseMatrix acc(flat[0]->rows(), flat[0]->cols());
      for (const DenseMatrix* m : dense)
        for (std::size_t i = 0; i < acc.data().size(); ++i)
          acc.data()[i] += m->data()[i];
      LinOpPtr fused = MakeDense(std::move(acc));
      flat = replace_matching(std::move(flat), fused, [](const LinOpPtr& c) {
        return As<DenseOp>(c) != nullptr;
      });
    }
    return MakeSum(std::move(flat));
  }

  // ---- dispatch: rewrite children bottom-up, then canonicalize the node.
  // ---- Returns the original pointer when nothing fires, so per-instance
  // ---- caches (sensitivity, structural hash) survive a no-op pass.

  LinOpPtr Dispatch(const LinOpPtr& op) {
    if (auto s = As<ScaleOp>(op)) {
      LinOpPtr c = Run(s->child());
      LinOpPtr out = Scaled(c, s->scale());
      if (c == s->child())
        if (auto so = As<ScaleOp>(out))
          if (so->child() == c && BitwiseEq(so->scale(), s->scale())) return op;
      return out;
    }
    if (auto rw = As<RowWeightOp>(op)) {
      LinOpPtr c = Run(rw->child());
      LinOpPtr out = RowWeighted(c, rw->weights());
      if (c == rw->child())
        if (auto ro = As<RowWeightOp>(out))
          if (ro->child() == c && BitwiseEq(ro->weights(), rw->weights()))
            return op;
      return out;
    }
    if (auto t = As<TransposeOp>(op)) {
      LinOpPtr c = Run(t->child());
      LinOpPtr out = Transposed(c);
      if (c == t->child())
        if (auto to = As<TransposeOp>(out))
          if (to->child() == c) return op;
      return out;
    }
    if (auto p = As<ProductOp>(op)) {
      LinOpPtr a = Run(p->a());
      LinOpPtr b = Run(p->b());
      LinOpPtr out = Producted(a, b, p->is_nonneg_binary());
      if (a == p->a() && b == p->b())
        if (auto po = As<ProductOp>(out))
          if (po->a() == a && po->b() == b) return op;
      return out;
    }
    if (auto k = As<KroneckerOp>(op)) {
      LinOpPtr a = Run(k->a());
      LinOpPtr b = Run(k->b());
      LinOpPtr out = Kroned(a, b);
      if (a == k->a() && b == k->b())
        if (auto ko = As<KroneckerOp>(out))
          if (ko->a() == a && ko->b() == b) return op;
      return out;
    }
    if (auto v = As<VStackOp>(op)) {
      std::vector<LinOpPtr> cs = RunAll(v->children());
      LinOpPtr out = VStacked(cs);
      if (SameChildren(out, v, cs)) return op;
      return out;
    }
    if (auto h = As<HStackOp>(op)) {
      std::vector<LinOpPtr> cs = RunAll(h->children());
      LinOpPtr out = HStacked(cs);
      if (SameChildren(out, h, cs)) return op;
      return out;
    }
    if (auto s = As<SumOp>(op)) {
      std::vector<LinOpPtr> cs = RunAll(s->children());
      LinOpPtr out = Summed(cs);
      if (SameChildren(out, s, cs)) return op;
      return out;
    }
    if (auto g = As<GramOp>(op)) {
      LinOpPtr c = Run(g->child());
      // Re-derive the structured Gram of the rewritten child: after a
      // stack merge or product fusion the child may expose a closed form
      // the original lazy wrapper predates.
      LinOpPtr derived = c->Gram();
      if (auto gd = As<GramOp>(derived)) {
        if (gd->child() == c) return c == g->child() ? op : derived;
      }
      return Run(derived);
    }
    return op;  // leaves and unknown operators are already canonical
  }

  std::vector<LinOpPtr> RunAll(const std::vector<LinOpPtr>& cs) {
    std::vector<LinOpPtr> out;
    out.reserve(cs.size());
    for (const auto& c : cs) out.push_back(Run(c));
    return out;
  }

  /// True when `out` is an n-ary node of the same class as `orig` whose
  /// children are exactly the (rewritten-in-place) originals.
  template <typename NaryOp>
  bool SameChildren(const LinOpPtr& out,
                    const std::shared_ptr<const NaryOp>& orig,
                    const std::vector<LinOpPtr>& rewritten) {
    auto oo = As<NaryOp>(out);
    if (!oo || oo->children().size() != orig->children().size()) return false;
    for (std::size_t i = 0; i < rewritten.size(); ++i)
      if (rewritten[i] != orig->children()[i] ||
          oo->children()[i] != rewritten[i])
        return false;
    return true;
  }

  std::unordered_map<const LinOp*, std::pair<LinOpPtr, LinOpPtr>> memo_;
};

}  // namespace

LinOpPtr Rewrite(LinOpPtr op) {
  if (!op) return op;
  Rewriter r;
  LinOpPtr out = r.Run(op);
  EK_CHECK_EQ(out->rows(), op->rows());
  EK_CHECK_EQ(out->cols(), op->cols());
  return out;
}

LinOpPtr MaybeRewrite(LinOpPtr op) {
  if (!RewriteEnabled()) return op;
  return Rewrite(std::move(op));
}

// ------------------------------------------------- hash persistability

bool StructuralHashPersistable(const LinOp& op) {
  // The operator hierarchy answers this itself now: leaves with
  // deterministic hashes override HashProcessStable() to return true,
  // combinators forward the conjunction over their children, and the
  // LinOp default is false — so an unknown subclass (hashed per instance
  // by typeid + address) fails closed without this function having to
  // enumerate every kind with a dynamic_cast chain.
  return op.HashProcessStable();
}

// ---------------------------------------------------------- OperatorCache

namespace {
enum CacheKind : int {
  kKindSparse = 0,
  kKindDense = 1,
  kKindGramDense = 2,
  kKindSensL1 = 3,
  kKindSensL2 = 4,
  kKindSparseWrap = 5,
  kKindDenseWrap = 6,
  kKindGramOp = 7,
  kKindNormSq = 8,
};

// ---- disk-tier payload envelope: every persisted artifact embeds the
// ---- key operator's shape and a payload sub-kind ahead of the typed
// ---- bytes.  Together with the store framing ({format version,
// ---- kHashVersion, structural hash, artifact kind} + checksum) this is
// ---- the StructuralEq-compatible guard for cross-process reuse: the
// ---- hash function version must match exactly, and a (vanishingly
// ---- unlikely) same-hash collision between different-shaped operators
// ---- is rejected outright.

constexpr uint8_t kSubCsr = 0;
constexpr uint8_t kSubDense = 1;
constexpr uint8_t kSubScalar = 2;

void EncodeEnvelope(const LinOp& key, uint8_t sub, store::ByteWriter* w) {
  w->U64(key.rows());
  w->U64(key.cols());
  w->U8(sub);
}

bool DecodeEnvelope(const LinOp& key, store::ByteReader* r, uint8_t* sub) {
  uint64_t rows, cols;
  if (!r->U64(&rows) || !r->U64(&cols) || !r->U8(sub)) return false;
  return rows == key.rows() && cols == key.cols();
}

bool DecodeEnvelopeExpect(const LinOp& key, uint8_t want,
                          store::ByteReader* r) {
  uint8_t sub;
  return DecodeEnvelope(key, r, &sub) && sub == want;
}

std::size_t CsrBytes(const CsrMatrix& m) {
  return (m.indptr().size() + m.indices().size()) * sizeof(std::size_t) +
         m.values().size() * sizeof(double);
}
std::size_t DenseBytes(const DenseMatrix& m) {
  return m.data().size() * sizeof(double);
}

/// Approximate bytes an entry's key operator pins while cached: the byte
/// bound must account for the retained source tree, not just the derived
/// artifact — a sensitivity entry whose key is a large DenseOp strategy
/// holds megabytes, not sizeof(Entry).  Shared subtrees are counted per
/// entry (over-, never under-counting against the bound).
std::size_t ApproxRetainedBytes(const LinOp& op) {
  if (auto* d = dynamic_cast<const DenseOp*>(&op))
    return 64 + DenseBytes(d->dense());
  if (auto* s = dynamic_cast<const SparseOp*>(&op))
    return 64 + CsrBytes(s->csr());
  if (auto* r = dynamic_cast<const RangeSetOp*>(&op))
    return 64 + r->ranges().size() * sizeof(Interval);
  if (auto* r2 = dynamic_cast<const RectangleSetOp*>(&op))
    return 64 + r2->rects().size() * sizeof(Rectangle);
  if (auto* g = dynamic_cast<const GramOp*>(&op))
    return 64 + ApproxRetainedBytes(*g->child());
  if (auto* t = dynamic_cast<const TransposeOp*>(&op))
    return 64 + ApproxRetainedBytes(*t->child());
  if (auto* sc = dynamic_cast<const ScaleOp*>(&op))
    return 64 + ApproxRetainedBytes(*sc->child());
  if (auto* rw = dynamic_cast<const RowWeightOp*>(&op))
    return 64 + rw->weights().size() * sizeof(double) +
           ApproxRetainedBytes(*rw->child());
  if (auto* p = dynamic_cast<const ProductOp*>(&op))
    return 64 + ApproxRetainedBytes(*p->a()) + ApproxRetainedBytes(*p->b());
  if (auto* k = dynamic_cast<const KroneckerOp*>(&op))
    return 64 + ApproxRetainedBytes(*k->a()) + ApproxRetainedBytes(*k->b());
  std::size_t total = 64;
  const std::vector<LinOpPtr>* children = nullptr;
  if (auto* v = dynamic_cast<const VStackOp*>(&op)) children = &v->children();
  if (auto* h = dynamic_cast<const HStackOp*>(&op)) children = &h->children();
  if (auto* sm = dynamic_cast<const SumOp*>(&op)) children = &sm->children();
  if (children)
    for (const auto& c : *children) total += ApproxRetainedBytes(*c);
  return total;
}
}  // namespace

struct OperatorCache::Impl {
  struct Entry {
    uint64_t hash = 0;
    int kind = 0;
    LinOpPtr key_op;  // keeps the key alive for StructuralEq verification
    std::shared_ptr<const CsrMatrix> sparse;
    std::shared_ptr<const DenseMatrix> dense;
    LinOpPtr wrapped;  // SparseWrapped / DenseWrapped leaf
    double value = 0.0;
    std::size_t bytes = 0;
  };

  static bool IsSensitivityKind(int kind) {
    return kind == kKindSensL1 || kind == kKindSensL2;
  }

  mutable std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_multimap<uint64_t, std::list<Entry>::iterator> index;
  std::size_t max_entries = 1024;
  std::size_t max_bytes = std::size_t{256} << 20;
  std::size_t bytes = 0;
  std::size_t sens_entries = 0;
  std::size_t hits = 0, misses = 0, evictions = 0;
  // Persistent second tier (EKTELO_CACHE_DIR / SetDiskTier).  Held by
  // shared_ptr so accessors can snapshot it under mu and keep using it
  // safely across a concurrent SetDiskTier swap; the store flushes its
  // index checkpoint when the last holder releases it.
  std::shared_ptr<store::DiskArtifactStore> disk;
  // Write-behind consumer for disk spills (null = synchronous writes).
  // Swapped together with `disk`; jobs capture their own shared_ptr to
  // the store, so a queue outliving a tier swap stays safe.
  std::shared_ptr<store::WriteBehindQueue> wb;
  std::size_t disk_hits = 0, disk_misses = 0, disk_writes = 0;
  // Drops accumulated from queues already retired by SetDiskTier; the
  // live queue's drop count is added on top in stats().
  std::size_t disk_write_drops_base = 0;

  std::shared_ptr<store::DiskArtifactStore> DiskSnapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return disk;
  }

  std::shared_ptr<store::WriteBehindQueue> WbSnapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return wb;
  }

  static uint64_t IndexKey(uint64_t hash, int kind) {
    return hash ^ (uint64_t(kind) * 0x9e3779b97f4a7c15ull);
  }

  /// Must hold mu.  Returns lru.end() on miss.
  std::list<Entry>::iterator Find(uint64_t hash, int kind, const LinOp& op) {
    auto range = index.equal_range(IndexKey(hash, kind));
    for (auto it = range.first; it != range.second; ++it) {
      Entry& e = *it->second;
      if (e.kind == kind && e.hash == hash && e.key_op->StructuralEq(op)) {
        lru.splice(lru.begin(), lru, it->second);
        return lru.begin();
      }
    }
    return lru.end();
  }

  /// Must hold mu.
  void Evict(std::list<Entry>::iterator victim) {
    auto range = index.equal_range(IndexKey(victim->hash, victim->kind));
    for (auto it = range.first; it != range.second; ++it)
      if (it->second == victim) {
        index.erase(it);
        break;
      }
    bytes -= victim->bytes;
    if (IsSensitivityKind(victim->kind)) --sens_entries;
    lru.erase(victim);
    ++evictions;
  }

  /// Must hold mu.
  void EvictUntilBounded() {
    while (!lru.empty() && (lru.size() > max_entries || bytes > max_bytes))
      Evict(std::prev(lru.end()));
  }

  /// Must hold mu.
  void Insert(Entry e) {
    if (e.bytes > max_bytes) return;  // larger than the whole cache
    const bool sens = IsSensitivityKind(e.kind);
    if (sens) {
      // Sensitivity entries are cheap, high-volume (every shared node of
      // every tree inserts one) and often one-shot (MWEM's growing
      // unions).  Cap them at half the cache so a flood cannot crowd out
      // the expensive Gram/materialization artifacts the cache exists
      // for; the cap evicts the least-recently-used sensitivity entry.
      const std::size_t cap = std::max<std::size_t>(1, max_entries / 2);
      if (sens_entries >= cap)
        for (auto it = std::prev(lru.end());; --it) {
          if (IsSensitivityKind(it->kind)) {
            Evict(it);
            break;
          }
          if (it == lru.begin()) break;
        }
      ++sens_entries;
    }
    bytes += e.bytes;
    lru.push_front(std::move(e));
    index.emplace(IndexKey(lru.front().hash, lru.front().kind), lru.begin());
    EvictUntilBounded();
  }

  /// Must hold mu.  Builds and inserts an entry for `value`.
  template <typename V, typename FillF>
  void InsertValue(const LinOpPtr& key, uint64_t hash, int kind, FillF fill,
                   const V& value) {
    Entry e;
    e.hash = hash;
    e.kind = kind;
    e.key_op = key;
    fill(e, value);
    e.bytes += ApproxRetainedBytes(*key);
    Insert(std::move(e));
  }

  /// Double-checked lookup/compute/insert shared by every accessor: the
  /// compute runs OUTSIDE the lock (it may recurse into the cache), and a
  /// racing thread's earlier insert wins.  `get` reads the typed field
  /// off a hit; `fill` stores the computed value and its artifact bytes
  /// (the key tree's retained bytes are added here, uniformly).
  ///
  /// With a disk tier attached, a memory miss on a process-stable key
  /// probes the store before computing; a verified disk hit is promoted
  /// into memory (`decode` rebuilds the typed value; a reject falls
  /// through to compute).  A computed value is written behind to the
  /// store when `encode` can represent it.  All disk work runs outside
  /// mu; the tier is snapshotted so a concurrent SetDiskTier is safe.
  template <typename V, typename GetF, typename MakeF, typename FillF,
            typename EncodeF, typename DecodeF>
  V Cached(const LinOpPtr& key, uint64_t hash, int kind, GetF get,
           MakeF make, FillF fill, EncodeF encode, DecodeF decode) {
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = Find(hash, kind, *key);
      if (it != lru.end()) {
        ++hits;
        return get(*it);
      }
      ++misses;
    }
    std::shared_ptr<store::DiskArtifactStore> d = DiskSnapshot();
    const bool persistable = d != nullptr && StructuralHashPersistable(*key);
    if (persistable) {
      std::vector<uint8_t> payload;
      std::optional<V> decoded;
      const bool got = d->Get({hash, uint32_t(kind)}, &payload);
      if (got) decoded = decode(*key, payload);
      // A checksum-valid record the typed decoder rejects (shape-guard
      // collision, stale encoding) is dropped so the recompute below can
      // re-store a good one — otherwise Put would no-op on the live key
      // and every future process would pay read + recompute forever.
      if (got && !decoded) d->Drop({hash, uint32_t(kind)});
      std::lock_guard<std::mutex> lock(mu);
      if (decoded) {
        ++disk_hits;
        auto it = Find(hash, kind, *key);
        if (it != lru.end()) return get(*it);
        InsertValue(key, hash, kind, fill, *decoded);
        return *decoded;
      }
      ++disk_misses;
    }
    V value = make();
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = Find(hash, kind, *key);
      if (it != lru.end()) return get(*it);
      InsertValue(key, hash, kind, fill, value);
    }
    if (persistable) {
      // The spill captures shared ownership of the store and the value,
      // so it is safe to run on the write-behind consumer after an
      // arbitrary tier swap; with no queue attached it runs inline.
      auto spill = [this, d, key, value, hash, kind, encode] {
        store::ByteWriter w;
        if (encode(*key, value, &w) &&
            d->Put({hash, uint32_t(kind)}, w.bytes())) {
          std::lock_guard<std::mutex> lock(mu);
          ++disk_writes;
        }
      };
      auto q = WbSnapshot();
      if (q) {
        (void)q->Enqueue(std::move(spill));  // full queue = counted drop
      } else {
        spill();
      }
    }
    return value;
  }
};

namespace {

// ---- shared encode/decode lambable helpers for the disk tier ----

bool EncodeCsrArtifact(const LinOp& key, const CsrMatrix& m,
                       store::ByteWriter* w) {
  EncodeEnvelope(key, kSubCsr, w);
  store::SerializeCsr(m, w);
  return true;
}

std::optional<CsrMatrix> DecodeCsrArtifact(const LinOp& key,
                                           const std::vector<uint8_t>& bytes,
                                           std::size_t rows,
                                           std::size_t cols) {
  store::ByteReader r(bytes);
  CsrMatrix m;
  if (!DecodeEnvelopeExpect(key, kSubCsr, &r) ||
      !store::DeserializeCsr(&r, &m) || r.remaining() != 0 ||
      m.rows() != rows || m.cols() != cols)
    return std::nullopt;
  return m;
}

bool EncodeDenseArtifact(const LinOp& key, const DenseMatrix& m,
                         store::ByteWriter* w) {
  EncodeEnvelope(key, kSubDense, w);
  store::SerializeDense(m, w);
  return true;
}

std::optional<DenseMatrix> DecodeDenseArtifact(
    const LinOp& key, const std::vector<uint8_t>& bytes, std::size_t rows,
    std::size_t cols) {
  store::ByteReader r(bytes);
  DenseMatrix m;
  if (!DecodeEnvelopeExpect(key, kSubDense, &r) ||
      !store::DeserializeDense(&r, &m) || r.remaining() != 0 ||
      m.rows() != rows || m.cols() != cols)
    return std::nullopt;
  return m;
}

bool EncodeScalarArtifact(const LinOp& key, double v, store::ByteWriter* w) {
  EncodeEnvelope(key, kSubScalar, w);
  store::SerializeScalar(v, w);
  return true;
}

std::optional<double> DecodeScalarArtifact(
    const LinOp& key, const std::vector<uint8_t>& bytes) {
  store::ByteReader r(bytes);
  double v;
  if (!DecodeEnvelopeExpect(key, kSubScalar, &r) ||
      !store::DeserializeScalar(&r, &v) || r.remaining() != 0)
    return std::nullopt;
  return v;
}

/// Strict non-negative integer parse (same contract as the
/// EKTELO_CACHE_DISK_BYTES handling): the whole token must be digits.
bool ParseUll(const char* begin, const char* end_limit,
              unsigned long long* out) {
  if (begin == end_limit || *begin < '0' || *begin > '9') return false;
  char* end = nullptr;
  *out = std::strtoull(begin, &end, 10);
  return end == end_limit;
}

/// EKTELO_CACHE_KIND_QUOTAS is "kind:bytes[,kind:bytes...]" (both sides
/// strictly numeric; kind values are the CacheKind enum).  Unparsable
/// tokens are reported and skipped rather than silently mis-read.
void ParseKindQuotas(const char* spec,
                     std::vector<std::pair<uint32_t, std::size_t>>* out) {
  const char* p = spec;
  while (*p != '\0') {
    const char* comma = std::strchr(p, ',');
    const char* tok_end = comma != nullptr ? comma : p + std::strlen(p);
    const char* colon =
        static_cast<const char*>(std::memchr(p, ':', std::size_t(tok_end - p)));
    unsigned long long kind = 0, bytes = 0;
    if (colon != nullptr && ParseUll(p, colon, &kind) &&
        ParseUll(colon + 1, tok_end, &bytes) && kind <= 0xffffffffull) {
      out->emplace_back(uint32_t(kind), std::size_t(bytes));
    } else {
      std::fprintf(stderr,
                   "ektelo: ignoring unparsable EKTELO_CACHE_KIND_QUOTAS "
                   "token \"%.*s\" (want kind:bytes)\n",
                   int(tok_end - p), p);
    }
    p = comma != nullptr ? comma + 1 : tok_end;
  }
}

/// Builds the write-behind queue for a freshly attached disk tier.
/// EKTELO_CACHE_WRITE_BEHIND: unset/empty = on with the default
/// capacity; "0" = disabled (synchronous spills); a positive integer =
/// on with that queue capacity.  Anything else warns and uses the
/// default.
std::shared_ptr<store::WriteBehindQueue> MakeWriteBehindFromEnv() {
  const char* v = std::getenv("EKTELO_CACHE_WRITE_BEHIND");
  if (v == nullptr || *v == '\0')
    return std::make_shared<store::WriteBehindQueue>();
  unsigned long long cap = 0;
  if (ParseUll(v, v + std::strlen(v), &cap)) {
    if (cap == 0) return nullptr;
    return std::make_shared<store::WriteBehindQueue>(std::size_t(cap));
  }
  std::fprintf(stderr,
               "ektelo: ignoring unparsable EKTELO_CACHE_WRITE_BEHIND=%s "
               "(keeping the default write-behind queue)\n",
               v);
  return std::make_shared<store::WriteBehindQueue>();
}

}  // namespace

OperatorCache::OperatorCache() : impl_(new Impl) {}
OperatorCache::~OperatorCache() = default;

OperatorCache& OperatorCache::Global() {
  static OperatorCache* cache = [] {
    auto* c = new OperatorCache;
    // The disk tier is opt-in via the environment, and attaches only to
    // the process-wide instance (a second writer on the same directory
    // is unsupported, so locally constructed caches stay memory-only).
    // Unset means nothing ever touches the filesystem and the cache
    // behaves exactly as the memory-only tier.
    const char* dir = std::getenv("EKTELO_CACHE_DIR");
    if (dir != nullptr && *dir != '\0') {
      store::DiskStoreOptions opts;
      opts.hash_version = kHashVersion;
      if (const char* b = std::getenv("EKTELO_CACHE_DISK_BYTES")) {
        // Accept only a fully-numeric, non-negative value ("0" =
        // unbounded); a typo like "1G" or "-1000" must not silently
        // become no budget at all (strtoull would wrap a leading '-').
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(b, &end, 10);
        if (b[0] >= '0' && b[0] <= '9' && end != b && end != nullptr &&
            *end == '\0') {
          opts.max_bytes = std::size_t(parsed);
        } else {
          std::fprintf(stderr,
                       "ektelo: ignoring unparsable EKTELO_CACHE_DISK_BYTES"
                       "=%s (keeping the %zu-byte default)\n",
                       b, opts.max_bytes);
        }
      }
      if (const char* kq = std::getenv("EKTELO_CACHE_KIND_QUOTAS"))
        ParseKindQuotas(kq, &opts.kind_quotas);
      auto tier = store::DiskArtifactStore::Open(dir, opts);
      if (!tier) {
        std::fprintf(stderr,
                     "ektelo: EKTELO_CACHE_DIR=%s could not be opened; "
                     "running with the in-memory cache only\n",
                     dir);
      } else {
        c->impl_->disk = std::move(tier);
        c->impl_->wb = MakeWriteBehindFromEnv();
        // The instance is intentionally leaked, so the store destructor
        // never runs for the env-attached tier; checkpoint the index at
        // exit.  (Missing it is safe — reopen recovers by scanning the
        // log tail — just slower for big stores.)
        std::atexit([] { OperatorCache::Global().FlushDiskTier(); });
      }
    }
    return c;
  }();
  return *cache;
}

std::shared_ptr<const CsrMatrix> OperatorCache::MaterializeSparse(
    const LinOpPtr& op) {
  using V = std::shared_ptr<const CsrMatrix>;
  return impl_->Cached<V>(
      op, op->StructuralHash(), kKindSparse,
      [](const Impl::Entry& e) { return e.sparse; },
      [&] { return std::make_shared<const CsrMatrix>(op->MaterializeSparse()); },
      [](Impl::Entry& e, const V& v) {
        e.sparse = v;
        e.bytes = CsrBytes(*v);
      },
      [](const LinOp& key, const V& v, store::ByteWriter* w) {
        return EncodeCsrArtifact(key, *v, w);
      },
      [](const LinOp& key, const std::vector<uint8_t>& b) -> std::optional<V> {
        auto m = DecodeCsrArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        return std::make_shared<const CsrMatrix>(std::move(*m));
      });
}

std::shared_ptr<const DenseMatrix> OperatorCache::MaterializeDense(
    const LinOpPtr& op) {
  using V = std::shared_ptr<const DenseMatrix>;
  return impl_->Cached<V>(
      op, op->StructuralHash(), kKindDense,
      [](const Impl::Entry& e) { return e.dense; },
      [&] {
        return std::make_shared<const DenseMatrix>(op->MaterializeDense());
      },
      [](Impl::Entry& e, const V& v) {
        e.dense = v;
        e.bytes = DenseBytes(*v);
      },
      [](const LinOp& key, const V& v, store::ByteWriter* w) {
        return EncodeDenseArtifact(key, *v, w);
      },
      [](const LinOp& key, const std::vector<uint8_t>& b) -> std::optional<V> {
        auto m = DecodeDenseArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        return std::make_shared<const DenseMatrix>(std::move(*m));
      });
}

std::shared_ptr<const DenseMatrix> OperatorCache::GramDense(
    const LinOpPtr& op) {
  using V = std::shared_ptr<const DenseMatrix>;
  return impl_->Cached<V>(
      op, op->StructuralHash(), kKindGramDense,
      [](const Impl::Entry& e) { return e.dense; },
      [&] {
        return std::make_shared<const DenseMatrix>(
            op->Gram()->MaterializeDense());
      },
      [](Impl::Entry& e, const V& v) {
        e.dense = v;
        e.bytes = DenseBytes(*v);
      },
      [](const LinOp& key, const V& v, store::ByteWriter* w) {
        return EncodeDenseArtifact(key, *v, w);
      },
      [](const LinOp& key, const std::vector<uint8_t>& b) -> std::optional<V> {
        // A Gram artifact is cols x cols regardless of the key's height.
        auto m = DecodeDenseArtifact(key, b, key.cols(), key.cols());
        if (!m) return std::nullopt;
        return std::make_shared<const DenseMatrix>(std::move(*m));
      });
}

LinOpPtr OperatorCache::SparseWrapped(const LinOpPtr& op) {
  return impl_->Cached<LinOpPtr>(
      op, op->StructuralHash(), kKindSparseWrap,
      [](const Impl::Entry& e) { return e.wrapped; },
      [&] { return MakeSparse(op->MaterializeSparse()); },
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      [](const LinOp& key, const LinOpPtr& v, store::ByteWriter* w) {
        auto* sp = dynamic_cast<const SparseOp*>(v.get());
        return sp != nullptr && EncodeCsrArtifact(key, sp->csr(), w);
      },
      [](const LinOp& key,
         const std::vector<uint8_t>& b) -> std::optional<LinOpPtr> {
        auto m = DecodeCsrArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        // MakeSparse re-derives the binary flag from the (bit-identical)
        // values, so the promoted leaf matches the computed one exactly.
        return MakeSparse(std::move(*m));
      });
}

LinOpPtr OperatorCache::DenseWrapped(const LinOpPtr& op) {
  return impl_->Cached<LinOpPtr>(
      op, op->StructuralHash(), kKindDenseWrap,
      [](const Impl::Entry& e) { return e.wrapped; },
      [&] { return MakeDense(op->MaterializeDense()); },
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      [](const LinOp& key, const LinOpPtr& v, store::ByteWriter* w) {
        auto* d = dynamic_cast<const DenseOp*>(v.get());
        return d != nullptr && EncodeDenseArtifact(key, d->dense(), w);
      },
      [](const LinOp& key,
         const std::vector<uint8_t>& b) -> std::optional<LinOpPtr> {
        auto m = DecodeDenseArtifact(key, b, key.rows(), key.cols());
        if (!m) return std::nullopt;
        return MakeDense(std::move(*m));
      });
}

double OperatorCache::Sensitivity(const LinOp& op, int which,
                                  const std::function<double()>& compute) {
  const int kind = which == 1 ? kKindSensL1 : kKindSensL2;
  // A safe cache key needs shared ownership; stack-allocated operators
  // just compute.
  LinOpPtr key = op.weak_from_this().lock();
  if (!key) return compute();
  return impl_->Cached<double>(
      key, op.StructuralHash(), kind,
      [](const Impl::Entry& e) { return e.value; }, compute,
      [](Impl::Entry& e, double v) {
        e.value = v;
        e.bytes = sizeof(Impl::Entry);
      },
      [](const LinOp& k, double v, store::ByteWriter* w) {
        return EncodeScalarArtifact(k, v, w);
      },
      [](const LinOp& k, const std::vector<uint8_t>& b) {
        return DecodeScalarArtifact(k, b);
      });
}

LinOpPtr OperatorCache::GramOperator(const LinOpPtr& op) {
  return impl_->Cached<LinOpPtr>(
      op, op->StructuralHash(), kKindGramOp,
      [](const Impl::Entry& e) { return e.wrapped; },
      [&] { return op->Gram(); },
      [](Impl::Entry& e, const LinOpPtr& v) {
        e.wrapped = v;
        e.bytes = ApproxRetainedBytes(*v);
      },
      [](const LinOp& key, const LinOpPtr& v, store::ByteWriter* w) {
        // Only materialized Grams persist; a lazy/structured Gram is
        // cheap to re-derive and has no canonical byte form.
        if (auto* sp = dynamic_cast<const SparseOp*>(v.get()))
          return EncodeCsrArtifact(key, sp->csr(), w);
        if (auto* d = dynamic_cast<const DenseOp*>(v.get()))
          return EncodeDenseArtifact(key, d->dense(), w);
        return false;
      },
      [](const LinOp& key,
         const std::vector<uint8_t>& b) -> std::optional<LinOpPtr> {
        store::ByteReader r(b);
        uint8_t sub;
        if (!DecodeEnvelope(key, &r, &sub)) return std::nullopt;
        const std::size_t n = key.cols();  // Gram of (m x n) is n x n
        if (sub == kSubCsr) {
          CsrMatrix m;
          if (!store::DeserializeCsr(&r, &m) || r.remaining() != 0 ||
              m.rows() != n || m.cols() != n)
            return std::nullopt;
          return MakeSparse(std::move(m));
        }
        if (sub == kSubDense) {
          DenseMatrix m;
          if (!store::DeserializeDense(&r, &m) || r.remaining() != 0 ||
              m.rows() != n || m.cols() != n)
            return std::nullopt;
          return MakeDense(std::move(m));
        }
        return std::nullopt;
      });
}

double OperatorCache::GramNormSq(const LinOp& gram, std::size_t iters,
                                 const std::function<double()>& compute) {
  LinOpPtr key = gram.weak_from_this().lock();
  if (!key) return compute();
  // The estimate depends on the power-iteration count, so it joins the
  // structural hash in the lookup key.
  StructHash h;
  h.Mix(gram.StructuralHash()).Mix(uint64_t(iters));
  return impl_->Cached<double>(
      key, h.Finish(), kKindNormSq,
      [](const Impl::Entry& e) { return e.value; }, compute,
      [](Impl::Entry& e, double v) {
        e.value = v;
        e.bytes = sizeof(Impl::Entry);
      },
      [](const LinOp& k, double v, store::ByteWriter* w) {
        return EncodeScalarArtifact(k, v, w);
      },
      [](const LinOp& k, const std::vector<uint8_t>& b) {
        return DecodeScalarArtifact(k, b);
      });
}

LinOpPtr OperatorCache::CachedGramOrNull(const LinOp& a) {
  if (!RewriteEnabled()) return nullptr;
  LinOpPtr self = a.weak_from_this().lock();
  if (!self) return nullptr;
  return Global().GramOperator(self);
}

void OperatorCache::SetDiskTier(
    std::unique_ptr<store::DiskArtifactStore> tier) {
  std::shared_ptr<store::DiskArtifactStore> old;
  std::shared_ptr<store::WriteBehindQueue> old_wb;
  std::shared_ptr<store::WriteBehindQueue> next_wb =
      tier != nullptr ? MakeWriteBehindFromEnv() : nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    old = std::move(impl_->disk);
    old_wb = std::move(impl_->wb);
    impl_->disk = std::move(tier);
    impl_->wb = std::move(next_wb);
  }
  if (old_wb != nullptr) {
    // Land every spill already queued for the old tier before it closes
    // (spills hold their own store reference, so stragglers enqueued by
    // threads still using a pre-swap snapshot stay safe too — they just
    // land whenever the old queue's last holder releases it).
    old_wb->Drain();
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->disk_write_drops_base += old_wb->stats().dropped;
  }
  // `old` flushes and closes here (or when its last in-flight user
  // releases the snapshot).
}

store::DiskArtifactStore* OperatorCache::disk_tier() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->disk.get();
}

void OperatorCache::FlushDiskTier() {
  if (auto q = impl_->WbSnapshot()) q->Drain();
  if (auto d = impl_->DiskSnapshot()) d->Flush();
}

void OperatorCache::SetCapacity(std::size_t max_entries,
                                std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->max_entries = max_entries;
  impl_->max_bytes = max_bytes;
  impl_->EvictUntilBounded();
}

OperatorCache::Stats OperatorCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Stats s;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.evictions = impl_->evictions;
  s.entries = impl_->lru.size();
  s.bytes = impl_->bytes;
  s.disk_hits = impl_->disk_hits;
  s.disk_misses = impl_->disk_misses;
  s.disk_writes = impl_->disk_writes;
  s.disk_write_drops = impl_->disk_write_drops_base;
  if (impl_->wb != nullptr) s.disk_write_drops += impl_->wb->stats().dropped;
  return s;
}

void OperatorCache::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->lru.clear();
  impl_->index.clear();
  impl_->bytes = 0;
  impl_->sens_entries = 0;
}

}  // namespace ektelo
