// Cost-guided beam search over rewrite-rule applications: the `search`
// mode of EKTELO_REWRITE (see matrix/rewrite.h for the mode plumbing and
// the canonical-tree persistence that sits on top).
//
// The search runs bottom-up over the input tree.  At each node it keeps a
// bounded beam (matrix/cost.h kSearchBeamWidth) of candidate subtrees:
// the fixed-order rules result (always retained — it is the correctness
// and performance baseline), the canonical reconstruction over the best
// child candidates, and every proposal from the rule registry
// (matrix/rules.h AllRules()), deduplicated by structural hash, scored by
// the analytic cost model, and pruned by the monotone-cost rule (per-
// apply cost is monotone under composition, so a candidate scoring worse
// than kSearchPruneRatio x the beam best cannot be rescued by any
// enclosing context).  At the root, a non-rules candidate wins only when
// it is predicted at least (1 - kSearchImprovementRatio) cheaper than the
// rules tree — so `search` degrades to `rules`, never below it.
//
// Determinism: candidates order by (score, rules-first, structural hash);
// no randomness, no wall-clock — the same input tree always yields the
// same canonical tree, which is what makes the result persistable.
#ifndef EKTELO_MATRIX_SEARCH_H_
#define EKTELO_MATRIX_SEARCH_H_

#include <cstdint>

#include "matrix/linop.h"

namespace ektelo {

/// Process-wide search counters (monotone; surfaced in serve Stats).
struct SearchStats {
  uint64_t searches = 0;    ///< root canonicalization searches run
  uint64_t expansions = 0;  ///< candidates generated across all beams
  uint64_t pruned = 0;      ///< candidates dropped by cost/footprint pruning
};

SearchStats GetSearchStats();
void ResetSearchStats();

/// One full beam-search canonicalization of `op`.  Returns the original
/// pointer when the chosen tree is the node itself.  Pure and
/// deterministic; does not consult the OperatorCache (rewrite.cc's
/// SearchRewrite layers caching and persistence around this).  When
/// `improved` is non-null it is set to whether the search found a tree
/// that beat the fixed-order rules result by the improvement margin —
/// the caller's cue that the winner is worth caching and persisting
/// (a non-improved winner is exactly what the rules pass rebuilds).
LinOpPtr SearchCanonicalize(const LinOpPtr& op, bool* improved = nullptr);

/// Whether the beam search could possibly choose anything other than
/// the fixed-order rules tree for `op`.  Every genuinely new candidate
/// the search generates comes from the materialize rules, and both
/// require a Product/Kronecker node (the constructor rules are
/// idempotent on canonical trees — their proposals deduplicate against
/// the rules candidate).  A tree with no such node anywhere therefore
/// searches to exactly `rules::Canonicalize(op)`, and callers skip the
/// search and its cache traffic outright — the fast path for iterative
/// plans' measurement unions, which are stacks of range leaves.
bool SearchCanImprove(const LinOp& op);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_SEARCH_H_
