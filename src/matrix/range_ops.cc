#include "matrix/range_ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

RangeSetOp::RangeSetOp(std::vector<Interval> ranges, std::size_t n)
    : LinOp(ranges.size(), n), ranges_(std::move(ranges)) {
  for (const auto& r : ranges_) {
    EK_CHECK_LE(r.lo, r.hi);
    EK_CHECK_LT(r.hi, n);
  }
  set_nonneg_binary(true);
}

void RangeSetOp::ApplyRaw(const double* x, double* y) const {
  // Prefix sums: range sum = pre[hi+1] - pre[lo].
  Vec pre(cols() + 1, 0.0);
  for (std::size_t i = 0; i < cols(); ++i) pre[i + 1] = pre[i] + x[i];
  for (std::size_t q = 0; q < ranges_.size(); ++q)
    y[q] = pre[ranges_[q].hi + 1] - pre[ranges_[q].lo];
}

void RangeSetOp::ApplyTRaw(const double* x, double* y) const {
  // Difference array: add x_q on [lo, hi], then prefix-sum.
  std::fill(y, y + cols(), 0.0);
  Vec diff(cols() + 1, 0.0);
  for (std::size_t q = 0; q < ranges_.size(); ++q) {
    diff[ranges_[q].lo] += x[q];
    diff[ranges_[q].hi + 1] -= x[q];
  }
  double run = 0.0;
  for (std::size_t i = 0; i < cols(); ++i) {
    run += diff[i];
    y[i] = run;
  }
}

void RangeSetOp::ApplyBlockRaw(const double* x, double* y,
                               std::size_t k) const {
  // One prefix-sum pass per column, then the interval list is walked once
  // with all k columns answered per interval.
  const std::size_t n = cols(), m = rows();
  Vec pre((n + 1) * k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * n;
    double* pc = pre.data() + c * (n + 1);
    for (std::size_t i = 0; i < n; ++i) pc[i + 1] = pc[i] + xc[i];
  }
  for (std::size_t q = 0; q < m; ++q) {
    const std::size_t lo = ranges_[q].lo, hi = ranges_[q].hi;
    for (std::size_t c = 0; c < k; ++c) {
      const double* pc = pre.data() + c * (n + 1);
      y[c * m + q] = pc[hi + 1] - pc[lo];
    }
  }
}

void RangeSetOp::ApplyTBlockRaw(const double* x, double* y,
                                std::size_t k) const {
  const std::size_t n = cols(), m = rows();
  Vec diff((n + 1) * k, 0.0);
  for (std::size_t q = 0; q < m; ++q) {
    const std::size_t lo = ranges_[q].lo, hi = ranges_[q].hi;
    for (std::size_t c = 0; c < k; ++c) {
      diff[c * (n + 1) + lo] += x[c * m + q];
      diff[c * (n + 1) + hi + 1] -= x[c * m + q];
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    const double* dc = diff.data() + c * (n + 1);
    double* yc = y + c * n;
    double run = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      run += dc[i];
      yc[i] = run;
    }
  }
}

CsrMatrix RangeSetOp::MaterializeSparse() const {
  std::size_t nnz = 0;
  for (const auto& r : ranges_) nnz += r.hi - r.lo + 1;
  std::vector<Triplet> t;
  t.reserve(nnz);
  for (std::size_t q = 0; q < ranges_.size(); ++q)
    for (std::size_t c = ranges_[q].lo; c <= ranges_[q].hi; ++c)
      t.push_back({q, c, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double RangeSetOp::ComputeSensitivityL1() const {
  // Coverage count per cell via a difference array.
  Vec diff(cols() + 1, 0.0);
  for (const auto& r : ranges_) {
    diff[r.lo] += 1.0;
    diff[r.hi + 1] -= 1.0;
  }
  double run = 0.0, best = 0.0;
  for (std::size_t i = 0; i < cols(); ++i) {
    run += diff[i];
    best = std::max(best, run);
  }
  return best;
}

double RangeSetOp::ComputeSensitivityL2() const {
  return std::sqrt(SensitivityL1());  // binary entries
}

std::string RangeSetOp::DebugName() const {
  return "RangeSet(m=" + std::to_string(rows()) + ",n=" +
         std::to_string(cols()) + ")";
}

RectangleSetOp::RectangleSetOp(std::vector<Rectangle> rects, std::size_t nx,
                               std::size_t ny)
    : LinOp(rects.size(), nx * ny), rects_(std::move(rects)),
      nx_(nx), ny_(ny) {
  for (const auto& r : rects_) {
    EK_CHECK_LE(r.x_lo, r.x_hi);
    EK_CHECK_LE(r.y_lo, r.y_hi);
    EK_CHECK_LT(r.x_hi, nx_);
    EK_CHECK_LT(r.y_hi, ny_);
  }
  set_nonneg_binary(true);
}

void RectangleSetOp::ApplyRaw(const double* x, double* y) const {
  // 2D summed-area table, (nx+1) x (ny+1).
  Vec sat((nx_ + 1) * (ny_ + 1), 0.0);
  const std::size_t w = ny_ + 1;
  for (std::size_t i = 0; i < nx_; ++i)
    for (std::size_t j = 0; j < ny_; ++j)
      sat[(i + 1) * w + (j + 1)] = x[i * ny_ + j] + sat[i * w + (j + 1)] +
                                   sat[(i + 1) * w + j] - sat[i * w + j];
  for (std::size_t q = 0; q < rects_.size(); ++q) {
    const auto& r = rects_[q];
    y[q] = sat[(r.x_hi + 1) * w + (r.y_hi + 1)] -
           sat[r.x_lo * w + (r.y_hi + 1)] -
           sat[(r.x_hi + 1) * w + r.y_lo] + sat[r.x_lo * w + r.y_lo];
  }
}

void RectangleSetOp::ApplyTRaw(const double* x, double* y) const {
  // 2D difference array.
  Vec diff((nx_ + 1) * (ny_ + 1), 0.0);
  const std::size_t w = ny_ + 1;
  for (std::size_t q = 0; q < rects_.size(); ++q) {
    const auto& r = rects_[q];
    diff[r.x_lo * w + r.y_lo] += x[q];
    diff[r.x_lo * w + (r.y_hi + 1)] -= x[q];
    diff[(r.x_hi + 1) * w + r.y_lo] -= x[q];
    diff[(r.x_hi + 1) * w + (r.y_hi + 1)] += x[q];
  }
  // Two prefix-sum passes.
  for (std::size_t i = 0; i < nx_; ++i) {
    double run = 0.0;
    for (std::size_t j = 0; j < ny_; ++j) {
      run += diff[i * w + j];
      double above = (i > 0) ? y[(i - 1) * ny_ + j] : 0.0;
      y[i * ny_ + j] = run + above;
    }
  }
}

void RectangleSetOp::ApplyBlockRaw(const double* x, double* y,
                                   std::size_t k) const {
  // One summed-area table per column, then the rectangle list is walked
  // once with all k columns answered per rectangle.
  const std::size_t w = ny_ + 1;
  const std::size_t sat_sz = (nx_ + 1) * w;
  const std::size_t n = cols(), m = rows();
  Vec sat(sat_sz * k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * n;
    double* sc = sat.data() + c * sat_sz;
    for (std::size_t i = 0; i < nx_; ++i)
      for (std::size_t j = 0; j < ny_; ++j)
        sc[(i + 1) * w + (j + 1)] = xc[i * ny_ + j] + sc[i * w + (j + 1)] +
                                    sc[(i + 1) * w + j] - sc[i * w + j];
  }
  for (std::size_t q = 0; q < m; ++q) {
    const auto& r = rects_[q];
    for (std::size_t c = 0; c < k; ++c) {
      const double* sc = sat.data() + c * sat_sz;
      y[c * m + q] = sc[(r.x_hi + 1) * w + (r.y_hi + 1)] -
                     sc[r.x_lo * w + (r.y_hi + 1)] -
                     sc[(r.x_hi + 1) * w + r.y_lo] + sc[r.x_lo * w + r.y_lo];
    }
  }
}

void RectangleSetOp::ApplyTBlockRaw(const double* x, double* y,
                                    std::size_t k) const {
  const std::size_t w = ny_ + 1;
  const std::size_t diff_sz = (nx_ + 1) * w;
  const std::size_t n = cols(), m = rows();
  Vec diff(diff_sz * k, 0.0);
  for (std::size_t q = 0; q < m; ++q) {
    const auto& r = rects_[q];
    for (std::size_t c = 0; c < k; ++c) {
      double* dc = diff.data() + c * diff_sz;
      const double v = x[c * m + q];
      dc[r.x_lo * w + r.y_lo] += v;
      dc[r.x_lo * w + (r.y_hi + 1)] -= v;
      dc[(r.x_hi + 1) * w + r.y_lo] -= v;
      dc[(r.x_hi + 1) * w + (r.y_hi + 1)] += v;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    const double* dc = diff.data() + c * diff_sz;
    double* yc = y + c * n;
    for (std::size_t i = 0; i < nx_; ++i) {
      double run = 0.0;
      for (std::size_t j = 0; j < ny_; ++j) {
        run += dc[i * w + j];
        double above = (i > 0) ? yc[(i - 1) * ny_ + j] : 0.0;
        yc[i * ny_ + j] = run + above;
      }
    }
  }
}

CsrMatrix RectangleSetOp::MaterializeSparse() const {
  std::size_t nnz = 0;
  for (const auto& r : rects_)
    nnz += (r.x_hi - r.x_lo + 1) * (r.y_hi - r.y_lo + 1);
  std::vector<Triplet> t;
  t.reserve(nnz);
  for (std::size_t q = 0; q < rects_.size(); ++q) {
    const auto& r = rects_[q];
    for (std::size_t i = r.x_lo; i <= r.x_hi; ++i)
      for (std::size_t j = r.y_lo; j <= r.y_hi; ++j)
        t.push_back({q, i * ny_ + j, 1.0});
  }
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double RectangleSetOp::ComputeSensitivityL1() const {
  Vec diff((nx_ + 1) * (ny_ + 1), 0.0);
  const std::size_t w = ny_ + 1;
  for (const auto& r : rects_) {
    diff[r.x_lo * w + r.y_lo] += 1.0;
    diff[r.x_lo * w + (r.y_hi + 1)] -= 1.0;
    diff[(r.x_hi + 1) * w + r.y_lo] -= 1.0;
    diff[(r.x_hi + 1) * w + (r.y_hi + 1)] += 1.0;
  }
  Vec cover(nx_ * ny_, 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < nx_; ++i) {
    double run = 0.0;
    for (std::size_t j = 0; j < ny_; ++j) {
      run += diff[i * w + j];
      double above = (i > 0) ? cover[(i - 1) * ny_ + j] : 0.0;
      cover[i * ny_ + j] = run + above;
      best = std::max(best, cover[i * ny_ + j]);
    }
  }
  return best;
}

double RectangleSetOp::ComputeSensitivityL2() const {
  return std::sqrt(SensitivityL1());
}

std::string RectangleSetOp::DebugName() const {
  return "RectangleSet(m=" + std::to_string(rows()) + "," +
         std::to_string(nx_) + "x" + std::to_string(ny_) + ")";
}

// ---------------------------------------------------- structural identity

namespace {
constexpr uint64_t kTagRangeSet = 17;
constexpr uint64_t kTagRectSet = 18;
}  // namespace

uint64_t RangeSetOp::ComputeStructuralHash() const {
  StructHash h = HashBase(kTagRangeSet);
  h.Mix(ranges_.size());
  for (const auto& r : ranges_) h.Mix(r.lo).Mix(r.hi);
  return h.Finish();
}

bool RangeSetOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const RangeSetOp*>(&other);
  if (!o || !EqBase(other) || ranges_.size() != o->ranges_.size())
    return false;
  for (std::size_t i = 0; i < ranges_.size(); ++i)
    if (ranges_[i].lo != o->ranges_[i].lo ||
        ranges_[i].hi != o->ranges_[i].hi)
      return false;
  return true;
}

uint64_t RectangleSetOp::ComputeStructuralHash() const {
  StructHash h = HashBase(kTagRectSet);
  h.Mix(nx_).Mix(ny_).Mix(rects_.size());
  for (const auto& r : rects_)
    h.Mix(r.x_lo).Mix(r.x_hi).Mix(r.y_lo).Mix(r.y_hi);
  return h.Finish();
}

bool RectangleSetOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const RectangleSetOp*>(&other);
  if (!o || !EqBase(other) || nx_ != o->nx_ || ny_ != o->ny_ ||
      rects_.size() != o->rects_.size())
    return false;
  for (std::size_t i = 0; i < rects_.size(); ++i) {
    const auto& a = rects_[i];
    const auto& b = o->rects_[i];
    if (a.x_lo != b.x_lo || a.x_hi != b.x_hi || a.y_lo != b.y_lo ||
        a.y_hi != b.y_hi)
      return false;
  }
  return true;
}

LinOpPtr MakeRangeSetOp(std::vector<Interval> ranges, std::size_t n) {
  return std::make_shared<RangeSetOp>(std::move(ranges), n);
}

LinOpPtr MakeRectangleSetOp(std::vector<Rectangle> rects, std::size_t nx,
                            std::size_t ny) {
  return std::make_shared<RectangleSetOp>(std::move(rects), nx, ny);
}

}  // namespace ektelo
