// The rewrite *rules* layer: local algebraic transforms over LinOp trees,
// split out of the old monolithic rewrite pass (matrix/rewrite.h keeps the
// mode toggle, caching and the public Rewrite()/MaybeRewrite() entry
// points; matrix/search.h layers a cost-guided beam search on top).
//
// Two forms of the same rule set live here:
//
//  * Canonicalizer — the fixed-order bottom-up pass that *commits* each
//    rule in place (identity elimination, scale/row-weight hoisting, the
//    Kronecker mixed-product identity, guarded CSR fusion, stack
//    flattening and run merging).  This is `EKTELO_REWRITE=rules`, and it
//    is bitwise-identical to the pre-split rewrite pass: same rule order,
//    same guards (now named in matrix/cost.h), same trees out.
//
//  * Rule — the candidate-generating form: Apply(node) *proposes*
//    alternative trees instead of committing, leaving the choice to the
//    cost model.  This is what lets the search decide data-dependent
//    questions the fixed order cannot — e.g. whether Product(RangeSet, P)
//    should stay composed (O(n+m) per apply) or materialize to a small
//    CSR leaf (O(nnz)).
#ifndef EKTELO_MATRIX_RULES_H_
#define EKTELO_MATRIX_RULES_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/vec.h"
#include "matrix/linop.h"

namespace ektelo {
namespace rules {

/// Downcast helper shared by the rules and search layers.
template <typename T>
std::shared_ptr<const T> OpAs(const LinOpPtr& p) {
  return std::dynamic_pointer_cast<const T>(p);
}

/// The fixed-order canonicalizing pass (formerly rewrite.cc's Rewriter).
/// Run() memoizes by node identity, so shared subtrees rewrite once, and
/// returns the *original* pointer when nothing fires — preserving the
/// per-instance sensitivity/hash caches of an already-canonical tree.
///
/// The canonical constructors are public: each re-applies the local rules
/// for one node kind on already-rewritten children (never recursing into
/// Run, so termination is by structural descent only).  The beam search
/// builds its candidates through these same constructors, which is what
/// keeps `search` a superset of `rules` rather than a divergent rewriter.
class Canonicalizer {
 public:
  LinOpPtr Run(const LinOpPtr& op);

  LinOpPtr Scaled(LinOpPtr child, double c);
  LinOpPtr RowWeighted(LinOpPtr child, Vec w);
  LinOpPtr Transposed(const LinOpPtr& child);
  LinOpPtr Producted(LinOpPtr a, LinOpPtr b, bool binary_hint);
  LinOpPtr Kroned(LinOpPtr a, LinOpPtr b);
  LinOpPtr VStacked(std::vector<LinOpPtr> children);
  LinOpPtr HStacked(std::vector<LinOpPtr> children);
  LinOpPtr Summed(std::vector<LinOpPtr> children);

 private:
  LinOpPtr Dispatch(const LinOpPtr& op);
  std::vector<LinOpPtr> RunAll(const std::vector<LinOpPtr>& cs);

  /// True when `out` is an n-ary node of the same class as `orig` whose
  /// children are exactly the (rewritten-in-place) originals.
  template <typename NaryOp>
  bool SameChildren(const LinOpPtr& out,
                    const std::shared_ptr<const NaryOp>& orig,
                    const std::vector<LinOpPtr>& rewritten) {
    auto oo = OpAs<NaryOp>(out);
    if (!oo || oo->children().size() != orig->children().size()) return false;
    for (std::size_t i = 0; i < rewritten.size(); ++i)
      if (rewritten[i] != orig->children()[i] ||
          oo->children()[i] != rewritten[i])
        return false;
    return true;
  }

  std::unordered_map<const LinOp*, std::pair<LinOpPtr, LinOpPtr>> memo_;
};

/// One full fixed-order pass over a tree (the body of ektelo::Rewrite).
LinOpPtr Canonicalize(const LinOpPtr& op);

/// A candidate-generating transform: given one node (whose children the
/// search has already processed), propose zero or more alternative trees
/// computing the same matrix.  Proposals are suggestions — the cost model
/// ranks them and the beam keeps the cheapest few.  Implementations must
/// be deterministic and must preserve the represented matrix exactly up
/// to floating-point reassociation.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual std::vector<LinOpPtr> Apply(const LinOpPtr& node) const = 0;
};

/// The built-in rule registry, in a fixed deterministic order:
/// scale-collapse, transpose-push, row-weight-fuse, kron-fuse,
/// sparse-fuse, stack-merge, product-materialize, kron-materialize.
const std::vector<const Rule*>& AllRules();

}  // namespace rules
}  // namespace ektelo

#endif  // EKTELO_MATRIX_RULES_H_
