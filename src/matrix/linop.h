// LinOp: EKTELO's implicit matrix abstraction (paper Sec. 7).
//
// Workload matrices, measurement matrices and partition matrices are all
// represented as LinOps.  A LinOp is a *virtual* matrix: it must support the
// five primitive methods of Table 1 — matrix-vector product, transposed
// matrix-vector product, transpose, elementwise abs and elementwise square —
// from which every plan-level computation (query evaluation, L1/L2
// sensitivity, inference, Gram matrices, row indexing, materialization)
// is derived.
//
// Representations are lossless: MaterializeSparse()/MaterializeDense()
// produce the exact matrix, and the test suite checks every primitive
// against the materialized form.
#ifndef EKTELO_MATRIX_LINOP_H_
#define EKTELO_MATRIX_LINOP_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/vec.h"

namespace ektelo {

class LinOp;
using LinOpPtr = std::shared_ptr<const LinOp>;

class LinOp : public std::enable_shared_from_this<LinOp> {
 public:
  LinOp(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}
  virtual ~LinOp() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// y = A x.  |x| = cols, |y| = rows.  Must not alias.
  virtual void ApplyRaw(const double* x, double* y) const = 0;
  /// y = A^T x.  |x| = rows, |y| = cols.  Must not alias.
  virtual void ApplyTRaw(const double* x, double* y) const = 0;

  Vec Apply(const Vec& x) const;
  Vec ApplyT(const Vec& x) const;

  /// Elementwise |a_ij| as a LinOp.  Binary/non-negative matrices return
  /// themselves (a no-op, per Sec. 7.5); the default materializes sparse.
  virtual LinOpPtr Abs() const;
  /// Elementwise a_ij^2 as a LinOp.  Same no-op rule for binary matrices.
  virtual LinOpPtr Sqr() const;

  /// Exact sparse materialization.  The default evaluates A e_j column by
  /// column (O(cols) mat-vecs); structured subclasses override with direct
  /// constructions.
  virtual CsrMatrix MaterializeSparse() const;
  DenseMatrix MaterializeDense() const;

  /// Max L1 column norm: the Laplace sensitivity of this query set
  /// (computed as max(Abs()^T * 1), Table 1).
  virtual double SensitivityL1() const;
  /// Max L2 column norm (Gaussian-mechanism sensitivity).
  virtual double SensitivityL2() const;

  /// A human-readable structural name, e.g. "Kron(Prefix(256),Identity(7))".
  virtual std::string DebugName() const = 0;

  /// True if all entries are known to lie in {0, 1} (or {0, -1, +1} for
  /// abs-stability: see set_binary), making Abs()/Sqr() no-ops.
  bool is_nonneg_binary() const { return nonneg_binary_; }

 protected:
  void set_nonneg_binary(bool b) const { nonneg_binary_ = b; }

 private:
  std::size_t rows_, cols_;
  mutable bool nonneg_binary_ = false;
};

/// Wrapper over a materialized dense matrix.
class DenseOp final : public LinOp {
 public:
  explicit DenseOp(DenseMatrix m);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  double SensitivityL1() const override;
  double SensitivityL2() const override;
  std::string DebugName() const override;
  const DenseMatrix& dense() const { return m_; }

 private:
  DenseMatrix m_;
};

/// Wrapper over a materialized CSR sparse matrix.
class SparseOp final : public LinOp {
 public:
  explicit SparseOp(CsrMatrix m);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  CsrMatrix MaterializeSparse() const override;
  double SensitivityL1() const override;
  double SensitivityL2() const override;
  std::string DebugName() const override;
  const CsrMatrix& csr() const { return m_; }

 private:
  CsrMatrix m_;
};

LinOpPtr MakeDense(DenseMatrix m);
LinOpPtr MakeSparse(CsrMatrix m);

/// The i-th row of M as a dense vector: M^T e_i (Table 1, row indexing).
Vec RowOf(const LinOp& m, std::size_t i);

/// Gram matrix M^T M in sparse form (via sparse materialization).
CsrMatrix GramSparse(const LinOp& m);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_LINOP_H_
