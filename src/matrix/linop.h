// LinOp: EKTELO's implicit matrix abstraction (paper Sec. 7).
//
// Workload matrices, measurement matrices and partition matrices are all
// represented as LinOps.  A LinOp is a *virtual* matrix: it must support the
// five primitive methods of Table 1 — matrix-vector product, transposed
// matrix-vector product, transpose, elementwise abs and elementwise square —
// from which every plan-level computation (query evaluation, L1/L2
// sensitivity, inference, Gram matrices, row indexing, materialization)
// is derived.
//
// The evaluation core is *blocked*: ApplyBlockRaw/ApplyTBlockRaw evaluate a
// panel of k right-hand sides per traversal of the operator, so
// materialization, Gram assembly and multi-RHS solves amortize the cost of
// touching the operator structure over k columns.  Subclasses that only
// implement the single-vector ApplyRaw/ApplyTRaw still work — the default
// block methods loop over columns — but the dense/sparse/implicit leaves
// and all combinators override them with genuinely blocked kernels.
//
// Gram() contract: Gram() returns M^T M as a LinOp with rows == cols ==
// this->cols().  The result is symmetric positive semi-definite and exact
// (no approximation): Gram()->MaterializeDense() equals the densified
// M^T M for every operator.  The default is the lazily-composed operator
// x -> M^T (M x), which stays matrix-free (per-apply cost 2 * Time(M));
// structured subclasses override it with closed forms (e.g. Kron(A, B)
// yields Kron(Gram(A), Gram(B)); a vertical stack yields the sum of its
// children's Grams).  Solvers on the normal equations (CG, NNLS) consume
// Gram() directly and never materialize M.
//
// Representations are lossless: MaterializeSparse()/MaterializeDense()
// produce the exact matrix, and the test suite checks every primitive
// against the materialized form.
#ifndef EKTELO_MATRIX_LINOP_H_
#define EKTELO_MATRIX_LINOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "linalg/block.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/vec.h"

namespace ektelo {

class LinOp;
using LinOpPtr = std::shared_ptr<const LinOp>;

/// Accumulator for order-sensitive 64-bit structural fingerprints
/// (splitmix64 mixing).  Doubles are hashed by bit pattern, so -0.0 and
/// 0.0 (and any two NaN payloads) are distinct — matching the bitwise
/// equality StructuralEq uses, which is what a memo cache keyed by the
/// hash needs (hash-equal must be implied by eq, never the reverse).
/// Version of the structural-hash function: the splitmix64 mixing
/// constants, the per-class tags (kTag* across the operator translation
/// units), the HashBase preamble, and each operator's field order.  For
/// every *built-in* operator kind the resulting hash is a pure function
/// of the operator's construction — deterministic across processes and
/// platforms (64-bit std::size_t assumed) — which is what lets the
/// persistent artifact store (store/artifact_store.h) key on it.  Any
/// change to the mixing scheme, a tag, or a ComputeStructuralHash
/// override MUST bump this constant: store keys embed it, so old
/// artifacts are invalidated cleanly instead of being served under
/// colliding new-scheme hashes.  tests/store_test.cc pins golden hash
/// values for canonical operators to catch accidental changes.
///
/// The version also covers the *value semantics* of the artifacts keyed
/// by the hash: version 2 ships the vectorized dense-matmat kernel whose
/// 8-lane reduction tree changes dot-product rounding, so artifacts
/// computed under version 1 would no longer be bitwise-reproducible and
/// must not be served.
inline constexpr uint64_t kHashVersion = 2;

class StructHash {
 public:
  StructHash& Mix(uint64_t v) {
    h_ += 0x9e3779b97f4a7c15ull + v;
    uint64_t z = h_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    h_ = z ^ (z >> 31);
    return *this;
  }
  StructHash& MixDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return Mix(bits);
  }
  /// Accepts any std::vector<double, Alloc> (plain or AlignedVec).
  template <typename Alloc>
  StructHash& MixDoubles(const std::vector<double, Alloc>& vs) {
    Mix(vs.size());
    for (double v : vs) MixDouble(v);
    return *this;
  }
  StructHash& MixSizes(const std::vector<std::size_t>& vs) {
    Mix(vs.size());
    for (std::size_t v : vs) Mix(v);
    return *this;
  }
  uint64_t Finish() const { return h_; }

 private:
  uint64_t h_ = 0x243f6a8885a308d3ull;
};

/// Bitwise equality of double payloads (memcmp semantics: NaNs compare by
/// payload, -0.0 != 0.0) — the equality relation structural hashing and
/// the operator cache are defined over.
inline bool BitwiseEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}
template <typename AllocA, typename AllocB>
inline bool BitwiseEq(const std::vector<double, AllocA>& a,
                      const std::vector<double, AllocB>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

class LinOp : public std::enable_shared_from_this<LinOp> {
 public:
  LinOp(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}
  virtual ~LinOp() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// y = A x.  |x| = cols, |y| = rows.  Must not alias.
  virtual void ApplyRaw(const double* x, double* y) const = 0;
  /// y = A^T x.  |x| = rows, |y| = cols.  Must not alias.
  virtual void ApplyTRaw(const double* x, double* y) const = 0;

  /// Y = A X over k column-major right-hand sides: x is (cols x k), y is
  /// (rows x k), both column-major.  Must not alias.  The default loops
  /// over columns calling ApplyRaw; blocked subclasses traverse their
  /// structure once for all k columns.
  virtual void ApplyBlockRaw(const double* x, double* y, std::size_t k) const;
  /// Y = A^T X over k column-major RHS: x is (rows x k), y is (cols x k).
  virtual void ApplyTBlockRaw(const double* x, double* y,
                              std::size_t k) const;

  Vec Apply(const Vec& x) const;
  Vec ApplyT(const Vec& x) const;
  Block ApplyBlock(const Block& x) const;
  Block ApplyTBlock(const Block& x) const;

  /// Elementwise |a_ij| as a LinOp.  Binary/non-negative matrices return
  /// themselves (a no-op, per Sec. 7.5); the default materializes sparse.
  virtual LinOpPtr Abs() const;
  /// Elementwise a_ij^2 as a LinOp.  Same no-op rule for binary matrices.
  virtual LinOpPtr Sqr() const;

  /// M^T M as a first-class operator (see the Gram() contract above).
  virtual LinOpPtr Gram() const;

  /// Exact sparse materialization.  The default streams identity panels of
  /// bounded width through ApplyBlockRaw (one blocked traversal per
  /// ~kMaterializePanel columns, dropping exact zeros); structured
  /// subclasses override with direct constructions.
  virtual CsrMatrix MaterializeSparse() const;
  /// Exact dense materialization; the default densifies MaterializeSparse.
  virtual DenseMatrix MaterializeDense() const;

  /// Max L1 column norm: the Laplace sensitivity of this query set
  /// (computed as max(Abs()^T * 1), Table 1).  Cached per instance: plans
  /// query sensitivity repeatedly (budget splitting, noise calibration)
  /// and the underlying operator is immutable.
  double SensitivityL1() const;
  /// Max L2 column norm (Gaussian-mechanism sensitivity).  Cached.
  double SensitivityL2() const;

  /// A human-readable structural name, e.g. "Kron(Prefix(256),Identity(7))".
  virtual std::string DebugName() const = 0;

  /// Order-sensitive structural fingerprint: two operators that are
  /// StructuralEq (same construction — operator kinds, shapes, scalars,
  /// leaf contents, in order) always hash equal.  Cached per instance
  /// (operators are immutable).  The rewrite engine's OperatorCache keys
  /// on this hash and resolves collisions with StructuralEq.
  uint64_t StructuralHash() const;

  /// Deep structural equality.  The default is identity (`this == &other`),
  /// which is the only safe answer for subclasses the core does not know;
  /// every built-in operator overrides it with a by-construction
  /// comparison (bitwise on scalars/leaf payloads, recursive on children).
  virtual bool StructuralEq(const LinOp& other) const;

  /// True when the operator's structural hash is *process-stable*: a pure
  /// function of its construction, reproducible in a fresh process — the
  /// precondition for keying the persistent (disk) artifact store on it.
  /// The default is false, which fails closed: a subclass the core does
  /// not know hashes by instance address (see ComputeStructuralHash), so
  /// persisting under that hash would be wrong.  Leaves with
  /// deterministic hashes return true; combinators return the conjunction
  /// over their children.  Any override returning true MUST pair with a
  /// ComputeStructuralHash that is deterministic across processes.
  virtual bool HashProcessStable() const { return false; }

  /// True if all entries are known to lie in {0, 1} (or {0, -1, +1} for
  /// abs-stability: see set_binary), making Abs()/Sqr() no-ops.
  bool is_nonneg_binary() const { return nonneg_binary_; }

  /// Panel width used by the blocked materialization fallback.
  static constexpr std::size_t kMaterializePanel = 64;

 protected:
  void set_nonneg_binary(bool b) const { nonneg_binary_ = b; }

  /// A shared_ptr view of this operator for composed results (lazy Grams,
  /// Abs/Sqr no-ops).  Uses the owning control block when the operator is
  /// shared-owned (the factory functions); otherwise a non-owning alias,
  /// valid only while the operator itself lives — the same lifetime
  /// contract as the const-reference solver APIs that trigger it.
  LinOpPtr SelfPtr() const;

  /// Uncached sensitivity computations; override these, not the public
  /// cached accessors.
  virtual double ComputeSensitivityL1() const;
  virtual double ComputeSensitivityL2() const;

  /// Uncached structural-hash computation; override alongside
  /// StructuralEq.  The default mixes the dynamic type and the instance
  /// address, making unknown subclasses unique per instance — consistent
  /// with the default StructuralEq.
  virtual uint64_t ComputeStructuralHash() const;

  /// Seeds a StructHash with the shape/flag preamble every override must
  /// mix first: a per-class tag, rows, cols and the binary flag (the flag
  /// is semantics-bearing: it changes Abs()/Sqr()).
  StructHash HashBase(uint64_t tag) const {
    StructHash h;
    h.Mix(tag).Mix(rows_).Mix(cols_).Mix(nonneg_binary_ ? 1 : 0);
    return h;
  }
  /// The shape/flag preamble of StructuralEq overrides.
  bool EqBase(const LinOp& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           nonneg_binary_ == other.nonneg_binary_;
  }

 private:
  std::size_t rows_, cols_;
  mutable bool nonneg_binary_ = false;
  // Cached structural hash; 0 = not yet computed (a computed 0 is
  // remapped).  Atomic so concurrent first calls race benignly to the
  // same deterministic value.
  mutable std::atomic<uint64_t> struct_hash_{0};
  // The lazy sensitivity caches are the only mutable state a const LinOp
  // carries, so this mutex is what makes shared operators safe to use
  // from concurrent plan branches (note the resulting operator
  // non-copyability; operators live behind LinOpPtr anyway).
  mutable std::mutex sens_mu_;
  mutable std::optional<double> sens_l1_, sens_l2_;
};

/// Wrapper over a materialized dense matrix.
class DenseOp final : public LinOp {
 public:
  explicit DenseOp(DenseMatrix m);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  LinOpPtr Gram() const override;
  CsrMatrix MaterializeSparse() const override;
  DenseMatrix MaterializeDense() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }
  const DenseMatrix& dense() const { return m_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  DenseMatrix m_;
};

/// Wrapper over a materialized CSR sparse matrix.
class SparseOp final : public LinOp {
 public:
  explicit SparseOp(CsrMatrix m);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Abs() const override;
  LinOpPtr Sqr() const override;
  LinOpPtr Gram() const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }
  const CsrMatrix& csr() const { return m_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  CsrMatrix m_;
};

/// The lazily-composed Gram operator x -> M^T (M x): the default result of
/// LinOp::Gram().  Symmetric, so Apply == ApplyT; block applies stay
/// blocked end to end through the child.
class GramOp final : public LinOp {
 public:
  explicit GramOp(LinOpPtr child);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  LinOpPtr Gram() const override;  // Gram of a Gram composes lazily too
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override {
    return child_->HashProcessStable();
  }
  const LinOpPtr& child() const { return child_; }

 protected:
  uint64_t ComputeStructuralHash() const override;

 private:
  LinOpPtr child_;
};

LinOpPtr MakeDense(DenseMatrix m);
LinOpPtr MakeSparse(CsrMatrix m);

/// The i-th row of M as a dense vector: M^T e_i (Table 1, row indexing).
Vec RowOf(const LinOp& m, std::size_t i);

/// Gram matrix M^T M in sparse form, via the structured Gram() operator
/// (closed forms where available, blocked identity-panel materialization
/// otherwise).
CsrMatrix GramSparse(const LinOp& m);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_LINOP_H_
