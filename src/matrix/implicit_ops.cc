#include "matrix/implicit_ops.h"

#include <algorithm>
#include <cmath>

#include "linalg/haar.h"
#include "util/check.h"

namespace ektelo {

// --------------------------------------------------------------- Identity

IdentityOp::IdentityOp(std::size_t n) : LinOp(n, n) {
  set_nonneg_binary(true);
}

void IdentityOp::ApplyRaw(const double* x, double* y) const {
  std::copy(x, x + cols(), y);
}

void IdentityOp::ApplyTRaw(const double* x, double* y) const {
  std::copy(x, x + rows(), y);
}

CsrMatrix IdentityOp::MaterializeSparse() const {
  return CsrMatrix::Identity(rows());
}

std::string IdentityOp::DebugName() const {
  return "Identity(" + std::to_string(rows()) + ")";
}

// ------------------------------------------------------------------- Ones

OnesOp::OnesOp(std::size_t m, std::size_t n) : LinOp(m, n) {
  set_nonneg_binary(true);
}

void OnesOp::ApplyRaw(const double* x, double* y) const {
  double s = 0.0;
  for (std::size_t j = 0; j < cols(); ++j) s += x[j];
  std::fill(y, y + rows(), s);
}

void OnesOp::ApplyTRaw(const double* x, double* y) const {
  double s = 0.0;
  for (std::size_t i = 0; i < rows(); ++i) s += x[i];
  std::fill(y, y + cols(), s);
}

CsrMatrix OnesOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  t.reserve(rows() * cols());
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = 0; j < cols(); ++j) t.push_back({i, j, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double OnesOp::SensitivityL1() const { return static_cast<double>(rows()); }
double OnesOp::SensitivityL2() const {
  return std::sqrt(static_cast<double>(rows()));
}

std::string OnesOp::DebugName() const {
  return "Ones(" + std::to_string(rows()) + "x" + std::to_string(cols()) + ")";
}

// ----------------------------------------------------------------- Prefix

PrefixOp::PrefixOp(std::size_t n) : LinOp(n, n) { set_nonneg_binary(true); }

void PrefixOp::ApplyRaw(const double* x, double* y) const {
  double run = 0.0;
  for (std::size_t k = 0; k < cols(); ++k) {
    run += x[k];
    y[k] = run;
  }
}

void PrefixOp::ApplyTRaw(const double* x, double* y) const {
  // (P^T x)_j = sum_{k >= j} x_k: a suffix sum.
  double run = 0.0;
  for (std::size_t j = rows(); j-- > 0;) {
    run += x[j];
    y[j] = run;
  }
}

CsrMatrix PrefixOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  t.reserve(rows() * (rows() + 1) / 2);
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = 0; j <= i; ++j) t.push_back({i, j, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double PrefixOp::SensitivityL1() const {
  // Column j appears in rows j..n-1.
  return static_cast<double>(rows());
}
double PrefixOp::SensitivityL2() const {
  return std::sqrt(static_cast<double>(rows()));
}

std::string PrefixOp::DebugName() const {
  return "Prefix(" + std::to_string(rows()) + ")";
}

// ----------------------------------------------------------------- Suffix

SuffixOp::SuffixOp(std::size_t n) : LinOp(n, n) { set_nonneg_binary(true); }

void SuffixOp::ApplyRaw(const double* x, double* y) const {
  double run = 0.0;
  for (std::size_t k = cols(); k-- > 0;) {
    run += x[k];
    y[k] = run;
  }
}

void SuffixOp::ApplyTRaw(const double* x, double* y) const {
  double run = 0.0;
  for (std::size_t j = 0; j < rows(); ++j) {
    run += x[j];
    y[j] = run;
  }
}

CsrMatrix SuffixOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  t.reserve(rows() * (rows() + 1) / 2);
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = i; j < cols(); ++j) t.push_back({i, j, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double SuffixOp::SensitivityL1() const {
  return static_cast<double>(rows());
}
double SuffixOp::SensitivityL2() const {
  return std::sqrt(static_cast<double>(rows()));
}

std::string SuffixOp::DebugName() const {
  return "Suffix(" + std::to_string(rows()) + ")";
}

// ---------------------------------------------------------------- Wavelet

WaveletOp::WaveletOp(std::size_t n) : LinOp(n, n) {
  EK_CHECK(IsPowerOfTwo(n));
}

void WaveletOp::ApplyRaw(const double* x, double* y) const {
  HaarAnalysis(x, y, cols());
}

void WaveletOp::ApplyTRaw(const double* x, double* y) const {
  HaarSynthesis(x, y, cols());
}

CsrMatrix WaveletOp::MaterializeSparse() const {
  return HaarMatrixSparse(rows());
}

double WaveletOp::SensitivityL1() const {
  // Each column hits the total row plus one +/-1 per level.
  double k = std::log2(static_cast<double>(rows()));
  return 1.0 + k;
}

double WaveletOp::SensitivityL2() const {
  double k = std::log2(static_cast<double>(rows()));
  return std::sqrt(1.0 + k);
}

std::string WaveletOp::DebugName() const {
  return "Wavelet(" + std::to_string(rows()) + ")";
}

LinOpPtr MakeIdentityOp(std::size_t n) {
  return std::make_shared<IdentityOp>(n);
}
LinOpPtr MakeOnesOp(std::size_t m, std::size_t n) {
  return std::make_shared<OnesOp>(m, n);
}
LinOpPtr MakeTotalOp(std::size_t n) { return std::make_shared<OnesOp>(1, n); }
LinOpPtr MakePrefixOp(std::size_t n) { return std::make_shared<PrefixOp>(n); }
LinOpPtr MakeSuffixOp(std::size_t n) { return std::make_shared<SuffixOp>(n); }
LinOpPtr MakeWaveletOp(std::size_t n) {
  return std::make_shared<WaveletOp>(n);
}

}  // namespace ektelo
