#include "matrix/implicit_ops.h"

#include <algorithm>
#include <cmath>

#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "util/check.h"

namespace ektelo {

// --------------------------------------------------------------- Identity

IdentityOp::IdentityOp(std::size_t n) : LinOp(n, n) {
  set_nonneg_binary(true);
}

void IdentityOp::ApplyRaw(const double* x, double* y) const {
  std::copy(x, x + cols(), y);
}

void IdentityOp::ApplyTRaw(const double* x, double* y) const {
  std::copy(x, x + rows(), y);
}

void IdentityOp::ApplyBlockRaw(const double* x, double* y,
                               std::size_t k) const {
  std::copy(x, x + cols() * k, y);
}

void IdentityOp::ApplyTBlockRaw(const double* x, double* y,
                                std::size_t k) const {
  std::copy(x, x + rows() * k, y);
}

LinOpPtr IdentityOp::Gram() const { return SelfPtr(); }

CsrMatrix IdentityOp::MaterializeSparse() const {
  return CsrMatrix::Identity(rows());
}

std::string IdentityOp::DebugName() const {
  return "Identity(" + std::to_string(rows()) + ")";
}

// ------------------------------------------------------------------- Ones

OnesOp::OnesOp(std::size_t m, std::size_t n) : LinOp(m, n) {
  set_nonneg_binary(true);
}

void OnesOp::ApplyRaw(const double* x, double* y) const {
  double s = 0.0;
  for (std::size_t j = 0; j < cols(); ++j) s += x[j];
  std::fill(y, y + rows(), s);
}

void OnesOp::ApplyTRaw(const double* x, double* y) const {
  double s = 0.0;
  for (std::size_t i = 0; i < rows(); ++i) s += x[i];
  std::fill(y, y + cols(), s);
}

void OnesOp::ApplyBlockRaw(const double* x, double* y, std::size_t k) const {
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * cols();
    double s = 0.0;
    for (std::size_t j = 0; j < cols(); ++j) s += xc[j];
    std::fill(y + c * rows(), y + (c + 1) * rows(), s);
  }
}

void OnesOp::ApplyTBlockRaw(const double* x, double* y, std::size_t k) const {
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * rows();
    double s = 0.0;
    for (std::size_t i = 0; i < rows(); ++i) s += xc[i];
    std::fill(y + c * cols(), y + (c + 1) * cols(), s);
  }
}

LinOpPtr OnesOp::Gram() const {
  // Ones(m,n)^T Ones(m,n) = m * Ones(n,n).
  return MakeScaled(MakeOnesOp(cols(), cols()),
                    static_cast<double>(rows()));
}

CsrMatrix OnesOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  t.reserve(rows() * cols());
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = 0; j < cols(); ++j) t.push_back({i, j, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double OnesOp::ComputeSensitivityL1() const {
  return static_cast<double>(rows());
}
double OnesOp::ComputeSensitivityL2() const {
  return std::sqrt(static_cast<double>(rows()));
}

std::string OnesOp::DebugName() const {
  return "Ones(" + std::to_string(rows()) + "x" + std::to_string(cols()) + ")";
}

// ----------------------------------------------------------------- Prefix

PrefixOp::PrefixOp(std::size_t n) : LinOp(n, n) { set_nonneg_binary(true); }

void PrefixOp::ApplyRaw(const double* x, double* y) const {
  double run = 0.0;
  for (std::size_t k = 0; k < cols(); ++k) {
    run += x[k];
    y[k] = run;
  }
}

void PrefixOp::ApplyTRaw(const double* x, double* y) const {
  // (P^T x)_j = sum_{k >= j} x_k: a suffix sum.
  double run = 0.0;
  for (std::size_t j = rows(); j-- > 0;) {
    run += x[j];
    y[j] = run;
  }
}

void PrefixOp::ApplyBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * cols();
    double* yc = y + c * cols();
    double run = 0.0;
    for (std::size_t i = 0; i < cols(); ++i) {
      run += xc[i];
      yc[i] = run;
    }
  }
}

void PrefixOp::ApplyTBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * rows();
    double* yc = y + c * rows();
    double run = 0.0;
    for (std::size_t j = rows(); j-- > 0;) {
      run += xc[j];
      yc[j] = run;
    }
  }
}

CsrMatrix PrefixOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  t.reserve(rows() * (rows() + 1) / 2);
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = 0; j <= i; ++j) t.push_back({i, j, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double PrefixOp::ComputeSensitivityL1() const {
  // Column j appears in rows j..n-1.
  return static_cast<double>(rows());
}
double PrefixOp::ComputeSensitivityL2() const {
  return std::sqrt(static_cast<double>(rows()));
}

std::string PrefixOp::DebugName() const {
  return "Prefix(" + std::to_string(rows()) + ")";
}

// ----------------------------------------------------------------- Suffix

SuffixOp::SuffixOp(std::size_t n) : LinOp(n, n) { set_nonneg_binary(true); }

void SuffixOp::ApplyRaw(const double* x, double* y) const {
  double run = 0.0;
  for (std::size_t k = cols(); k-- > 0;) {
    run += x[k];
    y[k] = run;
  }
}

void SuffixOp::ApplyTRaw(const double* x, double* y) const {
  double run = 0.0;
  for (std::size_t j = 0; j < rows(); ++j) {
    run += x[j];
    y[j] = run;
  }
}

void SuffixOp::ApplyBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * cols();
    double* yc = y + c * cols();
    double run = 0.0;
    for (std::size_t i = cols(); i-- > 0;) {
      run += xc[i];
      yc[i] = run;
    }
  }
}

void SuffixOp::ApplyTBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * rows();
    double* yc = y + c * rows();
    double run = 0.0;
    for (std::size_t j = 0; j < rows(); ++j) {
      run += xc[j];
      yc[j] = run;
    }
  }
}

CsrMatrix SuffixOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  t.reserve(rows() * (rows() + 1) / 2);
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = i; j < cols(); ++j) t.push_back({i, j, 1.0});
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

double SuffixOp::ComputeSensitivityL1() const {
  return static_cast<double>(rows());
}
double SuffixOp::ComputeSensitivityL2() const {
  return std::sqrt(static_cast<double>(rows()));
}

std::string SuffixOp::DebugName() const {
  return "Suffix(" + std::to_string(rows()) + ")";
}

// ---------------------------------------------------------------- Wavelet

WaveletOp::WaveletOp(std::size_t n) : LinOp(n, n) {
  EK_CHECK(IsPowerOfTwo(n));
}

void WaveletOp::ApplyRaw(const double* x, double* y) const {
  HaarAnalysis(x, y, cols());
}

void WaveletOp::ApplyTRaw(const double* x, double* y) const {
  HaarSynthesis(x, y, cols());
}

void WaveletOp::ApplyBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  HaarAnalysisBlock(x, y, cols(), k);
}

void WaveletOp::ApplyTBlockRaw(const double* x, double* y,
                               std::size_t k) const {
  HaarSynthesisBlock(x, y, cols(), k);
}

CsrMatrix WaveletOp::MaterializeSparse() const {
  return HaarMatrixSparse(rows());
}

double WaveletOp::ComputeSensitivityL1() const {
  // Each column hits the total row plus one +/-1 per level.
  double k = std::log2(static_cast<double>(rows()));
  return 1.0 + k;
}

double WaveletOp::ComputeSensitivityL2() const {
  double k = std::log2(static_cast<double>(rows()));
  return std::sqrt(1.0 + k);
}

std::string WaveletOp::DebugName() const {
  return "Wavelet(" + std::to_string(rows()) + ")";
}

// ---------------------------------------------------- structural identity

// These operators carry no state beyond their shape, so the shared
// per-class tag + shape preamble is the whole fingerprint.
namespace {
constexpr uint64_t kTagIdentity = 12;
constexpr uint64_t kTagOnes = 13;
constexpr uint64_t kTagPrefix = 14;
constexpr uint64_t kTagSuffix = 15;
constexpr uint64_t kTagWavelet = 16;
}  // namespace

uint64_t IdentityOp::ComputeStructuralHash() const {
  return HashBase(kTagIdentity).Finish();
}
bool IdentityOp::StructuralEq(const LinOp& other) const {
  return dynamic_cast<const IdentityOp*>(&other) && EqBase(other);
}

uint64_t OnesOp::ComputeStructuralHash() const {
  return HashBase(kTagOnes).Finish();
}
bool OnesOp::StructuralEq(const LinOp& other) const {
  return dynamic_cast<const OnesOp*>(&other) && EqBase(other);
}

uint64_t PrefixOp::ComputeStructuralHash() const {
  return HashBase(kTagPrefix).Finish();
}
bool PrefixOp::StructuralEq(const LinOp& other) const {
  return dynamic_cast<const PrefixOp*>(&other) && EqBase(other);
}

uint64_t SuffixOp::ComputeStructuralHash() const {
  return HashBase(kTagSuffix).Finish();
}
bool SuffixOp::StructuralEq(const LinOp& other) const {
  return dynamic_cast<const SuffixOp*>(&other) && EqBase(other);
}

uint64_t WaveletOp::ComputeStructuralHash() const {
  return HashBase(kTagWavelet).Finish();
}
bool WaveletOp::StructuralEq(const LinOp& other) const {
  return dynamic_cast<const WaveletOp*>(&other) && EqBase(other);
}

LinOpPtr MakeIdentityOp(std::size_t n) {
  return std::make_shared<IdentityOp>(n);
}
LinOpPtr MakeOnesOp(std::size_t m, std::size_t n) {
  return std::make_shared<OnesOp>(m, n);
}
LinOpPtr MakeTotalOp(std::size_t n) { return std::make_shared<OnesOp>(1, n); }
LinOpPtr MakePrefixOp(std::size_t n) { return std::make_shared<PrefixOp>(n); }
LinOpPtr MakeSuffixOp(std::size_t n) { return std::make_shared<SuffixOp>(n); }
LinOpPtr MakeWaveletOp(std::size_t n) {
  return std::make_shared<WaveletOp>(n);
}

}  // namespace ektelo
