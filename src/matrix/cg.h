// Conjugate gradient on the normal equations (CGNR): an alternative
// iterative least-squares backend to LSMR.  Same primitive-method
// requirements (mat-vec + transposed mat-vec), slightly different
// numerical behaviour: LSMR is more stable on ill-conditioned systems,
// CGNR is often a bit faster per iteration.  The ablation bench compares
// them; inference defaults to LSMR as in the paper.
//
// CgLeastSquares runs CG against A.Gram() as a first-class operator, so
// structured Grams (Kron of Grams, precomputed sparse/dense A^T A) cut the
// per-iteration cost without ever materializing A; CgSpd is the underlying
// SPD solver, usable with any symmetric positive (semi-)definite LinOp.
#ifndef EKTELO_MATRIX_CG_H_
#define EKTELO_MATRIX_CG_H_

#include <cstddef>

#include "matrix/linop.h"

namespace ektelo {

struct CgOptions {
  double tol = 1e-8;  // relative residual (in A^T r) tolerance
  std::size_t max_iters = 0;  // 0: auto (4 * min(m, n), at least 100)
};

struct CgResult {
  Vec x;
  std::size_t iterations = 0;
  double normal_residual_norm = 0.0;  // ||A^T (A x - b)||
};

/// Solve G x = b for symmetric positive (semi-)definite G by plain CG.
/// normal_residual_norm reports ||G x - b|| on exit.
CgResult CgSpd(const LinOp& g, const Vec& b, const CgOptions& opts = {});

/// Solve G X = B column by column for a panel of right-hand sides.  The
/// columns shard across the thread pool (each solve is independent), and
/// every column reproduces the single-RHS CgSpd bitwise at any thread
/// count.
std::vector<CgResult> CgSpdMulti(const LinOp& g, const Block& rhs,
                                 const CgOptions& opts = {});

/// Solve argmin_x ||A x - b||_2 via CG on A^T A x = A^T b, driven through
/// A.Gram() (never materializes A or A^T A unless the operator already is).
CgResult CgLeastSquares(const LinOp& a, const Vec& b,
                        const CgOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_MATRIX_CG_H_
