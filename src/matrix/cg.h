// Conjugate gradient on the normal equations (CGNR): an alternative
// iterative least-squares backend to LSMR.  Same primitive-method
// requirements (mat-vec + transposed mat-vec), slightly different
// numerical behaviour: LSMR is more stable on ill-conditioned systems,
// CGNR is often a bit faster per iteration.  The ablation bench compares
// them; inference defaults to LSMR as in the paper.
#ifndef EKTELO_MATRIX_CG_H_
#define EKTELO_MATRIX_CG_H_

#include <cstddef>

#include "matrix/linop.h"

namespace ektelo {

struct CgOptions {
  double tol = 1e-8;  // relative residual (in A^T r) tolerance
  std::size_t max_iters = 0;  // 0: auto (4 * min(m, n), at least 100)
};

struct CgResult {
  Vec x;
  std::size_t iterations = 0;
  double normal_residual_norm = 0.0;  // ||A^T (A x - b)||
};

/// Solve argmin_x ||A x - b||_2 via CG on A^T A x = A^T b.
CgResult CgLeastSquares(const LinOp& a, const Vec& b,
                        const CgOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_MATRIX_CG_H_
