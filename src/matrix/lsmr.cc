#include "matrix/lsmr.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

namespace {

obs::Counter& LsmrIterations() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_solver_iterations", "Solver inner iterations run",
      "solver=\"lsmr\"");
  return c;
}
obs::Histogram& LsmrSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_solver_seconds", "Wall time of one solver call",
      "solver=\"lsmr\"");
  return h;
}

/// Stable Givens rotation (SymOrtho from the LSMR paper).
void SymOrtho(double a, double b, double* c, double* s, double* r) {
  if (b == 0.0) {
    *c = (a >= 0.0) ? 1.0 : -1.0;
    if (a == 0.0) *c = 1.0;
    *s = 0.0;
    *r = std::abs(a);
  } else if (a == 0.0) {
    *c = 0.0;
    *s = (b >= 0.0) ? 1.0 : -1.0;
    *r = std::abs(b);
  } else if (std::abs(b) > std::abs(a)) {
    double tau = a / b;
    double sign_b = (b >= 0.0) ? 1.0 : -1.0;
    *s = sign_b / std::sqrt(1.0 + tau * tau);
    *c = *s * tau;
    *r = b / *s;
  } else {
    double tau = b / a;
    double sign_a = (a >= 0.0) ? 1.0 : -1.0;
    *c = sign_a / std::sqrt(1.0 + tau * tau);
    *s = *c * tau;
    *r = a / *c;
  }
}

}  // namespace

LsmrResult Lsmr(const LinOp& a, const Vec& b, const LsmrOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  EK_CHECK_EQ(b.size(), m);
  const std::size_t max_iters =
      opts.max_iters > 0 ? opts.max_iters
                         : std::max<std::size_t>(4 * std::min(m, n), 100);
  obs::Span span("solver.lsmr", "solver", &LsmrSeconds());
  span.Attr("rows", static_cast<double>(m));
  span.Attr("cols", static_cast<double>(n));

  LsmrResult result;
  result.x.assign(n, 0.0);

  // Golub-Kahan bidiagonalization init.
  Vec u = b;
  double beta = Norm2(u);
  if (beta > 0.0) Scale(1.0 / beta, &u);
  Vec v(n, 0.0);
  double alpha = 0.0;
  if (beta > 0.0) {
    v = a.ApplyT(u);
    alpha = Norm2(v);
    if (alpha > 0.0) Scale(1.0 / alpha, &v);
  }
  if (alpha * beta == 0.0) {
    // b is zero (or in the null space of A^T): x = 0 is the solution.
    result.residual_norm = beta;
    return result;
  }

  double zetabar = alpha * beta;
  double alphabar = alpha;
  double rho = 1.0, rhobar = 1.0, cbar = 1.0, sbar = 0.0;

  Vec h = v;
  Vec hbar(n, 0.0);

  // Residual-norm estimation state.
  double betadd = beta, betad = 0.0;
  double rhodold = 1.0, tautildeold = 0.0, thetatilde = 0.0, zeta = 0.0;
  double d = 0.0;

  // Norm/cond estimation.
  double norm_a2 = alpha * alpha;
  double maxrbar = 0.0, minrbar = 1e100;
  const double normb = beta;
  const double ctol = opts.conlim > 0.0 ? 1.0 / opts.conlim : 0.0;

  std::size_t itn = 0;
  double normr = beta;
  // Work buffers reused across iterations: the bidiagonalization applies
  // go through the raw interface so no per-iteration Vec is allocated.
  Vec au(m), atv(n);
  while (itn < max_iters) {
    ++itn;

    // Next bidiagonalization step.
    a.ApplyRaw(v.data(), au.data());
    for (std::size_t i = 0; i < m; ++i) u[i] = au[i] - alpha * u[i];
    beta = Norm2(u);
    if (beta > 0.0) {
      Scale(1.0 / beta, &u);
      a.ApplyTRaw(u.data(), atv.data());
      for (std::size_t j = 0; j < n; ++j) v[j] = atv[j] - beta * v[j];
      alpha = Norm2(v);
      if (alpha > 0.0) Scale(1.0 / alpha, &v);
    }

    // Rotation for damping.
    double chat, shat, alphahat;
    SymOrtho(alphabar, opts.damp, &chat, &shat, &alphahat);

    // Plane rotation turning B_k into R_k.
    double rhoold = rho;
    double c, s;
    SymOrtho(alphahat, beta, &c, &s, &rho);
    double thetanew = s * alpha;
    alphabar = c * alpha;

    // Rotation turning R_k^T into R_k-bar.
    double rhobarold = rhobar;
    double zetaold = zeta;
    double thetabar = sbar * rho;
    double rhotemp = cbar * rho;
    SymOrtho(cbar * rho, thetanew, &cbar, &sbar, &rhobar);
    zeta = cbar * zetabar;
    zetabar = -sbar * zetabar;

    // Update h, hbar, x.
    const double hbar_coef = thetabar * rho / (rhoold * rhobarold);
    for (std::size_t j = 0; j < n; ++j) hbar[j] = h[j] - hbar_coef * hbar[j];
    const double x_coef = zeta / (rho * rhobar);
    for (std::size_t j = 0; j < n; ++j) result.x[j] += x_coef * hbar[j];
    const double h_coef = thetanew / rho;
    for (std::size_t j = 0; j < n; ++j) h[j] = v[j] - h_coef * h[j];

    // Residual-norm estimate.
    double betaacute = chat * betadd;
    double betacheck = -shat * betadd;
    double betahat = c * betaacute;
    betadd = -s * betaacute;
    double thetatildeold = thetatilde;
    double ctildeold, stildeold, rhotildeold;
    SymOrtho(rhodold, thetabar, &ctildeold, &stildeold, &rhotildeold);
    thetatilde = stildeold * rhobar;
    rhodold = ctildeold * rhobar;
    betad = -stildeold * betad + ctildeold * betahat;
    tautildeold = (zetaold - thetatildeold * tautildeold) / rhotildeold;
    double taud = (zeta - thetatilde * tautildeold) / rhodold;
    d += betacheck * betacheck;
    normr = std::sqrt(d + (betad - taud) * (betad - taud) + betadd * betadd);

    // ||A|| and cond(A) estimates.
    norm_a2 += beta * beta;
    const double norm_a = std::sqrt(norm_a2);
    norm_a2 += alpha * alpha;
    maxrbar = std::max(maxrbar, rhobarold);
    if (itn > 1) minrbar = std::min(minrbar, rhobarold);
    const double cond_a =
        std::max(maxrbar, rhotemp) / std::min(minrbar, rhotemp);

    // Convergence tests (as in the LSMR paper).
    const double normar = std::abs(zetabar);
    const double normx = Norm2(result.x);
    const double test1 = normr / normb;
    const double test2 = (norm_a * normr > 0.0)
                             ? normar / (norm_a * normr)
                             : 0.0;
    const double test3 = 1.0 / cond_a;
    const double rtol =
        opts.btol + opts.atol * norm_a * normx / normb;

    if (1.0 + test3 <= 1.0) {
      result.istop = 6;
      break;
    }
    if (1.0 + test2 <= 1.0) {
      result.istop = 5;
      break;
    }
    if (1.0 + test1 <= 1.0) {
      result.istop = 4;
      break;
    }
    if (test3 <= ctol) {
      result.istop = 3;
      break;
    }
    if (test2 <= opts.atol) {
      result.istop = 2;
      break;
    }
    if (test1 <= rtol) {
      result.istop = 1;
      break;
    }
  }

  result.iterations = itn;
  result.residual_norm = normr;
  LsmrIterations().Inc(result.iterations);
  span.Attr("iterations", static_cast<double>(result.iterations));
  return result;
}

std::vector<LsmrResult> LsmrMulti(const LinOp& a, const Block& rhs,
                                  const LsmrOptions& opts) {
  // Golub-Kahan bidiagonalization builds a separate Krylov space per RHS,
  // so the columns solve independently; the Block packaging exists so
  // multi-RHS call sites (workload answering, pseudo-inverse columns)
  // have one entry point that can later be swapped for a block-Krylov
  // method without touching callers.
  EK_CHECK_EQ(rhs.rows(), a.rows());
  // Each column's Krylov recurrence is already serial-per-RHS, so the
  // columns shard across the thread pool: solve c writes only results[c],
  // and its FP sequence is independent of which thread runs it.
  std::vector<LsmrResult> results(rhs.cols());
  ParallelFor(rhs.cols(), 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c)
      results[c] = Lsmr(a, rhs.Col(c), opts);
  });
  return results;
}

}  // namespace ektelo
