// LSMR: iterative least squares on implicit operators (Fong & Saunders,
// SIAM J. Sci. Comput. 2011).  This is the engine behind EKTELO's
// general-purpose least-squares inference (paper Sec. 7.6): it only needs
// mat-vec and transposed mat-vec, so it runs directly on implicit matrices
// with per-iteration cost O(Time(M)).
#ifndef EKTELO_MATRIX_LSMR_H_
#define EKTELO_MATRIX_LSMR_H_

#include <cstddef>

#include "matrix/linop.h"

namespace ektelo {

struct LsmrOptions {
  // Defaults are loose enough for DP inference (answers carry Laplace
  // noise orders of magnitude above 1e-8) while tight enough that exact
  // systems round-trip to ~1e-6 accuracy in tests.
  double atol = 1e-8;
  double btol = 1e-8;
  double conlim = 1e8;
  /// 0 means "choose automatically" (a small multiple of min(m, n)).
  std::size_t max_iters = 0;
  double damp = 0.0;
};

struct LsmrResult {
  Vec x;
  std::size_t iterations = 0;
  /// ||A x - b|| at the final iterate.
  double residual_norm = 0.0;
  /// Stopping reason, mirroring the LSMR paper's istop codes.
  int istop = 0;
};

/// Solve argmin_x ||A x - b||_2 (optionally damped).
LsmrResult Lsmr(const LinOp& a, const Vec& b, const LsmrOptions& opts = {});

/// Solve one least-squares problem per column of `rhs` (rhs is rows x k).
/// Results are ordered by column.
std::vector<LsmrResult> LsmrMulti(const LinOp& a, const Block& rhs,
                                  const LsmrOptions& opts = {});

}  // namespace ektelo

#endif  // EKTELO_MATRIX_LSMR_H_
