// Partition of the cells of a data vector (paper Sec. 5.4): assigns each of
// the n cells to one of p groups.  Used as the input to
// V-ReduceByPartition (x' = P x) and V-SplitByPartition, and produced by
// the partition-selection operators (AHP, DAWA, Grid, Workload-based,
// Stripe, Marginal).
#ifndef EKTELO_MATRIX_PARTITION_H_
#define EKTELO_MATRIX_PARTITION_H_

#include <cstdint>
#include <vector>

#include "matrix/linop.h"

namespace ektelo {

class Partition {
 public:
  Partition() = default;
  /// group_of[i] in [0, num_groups) for each cell i.
  Partition(std::vector<uint32_t> group_of, std::size_t num_groups);

  /// Identity partition: each cell its own group.
  static Partition Identity(std::size_t n);
  /// Contiguous intervals given by their (inclusive-start) boundaries.
  /// `cuts` must start at 0 and be strictly increasing; the last interval
  /// runs to n.
  static Partition FromIntervals(const std::vector<std::size_t>& cuts,
                                 std::size_t n);

  std::size_t num_cells() const { return group_of_.size(); }
  std::size_t num_groups() const { return num_groups_; }
  uint32_t group_of(std::size_t cell) const { return group_of_[cell]; }
  const std::vector<uint32_t>& assignments() const { return group_of_; }

  /// Cells of each group, in cell order.
  std::vector<std::vector<std::size_t>> Groups() const;
  std::vector<std::size_t> GroupSizes() const;

  /// The p x n 0/1 reduction matrix P with P_ij = 1 iff cell j is in
  /// group i (Sec. 5.1).  Max L1 column norm is 1, so reduction is
  /// 1-stable.
  CsrMatrix ReduceMatrix() const;
  LinOpPtr ReduceOp() const;

  /// The pseudo-inverse P+ = P^T D^{-1} (Prop. 8.3), an n x p matrix.
  CsrMatrix PseudoInverseMatrix() const;
  LinOpPtr PseudoInverseOp() const;

 private:
  std::vector<uint32_t> group_of_;
  std::size_t num_groups_ = 0;
};

}  // namespace ektelo

#endif  // EKTELO_MATRIX_PARTITION_H_
