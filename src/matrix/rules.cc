#include "matrix/rules.h"

#include <algorithm>
#include <cstddef>
#include <optional>

#include "matrix/combinators.h"
#include "matrix/cost.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "util/check.h"

namespace ektelo {
namespace rules {

namespace {

template <typename T>
std::shared_ptr<const T> As(const LinOpPtr& p) {
  return std::dynamic_pointer_cast<const T>(p);
}

bool AllOnes(const Vec& w) {
  for (double v : w)
    if (!BitwiseEq(v, 1.0)) return false;
  return true;
}

/// What a VStack/HStack/Sum child can merge into.
enum class MergeKind { kNone, kRange, kSparse, kDense };

MergeKind MergeKindOf(const LinOpPtr& op) {
  if (As<RangeSetOp>(op)) return MergeKind::kRange;
  // Every row of Ones(m, n) is the full interval [0, n-1]: the prefix-sum
  // evaluation of the merged RangeSet reproduces the direct row sums
  // bitwise (both are the same left-to-right accumulation of x).
  if (As<OnesOp>(op) && op->cols() > 0) return MergeKind::kRange;
  if (As<SparseOp>(op)) return MergeKind::kSparse;
  if (As<DenseOp>(op)) return MergeKind::kDense;
  return MergeKind::kNone;
}

void AppendRanges(const LinOpPtr& op, std::vector<Interval>* out) {
  if (auto rs = As<RangeSetOp>(op)) {
    out->insert(out->end(), rs->ranges().begin(), rs->ranges().end());
    return;
  }
  auto ones = As<OnesOp>(op);
  EK_CHECK(ones != nullptr);
  for (std::size_t i = 0; i < ones->rows(); ++i)
    out->push_back({0, ones->cols() - 1});
}

DenseMatrix VConcatDense(const std::vector<LinOpPtr>& run) {
  std::size_t rows = 0;
  const std::size_t cols = run[0]->cols();
  for (const auto& c : run) rows += c->rows();
  DenseMatrix m(rows, cols);
  std::size_t r0 = 0;
  for (const auto& c : run) {
    const DenseMatrix& d = As<DenseOp>(c)->dense();
    std::copy(d.data().begin(), d.data().end(), m.RowPtr(r0));
    r0 += d.rows();
  }
  return m;
}

}  // namespace

// ----------------------------------------------------- Canonicalizer

LinOpPtr Canonicalizer::Run(const LinOpPtr& op) {
  auto it = memo_.find(op.get());
  if (it != memo_.end()) return it->second.second;
  LinOpPtr out = Dispatch(op);
  // The map holds the KEY operator alive too: Gram re-derivation feeds
  // freshly built temporary trees through Run, and without the
  // keep-alive a freed node's address could be reused by a later
  // allocation in the same pass and hit a stale entry.
  memo_.emplace(op.get(), std::make_pair(op, out));
  return out;
}

LinOpPtr Canonicalizer::Scaled(LinOpPtr child, double c) {
  while (auto s = As<ScaleOp>(child)) {
    c *= s->scale();
    child = s->child();
  }
  if (auto rw = As<RowWeightOp>(child)) {
    Vec w = rw->weights();
    for (double& v : w) v *= c;
    return RowWeighted(rw->child(), std::move(w));
  }
  if (c == 1.0) return child;
  if (auto sp = As<SparseOp>(child)) {
    CsrMatrix m = sp->csr();
    for (double& v : m.values()) v *= c;
    return MakeSparse(std::move(m));
  }
  if (auto d = As<DenseOp>(child)) {
    DenseMatrix m = d->dense();
    for (double& v : m.data()) v *= c;
    return MakeDense(std::move(m));
  }
  return MakeScaled(std::move(child), c);
}

LinOpPtr Canonicalizer::RowWeighted(LinOpPtr child, Vec w) {
  for (;;) {
    if (auto s = As<ScaleOp>(child)) {
      for (double& v : w) v *= s->scale();
      child = s->child();
      continue;
    }
    if (auto rw = As<RowWeightOp>(child)) {
      for (std::size_t i = 0; i < w.size(); ++i) w[i] *= rw->weights()[i];
      child = rw->child();
      continue;
    }
    break;
  }
  if (AllOnes(w)) return child;
  if (auto sp = As<SparseOp>(child)) return MakeSparse(sp->csr().ScaleRows(w));
  if (auto d = As<DenseOp>(child)) {
    DenseMatrix m = d->dense();
    for (std::size_t i = 0; i < m.rows(); ++i) {
      double* row = m.RowPtr(i);
      for (std::size_t j = 0; j < m.cols(); ++j) row[j] *= w[i];
    }
    return MakeDense(std::move(m));
  }
  return MakeRowWeight(std::move(child), std::move(w));
}

LinOpPtr Canonicalizer::Transposed(const LinOpPtr& child) {
  if (auto t = As<TransposeOp>(child)) return t->child();
  if (auto s = As<ScaleOp>(child))
    return Scaled(Transposed(s->child()), s->scale());
  if (auto p = As<ProductOp>(child))
    return Producted(Transposed(p->b()), Transposed(p->a()), false);
  if (auto k = As<KroneckerOp>(child))
    return Kroned(Transposed(k->a()), Transposed(k->b()));
  if (auto v = As<VStackOp>(child)) {
    std::vector<LinOpPtr> ts;
    ts.reserve(v->children().size());
    for (const auto& c : v->children()) ts.push_back(Transposed(c));
    return HStacked(std::move(ts));
  }
  if (auto hs = As<HStackOp>(child)) {
    std::vector<LinOpPtr> ts;
    ts.reserve(hs->children().size());
    for (const auto& c : hs->children()) ts.push_back(Transposed(c));
    return VStacked(std::move(ts));
  }
  if (auto sm = As<SumOp>(child)) {
    std::vector<LinOpPtr> ts;
    ts.reserve(sm->children().size());
    for (const auto& c : sm->children()) ts.push_back(Transposed(c));
    return Summed(std::move(ts));
  }
  if (As<GramOp>(child)) return child;  // symmetric
  if (As<IdentityOp>(child)) return child;
  if (auto sp = As<SparseOp>(child)) return MakeSparse(sp->csr().Transpose());
  if (auto d = As<DenseOp>(child)) return MakeDense(d->dense().Transpose());
  return MakeTranspose(child);
}

LinOpPtr Canonicalizer::Producted(LinOpPtr a, LinOpPtr b, bool binary_hint) {
  // Identity factors vanish (Product(I, A) evaluates A then copies).
  if (As<IdentityOp>(a)) return b;
  if (As<IdentityOp>(b)) return a;
  // Hoist scalars so the structural factors can fuse below.
  {
    double c = 1.0;
    bool hoisted = false;
    while (auto sa = As<ScaleOp>(a)) {
      c *= sa->scale();
      a = sa->child();
      hoisted = true;
    }
    while (auto sb = As<ScaleOp>(b)) {
      c *= sb->scale();
      b = sb->child();
      hoisted = true;
    }
    if (hoisted)
      return Scaled(Producted(std::move(a), std::move(b), binary_hint), c);
  }
  // Kronecker mixed-product identity: (A (x) B)(C (x) D) = AC (x) BD
  // when the factor shapes conform.
  {
    auto ka = As<KroneckerOp>(a);
    auto kb = As<KroneckerOp>(b);
    if (ka && kb && ka->a()->cols() == kb->a()->rows() &&
        ka->b()->cols() == kb->b()->rows())
      return Kroned(Producted(ka->a(), kb->a(), false),
                    Producted(ka->b(), kb->b(), false));
  }
  // Two CSR leaves: multiply now when affordable, keep only when the
  // product is no denser than its factors (P P^T of a partition or
  // selection collapses to a diagonal here, short-circuiting its Gram).
  // Both guards are named policy in matrix/cost.h.
  {
    auto sa = As<SparseOp>(a);
    auto sb = As<SparseOp>(b);
    if (sa && sb) {
      const CsrMatrix& ma = sa->csr();
      const CsrMatrix& mb = sb->csr();
      if (SparseFuseWithinBudget(ma.MatmulUpdateBound(mb))) {
        CsrMatrix fused = ma.Matmul(mb);
        if (SparseFuseKeepsDensity(fused.nnz(), ma.nnz(), mb.nnz()))
          return MakeSparse(std::move(fused));
      }
    }
  }
  return MakeProduct(std::move(a), std::move(b), binary_hint);
}

LinOpPtr Canonicalizer::Kroned(LinOpPtr a, LinOpPtr b) {
  {
    double c = 1.0;
    bool hoisted = false;
    while (auto sa = As<ScaleOp>(a)) {
      c *= sa->scale();
      a = sa->child();
      hoisted = true;
    }
    while (auto sb = As<ScaleOp>(b)) {
      c *= sb->scale();
      b = sb->child();
      hoisted = true;
    }
    if (hoisted) return Scaled(Kroned(std::move(a), std::move(b)), c);
  }
  auto ia = As<IdentityOp>(a);
  auto ib = As<IdentityOp>(b);
  if (ia && ib) return MakeIdentityOp(a->rows() * b->rows());
  if (ia && a->rows() == 1) return b;  // I_1 (x) B = B
  if (ib && b->rows() == 1) return a;
  return MakeKronecker(std::move(a), std::move(b));
}

LinOpPtr Canonicalizer::VStacked(std::vector<LinOpPtr> children) {
  // Flatten nested stacks.
  std::vector<LinOpPtr> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    if (auto v = As<VStackOp>(c))
      flat.insert(flat.end(), v->children().begin(), v->children().end());
    else
      flat.push_back(std::move(c));
  }
  // Hoist per-child Scale/RowWeight wrappers into one row-weight vector
  // when doing so exposes an adjacent mergeable pair underneath (the
  // weighted measurement stacks of NNLS/LSMR inference).
  bool any_wrapped = false;
  std::vector<LinOpPtr> stripped;
  stripped.reserve(flat.size());
  for (const auto& c : flat) {
    if (auto s = As<ScaleOp>(c)) {
      stripped.push_back(s->child());
      any_wrapped = true;
    } else if (auto rw = As<RowWeightOp>(c)) {
      stripped.push_back(rw->child());
      any_wrapped = true;
    } else {
      stripped.push_back(c);
    }
  }
  bool mergeable_pair = false;
  for (std::size_t i = 0; i + 1 < stripped.size() && !mergeable_pair; ++i) {
    const MergeKind k = MergeKindOf(stripped[i]);
    mergeable_pair = k != MergeKind::kNone && k == MergeKindOf(stripped[i + 1]);
  }
  if (any_wrapped && mergeable_pair) {
    Vec w;
    for (const auto& c : flat) {
      if (auto s = As<ScaleOp>(c)) {
        w.insert(w.end(), c->rows(), s->scale());
      } else if (auto rw = As<RowWeightOp>(c)) {
        w.insert(w.end(), rw->weights().begin(), rw->weights().end());
      } else {
        w.insert(w.end(), c->rows(), 1.0);
      }
    }
    return RowWeighted(VStacked(std::move(stripped)), std::move(w));
  }
  // Merge adjacent mergeable runs: RangeSet/Total rows concatenate into
  // one RangeSetOp (one prefix-sum pass per apply — the MWEM
  // measurement-union fast path); CSR and dense leaves concatenate by
  // rows.
  std::vector<LinOpPtr> merged;
  merged.reserve(flat.size());
  for (std::size_t i = 0; i < flat.size();) {
    const MergeKind kind = MergeKindOf(flat[i]);
    std::size_t j = i + 1;
    if (kind != MergeKind::kNone)
      while (j < flat.size() && MergeKindOf(flat[j]) == kind) ++j;
    if (kind == MergeKind::kNone || j == i + 1) {
      merged.push_back(flat[i]);
      i = j > i + 1 ? j : i + 1;
      continue;
    }
    std::vector<LinOpPtr> run(flat.begin() + i, flat.begin() + j);
    switch (kind) {
      case MergeKind::kRange: {
        std::vector<Interval> ranges;
        for (const auto& c : run) AppendRanges(c, &ranges);
        merged.push_back(MakeRangeSetOp(std::move(ranges), run[0]->cols()));
        break;
      }
      case MergeKind::kSparse: {
        std::vector<CsrMatrix> parts;
        parts.reserve(run.size());
        for (const auto& c : run) parts.push_back(As<SparseOp>(c)->csr());
        merged.push_back(MakeSparse(CsrMatrix::VStackMany(parts)));
        break;
      }
      case MergeKind::kDense:
        merged.push_back(MakeDense(VConcatDense(run)));
        break;
      case MergeKind::kNone:
        break;
    }
    i = j;
  }
  return MakeVStack(std::move(merged));
}

LinOpPtr Canonicalizer::HStacked(std::vector<LinOpPtr> children) {
  std::vector<LinOpPtr> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    if (auto h = As<HStackOp>(c))
      flat.insert(flat.end(), h->children().begin(), h->children().end());
    else
      flat.push_back(std::move(c));
  }
  // Merge adjacent CSR leaves (column offsets of adjacent children are
  // contiguous, so HStackMany over the run is exact).
  std::vector<LinOpPtr> merged;
  merged.reserve(flat.size());
  for (std::size_t i = 0; i < flat.size();) {
    std::size_t j = i + 1;
    if (As<SparseOp>(flat[i]))
      while (j < flat.size() && As<SparseOp>(flat[j])) ++j;
    if (j == i + 1) {
      merged.push_back(flat[i]);
      i = j;
      continue;
    }
    std::vector<CsrMatrix> parts;
    parts.reserve(j - i);
    for (std::size_t k = i; k < j; ++k)
      parts.push_back(As<SparseOp>(flat[k])->csr());
    merged.push_back(MakeSparse(CsrMatrix::HStackMany(parts)));
    i = j;
  }
  return MakeHStack(std::move(merged));
}

LinOpPtr Canonicalizer::Summed(std::vector<LinOpPtr> children) {
  std::vector<LinOpPtr> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    if (auto s = As<SumOp>(c))
      flat.insert(flat.end(), s->children().begin(), s->children().end());
    else
      flat.push_back(std::move(c));
  }
  // Fold all CSR leaves into one (addition is order-insensitive up to
  // roundoff; the merged leaf takes the first leaf's position), then all
  // dense leaves likewise.
  const auto replace_matching = [](std::vector<LinOpPtr> in,
                                   const LinOpPtr& fused,
                                   const auto& matches) {
    std::vector<LinOpPtr> kept;
    kept.reserve(in.size());
    bool placed = false;
    for (auto& c : in) {
      if (matches(c)) {
        if (!placed) kept.push_back(fused);
        placed = true;
      } else {
        kept.push_back(std::move(c));
      }
    }
    return kept;
  };
  std::vector<const CsrMatrix*> sparse;
  std::vector<const DenseMatrix*> dense;
  for (const auto& c : flat) {
    if (auto sp = As<SparseOp>(c)) sparse.push_back(&sp->csr());
    if (auto d = As<DenseOp>(c)) dense.push_back(&d->dense());
  }
  if (sparse.size() >= 2) {
    std::vector<Triplet> t;
    for (const CsrMatrix* m : sparse)
      for (std::size_t r = 0; r < m->rows(); ++r)
        for (std::size_t p = m->indptr()[r]; p < m->indptr()[r + 1]; ++p)
          t.push_back({r, m->indices()[p], m->values()[p]});
    LinOpPtr fused = MakeSparse(CsrMatrix::FromTriplets(
        flat[0]->rows(), flat[0]->cols(), std::move(t)));
    flat = replace_matching(std::move(flat), fused, [](const LinOpPtr& c) {
      return As<SparseOp>(c) != nullptr;
    });
  }
  if (dense.size() >= 2) {
    DenseMatrix acc(flat[0]->rows(), flat[0]->cols());
    for (const DenseMatrix* m : dense)
      for (std::size_t i = 0; i < acc.data().size(); ++i)
        acc.data()[i] += m->data()[i];
    LinOpPtr fused = MakeDense(std::move(acc));
    flat = replace_matching(std::move(flat), fused, [](const LinOpPtr& c) {
      return As<DenseOp>(c) != nullptr;
    });
  }
  return MakeSum(std::move(flat));
}

// ---- dispatch: rewrite children bottom-up, then canonicalize the node.
// ---- Returns the original pointer when nothing fires, so per-instance
// ---- caches (sensitivity, structural hash) survive a no-op pass.

LinOpPtr Canonicalizer::Dispatch(const LinOpPtr& op) {
  if (auto s = As<ScaleOp>(op)) {
    LinOpPtr c = Run(s->child());
    LinOpPtr out = Scaled(c, s->scale());
    if (c == s->child())
      if (auto so = As<ScaleOp>(out))
        if (so->child() == c && BitwiseEq(so->scale(), s->scale())) return op;
    return out;
  }
  if (auto rw = As<RowWeightOp>(op)) {
    LinOpPtr c = Run(rw->child());
    LinOpPtr out = RowWeighted(c, rw->weights());
    if (c == rw->child())
      if (auto ro = As<RowWeightOp>(out))
        if (ro->child() == c && BitwiseEq(ro->weights(), rw->weights()))
          return op;
    return out;
  }
  if (auto t = As<TransposeOp>(op)) {
    LinOpPtr c = Run(t->child());
    LinOpPtr out = Transposed(c);
    if (c == t->child())
      if (auto to = As<TransposeOp>(out))
        if (to->child() == c) return op;
    return out;
  }
  if (auto p = As<ProductOp>(op)) {
    LinOpPtr a = Run(p->a());
    LinOpPtr b = Run(p->b());
    LinOpPtr out = Producted(a, b, p->is_nonneg_binary());
    if (a == p->a() && b == p->b())
      if (auto po = As<ProductOp>(out))
        if (po->a() == a && po->b() == b) return op;
    return out;
  }
  if (auto k = As<KroneckerOp>(op)) {
    LinOpPtr a = Run(k->a());
    LinOpPtr b = Run(k->b());
    LinOpPtr out = Kroned(a, b);
    if (a == k->a() && b == k->b())
      if (auto ko = As<KroneckerOp>(out))
        if (ko->a() == a && ko->b() == b) return op;
    return out;
  }
  if (auto v = As<VStackOp>(op)) {
    std::vector<LinOpPtr> cs = RunAll(v->children());
    LinOpPtr out = VStacked(cs);
    if (SameChildren(out, v, cs)) return op;
    return out;
  }
  if (auto h = As<HStackOp>(op)) {
    std::vector<LinOpPtr> cs = RunAll(h->children());
    LinOpPtr out = HStacked(cs);
    if (SameChildren(out, h, cs)) return op;
    return out;
  }
  if (auto s = As<SumOp>(op)) {
    std::vector<LinOpPtr> cs = RunAll(s->children());
    LinOpPtr out = Summed(cs);
    if (SameChildren(out, s, cs)) return op;
    return out;
  }
  if (auto g = As<GramOp>(op)) {
    LinOpPtr c = Run(g->child());
    // Re-derive the structured Gram of the rewritten child: after a
    // stack merge or product fusion the child may expose a closed form
    // the original lazy wrapper predates.
    LinOpPtr derived = c->Gram();
    if (auto gd = As<GramOp>(derived)) {
      if (gd->child() == c) return c == g->child() ? op : derived;
    }
    return Run(derived);
  }
  return op;  // leaves and unknown operators are already canonical
}

std::vector<LinOpPtr> Canonicalizer::RunAll(const std::vector<LinOpPtr>& cs) {
  std::vector<LinOpPtr> out;
  out.reserve(cs.size());
  for (const auto& c : cs) out.push_back(Run(c));
  return out;
}

LinOpPtr Canonicalize(const LinOpPtr& op) {
  if (!op) return op;
  Canonicalizer c;
  LinOpPtr out = c.Run(op);
  EK_CHECK_EQ(out->rows(), op->rows());
  EK_CHECK_EQ(out->cols(), op->cols());
  return out;
}

// ------------------------------------------------------------ rules

namespace {

/// nnz of a leaf whose sparse materialization is cheap and exactly
/// sized without doing it: the precondition for a materialize proposal.
std::optional<std::size_t> CheapNnz(const LinOpPtr& op) {
  if (auto sp = As<SparseOp>(op)) return sp->csr().nnz();
  if (As<IdentityOp>(op)) return op->rows();
  if (As<OnesOp>(op)) return op->rows() * op->cols();
  if (auto rs = As<RangeSetOp>(op)) {
    std::size_t nnz = 0;
    for (const Interval& iv : rs->ranges()) nnz += iv.hi - iv.lo + 1;
    return nnz;
  }
  if (auto rc = As<RectangleSetOp>(op)) {
    std::size_t nnz = 0;
    for (const Rectangle& r : rc->rects())
      nnz += (r.x_hi - r.x_lo + 1) * (r.y_hi - r.y_lo + 1);
    return nnz;
  }
  return std::nullopt;
}

/// Scale-collapse: re-canonicalize a Scale node (constant folding into
/// leaves, nested-scale collapse, row-weight absorption).
class ScaleCollapseRule final : public Rule {
 public:
  const char* name() const override { return "scale-collapse"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    auto s = As<ScaleOp>(node);
    if (!s) return {};
    Canonicalizer c;
    return {c.Scaled(s->child(), s->scale())};
  }
};

/// Transpose-push: distribute a transpose into the child (products
/// reverse, Kron factors transpose, stacks swap orientation).
class TransposePushRule final : public Rule {
 public:
  const char* name() const override { return "transpose-push"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    auto t = As<TransposeOp>(node);
    if (!t) return {};
    Canonicalizer c;
    return {c.Transposed(t->child())};
  }
};

/// Row-weight fusion: fold nested weights/scales and bake weights into
/// materialized leaves.
class RowWeightFuseRule final : public Rule {
 public:
  const char* name() const override { return "row-weight-fuse"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    auto rw = As<RowWeightOp>(node);
    if (!rw) return {};
    Canonicalizer c;
    return {c.RowWeighted(rw->child(), rw->weights())};
  }
};

/// Kron-fuse: identity elimination and the mixed-product identity on
/// Kronecker and Product nodes.
class KronFuseRule final : public Rule {
 public:
  const char* name() const override { return "kron-fuse"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    Canonicalizer c;
    if (auto k = As<KroneckerOp>(node)) return {c.Kroned(k->a(), k->b())};
    return {};
  }
};

/// Sparse-fuse: canonical Product reconstruction — identity elimination,
/// scale hoisting, mixed-product fusion and the guarded CSR multiply.
class SparseFuseRule final : public Rule {
 public:
  const char* name() const override { return "sparse-fuse"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    auto p = As<ProductOp>(node);
    if (!p) return {};
    Canonicalizer c;
    return {c.Producted(p->a(), p->b(), p->is_nonneg_binary())};
  }
};

/// Stack-merge: flatten and run-merge the n-ary combinators.
class StackMergeRule final : public Rule {
 public:
  const char* name() const override { return "stack-merge"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    Canonicalizer c;
    if (auto v = As<VStackOp>(node)) return {c.VStacked(v->children())};
    if (auto h = As<HStackOp>(node)) return {c.HStacked(h->children())};
    if (auto s = As<SumOp>(node)) return {c.Summed(s->children())};
    return {};
  }
};

/// Product-materialize: the composed-vs-materialize decision the fixed
/// order cannot make.  When both factors have cheap exact sparse forms
/// (RangeSet/Rectangle/Identity/Ones included — kinds the in-place
/// sparse-fuse never touches), propose the multiplied-out CSR leaf and
/// let the cost model decide whether O(nnz) beats the composed apply.
class ProductMaterializeRule final : public Rule {
 public:
  const char* name() const override { return "product-materialize"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    auto p = As<ProductOp>(node);
    if (!p) return {};
    const auto na = CheapNnz(p->a());
    const auto nb = CheapNnz(p->b());
    if (!na || !nb || *na > kSearchMaterializeMaxUpdates ||
        *nb > kSearchMaterializeMaxUpdates)
      return {};
    const CsrMatrix ma = p->a()->MaterializeSparse();
    const CsrMatrix mb = p->b()->MaterializeSparse();
    if (ma.MatmulUpdateBound(mb) > kSearchMaterializeMaxUpdates) return {};
    return {MakeSparse(ma.Matmul(mb))};
  }
};

/// Kron-materialize: flatten a small Kronecker product to its CSR form
/// (nnz is exactly nnz(A) * nnz(B)) when within budget — pays off when
/// the factors are tiny and the vec-trick's two passes dominate.
class KronMaterializeRule final : public Rule {
 public:
  const char* name() const override { return "kron-materialize"; }
  std::vector<LinOpPtr> Apply(const LinOpPtr& node) const override {
    auto k = As<KroneckerOp>(node);
    if (!k) return {};
    const auto na = CheapNnz(k->a());
    const auto nb = CheapNnz(k->b());
    if (!na || !nb || *na == 0 || *nb == 0) return {};
    if (*na > kSearchMaterializeMaxUpdates / *nb) return {};
    // Fused nnz is exactly nnz(A) * nnz(B), so the candidate's score is
    // known before building it.  A flattening that cannot beat the node
    // it replaces would never be chosen by the beam — skip the O(nnz)
    // construction instead of building a candidate just to discard it.
    const double fused_nnz = double(*na) * double(*nb);
    if (SparseLeafApplySeconds(node->rows(), node->cols(), fused_nnz) >=
        TreeScore(*node))
      return {};
    return {MakeSparse(node->MaterializeSparse())};
  }
};

}  // namespace

const std::vector<const Rule*>& AllRules() {
  static const std::vector<const Rule*>* all = [] {
    auto* v = new std::vector<const Rule*>;
    static const ScaleCollapseRule scale_collapse;
    static const TransposePushRule transpose_push;
    static const RowWeightFuseRule row_weight_fuse;
    static const KronFuseRule kron_fuse;
    static const SparseFuseRule sparse_fuse;
    static const StackMergeRule stack_merge;
    static const ProductMaterializeRule product_materialize;
    static const KronMaterializeRule kron_materialize;
    v->assign({&scale_collapse, &transpose_push, &row_weight_fuse, &kron_fuse,
               &sparse_fuse, &stack_merge, &product_materialize,
               &kron_materialize});
    return v;
  }();
  return *all;
}

}  // namespace rules
}  // namespace ektelo
