#include "matrix/combinators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

// -------------------------------------------------------------- Transpose

TransposeOp::TransposeOp(LinOpPtr child)
    : LinOp(child->cols(), child->rows()), child_(std::move(child)) {
  set_nonneg_binary(child_->is_nonneg_binary());
}

void TransposeOp::ApplyRaw(const double* x, double* y) const {
  child_->ApplyTRaw(x, y);
}
void TransposeOp::ApplyTRaw(const double* x, double* y) const {
  child_->ApplyRaw(x, y);
}

void TransposeOp::ApplyBlockRaw(const double* x, double* y,
                                std::size_t k) const {
  child_->ApplyTBlockRaw(x, y, k);
}
void TransposeOp::ApplyTBlockRaw(const double* x, double* y,
                                 std::size_t k) const {
  child_->ApplyBlockRaw(x, y, k);
}

LinOpPtr TransposeOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeTranspose(child_->Abs());
}
LinOpPtr TransposeOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeTranspose(child_->Sqr());
}

CsrMatrix TransposeOp::MaterializeSparse() const {
  return child_->MaterializeSparse().Transpose();
}

std::string TransposeOp::DebugName() const {
  return "Transpose(" + child_->DebugName() + ")";
}

// ------------------------------------------------------------------ Union

namespace {
std::size_t SumRows(const std::vector<LinOpPtr>& cs) {
  std::size_t r = 0;
  for (const auto& c : cs) r += c->rows();
  return r;
}
std::size_t SumCols(const std::vector<LinOpPtr>& cs) {
  std::size_t r = 0;
  for (const auto& c : cs) r += c->cols();
  return r;
}
}  // namespace

VStackOp::VStackOp(std::vector<LinOpPtr> children)
    : LinOp(SumRows(children), children.empty() ? 0 : children[0]->cols()),
      children_(std::move(children)) {
  EK_CHECK(!children_.empty());
  bool binary = true;
  for (const auto& c : children_) {
    EK_CHECK_EQ(c->cols(), cols());
    binary = binary && c->is_nonneg_binary();
  }
  set_nonneg_binary(binary);
}

void VStackOp::ApplyRaw(const double* x, double* y) const {
  std::size_t off = 0;
  for (const auto& c : children_) {
    c->ApplyRaw(x, y + off);
    off += c->rows();
  }
}

void VStackOp::ApplyTRaw(const double* x, double* y) const {
  std::fill(y, y + cols(), 0.0);
  Vec tmp(cols());
  std::size_t off = 0;
  for (const auto& c : children_) {
    c->ApplyTRaw(x + off, tmp.data());
    for (std::size_t j = 0; j < cols(); ++j) y[j] += tmp[j];
    off += c->rows();
  }
}

void VStackOp::ApplyBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  // Each child evaluates its own contiguous (child_rows x k) block, then
  // its rows are interleaved into the stacked column-major output.
  Block tmp;
  std::size_t off = 0;
  for (const auto& ch : children_) {
    const std::size_t r = ch->rows();
    tmp = Block(r, k);
    ch->ApplyBlockRaw(x, tmp.data(), k);
    for (std::size_t c = 0; c < k; ++c)
      std::copy(tmp.ColPtr(c), tmp.ColPtr(c) + r, y + c * rows() + off);
    off += r;
  }
}

void VStackOp::ApplyTBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  std::fill(y, y + cols() * k, 0.0);
  Block slice, tmp(cols(), k);
  std::size_t off = 0;
  for (const auto& ch : children_) {
    const std::size_t r = ch->rows();
    slice = Block(r, k);
    for (std::size_t c = 0; c < k; ++c)
      std::copy(x + c * rows() + off, x + c * rows() + off + r,
                slice.ColPtr(c));
    ch->ApplyTBlockRaw(slice.data(), tmp.data(), k);
    for (std::size_t i = 0; i < cols() * k; ++i) y[i] += tmp.data()[i];
    off += r;
  }
}

LinOpPtr VStackOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  std::vector<LinOpPtr> abs_children;
  abs_children.reserve(children_.size());
  for (const auto& c : children_) abs_children.push_back(c->Abs());
  return MakeVStack(std::move(abs_children));
}

LinOpPtr VStackOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  std::vector<LinOpPtr> sqr_children;
  sqr_children.reserve(children_.size());
  for (const auto& c : children_) sqr_children.push_back(c->Sqr());
  return MakeVStack(std::move(sqr_children));
}

LinOpPtr VStackOp::Gram() const {
  // [A; B]^T [A; B] = A^T A + B^T B: the stack's Gram is the sum of the
  // children's (structured) Grams.
  std::vector<LinOpPtr> grams;
  grams.reserve(children_.size());
  for (const auto& c : children_) grams.push_back(c->Gram());
  return MakeSum(std::move(grams));
}

CsrMatrix VStackOp::MaterializeSparse() const {
  // Single-pass multi-way concatenation: folding VStack pairwise re-copies
  // the accumulated matrix per child (quadratic in the child count).
  std::vector<CsrMatrix> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) parts.push_back(c->MaterializeSparse());
  return CsrMatrix::VStackMany(parts);
}

std::string VStackOp::DebugName() const {
  std::string s = "Union(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ",";
    s += children_[i]->DebugName();
  }
  return s + ")";
}

// ----------------------------------------------------------------- HStack

HStackOp::HStackOp(std::vector<LinOpPtr> children)
    : LinOp(children.empty() ? 0 : children[0]->rows(), SumCols(children)),
      children_(std::move(children)) {
  EK_CHECK(!children_.empty());
  bool binary = true;
  std::size_t off = 0;
  for (const auto& c : children_) {
    EK_CHECK_EQ(c->rows(), rows());
    binary = binary && c->is_nonneg_binary();
    col_offsets_.push_back(off);
    off += c->cols();
  }
  set_nonneg_binary(binary);
}

void HStackOp::ApplyRaw(const double* x, double* y) const {
  std::fill(y, y + rows(), 0.0);
  Vec tmp(rows());
  for (std::size_t i = 0; i < children_.size(); ++i) {
    children_[i]->ApplyRaw(x + col_offsets_[i], tmp.data());
    for (std::size_t r = 0; r < rows(); ++r) y[r] += tmp[r];
  }
}

void HStackOp::ApplyTRaw(const double* x, double* y) const {
  for (std::size_t i = 0; i < children_.size(); ++i)
    children_[i]->ApplyTRaw(x, y + col_offsets_[i]);
}

void HStackOp::ApplyBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  std::fill(y, y + rows() * k, 0.0);
  Block slice, tmp(rows(), k);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const std::size_t nc = children_[i]->cols();
    slice = Block(nc, k);
    for (std::size_t c = 0; c < k; ++c)
      std::copy(x + c * cols() + col_offsets_[i],
                x + c * cols() + col_offsets_[i] + nc, slice.ColPtr(c));
    children_[i]->ApplyBlockRaw(slice.data(), tmp.data(), k);
    for (std::size_t j = 0; j < rows() * k; ++j) y[j] += tmp.data()[j];
  }
}

void HStackOp::ApplyTBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  Block tmp;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const std::size_t nc = children_[i]->cols();
    tmp = Block(nc, k);
    children_[i]->ApplyTBlockRaw(x, tmp.data(), k);
    for (std::size_t c = 0; c < k; ++c)
      std::copy(tmp.ColPtr(c), tmp.ColPtr(c) + nc,
                y + c * cols() + col_offsets_[i]);
  }
}

LinOpPtr HStackOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  std::vector<LinOpPtr> abs_children;
  abs_children.reserve(children_.size());
  for (const auto& c : children_) abs_children.push_back(c->Abs());
  return MakeHStack(std::move(abs_children));
}

LinOpPtr HStackOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  std::vector<LinOpPtr> sqr_children;
  sqr_children.reserve(children_.size());
  for (const auto& c : children_) sqr_children.push_back(c->Sqr());
  return MakeHStack(std::move(sqr_children));
}

double HStackOp::ComputeSensitivityL1() const {
  // Columns of distinct children never overlap, so the max column norm is
  // the max over children.
  double s = 0.0;
  for (const auto& c : children_) s = std::max(s, c->SensitivityL1());
  return s;
}

double HStackOp::ComputeSensitivityL2() const {
  double s = 0.0;
  for (const auto& c : children_) s = std::max(s, c->SensitivityL2());
  return s;
}

CsrMatrix HStackOp::MaterializeSparse() const {
  // Single-pass multi-way concatenation with precomputed nnz and row
  // pointers (the triplet route re-sorted every entry).
  std::vector<CsrMatrix> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) parts.push_back(c->MaterializeSparse());
  return CsrMatrix::HStackMany(parts);
}

std::string HStackOp::DebugName() const {
  std::string s = "HStack(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ",";
    s += children_[i]->DebugName();
  }
  return s + ")";
}

// -------------------------------------------------------------------- Sum

SumOp::SumOp(std::vector<LinOpPtr> children)
    : LinOp(children.empty() ? 0 : children[0]->rows(),
            children.empty() ? 0 : children[0]->cols()),
      children_(std::move(children)) {
  EK_CHECK(!children_.empty());
  for (const auto& c : children_) {
    EK_CHECK_EQ(c->rows(), rows());
    EK_CHECK_EQ(c->cols(), cols());
  }
}

void SumOp::ApplyRaw(const double* x, double* y) const {
  children_[0]->ApplyRaw(x, y);
  Vec tmp(rows());
  for (std::size_t i = 1; i < children_.size(); ++i) {
    children_[i]->ApplyRaw(x, tmp.data());
    for (std::size_t r = 0; r < rows(); ++r) y[r] += tmp[r];
  }
}

void SumOp::ApplyTRaw(const double* x, double* y) const {
  children_[0]->ApplyTRaw(x, y);
  Vec tmp(cols());
  for (std::size_t i = 1; i < children_.size(); ++i) {
    children_[i]->ApplyTRaw(x, tmp.data());
    for (std::size_t j = 0; j < cols(); ++j) y[j] += tmp[j];
  }
}

void SumOp::ApplyBlockRaw(const double* x, double* y, std::size_t k) const {
  children_[0]->ApplyBlockRaw(x, y, k);
  Block tmp(rows(), k);
  for (std::size_t i = 1; i < children_.size(); ++i) {
    children_[i]->ApplyBlockRaw(x, tmp.data(), k);
    for (std::size_t j = 0; j < rows() * k; ++j) y[j] += tmp.data()[j];
  }
}

void SumOp::ApplyTBlockRaw(const double* x, double* y, std::size_t k) const {
  children_[0]->ApplyTBlockRaw(x, y, k);
  Block tmp(cols(), k);
  for (std::size_t i = 1; i < children_.size(); ++i) {
    children_[i]->ApplyTBlockRaw(x, tmp.data(), k);
    for (std::size_t j = 0; j < cols() * k; ++j) y[j] += tmp.data()[j];
  }
}

CsrMatrix SumOp::MaterializeSparse() const {
  std::vector<Triplet> t;
  for (const auto& ch : children_) {
    CsrMatrix m = ch->MaterializeSparse();
    for (std::size_t r = 0; r < m.rows(); ++r)
      for (std::size_t p = m.indptr()[r]; p < m.indptr()[r + 1]; ++p)
        t.push_back({r, m.indices()[p], m.values()[p]});
  }
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

std::string SumOp::DebugName() const {
  std::string s = "Sum(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ",";
    s += children_[i]->DebugName();
  }
  return s + ")";
}

// ---------------------------------------------------------------- Product

ProductOp::ProductOp(LinOpPtr a, LinOpPtr b, bool binary_hint)
    : LinOp(a->rows(), b->cols()), a_(std::move(a)), b_(std::move(b)) {
  EK_CHECK_EQ(a_->cols(), b_->rows());
  set_nonneg_binary(binary_hint);
}

void ProductOp::ApplyRaw(const double* x, double* y) const {
  Vec tmp(b_->rows());
  b_->ApplyRaw(x, tmp.data());
  a_->ApplyRaw(tmp.data(), y);
}

void ProductOp::ApplyTRaw(const double* x, double* y) const {
  Vec tmp(a_->cols());
  a_->ApplyTRaw(x, tmp.data());
  b_->ApplyTRaw(tmp.data(), y);
}

void ProductOp::ApplyBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  Block tmp(b_->rows(), k);
  b_->ApplyBlockRaw(x, tmp.data(), k);
  a_->ApplyBlockRaw(tmp.data(), y, k);
}

void ProductOp::ApplyTBlockRaw(const double* x, double* y,
                               std::size_t k) const {
  Block tmp(a_->cols(), k);
  a_->ApplyTBlockRaw(x, tmp.data(), k);
  b_->ApplyTBlockRaw(tmp.data(), y, k);
}

LinOpPtr ProductOp::Gram() const {
  // (AB)^T (AB) = B^T Gram(A) B, preserving any structure in Gram(A).
  return MakeProduct(MakeTranspose(b_), MakeProduct(a_->Gram(), b_));
}

CsrMatrix ProductOp::MaterializeSparse() const {
  return a_->MaterializeSparse().Matmul(b_->MaterializeSparse());
}

std::string ProductOp::DebugName() const {
  return "Product(" + a_->DebugName() + "," + b_->DebugName() + ")";
}

// -------------------------------------------------------------- Kronecker

KroneckerOp::KroneckerOp(LinOpPtr a, LinOpPtr b)
    : LinOp(a->rows() * b->rows(), a->cols() * b->cols()),
      a_(std::move(a)),
      b_(std::move(b)) {
  set_nonneg_binary(a_->is_nonneg_binary() && b_->is_nonneg_binary());
}

void KroneckerOp::ApplyRaw(const double* x, double* y) const {
  ApplyBlockRaw(x, y, 1);
}

void KroneckerOp::ApplyTRaw(const double* x, double* y) const {
  ApplyTBlockRaw(x, y, 1);
}

void KroneckerOp::ApplyBlockRaw(const double* x, double* y,
                                std::size_t k) const {
  const std::size_t na = a_->cols(), nb = b_->cols();
  const std::size_t ma = a_->rows(), mb = b_->rows();
  const std::size_t n = na * nb, m = ma * mb;
  // Stage 1 (vec-trick, batched): every (RHS c, block ja) slice of x is a
  // contiguous nb-vector; B is applied to all na*k of them in one blocked
  // call.  Column q = c*na + ja of xb is x[c*n + ja*nb ...].
  Block xb(nb, na * k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t ja = 0; ja < na; ++ja)
      std::copy(x + c * n + ja * nb, x + c * n + (ja + 1) * nb,
                xb.ColPtr(c * na + ja));
  Block zb = b_->ApplyBlock(xb);  // mb x (na*k)
  // Stage 2: gather Z^T slices and apply A to all mb*k of them at once.
  // Column q2 = c*mb + ib of xa has entries xa(ja) = Z_c[ja, ib].
  Block xa(na, mb * k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t ib = 0; ib < mb; ++ib) {
      double* dst = xa.ColPtr(c * mb + ib);
      for (std::size_t ja = 0; ja < na; ++ja)
        dst[ja] = zb.At(ib, c * na + ja);
    }
  Block ya = a_->ApplyBlock(xa);  // ma x (mb*k)
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t ib = 0; ib < mb; ++ib) {
      const double* src = ya.ColPtr(c * mb + ib);
      for (std::size_t ia = 0; ia < ma; ++ia)
        y[c * m + ia * mb + ib] = src[ia];
    }
}

void KroneckerOp::ApplyTBlockRaw(const double* x, double* y,
                                 std::size_t k) const {
  const std::size_t na = a_->cols(), nb = b_->cols();
  const std::size_t ma = a_->rows(), mb = b_->rows();
  const std::size_t n = na * nb, m = ma * mb;
  Block xb(mb, ma * k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t ia = 0; ia < ma; ++ia)
      std::copy(x + c * m + ia * mb, x + c * m + (ia + 1) * mb,
                xb.ColPtr(c * ma + ia));
  Block zb = b_->ApplyTBlock(xb);  // nb x (ma*k)
  Block xa(ma, nb * k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t jb = 0; jb < nb; ++jb) {
      double* dst = xa.ColPtr(c * nb + jb);
      for (std::size_t ia = 0; ia < ma; ++ia)
        dst[ia] = zb.At(jb, c * ma + ia);
    }
  Block ya = a_->ApplyTBlock(xa);  // na x (nb*k)
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t jb = 0; jb < nb; ++jb) {
      const double* src = ya.ColPtr(c * nb + jb);
      for (std::size_t ja = 0; ja < na; ++ja)
        y[c * n + ja * nb + jb] = src[ja];
    }
}

LinOpPtr KroneckerOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  // |A ⊗ B| = |A| ⊗ |B|.
  return MakeKronecker(a_->Abs(), b_->Abs());
}

LinOpPtr KroneckerOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeKronecker(a_->Sqr(), b_->Sqr());
}

LinOpPtr KroneckerOp::Gram() const {
  // (A ⊗ B)^T (A ⊗ B) = (A^T A) ⊗ (B^T B).
  return MakeKronecker(a_->Gram(), b_->Gram());
}

CsrMatrix KroneckerOp::MaterializeSparse() const {
  return a_->MaterializeSparse().Kronecker(b_->MaterializeSparse());
}

double KroneckerOp::ComputeSensitivityL1() const {
  // Column norms of a Kronecker product factorize.
  return a_->SensitivityL1() * b_->SensitivityL1();
}

double KroneckerOp::ComputeSensitivityL2() const {
  return a_->SensitivityL2() * b_->SensitivityL2();
}

std::string KroneckerOp::DebugName() const {
  return "Kron(" + a_->DebugName() + "," + b_->DebugName() + ")";
}

// -------------------------------------------------------------- RowWeight

RowWeightOp::RowWeightOp(LinOpPtr child, Vec weights)
    : LinOp(child->rows(), child->cols()),
      child_(std::move(child)),
      w_(std::move(weights)) {
  EK_CHECK_EQ(w_.size(), rows());
}

void RowWeightOp::ApplyRaw(const double* x, double* y) const {
  child_->ApplyRaw(x, y);
  for (std::size_t i = 0; i < rows(); ++i) y[i] *= w_[i];
}

void RowWeightOp::ApplyTRaw(const double* x, double* y) const {
  Vec scaled(rows());
  for (std::size_t i = 0; i < rows(); ++i) scaled[i] = x[i] * w_[i];
  child_->ApplyTRaw(scaled.data(), y);
}

void RowWeightOp::ApplyBlockRaw(const double* x, double* y,
                                std::size_t k) const {
  child_->ApplyBlockRaw(x, y, k);
  for (std::size_t c = 0; c < k; ++c) {
    double* yc = y + c * rows();
    for (std::size_t i = 0; i < rows(); ++i) yc[i] *= w_[i];
  }
}

void RowWeightOp::ApplyTBlockRaw(const double* x, double* y,
                                 std::size_t k) const {
  Block scaled(rows(), k);
  for (std::size_t c = 0; c < k; ++c) {
    const double* xc = x + c * rows();
    double* sc = scaled.ColPtr(c);
    for (std::size_t i = 0; i < rows(); ++i) sc[i] = xc[i] * w_[i];
  }
  child_->ApplyTBlockRaw(scaled.data(), y, k);
}

LinOpPtr RowWeightOp::Abs() const {
  Vec aw(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) aw[i] = std::abs(w_[i]);
  return MakeRowWeight(child_->Abs(), std::move(aw));
}

LinOpPtr RowWeightOp::Sqr() const {
  Vec sw(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) sw[i] = w_[i] * w_[i];
  return MakeRowWeight(child_->Sqr(), std::move(sw));
}

CsrMatrix RowWeightOp::MaterializeSparse() const {
  return child_->MaterializeSparse().ScaleRows(w_);
}

std::string RowWeightOp::DebugName() const {
  return "RowWeight(" + child_->DebugName() + ")";
}

// ------------------------------------------------------------------ Scale

ScaleOp::ScaleOp(LinOpPtr child, double c)
    : LinOp(child->rows(), child->cols()), child_(std::move(child)), c_(c) {
  set_nonneg_binary(c_ == 1.0 && child_->is_nonneg_binary());
}

void ScaleOp::ApplyRaw(const double* x, double* y) const {
  child_->ApplyRaw(x, y);
  for (std::size_t i = 0; i < rows(); ++i) y[i] *= c_;
}

void ScaleOp::ApplyTRaw(const double* x, double* y) const {
  child_->ApplyTRaw(x, y);
  for (std::size_t j = 0; j < cols(); ++j) y[j] *= c_;
}

void ScaleOp::ApplyBlockRaw(const double* x, double* y, std::size_t k) const {
  child_->ApplyBlockRaw(x, y, k);
  for (std::size_t i = 0; i < rows() * k; ++i) y[i] *= c_;
}

void ScaleOp::ApplyTBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  child_->ApplyTBlockRaw(x, y, k);
  for (std::size_t i = 0; i < cols() * k; ++i) y[i] *= c_;
}

LinOpPtr ScaleOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeScaled(child_->Abs(), std::abs(c_));
}

LinOpPtr ScaleOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeScaled(child_->Sqr(), c_ * c_);
}

LinOpPtr ScaleOp::Gram() const { return MakeScaled(child_->Gram(), c_ * c_); }

CsrMatrix ScaleOp::MaterializeSparse() const {
  CsrMatrix m = child_->MaterializeSparse();
  for (double& v : m.values()) v *= c_;
  return m;
}

double ScaleOp::ComputeSensitivityL1() const {
  return std::abs(c_) * child_->SensitivityL1();
}

double ScaleOp::ComputeSensitivityL2() const {
  return std::abs(c_) * child_->SensitivityL2();
}

std::string ScaleOp::DebugName() const {
  return "Scale(" + std::to_string(c_) + "," + child_->DebugName() + ")";
}

// ---------------------------------------------------- structural identity

namespace {
// Structural-hash tags (distinct across all LinOp subclasses; the leaf
// tags live in linop.cc / implicit_ops.cc / range_ops.cc).
constexpr uint64_t kTagTranspose = 4;
constexpr uint64_t kTagVStack = 5;
constexpr uint64_t kTagHStack = 6;
constexpr uint64_t kTagSum = 7;
constexpr uint64_t kTagProduct = 8;
constexpr uint64_t kTagKron = 9;
constexpr uint64_t kTagRowWeight = 10;
constexpr uint64_t kTagScale = 11;

bool ChildrenEq(const std::vector<LinOpPtr>& a,
                const std::vector<LinOpPtr>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a[i]->StructuralEq(*b[i])) return false;
  return true;
}

uint64_t MixChildren(StructHash h, const std::vector<LinOpPtr>& cs) {
  h.Mix(cs.size());
  for (const auto& c : cs) h.Mix(c->StructuralHash());
  return h.Finish();
}
}  // namespace

uint64_t TransposeOp::ComputeStructuralHash() const {
  return HashBase(kTagTranspose).Mix(child_->StructuralHash()).Finish();
}
bool TransposeOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const TransposeOp*>(&other);
  return o && EqBase(other) && child_->StructuralEq(*o->child_);
}

uint64_t VStackOp::ComputeStructuralHash() const {
  return MixChildren(HashBase(kTagVStack), children_);
}
bool VStackOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const VStackOp*>(&other);
  return o && EqBase(other) && ChildrenEq(children_, o->children_);
}

uint64_t HStackOp::ComputeStructuralHash() const {
  return MixChildren(HashBase(kTagHStack), children_);
}
bool HStackOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const HStackOp*>(&other);
  return o && EqBase(other) && ChildrenEq(children_, o->children_);
}

uint64_t SumOp::ComputeStructuralHash() const {
  return MixChildren(HashBase(kTagSum), children_);
}
bool SumOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const SumOp*>(&other);
  return o && EqBase(other) && ChildrenEq(children_, o->children_);
}

uint64_t ProductOp::ComputeStructuralHash() const {
  return HashBase(kTagProduct)
      .Mix(a_->StructuralHash())
      .Mix(b_->StructuralHash())
      .Finish();
}
bool ProductOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const ProductOp*>(&other);
  return o && EqBase(other) && a_->StructuralEq(*o->a_) &&
         b_->StructuralEq(*o->b_);
}

uint64_t KroneckerOp::ComputeStructuralHash() const {
  return HashBase(kTagKron)
      .Mix(a_->StructuralHash())
      .Mix(b_->StructuralHash())
      .Finish();
}
bool KroneckerOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const KroneckerOp*>(&other);
  return o && EqBase(other) && a_->StructuralEq(*o->a_) &&
         b_->StructuralEq(*o->b_);
}

uint64_t RowWeightOp::ComputeStructuralHash() const {
  return HashBase(kTagRowWeight)
      .MixDoubles(w_)
      .Mix(child_->StructuralHash())
      .Finish();
}
bool RowWeightOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const RowWeightOp*>(&other);
  return o && EqBase(other) && BitwiseEq(w_, o->w_) &&
         child_->StructuralEq(*o->child_);
}

uint64_t ScaleOp::ComputeStructuralHash() const {
  return HashBase(kTagScale)
      .MixDouble(c_)
      .Mix(child_->StructuralHash())
      .Finish();
}
bool ScaleOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const ScaleOp*>(&other);
  return o && EqBase(other) && BitwiseEq(c_, o->c_) &&
         child_->StructuralEq(*o->child_);
}

// -------------------------------------------------------------- factories

LinOpPtr MakeTranspose(LinOpPtr a) {
  return std::make_shared<TransposeOp>(std::move(a));
}

LinOpPtr MakeVStack(std::vector<LinOpPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<VStackOp>(std::move(children));
}

LinOpPtr MakeHStack(std::vector<LinOpPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<HStackOp>(std::move(children));
}

LinOpPtr MakeSum(std::vector<LinOpPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<SumOp>(std::move(children));
}

LinOpPtr MakeProduct(LinOpPtr a, LinOpPtr b, bool binary_hint) {
  return std::make_shared<ProductOp>(std::move(a), std::move(b), binary_hint);
}

LinOpPtr MakeKronecker(LinOpPtr a, LinOpPtr b) {
  return std::make_shared<KroneckerOp>(std::move(a), std::move(b));
}

LinOpPtr MakeKronecker(std::vector<LinOpPtr> factors) {
  EK_CHECK(!factors.empty());
  LinOpPtr acc = factors.back();
  for (std::size_t i = factors.size() - 1; i-- > 0;)
    acc = MakeKronecker(factors[i], acc);
  return acc;
}

LinOpPtr MakeRowWeight(LinOpPtr child, Vec weights) {
  return std::make_shared<RowWeightOp>(std::move(child), std::move(weights));
}

LinOpPtr MakeScaled(LinOpPtr child, double c) {
  if (c == 1.0) return child;
  return std::make_shared<ScaleOp>(std::move(child), c);
}

}  // namespace ektelo
