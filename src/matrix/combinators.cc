#include "matrix/combinators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

// -------------------------------------------------------------- Transpose

TransposeOp::TransposeOp(LinOpPtr child)
    : LinOp(child->cols(), child->rows()), child_(std::move(child)) {
  set_nonneg_binary(child_->is_nonneg_binary());
}

void TransposeOp::ApplyRaw(const double* x, double* y) const {
  child_->ApplyTRaw(x, y);
}
void TransposeOp::ApplyTRaw(const double* x, double* y) const {
  child_->ApplyRaw(x, y);
}

LinOpPtr TransposeOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeTranspose(child_->Abs());
}
LinOpPtr TransposeOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeTranspose(child_->Sqr());
}

CsrMatrix TransposeOp::MaterializeSparse() const {
  return child_->MaterializeSparse().Transpose();
}

std::string TransposeOp::DebugName() const {
  return "Transpose(" + child_->DebugName() + ")";
}

// ------------------------------------------------------------------ Union

namespace {
std::size_t SumRows(const std::vector<LinOpPtr>& cs) {
  std::size_t r = 0;
  for (const auto& c : cs) r += c->rows();
  return r;
}
}  // namespace

VStackOp::VStackOp(std::vector<LinOpPtr> children)
    : LinOp(SumRows(children), children.empty() ? 0 : children[0]->cols()),
      children_(std::move(children)) {
  EK_CHECK(!children_.empty());
  bool binary = true;
  for (const auto& c : children_) {
    EK_CHECK_EQ(c->cols(), cols());
    binary = binary && c->is_nonneg_binary();
  }
  set_nonneg_binary(binary);
}

void VStackOp::ApplyRaw(const double* x, double* y) const {
  std::size_t off = 0;
  for (const auto& c : children_) {
    c->ApplyRaw(x, y + off);
    off += c->rows();
  }
}

void VStackOp::ApplyTRaw(const double* x, double* y) const {
  std::fill(y, y + cols(), 0.0);
  Vec tmp(cols());
  std::size_t off = 0;
  for (const auto& c : children_) {
    c->ApplyTRaw(x + off, tmp.data());
    for (std::size_t j = 0; j < cols(); ++j) y[j] += tmp[j];
    off += c->rows();
  }
}

LinOpPtr VStackOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  std::vector<LinOpPtr> abs_children;
  abs_children.reserve(children_.size());
  for (const auto& c : children_) abs_children.push_back(c->Abs());
  return MakeVStack(std::move(abs_children));
}

LinOpPtr VStackOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  std::vector<LinOpPtr> sqr_children;
  sqr_children.reserve(children_.size());
  for (const auto& c : children_) sqr_children.push_back(c->Sqr());
  return MakeVStack(std::move(sqr_children));
}

CsrMatrix VStackOp::MaterializeSparse() const {
  CsrMatrix m = children_[0]->MaterializeSparse();
  for (std::size_t i = 1; i < children_.size(); ++i)
    m = m.VStack(children_[i]->MaterializeSparse());
  return m;
}

std::string VStackOp::DebugName() const {
  std::string s = "Union(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ",";
    s += children_[i]->DebugName();
  }
  return s + ")";
}

// ---------------------------------------------------------------- Product

ProductOp::ProductOp(LinOpPtr a, LinOpPtr b, bool binary_hint)
    : LinOp(a->rows(), b->cols()), a_(std::move(a)), b_(std::move(b)) {
  EK_CHECK_EQ(a_->cols(), b_->rows());
  set_nonneg_binary(binary_hint);
}

void ProductOp::ApplyRaw(const double* x, double* y) const {
  Vec tmp(b_->rows());
  b_->ApplyRaw(x, tmp.data());
  a_->ApplyRaw(tmp.data(), y);
}

void ProductOp::ApplyTRaw(const double* x, double* y) const {
  Vec tmp(a_->cols());
  a_->ApplyTRaw(x, tmp.data());
  b_->ApplyTRaw(tmp.data(), y);
}

CsrMatrix ProductOp::MaterializeSparse() const {
  return a_->MaterializeSparse().Matmul(b_->MaterializeSparse());
}

std::string ProductOp::DebugName() const {
  return "Product(" + a_->DebugName() + "," + b_->DebugName() + ")";
}

// -------------------------------------------------------------- Kronecker

KroneckerOp::KroneckerOp(LinOpPtr a, LinOpPtr b)
    : LinOp(a->rows() * b->rows(), a->cols() * b->cols()),
      a_(std::move(a)),
      b_(std::move(b)) {
  set_nonneg_binary(a_->is_nonneg_binary() && b_->is_nonneg_binary());
}

void KroneckerOp::ApplyRaw(const double* x, double* y) const {
  const std::size_t na = a_->cols(), nb = b_->cols();
  const std::size_t ma = a_->rows(), mb = b_->rows();
  // Stage 1: Z[ja, :] = B * x[ja*nb .. ja*nb+nb) for each ja: Z is na x mb.
  Vec z(na * mb);
  for (std::size_t ja = 0; ja < na; ++ja)
    b_->ApplyRaw(x + ja * nb, z.data() + ja * mb);
  // Stage 2: for each output column c: y[:, c] = A * Z[:, c].
  Vec col(na), out(ma);
  for (std::size_t c = 0; c < mb; ++c) {
    for (std::size_t ja = 0; ja < na; ++ja) col[ja] = z[ja * mb + c];
    a_->ApplyRaw(col.data(), out.data());
    for (std::size_t ia = 0; ia < ma; ++ia) y[ia * mb + c] = out[ia];
  }
}

void KroneckerOp::ApplyTRaw(const double* x, double* y) const {
  const std::size_t na = a_->cols(), nb = b_->cols();
  const std::size_t ma = a_->rows(), mb = b_->rows();
  // x is (ma*mb); y is (na*nb).  Z[ia, :] = B^T x[ia*mb ..): Z is ma x nb.
  Vec z(ma * nb);
  for (std::size_t ia = 0; ia < ma; ++ia)
    b_->ApplyTRaw(x + ia * mb, z.data() + ia * nb);
  Vec col(ma), out(na);
  for (std::size_t c = 0; c < nb; ++c) {
    for (std::size_t ia = 0; ia < ma; ++ia) col[ia] = z[ia * nb + c];
    a_->ApplyTRaw(col.data(), out.data());
    for (std::size_t ja = 0; ja < na; ++ja) y[ja * nb + c] = out[ja];
  }
}

LinOpPtr KroneckerOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  // |A ⊗ B| = |A| ⊗ |B|.
  return MakeKronecker(a_->Abs(), b_->Abs());
}

LinOpPtr KroneckerOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeKronecker(a_->Sqr(), b_->Sqr());
}

CsrMatrix KroneckerOp::MaterializeSparse() const {
  return a_->MaterializeSparse().Kronecker(b_->MaterializeSparse());
}

double KroneckerOp::SensitivityL1() const {
  // Column norms of a Kronecker product factorize.
  return a_->SensitivityL1() * b_->SensitivityL1();
}

double KroneckerOp::SensitivityL2() const {
  return a_->SensitivityL2() * b_->SensitivityL2();
}

std::string KroneckerOp::DebugName() const {
  return "Kron(" + a_->DebugName() + "," + b_->DebugName() + ")";
}

// -------------------------------------------------------------- RowWeight

RowWeightOp::RowWeightOp(LinOpPtr child, Vec weights)
    : LinOp(child->rows(), child->cols()),
      child_(std::move(child)),
      w_(std::move(weights)) {
  EK_CHECK_EQ(w_.size(), rows());
}

void RowWeightOp::ApplyRaw(const double* x, double* y) const {
  child_->ApplyRaw(x, y);
  for (std::size_t i = 0; i < rows(); ++i) y[i] *= w_[i];
}

void RowWeightOp::ApplyTRaw(const double* x, double* y) const {
  Vec scaled(rows());
  for (std::size_t i = 0; i < rows(); ++i) scaled[i] = x[i] * w_[i];
  child_->ApplyTRaw(scaled.data(), y);
}

LinOpPtr RowWeightOp::Abs() const {
  Vec aw(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) aw[i] = std::abs(w_[i]);
  return MakeRowWeight(child_->Abs(), std::move(aw));
}

LinOpPtr RowWeightOp::Sqr() const {
  Vec sw(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) sw[i] = w_[i] * w_[i];
  return MakeRowWeight(child_->Sqr(), std::move(sw));
}

CsrMatrix RowWeightOp::MaterializeSparse() const {
  return child_->MaterializeSparse().ScaleRows(w_);
}

std::string RowWeightOp::DebugName() const {
  return "RowWeight(" + child_->DebugName() + ")";
}

// -------------------------------------------------------------- factories

LinOpPtr MakeTranspose(LinOpPtr a) {
  return std::make_shared<TransposeOp>(std::move(a));
}

LinOpPtr MakeVStack(std::vector<LinOpPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<VStackOp>(std::move(children));
}

LinOpPtr MakeProduct(LinOpPtr a, LinOpPtr b, bool binary_hint) {
  return std::make_shared<ProductOp>(std::move(a), std::move(b), binary_hint);
}

LinOpPtr MakeKronecker(LinOpPtr a, LinOpPtr b) {
  return std::make_shared<KroneckerOp>(std::move(a), std::move(b));
}

LinOpPtr MakeKronecker(std::vector<LinOpPtr> factors) {
  EK_CHECK(!factors.empty());
  LinOpPtr acc = factors.back();
  for (std::size_t i = factors.size() - 1; i-- > 0;)
    acc = MakeKronecker(factors[i], acc);
  return acc;
}

LinOpPtr MakeRowWeight(LinOpPtr child, Vec weights) {
  return std::make_shared<RowWeightOp>(std::move(child), std::move(weights));
}

LinOpPtr MakeScaled(LinOpPtr child, double c) {
  Vec w(child->rows(), c);
  return MakeRowWeight(std::move(child), std::move(w));
}

}  // namespace ektelo
