// Implicit operators for sets of interval-sum queries.
//
// A set of m 1D range queries admits an O(m) implicit representation with
// O(n + m) mat-vecs: Apply uses a prefix-sum of x, ApplyT a difference
// array (Sec. 7.5's range-query construction, strengthened: the paper
// represents ranges as Product(Sparse, Prefix); storing the (lo, hi)
// pairs directly gives the same complexity plus an O(nnz) direct sparse
// materialization, which the Product form cannot offer).  2D rectangle
// sets get the same treatment via 2D prefix sums.
//
// These back every hierarchical / grid / random-range strategy, so the
// "sparse" matrix mode of the scalability experiments materializes them
// in O(total covered cells), exactly like the paper's SciPy baselines.
#ifndef EKTELO_MATRIX_RANGE_OPS_H_
#define EKTELO_MATRIX_RANGE_OPS_H_

#include <cstddef>
#include <vector>

#include "matrix/linop.h"

namespace ektelo {

/// One inclusive 1D interval [lo, hi].
struct Interval {
  std::size_t lo;
  std::size_t hi;
};

class RangeSetOp final : public LinOp {
 public:
  RangeSetOp(std::vector<Interval> ranges, std::size_t n);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }
  const std::vector<Interval>& ranges() const { return ranges_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  std::vector<Interval> ranges_;
};

/// One inclusive 2D rectangle [x_lo, x_hi] x [y_lo, y_hi].
struct Rectangle {
  std::size_t x_lo, x_hi, y_lo, y_hi;
};

class RectangleSetOp final : public LinOp {
 public:
  RectangleSetOp(std::vector<Rectangle> rects, std::size_t nx,
                 std::size_t ny);
  void ApplyRaw(const double* x, double* y) const override;
  void ApplyTRaw(const double* x, double* y) const override;
  void ApplyBlockRaw(const double* x, double* y, std::size_t k) const override;
  void ApplyTBlockRaw(const double* x, double* y,
                      std::size_t k) const override;
  CsrMatrix MaterializeSparse() const override;
  std::string DebugName() const override;
  bool StructuralEq(const LinOp& other) const override;
  bool HashProcessStable() const override { return true; }
  const std::vector<Rectangle>& rects() const { return rects_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

 protected:
  double ComputeSensitivityL1() const override;
  double ComputeSensitivityL2() const override;
  uint64_t ComputeStructuralHash() const override;

 private:
  std::vector<Rectangle> rects_;
  std::size_t nx_, ny_;
};

LinOpPtr MakeRangeSetOp(std::vector<Interval> ranges, std::size_t n);
LinOpPtr MakeRectangleSetOp(std::vector<Rectangle> rects, std::size_t nx,
                            std::size_t ny);

}  // namespace ektelo

#endif  // EKTELO_MATRIX_RANGE_OPS_H_
