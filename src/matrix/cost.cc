#include "matrix/cost.h"

#include <algorithm>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"

namespace ektelo {
namespace {

// Bytes of one double / one CSR entry (value + column index).
constexpr double kF64 = 8.0;
constexpr double kCsrEntry = 8.0 + 4.0;

double CsrNnz(const CsrMatrix& m) { return double(m.nnz()); }

// Streaming in/out vector traffic every Apply pays.
double VecBytes(const LinOp& op) {
  return kF64 * double(op.rows() + op.cols());
}

}  // namespace

OpCost EstimateOpCost(const LinOp& op) {
  const double m = double(op.rows());
  const double n = double(op.cols());
  OpCost c;

  if (auto* d = dynamic_cast<const DenseOp*>(&op)) {
    (void)d;
    c.apply_flops = 2.0 * m * n;
    c.apply_bytes = kF64 * m * n + VecBytes(op);
    c.footprint_bytes = kF64 * m * n;
    return c;
  }
  if (auto* s = dynamic_cast<const SparseOp*>(&op)) {
    const double nnz = CsrNnz(s->csr());
    c.apply_flops = 2.0 * nnz;
    c.apply_bytes = kCsrEntry * nnz + kF64 * m + VecBytes(op);
    c.footprint_bytes = kCsrEntry * nnz + kF64 * (m + 1.0);
    return c;
  }
  if (dynamic_cast<const IdentityOp*>(&op) != nullptr) {
    c.apply_bytes = VecBytes(op);  // a copy; no arithmetic
    return c;
  }
  if (dynamic_cast<const OnesOp*>(&op) != nullptr) {
    c.apply_flops = n + m;  // one reduction, one broadcast-add
    c.apply_bytes = VecBytes(op);
    return c;
  }
  if (dynamic_cast<const PrefixOp*>(&op) != nullptr ||
      dynamic_cast<const SuffixOp*>(&op) != nullptr) {
    c.apply_flops = n;  // running sum
    c.apply_bytes = VecBytes(op);
    return c;
  }
  if (dynamic_cast<const WaveletOp*>(&op) != nullptr) {
    double levels = 1.0;
    for (std::size_t k = op.cols(); k > 1; k >>= 1) levels += 1.0;
    c.apply_flops = 2.0 * n * levels;
    c.apply_bytes = VecBytes(op) * levels;  // pack/unpack per level
    return c;
  }
  if (auto* r = dynamic_cast<const RangeSetOp*>(&op)) {
    // Prefix-sum of x then two lookups per range.
    c.apply_flops = n + 2.0 * double(r->ranges().size());
    c.apply_bytes = VecBytes(op) + kF64 * n;
    c.footprint_bytes = 16.0 * double(r->ranges().size());
    return c;
  }
  if (auto* r = dynamic_cast<const RectangleSetOp*>(&op)) {
    // 2D prefix sums over the grid then four lookups per rectangle.
    c.apply_flops = 2.0 * n + 4.0 * double(r->rects().size());
    c.apply_bytes = VecBytes(op) + 2.0 * kF64 * n;
    c.footprint_bytes = 32.0 * double(r->rects().size());
    return c;
  }
  if (auto* t = dynamic_cast<const TransposeOp*>(&op)) {
    return EstimateOpCost(*t->child());
  }
  if (auto* s = dynamic_cast<const ScaleOp*>(&op)) {
    OpCost ch = EstimateOpCost(*s->child());
    ch.apply_flops += m;  // scale the output
    ch.apply_bytes += VecBytes(op);
    return ch;
  }
  if (auto* w = dynamic_cast<const RowWeightOp*>(&op)) {
    OpCost ch = EstimateOpCost(*w->child());
    ch.apply_flops += m;
    ch.apply_bytes += VecBytes(op) + kF64 * m;
    ch.footprint_bytes += kF64 * m;
    return ch;
  }
  if (auto* p = dynamic_cast<const ProductOp*>(&op)) {
    const OpCost ca = EstimateOpCost(*p->a());
    const OpCost cb = EstimateOpCost(*p->b());
    c.apply_flops = ca.apply_flops + cb.apply_flops;
    // The intermediate B x is written then read back.
    c.apply_bytes =
        ca.apply_bytes + cb.apply_bytes + 2.0 * kF64 * double(p->b()->rows());
    c.footprint_bytes = ca.footprint_bytes + cb.footprint_bytes;
    return c;
  }
  if (auto* k = dynamic_cast<const KroneckerOp*>(&op)) {
    // vec-trick: nB applies of A plus nA... precisely, (A ⊗ B)x evaluates
    // B against na columns and A against mb columns (Table 3).
    const OpCost ca = EstimateOpCost(*k->a());
    const OpCost cb = EstimateOpCost(*k->b());
    const double na = double(k->a()->cols());
    const double mb = double(k->b()->rows());
    c.apply_flops = na * cb.apply_flops + mb * ca.apply_flops;
    c.apply_bytes = na * cb.apply_bytes + mb * ca.apply_bytes;
    c.footprint_bytes = ca.footprint_bytes + cb.footprint_bytes;
    return c;
  }
  if (auto* g = dynamic_cast<const GramOp*>(&op)) {
    // x -> M^T (M x): two passes over the child.
    OpCost ch = EstimateOpCost(*g->child());
    c.apply_flops = 2.0 * ch.apply_flops;
    c.apply_bytes = 2.0 * ch.apply_bytes;
    c.footprint_bytes = ch.footprint_bytes;
    return c;
  }
  {
    // VStack / HStack / Sum all evaluate every child once per apply.
    const std::vector<LinOpPtr>* children = nullptr;
    if (auto* v = dynamic_cast<const VStackOp*>(&op)) children = &v->children();
    if (auto* h = dynamic_cast<const HStackOp*>(&op)) children = &h->children();
    if (auto* s = dynamic_cast<const SumOp*>(&op)) children = &s->children();
    if (children != nullptr) {
      for (const LinOpPtr& ch : *children) {
        const OpCost cc = EstimateOpCost(*ch);
        c.apply_flops += cc.apply_flops;
        c.apply_bytes += cc.apply_bytes;
        c.footprint_bytes += cc.footprint_bytes;
      }
      c.apply_bytes += VecBytes(op);
      return c;
    }
  }

  // Unknown subclass: score as dense — the conservative upper bound, so
  // the search never *prefers* a tree because it could not model it.
  c.apply_flops = 2.0 * m * n;
  c.apply_bytes = kF64 * m * n + VecBytes(op);
  c.footprint_bytes = kF64 * m * n;
  return c;
}

double ApplySeconds(const OpCost& c) {
  return std::max(c.apply_flops / kRooflineFlopsPerSec,
                  c.apply_bytes / kRooflineBytesPerSec);
}

double TreeScore(const LinOp& op) { return ApplySeconds(EstimateOpCost(op)); }

double SparseLeafApplySeconds(std::size_t rows, std::size_t cols,
                              double nnz) {
  // Mirrors the SparseOp branch of EstimateOpCost exactly.
  OpCost c;
  c.apply_flops = 2.0 * nnz;
  c.apply_bytes =
      kCsrEntry * nnz + kF64 * double(rows) + kF64 * double(rows + cols);
  return ApplySeconds(c);
}

std::size_t ApproxRetainedBytes(const LinOp& op) {
  if (auto* d = dynamic_cast<const DenseOp*>(&op))
    return 64 + d->dense().data().size() * sizeof(double);
  if (auto* s = dynamic_cast<const SparseOp*>(&op)) {
    const CsrMatrix& m = s->csr();
    return 64 +
           (m.indptr().size() + m.indices().size()) * sizeof(std::size_t) +
           m.values().size() * sizeof(double);
  }
  if (auto* r = dynamic_cast<const RangeSetOp*>(&op))
    return 64 + r->ranges().size() * sizeof(Interval);
  if (auto* r2 = dynamic_cast<const RectangleSetOp*>(&op))
    return 64 + r2->rects().size() * sizeof(Rectangle);
  if (auto* g = dynamic_cast<const GramOp*>(&op))
    return 64 + ApproxRetainedBytes(*g->child());
  if (auto* t = dynamic_cast<const TransposeOp*>(&op))
    return 64 + ApproxRetainedBytes(*t->child());
  if (auto* sc = dynamic_cast<const ScaleOp*>(&op))
    return 64 + ApproxRetainedBytes(*sc->child());
  if (auto* rw = dynamic_cast<const RowWeightOp*>(&op))
    return 64 + rw->weights().size() * sizeof(double) +
           ApproxRetainedBytes(*rw->child());
  if (auto* p = dynamic_cast<const ProductOp*>(&op))
    return 64 + ApproxRetainedBytes(*p->a()) + ApproxRetainedBytes(*p->b());
  if (auto* k = dynamic_cast<const KroneckerOp*>(&op))
    return 64 + ApproxRetainedBytes(*k->a()) + ApproxRetainedBytes(*k->b());
  std::size_t total = 64;
  const std::vector<LinOpPtr>* children = nullptr;
  if (auto* v = dynamic_cast<const VStackOp*>(&op)) children = &v->children();
  if (auto* h = dynamic_cast<const HStackOp*>(&op)) children = &h->children();
  if (auto* sm = dynamic_cast<const SumOp*>(&op)) children = &sm->children();
  if (children)
    for (const auto& c : *children) total += ApproxRetainedBytes(*c);
  return total;
}

}  // namespace ektelo
