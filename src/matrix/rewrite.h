// Algebraic rewrite engine for LinOp expression trees, plus the
// process-wide OperatorCache (Halide-flavored separation of what an
// operator *means* from how it is *evaluated*).
//
// The engine is three layers, selected by EKTELO_REWRITE:
//
//   rules    (default) the fixed-order bottom-up canonicalizing pass in
//            matrix/rules.h — bitwise-identical to the historical
//            Rewrite() behavior;
//   search   cost-guided beam search over rule applications
//            (matrix/search.h scoring with matrix/cost.h), with winning
//            canonical trees cached — and, via the disk tier, persisted
//            (store/tree_codec.h) — by structural hash, so warm
//            processes load the canonical tree instead of re-searching;
//   off      no rewriting and no cache consumers, for A/B comparisons.
//
// Plans compose operators in whatever shape is natural to write —
// per-round measurement stacks, Scale/Transpose wrappers, products with
// partition reductions — and execute that tree node by node.  Rewrite()
// canonicalizes the tree with local, semantics-preserving rules before
// the solve/Gram hot paths consume it:
//
//   scale-collapse     Scale(c1, Scale(c2, A))        -> Scale(c1*c2, A)
//   scale-fold         Scale(c, Dense/Sparse leaf)    -> scaled leaf
//   scale-hoist        Product/Kron/VStack of Scales  -> one outer Scale
//   transpose-push     T(T(A)) -> A;  T(AB) -> T(B)T(A);  T(A (x) B) ->
//                      T(A) (x) T(B);  T([A;B]) -> [T(A)|T(B)];  T(Gram)
//                      -> Gram;  T(Dense/Sparse/Identity) -> leaf
//   identity-elim      Product(I, A) / Product(A, I)  -> A;
//                      Kron(I_1, A) / Kron(A, I_1)    -> A;
//                      Kron(I_m, I_n)                 -> I_mn
//   kron-fuse          (A (x) B)(C (x) D) -> (AC) (x) (BD) when shapes
//                      conform (the mixed-product identity)
//   sparse-fuse        Product of two CSR leaves -> one CSR leaf when the
//                      product is affordable and no denser than its
//                      factors (this is what recognizes P P^T of a
//                      partition/selection as diagonal and short-circuits
//                      its Gram)
//   rowweight-fuse     RowWeight of RowWeight/Scale -> one RowWeight;
//                      RowWeight of a Dense/CSR leaf -> scaled leaf;
//                      all-ones weights -> child
//   stack-flatten      nested VStack/HStack/Sum -> one n-ary node
//   stack-merge        adjacent VStack runs of RangeSet/Total rows -> one
//                      RangeSetOp (one prefix-sum pass per apply instead
//                      of one per child — the MWEM measurement-union
//                      fast path); adjacent CSR leaves -> one CSR;
//                      RowWeight/Scale children -> hoisted row weights
//   sum-merge          CSR / dense leaves inside a Sum -> one leaf
//   gram-unwrap        Gram(X) re-derives X's structured Gram after X
//                      itself has been rewritten
//
// Every rule preserves the represented matrix exactly (most are bitwise
// result-preserving; the rest agree to floating-point roundoff, which is
// why consumers sit behind the EKTELO_REWRITE toggle).  The privacy-
// relevant path is untouched by construction: measurement operators are
// applied and charged as the plan author composed them; rewriting serves
// inference, Gram assembly and materialization — all post-processing.
//
// OperatorCache memoizes the expensive derived artifacts (materialized
// CSR, dense Gram, derived Gram operators and their spectral-norm
// estimates, L1/L2 sensitivities) under the operator's structural hash
// (see LinOp::StructuralHash), verified by StructuralEq, so MWEM-style
// loops and repeated plan executions that re-derive structurally
// identical operators stop paying per-round recomputation.  The cache is
// bounded (entries + approximate bytes, LRU eviction) and thread-safe;
// values are shared_ptr snapshots, so eviction never invalidates a
// consumer.
//
// When EKTELO_CACHE_DIR is set, a persistent disk tier (a
// store::DiskArtifactStore in that directory) sits under the in-memory
// cache: a memory miss probes the store (keyed by {kFormatVersion,
// kHashVersion, structural hash, artifact kind}, checksum-verified and
// shape-guarded), promotes hits into memory, and computed artifacts are
// written behind on insert — so a fresh process serving the same
// workloads starts warm.  EKTELO_CACHE_DISK_BYTES bounds the store's
// live bytes (default 1 GiB).  With the variable unset nothing touches
// disk and behavior is bitwise identical to the memory-only cache.
// Only operators whose structural hash is stable across processes
// (StructuralHashPersistable) participate in the disk tier.
#ifndef EKTELO_MATRIX_REWRITE_H_
#define EKTELO_MATRIX_REWRITE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "matrix/linop.h"

namespace ektelo {

namespace store {
class DiskArtifactStore;
}  // namespace store

/// The rewrite engine's operating mode.  EKTELO_REWRITE selects it:
/// "0" or "off" -> kOff; "search" -> kSearch; unset, "1", "rules" or any
/// other value -> kRules (the historical default — any value other than
/// "0" has always meant "on").
enum class RewriteMode { kOff = 0, kRules = 1, kSearch = 2 };

RewriteMode GetRewriteMode();

/// Runtime override of EKTELO_REWRITE: 0 = off, 1 = rules, 2 = search,
/// -1 = follow the environment again.  Used by the A/B benches and the
/// mode equivalence tests.
void SetRewriteMode(int force);

/// Whether the rewrite engine (and the OperatorCache consumers gated on
/// it) is active: GetRewriteMode() != kOff.
bool RewriteEnabled();

/// Back-compat alias for SetRewriteMode: 1 = force rules mode, 0 = force
/// off, -1 = follow the environment again.
void SetRewriteEnabled(int force);

/// Canonicalize an operator tree with the fixed-order rules pass
/// (unconditionally — callers wanting the mode switch use MaybeRewrite).
/// Returns the original pointer when no rule fires, so per-instance
/// caches survive a no-op pass.
LinOpPtr Rewrite(LinOpPtr op);

/// Beam-search canonicalization through the canonical-tree cache: a
/// structurally-equal tree seen before (this process, or — with a disk
/// tier — any process) returns the cached winner without searching.
/// Returns the original pointer when the winner is structurally
/// identical to the input.
LinOpPtr SearchRewrite(LinOpPtr op);

/// Mode dispatch: op unchanged (kOff), Rewrite (kRules), or
/// SearchRewrite (kSearch).
LinOpPtr MaybeRewrite(LinOpPtr op);

/// True when `op`'s StructuralHash is a pure function of its construction
/// (kinds, shapes, scalar/leaf payloads) — deterministic across processes
/// — which holds for every built-in operator kind, recursively.  Unknown
/// LinOp subclasses hash per-instance (see LinOp::ComputeStructuralHash)
/// and return false: their artifacts stay in the in-memory tier and are
/// never persisted.  The registered-kind audit lives next to kHashVersion
/// (linop.h); extend both together when adding operator kinds.
bool StructuralHashPersistable(const LinOp& op);

/// Bounded, thread-safe memo cache: structural hash -> derived artifact.
class OperatorCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    /// Disk-tier traffic (all zero when no tier is attached).  A disk
    /// hit is also counted as a memory miss: the probe only runs after
    /// the in-memory lookup failed.
    std::size_t disk_hits = 0;
    std::size_t disk_misses = 0;
    std::size_t disk_writes = 0;
    /// Writes the bounded write-behind queue refused (full / shutting
    /// down).  A drop only costs a future recompute, never correctness.
    std::size_t disk_write_drops = 0;
    /// Canonical-tree artifacts served from memory / promoted from the
    /// disk tier (subset of hits / disk_hits): each one is a beam search
    /// a warm process skipped.
    std::size_t tree_hits = 0;
    std::size_t tree_disk_hits = 0;
    /// Disk-tier health snapshot (store::DiskArtifactStore::Stats).
    /// disk_degraded means the tier tripped into sticky memory-only mode
    /// after a post-open device error; the cache keeps serving from
    /// memory and recomputation, it just stops touching the bad disk.
    bool disk_degraded = false;
    std::size_t disk_io_errors = 0;
  };

  /// The process-wide instance every consumer shares.
  static OperatorCache& Global();

  /// Materialized sparse form of `op`, computed on miss.  The returned
  /// snapshot stays valid after eviction.
  std::shared_ptr<const CsrMatrix> MaterializeSparse(const LinOpPtr& op);

  /// Materialized dense form of `op`.
  std::shared_ptr<const DenseMatrix> MaterializeDense(const LinOpPtr& op);

  /// Dense Gram (op^T op) via op->Gram()->MaterializeDense(), memoized —
  /// the direct-inference hot path.
  std::shared_ptr<const DenseMatrix> GramDense(const LinOpPtr& op);

  /// Memoized SparseOp / DenseOp *leaf* wrapping op's materialization —
  /// what ApplyMode conversions hand to plans.  A hit is a pointer copy
  /// (no matrix copy), and the shared instance carries its per-instance
  /// sensitivity caches across executions.
  LinOpPtr SparseWrapped(const LinOpPtr& op);
  LinOpPtr DenseWrapped(const LinOpPtr& op);

  /// Memoized sensitivity (`which` = 1 or 2 for L1/L2).  `compute` runs
  /// on miss; the cached value is whatever the first structurally-equal
  /// instance computed (deterministic, hence bitwise-reproducible).
  /// Operators not owned by a shared_ptr are computed without caching
  /// (the cache could not hold a safe key).
  double Sensitivity(const LinOp& op, int which,
                     const std::function<double()>& compute);

  /// Memoized op->Gram(): the derived (possibly materialized — see
  /// SparseOp::Gram's fill guard) Gram operator, keyed by op's hash.
  /// Gram derivation is a deterministic function of op's structure, so a
  /// hit is bitwise-equivalent to re-deriving — CG/NNLS consume this so
  /// repeated solves against structurally identical stacks stop paying
  /// the sparse A^T A re-materialization.  Persisted to the disk tier as
  /// a sparse/dense leaf when materialized, or as an encoded tree
  /// (store/tree_codec.h) when the derived Gram is structured — only the
  /// plain lazy GramOp wrapper, free to re-derive, stays memory-only.
  LinOpPtr GramOperator(const LinOpPtr& op);

  /// Previously chosen canonical tree for `op` (the search-mode fast
  /// path): probes memory under op's structural hash, then the disk
  /// tier via the tree codec (a verified disk hit is promoted into
  /// memory).  Returns nullopt on a full miss — the caller then runs
  /// the search itself.
  std::optional<LinOpPtr> CanonicalTreeLookup(const LinOpPtr& op);

  /// Records `tree` as the chosen canonical form of `op`: cached in
  /// memory and, when every node is process-stable, persisted to the
  /// disk tier so a warm process loads it instead of re-searching.
  /// Callers only store *improvements* — a winner the fixed-order rules
  /// pass would rebuild anyway is pure cache traffic with nothing to
  /// save (iterative plans mint thousands of such one-shot unions).
  void CanonicalTreeStore(const LinOpPtr& op, const LinOpPtr& tree);

  /// Memoized spectral-norm-squared estimate of a Gram operator (the
  /// NNLS Lipschitz constant), keyed by {gram's structural hash, iters}.
  /// `compute` must be EstimateSpectralNormSqGram(gram, iters) or an
  /// equally deterministic function — a hit reproduces it bitwise while
  /// skipping the power iterations.  Uncached when `gram` is not
  /// shared-owned.
  double GramNormSq(const LinOp& gram, std::size_t iters,
                    const std::function<double()>& compute);

  /// The memoized Gram for `a` via GramOperator, or nullptr when caching
  /// does not apply — rewriting disabled, or `a` not shared-owned (a
  /// Gram derived from a stack-allocated operator aliases it non-
  /// owningly and must never outlive the solve as a cache key).  Callers
  /// fall back to a.Gram() on nullptr and must not cache artifacts keyed
  /// on that fallback.  Shared by the CG/NNLS solvers.
  static LinOpPtr CachedGramOrNull(const LinOp& a);

  /// Attaches (or, with nullptr, detaches) the persistent disk tier.
  /// The previous tier, if any, has its pending write-behind jobs
  /// drained, then is flushed and closed before this returns — so a
  /// detach/attach cycle on the same directory always reopens a store
  /// holding every artifact computed before the detach.  Called with the
  /// EKTELO_CACHE_DIR store at process start; tests and benches swap
  /// tiers explicitly.
  ///
  /// Disk spills run on a background write-behind consumer (bounded
  /// queue; a full queue drops the spill and counts disk_write_drops)
  /// unless EKTELO_CACHE_WRITE_BEHIND=0 forces the synchronous path.
  void SetDiskTier(std::unique_ptr<store::DiskArtifactStore> tier);

  /// The attached tier (nullptr when none) — for stats inspection; the
  /// pointer stays owned by the cache and is invalidated by SetDiskTier.
  store::DiskArtifactStore* disk_tier() const;

  /// Barrier + checkpoint: drains the write-behind queue (every insert
  /// that happened before this call reaches the store) and flushes the
  /// tier's index checkpoint.  No-op without a tier.
  void FlushDiskTier();

  /// Capacity bounds; entries older than the bound are evicted LRU-first.
  void SetCapacity(std::size_t max_entries, std::size_t max_bytes);

  Stats stats() const;
  /// Empties the in-memory tier (counters are kept).  The disk tier, if
  /// any, is untouched: Clear + re-execution is exactly the cold-start
  /// path a fresh process takes against a populated store.
  void Clear();

  OperatorCache();
  ~OperatorCache();
  OperatorCache(const OperatorCache&) = delete;
  OperatorCache& operator=(const OperatorCache&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ektelo

#endif  // EKTELO_MATRIX_REWRITE_H_
