#include "matrix/nnls.h"

#include <algorithm>
#include <cmath>

#include "matrix/rewrite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace ektelo {

namespace {
obs::Counter& NnlsIterations() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_solver_iterations", "Solver inner iterations run",
      "solver=\"nnls\"");
  return c;
}
obs::Histogram& NnlsSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_solver_seconds", "Wall time of one solver call",
      "solver=\"nnls\"");
  return h;
}
}  // namespace

double EstimateSpectralNormSqGram(const LinOp& gram, std::size_t iters) {
  const std::size_t n = gram.cols();
  // iters == 0 would return the uninitialized placeholder estimate (1.0)
  // regardless of the operator; always run at least one power step so the
  // result reflects the Gram.
  iters = std::max<std::size_t>(iters, 1);
  // Deterministic pseudo-random start vector (no RNG dependency here).
  Vec v(n);
  double seed = 0.5;
  for (std::size_t j = 0; j < n; ++j) {
    seed = std::fmod(seed * 997.0 + 3.14159, 1.0);
    v[j] = seed + 0.1;
  }
  double nv = Norm2(v);
  Scale(1.0 / nv, &v);
  double lambda = 1.0;
  Vec w(n);
  for (std::size_t it = 0; it < iters; ++it) {
    gram.ApplyRaw(v.data(), w.data());
    // Pre-scale by the max magnitude before taking the norm: on Grams
    // with huge spectral norm (~1e200 and up) the sum of squares inside
    // Norm2 overflows to inf even though the norm itself is
    // representable, and the iterate would collapse to zeros/NaNs.
    const double m = MaxAbs(w);
    if (m == 0.0) return 0.0;
    Scale(1.0 / m, &w);
    lambda = m * Norm2(w);
    Scale(m / lambda, &w);
    v.swap(w);
  }
  return lambda;
}

double EstimateSpectralNormSq(const LinOp& a, std::size_t iters) {
  return EstimateSpectralNormSqGram(*a.Gram(), iters);
}

NnlsResult Nnls(const LinOp& a, const Vec& b, const NnlsOptions& opts) {
  const std::size_t n = a.cols();
  EK_CHECK_EQ(b.size(), a.rows());
  obs::Span span("solver.nnls", "solver", &NnlsSeconds());
  span.Attr("rows", static_cast<double>(a.rows()));
  span.Attr("cols", static_cast<double>(n));

  // The whole FISTA loop runs on the normal-equations side: gradient and
  // objective are both functions of (Gram, A^T b, ||b||^2), so each
  // iteration costs a single Gram apply — structured Grams (sparse A^T A,
  // Kron of Grams) make it cheaper still, and A itself is applied exactly
  // once, for the final residual report.
  // Both the derived Gram and its spectral-norm estimate are memoized
  // under structural hashes (ROADMAP: "Gram memoization for iterative
  // solvers"): per-solve Gram re-materialization and the power-iteration
  // Lipschitz estimate vanish on repeated solves of structurally
  // identical stacks.  Both computations are deterministic functions of
  // the stack's structure, so a hit is bitwise-identical to a fresh
  // compute — the solver's landing point never moves.
  LinOpPtr g = OperatorCache::CachedGramOrNull(a);
  const bool cacheable = g != nullptr;
  if (!g) g = a.Gram();
  const Vec atb = a.ApplyT(b);
  const double btb = Dot(b, b);

  const auto compute_lip = [&] {
    return EstimateSpectralNormSqGram(*g, opts.power_iters);
  };
  // EstimateSpectralNormSqGram clamps iters to >= 1; key on the clamped
  // count so equal work shares an entry.
  double lip = cacheable ? OperatorCache::Global().GramNormSq(
                               *g, std::max<std::size_t>(opts.power_iters, 1),
                               compute_lip)
                         : compute_lip();
  if (lip <= 0.0) lip = 1.0;
  const double step = 1.0 / (1.05 * lip);  // slack for estimation error

  NnlsResult result;
  Vec x(n, 0.0);
  if (!opts.x0.empty()) {
    EK_CHECK_EQ(opts.x0.size(), n);
    x = opts.x0;
    for (double& v : x) v = std::max(v, 0.0);
  }
  Vec gx(n, 0.0);  // G x, kept in lockstep with x
  g->ApplyRaw(x.data(), gx.data());
  Vec yk = x, gyk = gx;  // momentum iterate and its Gram image
  double t = 1.0;
  double prev_obj = 1e300;

  Vec grad(n), x_new(n), gx_new(n);
  std::size_t it = 0;
  std::size_t restarts = 0;
  for (; it < opts.max_iters; ++it) {
    // grad = A^T (A y - b) = G y - A^T b.
    for (std::size_t j = 0; j < n; ++j) grad[j] = gyk[j] - atb[j];

    for (std::size_t j = 0; j < n; ++j)
      x_new[j] = std::max(0.0, yk[j] - step * grad[j]);
    g->ApplyRaw(x_new.data(), gx_new.data());

    // 0.5||A z - b||^2 = 0.5 z^T G z - z^T A^T b + 0.5 ||b||^2.
    const double obj =
        0.5 * Dot(x_new, gx_new) - Dot(x_new, atb) + 0.5 * btb;
    // Monotone restart: if the objective went up, drop momentum.  The
    // `continue` already routes through the for-loop's increment; bumping
    // `it` here too would double-count the pass (over-reported iteration
    // totals and a silently halved max_iters on restart-heavy problems).
    if (obj > prev_obj) {
      t = 1.0;
      yk = x;
      gyk = gx;
      ++restarts;
      continue;
    }
    prev_obj = obj;

    const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double mom = (t - 1.0) / t_new;
    double dx = 0.0, nx = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double diff = x_new[j] - x[j];
      dx += diff * diff;
      nx += x_new[j] * x_new[j];
      yk[j] = x_new[j] + mom * diff;
      // G is linear, so the momentum iterate's Gram image extrapolates for
      // free: G y = G x_new + mom (G x_new - G x).
      gyk[j] = gx_new[j] + mom * (gx_new[j] - gx[j]);
    }
    x = x_new;
    gx = gx_new;
    t = t_new;
    if (std::sqrt(dx) <= opts.tol * std::max(1.0, std::sqrt(nx))) {
      ++it;
      break;
    }
  }

  Vec r = a.Apply(x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  result.residual_norm = Norm2(r);
  result.x = std::move(x);
  result.iterations = it;
  result.restarts = restarts;
  NnlsIterations().Inc(result.iterations);
  span.Attr("iterations", static_cast<double>(result.iterations));
  return result;
}

}  // namespace ektelo
