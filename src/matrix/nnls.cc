#include "matrix/nnls.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

double EstimateSpectralNormSq(const LinOp& a, std::size_t iters) {
  const std::size_t n = a.cols();
  // Deterministic pseudo-random start vector (no RNG dependency here).
  Vec v(n);
  double seed = 0.5;
  for (std::size_t j = 0; j < n; ++j) {
    seed = std::fmod(seed * 997.0 + 3.14159, 1.0);
    v[j] = seed + 0.1;
  }
  double nv = Norm2(v);
  Scale(1.0 / nv, &v);
  double lambda = 1.0;
  for (std::size_t it = 0; it < iters; ++it) {
    Vec w = a.ApplyT(a.Apply(v));
    lambda = Norm2(w);
    if (lambda == 0.0) return 0.0;
    Scale(1.0 / lambda, &w);
    v.swap(w);
  }
  return lambda;
}

NnlsResult Nnls(const LinOp& a, const Vec& b, const NnlsOptions& opts) {
  const std::size_t n = a.cols();
  EK_CHECK_EQ(b.size(), a.rows());

  double lip = EstimateSpectralNormSq(a, opts.power_iters);
  if (lip <= 0.0) lip = 1.0;
  const double step = 1.0 / (1.05 * lip);  // slack for estimation error

  NnlsResult result;
  Vec x(n, 0.0);
  if (!opts.x0.empty()) {
    EK_CHECK_EQ(opts.x0.size(), n);
    x = opts.x0;
    for (double& v : x) v = std::max(v, 0.0);
  }
  Vec yk = x;
  double t = 1.0;
  double prev_obj = 1e300;

  auto objective = [&](const Vec& z) {
    Vec r = a.Apply(z);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
    return 0.5 * Dot(r, r);
  };

  std::size_t it = 0;
  for (; it < opts.max_iters; ++it) {
    // grad = A^T (A y - b)
    Vec r = a.Apply(yk);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
    Vec grad = a.ApplyT(r);

    Vec x_new(n);
    for (std::size_t j = 0; j < n; ++j)
      x_new[j] = std::max(0.0, yk[j] - step * grad[j]);

    // Monotone restart: if the objective went up, drop momentum.
    double obj = objective(x_new);
    if (obj > prev_obj) {
      t = 1.0;
      yk = x;
      ++it;
      continue;
    }
    prev_obj = obj;

    const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    double dx = 0.0, nx = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double diff = x_new[j] - x[j];
      dx += diff * diff;
      nx += x_new[j] * x_new[j];
      yk[j] = x_new[j] + ((t - 1.0) / t_new) * diff;
    }
    x = x_new;
    t = t_new;
    if (std::sqrt(dx) <= opts.tol * std::max(1.0, std::sqrt(nx))) {
      ++it;
      break;
    }
  }

  Vec r = a.Apply(x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  result.residual_norm = Norm2(r);
  result.x = std::move(x);
  result.iterations = it;
  return result;
}

}  // namespace ektelo
