#include "matrix/partition.h"

#include "util/check.h"

namespace ektelo {

Partition::Partition(std::vector<uint32_t> group_of, std::size_t num_groups)
    : group_of_(std::move(group_of)), num_groups_(num_groups) {
  EK_CHECK_GT(num_groups_, 0u);
  for (uint32_t g : group_of_) EK_CHECK_LT(g, num_groups_);
}

Partition Partition::Identity(std::size_t n) {
  std::vector<uint32_t> g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = static_cast<uint32_t>(i);
  return Partition(std::move(g), n);
}

Partition Partition::FromIntervals(const std::vector<std::size_t>& cuts,
                                   std::size_t n) {
  EK_CHECK(!cuts.empty());
  EK_CHECK_EQ(cuts.front(), 0u);
  std::vector<uint32_t> g(n);
  std::size_t group = 0;
  for (std::size_t k = 0; k < cuts.size(); ++k) {
    const std::size_t start = cuts[k];
    const std::size_t end = (k + 1 < cuts.size()) ? cuts[k + 1] : n;
    EK_CHECK_LT(start, end);
    EK_CHECK_LE(end, n);
    for (std::size_t i = start; i < end; ++i)
      g[i] = static_cast<uint32_t>(group);
    ++group;
  }
  return Partition(std::move(g), group);
}

std::vector<std::vector<std::size_t>> Partition::Groups() const {
  std::vector<std::vector<std::size_t>> groups(num_groups_);
  for (std::size_t i = 0; i < group_of_.size(); ++i)
    groups[group_of_[i]].push_back(i);
  return groups;
}

std::vector<std::size_t> Partition::GroupSizes() const {
  std::vector<std::size_t> sizes(num_groups_, 0);
  for (uint32_t g : group_of_) ++sizes[g];
  return sizes;
}

CsrMatrix Partition::ReduceMatrix() const {
  std::vector<Triplet> t;
  t.reserve(group_of_.size());
  for (std::size_t j = 0; j < group_of_.size(); ++j)
    t.push_back({group_of_[j], j, 1.0});
  return CsrMatrix::FromTriplets(num_groups_, group_of_.size(), std::move(t));
}

LinOpPtr Partition::ReduceOp() const { return MakeSparse(ReduceMatrix()); }

CsrMatrix Partition::PseudoInverseMatrix() const {
  std::vector<std::size_t> sizes = GroupSizes();
  std::vector<Triplet> t;
  t.reserve(group_of_.size());
  for (std::size_t j = 0; j < group_of_.size(); ++j) {
    const uint32_t g = group_of_[j];
    EK_CHECK_GT(sizes[g], 0u);
    t.push_back({j, g, 1.0 / static_cast<double>(sizes[g])});
  }
  return CsrMatrix::FromTriplets(group_of_.size(), num_groups_, std::move(t));
}

LinOpPtr Partition::PseudoInverseOp() const {
  return MakeSparse(PseudoInverseMatrix());
}

}  // namespace ektelo
