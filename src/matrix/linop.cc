#include "matrix/linop.h"

#include <algorithm>
#include <cmath>
#include <typeinfo>

#include "matrix/rewrite.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ektelo {

namespace {
// Structural-hash tags of the operator classes defined in this file
// (every LinOp subclass mixes a distinct tag; see kTag* in the other
// operator translation units).
constexpr uint64_t kTagDense = 1;
constexpr uint64_t kTagSparse = 2;
constexpr uint64_t kTagGram = 3;
}  // namespace

Vec LinOp::Apply(const Vec& x) const {
  EK_CHECK_EQ(x.size(), cols());
  Vec y(rows());
  ApplyRaw(x.data(), y.data());
  return y;
}

Vec LinOp::ApplyT(const Vec& x) const {
  EK_CHECK_EQ(x.size(), rows());
  Vec y(cols());
  ApplyTRaw(x.data(), y.data());
  return y;
}

namespace {

// Shard grain for per-column fan-out: with no structural cost model for
// an arbitrary operator, approximate one apply as rows+cols work and
// keep at least ~16K units per chunk so tiny operators stay serial.
std::size_t ColumnGrain(std::size_t rows, std::size_t cols) {
  const std::size_t per_col = rows + cols + 1;
  return std::max<std::size_t>(1, std::size_t{1 << 14} / per_col);
}

}  // namespace

void LinOp::ApplyBlockRaw(const double* x, double* y, std::size_t k) const {
  // Fallback: k independent mat-vecs.  Columns are contiguous, so each
  // column is handed to the single-vector kernel directly; columns shard
  // across the pool (a column is computed by exactly one shard, so the
  // result is bitwise-identical at any thread count).
  ParallelFor(k, ColumnGrain(rows(), cols()),
              [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c)
      ApplyRaw(x + c * cols(), y + c * rows());
  });
}

void LinOp::ApplyTBlockRaw(const double* x, double* y, std::size_t k) const {
  ParallelFor(k, ColumnGrain(rows(), cols()),
              [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c)
      ApplyTRaw(x + c * rows(), y + c * cols());
  });
}

Block LinOp::ApplyBlock(const Block& x) const {
  EK_CHECK_EQ(x.rows(), cols());
  Block y(rows(), x.cols());
  ApplyBlockRaw(x.data(), y.data(), x.cols());
  return y;
}

Block LinOp::ApplyTBlock(const Block& x) const {
  EK_CHECK_EQ(x.rows(), rows());
  Block y(cols(), x.cols());
  ApplyTBlockRaw(x.data(), y.data(), x.cols());
  return y;
}

LinOpPtr LinOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(MaterializeSparse().Abs());
}

LinOpPtr LinOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(MaterializeSparse().Sqr());
}

LinOpPtr LinOp::SelfPtr() const {
  if (LinOpPtr self = weak_from_this().lock()) return self;
  return LinOpPtr(LinOpPtr{}, this);  // non-owning alias
}

LinOpPtr LinOp::Gram() const { return std::make_shared<GramOp>(SelfPtr()); }

CsrMatrix LinOp::MaterializeSparse() const {
  // Fallback: stream identity panels of bounded width through the blocked
  // apply.  Each panel is one blocked traversal of the operator instead of
  // kMaterializePanel scalar mat-vecs; exact zeros are dropped on assembly.
  //
  // Panels are independent, so they evaluate concurrently into per-panel
  // triplet buffers which are then concatenated in panel order — the
  // stream the counting-sort assembly sees is identical to the serial
  // one.  Panel geometry is fixed (kMaterializePanel), not derived from
  // the thread count, so each column's arithmetic never changes.
  const std::size_t n = cols();
  const std::size_t num_panels =
      (n + kMaterializePanel - 1) / kMaterializePanel;
  std::vector<std::vector<Triplet>> panel_triplets(num_panels);
  ParallelFor(num_panels, 1, [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t j0 = p * kMaterializePanel;
      const std::size_t k = std::min(kMaterializePanel, n - j0);
      Block panel = Block::IdentityPanel(n, j0, k);
      Block out(rows(), k);
      ApplyBlockRaw(panel.data(), out.data(), k);
      std::vector<Triplet>& t = panel_triplets[p];
      for (std::size_t c = 0; c < k; ++c) {
        const double* col = out.ColPtr(c);
        for (std::size_t i = 0; i < rows(); ++i)
          if (col[i] != 0.0) t.push_back({i, j0 + c, col[i]});
      }
    }
  });
  std::size_t nnz = 0;
  for (const auto& pt : panel_triplets) nnz += pt.size();
  std::vector<Triplet> t;
  t.reserve(nnz);
  for (const auto& pt : panel_triplets)
    t.insert(t.end(), pt.begin(), pt.end());
  // Panels emit column-grouped entries, so CSR assembly is a counting
  // sort — no comparison sort over the nnz.
  return CsrMatrix::FromColumnStream(rows(), cols(), t);
}

DenseMatrix LinOp::MaterializeDense() const {
  return MaterializeSparse().ToDense();
}

// Double-checked caching: the compute runs OUTSIDE the lock because
// Compute* implementations may re-enter the cached accessors — on the
// same object (RangeSetOp derives L2 from its own L1) or on children.
// Racing threads at worst compute the same deterministic value twice;
// the first store wins.

// On a per-instance miss the process-wide OperatorCache is consulted
// (keyed by structural hash, verified by StructuralEq) before computing:
// plans rebuild structurally identical strategies on every execution and
// per grid/stripe branch, and the computation is deterministic, so the
// first instance's value is bitwise-valid for all of them.  Gated on the
// rewrite toggle so EKTELO_REWRITE=0 reproduces the uncached behavior.

double LinOp::SensitivityL1() const {
  {
    std::lock_guard<std::mutex> lock(sens_mu_);
    if (sens_l1_) return *sens_l1_;
  }
  const auto compute = [this] { return ComputeSensitivityL1(); };
  const double v = RewriteEnabled()
                       ? OperatorCache::Global().Sensitivity(*this, 1, compute)
                       : compute();
  std::lock_guard<std::mutex> lock(sens_mu_);
  if (!sens_l1_) sens_l1_ = v;
  return *sens_l1_;
}

double LinOp::SensitivityL2() const {
  {
    std::lock_guard<std::mutex> lock(sens_mu_);
    if (sens_l2_) return *sens_l2_;
  }
  const auto compute = [this] { return ComputeSensitivityL2(); };
  const double v = RewriteEnabled()
                       ? OperatorCache::Global().Sensitivity(*this, 2, compute)
                       : compute();
  std::lock_guard<std::mutex> lock(sens_mu_);
  if (!sens_l2_) sens_l2_ = v;
  return *sens_l2_;
}

double LinOp::ComputeSensitivityL1() const {
  // max over columns of sum_i |a_ij| = max(Abs()^T * ones).
  LinOpPtr a = Abs();
  Vec ones(rows(), 1.0);
  Vec colsum = a->ApplyT(ones);
  return colsum.empty() ? 0.0
                        : *std::max_element(colsum.begin(), colsum.end());
}

double LinOp::ComputeSensitivityL2() const {
  LinOpPtr s = Sqr();
  Vec ones(rows(), 1.0);
  Vec colsum = s->ApplyT(ones);
  double m =
      colsum.empty() ? 0.0 : *std::max_element(colsum.begin(), colsum.end());
  return std::sqrt(m);
}

// ------------------------------------------------- structural identity

uint64_t LinOp::StructuralHash() const {
  uint64_t h = struct_hash_.load(std::memory_order_relaxed);
  if (h != 0) return h;
  h = ComputeStructuralHash();
  if (h == 0) h = 0x9e3779b97f4a7c15ull;  // reserve 0 as "unset"
  struct_hash_.store(h, std::memory_order_relaxed);
  return h;
}

uint64_t LinOp::ComputeStructuralHash() const {
  // Unknown subclass: unique per instance, so a memo cache can still
  // serve repeated queries against the *same* object but never conflates
  // two distinct ones.
  StructHash h = HashBase(typeid(*this).hash_code());
  h.Mix(reinterpret_cast<uintptr_t>(this));
  return h.Finish();
}

bool LinOp::StructuralEq(const LinOp& other) const { return this == &other; }

// ---------------------------------------------------------------- DenseOp

DenseOp::DenseOp(DenseMatrix m) : LinOp(m.rows(), m.cols()), m_(std::move(m)) {
  bool binary = true;
  for (double v : m_.data()) {
    if (v != 0.0 && v != 1.0) {
      binary = false;
      break;
    }
  }
  set_nonneg_binary(binary);
}

void DenseOp::ApplyRaw(const double* x, double* y) const { m_.Matvec(x, y); }
void DenseOp::ApplyTRaw(const double* x, double* y) const { m_.RmatVec(x, y); }

void DenseOp::ApplyBlockRaw(const double* x, double* y, std::size_t k) const {
  DenseMatmat(m_, x, y, k);
}

void DenseOp::ApplyTBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  DenseRmatMat(m_, x, y, k);
}

LinOpPtr DenseOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeDense(m_.Abs());
}

LinOpPtr DenseOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeDense(m_.Sqr());
}

LinOpPtr DenseOp::Gram() const {
  // For wide matrices (rows < cols) the composed form is both cheaper to
  // build (nothing to precompute) and cheaper per apply (2mn < n^2 flops),
  // so only precompute A^T A when the matrix is at least square-ish.
  if (rows() < cols()) return LinOp::Gram();
  return MakeDense(m_.Gram());
}

CsrMatrix DenseOp::MaterializeSparse() const {
  return CsrMatrix::FromDense(m_);
}

DenseMatrix DenseOp::MaterializeDense() const { return m_; }

double DenseOp::ComputeSensitivityL1() const { return m_.MaxColNormL1(); }
double DenseOp::ComputeSensitivityL2() const { return m_.MaxColNormL2(); }

uint64_t DenseOp::ComputeStructuralHash() const {
  return HashBase(kTagDense).MixDoubles(m_.data()).Finish();
}

bool DenseOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const DenseOp*>(&other);
  return o && EqBase(other) && BitwiseEq(m_.data(), o->m_.data());
}

std::string DenseOp::DebugName() const {
  return "Dense(" + std::to_string(rows()) + "x" + std::to_string(cols()) +
         ")";
}

// ---------------------------------------------------------------- SparseOp

SparseOp::SparseOp(CsrMatrix m)
    : LinOp(m.rows(), m.cols()), m_(std::move(m)) {
  bool binary = true;
  for (double v : m_.values()) {
    if (v != 1.0) {
      binary = false;
      break;
    }
  }
  set_nonneg_binary(binary);
}

void SparseOp::ApplyRaw(const double* x, double* y) const { m_.Matvec(x, y); }
void SparseOp::ApplyTRaw(const double* x, double* y) const {
  m_.RmatVec(x, y);
}

void SparseOp::ApplyBlockRaw(const double* x, double* y,
                             std::size_t k) const {
  CsrMatmat(m_, x, y, k);
}

void SparseOp::ApplyTBlockRaw(const double* x, double* y,
                              std::size_t k) const {
  CsrRmatMat(m_, x, y, k);
}

LinOpPtr SparseOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(m_.Abs());
}

LinOpPtr SparseOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(m_.Sqr());
}

LinOpPtr SparseOp::Gram() const {
  // A^T A can be catastrophically denser than A itself — one dense row
  // (e.g. a hierarchy's root) makes the Gram fully dense.  The update
  // count of the sparse matmul is exactly sum_i nnz(row_i)^2, so
  // materialize only when that stays within a small multiple of nnz(A)
  // and fall back to the composed matrix-free form (2 sweeps of A per
  // apply) otherwise.
  const double budget = 64.0 * static_cast<double>(m_.nnz() + cols() + 1);
  double work = 0.0;
  for (std::size_t i = 0; i < m_.rows() && work <= budget; ++i) {
    const double r =
        static_cast<double>(m_.indptr()[i + 1] - m_.indptr()[i]);
    work += r * r;
  }
  if (work > budget) return LinOp::Gram();
  return MakeSparse(m_.Transpose().Matmul(m_));
}

CsrMatrix SparseOp::MaterializeSparse() const { return m_; }

double SparseOp::ComputeSensitivityL1() const { return m_.MaxColNormL1(); }
double SparseOp::ComputeSensitivityL2() const { return m_.MaxColNormL2(); }

uint64_t SparseOp::ComputeStructuralHash() const {
  StructHash h = HashBase(kTagSparse);
  h.MixSizes(m_.indptr()).MixSizes(m_.indices()).MixDoubles(m_.values());
  return h.Finish();
}

bool SparseOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const SparseOp*>(&other);
  return o && EqBase(other) && m_.indptr() == o->m_.indptr() &&
         m_.indices() == o->m_.indices() &&
         BitwiseEq(m_.values(), o->m_.values());
}

std::string SparseOp::DebugName() const {
  return "Sparse(" + std::to_string(rows()) + "x" + std::to_string(cols()) +
         ",nnz=" + std::to_string(m_.nnz()) + ")";
}

// ------------------------------------------------------------------ GramOp

GramOp::GramOp(LinOpPtr child)
    : LinOp(child->cols(), child->cols()), child_(std::move(child)) {}

void GramOp::ApplyRaw(const double* x, double* y) const {
  Vec tmp(child_->rows());
  child_->ApplyRaw(x, tmp.data());
  child_->ApplyTRaw(tmp.data(), y);
}

void GramOp::ApplyTRaw(const double* x, double* y) const {
  ApplyRaw(x, y);  // symmetric
}

void GramOp::ApplyBlockRaw(const double* x, double* y, std::size_t k) const {
  Block tmp(child_->rows(), k);
  child_->ApplyBlockRaw(x, tmp.data(), k);
  child_->ApplyTBlockRaw(tmp.data(), y, k);
}

void GramOp::ApplyTBlockRaw(const double* x, double* y, std::size_t k) const {
  ApplyBlockRaw(x, y, k);
}

LinOpPtr GramOp::Gram() const {
  // (M^T M)^T (M^T M): keep it lazy; callers rarely need this.
  return std::make_shared<GramOp>(SelfPtr());
}

std::string GramOp::DebugName() const {
  return "Gram(" + child_->DebugName() + ")";
}

uint64_t GramOp::ComputeStructuralHash() const {
  return HashBase(kTagGram).Mix(child_->StructuralHash()).Finish();
}

bool GramOp::StructuralEq(const LinOp& other) const {
  auto* o = dynamic_cast<const GramOp*>(&other);
  return o && EqBase(other) && child_->StructuralEq(*o->child_);
}

LinOpPtr MakeDense(DenseMatrix m) {
  return std::make_shared<DenseOp>(std::move(m));
}
LinOpPtr MakeSparse(CsrMatrix m) {
  return std::make_shared<SparseOp>(std::move(m));
}

Vec RowOf(const LinOp& m, std::size_t i) {
  EK_CHECK_LT(i, m.rows());
  Vec e(m.rows(), 0.0);
  e[i] = 1.0;
  return m.ApplyT(e);
}

CsrMatrix GramSparse(const LinOp& m) {
  return m.Gram()->MaterializeSparse();
}

}  // namespace ektelo
