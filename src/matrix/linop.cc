#include "matrix/linop.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

Vec LinOp::Apply(const Vec& x) const {
  EK_CHECK_EQ(x.size(), cols());
  Vec y(rows());
  ApplyRaw(x.data(), y.data());
  return y;
}

Vec LinOp::ApplyT(const Vec& x) const {
  EK_CHECK_EQ(x.size(), rows());
  Vec y(cols());
  ApplyTRaw(x.data(), y.data());
  return y;
}

LinOpPtr LinOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(MaterializeSparse().Abs());
}

LinOpPtr LinOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(MaterializeSparse().Sqr());
}

CsrMatrix LinOp::MaterializeSparse() const {
  // Fallback: probe with basis vectors.  O(cols) mat-vecs; structured
  // subclasses override this with direct constructions.
  std::vector<Triplet> t;
  Vec e(cols(), 0.0), col(rows());
  for (std::size_t j = 0; j < cols(); ++j) {
    e[j] = 1.0;
    ApplyRaw(e.data(), col.data());
    e[j] = 0.0;
    for (std::size_t i = 0; i < rows(); ++i)
      if (col[i] != 0.0) t.push_back({i, j, col[i]});
  }
  return CsrMatrix::FromTriplets(rows(), cols(), std::move(t));
}

DenseMatrix LinOp::MaterializeDense() const {
  return MaterializeSparse().ToDense();
}

double LinOp::SensitivityL1() const {
  // max over columns of sum_i |a_ij| = max(Abs()^T * ones).
  LinOpPtr a = Abs();
  Vec ones(rows(), 1.0);
  Vec colsum = a->ApplyT(ones);
  return colsum.empty() ? 0.0
                        : *std::max_element(colsum.begin(), colsum.end());
}

double LinOp::SensitivityL2() const {
  LinOpPtr s = Sqr();
  Vec ones(rows(), 1.0);
  Vec colsum = s->ApplyT(ones);
  double m =
      colsum.empty() ? 0.0 : *std::max_element(colsum.begin(), colsum.end());
  return std::sqrt(m);
}

// ---------------------------------------------------------------- DenseOp

DenseOp::DenseOp(DenseMatrix m) : LinOp(m.rows(), m.cols()), m_(std::move(m)) {
  bool binary = true;
  for (double v : m_.data()) {
    if (v != 0.0 && v != 1.0) {
      binary = false;
      break;
    }
  }
  set_nonneg_binary(binary);
}

void DenseOp::ApplyRaw(const double* x, double* y) const { m_.Matvec(x, y); }
void DenseOp::ApplyTRaw(const double* x, double* y) const { m_.RmatVec(x, y); }

LinOpPtr DenseOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeDense(m_.Abs());
}

LinOpPtr DenseOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeDense(m_.Sqr());
}

CsrMatrix DenseOp::MaterializeSparse() const {
  return CsrMatrix::FromDense(m_);
}

double DenseOp::SensitivityL1() const { return m_.MaxColNormL1(); }
double DenseOp::SensitivityL2() const { return m_.MaxColNormL2(); }

std::string DenseOp::DebugName() const {
  return "Dense(" + std::to_string(rows()) + "x" + std::to_string(cols()) +
         ")";
}

// ---------------------------------------------------------------- SparseOp

SparseOp::SparseOp(CsrMatrix m)
    : LinOp(m.rows(), m.cols()), m_(std::move(m)) {
  bool binary = true;
  for (double v : m_.values()) {
    if (v != 1.0) {
      binary = false;
      break;
    }
  }
  set_nonneg_binary(binary);
}

void SparseOp::ApplyRaw(const double* x, double* y) const { m_.Matvec(x, y); }
void SparseOp::ApplyTRaw(const double* x, double* y) const {
  m_.RmatVec(x, y);
}

LinOpPtr SparseOp::Abs() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(m_.Abs());
}

LinOpPtr SparseOp::Sqr() const {
  if (is_nonneg_binary()) return shared_from_this();
  return MakeSparse(m_.Sqr());
}

CsrMatrix SparseOp::MaterializeSparse() const { return m_; }

double SparseOp::SensitivityL1() const { return m_.MaxColNormL1(); }
double SparseOp::SensitivityL2() const { return m_.MaxColNormL2(); }

std::string SparseOp::DebugName() const {
  return "Sparse(" + std::to_string(rows()) + "x" + std::to_string(cols()) +
         ",nnz=" + std::to_string(m_.nnz()) + ")";
}

LinOpPtr MakeDense(DenseMatrix m) {
  return std::make_shared<DenseOp>(std::move(m));
}
LinOpPtr MakeSparse(CsrMatrix m) {
  return std::make_shared<SparseOp>(std::move(m));
}

Vec RowOf(const LinOp& m, std::size_t i) {
  EK_CHECK_LT(i, m.rows());
  Vec e(m.rows(), 0.0);
  e[i] = 1.0;
  return m.ApplyT(e);
}

CsrMatrix GramSparse(const LinOp& m) {
  CsrMatrix s = m.MaterializeSparse();
  return s.Transpose().Matmul(s);
}

}  // namespace ektelo
