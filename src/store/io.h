// The durable-I/O seam: every raw open/read/write/flush/fsync/rename
// the artifact store and the budget ledger perform goes through these
// wrappers, each carrying a named failpoint site (util/failpoint.h).
// With no failpoints armed they are the underlying stdio/filesystem
// calls plus one relaxed atomic load; with a rule armed they inject
// short writes, EIO/ENOSPC errors, dropped fsyncs, or a simulated kill
// exactly at the named operation.
//
// Error reporting is by return value with errno left describing the
// failure (injected errors set errno to the injected code), matching
// the stdio contract the callers already handle.
#ifndef EKTELO_STORE_IO_H_
#define EKTELO_STORE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ektelo::store::io {

/// fopen with an injectable failure.
std::FILE* Open(const std::string& path, const char* mode, const char* site);

/// Reads exactly n bytes at the current position; false on short read,
/// I/O error, or injected error.
bool Read(std::FILE* f, void* buf, std::size_t n, const char* site);

/// Writes exactly n bytes; an injected short write lands floor(n/2)
/// bytes before failing (the torn-record case recovery must handle).
bool Write(std::FILE* f, const void* buf, std::size_t n, const char* site);

/// fflush; an injected failure reports without flushing (the bytes stay
/// in the stdio buffer — lost if the process dies before a later flush).
bool Flush(std::FILE* f, const char* site);

/// fsync(fileno(f)); an injected failure models a dropped fsync.  Always
/// succeeds (no-op) on platforms without fsync.
bool Fsync(std::FILE* f, const char* site);

/// Atomic rename; false leaves `from` in place.
bool Rename(const std::string& from, const std::string& to, const char* site);

/// Truncate/extend `path` to `size` bytes.
bool Resize(const std::string& path, uint64_t size, const char* site);

/// Write-whole-file-then-rename replace with per-step failpoints:
/// `<site_prefix>.open`, `.write`, `.flush`, `.rename`.  On any failure
/// the tmp file is removed and the destination is untouched.
bool AtomicWriteFile(const std::string& path, const std::vector<uint8_t>& bytes,
                     const char* site_prefix);

/// Slurp a file.  Failpoints `<site_prefix>.open` and `.read`; false on
/// absence or failure.
bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
                   const char* site_prefix);

}  // namespace ektelo::store::io

#endif  // EKTELO_STORE_IO_H_
