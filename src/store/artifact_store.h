// Persistent on-disk artifact store: the disk tier under OperatorCache.
//
// A DiskArtifactStore is a single directory holding two files:
//
//   artifacts.data    append-only record log.  Header {magic "EKDA",
//                     format_version, generation}, then framed records:
//                     {magic "EKRC", format_version, kind, hash_version,
//                     structural_hash, payload_len, payload_checksum,
//                     payload}.  Records are immutable once written;
//                     offsets never move except across a compaction,
//                     which bumps `generation`.
//
//   artifacts.index   checkpoint of the in-memory index: a mapping
//                     {format_version, hash_version, structural_hash,
//                     artifact_kind} -> {offset, length, last_use},
//                     plus the data-file generation and the number of
//                     data bytes it covers, whole-file checksummed and
//                     replaced atomically (tmp file + rename).
//
// The data log is the source of truth; the index is a checkpoint.  On
// open, a valid index for the current generation is loaded and only the
// data tail beyond its coverage is scanned (recovering write-behind
// appends that missed an index flush); a missing/corrupt/stale index
// triggers a full scan.  Scanning stops at the first torn or corrupt
// record and drops the tail *logically* (the append offset regresses to
// the last good record; this process's next append overwrites the torn
// bytes in place).  The file is never physically truncated on open, so
// a pure reader never mutates a log a live writer may still be
// appending to; a crash mid-append costs at most the trailing record.
//
// Eviction is byte-budgeted LRU over *live* (indexed) bytes: exceeding
// the budget drops least-recently-used entries from the index.  Dead
// bytes accumulate in the log until they exceed the live bytes, at which
// point the store compacts: live records are rewritten to a fresh log
// (new generation) behind a tmp-file + rename, so concurrent readers
// holding the old file keep a consistent view and readers holding a
// stale index are protected by the per-record magic/hash/checksum
// verification on every Get.
//
// Concurrency: a store object is thread-safe (one internal mutex).
// Across processes, writer exclusion is enforced by an exclusive-create
// `artifacts.lock` file (containing the owner pid): the first opener
// becomes the writer, every later opener attaches read-only (Gets are
// served off the log; Put/Flush/Compact no-op; stats().read_only
// reports it), so two processes sharing EKTELO_CACHE_DIR degrade
// safely instead of corrupting each other's appends.  A lock whose
// recorded owner is dead (crashed writer, or the leaked env-attached
// global tier of a finished process) is reclaimed on open (POSIX).
// The rename-based index/compaction protocol keeps concurrent readers
// consistent, and per-record verification protects any reader holding
// a stale index.
#ifndef EKTELO_STORE_ARTIFACT_STORE_H_
#define EKTELO_STORE_ARTIFACT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ektelo::store {

/// Logical identity of one cached artifact.  The kind discriminates what
/// the payload encodes (the OperatorCache's CacheKind values); the hash
/// is LinOp::StructuralHash under the hash_version the store was opened
/// with.
struct ArtifactKey {
  uint64_t hash = 0;
  uint32_t kind = 0;
};

struct DiskStoreOptions {
  /// Budget for live (indexed) record bytes; LRU entries beyond it are
  /// evicted.  0 means unbounded.
  std::size_t max_bytes = std::size_t{1} << 30;
  /// Per-kind live-byte quotas, {artifact kind, max bytes}.  A Put that
  /// pushes a kind past its quota evicts the LRU entries *of that kind*
  /// first, so a flood of one-shot artifacts of one kind (ad-hoc query
  /// materializations) can never evict another kind's hot entries (a
  /// dashboard's Grams) the way the global LRU budget alone would.
  /// Kinds without a quota are bounded only by max_bytes.
  std::vector<std::pair<uint32_t, std::size_t>> kind_quotas;
  /// Version of the structural-hash function the keys were computed
  /// under (kHashVersion).  Records written under any other value are
  /// invisible — a hash-algorithm change invalidates cleanly instead of
  /// serving wrong artifacts.
  uint64_t hash_version = 0;
  /// Flush the index checkpoint every this many Puts (and on close).
  std::size_t flush_every_puts = 32;
  /// Frequency-aware admission (TinyLFU-style doorkeeper): when a Put
  /// would force an eviction, the newcomer is admitted only if a
  /// count-min sketch of recent accesses estimates it hotter than the
  /// entry it would evict — one-shot artifacts stop churning out
  /// recurring ones once the store is full.  1 = on, 0 = off, -1
  /// (default) = follow EKTELO_CACHE_ADMISSION ("1" enables).
  int admission = -1;
};

class DiskArtifactStore {
 public:
  struct Stats {
    std::size_t entries = 0;     // live (indexed) records
    std::size_t live_bytes = 0;  // bytes of live records in the log
    std::size_t data_bytes = 0;  // total log size incl. dead records
    std::size_t gets = 0;
    std::size_t hits = 0;
    std::size_t puts = 0;
    std::size_t evictions = 0;
    std::size_t kind_evictions = 0;  // evictions forced by a kind quota
    std::size_t admission_rejects = 0;  // Puts refused by the doorkeeper
    std::size_t compactions = 0;
    std::size_t corrupt_drops = 0;  // records rejected by verification
    std::size_t io_errors = 0;      // device-level failures (post-open)
    /// True when another process holds the directory's writer lock: this
    /// store serves Gets off the log but Put/Flush/Compact are no-ops.
    bool read_only = false;
    /// Sticky memory-only degradation: a post-open I/O error on the data
    /// log (failed read, failed append, failed compaction) flips this;
    /// from then on Get/Put refuse immediately and no checkpoint or
    /// compaction touches the device again.  The tier above falls back
    /// to recomputation — correctness is never at stake, only warmth.
    bool degraded = false;
  };

  /// Opens (creating if needed) the store in `dir`.  Returns nullptr when
  /// the directory cannot be created or the files cannot be opened; an
  /// unreadable/garbage data file is replaced with a fresh empty log
  /// (the store is a cache — losing it is always safe).
  static std::unique_ptr<DiskArtifactStore> Open(const std::string& dir,
                                                 const DiskStoreOptions& opts);

  /// Flushes the index checkpoint.
  ~DiskArtifactStore();

  /// Reads the payload stored under `key`.  False on miss, on checksum /
  /// version / key mismatch (the entry is dropped), or on I/O error —
  /// never throws, never crashes on hostile file contents.
  bool Get(const ArtifactKey& key, std::vector<uint8_t>* payload);

  /// Appends a record for `key` (no-op if the key is already live) and
  /// applies the byte-budget LRU policy.  False on I/O failure or when
  /// the record alone exceeds the byte budget.
  bool Put(const ArtifactKey& key, const std::vector<uint8_t>& payload);

  /// Drops `key` from the index (the record bytes become dead until
  /// compaction).  Consumers call this when a checksum-valid payload
  /// fails typed decoding — a shape-guard reject or stale encoding —
  /// so the entry can be re-stored instead of blocking warm starts
  /// forever.  No-op on absent keys.
  void Drop(const ArtifactKey& key);

  /// Atomically rewrites the index checkpoint (tmp file + rename).
  void Flush();

  /// Rewrites the log keeping only live records (new generation) and
  /// flushes a fresh index.  Called automatically when dead bytes exceed
  /// live bytes; public for tests and maintenance.
  void Compact();

  Stats stats() const;
  const std::string& dir() const { return dir_; }

  DiskArtifactStore(const DiskArtifactStore&) = delete;
  DiskArtifactStore& operator=(const DiskArtifactStore&) = delete;

 private:
  DiskArtifactStore(std::string dir, const DiskStoreOptions& opts);
  struct Impl;
  std::string dir_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ektelo::store

#endif  // EKTELO_STORE_ARTIFACT_STORE_H_
