#include "store/write_behind.h"

#include <string>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ektelo::store {

namespace {
obs::Counter& DroppedSpills() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_store_write_behind_dropped",
      "Disk spills refused by the bounded write-behind queue");
  return c;
}
obs::Counter& EnqueuedSpills() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_store_write_behind_enqueued",
      "Disk spills accepted by the write-behind queue");
  return c;
}
}  // namespace

WriteBehindQueue::WriteBehindQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      consumer_([this] { ConsumerLoop(); }) {}

WriteBehindQueue::~WriteBehindQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  consumer_.join();  // the loop drains every queued job before exiting
}

bool WriteBehindQueue::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || jobs_.size() >= capacity_) {
      // The structured logger rate-limits per event name: the first
      // drop always logs (one line tells the operator the queue is
      // undersized, or shutdown raced a spill), sustained overflow logs
      // at most once per interval with a suppressed= count.  The
      // running total is in stats().dropped, the registry, and the
      // serve Stats protocol.
      obs::Log(obs::Severity::kWarn, "write_behind_drop",
               {{"reason", stopping_ ? "shutting_down" : "full"},
                {"queued", std::to_string(jobs_.size())},
                {"cap", std::to_string(capacity_)}});
      ++st_.dropped;
      DroppedSpills().Inc();
      return false;
    }
    jobs_.push_back(std::move(job));
    ++st_.enqueued;
    EnqueuedSpills().Inc();
  }
  work_cv_.notify_one();
  return true;
}

void WriteBehindQueue::Drain() {
  static obs::Histogram& drain_seconds = obs::Registry::Global().GetHistogram(
      "ektelo_store_write_behind_drain_seconds",
      "Wall time spent waiting for the write-behind queue to drain");
  obs::Span span("store.write_behind.drain", "store", &drain_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t target = st_.enqueued;
  drain_cv_.wait(lock, [&] { return st_.completed >= target; });
}

WriteBehindQueue::Stats WriteBehindQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return st_;
}

void WriteBehindQueue::ConsumerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
    if (jobs_.empty()) return;  // stopping and fully drained
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    lock.unlock();
    job();  // encode + append run outside the queue mutex
    lock.lock();
    ++st_.completed;
    drain_cv_.notify_all();
  }
}

}  // namespace ektelo::store
