#include "store/write_behind.h"

#include <cstdio>
#include <utility>

namespace ektelo::store {

WriteBehindQueue::WriteBehindQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      consumer_([this] { ConsumerLoop(); }) {}

WriteBehindQueue::~WriteBehindQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  consumer_.join();  // the loop drains every queued job before exiting
}

bool WriteBehindQueue::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || jobs_.size() >= capacity_) {
      // Rate-limited to the FIRST drop: one line tells the operator the
      // queue is undersized (or shutdown raced a spill) without letting
      // a sustained overflow flood stderr.  The running total is in
      // stats().dropped and the serve Stats protocol.
      if (st_.dropped == 0)
        std::fprintf(stderr,
                     "ektelo: write-behind queue %s; dropping disk spill "
                     "(further drops counted silently)\n",
                     stopping_ ? "shutting down" : "full");
      ++st_.dropped;
      return false;
    }
    jobs_.push_back(std::move(job));
    ++st_.enqueued;
  }
  work_cv_.notify_one();
  return true;
}

void WriteBehindQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t target = st_.enqueued;
  drain_cv_.wait(lock, [&] { return st_.completed >= target; });
}

WriteBehindQueue::Stats WriteBehindQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return st_;
}

void WriteBehindQueue::ConsumerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
    if (jobs_.empty()) return;  // stopping and fully drained
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    lock.unlock();
    job();  // encode + append run outside the queue mutex
    lock.lock();
    ++st_.completed;
    drain_cv_.notify_all();
  }
}

}  // namespace ektelo::store
