#include "store/serialize.h"

#include <cstring>

namespace ektelo::store {

uint64_t Checksum64(const uint8_t* data, std::size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Sizes(const std::vector<std::size_t>& vs) {
  for (std::size_t v : vs) U64(uint64_t(v));
}

bool ByteReader::U8(uint8_t* v) {
  if (!ok_ || end_ - p_ < 1) return Fail();
  *v = *p_++;
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  if (!ok_ || end_ - p_ < 4) return Fail();
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= uint32_t(p_[i]) << (8 * i);
  p_ += 4;
  *v = out;
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  if (!ok_ || end_ - p_ < 8) return Fail();
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= uint64_t(p_[i]) << (8 * i);
  p_ += 8;
  *v = out;
  return true;
}

bool ByteReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool ByteReader::Sizes(std::size_t count, std::vector<std::size_t>* vs) {
  if (!ok_ || remaining() / 8 < count) return Fail();
  vs->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    uint64_t v;
    if (!U64(&v)) return false;
    if (v > uint64_t(SIZE_MAX)) return Fail();  // narrower host size_t
    (*vs)[i] = std::size_t(v);
  }
  return true;
}

// ------------------------------------------------------------ typed codecs

void SerializeVec(const Vec& v, ByteWriter* w) {
  w->U64(v.size());
  w->F64s(v);
}

bool DeserializeVec(ByteReader* r, Vec* v) {
  uint64_t n;
  if (!r->U64(&n)) return false;
  if (r->remaining() / 8 < n) return false;
  return r->F64s(std::size_t(n), v);
}

void SerializeDense(const DenseMatrix& m, ByteWriter* w) {
  w->U64(m.rows());
  w->U64(m.cols());
  w->F64s(m.data());
}

bool DeserializeDense(ByteReader* r, DenseMatrix* m) {
  uint64_t rows, cols;
  if (!r->U64(&rows) || !r->U64(&cols)) return false;
  // Validate the element count against the bytes present before any
  // allocation, guarding both rows*cols overflow and allocation bombs.
  const uint64_t budget = r->remaining() / 8;
  if (rows != 0 && cols > budget / rows) return false;
  DenseMatrix out{std::size_t(rows), std::size_t(cols)};
  if (!r->F64s(out.data().size(), &out.data())) return false;
  *m = std::move(out);
  return true;
}

void SerializeCsr(const CsrMatrix& m, ByteWriter* w) {
  w->U64(m.rows());
  w->U64(m.cols());
  w->U64(m.nnz());
  w->Sizes(m.indptr());
  w->Sizes(m.indices());
  w->F64s(m.values());
}

bool DeserializeCsr(ByteReader* r, CsrMatrix* m) {
  uint64_t rows, cols, nnz;
  if (!r->U64(&rows) || !r->U64(&cols) || !r->U64(&nnz)) return false;
  // (rows + 1) + 2 * nnz 8-byte fields must be present.
  const uint64_t budget = r->remaining() / 8;
  if (rows >= budget || nnz > (budget - rows - 1) / 2) return false;
  std::vector<std::size_t> indptr, indices;
  AlignedVec values;
  if (!r->Sizes(std::size_t(rows) + 1, &indptr)) return false;
  if (!r->Sizes(std::size_t(nnz), &indices)) return false;
  if (!r->F64s(std::size_t(nnz), &values)) return false;
  // Structural invariants: monotone row pointers spanning exactly nnz,
  // column indices in range.  A payload that fails these is corrupt (or
  // adversarial) even if its framing length was consistent.
  if (indptr.front() != 0 || indptr.back() != nnz) return false;
  for (std::size_t i = 0; i + 1 < indptr.size(); ++i)
    if (indptr[i] > indptr[i + 1]) return false;
  for (std::size_t c : indices)
    if (c >= cols) return false;
  *m = CsrMatrix::FromRaw(std::size_t(rows), std::size_t(cols),
                          std::move(indptr), std::move(indices),
                          std::move(values));
  return true;
}

void SerializeScalar(double v, ByteWriter* w) { w->F64(v); }

bool DeserializeScalar(ByteReader* r, double* v) { return r->F64(v); }

}  // namespace ektelo::store
