// Versioned binary serialization for cached operator artifacts.
//
// The persistent artifact store (store/artifact_store.h) spills the
// OperatorCache's derived artifacts — materialized CSR matrices, dense
// matrices (including dense Grams), vectors and scalar sensitivity /
// norm-estimate entries — to disk so a fresh process can start warm.
// Byte layout is explicit and platform-independent:
//
//   * every integer is framed little-endian, byte by byte (no memcpy of
//     host-endian words), so a store written on any machine reads back on
//     any other;
//   * doubles are framed by IEEE-754 bit pattern (as a little-endian
//     uint64), so round-trips are bit-exact — NaN payloads, -0.0 and
//     denormals included, matching the BitwiseEq relation the
//     OperatorCache is defined over;
//   * index-type payloads (CSR indptr/indices, shapes) are framed as
//     uint64 regardless of the host std::size_t width;
//   * kFormatVersion stamps every record; a layout change bumps it and
//     cleanly invalidates old stores instead of misreading them.
//
// Deserializers are defensive: every read is bounds-checked against the
// buffer, allocation sizes are validated against the bytes actually
// present before resizing, and structural invariants (CSR row pointers
// monotone, column indices in range) are verified — a truncated or
// corrupted payload yields `false`, never a crash or an aborted CHECK.
// Whole-record integrity (bit flips that keep the structure plausible)
// is the store framing's job via Checksum64.
#ifndef EKTELO_STORE_SERIALIZE_H_
#define EKTELO_STORE_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/vec.h"

namespace ektelo::store {

/// Bumped whenever the byte layout of any payload or frame changes.
/// Stores written under a different format version are rejected on open
/// (and individual records on read), never reinterpreted.
inline constexpr uint32_t kFormatVersion = 1;

/// 64-bit FNV-1a over a byte range: the per-record integrity checksum.
/// Not cryptographic — it guards against torn writes, truncation and
/// random corruption, not an adversary with write access to the cache
/// directory (who could equally replace the whole store).
uint64_t Checksum64(const uint8_t* data, std::size_t n);
inline uint64_t Checksum64(const std::vector<uint8_t>& bytes) {
  return Checksum64(bytes.data(), bytes.size());
}

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(uint8_t(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(uint8_t(v >> (8 * i)));
  }
  void F64(double v);
  /// Accepts any std::vector<double, Alloc> (plain or AlignedVec).
  template <typename Alloc>
  void F64s(const std::vector<double, Alloc>& vs) {
    for (double v : vs) F64(v);
  }
  /// Frames each element as a uint64 (host std::size_t may be narrower).
  void Sizes(const std::vector<std::size_t>& vs);
  /// Appends raw bytes verbatim (already-framed sub-buffers).
  void Raw(const uint8_t* data, std::size_t n) {
    out_.insert(out_.end(), data, data + n);
  }

  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

/// Bounds-checked little-endian reader over a borrowed byte range.  All
/// getters return false (and poison the reader) on underflow; `ok()`
/// reports whether every read so far succeeded.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, std::size_t n) : p_(data), end_(data + n) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool F64(double* v);
  /// Reads `count` doubles; fails without allocating when the buffer
  /// cannot possibly hold them.  Accepts any std::vector<double, Alloc>.
  template <typename Alloc>
  bool F64s(std::size_t count, std::vector<double, Alloc>* vs) {
    if (!ok() || remaining() / 8 < count) return Fail();
    vs->resize(count);
    for (std::size_t i = 0; i < count; ++i)
      if (!F64(&(*vs)[i])) return false;
    return true;
  }
  bool Sizes(std::size_t count, std::vector<std::size_t>* vs);

  std::size_t remaining() const { return std::size_t(end_ - p_); }
  bool ok() const { return ok_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

// ------------------------------------------------------------ typed codecs
//
// Each Serialize* appends a self-delimiting payload; the matching
// Deserialize* consumes exactly that payload and reports false on any
// truncation, allocation-bomb size, or structural violation.  Round-trips
// are bit-exact: Serialize(Deserialize(Serialize(x))) == Serialize(x).

void SerializeVec(const Vec& v, ByteWriter* w);
bool DeserializeVec(ByteReader* r, Vec* v);

void SerializeDense(const DenseMatrix& m, ByteWriter* w);
bool DeserializeDense(ByteReader* r, DenseMatrix* m);

/// CSR arrays are framed verbatim (indptr, indices, values), so the
/// reconstructed matrix is field-for-field identical — no triplet
/// round-trip, no re-sorting, no duplicate merging.
void SerializeCsr(const CsrMatrix& m, ByteWriter* w);
bool DeserializeCsr(ByteReader* r, CsrMatrix* m);

void SerializeScalar(double v, ByteWriter* w);
bool DeserializeScalar(ByteReader* r, double* v);

}  // namespace ektelo::store

#endif  // EKTELO_STORE_SERIALIZE_H_
