#include "store/tree_codec.h"

#include <cstdint>
#include <vector>

#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"

namespace ektelo::store {

namespace {

// One byte per node kind.  Append-only: a removed operator kind retires
// its tag, it is never reused — decoders reject unknown tags, and the
// surrounding store record already embeds kFormatVersion + kHashVersion.
enum NodeTag : uint8_t {
  kTagDense = 1,
  kTagSparse = 2,
  kTagIdentity = 3,
  kTagOnes = 4,
  kTagPrefix = 5,
  kTagSuffix = 6,
  kTagWavelet = 7,
  kTagRangeSet = 8,
  kTagRectangleSet = 9,
  kTagTranspose = 10,
  kTagScale = 11,
  kTagRowWeight = 12,
  kTagProduct = 13,
  kTagKronecker = 14,
  kTagVStack = 15,
  kTagHStack = 16,
  kTagSum = 17,
  kTagGram = 18,
};

// Canonical trees are shallow (stack merging flattens them), so a deep
// nest signals a runaway or hostile payload; the bound also keeps the
// recursive decoder stack-safe.
constexpr std::size_t kMaxDepth = 64;
// Allocation backstop for corrupt child counts.
constexpr std::size_t kMaxNodes = std::size_t{1} << 20;

bool EncodeNode(const LinOp& op, std::size_t depth, ByteWriter* w) {
  if (depth > kMaxDepth) return false;

  if (auto* d = dynamic_cast<const DenseOp*>(&op)) {
    w->U8(kTagDense);
    SerializeDense(d->dense(), w);
    return true;
  }
  if (auto* s = dynamic_cast<const SparseOp*>(&op)) {
    w->U8(kTagSparse);
    SerializeCsr(s->csr(), w);
    return true;
  }
  if (dynamic_cast<const IdentityOp*>(&op) != nullptr) {
    w->U8(kTagIdentity);
    w->U64(op.rows());
    return true;
  }
  if (dynamic_cast<const OnesOp*>(&op) != nullptr) {
    w->U8(kTagOnes);
    w->U64(op.rows());
    w->U64(op.cols());
    return true;
  }
  if (dynamic_cast<const PrefixOp*>(&op) != nullptr) {
    w->U8(kTagPrefix);
    w->U64(op.rows());
    return true;
  }
  if (dynamic_cast<const SuffixOp*>(&op) != nullptr) {
    w->U8(kTagSuffix);
    w->U64(op.rows());
    return true;
  }
  if (dynamic_cast<const WaveletOp*>(&op) != nullptr) {
    w->U8(kTagWavelet);
    w->U64(op.rows());
    return true;
  }
  if (auto* r = dynamic_cast<const RangeSetOp*>(&op)) {
    w->U8(kTagRangeSet);
    w->U64(op.cols());
    w->U64(r->ranges().size());
    for (const Interval& iv : r->ranges()) {
      w->U64(iv.lo);
      w->U64(iv.hi);
    }
    return true;
  }
  if (auto* r = dynamic_cast<const RectangleSetOp*>(&op)) {
    w->U8(kTagRectangleSet);
    w->U64(r->nx());
    w->U64(r->ny());
    w->U64(r->rects().size());
    for (const Rectangle& rc : r->rects()) {
      w->U64(rc.x_lo);
      w->U64(rc.x_hi);
      w->U64(rc.y_lo);
      w->U64(rc.y_hi);
    }
    return true;
  }
  if (auto* t = dynamic_cast<const TransposeOp*>(&op)) {
    w->U8(kTagTranspose);
    return EncodeNode(*t->child(), depth + 1, w);
  }
  if (auto* s = dynamic_cast<const ScaleOp*>(&op)) {
    w->U8(kTagScale);
    w->F64(s->scale());
    return EncodeNode(*s->child(), depth + 1, w);
  }
  if (auto* rw = dynamic_cast<const RowWeightOp*>(&op)) {
    w->U8(kTagRowWeight);
    SerializeVec(rw->weights(), w);
    return EncodeNode(*rw->child(), depth + 1, w);
  }
  if (auto* p = dynamic_cast<const ProductOp*>(&op)) {
    w->U8(kTagProduct);
    // The binary flag is a constructor *hint* for ProductOp (it cannot
    // re-derive it from the factors), so it rides in the payload.
    w->U8(op.is_nonneg_binary() ? 1 : 0);
    return EncodeNode(*p->a(), depth + 1, w) &&
           EncodeNode(*p->b(), depth + 1, w);
  }
  if (auto* k = dynamic_cast<const KroneckerOp*>(&op)) {
    w->U8(kTagKronecker);
    return EncodeNode(*k->a(), depth + 1, w) &&
           EncodeNode(*k->b(), depth + 1, w);
  }
  if (auto* g = dynamic_cast<const GramOp*>(&op)) {
    w->U8(kTagGram);
    return EncodeNode(*g->child(), depth + 1, w);
  }
  const std::vector<LinOpPtr>* children = nullptr;
  uint8_t tag = 0;
  if (auto* v = dynamic_cast<const VStackOp*>(&op)) {
    children = &v->children();
    tag = kTagVStack;
  } else if (auto* h = dynamic_cast<const HStackOp*>(&op)) {
    children = &h->children();
    tag = kTagHStack;
  } else if (auto* sm = dynamic_cast<const SumOp*>(&op)) {
    children = &sm->children();
    tag = kTagSum;
  }
  if (children != nullptr) {
    w->U8(tag);
    w->U64(children->size());
    for (const LinOpPtr& c : *children)
      if (!EncodeNode(*c, depth + 1, w)) return false;
    return true;
  }
  return false;  // unknown subclass: fail closed
}

bool IsPow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

LinOpPtr DecodeNode(ByteReader* r, std::size_t depth, std::size_t* nodes) {
  if (depth > kMaxDepth || ++*nodes > kMaxNodes) return nullptr;
  uint8_t tag;
  if (!r->U8(&tag)) return nullptr;

  switch (tag) {
    case kTagDense: {
      DenseMatrix m;
      if (!DeserializeDense(r, &m)) return nullptr;
      return MakeDense(std::move(m));
    }
    case kTagSparse: {
      CsrMatrix m;
      if (!DeserializeCsr(r, &m)) return nullptr;
      return MakeSparse(std::move(m));
    }
    case kTagIdentity: {
      uint64_t n;
      if (!r->U64(&n) || n > kMaxNodes * std::size_t{4096}) return nullptr;
      return MakeIdentityOp(std::size_t(n));
    }
    case kTagOnes: {
      uint64_t m, n;
      if (!r->U64(&m) || !r->U64(&n)) return nullptr;
      return MakeOnesOp(std::size_t(m), std::size_t(n));
    }
    case kTagPrefix: {
      uint64_t n;
      if (!r->U64(&n)) return nullptr;
      return MakePrefixOp(std::size_t(n));
    }
    case kTagSuffix: {
      uint64_t n;
      if (!r->U64(&n)) return nullptr;
      return MakeSuffixOp(std::size_t(n));
    }
    case kTagWavelet: {
      uint64_t n;
      if (!r->U64(&n) || !IsPow2(std::size_t(n))) return nullptr;
      return MakeWaveletOp(std::size_t(n));
    }
    case kTagRangeSet: {
      uint64_t n, count;
      if (!r->U64(&n) || !r->U64(&count) || r->remaining() / 16 < count)
        return nullptr;
      std::vector<Interval> ranges;
      ranges.reserve(std::size_t(count));
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t lo, hi;
        if (!r->U64(&lo) || !r->U64(&hi) || lo > hi || hi >= n)
          return nullptr;
        ranges.push_back({std::size_t(lo), std::size_t(hi)});
      }
      return MakeRangeSetOp(std::move(ranges), std::size_t(n));
    }
    case kTagRectangleSet: {
      uint64_t nx, ny, count;
      if (!r->U64(&nx) || !r->U64(&ny) || !r->U64(&count) || nx == 0 ||
          ny == 0 || r->remaining() / 32 < count)
        return nullptr;
      std::vector<Rectangle> rects;
      rects.reserve(std::size_t(count));
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t xl, xh, yl, yh;
        if (!r->U64(&xl) || !r->U64(&xh) || !r->U64(&yl) || !r->U64(&yh) ||
            xl > xh || xh >= nx || yl > yh || yh >= ny)
          return nullptr;
        rects.push_back({std::size_t(xl), std::size_t(xh), std::size_t(yl),
                         std::size_t(yh)});
      }
      return MakeRectangleSetOp(std::move(rects), std::size_t(nx),
                                std::size_t(ny));
    }
    case kTagTranspose: {
      LinOpPtr c = DecodeNode(r, depth + 1, nodes);
      if (!c) return nullptr;
      return MakeTranspose(std::move(c));
    }
    case kTagScale: {
      double s;
      if (!r->F64(&s)) return nullptr;
      LinOpPtr c = DecodeNode(r, depth + 1, nodes);
      if (!c) return nullptr;
      return MakeScaled(std::move(c), s);
    }
    case kTagRowWeight: {
      Vec w;
      if (!DeserializeVec(r, &w)) return nullptr;
      LinOpPtr c = DecodeNode(r, depth + 1, nodes);
      if (!c || w.size() != c->rows()) return nullptr;
      return MakeRowWeight(std::move(c), std::move(w));
    }
    case kTagProduct: {
      uint8_t binary;
      if (!r->U8(&binary) || binary > 1) return nullptr;
      LinOpPtr a = DecodeNode(r, depth + 1, nodes);
      if (!a) return nullptr;
      LinOpPtr b = DecodeNode(r, depth + 1, nodes);
      if (!b || a->cols() != b->rows()) return nullptr;
      return MakeProduct(std::move(a), std::move(b), binary == 1);
    }
    case kTagKronecker: {
      LinOpPtr a = DecodeNode(r, depth + 1, nodes);
      if (!a) return nullptr;
      LinOpPtr b = DecodeNode(r, depth + 1, nodes);
      if (!b) return nullptr;
      return MakeKronecker(std::move(a), std::move(b));
    }
    case kTagGram: {
      LinOpPtr c = DecodeNode(r, depth + 1, nodes);
      if (!c) return nullptr;
      return c->Gram();
    }
    case kTagVStack:
    case kTagHStack:
    case kTagSum: {
      uint64_t count;
      if (!r->U64(&count) || count == 0 || count > kMaxNodes) return nullptr;
      std::vector<LinOpPtr> cs;
      cs.reserve(std::size_t(count));
      for (uint64_t i = 0; i < count; ++i) {
        LinOpPtr c = DecodeNode(r, depth + 1, nodes);
        if (!c) return nullptr;
        // Enforce the stack constructors' shape invariants here so a
        // corrupt payload fails the decode instead of an EK_CHECK abort.
        if (!cs.empty()) {
          const bool same_cols = c->cols() == cs[0]->cols();
          const bool same_rows = c->rows() == cs[0]->rows();
          if (tag == kTagVStack && !same_cols) return nullptr;
          if (tag == kTagHStack && !same_rows) return nullptr;
          if (tag == kTagSum && (!same_rows || !same_cols)) return nullptr;
        }
        cs.push_back(std::move(c));
      }
      if (tag == kTagVStack) return MakeVStack(std::move(cs));
      if (tag == kTagHStack) return MakeHStack(std::move(cs));
      return MakeSum(std::move(cs));
    }
    default:
      return nullptr;
  }
}

}  // namespace

bool EncodeLinOpTree(const LinOp& op, ByteWriter* w) {
  // Hash stability is the codec's persistence contract: an unknown kind
  // would also fail EncodeNode, but checking up front is cheaper.
  if (!op.HashProcessStable()) return false;
  w->U64(op.StructuralHash());
  return EncodeNode(op, 0, w);
}

LinOpPtr DecodeLinOpTree(ByteReader* r) {
  uint64_t want_hash;
  if (!r->U64(&want_hash)) return nullptr;
  std::size_t nodes = 0;
  LinOpPtr op = DecodeNode(r, 0, &nodes);
  if (!op || op->StructuralHash() != want_hash) return nullptr;
  return op;
}

}  // namespace ektelo::store
