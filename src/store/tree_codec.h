// Tag+payload serialization of canonical operator trees.
//
// The rewrite search (matrix/search.h) spends real time choosing a
// canonical tree; this codec makes the winner durable so a warm process
// loads it from the artifact store instead of re-searching.  Every
// built-in operator kind gets a one-byte tag and a self-delimiting
// payload; combinators recurse over their children.  The encoding is
// deterministic and bit-exact (doubles by IEEE bit pattern, via the
// store/serialize.h primitives), so encode → decode → encode reproduces
// identical bytes.
//
// Integrity: the root's StructuralHash is written ahead of the tree, and
// DecodeLinOpTree recomputes the hash of the reconstructed tree and
// rejects a mismatch — a checksum-valid but stale or corrupt payload
// (or any drift in a constructor's derived flags) yields nullptr rather
// than a wrong operator.  Since the structural hash function itself is
// versioned by kHashVersion, which the artifact store embeds in every
// record key, hash-scheme changes invalidate persisted trees cleanly.
//
// Unknown LinOp subclasses cannot be encoded (EncodeLinOpTree returns
// false, failing closed) — the same contract as HashProcessStable().
#ifndef EKTELO_STORE_TREE_CODEC_H_
#define EKTELO_STORE_TREE_CODEC_H_

#include "matrix/linop.h"
#include "store/serialize.h"

namespace ektelo::store {

/// Appends the tree (root structural hash + tagged nodes) to `w`.
/// Returns false — leaving `w` in an unspecified, must-discard state —
/// when the tree contains an operator kind the codec does not know or
/// nests deeper than the codec's depth bound.
bool EncodeLinOpTree(const LinOp& op, ByteWriter* w);

/// Reconstructs a tree previously written by EncodeLinOpTree.  Returns
/// nullptr on any truncation, malformed payload, constructor-invariant
/// violation (e.g. a non-power-of-two Wavelet size), or root-hash
/// mismatch.  Never aborts on corrupt input.
LinOpPtr DecodeLinOpTree(ByteReader* r);

}  // namespace ektelo::store

#endif  // EKTELO_STORE_TREE_CODEC_H_
