#include "store/artifact_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#ifndef _WIN32
#include <signal.h>
#include <unistd.h>
#endif

#include "obs/log.h"
#include "obs/metrics.h"
#include "store/io.h"
#include "store/serialize.h"

namespace ektelo::store {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kDataMagic = 0x41444B45u;    // "EKDA" little-endian
constexpr uint32_t kRecordMagic = 0x43524B45u;  // "EKRC"
constexpr uint32_t kIndexMagic = 0x58494B45u;   // "EKIX"

constexpr std::size_t kDataHeaderBytes = 16;   // magic, version, generation
constexpr std::size_t kRecordHeaderBytes = 48;
// Compaction trigger floor: don't bother rewriting tiny logs.
constexpr uint64_t kCompactMinBytes = uint64_t{1} << 20;

struct RecordHeader {
  uint32_t kind = 0;
  uint64_t hash_version = 0;
  uint64_t hash = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
};

void WriteRecordHeader(const RecordHeader& h, ByteWriter* w) {
  w->U32(kRecordMagic);
  w->U32(kFormatVersion);
  w->U32(h.kind);
  w->U32(0);  // reserved
  w->U64(h.hash_version);
  w->U64(h.hash);
  w->U64(h.payload_len);
  w->U64(h.checksum);
}

/// Parses and validates the fixed fields; false on bad magic/version.
bool ReadRecordHeader(ByteReader* r, RecordHeader* h) {
  uint32_t magic, version, reserved;
  if (!r->U32(&magic) || !r->U32(&version) || !r->U32(&h->kind) ||
      !r->U32(&reserved) || !r->U64(&h->hash_version) || !r->U64(&h->hash) ||
      !r->U64(&h->payload_len) || !r->U64(&h->checksum))
    return false;
  return magic == kRecordMagic && version == kFormatVersion;
}

struct MapKey {
  uint64_t hash;
  uint32_t kind;
  bool operator==(const MapKey& o) const {
    return hash == o.hash && kind == o.kind;
  }
};

struct MapKeyHash {
  std::size_t operator()(const MapKey& k) const {
    uint64_t z = k.hash + 0x9e3779b97f4a7c15ull * (k.kind + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return std::size_t(z ^ (z >> 31));
  }
};

struct IndexEntry {
  uint64_t offset = 0;  // of the record header in the data file
  uint64_t length = 0;  // header + payload
  uint64_t last_use = 0;
  // Position in the recency list (front = most recent), so touch and
  // evict are O(1) instead of a full-index min scan per eviction.
  std::list<MapKey>::iterator lru_it;
};

}  // namespace

struct DiskArtifactStore::Impl {
  DiskStoreOptions opts;
  std::string data_path, index_path;

  mutable std::mutex mu;
  std::FILE* f = nullptr;  // data file, "r+b"; guarded by mu
  // True when this process holds the directory's writer lock.  Readers
  // (lock already held elsewhere) never append, never rewrite the index
  // checkpoint and never compact — they only serve Gets off the log.
  bool writer = false;
  std::string lock_path;
  uint64_t generation = 1;
  uint64_t clock = 0;
  uint64_t append_off = kDataHeaderBytes;
  std::size_t live_bytes = 0;
  // Live bytes per artifact kind, maintained by IndexInsert/DropEntry;
  // only consulted for kinds that carry a quota.
  std::unordered_map<uint32_t, std::size_t> kind_bytes;
  std::unordered_map<uint32_t, std::size_t> kind_quota;
  std::unordered_map<MapKey, IndexEntry, MapKeyHash> index;
  std::list<MapKey> lru;  // front = most recently used
  std::size_t puts_since_flush = 0;
  Stats st;
  bool open_ok = false;
  // Sticky memory-only degradation: a post-open I/O error on the data
  // log flips it, after which Get/Put refuse fast, checkpoints and
  // compaction stop, and the OperatorCache above simply computes as if
  // no disk tier existed.  A cache may always be abandoned; what it may
  // never do is take the process down or serve a wrong byte.
  bool degraded = false;

  /// Counts an I/O error and, when `sticky`, trips the degraded state.
  /// The degradation transition (once per store lifetime) goes through
  /// the structured log — it is the one store event an operator must
  /// see — and flips the registry gauge the Prometheus endpoint exports.
  void IoError(bool sticky) {
    static obs::Counter& io_errors = obs::Registry::Global().GetCounter(
        "ektelo_store_io_errors", "Disk-tier I/O errors observed");
    io_errors.Inc();
    ++st.io_errors;
    if (sticky && !degraded) {
      degraded = true;
      DegradedGauge().Set(1.0);
      obs::Log(obs::Severity::kError, "store_degraded",
               {{"data_path", data_path},
                {"io_errors", std::to_string(st.io_errors)},
                {"action", "memory_only"}});
    }
  }

  static obs::Gauge& DegradedGauge() {
    static obs::Gauge& g = obs::Registry::Global().GetGauge(
        "ektelo_store_degraded",
        "1 when the disk tier has tripped into sticky memory-only mode");
    return g;
  }

  // ---- index maintenance (mu held) ----

  /// Inserts (or replaces) an entry and puts it at the recency front.
  void IndexInsert(const MapKey& k, uint64_t offset, uint64_t length,
                   uint64_t last_use) {
    auto it = index.find(k);
    if (it != index.end()) {
      live_bytes -= std::size_t(it->second.length);
      kind_bytes[k.kind] -= std::size_t(it->second.length);
      lru.erase(it->second.lru_it);
      index.erase(it);
    }
    lru.push_front(k);
    index[k] = {offset, length, last_use, lru.begin()};
    live_bytes += std::size_t(length);
    kind_bytes[k.kind] += std::size_t(length);
  }

  void Touch(
      std::unordered_map<MapKey, IndexEntry, MapKeyHash>::iterator it) {
    it->second.last_use = ++clock;
    lru.splice(lru.begin(), lru, it->second.lru_it);
  }

  void ClearIndex() {
    index.clear();
    lru.clear();
    live_bytes = 0;
    kind_bytes.clear();
  }

  // ---- frequency-aware admission (TinyLFU-style; mu held) ----
  //
  // A 4-row count-min sketch of 4-bit saturating counters estimates how
  // often each key has been asked for recently; periodic halving ages
  // the estimates so yesterday's hot keys decay.  When a Put would force
  // an eviction, the newcomer must estimate strictly hotter than the
  // would-be victim — a stream of one-shot artifacts (each seen exactly
  // once) can then never churn out entries that keep getting hits.

  bool admission = false;
  static constexpr std::size_t kSketchWidth = std::size_t{1} << 14;
  static constexpr int kSketchRows = 4;
  static constexpr uint64_t kSketchSample = 10 * kSketchWidth;
  std::vector<uint8_t> sketch;  // rows x width, allocated on first touch
  uint64_t sketch_touches = 0;

  static std::size_t SketchSlot(const MapKey& k, int row) {
    uint64_t z = k.hash ^ (uint64_t(k.kind) + 1) * 0x9e3779b97f4a7c15ull;
    z += uint64_t(row + 1) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return std::size_t(z ^ (z >> 31)) & (kSketchWidth - 1);
  }

  void SketchTouch(const MapKey& k) {
    if (!admission) return;
    if (sketch.empty()) sketch.assign(kSketchRows * kSketchWidth, 0);
    for (int row = 0; row < kSketchRows; ++row) {
      uint8_t& c = sketch[std::size_t(row) * kSketchWidth + SketchSlot(k, row)];
      if (c < 15) ++c;
    }
    if (++sketch_touches >= kSketchSample) {
      for (uint8_t& c : sketch) c >>= 1;
      sketch_touches /= 2;
    }
  }

  uint8_t SketchEstimate(const MapKey& k) const {
    if (sketch.empty()) return 0;
    uint8_t m = 15;
    for (int row = 0; row < kSketchRows; ++row)
      m = std::min(
          m, sketch[std::size_t(row) * kSketchWidth + SketchSlot(k, row)]);
    return m;
  }

  /// The entry a Put of `len` bytes under `kind` would evict, or nullptr
  /// when the store still has room (no eviction, nothing to defend).
  const MapKey* AdmissionVictim(uint32_t kind, uint64_t len) {
    if (lru.empty()) return nullptr;
    if (opts.max_bytes != 0 && live_bytes + len > opts.max_bytes)
      return &lru.back();
    const auto q = kind_quota.find(kind);
    if (q != kind_quota.end() && q->second != 0 &&
        kind_bytes[kind] + len > q->second)
      for (auto it = std::prev(lru.end());; --it) {
        if (it->kind == kind) return &*it;
        if (it == lru.begin()) break;
      }
    return nullptr;
  }

  ~Impl() {
    if (f) std::fclose(f);
  }

  /// Exclusive-create of the writer lock file (containing this pid).
  /// On contention, a POSIX host checks whether the recorded owner is
  /// still alive and reclaims a stale lock from a crashed writer (e.g.
  /// the leaked env-attached Global tier of a finished process); a live
  /// owner means this open degrades to read-only.  The check-then-create
  /// has a narrow race two simultaneously reclaiming processes could
  /// both win — the same unsupported two-writer case a crashed-writer
  /// directory was already in, and per-record verification keeps wrong
  /// data from ever being served.
  bool AcquireWriterLock() {
#ifdef _WIN32
    // No portable liveness check for the recorded owner here, and the
    // env-attached global tier leaks (its destructor never removes the
    // lock) — an unreclaimable lock would permanently brick the store
    // read-only after the first run.  Skip the exclusion on Windows:
    // single-writer discipline is the deployment's responsibility there,
    // exactly the pre-lock contract.
    return true;
#else
    std::FILE* lf = std::fopen(lock_path.c_str(), "wx");
    if (!lf) {
      if (std::FILE* old = std::fopen(lock_path.c_str(), "rb")) {
        long pid = 0;
        const int fields = std::fscanf(old, "%ld", &pid);
        std::fclose(old);
        const bool stale = fields == 1 && pid > 0 &&
                           kill(pid_t(pid), 0) != 0 && errno == ESRCH;
        if (stale) {
          std::remove(lock_path.c_str());
          lf = std::fopen(lock_path.c_str(), "wx");
        }
      }
    }
    if (!lf) return false;
    std::fprintf(lf, "%ld\n", long(getpid()));
    std::fflush(lf);
    std::fclose(lf);
    return true;
#endif
  }

  // ---- data-file helpers (mu held) ----

  // 64-bit-clean absolute seek (plain fseek takes long, which is 32-bit
  // on some platforms and would silently wrap past 2 GiB).
  static bool SeekTo(std::FILE* file, uint64_t off) {
#if defined(_WIN32)
    return _fseeki64(file, int64_t(off), SEEK_SET) == 0;
#else
    return fseeko(file, off_t(off), SEEK_SET) == 0;
#endif
  }

  bool ReadAt(uint64_t off, std::size_t n, std::vector<uint8_t>* out) {
    if (!f) return false;
    out->resize(n);
    if (!SeekTo(f, off)) return false;
    return io::Read(f, out->data(), n, "store.data.read");
  }

  bool WriteAt(uint64_t off, const std::vector<uint8_t>& bytes) {
    if (!f) return false;
    if (!SeekTo(f, off)) return false;
    if (!io::Write(f, bytes.data(), bytes.size(), "store.data.append"))
      return false;
    return io::Flush(f, "store.data.flush");
  }

  uint64_t FileSize() {
    std::error_code ec;
    const auto n = fs::file_size(data_path, ec);
    return ec ? 0 : uint64_t(n);
  }

  /// Creates a fresh data file containing only the header (atomically)
  /// and (re)opens the read/write handle on it.
  bool ResetDataFile(uint64_t gen) {
    ByteWriter w;
    w.U32(kDataMagic);
    w.U32(kFormatVersion);
    w.U64(gen);
    if (!io::AtomicWriteFile(data_path, w.bytes(), "store.reset"))
      return false;
    if (f) std::fclose(f);
    f = io::Open(data_path, "r+b", "store.data.open");
    generation = gen;
    append_off = kDataHeaderBytes;
    ClearIndex();
    return f != nullptr;
  }

  /// Loads the index checkpoint.  On success fills entries/clock and
  /// returns the data-byte count it covers; returns 0 (and leaves the
  /// index empty) when the checkpoint is missing, corrupt, checksum-
  /// mismatched, or was written for a different generation / format /
  /// hash version — callers then fall back to a full log scan.
  uint64_t LoadIndexCheckpoint() {
    std::vector<uint8_t> bytes;
    if (!io::ReadWholeFile(index_path, &bytes, "store.index") ||
        bytes.size() < 8)
      return 0;
    // Whole-file checksum in the trailing 8 bytes.
    ByteReader tail(bytes.data() + bytes.size() - 8, 8);
    uint64_t want;
    tail.U64(&want);
    if (Checksum64(bytes.data(), bytes.size() - 8) != want) return 0;
    ByteReader r(bytes.data(), bytes.size() - 8);
    uint32_t magic, version;
    uint64_t hash_version, gen, saved_clock, covered, n_entries;
    if (!r.U32(&magic) || !r.U32(&version) || !r.U64(&hash_version) ||
        !r.U64(&gen) || !r.U64(&saved_clock) || !r.U64(&covered) ||
        !r.U64(&n_entries))
      return 0;
    if (magic != kIndexMagic || version != kFormatVersion ||
        hash_version != opts.hash_version || gen != generation)
      return 0;
    if (n_entries > r.remaining() / 40) return 0;
    struct Loaded {
      MapKey key;
      uint64_t off, len, last_use;
    };
    std::vector<Loaded> loaded;
    loaded.reserve(std::size_t(n_entries));
    const uint64_t file_sz = FileSize();
    for (uint64_t i = 0; i < n_entries; ++i) {
      uint32_t kind, reserved;
      uint64_t hash, off, len, last_use;
      if (!r.U32(&kind) || !r.U32(&reserved) || !r.U64(&hash) ||
          !r.U64(&off) || !r.U64(&len) || !r.U64(&last_use))
        return 0;
      // Overflow-safe bounds check: off + len must stay within the file.
      if (off < kDataHeaderBytes || len < kRecordHeaderBytes ||
          len > file_sz || off > file_sz - len)
        return 0;
      loaded.push_back({{hash, kind}, off, len, last_use});
    }
    // Rebuild the recency list in persisted order: ascending last_use,
    // so the most recently used entry lands at the front.
    std::sort(loaded.begin(), loaded.end(),
              [](const Loaded& a, const Loaded& b) {
                return a.last_use < b.last_use;
              });
    for (const Loaded& e : loaded)
      IndexInsert(e.key, e.off, e.len, e.last_use);
    clock = saved_clock;
    return covered <= file_sz ? covered : 0;
  }

  /// Scans log records in [from, file end), indexing those that match
  /// this store's format and hash version.  Stops at the first torn or
  /// invalid record and truncates the log there.
  void ScanLog(uint64_t from) {
    uint64_t off = from;
    const uint64_t file_sz = FileSize();
    std::vector<uint8_t> header;
    while (off + kRecordHeaderBytes <= file_sz) {
      if (!ReadAt(off, kRecordHeaderBytes, &header)) break;
      ByteReader r(header);
      RecordHeader h;
      if (!ReadRecordHeader(&r, &h)) break;
      const uint64_t len = kRecordHeaderBytes + h.payload_len;
      if (h.payload_len > file_sz - off - kRecordHeaderBytes) break;
      if (h.hash_version == opts.hash_version)
        IndexInsert({h.hash, h.kind}, off, len, ++clock);
      off += len;
    }
    append_off = off;
    if (off < file_sz) {
      // Torn/garbage tail (a crash mid-append, or a record a concurrent
      // writer is mid-flush on).  Truncate *logically* only: append_off
      // stays at the last good record, so if this process writes it
      // overwrites the torn bytes in place, and pure readers never
      // mutate a log a live writer may still be appending to (physical
      // truncation here would shear the writer's in-flight record and
      // leave its append offset pointing past EOF).
      ++st.corrupt_drops;
    }
  }

  // ---- policy (mu held) ----

  void DropEntry(std::unordered_map<MapKey, IndexEntry, MapKeyHash>::iterator
                     it) {
    live_bytes -= std::size_t(it->second.length);
    kind_bytes[it->first.kind] -= std::size_t(it->second.length);
    lru.erase(it->second.lru_it);
    index.erase(it);
  }

  void EvictUntilBudgeted() {
    while (opts.max_bytes != 0 && live_bytes > opts.max_bytes &&
           !lru.empty()) {
      DropEntry(index.find(lru.back()));
      ++st.evictions;
    }
  }

  /// Enforce `kind`'s quota by evicting its own LRU entries — never
  /// entries of other kinds, which is the whole point of the policy.
  void EvictKindUntilBudgeted(uint32_t kind) {
    const auto q = kind_quota.find(kind);
    if (q == kind_quota.end() || q->second == 0) return;
    while (kind_bytes[kind] > q->second) {
      auto victim = lru.end();
      for (auto it = std::prev(lru.end());; --it) {
        if (it->kind == kind) {
          victim = it;
          break;
        }
        if (it == lru.begin()) break;
      }
      if (victim == lru.end()) return;  // bookkeeping drift guard
      DropEntry(index.find(*victim));
      ++st.evictions;
      ++st.kind_evictions;
    }
  }

  void EvictAllKindsUntilBudgeted() {
    for (const auto& [kind, quota] : kind_quota) {
      (void)quota;
      EvictKindUntilBudgeted(kind);
    }
  }

  void FlushLocked() {
    if (!writer || degraded) {
      puts_since_flush = 0;
      return;  // readers never rewrite the shared checkpoint
    }
    ByteWriter w;
    w.U32(kIndexMagic);
    w.U32(kFormatVersion);
    w.U64(opts.hash_version);
    w.U64(generation);
    w.U64(clock);
    w.U64(append_off);
    w.U64(index.size());
    for (const auto& [k, e] : index) {
      w.U32(k.kind);
      w.U32(0);
      w.U64(k.hash);
      w.U64(e.offset);
      w.U64(e.length);
      w.U64(e.last_use);
    }
    std::vector<uint8_t> bytes = w.Take();
    const uint64_t sum = Checksum64(bytes);
    ByteWriter tail;
    tail.U64(sum);
    bytes.insert(bytes.end(), tail.bytes().begin(), tail.bytes().end());
    // The checkpoint is advisory (the log is the source of truth): a
    // failed rewrite costs a longer scan on the next open, not health.
    if (!io::AtomicWriteFile(index_path, bytes, "store.ckpt"))
      IoError(/*sticky=*/false);
    puts_since_flush = 0;
  }

  void CompactLocked() {
    if (!f || !writer || degraded) return;
    // Stream the surviving records (in log order, preserving locality)
    // straight into a fresh tmp log — never staging more than one record
    // in memory — then rename it over the old one and rebuild offsets.
    std::vector<std::pair<MapKey, IndexEntry>> live(index.begin(),
                                                    index.end());
    std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
      return a.second.offset < b.second.offset;
    });
    const std::string tmp = data_path + ".tmp";
    std::FILE* out = io::Open(tmp, "wb", "store.compact.open");
    if (!out) {
      IoError(/*sticky=*/true);
      return;
    }
    const uint64_t new_gen = generation + 1;
    {
      ByteWriter header;
      header.U32(kDataMagic);
      header.U32(kFormatVersion);
      header.U64(new_gen);
      if (!io::Write(out, header.bytes().data(), header.bytes().size(),
                     "store.compact.write")) {
        std::fclose(out);
        std::remove(tmp.c_str());
        IoError(/*sticky=*/true);
        return;
      }
    }
    std::vector<std::pair<MapKey, IndexEntry>> rebuilt;
    rebuilt.reserve(live.size());
    uint64_t out_off = kDataHeaderBytes;
    std::vector<uint8_t> rec;
    for (const auto& [k, e] : live) {
      if (!ReadAt(e.offset, std::size_t(e.length), &rec)) continue;
      if (!io::Write(out, rec.data(), rec.size(), "store.compact.write")) {
        std::fclose(out);
        std::remove(tmp.c_str());
        IoError(/*sticky=*/true);
        return;
      }
      IndexEntry ne = e;
      ne.offset = out_off;
      out_off += e.length;
      rebuilt.emplace_back(k, ne);
    }
    if (!io::Flush(out, "store.compact.flush")) {
      std::fclose(out);
      std::remove(tmp.c_str());
      IoError(/*sticky=*/true);
      return;
    }
    std::fclose(out);
    if (!io::Rename(tmp, data_path, "store.compact.rename")) {
      std::remove(tmp.c_str());
      IoError(/*sticky=*/true);
      return;
    }
    std::fclose(f);
    f = io::Open(data_path, "r+b", "store.data.open");
    generation = new_gen;
    append_off = out_off;
    ClearIndex();
    if (f) {
      // If the reopen fails (fd exhaustion, permissions flipped) the
      // store degrades to an empty closed one: Get/Put fail cleanly via
      // the ReadAt/WriteAt null guards instead of seeking a null FILE.
      std::sort(rebuilt.begin(), rebuilt.end(),
                [](const auto& a, const auto& b) {
                  return a.second.last_use < b.second.last_use;
                });  // ascending: most recent ends up at the LRU front
      for (auto& [k, e] : rebuilt)
        IndexInsert(k, e.offset, e.length, e.last_use);
    } else {
      IoError(/*sticky=*/true);
    }
    ++st.compactions;
    FlushLocked();
  }
};

std::unique_ptr<DiskArtifactStore> DiskArtifactStore::Open(
    const std::string& dir, const DiskStoreOptions& opts) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir, ec)) return nullptr;
  std::unique_ptr<DiskArtifactStore> store(new DiskArtifactStore(dir, opts));
  if (!store->impl_->open_ok) return nullptr;
  return store;
}

DiskArtifactStore::DiskArtifactStore(std::string dir,
                                     const DiskStoreOptions& opts)
    : dir_(std::move(dir)), impl_(new Impl) {
  Impl& im = *impl_;
  im.opts = opts;
  for (const auto& [kind, quota] : opts.kind_quotas)
    if (quota != 0) im.kind_quota[kind] = quota;
  if (opts.admission >= 0) {
    im.admission = opts.admission != 0;
  } else {
    const char* v = std::getenv("EKTELO_CACHE_ADMISSION");
    im.admission = v != nullptr && std::strcmp(v, "1") == 0;
  }
  im.data_path = dir_ + "/artifacts.data";
  im.index_path = dir_ + "/artifacts.index";
  im.lock_path = dir_ + "/artifacts.lock";
  im.writer = im.AcquireWriterLock();

  // Adopt an existing log when its header checks out; otherwise start a
  // fresh one (losing a cache is always safe).
  bool fresh = true;
  if (std::FILE* probe = io::Open(im.data_path, "rb", "store.data.open")) {
    uint8_t raw[kDataHeaderBytes];
    const bool got =
        std::fread(raw, 1, kDataHeaderBytes, probe) == kDataHeaderBytes;
    std::fclose(probe);
    if (got) {
      ByteReader r(raw, kDataHeaderBytes);
      uint32_t magic, version;
      uint64_t gen;
      if (r.U32(&magic) && r.U32(&version) && r.U64(&gen) &&
          magic == kDataMagic && version == kFormatVersion) {
        im.generation = gen;
        fresh = false;
      }
    }
  }
  if (fresh) {
    if (!im.writer) {
      // Another process holds the writer lock and is presumably still
      // initializing the log: attach as an empty reader (Gets miss,
      // Puts fail cleanly) rather than racing its header write.
      im.open_ok = true;
      return;
    }
    im.open_ok = im.ResetDataFile(/*gen=*/1);
    if (im.open_ok) im.FlushLocked();
    return;
  }
  im.f = io::Open(im.data_path, im.writer ? "r+b" : "rb", "store.data.open");
  if (!im.f && im.writer) {
    // Directory may be read-only for this process despite the lock:
    // release it and degrade to pure reader.
    std::remove(im.lock_path.c_str());
    im.writer = false;
    im.f = io::Open(im.data_path, "rb", "store.data.open");
  }
  if (!im.f) return;
  const uint64_t covered = im.LoadIndexCheckpoint();
  im.ScanLog(covered >= kDataHeaderBytes ? covered : kDataHeaderBytes);
  im.EvictUntilBudgeted();
  im.EvictAllKindsUntilBudgeted();
  im.open_ok = true;
}

DiskArtifactStore::~DiskArtifactStore() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->f && impl_->writer && !impl_->degraded) {
    // Closing is the latency-insensitive moment to reclaim dead bytes
    // (inline compaction during Put would stall a solver thread for a
    // full log rewrite under the store mutex).
    const uint64_t data_payload = impl_->append_off - kDataHeaderBytes;
    if (data_payload > kCompactMinBytes &&
        data_payload > 2 * uint64_t(impl_->live_bytes))
      impl_->CompactLocked();
    impl_->FlushLocked();
  }
  if (impl_->writer) std::remove(impl_->lock_path.c_str());
}

bool DiskArtifactStore::Get(const ArtifactKey& key,
                            std::vector<uint8_t>* payload) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  ++im.st.gets;
  if (im.degraded) return false;
  im.SketchTouch({key.hash, key.kind});
  auto it = im.index.find({key.hash, key.kind});
  if (it == im.index.end()) return false;
  const IndexEntry e = it->second;
  std::vector<uint8_t> rec;
  if (!im.ReadAt(e.offset, std::size_t(e.length), &rec)) {
    // A read that fails at the device (not verification) means the tier
    // itself is sick: go memory-only rather than retrying a bad disk on
    // every request.  The entry is left indexed — nothing proved it bad.
    im.IoError(/*sticky=*/true);
    return false;
  }
  RecordHeader h;
  ByteReader r(rec);
  bool ok = ReadRecordHeader(&r, &h) && h.kind == key.kind &&
            h.hash == key.hash && h.hash_version == im.opts.hash_version &&
            kRecordHeaderBytes + h.payload_len == e.length;
  if (ok)
    ok = Checksum64(rec.data() + kRecordHeaderBytes,
                    std::size_t(h.payload_len)) == h.checksum;
  if (!ok) {
    // Stale index (e.g. raced a compaction in another process) or disk
    // corruption: drop the entry; the artifact will be recomputed.
    im.DropEntry(it);
    ++im.st.corrupt_drops;
    return false;
  }
  payload->assign(rec.begin() + kRecordHeaderBytes, rec.end());
  im.Touch(it);
  ++im.st.hits;
  return true;
}

bool DiskArtifactStore::Put(const ArtifactKey& key,
                            const std::vector<uint8_t>& payload) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  // Read-only attach (another process holds the writer lock): refuse
  // before the already-live early-out, so a reader's Put never reports
  // success or counts as a disk write.
  if (!im.writer || !im.f || im.degraded) return false;
  im.SketchTouch({key.hash, key.kind});
  auto it = im.index.find({key.hash, key.kind});
  if (it != im.index.end()) {
    im.Touch(it);
    return true;
  }
  const uint64_t len = kRecordHeaderBytes + payload.size();
  if (im.opts.max_bytes != 0 && len > im.opts.max_bytes) return false;
  // A record alone bigger than its kind's whole quota would evict every
  // sibling and still violate the quota; refuse it like max_bytes does.
  if (auto q = im.kind_quota.find(key.kind);
      q != im.kind_quota.end() && len > q->second)
    return false;
  if (im.admission) {
    // Doorkeeper: admitting this record would evict someone — only let
    // it in if the sketch says it is strictly hotter than the victim.
    const MapKey* victim = im.AdmissionVictim(key.kind, len);
    if (victim != nullptr && im.SketchEstimate({key.hash, key.kind}) <=
                                 im.SketchEstimate(*victim)) {
      ++im.st.admission_rejects;
      return false;
    }
  }
  RecordHeader h;
  h.kind = key.kind;
  h.hash_version = im.opts.hash_version;
  h.hash = key.hash;
  h.payload_len = payload.size();
  h.checksum = Checksum64(payload);
  ByteWriter w;
  WriteRecordHeader(h, &w);
  w.Raw(payload.data(), payload.size());
  if (!im.WriteAt(im.append_off, w.bytes())) {
    // Failed append (disk full / I/O error): restore the log to its
    // pre-call length so a partial record never becomes a parsed one,
    // and go memory-only — later Puts would hit the same device.
    (void)io::Resize(im.data_path, im.append_off, "store.data.truncate");
    im.IoError(/*sticky=*/true);
    return false;
  }
  im.IndexInsert({key.hash, key.kind}, im.append_off, len, ++im.clock);
  im.append_off += len;
  ++im.st.puts;
  im.EvictUntilBudgeted();
  im.EvictKindUntilBudgeted(key.kind);
  // Compaction stalls every store user for a full log rewrite under the
  // mutex, so inline it only as a backstop against unbounded log growth
  // in a never-closing process (dead bytes > 4x live); the cheap 2x
  // reclamation runs at close time instead.
  const uint64_t data_payload = im.append_off - kDataHeaderBytes;
  if (data_payload > kCompactMinBytes &&
      data_payload > 5 * uint64_t(im.live_bytes))
    im.CompactLocked();
  else if (++im.puts_since_flush >= im.opts.flush_every_puts)
    im.FlushLocked();
  return true;
}

void DiskArtifactStore::Drop(const ArtifactKey& key) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.index.find({key.hash, key.kind});
  if (it == im.index.end()) return;
  im.DropEntry(it);
  ++im.st.corrupt_drops;
}

void DiskArtifactStore::Flush() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->FlushLocked();
}

void DiskArtifactStore::Compact() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->CompactLocked();
}

DiskArtifactStore::Stats DiskArtifactStore::stats() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  Stats s = im.st;
  s.entries = im.index.size();
  s.live_bytes = im.live_bytes;
  s.data_bytes = std::size_t(im.append_off);
  s.read_only = !im.writer;
  s.degraded = im.degraded;
  return s;
}

}  // namespace ektelo::store
