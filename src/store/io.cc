#include "store/io.h"

#include <cerrno>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/failpoint.h"

namespace ektelo::store::io {

namespace {

namespace fs = std::filesystem;

using failpoint::Action;
using failpoint::ActionKind;

bool Injected(const Action& a) {
  if (a.kind == ActionKind::kNone) return false;
  errno = a.err;
  return true;
}

}  // namespace

std::FILE* Open(const std::string& path, const char* mode, const char* site) {
  if (Injected(failpoint::Check(site))) return nullptr;
  return std::fopen(path.c_str(), mode);
}

bool Read(std::FILE* f, void* buf, std::size_t n, const char* site) {
  if (Injected(failpoint::Check(site))) return false;
  return n == 0 || std::fread(buf, 1, n, f) == n;
}

bool Write(std::FILE* f, const void* buf, std::size_t n, const char* site) {
  const Action a = failpoint::Check(site);
  if (a.kind == ActionKind::kShortWrite) {
    // Land a prefix, then fail: exactly the torn frame a real kill or
    // ENOSPC mid-write leaves for recovery to detect and drop.
    (void)std::fwrite(buf, 1, n / 2, f);
    (void)std::fflush(f);
    errno = a.err;
    return false;
  }
  if (Injected(a)) return false;
  return n == 0 || std::fwrite(buf, 1, n, f) == n;
}

bool Flush(std::FILE* f, const char* site) {
  if (Injected(failpoint::Check(site))) return false;
  return std::fflush(f) == 0;
}

bool Fsync(std::FILE* f, const char* site) {
  if (Injected(failpoint::Check(site))) return false;
#ifndef _WIN32
  return fsync(fileno(f)) == 0;
#else
  (void)f;
  return true;
#endif
}

bool Rename(const std::string& from, const std::string& to, const char* site) {
  if (Injected(failpoint::Check(site))) return false;
  std::error_code ec;
  fs::rename(from, to, ec);
  return !ec;
}

bool Resize(const std::string& path, uint64_t size, const char* site) {
  if (Injected(failpoint::Check(site))) return false;
  std::error_code ec;
  fs::resize_file(path, size, ec);
  return !ec;
}

bool AtomicWriteFile(const std::string& path, const std::vector<uint8_t>& bytes,
                     const char* site_prefix) {
  const std::string prefix(site_prefix);
  const std::string tmp = path + ".tmp";
  std::FILE* f = Open(tmp, "wb", (prefix + ".open").c_str());
  if (f == nullptr) return false;
  const bool wrote = Write(f, bytes.data(), bytes.size(),
                           (prefix + ".write").c_str());
  const bool flushed = wrote && Flush(f, (prefix + ".flush").c_str());
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (!Rename(tmp, path, (prefix + ".rename").c_str())) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
                   const char* site_prefix) {
  const std::string prefix(site_prefix);
  std::FILE* f = Open(path, "rb", (prefix + ".open").c_str());
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  if (n < 0) {
    std::fclose(f);
    return false;
  }
  out->resize(std::size_t(n));
  std::fseek(f, 0, SEEK_SET);
  const bool ok = Read(f, out->data(), out->size(), (prefix + ".read").c_str());
  std::fclose(f);
  return ok;
}

}  // namespace ektelo::store::io
