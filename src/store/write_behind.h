// Background write-behind for the disk artifact tier.
//
// Persisting a cache artifact costs an encode (serializing a CSR/dense
// matrix) plus an append under the store mutex — work that used to run
// on the thread that just computed the artifact, i.e. a solver or a
// serving request thread.  A WriteBehindQueue moves both off that thread:
// the producer enqueues a closure capturing shared ownership of the
// artifact (a shared_ptr copy, not an encode) and returns immediately;
// one consumer thread drains the queue in FIFO order and performs
// encode+append.
//
// The queue is bounded.  A full queue DROPS the write (the store is a
// cache — a dropped spill only costs a future recompute) rather than
// block the request thread; drops are counted.  Drain() is the
// flush-on-close barrier: it returns only after every job enqueued
// before the call has completed, so `Drain(); store->Flush()` makes all
// prior writes durable, and closing the queue (destruction) implies a
// drain.  Jobs must capture shared ownership of everything they touch
// (the store itself included), so queue and store lifetimes cannot race.
#ifndef EKTELO_STORE_WRITE_BEHIND_H_
#define EKTELO_STORE_WRITE_BEHIND_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace ektelo::store {

class WriteBehindQueue {
 public:
  struct Stats {
    std::size_t enqueued = 0;
    std::size_t dropped = 0;    // queue-full refusals
    std::size_t completed = 0;  // jobs fully executed
  };

  explicit WriteBehindQueue(std::size_t capacity = 256);
  /// Drains outstanding jobs, then joins the consumer.
  ~WriteBehindQueue();

  WriteBehindQueue(const WriteBehindQueue&) = delete;
  WriteBehindQueue& operator=(const WriteBehindQueue&) = delete;

  /// Enqueue a write job; false (and a counted drop) when the queue is
  /// full or shutting down.
  bool Enqueue(std::function<void()> job);

  /// Barrier: returns once every job enqueued before this call has run.
  /// Jobs enqueued concurrently with the drain may or may not be covered.
  void Drain();

  Stats stats() const;

 private:
  void ConsumerLoop();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // consumer waits for jobs/stop
  std::condition_variable drain_cv_;  // Drain waits for completions
  std::deque<std::function<void()>> jobs_;
  Stats st_;
  bool stopping_ = false;
  std::thread consumer_;
};

}  // namespace ektelo::store

#endif  // EKTELO_STORE_WRITE_BEHIND_H_
