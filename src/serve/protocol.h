// Wire protocol of the serving daemon: length-prefixed, checksummed
// binary frames over a local stream socket, built on the store/
// serialization primitives (little-endian framing, Checksum64) so both
// ends agree byte-for-byte regardless of host width or endianness.
//
// Frame layout:
//
//   {u32 magic "EKFR", u8 msg_type, u32 payload_len, payload bytes,
//    u64 Checksum64(payload)}
//
// Payloads are capped (kMaxPayloadBytes) so a hostile or corrupted
// length field cannot become an allocation bomb; a bad magic, oversized
// length, or checksum mismatch poisons the connection (the server drops
// it — there is no way to resynchronize a corrupt stream).
//
// Message types come in request/reply pairs.  An InvokeRequest names a
// plan in the PlanRegistry catalog and carries the *public* plan inputs
// only (domain dims, ranges, epsilon, mode...).  The private data never
// crosses the wire: tenants' protected tables live inside the daemon,
// and the reply carries the noisy estimate a kernel released.
#ifndef EKTELO_SERVE_PROTOCOL_H_
#define EKTELO_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/vec.h"
#include "util/status.h"
#include "workload/workloads.h"

namespace ektelo::serve {

inline constexpr uint32_t kFrameMagic = 0x52464B45u;  // "EKFR" little-endian
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{64} << 20;

enum class MsgType : uint8_t {
  kInvoke = 1,
  kInvokeReply = 2,
  kStats = 3,
  kStatsReply = 4,
  kShutdown = 5,
  kShutdownReply = 6,
  // Observability endpoints (appended — old clients and servers never
  // see the new tags, so the 1-6 wire surface is untouched).  Both
  // replies carry one opaque text blob: Prometheus exposition text for
  // kStatsProm, Chrome trace_event JSON for kTrace.
  kStatsProm = 7,
  kStatsPromReply = 8,
  kTrace = 9,
  kTraceReply = 10,
};

/// One plan invocation.  Every field is public, client-chosen metadata
/// (Sec. 4: plan inputs are data-independent); the server validates all
/// of it against the registry and the tenant's ledger before any kernel
/// interaction.
struct InvokeRequest {
  uint64_t request_id = 0;  // echoed in the reply; client correlation
  std::string tenant;
  std::string plan;   // PlanRegistry catalog name
  double eps = 0.0;   // budget this invocation may spend
  std::vector<std::size_t> dims;
  std::vector<RangeQuery> ranges;
  double known_total = 0.0;
  std::size_t stripe_dim = 0;
  uint8_t mode = 2;          // MatrixMode: 0 dense, 1 sparse, 2 implicit
  bool coalesce = true;      // allow identical-request coalescing
};

/// Reply codes mirror StatusCode where one fits; refusals are explicit
/// so clients can distinguish "budget gone" (permanent until topped up)
/// from "queue full" (retryable).
enum class ReplyCode : uint8_t {
  kOk = 0,
  kBadRequest = 1,       // unknown plan/tenant, malformed inputs
  kBudgetExhausted = 2,  // admission refusal: ledger cannot cover eps
  kQueueFull = 3,        // admission refusal: request queue at capacity
  kExecutionFailed = 4,  // plan returned an error (charge refunded)
  kShuttingDown = 5,
  // The ledger could not durably record the charge (disk I/O error).
  // The request fails CLOSED: nothing was released, and — because the
  // charge log is append-only and charge-before-release — at worst the
  // budget is over-counted, never under-counted.  Not retryable until
  // the operator restores the ledger volume.
  kDurabilityError = 6,
  // The request sat in the queue past the server's per-request deadline
  // and was refused before any charge.  Retryable.
  kDeadlineExceeded = 7,
};

struct InvokeReply {
  uint64_t request_id = 0;
  ReplyCode code = ReplyCode::kOk;
  std::string message;      // human-readable detail on non-kOk
  bool coalesced = false;   // answered from a leader's execution or the
                            // response cache rather than a fresh run
  double eps_charged = 0.0; // what the ledger durably recorded for THIS
                            // request (0 for refusals and coalesced
                            // replays of an already-charged structure)
  Vec estimate;             // empty on non-kOk
};

/// Server-side counters + per-tenant balances, for clients, tests and
/// the smoke script.  All values are public bookkeeping.
struct StatsReply {
  uint64_t received = 0;
  uint64_t admitted = 0;
  uint64_t refused_budget = 0;
  uint64_t refused_queue = 0;
  uint64_t refused_bad = 0;
  uint64_t executions = 0;         // fresh kernel executions
  uint64_t coalesced = 0;          // requests answered without one
  uint64_t cache_disk_hits = 0;    // OperatorCache tier stats snapshot
  uint64_t cache_hits = 0;
  uint64_t rewrite_searches = 0;   // beam-search canonicalizations run
  uint64_t beam_expansions = 0;    // candidates generated across beams
  uint64_t tree_hits = 0;          // canonical trees served from cache
  uint64_t refused_durability = 0; // ledger append failed; failed closed
  uint64_t refused_deadline = 0;   // queued past the request deadline
  uint64_t disk_degraded = 0;      // 1 when the disk cache tier went
                                   // memory-only after a device error
  uint64_t disk_io_errors = 0;     // I/O errors observed by the disk tier
  uint64_t disk_write_drops = 0;   // write-behind queue overflow drops
  struct Tenant {
    std::string name;
    double total = 0.0;
    double spent = 0.0;
  };
  std::vector<Tenant> tenants;
};

// ---- payload codecs (pure byte transforms; no I/O) ----

std::vector<uint8_t> EncodeInvokeRequest(const InvokeRequest& req);
bool DecodeInvokeRequest(const std::vector<uint8_t>& bytes,
                         InvokeRequest* req);

std::vector<uint8_t> EncodeInvokeReply(const InvokeReply& reply);
bool DecodeInvokeReply(const std::vector<uint8_t>& bytes, InvokeReply* reply);

std::vector<uint8_t> EncodeStatsReply(const StatsReply& stats);
bool DecodeStatsReply(const std::vector<uint8_t>& bytes, StatsReply* stats);

/// kStatsPromReply / kTraceReply payload: one length-prefixed text blob
/// (Prometheus exposition text or Chrome trace_event JSON).  The blob
/// is opaque to the protocol layer; the payload cap still applies.
std::vector<uint8_t> EncodeTextReply(const std::string& text);
bool DecodeTextReply(const std::vector<uint8_t>& bytes, std::string* text);

// ---- framed I/O over a connected socket fd ----

/// Writes one frame.  Errors are connection-fatal.
Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload);

/// Reads one frame.  kUnavailable = clean EOF at a frame boundary (peer
/// closed); any other error (bad magic, oversize, checksum mismatch,
/// mid-frame EOF) is connection-fatal.
Status ReadFrame(int fd, MsgType* type, std::vector<uint8_t>* payload);

}  // namespace ektelo::serve

#endif  // EKTELO_SERVE_PROTOCOL_H_
