// The EKTELO serving daemon: a long-lived multi-tenant DP query server.
//
// The paper's kernel/client split (Sec. 3) becomes a process boundary:
// each tenant's protected table lives inside the daemon, clients send
// plan invocations (public inputs only — plan name, domain dims, ranges,
// epsilon) over a local socket, and the daemon executes the named
// PlanRegistry plan on the existing thread pool under a BudgetScope
// drawn from a durable per-tenant BudgetLedger.  What comes back over
// the wire is exactly what a kernel may release: noisy estimates and
// public refusal decisions.
//
// Request lifecycle:
//
//   connection thread          worker pool (N = EKTELO_SERVE_WORKERS)
//   -----------------          --------------------------------------
//   read + decode frame
//   validate (plan, tenant,
//     eps, dims)        -> kBadRequest
//   ledger CanCharge    -> kBudgetExhausted   (advisory fast path; no
//                                              kernel exists yet)
//   response cache hit  -> reply, coalesced   (no charge: DP post-
//                                              processing of a noisy
//                                              answer already paid for)
//   join in-flight twin -> wait for leader    (one execution, many
//                                              replies)
//   bounded queue full  -> kQueueFull         (backpressure, retryable)
//   enqueue, wait          pop task
//                          ledger Charge      (authoritative, durable
//                            -> kBudgetExhausted   BEFORE execution)
//                          fresh kernel, run plan
//                            -> on error: Refund, kExecutionFailed
//                          publish to leader + followers
//   send reply
//
// Determinism: a reply's estimate bytes are a pure function of (tenant
// seed, tenant table, request content).  Each execution constructs a
// fresh ProtectedKernel seeded by SplitMix64 over the tenant seed and
// the request's structural hash (plan, eps, dims, ranges, totals, mode
// — NOT the request id), so identical requests draw identical noise
// streams and distinct requests draw unrelated ones.  Replies are
// therefore bitwise identical across EKTELO_THREADS settings, worker
// counts, scheduling orders, and coalescing on/off — the serving-layer
// extension of the kernel's parallel-invariance contract.
//
// Coalescing: concurrent identical-structure requests elect one leader
// execution (followers wait and share the reply), and completed answers
// stay in a bounded per-server response cache.  Both are privacy-free
// replays of an answer whose epsilon was already durably charged; a
// cache eviction costs a re-charge on the next identical request
// (conservative — never under-counts).  The OperatorCache underneath
// additionally turns the *operator* work of similar-but-distinct
// requests into cache hits, which is what makes a hot dashboard one
// materialization instead of many.
#ifndef EKTELO_SERVE_SERVER_H_
#define EKTELO_SERVE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "serve/ledger.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace ektelo::serve {

/// One tenant the daemon serves: a protected table, a root noise seed,
/// and the initial budget registered in the ledger on first start
/// (an existing ledger entry always wins — budgets are durable).
struct TenantSpec {
  std::string name;
  Table table;
  uint64_t seed = 0;
  double eps_total = 1.0;
};

struct ServerOptions {
  std::string socket_path;
  std::string ledger_dir;
  /// Worker threads executing plans (>= 1).  EKTELO_SERVE_WORKERS.
  std::size_t workers = 2;
  /// Bounded request-queue capacity; TryPush failure is the kQueueFull
  /// admission refusal.  EKTELO_SERVE_QUEUE.
  std::size_t queue_capacity = 64;
  /// Master switch for identical-request coalescing (in-flight sharing
  /// AND the response cache).  EKTELO_SERVE_COALESCE=0 disables.
  bool coalesce = true;
  /// Response-cache entries (0 disables the cache but keeps in-flight
  /// sharing when `coalesce`).  EKTELO_SERVE_RESPONSE_CACHE.
  std::size_t response_cache_entries = 256;
  /// Per-request epsilon ceiling (requests above it are kBadRequest —
  /// one request may not drain a tenant in a single shot).
  /// EKTELO_SERVE_MAX_EPS; 0 = no ceiling.
  double max_eps = 0.0;
  /// fsync the ledger on every charge.  EKTELO_SERVE_FSYNC.
  bool fsync_ledger = false;
  /// Ledger checkpoint cadence (appends per checkpoint).
  std::size_t ledger_checkpoint_every = 64;
  /// Per-request deadline: an admitted request that sits in the worker
  /// queue longer than this is refused (kDeadlineExceeded) BEFORE its
  /// budget charge, so a backlogged server sheds stale work instead of
  /// spending epsilon on answers nobody is waiting for.
  /// EKTELO_SERVE_DEADLINE_MS; 0 = no deadline.
  int request_deadline_ms = 0;
  /// Slow-request log threshold: an Invoke whose total in-server wall
  /// time (decode to reply publish) exceeds this logs one structured
  /// stderr line (rate-limited per event).  EKTELO_SERVE_SLOW_MS;
  /// 0 = disabled.
  int slow_ms = 0;
  /// Test hook: sleep this long inside each worker execution, so tests
  /// can deterministically fill the bounded queue.  0 in production.
  int test_execution_delay_ms = 0;
};

/// Fills options from the EKTELO_SERVE_* environment on top of the
/// passed defaults (strict numeric parsing; unparsable values warn and
/// keep the default).
ServerOptions ApplyServeEnv(ServerOptions opts);

class Server {
 public:
  /// Opens the ledger (registering any tenant the ledger does not
  /// already know), binds the socket, and starts the acceptor and
  /// worker threads.  Errors: ledger lock held by a live process,
  /// un-bindable socket path, no tenants, duplicate tenant names.
  static StatusOr<std::unique_ptr<Server>> Start(
      ServerOptions opts, std::vector<TenantSpec> tenants);

  /// Stops accepting, drains queued work (every admitted request gets a
  /// reply), joins all threads, checkpoints the ledger.  Idempotent.
  void Stop();

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// True once a client shutdown request (or Stop) was observed.
  bool stopped() const;
  /// Blocks until a client shutdown request or Stop() arrives.
  void WaitForShutdown();

  StatsReply Stats() const;
  const std::string& socket_path() const;
  /// The live ledger (owned by the server) — for test assertions.
  BudgetLedger& ledger();

 private:
  Server();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ektelo::serve

#endif  // EKTELO_SERVE_SERVER_H_
