// Crash-consistency torture harness: the failpoint layer's consumer.
//
// The harness runs a fixed, deterministic workload that exercises every
// durable subsystem — budget ledger (create/charge/refund/checkpoint),
// disk artifact store (put/get/flush/compact), and the write-behind
// queue — then uses the failpoint trace of one clean run to enumerate
// every I/O operation the workload performs.  For each operation k it
// forks a child that re-runs the workload with "*=crash@k" armed (the
// child std::_Exit()s mid-syscall, destructors never run, buffered
// user-space state is lost exactly as in a kill -9), then reopens the
// survivors in the parent and checks the invariants that must hold at
// EVERY crash point:
//
//   ledger   opens (a torn tail is recoverable, never fatal) and no
//            tenant's durable `spent` under-counts the releases the
//            workload's shadow log recorded — the paper's Algorithm-2
//            accounting must fail safe (over-count allowed, never under)
//   store    opens, and every surviving artifact reads back bit-exact;
//            a clean truncation (missing tail entries) is fine,
//            corruption or refusal-to-open is not
//
// The shadow release log is the harness's ground truth: one raw
// O_APPEND write() per released answer, appended only AFTER Charge
// returned kCharged — it survives _Exit the same way the ledger must.
//
// POSIX-only (fork); on other platforms RunCrashMatrix reports zero
// coverage and one violation explaining why.
#ifndef EKTELO_SERVE_TORTURE_H_
#define EKTELO_SERVE_TORTURE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ektelo::serve::torture {

/// Runs the deterministic workload in `dir` (created if needed):
/// 2 tenants x 12 charge/refund/release steps against the ledger,
/// 15 artifact puts (3 via a write-behind queue), interleaved gets, a
/// checkpoint flush and a compaction.  Returns false only on setup
/// failure (unusable dir); injected I/O errors do not fail the run.
bool RunWorkload(const std::string& dir);

/// Reopens the ledger and store left in `dir` after a (simulated) crash
/// and checks the invariants above.  False on violation, with an
/// explanation in *why.
bool VerifyAfterCrash(const std::string& dir, std::string* why);

struct CrashMatrixOptions {
  /// Scratch directory; destroyed and recreated per crash point.
  std::string dir;
  /// Quick preset (CI): crash only at the FIRST hit of each distinct
  /// site instead of at every operation.  Still covers every site.
  bool quick = false;
  /// Cap on crash points exercised (0 = all).  Full coverage of every
  /// site is only guaranteed when the cap is not the binding limit.
  std::size_t max_crashes = 0;
};

struct CrashMatrixResult {
  std::size_t total_ops = 0;  // failpoint hits in one clean run
  std::size_t crashes = 0;    // crash points actually exercised
  std::vector<std::string> sites_covered;  // distinct sites crashed at
  std::vector<std::string> violations;     // empty = all invariants held
  bool ok() const { return crashes > 0 && violations.empty(); }
};

/// Trace one clean run, then fork+crash+verify at each chosen point.
/// Resets the process-global failpoint registry before and after.
CrashMatrixResult RunCrashMatrix(const CrashMatrixOptions& opts);

}  // namespace ektelo::serve::torture

#endif  // EKTELO_SERVE_TORTURE_H_
