#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#ifndef _WIN32
#include <sys/socket.h>
#endif

#include "kernel/budget.h"
#include "kernel/handles.h"
#include "kernel/kernel.h"
#include "matrix/rewrite.h"
#include "matrix/search.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plans/registry.h"
#include "store/serialize.h"
#include "util/bounded_queue.h"
#include "util/net.h"
#include "util/rng.h"

namespace ektelo::serve {

namespace {

/// Structural hash of a request's *content*: everything that shapes the
/// answer (plan, eps, domain, queries, totals, mode) and nothing that
/// does not (request_id, coalesce flag, tenant — the tenant enters the
/// noise seed separately).  Two requests with equal hashes are the same
/// query, so they may share one execution; the hash also keys the
/// per-execution noise stream, which is what makes replies bitwise
/// deterministic under any scheduling.
uint64_t RequestContentHash(const InvokeRequest& req) {
  store::ByteWriter w;
  w.U64(req.plan.size());
  w.Raw(reinterpret_cast<const uint8_t*>(req.plan.data()), req.plan.size());
  w.F64(req.eps);
  w.U64(req.dims.size());
  for (std::size_t d : req.dims) w.U64(d);
  w.U64(req.ranges.size());
  for (const RangeQuery& q : req.ranges) {
    w.U64(q.lo);
    w.U64(q.hi);
  }
  w.F64(req.known_total);
  w.U64(req.stripe_dim);
  w.U8(req.mode);
  return store::Checksum64(w.bytes());
}

std::string CoalesceKey(const std::string& tenant, uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ":%016llx", (unsigned long long)hash);
  return tenant + buf;
}

/// Strict numeric env parses, mirroring the EKTELO_CACHE_* handling:
/// unparsable values warn on stderr and keep the default.
bool EnvU64(const char* name, uint64_t* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  if (*v >= '0' && *v <= '9') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != nullptr && *end == '\0') {
      *out = parsed;
      return true;
    }
  }
  std::fprintf(stderr, "ektelo: ignoring unparsable %s=%s\n", name, v);
  return false;
}

bool EnvF64(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end != v && end != nullptr && *end == '\0' && parsed >= 0.0) {
    *out = parsed;
    return true;
  }
  std::fprintf(stderr, "ektelo: ignoring unparsable %s=%s\n", name, v);
  return false;
}

/// Per-stage serve latency histograms, one label per lifecycle stage.
obs::Histogram& StageSeconds(const char* labels) {
  return obs::Registry::Global().GetHistogram(
      "ektelo_serve_stage_seconds",
      "Wall time of one serve request lifecycle stage", labels);
}
obs::Histogram& ValidateSeconds() {
  static obs::Histogram& h = StageSeconds("stage=\"validate\"");
  return h;
}
obs::Histogram& QueueWaitSeconds() {
  static obs::Histogram& h = StageSeconds("stage=\"queue_wait\"");
  return h;
}
obs::Histogram& ChargeSeconds() {
  static obs::Histogram& h = StageSeconds("stage=\"charge\"");
  return h;
}
obs::Histogram& ExecuteSeconds() {
  static obs::Histogram& h = StageSeconds("stage=\"execute\"");
  return h;
}
obs::Histogram& TotalSeconds() {
  static obs::Histogram& h = StageSeconds("stage=\"total\"");
  return h;
}

}  // namespace

ServerOptions ApplyServeEnv(ServerOptions opts) {
  uint64_t u;
  if (EnvU64("EKTELO_SERVE_WORKERS", &u))
    opts.workers = std::max<std::size_t>(1, std::size_t(u));
  if (EnvU64("EKTELO_SERVE_QUEUE", &u))
    opts.queue_capacity = std::max<std::size_t>(1, std::size_t(u));
  if (EnvU64("EKTELO_SERVE_COALESCE", &u)) opts.coalesce = u != 0;
  if (EnvU64("EKTELO_SERVE_RESPONSE_CACHE", &u))
    opts.response_cache_entries = std::size_t(u);
  EnvF64("EKTELO_SERVE_MAX_EPS", &opts.max_eps);
  if (EnvU64("EKTELO_SERVE_FSYNC", &u)) opts.fsync_ledger = u != 0;
  if (EnvU64("EKTELO_SERVE_DEADLINE_MS", &u)) opts.request_deadline_ms = int(u);
  if (EnvU64("EKTELO_SERVE_SLOW_MS", &u)) opts.slow_ms = int(u);
  return opts;
}

#ifndef _WIN32

struct Server::Impl {
  // ---- fixed at Start ----
  ServerOptions opts;
  struct Tenant {
    Table table;
    uint64_t seed = 0;
  };
  std::unordered_map<std::string, Tenant> tenants;
  std::vector<std::string> tenant_order;  // registration order, for Stats
  std::unique_ptr<BudgetLedger> ledger;
  std::optional<net::UnixListener> listener;

  // ---- coalescing ----
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    InvokeReply reply;  // the leader-shaped reply; followers re-stamp it

    void Publish(InvokeReply r) {
      {
        std::lock_guard<std::mutex> lock(mu);
        reply = std::move(r);
        done = true;
      }
      cv.notify_all();
    }
    InvokeReply Wait() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      return reply;
    }
  };
  struct CachedAnswer {
    Vec estimate;
    std::list<std::string>::iterator lru_it;
  };
  std::mutex co_mu;  // guards inflight and the response cache
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight;
  std::unordered_map<std::string, CachedAnswer> answers;
  std::list<std::string> answer_lru;  // front = most recent

  // ---- counters ----
  // The process-global metrics registry is the single source of truth;
  // each server keeps only a base snapshot (taken at Start) so its
  // Stats() view begins at zero while the registry series stay
  // monotone across server restarts within one process.
  struct CounterView {
    obs::Counter* c = nullptr;
    uint64_t base = 0;
    void Inc() { c->Inc(); }
    uint64_t Delta() const {
      const uint64_t v = c->Value();
      return v > base ? v - base : 0;
    }
  };
  CounterView received, admitted, refused_budget, refused_queue, refused_bad,
      executions, coalesced, refused_durability, refused_deadline;

  void BindServeMetrics() {
    obs::Registry& reg = obs::Registry::Global();
    const std::string name = "ektelo_serve_requests";
    const std::string help =
        "Serve request lifecycle outcomes, by admission event";
    auto bind = [&](CounterView* v, const char* event) {
      v->c = &reg.GetCounter(name, help,
                             "event=\"" + std::string(event) + "\"");
      v->base = v->c->Value();
    };
    bind(&received, "received");
    bind(&admitted, "admitted");
    bind(&refused_budget, "refused_budget");
    bind(&refused_queue, "refused_queue");
    bind(&refused_bad, "refused_bad");
    bind(&executions, "executed");
    bind(&coalesced, "coalesced");
    bind(&refused_durability, "refused_durability");
    bind(&refused_deadline, "refused_deadline");
  }

  // ---- threads / lifecycle ----
  struct Task {
    InvokeRequest req;
    uint64_t hash = 0;
    std::string key;
    bool cacheable = false;
    std::shared_ptr<Inflight> fly;
    // Queue-entry time, for the per-request deadline check.
    std::chrono::steady_clock::time_point enqueued;
    // The leader's request trace (null when tracing is off): the worker
    // installs it so every span under execution lands in it.  The
    // shared_ptr keeps the trace alive however late the worker runs.
    std::shared_ptr<obs::RequestTrace> trace;
    // obs::NowNs() at enqueue, for the queue-wait span; 0 = disarmed.
    uint64_t enqueue_ns = 0;
  };
  std::unique_ptr<BoundedQueue<Task>> queue;
  std::vector<std::thread> workers;
  std::thread acceptor;
  std::mutex conn_mu;
  std::vector<std::thread> conn_threads;
  std::unordered_set<int> conn_fds;
  std::atomic<bool> stopping{false};
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop_signaled = false;
  bool joined = false;

  // ------------------------------------------------------------ helpers

  /// Flips the server into shutdown mode (new invokes refuse with
  /// kShuttingDown, AcceptLoop winds down) and wakes WaitForShutdown /
  /// the daemon's stopped() poll.  Thread teardown stays in Stop().
  void SignalStop() {
    stopping.store(true);
    {
      std::lock_guard<std::mutex> lock(stop_mu);
      stop_signaled = true;
    }
    stop_cv.notify_all();
  }

  /// Response-cache lookup (co_mu held).  A hit is a free replay: the
  /// noisy answer it returns was already paid for when first computed.
  const CachedAnswer* CacheFind(const std::string& key) {
    auto it = answers.find(key);
    if (it == answers.end()) return nullptr;
    answer_lru.splice(answer_lru.begin(), answer_lru, it->second.lru_it);
    return &it->second;
  }

  void CacheInsert(const std::string& key, const Vec& estimate) {
    if (opts.response_cache_entries == 0) return;
    if (answers.count(key) != 0) return;
    answer_lru.push_front(key);
    answers[key] = {estimate, answer_lru.begin()};
    while (answers.size() > opts.response_cache_entries) {
      answers.erase(answer_lru.back());
      answer_lru.pop_back();
    }
  }

  /// Validation that needs no kernel and spends nothing.  Returns an
  /// explanation, or empty string when the request is well-formed.
  std::string Validate(const InvokeRequest& req) {
    if (req.tenant.empty() || tenants.count(req.tenant) == 0)
      return "unknown tenant \"" + req.tenant + "\"";
    const Plan* plan = PlanRegistry::Global().Find(req.plan);
    if (plan == nullptr) return "unknown plan \"" + req.plan + "\"";
    if (!(req.eps > 0.0) || !std::isfinite(req.eps))
      return "eps must be positive and finite";
    if (opts.max_eps > 0.0 && req.eps > opts.max_eps)
      return "eps exceeds the per-request ceiling";
    if (req.mode > 2) return "bad matrix mode";
    const std::size_t domain =
        tenants.at(req.tenant).table.schema().TotalDomainSize();
    if (!req.dims.empty()) {
      std::size_t n = 1;
      for (std::size_t d : req.dims) {
        if (d == 0) return "zero dimension";
        n *= d;
      }
      if (n != domain) return "dims do not multiply out to the domain size";
    }
    for (const RangeQuery& q : req.ranges)
      if (q.lo > q.hi || q.hi >= domain) return "range out of domain";
    return "";
  }

  /// One fresh, deterministic execution.  The kernel seed is a pure
  /// function of (tenant seed, request content hash): identical requests
  /// reproduce bitwise, distinct requests draw unrelated noise, and no
  /// scheduling or coalescing decision can perturb either.
  StatusOr<Vec> Execute(const InvokeRequest& req, uint64_t hash) {
    const Plan* plan = PlanRegistry::Global().Find(req.plan);
    if (plan == nullptr) return Status::InvalidArgument("unknown plan");
    const Tenant& tenant = tenants.at(req.tenant);
    const uint64_t exec_seed = SplitMix64(tenant.seed ^ SplitMix64(hash));
    ProtectedKernel kernel(tenant.table, req.eps, exec_seed);
    ProtectedTable root = ProtectedTable::Root(&kernel);
    StatusOr<ProtectedVector> x = root.Vectorize();
    if (!x.ok()) return x.status();
    BudgetScope scope(req.eps);
    // Client-side randomness for plans that use it, derived from the
    // same lineage so it is equally schedule-independent.
    Rng rng(SplitMix64(exec_seed ^ 0xC11E57ull));
    PlanInput in;
    in.dims = req.dims;
    in.mode = MatrixMode(req.mode);
    in.rng = &rng;
    in.ranges = req.ranges;
    in.known_total = req.known_total;
    in.stripe_dim = req.stripe_dim;
    return plan->Execute(*x, scope, in);
  }

  // ------------------------------------------------------------ workers

  void ProcessTask(Task& t) {
    // Record into the leader's trace for the rest of this task; every
    // span below (charge, execute, and everything the plan opens) lands
    // in it.  All spans close before Publish wakes the leader, and the
    // Task's shared_ptr keeps the trace alive until then.
    obs::ScopedTraceContext tctx(t.trace.get());
    if (t.enqueue_ns != 0)
      obs::RecordManualSpan("serve.queue_wait", "serve", t.enqueue_ns,
                            obs::NowNs(), &QueueWaitSeconds());
    InvokeReply r;
    r.request_id = t.req.request_id;
    // Stale work is refused before the charge: epsilon spent on an
    // answer the client stopped waiting for is epsilon wasted.
    if (opts.request_deadline_ms > 0 &&
        std::chrono::steady_clock::now() - t.enqueued >
            std::chrono::milliseconds(opts.request_deadline_ms)) {
      r.code = ReplyCode::kDeadlineExceeded;
      r.message = "request exceeded the server deadline in queue";
      refused_deadline.Inc();
      {
        std::lock_guard<std::mutex> lock(co_mu);
        inflight.erase(t.key);
      }
      t.fly->Publish(std::move(r));
      return;
    }
    // Authoritative admission: the durable charge happens HERE, before
    // any kernel exists, and the answer is only released (published)
    // after the charge record is on disk.
    ChargeResult charge;
    {
      obs::Span charge_span("serve.charge", "serve", &ChargeSeconds());
      charge_span.Attr("eps", t.req.eps);
      charge = ledger->Charge(t.req.tenant, t.req.eps);
    }
    if (charge == ChargeResult::kIoError) {
      // Fail CLOSED: the ledger could not durably record the charge, so
      // no answer may be released.  (Charge-before-release means a torn
      // append can only ever over-count the spend, never under-count.)
      r.code = ReplyCode::kDurabilityError;
      r.message = "ledger write failed; request refused";
      refused_durability.Inc();
    } else if (charge == ChargeResult::kRefused) {
      r.code = ReplyCode::kBudgetExhausted;
      r.message = "tenant budget exhausted";
      refused_budget.Inc();
    } else {
      if (opts.test_execution_delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.test_execution_delay_ms));
      StatusOr<Vec> est = [&] {
        obs::Span exec_span("serve.execute", "serve", &ExecuteSeconds());
        exec_span.Attr("eps", t.req.eps);
        return Execute(t.req, t.hash);
      }();
      if (!est.ok()) {
        // Nothing was released; return the epsilon to the tenant.
        ledger->Refund(t.req.tenant, t.req.eps);
        r.code = ReplyCode::kExecutionFailed;
        r.message = est.status().message();
      } else {
        r.code = ReplyCode::kOk;
        r.eps_charged = t.req.eps;
        r.estimate = std::move(est).value();
      }
    }
    {
      std::lock_guard<std::mutex> lock(co_mu);
      if (r.code == ReplyCode::kOk) {
        executions.Inc();
        if (t.cacheable) CacheInsert(t.key, r.estimate);
      }
      inflight.erase(t.key);
    }
    t.fly->Publish(std::move(r));
  }

  void WorkerLoop() {
    // Close() still delivers queued tasks, so every admitted request
    // gets a reply even across shutdown.
    while (std::optional<Task> t = queue->Pop()) ProcessTask(*t);
  }

  // -------------------------------------------------------- connections

  /// Observability shell around DoInvoke: opens the per-request trace
  /// (when armed) and the total-latency span, and emits the slow-request
  /// log line.  None of it can perturb the reply — spans and traces are
  /// write-only sinks, and the trace is published only after the reply
  /// bytes are final.
  InvokeReply HandleInvoke(InvokeRequest req) {
    std::shared_ptr<obs::RequestTrace> trace;
    if (obs::TraceEnabled()) {
      trace = std::make_shared<obs::RequestTrace>();
      trace->request_id = std::to_string(req.request_id);
      trace->tenant = req.tenant;
      trace->plan = req.plan;
    }
    obs::ScopedTraceContext tctx(trace.get());
    const uint64_t slow_t0 = opts.slow_ms > 0 ? obs::NowNs() : 0;
    const std::string tenant = req.tenant;  // req is consumed below
    const std::string plan = req.plan;
    const uint64_t rid = req.request_id;
    InvokeReply out;
    {
      obs::Span total("serve.request", "serve", &TotalSeconds());
      total.Attr("eps", req.eps);
      out = DoInvoke(std::move(req), trace);
    }
    if (slow_t0 != 0) {
      const double ms =
          static_cast<double>(obs::NowNs() - slow_t0) * 1e-6;
      if (ms > double(opts.slow_ms)) {
        char msbuf[32];
        std::snprintf(msbuf, sizeof(msbuf), "%.1f", ms);
        obs::Log(obs::Severity::kWarn, "serve_slow",
                 {{"tenant", tenant},
                  {"plan", plan},
                  {"request_id", std::to_string(rid)},
                  {"ms", msbuf},
                  {"code", std::to_string(int(out.code))}});
      }
    }
    if (trace != nullptr)
      obs::TraceStore::Global().Publish(std::move(trace));
    return out;
  }

  InvokeReply DoInvoke(InvokeRequest req,
                       const std::shared_ptr<obs::RequestTrace>& trace) {
    InvokeReply out;
    out.request_id = req.request_id;
    received.Inc();
    std::string err;
    {
      obs::Span vspan("serve.validate", "serve", &ValidateSeconds());
      err = Validate(req);
    }
    if (!err.empty()) {
      refused_bad.Inc();
      out.code = ReplyCode::kBadRequest;
      out.message = std::move(err);
      return out;
    }
    // Advisory fast path: refuse before any queue slot or kernel is
    // involved.  (Public-state decision — Alg. 2 refusals leak nothing.)
    if (!ledger->CanCharge(req.tenant, req.eps)) {
      refused_budget.Inc();
      out.code = ReplyCode::kBudgetExhausted;
      out.message = "tenant budget exhausted";
      return out;
    }

    const uint64_t hash = RequestContentHash(req);
    const std::string key = CoalesceKey(req.tenant, hash);
    const bool can_coalesce = opts.coalesce && req.coalesce;
    std::shared_ptr<Inflight> fly;
    bool leader = true;
    if (can_coalesce) {
      std::lock_guard<std::mutex> lock(co_mu);
      if (const CachedAnswer* hit = CacheFind(key)) {
        coalesced.Inc();
        out.code = ReplyCode::kOk;
        out.coalesced = true;
        out.eps_charged = 0.0;  // replay of an already-charged answer
        out.estimate = hit->estimate;
        return out;
      }
      auto it = inflight.find(key);
      if (it != inflight.end()) {
        fly = it->second;
        leader = false;
      } else {
        fly = std::make_shared<Inflight>();
        inflight.emplace(key, fly);
      }
    } else {
      fly = std::make_shared<Inflight>();
    }

    if (leader) {
      Task task;
      task.req = req;
      task.hash = hash;
      task.key = key;
      task.cacheable = can_coalesce;
      task.fly = fly;
      task.enqueued = std::chrono::steady_clock::now();
      task.trace = trace;
      task.enqueue_ns = obs::ArmedFlags() != 0 ? obs::NowNs() : 0;
      if (!queue->TryPush(std::move(task))) {
        InvokeReply refusal;
        refusal.request_id = req.request_id;
        refusal.code = stopping.load() ? ReplyCode::kShuttingDown
                                       : ReplyCode::kQueueFull;
        refusal.message = stopping.load() ? "server shutting down"
                                          : "request queue full";
        refused_queue.Inc();
        if (can_coalesce) {
          std::lock_guard<std::mutex> lock(co_mu);
          inflight.erase(key);
        }
        // Followers that already joined this entry get the same refusal.
        fly->Publish(refusal);
        refusal.request_id = req.request_id;
        return refusal;
      }
      admitted.Inc();
    }

    out = fly->Wait();
    out.request_id = req.request_id;
    if (!leader) {
      out.coalesced = true;
      if (out.code == ReplyCode::kOk) out.eps_charged = 0.0;
      coalesced.Inc();
    }
    return out;
  }

  StatsReply BuildStats() {
    StatsReply s;
    s.received = received.Delta();
    s.admitted = admitted.Delta();
    s.refused_budget = refused_budget.Delta();
    s.refused_queue = refused_queue.Delta();
    s.refused_bad = refused_bad.Delta();
    s.executions = executions.Delta();
    s.coalesced = coalesced.Delta();
    s.refused_durability = refused_durability.Delta();
    s.refused_deadline = refused_deadline.Delta();
    const OperatorCache::Stats cs = OperatorCache::Global().stats();
    s.cache_hits = cs.hits;
    s.cache_disk_hits = cs.disk_hits;
    const SearchStats ss = GetSearchStats();
    s.rewrite_searches = ss.searches;
    s.beam_expansions = ss.expansions;
    s.tree_hits = cs.tree_hits + cs.tree_disk_hits;
    s.disk_degraded = cs.disk_degraded ? 1 : 0;
    s.disk_io_errors = cs.disk_io_errors;
    s.disk_write_drops = cs.disk_write_drops;
    for (const std::string& name : tenant_order) {
      if (auto b = ledger->Balance(name))
        s.tenants.push_back({name, b->total, b->spent});
    }
    return s;
  }

  /// Prometheus scrape: counters and histograms are live already; only
  /// the scrape-time gauges (per-tenant budgets) need a refresh here.
  std::string BuildPromText() {
    obs::Registry& reg = obs::Registry::Global();
    for (const std::string& name : tenant_order) {
      if (auto b = ledger->Balance(name)) {
        reg.GetGauge("ektelo_tenant_budget_eps",
                     "Per-tenant durable epsilon budget",
                     "tenant=\"" + name + "\",kind=\"total\"")
            .Set(b->total);
        reg.GetGauge("ektelo_tenant_budget_eps",
                     "Per-tenant durable epsilon budget",
                     "tenant=\"" + name + "\",kind=\"spent\"")
            .Set(b->spent);
      }
    }
    return obs::PrometheusText(reg);
  }

  void ServeConnection(int fd) {
    for (;;) {
      MsgType type;
      std::vector<uint8_t> payload;
      Status st = ReadFrame(fd, &type, &payload);
      if (!st.ok()) break;  // clean close or poisoned stream: drop it
      if (type == MsgType::kInvoke) {
        InvokeRequest req;
        InvokeReply reply;
        if (!DecodeInvokeRequest(payload, &req)) {
          // The frame itself was intact (checksum passed), so the
          // stream is still synchronized; refuse just this request.
          received.Inc();
          refused_bad.Inc();
          reply.code = ReplyCode::kBadRequest;
          reply.message = "malformed invoke payload";
        } else {
          reply = HandleInvoke(std::move(req));
        }
        if (!WriteFrame(fd, MsgType::kInvokeReply, EncodeInvokeReply(reply))
                 .ok())
          break;
      } else if (type == MsgType::kStats) {
        if (!WriteFrame(fd, MsgType::kStatsReply,
                        EncodeStatsReply(BuildStats()))
                 .ok())
          break;
      } else if (type == MsgType::kStatsProm) {
        if (!WriteFrame(fd, MsgType::kStatsPromReply,
                        EncodeTextReply(BuildPromText()))
                 .ok())
          break;
      } else if (type == MsgType::kTrace) {
        const std::string json =
            obs::ChromeTraceJson(obs::TraceStore::Global().Latest());
        if (!WriteFrame(fd, MsgType::kTraceReply, EncodeTextReply(json)).ok())
          break;
      } else if (type == MsgType::kShutdown) {
        (void)WriteFrame(fd, MsgType::kShutdownReply, {});
        SignalStop();
        break;
      } else {
        break;  // unknown message type: poisoned stream
      }
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      conn_fds.erase(fd);
    }
    net::CloseFd(fd);
  }

  void AcceptLoop() {
    while (!stopping.load()) {
      StatusOr<int> fd = listener->Accept(/*timeout_ms=*/100);
      if (!fd.ok()) {
        if (fd.status().code() == StatusCode::kUnavailable) continue;
        break;  // listener closed or fatal error
      }
      std::lock_guard<std::mutex> lock(conn_mu);
      if (stopping.load()) {
        net::CloseFd(*fd);
        break;
      }
      conn_fds.insert(*fd);
      const int cfd = *fd;
      conn_threads.emplace_back([this, cfd] { ServeConnection(cfd); });
    }
  }
};

Server::Server() : impl_(new Impl) {}

Server::~Server() { Stop(); }

StatusOr<std::unique_ptr<Server>> Server::Start(
    ServerOptions opts, std::vector<TenantSpec> tenants) {
  if (tenants.empty())
    return Status::InvalidArgument("a server needs at least one tenant");
  if (opts.socket_path.empty() || opts.ledger_dir.empty())
    return Status::InvalidArgument("socket_path and ledger_dir are required");

  // A client that disconnects while a reply is in flight must surface as
  // EPIPE through Status, never as a process-killing SIGPIPE.
  net::IgnoreSigpipe();

  std::unique_ptr<Server> server(new Server);
  Impl& im = *server->impl_;
  im.BindServeMetrics();  // base snapshot BEFORE any request arrives
  im.opts = opts;
  im.opts.workers = std::max<std::size_t>(1, im.opts.workers);
  im.opts.queue_capacity = std::max<std::size_t>(1, im.opts.queue_capacity);

  LedgerOptions lopts;
  lopts.fsync_each_charge = opts.fsync_ledger;
  lopts.checkpoint_every = opts.ledger_checkpoint_every;
  im.ledger = BudgetLedger::Open(opts.ledger_dir, lopts);
  if (im.ledger == nullptr)
    return Status::Internal("cannot open budget ledger in " +
                            opts.ledger_dir +
                            " (held by a live process, or I/O error)");

  for (TenantSpec& t : tenants) {
    if (t.name.empty() || im.tenants.count(t.name) != 0)
      return Status::InvalidArgument("empty or duplicate tenant name");
    // A returning tenant keeps its durable balances: CreateTenant only
    // registers genuinely new names (restart preserves spent exactly).
    if (!im.ledger->Balance(t.name).has_value() &&
        !im.ledger->CreateTenant(t.name, t.eps_total))
      return Status::Internal("cannot register tenant " + t.name);
    im.tenant_order.push_back(t.name);
    im.tenants.emplace(t.name,
                       Impl::Tenant{std::move(t.table), t.seed});
  }

  StatusOr<net::UnixListener> listener = net::UnixListener::Bind(
      opts.socket_path);
  if (!listener.ok()) return listener.status();
  im.listener.emplace(std::move(listener).value());

  im.queue =
      std::make_unique<BoundedQueue<Impl::Task>>(im.opts.queue_capacity);
  for (std::size_t i = 0; i < im.opts.workers; ++i)
    im.workers.emplace_back([&im] { im.WorkerLoop(); });
  im.acceptor = std::thread([&im] { im.AcceptLoop(); });
  return server;
}

void Server::Stop() {
  Impl& im = *impl_;
  im.SignalStop();
  {
    std::lock_guard<std::mutex> lock(im.stop_mu);
    if (im.joined) return;
    im.joined = true;
  }
  // AcceptLoop polls `stopping` every Accept timeout, so it exits on
  // its own; joining it BEFORE closing the listener keeps Close from
  // racing a concurrent Accept on the same fd.
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.listener.has_value()) im.listener->Close();
  // Drain: queued tasks still execute and publish, so every admitted
  // request's connection thread wakes with a real reply.
  if (im.queue != nullptr) im.queue->Close();
  for (std::thread& w : im.workers)
    if (w.joinable()) w.join();
  // Unblock connection threads parked in ReadFrame.
  {
    std::lock_guard<std::mutex> lock(im.conn_mu);
    for (int fd : im.conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(im.conn_mu);
      threads.swap(im.conn_threads);
    }
    if (threads.empty()) break;
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }
  if (im.ledger != nullptr) im.ledger->Checkpoint();
}

bool Server::stopped() const { return impl_->stopping.load(); }

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(impl_->stop_mu);
  impl_->stop_cv.wait(lock, [&] { return impl_->stop_signaled; });
}

StatsReply Server::Stats() const { return impl_->BuildStats(); }

const std::string& Server::socket_path() const {
  return impl_->opts.socket_path;
}

BudgetLedger& Server::ledger() { return *impl_->ledger; }

#else  // _WIN32

struct Server::Impl {};
Server::Server() : impl_(new Impl) {}
Server::~Server() = default;
StatusOr<std::unique_ptr<Server>> Server::Start(ServerOptions,
                                                std::vector<TenantSpec>) {
  return Status::Unimplemented("serving requires AF_UNIX sockets");
}
void Server::Stop() {}
bool Server::stopped() const { return true; }
void Server::WaitForShutdown() {}
StatsReply Server::Stats() const { return {}; }
const std::string& Server::socket_path() const {
  static const std::string empty;
  return empty;
}
BudgetLedger& Server::ledger() {
  static BudgetLedger* none = nullptr;
  return *none;
}

#endif  // _WIN32

}  // namespace ektelo::serve
